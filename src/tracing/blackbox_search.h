// Full black-box tracing by suspect-set search (paper Sect. 6.2).
//
// Black-box confirmation only answers "does this suspect set cover the
// coalition, and if so name one traitor". Full black-box tracing walks
// candidate suspect sets — in the worst case all m-subsets of the candidate
// pool (the paper: exponential in m, "inherent to this setting" [19]), but
// "in many cases a lot of partial information about the set of corrupted
// users makes the search space dramatically smaller". The searcher takes an
// arbitrary candidate pool to model exactly that.
//
// Once a covering set is confirmed, the remaining traitors are peeled off by
// repeated confirmation on the shrinking set.
#pragma once

#include "tracing/blackbox.h"

namespace dfky {

struct BlackBoxTraceResult {
  /// All traitors recovered (complete when the pool covers the coalition).
  std::vector<std::uint64_t> traitors;
  std::size_t queries = 0;
  std::size_t subsets_tried = 0;
};

/// Searches subsets of `pool` of size exactly `coalition_bound` (<= m) until
/// BBC confirms one, then peels all members of the covered coalition.
/// Returns an empty traitor list if no subset of the pool covers the
/// coalition (all candidates exhausted).
BlackBoxTraceResult black_box_trace(const SystemParams& sp,
                                    const MasterSecret& msk,
                                    const PublicKey& pk,
                                    std::span<const UserRecord> pool,
                                    std::size_t coalition_bound,
                                    PirateDecoder& decoder,
                                    const BbcOptions& options, Rng& rng);

}  // namespace dfky
