// Tracing beyond the collusion bound (paper Sect. 6.3.2, last paragraph).
//
// When more than m = floor(v/2) traitors collude, unique decoding fails, but
// list decoding still pins down a small set of CANDIDATE coalitions: we
// Sudan-decode the corrupted codeword theta and keep every candidate error
// vector that genuinely explains the pirate representation. The true
// coalition is always among the candidates (when the interpolation bound is
// met); spurious candidates are filtered by re-deriving the pirate key from
// the alleged coalition and, optionally, by checking the alpha_0 components
// against the master secret.
#pragma once

#include "core/manager.h"
#include "tracing/nonblackbox.h"

namespace dfky {

struct CandidateCoalition {
  std::vector<TraceResult::Traitor> traitors;

  std::vector<std::uint64_t> ids() const;
};

/// Lists all coalitions of size <= max_coalition among `candidates` that
/// exactly explain `delta` (tail + convex weights), using Sudan list
/// decoding. `msk`, when provided, additionally filters by the gamma_a /
/// gamma_b components. Throws ContractError when the agreement bound is
/// infeasible for these parameters, MathError when delta is invalid.
std::vector<CandidateCoalition> trace_beyond_bound(
    const SystemParams& sp, const PublicKey& pk, const Representation& delta,
    std::span<const UserRecord> candidates, std::size_t max_coalition,
    Rng& rng, const MasterSecret* msk = nullptr);

/// Largest coalition size for which trace_beyond_bound's interpolation step
/// is feasible with n registered users (cf. the paper's
/// n - sqrt(n (n - v)) bound for full Guruswami-Sudan).
std::size_t max_list_traceable(std::size_t n, std::size_t v);

}  // namespace dfky
