// Non-black-box tracing (paper Sect. 6.3.2).
//
// Given a valid representation delta extracted from a pirate decoder, the
// tracer deterministically recovers the identities of ALL traitors whose
// keys entered the convex combination, as long as the coalition has size at
// most m = floor(v/2).
//
// Two interchangeable implementations, cross-checked in tests:
//
// * kBerlekampWelch — the paper's presentation: solve theta * H = delta'' by
//   linear algebra, view theta as a corrupted codeword of the GRS code C of
//   Lemma 7 (distance v+1), Berlekamp-Welch-decode it to the nearest
//   codeword omega, and read the traitors off the support of
//   phi = theta - omega. Requires n > v active users.
//
// * kSyndrome — the "more sophisticated" O(n v + v^3) route the paper's
//   Time-Complexity paragraph alludes to: delta'' IS a power-sum syndrome
//   vector of the error phi (S_k = sum_j c_j x_j^k with
//   c_j = -phi_j * lambda_0^(j)), so Berlekamp-Massey yields the error
//   locator directly, roots are found by scanning the user registry, and the
//   weights come from a small Vandermonde solve. Works for any n >= 1.
#pragma once

#include "core/manager.h"
#include "core/scheme.h"

namespace dfky {

enum class TraceAlgorithm { kBerlekampWelch, kSyndrome };

struct TraceResult {
  /// Traced traitors as (registry id, x value, recovered convex weight).
  struct Traitor {
    std::uint64_t id;
    Bigint x;
    Bigint weight;
  };
  std::vector<Traitor> traitors;

  std::vector<std::uint64_t> ids() const;
};

/// Traces the coalition behind `delta`, searching among `candidates`
/// (all users whose x does not occur among the public-key slots — revoked
/// users hold no leap-vector and cannot have contributed).
/// Throws MathError if `delta` is not a valid representation of `pk` or the
/// decoder's coalition exceeds the correction capability.
TraceResult trace_nonblackbox(const SystemParams& sp, const PublicKey& pk,
                              const Representation& delta,
                              std::span<const UserRecord> candidates,
                              TraceAlgorithm alg = TraceAlgorithm::kSyndrome);

/// The parity-check products delta'' = delta' * B of Eq. (36): the power-sum
/// syndromes S_1..S_v used by both tracing paths. Exposed for tests.
std::vector<Bigint> tracing_syndromes(const Zq& zq,
                                      std::span<const Bigint> slot_ids,
                                      std::span<const Bigint> delta_tail);

}  // namespace dfky
