// Pirate decoder models (paper Sect. 6.1).
//
// A pirate decoder is a stateless device built by a traitor coalition. By
// Lemma 6, under the DLog assumption the only useful key material a
// coalition can place inside a decoder is a convex combination of the
// traitors' compact representations — which RepresentationDecoder models.
// NoisyDecoder degrades any decoder to succeed on only an epsilon-fraction
// of ciphertexts (the "threshold tracing" regime of Sect. 6.2).
// SelfProtectingDecoder models a crafty pirate that refuses to answer
// unless the ciphertext passes every check it CAN perform (group
// membership, expected slot identities, period tag); Theorem 2 shows this
// does not help — the tracer's fake keys PK(I) keep all of those fields,
// so the decoder cannot tell probing apart from genuine broadcasts.
#pragma once

#include <memory>

#include "core/scheme.h"
#include "rng/chacha_rng.h"

namespace dfky {

/// Black-box interface: the tracer may only submit ciphertexts and observe
/// the output (Definition 8's success experiment).
class PirateDecoder {
 public:
  virtual ~PirateDecoder() = default;
  virtual Gelt decrypt(const Ciphertext& ct) = 0;
};

/// Decoder driven by an embedded key representation.
class RepresentationDecoder final : public PirateDecoder {
 public:
  RepresentationDecoder(SystemParams sp, Representation rep)
      : sp_(std::move(sp)), rep_(std::move(rep)) {}

  Gelt decrypt(const Ciphertext& ct) override {
    return decrypt_with_representation(sp_, rep_, ct);
  }

  /// The non-black-box "reverse engineering" of Assumption 3: expose the
  /// embedded representation to the tracer.
  const Representation& extract_representation() const { return rep_; }

 private:
  SystemParams sp_;
  Representation rep_;
};

/// Succeeds with probability ~epsilon, otherwise outputs a random element.
class NoisyDecoder final : public PirateDecoder {
 public:
  NoisyDecoder(SystemParams sp, std::unique_ptr<PirateDecoder> inner,
               double epsilon, std::uint64_t seed);

  Gelt decrypt(const Ciphertext& ct) override;

 private:
  SystemParams sp_;
  std::unique_ptr<PirateDecoder> inner_;
  double epsilon_;
  ChaChaRng rng_;
};

/// A crafty stateless pirate: decrypts only ciphertexts that pass every
/// publicly-checkable consistency test against the public key it was built
/// for (slot identities and order, period tag, element membership);
/// otherwise it outputs an unrelated random element. The tracer's fake keys
/// preserve all checked fields, so BBC defeats this decoder too.
class SelfProtectingDecoder final : public PirateDecoder {
 public:
  SelfProtectingDecoder(SystemParams sp, Representation rep,
                        PublicKey built_for, std::uint64_t seed);

  Gelt decrypt(const Ciphertext& ct) override;

  /// Whether the last query passed the consistency checks (test hook).
  bool last_query_accepted() const { return last_accepted_; }

 private:
  bool consistent(const Ciphertext& ct) const;

  SystemParams sp_;
  Representation rep_;
  PublicKey built_for_;
  ChaChaRng rng_;
  bool last_accepted_ = false;
};

/// Builds a pirate representation as a random convex combination (all
/// weights nonzero) of the traitors' representations w.r.t. `pk`.
Representation build_pirate_representation(const SystemParams& sp,
                                           const PublicKey& pk,
                                           std::span<const UserKey> traitors,
                                           Rng& rng);

}  // namespace dfky
