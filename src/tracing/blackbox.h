// epsilon-Black-Box Confirmation (paper Sect. 6.2, Definitions 9/10).
//
// The tracer probes a stateless pirate decoder with encryptions under fake
// public keys PK(I) whose master polynomials agree with the real ones only
// on the suspect set I. By Theorem 2 a decoder whose coalition is contained
// in I keeps working under PK(I); by Theorem 3 dropping an innocent user
// from I does not change the decoder's success rate. The algorithm walks
// suspects out of I one at a time and accuses the first whose removal drops
// the estimated success probability by at least epsilon / (2m).
#pragma once

#include <optional>

#include "core/manager.h"
#include "tracing/pirate.h"

namespace dfky {

struct BbcOptions {
  /// Usefulness threshold: decoders succeeding on less than an
  /// epsilon-fraction of broadcasts are considered harmless.
  double epsilon = 0.5;
  /// Per-estimate failure probability driving the Hoeffding sample count.
  double confidence = 1e-3;
  /// Overrides the derived sample count when nonzero (benchmarks/tests).
  std::size_t samples_override = 0;
};

struct BbcResult {
  /// The accused traitor's registry id, or nullopt ("?").
  std::optional<std::uint64_t> accused;
  /// Total decoder queries spent.
  std::size_t queries = 0;
  /// delta(I) estimates in removal order; success_curve[0] is delta(Susp).
  std::vector<double> success_curve;
};

/// Builds the fake public key PK(I): fresh random degree-v polynomials that
/// agree with the current master polynomials exactly on `keep_xs` (the
/// suspects' x values), re-keying every slot and y. Exposed for tests.
PublicKey fake_public_key(const SystemParams& sp, const MasterSecret& msk,
                          const PublicKey& pk,
                          std::span<const Bigint> keep_xs, Rng& rng);

/// Monte-Carlo estimate of Succ_PK(D) (Definition 8) with `samples` queries.
double estimate_success(const SystemParams& sp, const PublicKey& pk,
                        PirateDecoder& decoder, std::size_t samples, Rng& rng);

/// The BBC algorithm of Sect. 6.2.1.
BbcResult black_box_confirm(const SystemParams& sp, const MasterSecret& msk,
                            const PublicKey& pk,
                            std::span<const UserRecord> suspects,
                            PirateDecoder& decoder, const BbcOptions& options,
                            Rng& rng);

}  // namespace dfky
