#include "tracing/blackbox_search.h"

namespace dfky {

namespace {

/// Advances `idx` to the next combination of pool indices; false at the end.
bool next_combination(std::vector<std::size_t>& idx, std::size_t n) {
  const std::size_t k = idx.size();
  for (std::size_t i = k; i-- > 0;) {
    if (idx[i] < n - (k - i)) {
      ++idx[i];
      for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
  }
  return false;
}

/// Does the decoder still work under PK restricted to `suspects`?
bool covers(const SystemParams& sp, const MasterSecret& msk,
            const PublicKey& pk, std::span<const UserRecord> suspects,
            PirateDecoder& decoder, std::size_t samples, Rng& rng,
            double epsilon, std::size_t& queries) {
  std::vector<Bigint> keep;
  keep.reserve(suspects.size());
  for (const UserRecord& u : suspects) keep.push_back(u.x);
  const PublicKey fake = fake_public_key(sp, msk, pk, keep, rng);
  queries += samples;
  return estimate_success(sp, fake, decoder, samples, rng) >= epsilon / 2;
}

}  // namespace

BlackBoxTraceResult black_box_trace(const SystemParams& sp,
                                    const MasterSecret& msk,
                                    const PublicKey& pk,
                                    std::span<const UserRecord> pool,
                                    std::size_t coalition_bound,
                                    PirateDecoder& decoder,
                                    const BbcOptions& options, Rng& rng) {
  require(coalition_bound >= 1 && coalition_bound <= sp.max_collusion(),
          "black_box_trace: coalition bound must be in [1, m]");
  BlackBoxTraceResult result;
  if (pool.size() < coalition_bound) return result;

  const std::size_t probe_samples =
      options.samples_override != 0 ? options.samples_override : 25;

  std::vector<std::size_t> idx(coalition_bound);
  for (std::size_t i = 0; i < coalition_bound; ++i) idx[i] = i;
  do {
    ++result.subsets_tried;
    std::vector<UserRecord> suspects;
    suspects.reserve(coalition_bound);
    for (std::size_t i : idx) suspects.push_back(pool[i]);
    // Cheap coverage probe before running the full confirmation walk.
    if (!covers(sp, msk, pk, suspects, decoder, probe_samples, rng,
                options.epsilon, result.queries)) {
      continue;
    }
    // This subset covers the coalition. Identify every traitor in it by
    // leave-one-out estimation: dropping a traitor from I collapses delta(I)
    // (the convex combination needs all contributors, Theorem 2), while
    // dropping an innocent changes nothing (Theorem 3).
    const std::size_t samples = options.samples_override != 0
                                    ? options.samples_override
                                    : probe_samples;
    std::vector<Bigint> keep_all;
    for (const UserRecord& u : suspects) keep_all.push_back(u.x);
    const PublicKey fake_all = fake_public_key(sp, msk, pk, keep_all, rng);
    result.queries += samples;
    const double base = estimate_success(sp, fake_all, decoder, samples, rng);
    const double threshold =
        options.epsilon / (2.0 * static_cast<double>(sp.max_collusion()));
    for (const UserRecord& candidate : suspects) {
      std::vector<Bigint> keep;
      for (const UserRecord& u : suspects) {
        if (u.id != candidate.id) keep.push_back(u.x);
      }
      const PublicKey fake = fake_public_key(sp, msk, pk, keep, rng);
      result.queries += samples;
      const double est = estimate_success(sp, fake, decoder, samples, rng);
      if (base - est >= threshold) result.traitors.push_back(candidate.id);
    }
    if (!result.traitors.empty()) return result;
  } while (next_combination(idx, pool.size()));
  return result;
}

}  // namespace dfky
