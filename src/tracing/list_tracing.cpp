#include "tracing/list_tracing.h"

#include "codes/sudan.h"
#include "linalg/gauss.h"
#include "poly/leap_vector.h"

namespace dfky {

std::vector<std::uint64_t> CandidateCoalition::ids() const {
  std::vector<std::uint64_t> out;
  out.reserve(traitors.size());
  for (const auto& t : traitors) out.push_back(t.id);
  return out;
}

std::size_t max_list_traceable(std::size_t n, std::size_t v) {
  if (n <= v) return 0;
  const std::size_t k = n - v;
  std::size_t best = 0;
  for (std::size_t e = 0; e < n; ++e) {
    if (sudan_feasible(n, k, n - e)) {
      best = e;
    } else {
      break;
    }
  }
  return best;
}

std::vector<CandidateCoalition> trace_beyond_bound(
    const SystemParams& sp, const PublicKey& pk, const Representation& delta,
    std::span<const UserRecord> users, std::size_t max_coalition, Rng& rng,
    const MasterSecret* msk) {
  if (!delta.valid_for(sp, pk)) {
    throw MathError("trace_beyond_bound: invalid representation");
  }
  const Zq& zq = sp.group.zq();
  const std::vector<Bigint> zs = pk.slot_ids();
  const std::size_t v = zs.size();

  // Candidates: active users (x outside the slot set), with lambda0.
  struct Cand {
    std::uint64_t id;
    Bigint x;
    Bigint lambda0;
  };
  std::vector<Cand> cands;
  for (const UserRecord& u : users) {
    const Bigint x = zq.reduce(u.x);
    bool collides = x.is_zero();
    for (const Bigint& z : zs) {
      if (zq.sub(x, z).is_zero()) collides = true;
    }
    if (collides) continue;
    cands.push_back(Cand{u.id, x, leap_coefficients(zq, x, zs).lambda0});
  }
  const std::size_t n = cands.size();
  require(n > v, "trace_beyond_bound: needs more than v registered users");
  const std::size_t k = n - v;
  require(max_coalition < n, "trace_beyond_bound: coalition bound too large");
  const std::size_t t = n - max_coalition;

  // theta * H = delta''  (as in the Berlekamp-Welch tracer).
  const std::vector<Bigint> dpp = tracing_syndromes(zq, zs, delta.tail);
  Matrix ht(zq, v, n);
  for (std::size_t j = 0; j < n; ++j) {
    Bigint pw = cands[j].x;
    for (std::size_t kk = 0; kk < v; ++kk) {
      ht.at(kk, j) = zq.neg(zq.mul(cands[j].lambda0, pw));
      pw = zq.mul(pw, cands[j].x);
    }
  }
  const auto theta = solve(ht, dpp);
  if (!theta) throw MathError("trace_beyond_bound: theta system inconsistent");

  // Divide out the GRS column multipliers w_j = -lambda_j / lambda0^{(j)}.
  std::vector<Bigint> xs;
  xs.reserve(n);
  for (const Cand& c : cands) xs.push_back(c.x);
  const std::vector<Bigint> lambda_full = lagrange_coefficients_at_zero(zq, xs);
  std::vector<Bigint> ws(n), ys(n);
  for (std::size_t j = 0; j < n; ++j) {
    ws[j] = zq.neg(zq.div(lambda_full[j], cands[j].lambda0));
    ys[j] = zq.div((*theta)[j], ws[j]);
  }

  // List-decode: every f agreeing in >= t positions is a nearby codeword.
  const std::vector<Polynomial> list =
      sudan_list_decode(zq, xs, ys, k, t, rng);

  std::vector<CandidateCoalition> out;
  for (const Polynomial& f : list) {
    CandidateCoalition cc;
    bool plausible = true;
    Bigint weight_sum(0);
    std::vector<Bigint> tail(v, Bigint(0));
    Bigint gamma_a(0), gamma_b(0);
    for (std::size_t j = 0; j < n; ++j) {
      const Bigint omega_j = zq.mul(ws[j], f.eval(xs[j]));
      const Bigint phi_j = zq.sub((*theta)[j], omega_j);
      if (phi_j.is_zero()) continue;
      if (cc.traitors.size() == max_coalition) {
        plausible = false;  // more errors than the agreed bound
        break;
      }
      cc.traitors.push_back(
          TraceResult::Traitor{cands[j].id, cands[j].x, phi_j});
      weight_sum = zq.add(weight_sum, phi_j);
      const LeapCoefficients lc = leap_coefficients(zq, cands[j].x, zs);
      for (std::size_t l = 0; l < v; ++l) {
        tail[l] = zq.add(tail[l], zq.mul(phi_j, lc.lambdas[l]));
      }
      if (msk != nullptr) {
        const Bigint scale = zq.mul(phi_j, lc.lambda0);
        gamma_a = zq.add(gamma_a, zq.mul(scale, msk->a.eval(cands[j].x)));
        gamma_b = zq.add(gamma_b, zq.mul(scale, msk->b.eval(cands[j].x)));
      }
    }
    if (!plausible || cc.traitors.empty()) continue;
    if (!weight_sum.is_one()) continue;
    bool tail_ok = true;
    for (std::size_t l = 0; l < v; ++l) {
      if (!(tail[l] == zq.reduce(delta.tail[l]))) tail_ok = false;
    }
    if (!tail_ok) continue;
    if (msk != nullptr) {
      if (!(gamma_a == zq.reduce(delta.gamma_a)) ||
          !(gamma_b == zq.reduce(delta.gamma_b))) {
        continue;
      }
    }
    out.push_back(std::move(cc));
  }
  return out;
}

}  // namespace dfky
