#include "tracing/blackbox.h"

#include <cmath>

#include "obs/metrics.h"
#include "poly/lagrange.h"

namespace dfky {

namespace {

/// Random degree-v polynomial agreeing with `p` on the points `keep_xs`.
Polynomial constrained_random_poly(const Zq& zq, const Polynomial& p,
                                   std::size_t v,
                                   std::span<const Bigint> keep_xs, Rng& rng) {
  std::vector<std::pair<Bigint, Bigint>> points;
  points.reserve(v + 1);
  std::set<std::string> seen;
  for (const Bigint& x : keep_xs) {
    const Bigint xr = zq.reduce(x);
    require(seen.insert(xr.to_hex()).second,
            "fake_public_key: duplicate suspect x");
    points.emplace_back(xr, p.eval(xr));
  }
  while (points.size() < v + 1) {
    Bigint x = rng.uniform_nonzero_below(zq.modulus());
    if (!seen.insert(x.to_hex()).second) continue;
    points.emplace_back(std::move(x), rng.uniform_below(zq.modulus()));
  }
  return interpolate(zq, points);
}

}  // namespace

PublicKey fake_public_key(const SystemParams& sp, const MasterSecret& msk,
                          const PublicKey& pk,
                          std::span<const Bigint> keep_xs, Rng& rng) {
  require(keep_xs.size() <= sp.max_collusion(),
          "fake_public_key: suspect set larger than the collusion bound");
  DFKY_OBS_TIMER(obs_span, "dfky_bbc_fake_pk_ns");
  const Zq& zq = sp.group.zq();
  const Polynomial a_fake =
      constrained_random_poly(zq, msk.a, sp.v, keep_xs, rng);
  const Polynomial b_fake =
      constrained_random_poly(zq, msk.b, sp.v, keep_xs, rng);

  PublicKey out;
  out.g = pk.g;
  out.g2 = pk.g2;
  out.period = pk.period;
  const std::array<Gelt, 2> bases = {sp.g, sp.g2};
  {
    const std::array<Bigint, 2> exps = {a_fake.coeff(0), b_fake.coeff(0)};
    out.y = multiexp(sp.group, bases, exps);
  }
  out.slots.reserve(pk.slots.size());
  for (const PkSlot& s : pk.slots) {
    const std::array<Bigint, 2> exps = {a_fake.eval(s.z), b_fake.eval(s.z)};
    out.slots.push_back(PkSlot{s.z, multiexp(sp.group, bases, exps)});
  }
  return out;
}

double estimate_success(const SystemParams& sp, const PublicKey& pk,
                        PirateDecoder& decoder, std::size_t samples,
                        Rng& rng) {
  require(samples > 0, "estimate_success: need at least one sample");
  DFKY_OBS(static obs::Counter& probes =
               obs::counter("dfky_bbc_probes_total");
           probes.inc(samples););
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const Gelt m = sp.group.random_element(rng);
    const Ciphertext ct = encrypt(sp, pk, m, rng);
    if (decoder.decrypt(ct) == m) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

BbcResult black_box_confirm(const SystemParams& sp, const MasterSecret& msk,
                            const PublicKey& pk,
                            std::span<const UserRecord> suspects,
                            PirateDecoder& decoder, const BbcOptions& options,
                            Rng& rng) {
  require(suspects.size() <= sp.max_collusion(),
          "black_box_confirm: more than m suspects");
  require(options.epsilon > 0.0 && options.epsilon <= 1.0,
          "black_box_confirm: bad epsilon");
  DFKY_OBS_TIMER(obs_span, "dfky_bbc_confirm_ns");
  DFKY_OBS(obs::counter("dfky_bbc_confirm_total").inc(););
  const std::size_t m = std::max<std::size_t>(sp.max_collusion(), 1);
  const double threshold = options.epsilon / (2.0 * static_cast<double>(m));

  std::size_t samples = options.samples_override;
  if (samples == 0) {
    // Hoeffding: estimate error below threshold/2 except w.p. `confidence`.
    const double t = threshold / 2.0;
    samples = static_cast<std::size_t>(
        std::ceil(std::log(2.0 / options.confidence) / (2.0 * t * t)));
  }

  BbcResult result;
  std::vector<UserRecord> current(suspects.begin(), suspects.end());

  auto estimate_for = [&](std::span<const UserRecord> set) {
    std::vector<Bigint> xs;
    xs.reserve(set.size());
    for (const UserRecord& u : set) xs.push_back(u.x);
    const PublicKey fake = fake_public_key(sp, msk, pk, xs, rng);
    result.queries += samples;
    return estimate_success(sp, fake, decoder, samples, rng);
  };

  double cur = estimate_for(current);
  result.success_curve.push_back(cur);
  while (!current.empty()) {
    const UserRecord candidate = current.back();
    std::vector<UserRecord> next(current.begin(), current.end() - 1);
    const double next_est = estimate_for(next);
    result.success_curve.push_back(next_est);
    if (cur - next_est >= threshold) {
      result.accused = candidate.id;
      DFKY_OBS(obs::event(
          {.name = "bbc_accuse",
           .user = static_cast<std::int64_t>(candidate.id),
           .detail = "confirmed",
           .value = static_cast<std::int64_t>(result.queries)}););
      return result;
    }
    current = std::move(next);
    cur = next_est;
  }
  DFKY_OBS(obs::event({.name = "bbc_accuse",
                       .detail = "uncovered",
                       .value = static_cast<std::int64_t>(result.queries)}););
  return result;  // "?": suspects do not cover the coalition
}

}  // namespace dfky
