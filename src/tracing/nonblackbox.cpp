#include "tracing/nonblackbox.h"

#include "codes/berlekamp_massey.h"
#include "codes/grs.h"
#include "linalg/gauss.h"
#include "poly/leap_vector.h"

namespace dfky {

std::vector<std::uint64_t> TraceResult::ids() const {
  std::vector<std::uint64_t> out;
  out.reserve(traitors.size());
  for (const Traitor& t : traitors) out.push_back(t.id);
  return out;
}

std::vector<Bigint> tracing_syndromes(const Zq& zq,
                                      std::span<const Bigint> slot_ids,
                                      std::span<const Bigint> delta_tail) {
  require(slot_ids.size() == delta_tail.size(),
          "tracing_syndromes: size mismatch");
  const std::size_t v = slot_ids.size();
  std::vector<Bigint> syndromes(v, Bigint(0));
  std::vector<Bigint> pw(v);
  for (std::size_t l = 0; l < v; ++l) pw[l] = zq.reduce(slot_ids[l]);
  for (std::size_t k = 0; k < v; ++k) {
    for (std::size_t l = 0; l < v; ++l) {
      syndromes[k] = zq.add(syndromes[k], zq.mul(delta_tail[l], pw[l]));
      pw[l] = zq.mul(pw[l], slot_ids[l]);
    }
  }
  return syndromes;
}

namespace {

struct Candidate {
  std::uint64_t id;
  Bigint x;
  Bigint lambda0;  // Lagrange-at-zero coefficient of x over {x, z_1..z_v}
};

/// Collects candidates, dropping any whose x collides with a slot id
/// (revoked users cannot hold a leap-vector).
std::vector<Candidate> collect_candidates(const Zq& zq,
                                          std::span<const Bigint> zs,
                                          std::span<const UserRecord> users) {
  std::vector<Candidate> out;
  out.reserve(users.size());
  for (const UserRecord& u : users) {
    const Bigint x = zq.reduce(u.x);
    bool collides = x.is_zero();
    for (const Bigint& z : zs) {
      if (zq.sub(x, z).is_zero()) {
        collides = true;
        break;
      }
    }
    if (collides) continue;
    const LeapCoefficients lc = leap_coefficients(zq, x, zs);
    out.push_back(Candidate{u.id, x, lc.lambda0});
  }
  return out;
}

/// Consistency check: the recovered coalition's convex combination really
/// reproduces delta (weights sum to 1 and the tail matches).
void verify_coalition(const SystemParams& sp, const PublicKey& pk,
                      const Representation& delta,
                      std::span<const TraceResult::Traitor> traitors) {
  const Zq& zq = sp.group.zq();
  const std::vector<Bigint> zs = pk.slot_ids();
  Bigint weight_sum(0);
  std::vector<Bigint> tail(zs.size(), Bigint(0));
  for (const auto& t : traitors) {
    weight_sum = zq.add(weight_sum, t.weight);
    const LeapCoefficients lc = leap_coefficients(zq, t.x, zs);
    for (std::size_t l = 0; l < tail.size(); ++l) {
      tail[l] = zq.add(tail[l], zq.mul(t.weight, lc.lambdas[l]));
    }
  }
  if (!weight_sum.is_one()) {
    throw MathError("trace: recovered weights do not sum to 1");
  }
  for (std::size_t l = 0; l < tail.size(); ++l) {
    if (!(tail[l] == zq.reduce(delta.tail[l]))) {
      throw MathError("trace: recovered coalition does not match pirate key");
    }
  }
}

TraceResult trace_syndrome(const SystemParams& sp, const PublicKey& pk,
                           const Representation& delta,
                           std::span<const Candidate> candidates) {
  const Zq& zq = sp.group.zq();
  const std::vector<Bigint> zs = pk.slot_ids();
  const std::vector<Bigint> syndromes = tracing_syndromes(zq, zs, delta.tail);

  std::vector<Bigint> xs;
  xs.reserve(candidates.size());
  for (const Candidate& c : candidates) xs.push_back(c.x);

  const auto err = decode_power_sums(zq, syndromes, xs);
  if (!err) throw MathError("trace: syndrome decoding failed");

  TraceResult out;
  for (std::size_t j = 0; j < err->locators.size(); ++j) {
    // Map the locator back to a registry entry.
    const Candidate* hit = nullptr;
    for (const Candidate& c : candidates) {
      if (c.x == err->locators[j]) {
        hit = &c;
        break;
      }
    }
    if (hit == nullptr) throw MathError("trace: locator not in registry");
    // c_j = -phi_j * lambda0^{(j)}  =>  phi_j = -c_j / lambda0^{(j)}.
    const Bigint weight =
        zq.div(zq.neg(err->values[j]), hit->lambda0);
    out.traitors.push_back(TraceResult::Traitor{hit->id, hit->x, weight});
  }
  return out;
}

TraceResult trace_berlekamp_welch(const SystemParams& sp, const PublicKey& pk,
                                  const Representation& delta,
                                  std::span<const Candidate> candidates) {
  const Zq& zq = sp.group.zq();
  const std::size_t n = candidates.size();
  const std::size_t v = pk.slots.size();
  require(n > v, "trace (BW): needs more than v registered users");

  const std::vector<Bigint> zs = pk.slot_ids();
  const std::vector<Bigint> dpp = tracing_syndromes(zq, zs, delta.tail);

  // H^T in Z_q^{v x n}: (H^T)_{k,j} = -lambda0^{(j)} x_j^{k+1}.
  Matrix ht(zq, v, n);
  for (std::size_t j = 0; j < n; ++j) {
    Bigint pw = candidates[j].x;
    for (std::size_t k = 0; k < v; ++k) {
      ht.at(k, j) = zq.neg(zq.mul(candidates[j].lambda0, pw));
      pw = zq.mul(pw, candidates[j].x);
    }
  }
  // Any theta with theta * H = delta''.
  const auto theta = solve(ht, dpp);
  if (!theta) throw MathError("trace (BW): theta system inconsistent");

  // The GRS code C of Lemma 7: xs = registry values,
  // w_j = -lambda_j / lambda0^{(j)} with lambda_j the full-registry
  // Lagrange-at-zero coefficients, dimension n - v.
  std::vector<Bigint> xs;
  xs.reserve(n);
  for (const Candidate& c : candidates) xs.push_back(c.x);
  const std::vector<Bigint> lambda_full =
      lagrange_coefficients_at_zero(zq, xs);
  std::vector<Bigint> ws(n);
  for (std::size_t j = 0; j < n; ++j) {
    ws[j] = zq.neg(zq.div(lambda_full[j], candidates[j].lambda0));
  }
  const GrsCode code(zq, xs, ws, n - v);
  const auto decoded = code.decode(*theta, sp.max_collusion());
  if (!decoded) throw MathError("trace (BW): decoding failed");

  TraceResult out;
  for (std::size_t j = 0; j < n; ++j) {
    const Bigint phi_j = zq.sub((*theta)[j], decoded->codeword[j]);
    if (!phi_j.is_zero()) {
      out.traitors.push_back(
          TraceResult::Traitor{candidates[j].id, candidates[j].x, phi_j});
    }
  }
  return out;
}

}  // namespace

TraceResult trace_nonblackbox(const SystemParams& sp, const PublicKey& pk,
                              const Representation& delta,
                              std::span<const UserRecord> candidates,
                              TraceAlgorithm alg) {
  if (!delta.valid_for(sp, pk)) {
    throw MathError("trace: not a valid representation of the public key");
  }
  const Zq& zq = sp.group.zq();
  const std::vector<Bigint> zs = pk.slot_ids();
  const std::vector<Candidate> cands = collect_candidates(zq, zs, candidates);

  TraceResult out = (alg == TraceAlgorithm::kSyndrome)
                        ? trace_syndrome(sp, pk, delta, cands)
                        : trace_berlekamp_welch(sp, pk, delta, cands);
  verify_coalition(sp, pk, delta, out.traitors);
  return out;
}

}  // namespace dfky
