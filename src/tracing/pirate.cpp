#include "tracing/pirate.h"

namespace dfky {

NoisyDecoder::NoisyDecoder(SystemParams sp,
                           std::unique_ptr<PirateDecoder> inner,
                           double epsilon, std::uint64_t seed)
    : sp_(std::move(sp)),
      inner_(std::move(inner)),
      epsilon_(epsilon),
      rng_(seed) {
  require(inner_ != nullptr, "NoisyDecoder: null inner decoder");
  require(epsilon > 0.0 && epsilon <= 1.0, "NoisyDecoder: bad epsilon");
}

Gelt NoisyDecoder::decrypt(const Ciphertext& ct) {
  // Bernoulli(epsilon) coin from 53 bits of the PRG.
  const double coin =
      static_cast<double>(rng_.u64() >> 11) / 9007199254740992.0;
  if (coin < epsilon_) return inner_->decrypt(ct);
  return sp_.group.random_element(rng_);
}

SelfProtectingDecoder::SelfProtectingDecoder(SystemParams sp,
                                             Representation rep,
                                             PublicKey built_for,
                                             std::uint64_t seed)
    : sp_(std::move(sp)),
      rep_(std::move(rep)),
      built_for_(std::move(built_for)),
      rng_(seed) {}

bool SelfProtectingDecoder::consistent(const Ciphertext& ct) const {
  if (ct.period != built_for_.period) return false;
  if (ct.slots.size() != built_for_.slots.size()) return false;
  for (std::size_t l = 0; l < ct.slots.size(); ++l) {
    // Same identities, same order, as a genuine broadcast would carry.
    if (!(ct.slots[l].z == built_for_.slots[l].z)) return false;
    if (!sp_.group.is_element(ct.slots[l].hr)) return false;
  }
  return sp_.group.is_element(ct.u) && sp_.group.is_element(ct.u2) &&
         sp_.group.is_element(ct.w);
}

Gelt SelfProtectingDecoder::decrypt(const Ciphertext& ct) {
  last_accepted_ = consistent(ct);
  if (!last_accepted_) return sp_.group.random_element(rng_);
  return decrypt_with_representation(sp_, rep_, ct);
}

Representation build_pirate_representation(const SystemParams& sp,
                                           const PublicKey& pk,
                                           std::span<const UserKey> traitors,
                                           Rng& rng) {
  require(!traitors.empty(), "build_pirate_representation: no traitors");
  const Zq& zq = sp.group.zq();

  std::vector<Representation> deltas;
  deltas.reserve(traitors.size());
  for (const UserKey& sk : traitors) {
    deltas.push_back(representation_of(sp, sk, pk));
  }

  // Random weights, all nonzero, summing to 1: draw the first k-1 nonzero
  // and force the last; re-draw in the rare case the last lands on zero.
  std::vector<Bigint> mus(traitors.size());
  while (true) {
    Bigint sum(0);
    for (std::size_t j = 0; j + 1 < mus.size(); ++j) {
      mus[j] = rng.uniform_nonzero_below(zq.modulus());
      sum = zq.add(sum, mus[j]);
    }
    mus.back() = zq.sub(Bigint(1), sum);
    if (!mus.back().is_zero()) break;
  }
  return convex_combination(sp, deltas, mus);
}

}  // namespace dfky
