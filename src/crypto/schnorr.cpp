#include "crypto/schnorr.h"

#include "crypto/sha256.h"
#include "serial/codec.h"

namespace dfky {

namespace {

/// Fiat-Shamir challenge c = H(R || pk || m) reduced into Z_q.
Bigint challenge(const Group& group, const Gelt& commitment, const Gelt& pk,
                 BytesView message) {
  Writer w;
  put_gelt(w, group, commitment);
  put_gelt(w, group, pk);
  w.put_blob(message);
  const auto digest = Sha256::hash(w.bytes());
  return Bigint::from_bytes(digest).mod(group.order());
}

}  // namespace

void SchnorrSignature::serialize(Writer& w, const Group& group) const {
  put_gelt(w, group, commitment);
  put_bigint(w, response);
}

SchnorrSignature SchnorrSignature::deserialize(Reader& r, const Group& group) {
  SchnorrSignature sig;
  sig.commitment = get_gelt(r, group);
  sig.response = get_bigint(r);
  if (sig.response >= group.order()) {
    throw DecodeError("SchnorrSignature: response out of range");
  }
  return sig;
}

SchnorrKeyPair SchnorrKeyPair::generate(const Group& group, Rng& rng) {
  Bigint sk = group.random_exponent(rng);
  Gelt pk = group.pow_g(sk);
  return SchnorrKeyPair(std::move(sk), std::move(pk));
}

SchnorrSignature SchnorrKeyPair::sign(const Group& group, BytesView message,
                                      Rng& rng) const {
  const Bigint k = group.random_exponent(rng);
  SchnorrSignature sig;
  sig.commitment = group.pow_g(k);
  const Bigint c = challenge(group, sig.commitment, pk_, message);
  sig.response = group.zq().add(k, group.zq().mul(c, sk_));
  return sig;
}

void SchnorrKeyPair::serialize_secret(Writer& w, const Group& group) const {
  put_bigint(w, sk_);
  put_gelt(w, group, pk_);
}

SchnorrKeyPair SchnorrKeyPair::deserialize_secret(Reader& r,
                                                  const Group& group) {
  Bigint sk = get_bigint(r);
  Gelt pk = get_gelt(r, group);
  if (sk >= group.order() || !(group.pow_g(sk) == pk)) {
    throw DecodeError("SchnorrKeyPair: inconsistent key pair");
  }
  return SchnorrKeyPair(std::move(sk), std::move(pk));
}

bool schnorr_verify(const Group& group, const Gelt& pk, BytesView message,
                    const SchnorrSignature& sig) {
  if (!group.is_element(sig.commitment) || !group.is_element(pk)) return false;
  if (sig.response.sign() < 0 || sig.response >= group.order()) return false;
  const Bigint c = challenge(group, sig.commitment, pk, message);
  // g^s == R * pk^c
  const Gelt lhs = group.pow_g(sig.response);
  const Gelt rhs = group.mul(sig.commitment, group.pow(pk, c));
  return lhs == rhs;
}

}  // namespace dfky
