#include "crypto/hmac.h"

#include <cstring>

namespace dfky {

HmacSha256::HmacSha256(BytesView key) {
  std::array<byte, Sha256::kBlockSize> k{};
  if (key.size() > Sha256::kBlockSize) {
    const auto d = Sha256::hash(key);
    std::memcpy(k.data(), d.data(), d.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<byte, Sha256::kBlockSize> ipad_key;
  for (std::size_t i = 0; i < k.size(); ++i) {
    ipad_key[i] = k[i] ^ 0x36;
    opad_key_[i] = k[i] ^ 0x5c;
  }
  inner_.update(ipad_key);
}

HmacSha256& HmacSha256::update(BytesView data) {
  inner_.update(data);
  return *this;
}

HmacSha256::Tag HmacSha256::finish() {
  const auto inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

HmacSha256::Tag HmacSha256::mac(BytesView key, BytesView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

bool HmacSha256::verify(BytesView key, BytesView data, BytesView tag) {
  if (tag.size() != kTagSize) return false;
  const Tag expect = mac(key, data);
  byte diff = 0;
  for (std::size_t i = 0; i < kTagSize; ++i) diff |= expect[i] ^ tag[i];
  return diff == 0;
}

}  // namespace dfky
