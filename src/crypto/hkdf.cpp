#include "crypto/hkdf.h"

namespace dfky {

Sha256::Digest hkdf_extract(BytesView salt, BytesView ikm) {
  static constexpr std::array<byte, Sha256::kDigestSize> kZeroSalt{};
  return HmacSha256::mac(salt.empty() ? BytesView(kZeroSalt) : salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t len) {
  require(len <= 255 * Sha256::kDigestSize, "hkdf_expand: output too long");
  Bytes out;
  out.reserve(len);
  Sha256::Digest t{};
  std::size_t t_len = 0;
  byte counter = 1;
  while (out.size() < len) {
    HmacSha256 h(prk);
    h.update(BytesView(t.data(), t_len));
    h.update(info);
    h.update(BytesView(&counter, 1));
    t = h.finish();
    t_len = t.size();
    const std::size_t take = std::min(t_len, len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
    ++counter;
  }
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t len) {
  const auto prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, len);
}

}  // namespace dfky
