// One-time authenticated symmetric encryption (encrypt-then-MAC with
// ChaCha20 + HMAC-SHA256).
//
// Implements the "secure one-time symmetric-key encryption scheme" of the
// paper's hybrid New-period remark (Sect. 4) and the payload layer of the
// content-distribution examples. Keys must be used once (the nonce is fixed);
// both uses here derive a fresh key per message via HKDF from a fresh group
// element.
#pragma once

#include "common.h"

namespace dfky {

constexpr std::size_t kSealKeySize = 32;

/// Encrypts and authenticates `plaintext` under the one-time `key32`.
Bytes seal(BytesView key32, BytesView plaintext);

/// Decrypts and verifies; throws DecodeError if the tag does not match.
Bytes open_sealed(BytesView key32, BytesView sealed);

}  // namespace dfky
