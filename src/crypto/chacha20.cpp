#include "crypto/chacha20.h"

#include <bit>

namespace dfky {

namespace {

inline std::uint32_t load_le32(const byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store_le32(byte* p, std::uint32_t v) {
  p[0] = static_cast<byte>(v);
  p[1] = static_cast<byte>(v >> 8);
  p[2] = static_cast<byte>(v >> 16);
  p[3] = static_cast<byte>(v >> 24);
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

void chacha_block(const std::array<std::uint32_t, 16>& in,
                  std::array<byte, ChaCha20::kBlockSize>& out) {
  std::array<std::uint32_t, 16> x = in;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, x[i] + in[i]);
  }
}

}  // namespace

ChaCha20::ChaCha20(BytesView key, BytesView nonce, std::uint32_t counter) {
  require(key.size() == kKeySize, "ChaCha20: key must be 32 bytes");
  require(nonce.size() == kNonceSize, "ChaCha20: nonce must be 12 bytes");
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill() {
  chacha_block(state_, buf_);
  ++state_[12];  // RFC 8439 counter wraps mod 2^32; callers never reach that
  buf_pos_ = 0;
}

void ChaCha20::apply(std::span<byte> data) {
  for (byte& b : data) {
    if (buf_pos_ == kBlockSize) refill();
    b ^= buf_[buf_pos_++];
  }
}

void ChaCha20::keystream(std::span<byte> out) {
  for (byte& b : out) {
    if (buf_pos_ == kBlockSize) refill();
    b = buf_[buf_pos_++];
  }
}

std::array<byte, ChaCha20::kBlockSize> ChaCha20::block(BytesView key,
                                                       BytesView nonce,
                                                       std::uint32_t counter) {
  ChaCha20 c(key, nonce, counter);
  std::array<byte, kBlockSize> out{};
  c.keystream(out);
  return out;
}

Bytes chacha20_xor(BytesView key, BytesView nonce, std::uint32_t counter,
                   BytesView data) {
  Bytes out(data.begin(), data.end());
  ChaCha20 c(key, nonce, counter);
  c.apply(out);
  return out;
}

}  // namespace dfky
