// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum used by the durable state store's record and snapshot framing
// (DESIGN.md Sect. 9). CRC catches accidental corruption (torn writes, bit
// rot) cheaply; it is NOT an authenticator — the store layers an HMAC chain
// on top for that.
#pragma once

#include "common.h"

namespace dfky {

/// One-shot CRC32C of `data` (initial value 0).
std::uint32_t crc32c(BytesView data);

/// Streaming form: feed `crc` from a previous call (or 0) to continue.
std::uint32_t crc32c_update(std::uint32_t crc, BytesView data);

}  // namespace dfky
