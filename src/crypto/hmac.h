// HMAC-SHA256 (RFC 2104).
#pragma once

#include "crypto/sha256.h"

namespace dfky {

class HmacSha256 {
 public:
  static constexpr std::size_t kTagSize = Sha256::kDigestSize;
  using Tag = Sha256::Digest;

  explicit HmacSha256(BytesView key);

  HmacSha256& update(BytesView data);
  Tag finish();

  static Tag mac(BytesView key, BytesView data);
  /// Constant-time tag comparison.
  static bool verify(BytesView key, BytesView data, BytesView tag);

 private:
  Sha256 inner_;
  std::array<byte, Sha256::kBlockSize> opad_key_{};
};

}  // namespace dfky
