// Schnorr signatures over the scheme's group 𝒢.
//
// The paper requires the `change period` message to be "digitally signed by
// the security manager so that no third parties can maliciously initiate the
// New-period operation" (Sect. 4). We instantiate that signature over the
// same Schnorr group the scheme already uses.
#pragma once

#include "group/element.h"
#include "serial/buffer.h"

namespace dfky {

struct SchnorrSignature {
  Gelt commitment;  // R = g^k
  Bigint response;  // s = k + c * sk  (mod q)

  void serialize(Writer& w, const Group& group) const;
  static SchnorrSignature deserialize(Reader& r, const Group& group);
};

class SchnorrKeyPair {
 public:
  /// Fresh key pair: sk uniform in Z_q, pk = g^sk.
  static SchnorrKeyPair generate(const Group& group, Rng& rng);

  const Gelt& public_key() const { return pk_; }

  SchnorrSignature sign(const Group& group, BytesView message,
                        Rng& rng) const;

  /// Serializes the FULL key pair including the secret scalar — used only
  /// for the security manager's own state persistence. Handle with care.
  void serialize_secret(Writer& w, const Group& group) const;
  static SchnorrKeyPair deserialize_secret(Reader& r, const Group& group);

 private:
  SchnorrKeyPair(Bigint sk, Gelt pk) : sk_(std::move(sk)), pk_(std::move(pk)) {}

  Bigint sk_;
  Gelt pk_;
};

/// Verifies `sig` on `message` under `pk`.
bool schnorr_verify(const Group& group, const Gelt& pk, BytesView message,
                    const SchnorrSignature& sig);

}  // namespace dfky
