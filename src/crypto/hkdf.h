// HKDF-SHA256 (RFC 5869). Derives symmetric keys from group elements in the
// hybrid New-period path and in content key encapsulation.
#pragma once

#include "crypto/hmac.h"

namespace dfky {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256::Digest hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: `len` bytes of output keyed by `prk`, bound to `info`.
/// `len` must be <= 255 * 32.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t len);

/// Extract-then-expand convenience.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t len);

}  // namespace dfky
