// SHA-256 (FIPS 180-4).
//
// Used by HMAC/HKDF for the hybrid reset message and by Schnorr signatures
// for the challenge hash.
#pragma once

#include <array>
#include <cstdint>

#include "common.h"

namespace dfky {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<byte, kDigestSize>;

  Sha256();

  Sha256& update(BytesView data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

  static Digest hash(BytesView data);

 private:
  void process_block(const byte* block);

  std::array<std::uint32_t, 8> h_{};
  std::array<byte, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace dfky
