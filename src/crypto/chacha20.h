// ChaCha20 stream cipher (RFC 8439).
//
// Used for (a) the deterministic PRG behind ChaChaRng and (b) the one-time
// symmetric encryption of the hybrid New-period reset message (paper Sect. 4,
// Remark).
#pragma once

#include <array>
#include <cstdint>

#include "common.h"

namespace dfky {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  ChaCha20(BytesView key, BytesView nonce, std::uint32_t counter = 0);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void apply(std::span<byte> data);

  /// Produces `out.size()` keystream bytes.
  void keystream(std::span<byte> out);

  /// One 64-byte block for the given key/nonce/counter (RFC 8439 block fn).
  static std::array<byte, kBlockSize> block(BytesView key, BytesView nonce,
                                            std::uint32_t counter);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_{};
  std::array<byte, kBlockSize> buf_{};
  std::size_t buf_pos_ = kBlockSize;  // exhausted
};

/// Convenience one-shot: XOR `data` with the ChaCha20 keystream.
Bytes chacha20_xor(BytesView key, BytesView nonce, std::uint32_t counter,
                   BytesView data);

}  // namespace dfky
