#include "crypto/crc32c.h"

#include <array>

namespace dfky {

namespace {

// Reflected-form table for the Castagnoli polynomial, built once at first
// use. Slicing-by-4 keeps the store's append hot path cheap without any
// hardware-specific intrinsics.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32c_update(std::uint32_t crc, BytesView data) {
  const Tables& tb = tables();
  std::uint32_t c = ~crc;
  std::size_t i = 0;
  for (; i + 4 <= data.size(); i += 4) {
    c ^= static_cast<std::uint32_t>(data[i]) |
         (static_cast<std::uint32_t>(data[i + 1]) << 8) |
         (static_cast<std::uint32_t>(data[i + 2]) << 16) |
         (static_cast<std::uint32_t>(data[i + 3]) << 24);
    c = tb.t[3][c & 0xffu] ^ tb.t[2][(c >> 8) & 0xffu] ^
        tb.t[1][(c >> 16) & 0xffu] ^ tb.t[0][c >> 24];
  }
  for (; i < data.size(); ++i) {
    c = tb.t[0][(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return ~c;
}

std::uint32_t crc32c(BytesView data) { return crc32c_update(0, data); }

}  // namespace dfky
