#include "crypto/stream_seal.h"

#include "crypto/chacha20.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"

namespace dfky {

namespace {

constexpr std::array<byte, ChaCha20::kNonceSize> kSealNonce = {
    'd', 'f', 'k', 'y', '-', 's', 'e', 'a', 'l', 0, 0, 1};

struct DerivedKeys {
  Bytes enc_key;
  Bytes mac_key;
};

DerivedKeys derive(BytesView key32) {
  require(key32.size() == kSealKeySize, "seal: key must be 32 bytes");
  static const byte kInfoEnc[] = {'e', 'n', 'c'};
  static const byte kInfoMac[] = {'m', 'a', 'c'};
  return DerivedKeys{
      hkdf(/*salt=*/{}, key32, BytesView(kInfoEnc, sizeof(kInfoEnc)), 32),
      hkdf(/*salt=*/{}, key32, BytesView(kInfoMac, sizeof(kInfoMac)), 32)};
}

}  // namespace

Bytes seal(BytesView key32, BytesView plaintext) {
  const DerivedKeys keys = derive(key32);
  Bytes out = chacha20_xor(keys.enc_key, kSealNonce, 1, plaintext);
  const auto tag = HmacSha256::mac(keys.mac_key, out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

Bytes open_sealed(BytesView key32, BytesView sealed) {
  const DerivedKeys keys = derive(key32);
  if (sealed.size() < HmacSha256::kTagSize) {
    throw DecodeError("open_sealed: message too short");
  }
  const std::size_t ct_len = sealed.size() - HmacSha256::kTagSize;
  const BytesView ct = sealed.subspan(0, ct_len);
  const BytesView tag = sealed.subspan(ct_len);
  if (!HmacSha256::verify(keys.mac_key, ct, tag)) {
    throw DecodeError("open_sealed: authentication failed");
  }
  return chacha20_xor(keys.enc_key, kSealNonce, 1, ct);
}

}  // namespace dfky
