// Deterministic ChaCha20-based PRG for reproducible tests and benchmarks.
#pragma once

#include "crypto/chacha20.h"
#include "rng/rng.h"

namespace dfky {

class ChaChaRng final : public Rng {
 public:
  /// Seeds from a 32-byte key.
  explicit ChaChaRng(BytesView seed32);
  /// Convenience: expands a 64-bit seed through SHA-256.
  explicit ChaChaRng(std::uint64_t seed);

  void fill(std::span<byte> out) override;

  /// An independent child stream (forked by drawing a fresh seed).
  ChaChaRng fork();

 private:
  ChaCha20 stream_;
};

}  // namespace dfky
