// OS entropy source (/dev/urandom), buffered.
#pragma once

#include "rng/rng.h"

namespace dfky {

class SystemRng final : public Rng {
 public:
  SystemRng();
  ~SystemRng() override;

  SystemRng(const SystemRng&) = delete;
  SystemRng& operator=(const SystemRng&) = delete;

  void fill(std::span<byte> out) override;

 private:
  int fd_ = -1;
};

}  // namespace dfky
