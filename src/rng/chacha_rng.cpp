#include "rng/chacha_rng.h"

#include "crypto/sha256.h"

namespace dfky {

namespace {

constexpr std::array<byte, ChaCha20::kNonceSize> kRngNonce = {
    'd', 'f', 'k', 'y', '-', 'p', 'r', 'g', 0, 0, 0, 1};

std::array<byte, 32> expand_seed(std::uint64_t seed) {
  std::array<byte, 8> b;
  for (int i = 0; i < 8; ++i) b[i] = static_cast<byte>(seed >> (56 - 8 * i));
  return Sha256::hash(b);
}

ChaCha20 make_stream(BytesView seed32) {
  require(seed32.size() == 32, "ChaChaRng: seed must be 32 bytes");
  return ChaCha20(seed32, kRngNonce);
}

}  // namespace

ChaChaRng::ChaChaRng(BytesView seed32) : stream_(make_stream(seed32)) {}

ChaChaRng::ChaChaRng(std::uint64_t seed)
    : stream_(make_stream(expand_seed(seed))) {}

void ChaChaRng::fill(std::span<byte> out) {
  stream_.keystream(out);
}

ChaChaRng ChaChaRng::fork() {
  std::array<byte, 32> child_seed;
  fill(child_seed);
  return ChaChaRng(child_seed);
}

}  // namespace dfky
