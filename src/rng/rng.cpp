#include "rng/rng.h"

namespace dfky {

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

std::uint64_t Rng::u64() {
  std::array<byte, 8> b;
  fill(b);
  std::uint64_t v = 0;
  for (byte x : b) v = (v << 8) | x;
  return v;
}

Bigint Rng::uniform_below(const Bigint& bound) {
  require(bound.sign() > 0, "Rng::uniform_below: bound must be positive");
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const unsigned top_bits = static_cast<unsigned>(bits % 8 == 0 ? 8 : bits % 8);
  const byte mask = static_cast<byte>((1u << top_bits) - 1);
  Bytes buf(nbytes);
  while (true) {
    fill(buf);
    if (!buf.empty()) buf[0] &= mask;  // trim to bit_length(bound) bits
    Bigint candidate = Bigint::from_bytes(buf);
    if (candidate < bound) return candidate;
  }
}

Bigint Rng::uniform_nonzero_below(const Bigint& bound) {
  require(bound > Bigint(1), "Rng::uniform_nonzero_below: bound must be > 1");
  while (true) {
    Bigint c = uniform_below(bound);
    if (!c.is_zero()) return c;
  }
}

Bigint Rng::uniform_bits(std::size_t bits) {
  require(bits >= 1, "Rng::uniform_bits: bits must be >= 1");
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes buf(nbytes);
  fill(buf);
  Bigint v = Bigint::from_bytes(buf);
  // Clear excess high bits, then force the top bit.
  const std::size_t excess = nbytes * 8 - bits;
  if (excess > 0) v = v.mod(Bigint(1) << bits);
  if (!v.bit(bits - 1)) v += (Bigint(1) << (bits - 1));
  return v.mod(Bigint(1) << bits);
}

}  // namespace dfky
