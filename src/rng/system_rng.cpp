#include "rng/system_rng.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

namespace dfky {

SystemRng::SystemRng() {
  fd_ = ::open("/dev/urandom", O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) throw Error("SystemRng: cannot open /dev/urandom");
}

SystemRng::~SystemRng() {
  if (fd_ >= 0) ::close(fd_);
}

void SystemRng::fill(std::span<byte> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(fd_, out.data() + got, out.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("SystemRng: read from /dev/urandom failed");
    }
    got += static_cast<std::size_t>(n);
  }
}

}  // namespace dfky
