// Randomness interface.
//
// Every randomized algorithm in the library takes an `Rng&` parameter, so
// tests and benchmarks can substitute a deterministic ChaChaRng while
// deployments use SystemRng.
#pragma once

#include "bigint/bigint.h"

namespace dfky {

class Rng {
 public:
  virtual ~Rng() = default;

  /// Fills `out` with random bytes.
  virtual void fill(std::span<byte> out) = 0;

  Bytes bytes(std::size_t n);
  std::uint64_t u64();
  /// Uniform integer in [0, bound) via rejection sampling. bound must be > 0.
  Bigint uniform_below(const Bigint& bound);
  /// Uniform integer in [1, bound).
  Bigint uniform_nonzero_below(const Bigint& bound);
  /// Uniform integer with exactly `bits` bits (top bit set). bits >= 1.
  Bigint uniform_bits(std::size_t bits);
};

}  // namespace dfky
