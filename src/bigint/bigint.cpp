#include "bigint/bigint.h"

#include <limits>
#include <ostream>

namespace dfky {

Bigint Bigint::from_dec(std::string_view s) {
  Bigint r;
  if (s.empty() || mpz_set_str(r.z_, std::string(s).c_str(), 10) != 0) {
    throw DecodeError("Bigint::from_dec: invalid decimal string");
  }
  return r;
}

Bigint Bigint::from_hex(std::string_view s) {
  Bigint r;
  if (s.empty() || mpz_set_str(r.z_, std::string(s).c_str(), 16) != 0) {
    throw DecodeError("Bigint::from_hex: invalid hex string");
  }
  return r;
}

Bigint Bigint::from_bytes(BytesView bytes) {
  Bigint r;
  if (!bytes.empty()) {
    mpz_import(r.z_, bytes.size(), /*order=*/1, /*size=*/1, /*endian=*/1,
               /*nails=*/0, bytes.data());
  }
  return r;
}

std::string Bigint::to_dec() const {
  char* s = mpz_get_str(nullptr, 10, z_);
  std::string out(s);
  void (*freefn)(void*, std::size_t);
  mp_get_memory_functions(nullptr, nullptr, &freefn);
  freefn(s, out.size() + 1);
  return out;
}

std::string Bigint::to_hex() const {
  char* s = mpz_get_str(nullptr, 16, z_);
  std::string out(s);
  void (*freefn)(void*, std::size_t);
  mp_get_memory_functions(nullptr, nullptr, &freefn);
  freefn(s, out.size() + 1);
  return out;
}

Bytes Bigint::to_bytes() const {
  require(sign() >= 0, "Bigint::to_bytes: negative value");
  if (is_zero()) return {};
  const std::size_t n = (bit_length() + 7) / 8;
  Bytes out(n);
  std::size_t written = 0;
  mpz_export(out.data(), &written, 1, 1, 1, 0, z_);
  out.resize(written);
  return out;
}

Bytes Bigint::to_bytes_padded(std::size_t len) const {
  Bytes raw = to_bytes();
  require(raw.size() <= len, "Bigint::to_bytes_padded: value too large");
  Bytes out(len, 0);
  std::copy(raw.begin(), raw.end(), out.begin() + (len - raw.size()));
  return out;
}

Bigint operator/(const Bigint& a, const Bigint& b) {
  if (b.is_zero()) throw MathError("Bigint: division by zero");
  Bigint r;
  mpz_tdiv_q(r.raw(), a.raw(), b.raw());
  return r;
}

Bigint operator%(const Bigint& a, const Bigint& b) {
  if (b.is_zero()) throw MathError("Bigint: modulo by zero");
  Bigint r;
  mpz_tdiv_r(r.raw(), a.raw(), b.raw());
  return r;
}

Bigint Bigint::mod(const Bigint& m) const {
  require(m.sign() > 0, "Bigint::mod: modulus must be positive");
  Bigint r;
  mpz_mod(r.z_, z_, m.z_);
  return r;
}

Bigint Bigint::powm(const Bigint& base, const Bigint& exp, const Bigint& m) {
  require(m.sign() > 0, "Bigint::powm: modulus must be positive");
  Bigint r;
  if (exp.sign() < 0) {
    const Bigint inv = invm(base, m);
    const Bigint pos_exp = -exp;
    mpz_powm(r.z_, inv.z_, pos_exp.z_, m.z_);
  } else {
    mpz_powm(r.z_, base.z_, exp.z_, m.z_);
  }
  return r;
}

Bigint Bigint::invm(const Bigint& a, const Bigint& m) {
  require(m.sign() > 0, "Bigint::invm: modulus must be positive");
  Bigint r;
  if (mpz_invert(r.z_, a.z_, m.z_) == 0) {
    throw MathError("Bigint::invm: element not invertible");
  }
  return r;
}

Bigint Bigint::gcd(const Bigint& a, const Bigint& b) {
  Bigint r;
  mpz_gcd(r.z_, a.z_, b.z_);
  return r;
}

bool Bigint::probab_prime(int reps) const {
  return mpz_probab_prime_p(z_, reps) != 0;
}

Bigint Bigint::next_prime() const {
  Bigint r;
  mpz_nextprime(r.z_, z_);
  return r;
}

int Bigint::jacobi(const Bigint& n) const {
  require(n.is_odd() && n.sign() > 0, "Bigint::jacobi: n must be odd > 0");
  return mpz_jacobi(z_, n.z_);
}

std::uint64_t Bigint::to_u64() const {
  require(sign() >= 0, "Bigint::to_u64: negative value");
  require(bit_length() <= 64, "Bigint::to_u64: value exceeds 64 bits");
  std::uint64_t out = 0;
  // Export manually: mpz_get_ui truncates to unsigned long which is 64-bit on
  // this platform, but exporting is portable regardless of limb size.
  Bytes b = to_bytes();
  for (byte x : b) out = (out << 8) | x;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Bigint& v) {
  return os << v.to_dec();
}

}  // namespace dfky
