// RAII value wrapper around GMP's mpz_t.
//
// This is the only place in the library that touches raw GMP handles; all
// higher layers (fields, groups, polynomials, codes) treat Bigint as a
// regular value type with deep-copy semantics.
#pragma once

#include <gmp.h>

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common.h"

namespace dfky {

/// Arbitrary-precision signed integer with value semantics.
class Bigint {
 public:
  Bigint() { mpz_init(z_); }
  Bigint(long v) { mpz_init_set_si(z_, v); }  // NOLINT: implicit by design
  Bigint(unsigned long v) { mpz_init_set_ui(z_, v); }
  Bigint(int v) : Bigint(static_cast<long>(v)) {}

  Bigint(const Bigint& o) { mpz_init_set(z_, o.z_); }
  Bigint(Bigint&& o) noexcept {
    mpz_init(z_);
    mpz_swap(z_, o.z_);
  }
  Bigint& operator=(const Bigint& o) {
    if (this != &o) mpz_set(z_, o.z_);
    return *this;
  }
  Bigint& operator=(Bigint&& o) noexcept {
    mpz_swap(z_, o.z_);
    return *this;
  }
  ~Bigint() { mpz_clear(z_); }

  /// Parses a decimal string (optionally signed). Throws DecodeError.
  static Bigint from_dec(std::string_view s);
  /// Parses a hexadecimal string (no 0x prefix). Throws DecodeError.
  static Bigint from_hex(std::string_view s);
  /// Interprets big-endian bytes as an unsigned integer.
  static Bigint from_bytes(BytesView bytes);

  std::string to_dec() const;
  std::string to_hex() const;
  /// Minimal big-endian byte encoding (empty for zero). Requires *this >= 0.
  Bytes to_bytes() const;
  /// Big-endian encoding left-padded with zeros to exactly `len` bytes.
  /// Throws ContractError if the value does not fit or is negative.
  Bytes to_bytes_padded(std::size_t len) const;

  // -- arithmetic ------------------------------------------------------------
  friend Bigint operator+(const Bigint& a, const Bigint& b) {
    Bigint r;
    mpz_add(r.z_, a.z_, b.z_);
    return r;
  }
  friend Bigint operator-(const Bigint& a, const Bigint& b) {
    Bigint r;
    mpz_sub(r.z_, a.z_, b.z_);
    return r;
  }
  friend Bigint operator*(const Bigint& a, const Bigint& b) {
    Bigint r;
    mpz_mul(r.z_, a.z_, b.z_);
    return r;
  }
  /// Truncated division (C semantics). Throws MathError on division by zero.
  friend Bigint operator/(const Bigint& a, const Bigint& b);
  /// Truncated remainder (sign follows dividend, C semantics).
  friend Bigint operator%(const Bigint& a, const Bigint& b);
  Bigint operator-() const {
    Bigint r;
    mpz_neg(r.z_, z_);
    return r;
  }

  Bigint& operator+=(const Bigint& b) {
    mpz_add(z_, z_, b.z_);
    return *this;
  }
  Bigint& operator-=(const Bigint& b) {
    mpz_sub(z_, z_, b.z_);
    return *this;
  }
  Bigint& operator*=(const Bigint& b) {
    mpz_mul(z_, z_, b.z_);
    return *this;
  }

  Bigint operator<<(unsigned long n) const {
    Bigint r;
    mpz_mul_2exp(r.z_, z_, n);
    return r;
  }
  Bigint operator>>(unsigned long n) const {
    Bigint r;
    mpz_fdiv_q_2exp(r.z_, z_, n);
    return r;
  }

  // -- comparison ------------------------------------------------------------
  friend bool operator==(const Bigint& a, const Bigint& b) {
    return mpz_cmp(a.z_, b.z_) == 0;
  }
  friend std::strong_ordering operator<=>(const Bigint& a, const Bigint& b) {
    const int c = mpz_cmp(a.z_, b.z_);
    return c < 0    ? std::strong_ordering::less
           : c > 0 ? std::strong_ordering::greater
                   : std::strong_ordering::equal;
  }
  friend bool operator==(const Bigint& a, long b) {
    return mpz_cmp_si(a.z_, b) == 0;
  }

  // -- modular arithmetic ----------------------------------------------------
  /// Canonical residue in [0, m). Requires m > 0.
  Bigint mod(const Bigint& m) const;
  /// (base ^ exp) mod m. Negative exponents invert the base first.
  static Bigint powm(const Bigint& base, const Bigint& exp, const Bigint& m);
  /// Modular inverse; throws MathError if gcd(a, m) != 1.
  static Bigint invm(const Bigint& a, const Bigint& m);
  static Bigint gcd(const Bigint& a, const Bigint& b);

  // -- number theory ---------------------------------------------------------
  /// Miller-Rabin style primality test (GMP), `reps` rounds.
  bool probab_prime(int reps = 32) const;
  /// Next prime strictly greater than *this.
  Bigint next_prime() const;
  /// Jacobi symbol (*this / n); n must be odd and positive.
  int jacobi(const Bigint& n) const;

  // -- inspection ------------------------------------------------------------
  bool is_zero() const { return mpz_sgn(z_) == 0; }
  bool is_one() const { return mpz_cmp_ui(z_, 1) == 0; }
  bool is_odd() const { return mpz_odd_p(z_) != 0; }
  int sign() const { return mpz_sgn(z_); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const {
    return is_zero() ? 0 : mpz_sizeinbase(z_, 2);
  }
  bool bit(std::size_t i) const { return mpz_tstbit(z_, i) != 0; }
  /// Converts to uint64_t; throws ContractError if out of range or negative.
  std::uint64_t to_u64() const;

  /// Low-level handle for interop inside the bigint module only.
  const mpz_t& raw() const { return z_; }
  mpz_t& raw() { return z_; }

 private:
  mpz_t z_;
};

std::ostream& operator<<(std::ostream& os, const Bigint& v);

}  // namespace dfky
