// Stateless algorithms of the scheme (paper Sect. 4): Setup, key issuance,
// Encryption, Decryption, and the public-key edit performed by Remove-user.
// The stateful orchestration (saturation bookkeeping, period changes, user
// registry) lives in SecurityManager / Receiver.
#pragma once

#include "core/ciphertext.h"
#include "core/keys.h"

namespace dfky {

struct SetupResult {
  MasterSecret msk;
  PublicKey pk;
};

/// Setup(1^k, 1^v): samples the master polynomials A, B of degree v and
/// publishes PK with placeholder slot identities 1..v.
SetupResult setup(const SystemParams& sp, Rng& rng);

/// Rebuilds the public key for the current master secret with placeholder
/// slots (used by Setup and by New-period).
PublicKey make_fresh_public_key(const SystemParams& sp,
                                const MasterSecret& msk,
                                std::uint64_t period);

/// Add-user: SK_i = < x, A(x), B(x) >. The caller (the manager) is
/// responsible for choosing x outside {1..v} and the set of issued values.
UserKey issue_user_key(const SystemParams& sp, const MasterSecret& msk,
                       const Bigint& x, std::uint64_t period);

/// Remove-user public-key edit: overwrites slot `slot_index` with
/// ( x, g^{A(x)} g'^{B(x)} ).
void revoke_into_slot(const SystemParams& sp, const MasterSecret& msk,
                      PublicKey& pk, std::size_t slot_index, const Bigint& x);

/// Encryption of a group element M under PK.
Ciphertext encrypt(const SystemParams& sp, const PublicKey& pk, const Gelt& m,
                   Rng& rng);

/// Decryption with a user key. Throws ContractError if the key's period does
/// not match the ciphertext, or if the user's x appears among the ciphertext
/// slots (a revoked user: no leap-vector exists, paper Sect. 3.2).
Gelt decrypt(const SystemParams& sp, const UserKey& sk, const Ciphertext& ct);

/// Decryption with an arbitrary representation (used by pirate decoders; any
/// valid representation of the encrypting key decrypts correctly).
Gelt decrypt_with_representation(const SystemParams& sp,
                                 const Representation& rep,
                                 const Ciphertext& ct);

/// The user's compact representation delta_i w.r.t. `pk` (Sect. 6.3.1):
///     < lambda_0 A(x), lambda_0 B(x), lambda_1, ..., lambda_v >.
/// Throws ContractError if the user is revoked in `pk`.
Representation representation_of(const SystemParams& sp, const UserKey& sk,
                                 const PublicKey& pk);

/// Convex combination sum_j mu_j * delta_j with sum mu_j = 1 — the only kind
/// of new representation a coalition can forge (Lemma 6). Used to model
/// pirate key construction.
Representation convex_combination(const SystemParams& sp,
                                  std::span<const Representation> deltas,
                                  std::span<const Bigint> mus);

}  // namespace dfky
