#include "core/manager.h"

#include "obs/metrics.h"
#include "serial/codec.h"

namespace dfky {

namespace {

constexpr std::uint32_t kStateMagic = 0x64666b79;  // "dfky"
// v2 appends the signed-reset archive (catch-up recovery) to v1.
constexpr std::uint8_t kStateVersion = 2;

void put_poly_fixed(Writer& w, const Polynomial& p, std::size_t v) {
  for (std::size_t i = 0; i <= v; ++i) put_bigint(w, p.coeff(i));
}

Polynomial get_poly_fixed(Reader& r, const Zq& zq, std::size_t v) {
  std::vector<Bigint> c;
  c.reserve(v + 1);
  for (std::size_t i = 0; i <= v; ++i) c.push_back(get_bigint(r));
  return Polynomial(zq, std::move(c));
}

}  // namespace

// ---- ManagerMutation ----------------------------------------------------------

void ManagerMutation::serialize(Writer& w, const Group& group) const {
  w.put_u8(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case Kind::kAddUser:
      put_bigint(w, x);
      break;
    case Kind::kRemoveUser:
      w.put_u64(user_id);
      break;
    case Kind::kNewPeriod:
      put_bigint_vec(w, d);
      put_bigint_vec(w, e);
      bundle.serialize(w, group);
      break;
  }
}

ManagerMutation ManagerMutation::deserialize(Reader& r, const Group& group) {
  ManagerMutation m;
  const std::uint8_t kind_raw = r.get_u8();
  switch (kind_raw) {
    case static_cast<std::uint8_t>(Kind::kAddUser):
      m.kind = Kind::kAddUser;
      m.x = get_bigint(r);
      break;
    case static_cast<std::uint8_t>(Kind::kRemoveUser):
      m.kind = Kind::kRemoveUser;
      m.user_id = r.get_u64();
      break;
    case static_cast<std::uint8_t>(Kind::kNewPeriod):
      m.kind = Kind::kNewPeriod;
      m.d = get_bigint_vec(r);
      m.e = get_bigint_vec(r);
      m.bundle = SignedResetBundle::deserialize(r, group);
      break;
    default:
      throw DecodeError("ManagerMutation: unknown kind");
  }
  return m;
}

// ---- SecurityManager ----------------------------------------------------------

SecurityManager::SecurityManager(SystemParams sp, Rng& rng,
                                 ResetMode default_mode)
    : sp_(std::move(sp)),
      msk_(Polynomial::zero(sp_.group.zq()), Polynomial::zero(sp_.group.zq())),
      sign_key_(SchnorrKeyPair::generate(sp_.group, rng)),
      default_mode_(default_mode) {
  SetupResult s = setup(sp_, rng);
  msk_ = std::move(s.msk);
  pk_ = std::move(s.pk);
}

Bigint SecurityManager::fresh_x(Rng& rng) {
  const Bigint v_bound(static_cast<long>(sp_.v));
  while (true) {
    Bigint x = rng.uniform_nonzero_below(sp_.group.order());
    if (x <= v_bound) continue;  // placeholder identities 1..v are reserved
    if (used_x_.contains(x)) continue;
    return x;
  }
}

SecurityManager::AddedUser SecurityManager::add_user(Rng& rng) {
  const Bigint x = fresh_x(rng);
  const std::uint64_t id = users_.size();
  users_.push_back(UserRecord{id, x, false, 0});
  used_x_.insert(x);
  record(ManagerMutation{.kind = ManagerMutation::Kind::kAddUser, .x = x});
  DFKY_OBS(obs::counter("dfky_users_added_total").inc(););
  return AddedUser{id, issue_user_key(sp_, msk_, x, pk_.period)};
}

SecurityManager::AddedUser SecurityManager::add_user_with_value(
    const Bigint& x) {
  const Bigint xr = sp_.group.zq().reduce(x);
  require(!xr.is_zero(), "add_user_with_value: x must be nonzero");
  require(xr > Bigint(static_cast<long>(sp_.v)),
          "add_user_with_value: x collides with placeholder identities");
  require(!used_x_.contains(xr), "add_user_with_value: x already in use");
  const std::uint64_t id = users_.size();
  users_.push_back(UserRecord{id, xr, false, 0});
  used_x_.insert(xr);
  record(ManagerMutation{.kind = ManagerMutation::Kind::kAddUser, .x = xr});
  DFKY_OBS(obs::counter("dfky_users_added_total").inc(););
  return AddedUser{id, issue_user_key(sp_, msk_, xr, pk_.period)};
}

const UserRecord& SecurityManager::user(std::uint64_t id) const {
  require(id < users_.size(), "SecurityManager: unknown user id");
  return users_[id];
}

std::optional<SignedResetBundle> SecurityManager::remove_user(std::uint64_t id,
                                                              Rng& rng) {
  return remove_user(id, rng, default_mode_);
}

std::optional<SignedResetBundle> SecurityManager::remove_user(std::uint64_t id,
                                                              Rng& rng,
                                                              ResetMode mode) {
  require(id < users_.size(), "remove_user: unknown user id");
  UserRecord& rec = users_[id];
  require(!rec.revoked, "remove_user: user already revoked");

  std::optional<SignedResetBundle> bundle;
  if (level_ == sp_.v) {
    bundle = new_period(rng, mode);
  }
  revoke_into_slot(sp_, msk_, pk_, level_, rec.x);
  ++level_;
  rec.revoked = true;
  rec.revoked_in_period = pk_.period;
  record(ManagerMutation{.kind = ManagerMutation::Kind::kRemoveUser,
                         .user_id = id});
  DFKY_OBS(
      obs::counter("dfky_users_revoked_total").inc();
      obs::gauge("dfky_saturation_level")
          .set(static_cast<std::int64_t>(level_));
      obs::event({.name = "revoke",
                  .period = static_cast<std::int64_t>(pk_.period),
                  .user = static_cast<std::int64_t>(id),
                  .detail = "slot",
                  .value = static_cast<std::int64_t>(level_)}););
  return bundle;
}

std::vector<SignedResetBundle> SecurityManager::remove_users(
    std::span<const std::uint64_t> ids, Rng& rng) {
  return remove_users(ids, rng, default_mode_);
}

std::vector<SignedResetBundle> SecurityManager::remove_users(
    std::span<const std::uint64_t> ids, Rng& rng, ResetMode mode) {
  // All-or-nothing validation before any state change.
  std::set<std::uint64_t> seen;
  for (std::uint64_t id : ids) {
    require(id < users_.size(), "remove_users: unknown user id");
    require(!users_[id].revoked, "remove_users: user already revoked");
    require(seen.insert(id).second, "remove_users: duplicate user id");
  }
  std::vector<SignedResetBundle> bundles;
  for (std::uint64_t id : ids) {
    auto bundle = remove_user(id, rng, mode);
    if (bundle) bundles.push_back(std::move(*bundle));
  }
  return bundles;
}

SignedResetBundle SecurityManager::new_period(Rng& rng) {
  return new_period(rng, default_mode_);
}

SecurityManager::SecurityManager(RestoreTag, SystemParams sp,
                                 MasterSecret msk, PublicKey pk,
                                 SchnorrKeyPair sign_key, ResetMode mode,
                                 std::size_t level,
                                 std::vector<UserRecord> users,
                                 std::size_t archive_capacity,
                                 std::deque<SignedResetBundle> archive)
    : sp_(std::move(sp)),
      msk_(std::move(msk)),
      pk_(std::move(pk)),
      sign_key_(std::move(sign_key)),
      default_mode_(mode),
      level_(level),
      users_(std::move(users)),
      archive_capacity_(archive_capacity),
      archive_(std::move(archive)) {
  for (const UserRecord& u : users_) used_x_.insert(u.x);
}

Bytes SecurityManager::save_state() const {
  Writer w;
  w.put_u32(kStateMagic);
  w.put_u8(kStateVersion);
  // Group and system parameters.
  w.put_u8(sp_.group.is_elliptic() ? 1 : 0);
  if (sp_.group.is_elliptic()) {
    const CurveSpec& c = sp_.group.curve();
    put_bigint(w, c.p);
    put_bigint(w, c.a);
    put_bigint(w, c.b);
    put_bigint(w, c.q);
    put_bigint(w, c.gx);
    put_bigint(w, c.gy);
  } else {
    put_bigint(w, sp_.group.p());
    put_bigint(w, sp_.group.order());
    put_bigint(w, sp_.group.params().g);
  }
  put_gelt(w, sp_.group, sp_.g);
  put_gelt(w, sp_.group, sp_.g2);
  w.put_u64(sp_.v);
  // Master secret.
  put_poly_fixed(w, msk_.a, sp_.v);
  put_poly_fixed(w, msk_.b, sp_.v);
  // Public key, signing key, bookkeeping.
  pk_.serialize(w, sp_.group);
  sign_key_.serialize_secret(w, sp_.group);
  w.put_u8(static_cast<std::uint8_t>(default_mode_));
  w.put_u64(level_);
  w.put_u64(users_.size());
  for (const UserRecord& u : users_) {
    w.put_u64(u.id);
    put_bigint(w, u.x);
    w.put_u8(u.revoked ? 1 : 0);
    w.put_u64(u.revoked_in_period);
  }
  // v2: the signed-reset archive that answers catch-up requests.
  w.put_u64(archive_capacity_);
  w.put_u64(archive_.size());
  for (const SignedResetBundle& b : archive_) b.serialize(w, sp_.group);
  return std::move(w).take();
}

SecurityManager SecurityManager::restore_state(BytesView state) {
  Reader r(state);
  if (r.get_u32() != kStateMagic) {
    throw DecodeError("SecurityManager: bad state magic");
  }
  if (r.get_u8() != kStateVersion) {
    throw DecodeError("SecurityManager: unsupported state version");
  }
  const std::uint8_t group_kind = r.get_u8();
  if (group_kind > 1) throw DecodeError("SecurityManager: bad group kind");
  std::optional<Group> group_opt;
  if (group_kind == 1) {
    CurveSpec c;
    c.p = get_bigint(r);
    c.a = get_bigint(r);
    c.b = get_bigint(r);
    c.q = get_bigint(r);
    c.gx = get_bigint(r);
    c.gy = get_bigint(r);
    group_opt.emplace(c);
  } else {
    GroupParams gp;
    gp.p = get_bigint(r);
    gp.q = get_bigint(r);
    gp.g = get_bigint(r);
    group_opt.emplace(gp);
  }
  Group& group = *group_opt;
  SystemParams sp{group, Gelt(), Gelt(), 0};
  sp.g = get_gelt(r, group);
  sp.g2 = get_gelt(r, group);
  sp.v = r.get_u64();
  if (sp.v == 0 || sp.v > (1u << 20)) {
    throw DecodeError("SecurityManager: implausible saturation limit");
  }
  r.check_count(2 * (sp.v + 1), 4);  // coefficient length prefixes
  MasterSecret msk{get_poly_fixed(r, group.zq(), sp.v),
                   get_poly_fixed(r, group.zq(), sp.v)};
  PublicKey pk = PublicKey::deserialize(r, group);
  if (pk.slots.size() != sp.v) {
    throw DecodeError("SecurityManager: slot count mismatch");
  }
  SchnorrKeyPair sign_key = SchnorrKeyPair::deserialize_secret(r, group);
  const auto mode_raw = r.get_u8();
  if (mode_raw > 1) throw DecodeError("SecurityManager: bad reset mode");
  const std::size_t level = r.get_u64();
  if (level > sp.v) throw DecodeError("SecurityManager: bad saturation level");
  const std::uint64_t n = r.get_u64();
  r.check_count(n, 8 + 4 + 1 + 8);  // id + x length prefix + flag + period
  std::vector<UserRecord> users;
  users.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    UserRecord u;
    u.id = r.get_u64();
    u.x = get_bigint(r);
    u.revoked = r.get_u8() != 0;
    u.revoked_in_period = r.get_u64();
    if (u.id != i) throw DecodeError("SecurityManager: non-sequential ids");
    users.push_back(std::move(u));
  }
  const std::size_t archive_capacity = r.get_u64();
  if (archive_capacity == 0 || archive_capacity > (1u << 16)) {
    throw DecodeError("SecurityManager: implausible archive capacity");
  }
  const std::uint64_t an = r.get_u64();
  if (an > archive_capacity) {
    throw DecodeError("SecurityManager: archive exceeds its capacity");
  }
  if (an > pk.period) {
    throw DecodeError("SecurityManager: archive longer than period history");
  }
  r.check_count(an, 9 + 2 * group.element_size());
  std::deque<SignedResetBundle> archive;
  for (std::uint64_t i = 0; i < an; ++i) {
    archive.push_back(SignedResetBundle::deserialize(r, group));
    // Must be the consecutive run ending at the current period.
    if (archive.back().reset.new_period != pk.period - (an - 1 - i)) {
      throw DecodeError("SecurityManager: archive periods inconsistent");
    }
  }
  r.expect_end();
  return SecurityManager(RestoreTag{}, std::move(sp), std::move(msk),
                         std::move(pk), std::move(sign_key),
                         static_cast<ResetMode>(mode_raw), level,
                         std::move(users), archive_capacity,
                         std::move(archive));
}

SignedResetBundle SecurityManager::new_period(Rng& rng, ResetMode mode) {
  DFKY_OBS_TIMER(obs_span, "dfky_new_period_ns");
  DFKY_OBS(obs::counter("dfky_resets_generated_total",
                        {{"mode", mode == ResetMode::kPlain ? "plain"
                                                            : "hybrid"}})
               .inc(););
  const Zq& zq = sp_.group.zq();
  const Polynomial d = Polynomial::random(zq, sp_.v, rng);
  const Polynomial e = Polynomial::random(zq, sp_.v, rng);

  SignedResetBundle bundle;
  bundle.reset = build_reset_message(sp_, pk_, d, e, mode, rng);
  bundle.signature =
      sign_key_.sign(sp_.group, bundle.signed_payload(sp_.group), rng);

  apply_new_period(d, e, bundle);

  if (record_mutations_) {
    ManagerMutation m{.kind = ManagerMutation::Kind::kNewPeriod,
                      .bundle = bundle};
    m.d.reserve(sp_.v + 1);
    m.e.reserve(sp_.v + 1);
    for (std::size_t i = 0; i <= sp_.v; ++i) {
      m.d.push_back(d.coeff(i));
      m.e.push_back(e.coeff(i));
    }
    record(std::move(m));
  }
  DFKY_OBS(
      obs::gauge("dfky_saturation_level").set(0);
      obs::event({.name = "new_period",
                  .period = static_cast<std::int64_t>(pk_.period),
                  .detail = mode == ResetMode::kPlain ? "plain" : "hybrid"}););
  return bundle;
}

void SecurityManager::apply_new_period(const Polynomial& d,
                                       const Polynomial& e,
                                       const SignedResetBundle& bundle) {
  msk_.a = msk_.a + d;
  msk_.b = msk_.b + e;
  pk_ = make_fresh_public_key(sp_, msk_, pk_.period + 1);
  level_ = 0;
  archive_.push_back(bundle);
  while (archive_.size() > archive_capacity_) archive_.pop_front();
}

void SecurityManager::record(ManagerMutation m) {
  if (record_mutations_) mutation_log_.push_back(std::move(m));
}

void SecurityManager::set_mutation_recording(bool on) {
  record_mutations_ = on;
  if (!on) mutation_log_.clear();
}

std::vector<ManagerMutation> SecurityManager::take_mutation_log() {
  std::vector<ManagerMutation> out = std::move(mutation_log_);
  mutation_log_.clear();
  return out;
}

void SecurityManager::apply_mutation(const ManagerMutation& m) {
  switch (m.kind) {
    case ManagerMutation::Kind::kAddUser: {
      if (m.x.is_zero() || used_x_.contains(m.x)) {
        throw DecodeError("apply_mutation: add-user record reuses x");
      }
      const std::uint64_t id = users_.size();
      users_.push_back(UserRecord{id, m.x, false, 0});
      used_x_.insert(m.x);
      return;
    }
    case ManagerMutation::Kind::kRemoveUser: {
      if (m.user_id >= users_.size()) {
        throw DecodeError("apply_mutation: remove record names unknown user");
      }
      UserRecord& rec = users_[m.user_id];
      if (rec.revoked) {
        throw DecodeError("apply_mutation: remove record for revoked user");
      }
      if (level_ == sp_.v) {
        throw DecodeError(
            "apply_mutation: saturated without a new-period record");
      }
      revoke_into_slot(sp_, msk_, pk_, level_, rec.x);
      ++level_;
      rec.revoked = true;
      rec.revoked_in_period = pk_.period;
      return;
    }
    case ManagerMutation::Kind::kNewPeriod: {
      if (m.d.size() != sp_.v + 1 || m.e.size() != sp_.v + 1) {
        throw DecodeError("apply_mutation: bad randomizer coefficient count");
      }
      if (m.bundle.reset.new_period != pk_.period + 1) {
        throw DecodeError("apply_mutation: new-period record out of order");
      }
      const Zq& zq = sp_.group.zq();
      apply_new_period(Polynomial(zq, m.d), Polynomial(zq, m.e), m.bundle);
      return;
    }
  }
  throw DecodeError("apply_mutation: unknown record kind");
}

void SecurityManager::set_reset_archive_capacity(std::size_t k) {
  require(k >= 1, "set_reset_archive_capacity: capacity must be >= 1");
  archive_capacity_ = k;
  while (archive_.size() > archive_capacity_) archive_.pop_front();
}

std::uint64_t SecurityManager::archive_oldest_period() const {
  return archive_.empty() ? pk_.period + 1
                          : archive_.front().reset.new_period;
}

CatchUpResponse SecurityManager::handle_catch_up(const CatchUpRequest& req,
                                                 Rng& rng) const {
  DFKY_OBS(obs::counter("dfky_catchup_requests_handled_total").inc(););
  CatchUpResponse resp;
  resp.nonce = req.nonce;
  resp.oldest_available = archive_oldest_period();
  const std::uint64_t from = req.have_period + 1;
  if (from >= resp.oldest_available) {
    const std::uint64_t to = std::min(req.want_period, pk_.period);
    for (const SignedResetBundle& b : archive_) {
      if (b.reset.new_period < from) continue;
      if (b.reset.new_period > to) break;
      resp.bundles.push_back(b);
    }
  }
  resp.signature =
      sign_key_.sign(sp_.group, resp.signed_payload(sp_.group), rng);
  return resp;
}

}  // namespace dfky
