// Broadcast ciphertext (paper Sect. 4, Encryption):
//   psi = < g^r, g'^r, y^r * M, (z_1, h_1^r), ..., (z_v, h_v^r) >.
// The slot identities travel with the ciphertext so receivers are stateless
// within a period: they need no knowledge of intervening Remove-user
// operations to decrypt.
#pragma once

#include "core/keys.h"

namespace dfky {

struct CtSlot {
  Bigint z;
  Gelt hr;  // h_l^r
};

struct Ciphertext {
  Gelt u;   // g^r
  Gelt u2;  // g'^r
  Gelt w;   // y^r * M
  std::vector<CtSlot> slots;
  std::uint64_t period = 0;

  std::vector<Bigint> slot_ids() const;

  void serialize(Writer& w_, const Group& group) const;
  static Ciphertext deserialize(Reader& r, const Group& group);
  /// Serialized size in bytes (the transmission-efficiency metric).
  std::size_t wire_size(const Group& group) const;
};

}  // namespace dfky
