#include "core/keyfile.h"

#include "serial/codec.h"

namespace dfky {

void put_env(Writer& w, const SystemParams& sp) {
  w.put_u8(sp.group.is_elliptic() ? 1 : 0);
  if (sp.group.is_elliptic()) {
    const CurveSpec& c = sp.group.curve();
    put_bigint(w, c.p);
    put_bigint(w, c.a);
    put_bigint(w, c.b);
    put_bigint(w, c.q);
    put_bigint(w, c.gx);
    put_bigint(w, c.gy);
  } else {
    put_bigint(w, sp.group.p());
    put_bigint(w, sp.group.order());
    put_bigint(w, sp.group.params().g);
  }
  put_gelt(w, sp.group, sp.g);
  put_gelt(w, sp.group, sp.g2);
  w.put_u64(sp.v);
}

SystemParams get_env(Reader& r) {
  const std::uint8_t kind = r.get_u8();
  std::optional<Group> group;
  if (kind == 1) {
    CurveSpec c;
    c.p = get_bigint(r);
    c.a = get_bigint(r);
    c.b = get_bigint(r);
    c.q = get_bigint(r);
    c.gx = get_bigint(r);
    c.gy = get_bigint(r);
    group.emplace(c);
  } else if (kind == 0) {
    GroupParams gp;
    gp.p = get_bigint(r);
    gp.q = get_bigint(r);
    gp.g = get_bigint(r);
    group.emplace(gp);
  } else {
    throw DecodeError("bad group kind");
  }
  SystemParams sp{*group, Gelt(), Gelt(), 0};
  sp.g = get_gelt(r, *group);
  sp.g2 = get_gelt(r, *group);
  sp.v = r.get_u64();
  return sp;
}

Bytes encode_key_file(const SystemParams& sp, const Gelt& manager_vk,
                      const UserKey& key) {
  Writer w;
  put_env(w, sp);
  put_gelt(w, sp.group, manager_vk);
  key.serialize(w);
  return std::move(w).take();
}

KeyFileData decode_key_file(BytesView raw) {
  Reader r(raw);
  SystemParams sp = get_env(r);
  Gelt vk = get_gelt(r, sp.group);
  UserKey key = UserKey::deserialize(r);
  r.expect_end();
  return KeyFileData{std::move(sp), std::move(vk), std::move(key)};
}

}  // namespace dfky
