#include "core/receiver.h"

namespace dfky {

Receiver::Receiver(SystemParams sp, UserKey key, Gelt manager_vk)
    : sp_(std::move(sp)), key_(std::move(key)), manager_vk_(std::move(manager_vk)) {}

Gelt Receiver::decrypt(const Ciphertext& ct) const {
  return dfky::decrypt(sp_, key_, ct);
}

void Receiver::apply_reset(const SignedResetBundle& bundle) {
  if (!bundle.verify(sp_.group, manager_vk_)) {
    throw DecodeError("Receiver: reset bundle signature invalid");
  }
  if (bundle.reset.new_period != key_.period + 1) {
    throw DecodeError("Receiver: reset message for unexpected period");
  }
  const auto [d, e] = open_reset_message(sp_, key_, bundle.reset);
  const Zq& zq = sp_.group.zq();
  key_.ax = zq.add(key_.ax, d.eval(key_.x));
  key_.bx = zq.add(key_.bx, e.eval(key_.x));
  key_.period = bundle.reset.new_period;
}

}  // namespace dfky
