#include "core/receiver.h"

#include "obs/metrics.h"

namespace dfky {

namespace {

[[maybe_unused]] const char* outcome_name(ResetOutcome outcome) {
  switch (outcome) {
    case ResetOutcome::kApplied: return "applied";
    case ResetOutcome::kStaleIgnored: return "stale_ignored";
    case ResetOutcome::kGapDetected: return "gap_detected";
    case ResetOutcome::kCannotFollow: return "cannot_follow";
  }
  return "unknown";
}

}  // namespace

Receiver::Receiver(SystemParams sp, UserKey key, Gelt manager_vk, bool strict)
    : sp_(std::move(sp)),
      key_(std::move(key)),
      manager_vk_(std::move(manager_vk)),
      strict_(strict),
      signed_horizon_(key_.period),
      hinted_horizon_(key_.period) {}

Gelt Receiver::decrypt(const Ciphertext& ct) const {
  return dfky::decrypt(sp_, key_, ct);
}

ResetOutcome Receiver::apply_next(const SignedResetBundle& bundle) {
  std::optional<std::pair<Polynomial, Polynomial>> de;
  try {
    de.emplace(open_reset_message(sp_, key_, bundle.reset));
  } catch (const Error&) {
    if (strict_) throw;
    // A revoked (or otherwise broken) key cannot open the payload. The
    // key is untouched; the receiver simply falls behind and expires.
    return ResetOutcome::kCannotFollow;
  }
  const Zq& zq = sp_.group.zq();
  key_.ax = zq.add(key_.ax, de->first.eval(key_.x));
  key_.bx = zq.add(key_.bx, de->second.eval(key_.x));
  key_.period = bundle.reset.new_period;
  return ResetOutcome::kApplied;
}

ResetOutcome Receiver::apply_reset(const SignedResetBundle& bundle) {
  DFKY_OBS_TIMER(obs_span, "dfky_reset_apply_ns");
  // Record the outcome (plus an event) of every return path below.
  const auto noted = [&bundle](ResetOutcome outcome) {
    DFKY_OBS(
        obs::counter("dfky_reset_apply_total",
                     {{"outcome", outcome_name(outcome)}})
            .inc();
        obs::event({.name = "reset_apply",
                    .period =
                        static_cast<std::int64_t>(bundle.reset.new_period),
                    .detail = outcome_name(outcome)}););
#if !DFKY_OBS_ENABLED
    (void)bundle;
#endif
    return outcome;
  };
  if (!bundle.verify(sp_.group, manager_vk_)) {
    DFKY_OBS(obs::counter("dfky_reset_apply_total",
                          {{"outcome", "bad_signature"}})
                 .inc(););
    throw DecodeError("Receiver: reset bundle signature invalid");
  }
  if (strict_) {
    if (bundle.reset.new_period != key_.period + 1) {
      throw DecodeError("Receiver: reset message for unexpected period");
    }
    return noted(apply_next(bundle));
  }
  if (state_ == ReceiverState::kUnrecoverable) {
    return noted(ResetOutcome::kStaleIgnored);
  }

  const std::uint64_t target = bundle.reset.new_period;
  if (target <= key_.period) {
    return noted(ResetOutcome::kStaleIgnored);  // duplicate or replayed reset
  }
  signed_horizon_ = std::max(signed_horizon_, target);

  if (target > key_.period + 1) {
    // Gap: quarantine the verified bundle for replay once it closes.
    // Keep the lowest periods when full — they unblock the longest runs.
    if (pending_.size() < kMaxPending || target < pending_.rbegin()->first) {
      pending_.emplace(target, bundle);
      if (pending_.size() > kMaxPending) {
        pending_.erase(std::prev(pending_.end()));
      }
    }
    refresh_state();
    return noted(ResetOutcome::kGapDetected);
  }

  const ResetOutcome outcome = apply_next(bundle);
  if (outcome == ResetOutcome::kApplied) {
    // Drain any buffered consecutive bundles the gap was hiding.
    while (true) {
      pending_.erase(pending_.begin(), pending_.lower_bound(key_.period + 1));
      const auto it = pending_.find(key_.period + 1);
      if (it == pending_.end()) break;
      const SignedResetBundle next = std::move(it->second);
      pending_.erase(it);
      if (apply_next(next) != ResetOutcome::kApplied) break;
    }
  }
  refresh_state();
  return noted(outcome);
}

void Receiver::note_observed_period(std::uint64_t period) {
  if (strict_ || state_ == ReceiverState::kUnrecoverable) return;
  if (period <= hinted_horizon_) return;
  hinted_horizon_ = period;
  refresh_state();
}

std::uint64_t Receiver::catch_up_target() const {
  return std::max(signed_horizon_, hinted_horizon_);
}

void Receiver::mark_unrecoverable() {
  state_ = ReceiverState::kUnrecoverable;
  pending_.clear();
}

void Receiver::refresh_state() {
  if (state_ == ReceiverState::kUnrecoverable) return;
  state_ = catch_up_target() > key_.period ? ReceiverState::kStale
                                           : ReceiverState::kCurrent;
}

}  // namespace dfky
