#include "core/content.h"

#include "core/scheme.h"
#include "crypto/hkdf.h"
#include "crypto/stream_seal.h"
#include "serial/codec.h"

namespace dfky {

namespace {

constexpr byte kContentInfo[] = {'c', 'o', 'n', 't', 'e', 'n', 't'};

Bytes content_key(const Group& group, const Gelt& shared) {
  return hkdf(/*salt=*/{}, gelt_canonical_bytes(group, shared),
              BytesView(kContentInfo, sizeof(kContentInfo)), kSealKeySize);
}

}  // namespace

void ContentMessage::serialize(Writer& w, const Group& group) const {
  kem.serialize(w, group);
  w.put_blob(sealed_payload);
}

ContentMessage ContentMessage::deserialize(Reader& r, const Group& group) {
  ContentMessage msg;
  msg.kem = Ciphertext::deserialize(r, group);
  msg.sealed_payload = r.get_blob();
  return msg;
}

std::size_t ContentMessage::wire_size(const Group& group) const {
  Writer w;
  serialize(w, group);
  return w.size();
}

ContentMessage seal_content(const SystemParams& sp, const PublicKey& pk,
                            BytesView payload, Rng& rng) {
  const Gelt shared = sp.group.random_element(rng);
  ContentMessage msg;
  msg.kem = encrypt(sp, pk, shared, rng);
  msg.sealed_payload = seal(content_key(sp.group, shared), payload);
  return msg;
}

Bytes open_content(const SystemParams& sp, const UserKey& sk,
                   const ContentMessage& msg) {
  const Gelt shared = decrypt(sp, sk, msg.kem);
  return open_sealed(content_key(sp.group, shared), msg.sealed_payload);
}

Bytes open_content_with_representation(const SystemParams& sp,
                                       const Representation& rep,
                                       const ContentMessage& msg) {
  const Gelt shared = decrypt_with_representation(sp, rep, msg.kem);
  return open_sealed(content_key(sp.group, shared), msg.sealed_payload);
}

}  // namespace dfky
