#include "core/keys.h"

#include "serial/codec.h"

namespace dfky {

SystemParams SystemParams::create(Group group, std::size_t v, Rng& rng) {
  require(v >= 1, "SystemParams: saturation limit must be >= 1");
  SystemParams sp{std::move(group), Gelt(), Gelt(), v};
  // Two independent random generators of the (prime-order) subgroup: any
  // non-identity element generates it.
  do {
    sp.g = sp.group.random_element(rng);
  } while (sp.g == sp.group.one());
  do {
    sp.g2 = sp.group.random_element(rng);
  } while (sp.g2 == sp.group.one() || sp.g2 == sp.g);
  return sp;
}

std::vector<Bigint> PublicKey::slot_ids() const {
  std::vector<Bigint> out;
  out.reserve(slots.size());
  for (const PkSlot& s : slots) out.push_back(s.z);
  return out;
}

bool PublicKey::has_slot_id(const Bigint& z) const {
  for (const PkSlot& s : slots) {
    if (s.z == z) return true;
  }
  return false;
}

void PublicKey::serialize(Writer& w, const Group& group) const {
  w.put_u64(period);
  put_gelt(w, group, g);
  put_gelt(w, group, g2);
  put_gelt(w, group, y);
  require(slots.size() <= UINT32_MAX, "PublicKey: too many slots");
  w.put_u32(static_cast<std::uint32_t>(slots.size()));
  for (const PkSlot& s : slots) {
    put_bigint(w, s.z);
    put_gelt(w, group, s.h);
  }
}

PublicKey PublicKey::deserialize(Reader& r, const Group& group) {
  PublicKey pk;
  pk.period = r.get_u64();
  pk.g = get_gelt(r, group);
  pk.g2 = get_gelt(r, group);
  pk.y = get_gelt(r, group);
  const std::uint32_t n = r.get_u32();
  r.check_count(n, 4 + group.element_size());
  pk.slots.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PkSlot s;
    s.z = get_bigint(r);
    s.h = get_gelt(r, group);
    pk.slots.push_back(std::move(s));
  }
  return pk;
}

void UserKey::serialize(Writer& w) const {
  w.put_u64(period);
  put_bigint(w, x);
  put_bigint(w, ax);
  put_bigint(w, bx);
}

UserKey UserKey::deserialize(Reader& r) {
  UserKey k;
  k.period = r.get_u64();
  k.x = get_bigint(r);
  k.ax = get_bigint(r);
  k.bx = get_bigint(r);
  return k;
}

bool Representation::valid_for(const SystemParams& sp,
                               const PublicKey& pk) const {
  if (tail.size() != pk.slots.size()) return false;
  std::vector<Gelt> bases;
  std::vector<Bigint> exps;
  bases.reserve(tail.size() + 2);
  exps.reserve(tail.size() + 2);
  bases.push_back(pk.g);
  exps.push_back(gamma_a);
  bases.push_back(pk.g2);
  exps.push_back(gamma_b);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    bases.push_back(pk.slots[i].h);
    exps.push_back(tail[i]);
  }
  return multiexp(sp.group, bases, exps) == pk.y;
}

}  // namespace dfky
