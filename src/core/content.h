// Hybrid content distribution: KEM/DEM wrapper over the scheme.
//
// Content providers (the paper's Pay-TV scenario) do not push raw group
// elements — they encapsulate a fresh session key under the scheme's public
// key and seal the actual payload with one-time authenticated symmetric
// encryption. This is also how the transmission-efficiency experiments
// measure realistic per-broadcast byte counts.
#pragma once

#include "core/ciphertext.h"
#include "core/keys.h"

namespace dfky {

struct ContentMessage {
  Ciphertext kem;        // scheme encryption of a fresh group element
  Bytes sealed_payload;  // ChaCha20+HMAC under the derived session key

  void serialize(Writer& w, const Group& group) const;
  static ContentMessage deserialize(Reader& r, const Group& group);
  std::size_t wire_size(const Group& group) const;
};

/// Encrypts an arbitrary byte payload for the current subscriber population.
ContentMessage seal_content(const SystemParams& sp, const PublicKey& pk,
                            BytesView payload, Rng& rng);

/// Decrypts with a subscriber key; throws DecodeError (authentication
/// failure) for revoked or stale keys, ContractError on period mismatch.
Bytes open_content(const SystemParams& sp, const UserKey& sk,
                   const ContentMessage& msg);

/// Pirate-decoder path: decrypts with an arbitrary representation.
Bytes open_content_with_representation(const SystemParams& sp,
                                       const Representation& rep,
                                       const ContentMessage& msg);

}  // namespace dfky
