// The security manager: the stateful orchestrator of the scheme's lifecycle
// (paper Sect. 2): Setup, Add-user, Remove-user with saturation bookkeeping,
// and New-period (reactive on saturation overflow, or proactive on demand).
#pragma once

#include <deque>
#include <optional>
#include <set>

#include "core/reset_message.h"
#include "core/scheme.h"

namespace dfky {

struct UserRecord {
  std::uint64_t id = 0;
  Bigint x;
  bool revoked = false;
  std::uint64_t revoked_in_period = 0;  // meaningful iff revoked
};

/// One incremental, replayable record of a state-v2 mutation — the unit the
/// durable state store appends to its write-ahead log (DESIGN.md Sect. 9).
/// Records carry the *results* of every randomized choice (the issued x,
/// the randomizer coefficients, the signed bundle), so replaying them is
/// deterministic and reproduces the original state byte-for-byte.
struct ManagerMutation {
  enum class Kind : std::uint8_t {
    kAddUser = 1,
    kRemoveUser = 2,
    kNewPeriod = 3,
  };

  Kind kind = Kind::kAddUser;
  Bigint x;                   // kAddUser: the issued identity value
  std::uint64_t user_id = 0;  // kRemoveUser
  /// kNewPeriod: the randomizing polynomials D, E as fixed-width
  /// coefficient vectors (v + 1 each, untrimmed)...
  std::vector<Bigint> d, e;
  /// ...and the broadcast bundle itself — the Schnorr signature is
  /// randomized, so replay must reuse the recorded one.
  SignedResetBundle bundle;

  void serialize(Writer& w, const Group& group) const;
  /// Throws DecodeError on malformed input.
  static ManagerMutation deserialize(Reader& r, const Group& group);
};

class SecurityManager {
 public:
  /// Runs Setup and generates the manager's Schnorr signing key.
  SecurityManager(SystemParams sp, Rng& rng,
                  ResetMode default_mode = ResetMode::kHybrid);

  const SystemParams& params() const { return sp_; }
  const PublicKey& public_key() const { return pk_; }
  /// Verification key for the manager's signed broadcasts.
  const Gelt& verification_key() const { return sign_key_.public_key(); }
  std::uint64_t period() const { return pk_.period; }
  /// Users revoked so far in the current period (the saturation level L).
  std::size_t saturation_level() const { return level_; }
  std::size_t saturation_limit() const { return sp_.v; }

  struct AddedUser {
    std::uint64_t id;
    UserKey key;
  };

  /// Add-user with a manager-chosen random identity value x.
  AddedUser add_user(Rng& rng);
  /// Join-query variant (Sect. 5.1): the caller chooses x. Throws
  /// ContractError if x lies in the placeholder range {1..v}, is zero, or is
  /// already taken.
  AddedUser add_user_with_value(const Bigint& x);

  /// Remove-user. If the saturation limit is already reached, a New-period
  /// operation is executed first and its signed bundle is returned; the
  /// public key is edited either way. Throws ContractError for unknown or
  /// already-revoked users.
  std::optional<SignedResetBundle> remove_user(std::uint64_t id, Rng& rng);
  std::optional<SignedResetBundle> remove_user(std::uint64_t id, Rng& rng,
                                               ResetMode mode);

  /// Batch Remove-user, the paper's native form (Sect. 4: identities
  /// i_1..i_k with L + k <= v per period). Handles any batch size by
  /// rolling periods as needed; returns every reset bundle emitted, in
  /// broadcast order. Validates all ids upfront (all-or-nothing).
  std::vector<SignedResetBundle> remove_users(
      std::span<const std::uint64_t> ids, Rng& rng);
  std::vector<SignedResetBundle> remove_users(
      std::span<const std::uint64_t> ids, Rng& rng, ResetMode mode);

  /// Proactive period change.
  SignedResetBundle new_period(Rng& rng);
  SignedResetBundle new_period(Rng& rng, ResetMode mode);

  // -- catch-up recovery -------------------------------------------------------
  /// The manager archives the last K signed reset bundles (a ring buffer,
  /// persisted by save_state) so receivers that missed New-period
  /// broadcasts can be replayed the gap. A receiver whose needed period
  /// has been evicted is unrecoverable and must re-join out of band.
  static constexpr std::size_t kDefaultArchiveCapacity = 16;
  std::size_t reset_archive_capacity() const { return archive_capacity_; }
  /// Shrinking evicts oldest bundles immediately. Capacity must be >= 1.
  void set_reset_archive_capacity(std::size_t k);
  const std::deque<SignedResetBundle>& reset_archive() const {
    return archive_;
  }
  /// Oldest period a catch-up can still start from; current period + 1
  /// when the archive is empty (nothing to serve, nothing missing).
  std::uint64_t archive_oldest_period() const;

  /// Answers a stale receiver: the consecutive bundles for periods
  /// have_period+1 .. min(want_period, current). Returns an empty bundle
  /// list when the range's start has been evicted — the signed bundles in
  /// any non-empty answer always begin exactly at have_period + 1. The
  /// response is signed (the eviction verdict must not be forgeable).
  CatchUpResponse handle_catch_up(const CatchUpRequest& req, Rng& rng) const;

  // -- views used by tracing and the attack games -----------------------------
  const std::vector<UserRecord>& users() const { return users_; }
  const UserRecord& user(std::uint64_t id) const;
  bool is_revoked(std::uint64_t id) const { return user(id).revoked; }
  /// Master secret (tracing algorithms are run by the manager).
  const MasterSecret& master_secret() const { return msk_; }

  // -- persistence -------------------------------------------------------------
  /// Serializes the COMPLETE manager state — including the master secret
  /// polynomials and the signing key — for the manager's own durable
  /// storage. Never broadcast this.
  Bytes save_state() const;
  /// Restores a manager from save_state output. Throws DecodeError on
  /// malformed or inconsistent state.
  static SecurityManager restore_state(BytesView state);

  // -- incremental mutation records (the durable store's WAL payload) ----------
  /// While recording is on, every mutating operation appends the replayable
  /// record(s) it performed: add_user one kAddUser, remove_user a kRemoveUser
  /// (preceded by a kNewPeriod when it rolled the period), new_period one
  /// kNewPeriod. Disabling recording clears any undrained records.
  void set_mutation_recording(bool on);
  bool mutation_recording() const { return record_mutations_; }
  /// Drains the records appended since the last call, in execution order.
  std::vector<ManagerMutation> take_mutation_log();
  /// Replays one record produced by a recording manager: applies exactly
  /// the original state change (no fresh randomness, no lifecycle metrics).
  /// Throws DecodeError if the record is inconsistent with the current
  /// state — the WAL it came from is corrupt or misordered.
  void apply_mutation(const ManagerMutation& m);

 private:
  struct RestoreTag {};
  SecurityManager(RestoreTag, SystemParams sp, MasterSecret msk, PublicKey pk,
                  SchnorrKeyPair sign_key, ResetMode mode, std::size_t level,
                  std::vector<UserRecord> users, std::size_t archive_capacity,
                  std::deque<SignedResetBundle> archive);

  Bigint fresh_x(Rng& rng);
  /// The shared state edit of New-period: msk += (D, E), fresh public key,
  /// saturation reset, archive push. Used by the live path and by replay.
  void apply_new_period(const Polynomial& d, const Polynomial& e,
                        const SignedResetBundle& bundle);
  void record(ManagerMutation m);

  SystemParams sp_;
  MasterSecret msk_;
  PublicKey pk_;
  SchnorrKeyPair sign_key_;
  ResetMode default_mode_;
  std::size_t level_ = 0;
  std::vector<UserRecord> users_;
  std::set<Bigint> used_x_;
  std::size_t archive_capacity_ = kDefaultArchiveCapacity;
  std::deque<SignedResetBundle> archive_;  // ascending new_period
  bool record_mutations_ = false;
  std::vector<ManagerMutation> mutation_log_;
};

}  // namespace dfky
