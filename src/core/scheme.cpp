#include "core/scheme.h"

#include "obs/metrics.h"
#include "poly/leap_vector.h"

namespace dfky {

namespace {

/// h = g^{A(z)} g'^{B(z)} for a slot identity z.
Gelt slot_value(const SystemParams& sp, const MasterSecret& msk,
                const Bigint& z) {
  const std::array<Gelt, 2> bases = {sp.g, sp.g2};
  const std::array<Bigint, 2> exps = {msk.a.eval(z), msk.b.eval(z)};
  return multiexp(sp.group, bases, exps);
}

}  // namespace

PublicKey make_fresh_public_key(const SystemParams& sp,
                                const MasterSecret& msk,
                                std::uint64_t period) {
  PublicKey pk;
  pk.g = sp.g;
  pk.g2 = sp.g2;
  pk.period = period;
  const std::array<Gelt, 2> bases = {sp.g, sp.g2};
  const std::array<Bigint, 2> exps0 = {msk.a.coeff(0), msk.b.coeff(0)};
  pk.y = multiexp(sp.group, bases, exps0);
  pk.slots.reserve(sp.v);
  for (std::size_t l = 1; l <= sp.v; ++l) {
    const Bigint z(static_cast<long>(l));
    pk.slots.push_back(PkSlot{z, slot_value(sp, msk, z)});
  }
  return pk;
}

SetupResult setup(const SystemParams& sp, Rng& rng) {
  const Zq& zq = sp.group.zq();
  SetupResult out{
      MasterSecret{Polynomial::random(zq, sp.v, rng),
                   Polynomial::random(zq, sp.v, rng)},
      PublicKey{}};
  out.pk = make_fresh_public_key(sp, out.msk, /*period=*/0);
  return out;
}

UserKey issue_user_key(const SystemParams& sp, const MasterSecret& msk,
                       const Bigint& x, std::uint64_t period) {
  const Bigint xr = sp.group.zq().reduce(x);
  require(!xr.is_zero(), "issue_user_key: x must be nonzero");
  return UserKey{xr, msk.a.eval(xr), msk.b.eval(xr), period};
}

void revoke_into_slot(const SystemParams& sp, const MasterSecret& msk,
                      PublicKey& pk, std::size_t slot_index, const Bigint& x) {
  require(slot_index < pk.slots.size(), "revoke_into_slot: bad slot index");
  require(!pk.has_slot_id(x), "revoke_into_slot: identity already revoked");
  pk.slots[slot_index] = PkSlot{x, slot_value(sp, msk, x)};
}

Ciphertext encrypt(const SystemParams& sp, const PublicKey& pk, const Gelt& m,
                   Rng& rng) {
  require(sp.group.is_element(m), "encrypt: message not a group element");
  DFKY_OBS_TIMER(obs_span, "dfky_encrypt_ns", {{"path", "plain"}});
  DFKY_OBS(static obs::Counter& c =
               obs::counter("dfky_encrypt_total", {{"path", "plain"}});
           c.inc(););
  const Bigint r = sp.group.random_exponent(rng);
  Ciphertext ct;
  ct.period = pk.period;
  ct.u = sp.group.pow(pk.g, r);
  ct.u2 = sp.group.pow(pk.g2, r);
  ct.w = sp.group.mul(sp.group.pow(pk.y, r), m);
  ct.slots.reserve(pk.slots.size());
  for (const PkSlot& s : pk.slots) {
    ct.slots.push_back(CtSlot{s.z, sp.group.pow(s.h, r)});
  }
  return ct;
}

Gelt decrypt(const SystemParams& sp, const UserKey& sk, const Ciphertext& ct) {
  require(sk.period == ct.period,
          "decrypt: key period does not match ciphertext period");
  DFKY_OBS_TIMER(obs_span, "dfky_decrypt_ns", {{"path", "user"}});
  DFKY_OBS(static obs::Counter& c =
               obs::counter("dfky_decrypt_total", {{"path", "user"}});
           c.inc(););
  const Zq& zq = sp.group.zq();
  const std::vector<Bigint> zs = ct.slot_ids();
  // Throws ContractError on a revoked user (x collides with a slot id).
  const LeapCoefficients lc = leap_coefficients(zq, sk.x, zs);
  const LeapVector nu_a = leap_vector_from(zq, lc, sk.ax);
  const LeapVector nu_b = leap_vector_from(zq, lc, sk.bx);

  // Denominator: u^{(nu_A)_0} * u'^{(nu_B)_0} * prod_l u_l^{lambda_l}.
  std::vector<Gelt> bases;
  std::vector<Bigint> exps;
  bases.reserve(ct.slots.size() + 2);
  exps.reserve(ct.slots.size() + 2);
  bases.push_back(ct.u);
  exps.push_back(nu_a.alpha0);
  bases.push_back(ct.u2);
  exps.push_back(nu_b.alpha0);
  for (std::size_t l = 0; l < ct.slots.size(); ++l) {
    bases.push_back(ct.slots[l].hr);
    exps.push_back(lc.lambdas[l]);
  }
  const Gelt denom = multiexp(sp.group, bases, exps);
  return sp.group.div(ct.w, denom);
}

Gelt decrypt_with_representation(const SystemParams& sp,
                                 const Representation& rep,
                                 const Ciphertext& ct) {
  require(rep.tail.size() == ct.slots.size(),
          "decrypt_with_representation: slot count mismatch");
  DFKY_OBS_TIMER(obs_span, "dfky_decrypt_ns", {{"path", "representation"}});
  DFKY_OBS(static obs::Counter& c = obs::counter(
               "dfky_decrypt_total", {{"path", "representation"}});
           c.inc(););
  std::vector<Gelt> bases;
  std::vector<Bigint> exps;
  bases.reserve(ct.slots.size() + 2);
  exps.reserve(ct.slots.size() + 2);
  bases.push_back(ct.u);
  exps.push_back(rep.gamma_a);
  bases.push_back(ct.u2);
  exps.push_back(rep.gamma_b);
  for (std::size_t l = 0; l < ct.slots.size(); ++l) {
    bases.push_back(ct.slots[l].hr);
    exps.push_back(rep.tail[l]);
  }
  const Gelt denom = multiexp(sp.group, bases, exps);
  return sp.group.div(ct.w, denom);
}

Representation representation_of(const SystemParams& sp, const UserKey& sk,
                                 const PublicKey& pk) {
  require(sk.period == pk.period,
          "representation_of: key/public-key period mismatch");
  const Zq& zq = sp.group.zq();
  const std::vector<Bigint> zs = pk.slot_ids();
  const LeapCoefficients lc = leap_coefficients(zq, sk.x, zs);
  Representation rep;
  rep.gamma_a = zq.mul(lc.lambda0, sk.ax);
  rep.gamma_b = zq.mul(lc.lambda0, sk.bx);
  rep.tail = lc.lambdas;
  return rep;
}

Representation convex_combination(const SystemParams& sp,
                                  std::span<const Representation> deltas,
                                  std::span<const Bigint> mus) {
  require(!deltas.empty(), "convex_combination: empty input");
  require(deltas.size() == mus.size(), "convex_combination: size mismatch");
  const Zq& zq = sp.group.zq();
  Bigint mu_sum(0);
  for (const Bigint& mu : mus) mu_sum = zq.add(mu_sum, mu);
  require(mu_sum.is_one(), "convex_combination: weights must sum to 1");

  const std::size_t v = deltas[0].tail.size();
  Representation out;
  out.gamma_a = Bigint(0);
  out.gamma_b = Bigint(0);
  out.tail.assign(v, Bigint(0));
  for (std::size_t j = 0; j < deltas.size(); ++j) {
    require(deltas[j].tail.size() == v, "convex_combination: ragged input");
    out.gamma_a = zq.add(out.gamma_a, zq.mul(mus[j], deltas[j].gamma_a));
    out.gamma_b = zq.add(out.gamma_b, zq.mul(mus[j], deltas[j].gamma_b));
    for (std::size_t l = 0; l < v; ++l) {
      out.tail[l] = zq.add(out.tail[l], zq.mul(mus[j], deltas[j].tail[l]));
    }
  }
  return out;
}

}  // namespace dfky
