#include "core/ciphertext.h"

#include "serial/codec.h"

namespace dfky {

std::vector<Bigint> Ciphertext::slot_ids() const {
  std::vector<Bigint> out;
  out.reserve(slots.size());
  for (const CtSlot& s : slots) out.push_back(s.z);
  return out;
}

void Ciphertext::serialize(Writer& w_, const Group& group) const {
  w_.put_u64(period);
  put_gelt(w_, group, u);
  put_gelt(w_, group, u2);
  put_gelt(w_, group, w);
  require(slots.size() <= UINT32_MAX, "Ciphertext: too many slots");
  w_.put_u32(static_cast<std::uint32_t>(slots.size()));
  for (const CtSlot& s : slots) {
    put_bigint(w_, s.z);
    put_gelt(w_, group, s.hr);
  }
}

Ciphertext Ciphertext::deserialize(Reader& r, const Group& group) {
  Ciphertext ct;
  ct.period = r.get_u64();
  ct.u = get_gelt(r, group);
  ct.u2 = get_gelt(r, group);
  ct.w = get_gelt(r, group);
  const std::uint32_t n = r.get_u32();
  r.check_count(n, 4 + group.element_size());
  ct.slots.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CtSlot s;
    s.z = get_bigint(r);
    s.hr = get_gelt(r, group);
    ct.slots.push_back(std::move(s));
  }
  return ct;
}

std::size_t Ciphertext::wire_size(const Group& group) const {
  Writer w_;
  serialize(w_, group);
  return w_.size();
}

}  // namespace dfky
