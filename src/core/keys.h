// Key material for the scalable public-key trace-and-revoke scheme
// (paper Sect. 4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "group/element.h"
#include "poly/polynomial.h"
#include "serial/buffer.h"

namespace dfky {

/// Global system parameters fixed at Setup: the group, the two generators
/// g and g', and the saturation limit v (max revocations per period).
/// The maximum traitor collusion the tracer handles is m = floor(v / 2).
struct SystemParams {
  Group group;
  Gelt g;   // first generator
  Gelt g2;  // second generator g'
  std::size_t v = 0;

  std::size_t max_collusion() const { return v / 2; }

  /// Samples fresh generators for the given group.
  static SystemParams create(Group group, std::size_t v, Rng& rng);
};

/// Master secret key: the two random degree-v polynomials (A, B).
struct MasterSecret {
  Polynomial a;
  Polynomial b;
};

/// One public-key slot: an identity z and h = g^{A(z)} g'^{B(z)}.
/// Fresh periods fill slots with the placeholder identities 1..v;
/// Remove-user overwrites a placeholder with the revoked user's x.
struct PkSlot {
  Bigint z;
  Gelt h;
};

/// Public key: PK = < g, g', y, (z_1, h_1), ..., (z_v, h_v) > plus the
/// period number (receivers are stateful across periods, stateless within).
struct PublicKey {
  Gelt g;
  Gelt g2;
  Gelt y;  // g^{A(0)} g'^{B(0)}
  std::vector<PkSlot> slots;
  std::uint64_t period = 0;

  std::vector<Bigint> slot_ids() const;
  bool has_slot_id(const Bigint& z) const;

  void serialize(Writer& w, const Group& group) const;
  static PublicKey deserialize(Reader& r, const Group& group);
};

/// Per-user secret key SK_i = < x_i, A(x_i), B(x_i) >, tagged with the
/// period whose master polynomials it matches.
struct UserKey {
  Bigint x;
  Bigint ax;  // A(x)
  Bigint bx;  // B(x)
  std::uint64_t period = 0;

  void serialize(Writer& w) const;
  static UserKey deserialize(Reader& r);
};

/// A discrete-log representation of y with respect to (g, g', h_1, ..., h_v):
///     y = g^{gamma_a} g'^{gamma_b} prod_l h_l^{tail_l}.
/// This is the "compact" secret-key form delta_i of Sect. 6.3.1, and the
/// object Assumption 3 says can be extracted from a working pirate decoder.
struct Representation {
  Bigint gamma_a;
  Bigint gamma_b;
  std::vector<Bigint> tail;

  /// Checks validity against a public key (a purely public computation).
  bool valid_for(const SystemParams& sp, const PublicKey& pk) const;
};

}  // namespace dfky
