// The on-disk / on-wire key file format shared by dfky_cli and dfkyd: the
// public environment (group description, generators, saturation limit v),
// the manager's Schnorr verification key and the user key, so the receiver
// side needs no other configuration. dfkyd's `add-user` response carries
// exactly these bytes (hex-encoded) and `dfky_cli client add` writes them
// verbatim, so keys issued through the daemon and through the offline CLI
// are interchangeable.
#pragma once

#include "core/keys.h"
#include "serial/buffer.h"

namespace dfky {

/// Group + generators + v (the public environment every key file and
/// broadcast consumer needs).
void put_env(Writer& w, const SystemParams& sp);
SystemParams get_env(Reader& r);

struct KeyFileData {
  SystemParams sp;
  Gelt manager_vk;
  UserKey key;
};

Bytes encode_key_file(const SystemParams& sp, const Gelt& manager_vk,
                      const UserKey& key);
/// Throws DecodeError on malformed input.
KeyFileData decode_key_file(BytesView raw);

}  // namespace dfky
