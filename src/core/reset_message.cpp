#include "core/reset_message.h"

#include "core/scheme.h"
#include "crypto/hkdf.h"
#include "crypto/stream_seal.h"
#include "group/encoding.h"
#include "serial/codec.h"

namespace dfky {

namespace {

constexpr byte kKemInfo[] = {'r', 'e', 's', 'e', 't', '-', 'k', 'e', 'm'};

Bytes kem_session_key(const Group& group, const Gelt& shared) {
  return hkdf(/*salt=*/{}, gelt_canonical_bytes(group, shared),
              BytesView(kKemInfo, sizeof(kKemInfo)), kSealKeySize);
}

/// Serializes the 2v+2 coefficients of (D, E) with fixed count v+1 each.
Bytes pack_coefficients(const Polynomial& d, const Polynomial& e,
                        std::size_t v) {
  Writer w;
  for (std::size_t i = 0; i <= v; ++i) put_bigint(w, d.coeff(i));
  for (std::size_t i = 0; i <= v; ++i) put_bigint(w, e.coeff(i));
  return std::move(w).take();
}

std::pair<Polynomial, Polynomial> unpack_coefficients(const Zq& zq,
                                                      BytesView payload,
                                                      std::size_t v) {
  Reader r(payload);
  std::vector<Bigint> dc, ec;
  dc.reserve(v + 1);
  ec.reserve(v + 1);
  for (std::size_t i = 0; i <= v; ++i) dc.push_back(get_bigint(r));
  for (std::size_t i = 0; i <= v; ++i) ec.push_back(get_bigint(r));
  r.expect_end();
  return {Polynomial(zq, std::move(dc)), Polynomial(zq, std::move(ec))};
}

}  // namespace

void ResetMessage::serialize(Writer& w, const Group& group) const {
  w.put_u64(new_period);
  w.put_u8(static_cast<std::uint8_t>(mode));
  if (mode == ResetMode::kPlain) {
    require(coefficient_cts.size() <= UINT32_MAX, "ResetMessage: too large");
    w.put_u32(static_cast<std::uint32_t>(coefficient_cts.size()));
    for (const Ciphertext& ct : coefficient_cts) ct.serialize(w, group);
  } else {
    require(kem.has_value(), "ResetMessage: hybrid without KEM");
    kem->serialize(w, group);
    w.put_blob(sealed_coefficients);
  }
}

ResetMessage ResetMessage::deserialize(Reader& r, const Group& group) {
  ResetMessage msg;
  msg.new_period = r.get_u64();
  const std::uint8_t mode_raw = r.get_u8();
  if (mode_raw > 1) throw DecodeError("ResetMessage: bad mode");
  msg.mode = static_cast<ResetMode>(mode_raw);
  if (msg.mode == ResetMode::kPlain) {
    const std::uint32_t n = r.get_u32();
    // Every ciphertext is at least a period + three elements + slot count.
    r.check_count(n, 12 + 3 * group.element_size());
    msg.coefficient_cts.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      msg.coefficient_cts.push_back(Ciphertext::deserialize(r, group));
    }
  } else {
    msg.kem = Ciphertext::deserialize(r, group);
    msg.sealed_coefficients = r.get_blob();
  }
  return msg;
}

std::size_t ResetMessage::wire_size(const Group& group) const {
  Writer w;
  serialize(w, group);
  return w.size();
}

Bytes SignedResetBundle::signed_payload(const Group& group) const {
  Writer w;
  static const byte kTag[] = {'c', 'h', 'a', 'n', 'g', 'e', '-',
                              'p', 'e', 'r', 'i', 'o', 'd'};
  w.put_raw(BytesView(kTag, sizeof(kTag)));
  reset.serialize(w, group);
  return std::move(w).take();
}

void SignedResetBundle::serialize(Writer& w, const Group& group) const {
  reset.serialize(w, group);
  signature.serialize(w, group);
}

SignedResetBundle SignedResetBundle::deserialize(Reader& r,
                                                 const Group& group) {
  SignedResetBundle out;
  out.reset = ResetMessage::deserialize(r, group);
  out.signature = SchnorrSignature::deserialize(r, group);
  return out;
}

std::size_t SignedResetBundle::wire_size(const Group& group) const {
  Writer w;
  serialize(w, group);
  return w.size();
}

bool SignedResetBundle::verify(const Group& group,
                               const Gelt& manager_vk) const {
  return schnorr_verify(group, manager_vk, signed_payload(group), signature);
}

void CatchUpRequest::serialize(Writer& w) const {
  w.put_u64(nonce);
  w.put_u64(have_period);
  w.put_u64(want_period);
}

CatchUpRequest CatchUpRequest::deserialize(Reader& r) {
  CatchUpRequest req;
  req.nonce = r.get_u64();
  req.have_period = r.get_u64();
  req.want_period = r.get_u64();
  if (req.want_period <= req.have_period) {
    throw DecodeError("CatchUpRequest: empty period range");
  }
  return req;
}

Bytes CatchUpResponse::signed_payload(const Group& group) const {
  Writer w;
  static const byte kTag[] = {'c', 'a', 't', 'c', 'h', '-', 'u', 'p'};
  w.put_raw(BytesView(kTag, sizeof(kTag)));
  w.put_u64(nonce);
  w.put_u64(oldest_available);
  require(bundles.size() <= UINT32_MAX, "CatchUpResponse: too large");
  w.put_u32(static_cast<std::uint32_t>(bundles.size()));
  for (const SignedResetBundle& b : bundles) b.serialize(w, group);
  return std::move(w).take();
}

bool CatchUpResponse::verify(const Group& group,
                             const Gelt& manager_vk) const {
  return schnorr_verify(group, manager_vk, signed_payload(group), signature);
}

void CatchUpResponse::serialize(Writer& w, const Group& group) const {
  w.put_u64(nonce);
  w.put_u64(oldest_available);
  require(bundles.size() <= UINT32_MAX, "CatchUpResponse: too large");
  w.put_u32(static_cast<std::uint32_t>(bundles.size()));
  for (const SignedResetBundle& b : bundles) b.serialize(w, group);
  signature.serialize(w, group);
}

CatchUpResponse CatchUpResponse::deserialize(Reader& r, const Group& group) {
  CatchUpResponse resp;
  resp.nonce = r.get_u64();
  resp.oldest_available = r.get_u64();
  const std::uint32_t n = r.get_u32();
  // Every bundle holds at least a reset header plus a Schnorr signature.
  r.check_count(n, 9 + 2 * group.element_size());
  resp.bundles.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    resp.bundles.push_back(SignedResetBundle::deserialize(r, group));
  }
  resp.signature = SchnorrSignature::deserialize(r, group);
  return resp;
}

ResetMessage build_reset_message(const SystemParams& sp, const PublicKey& pk,
                                 const Polynomial& d, const Polynomial& e,
                                 ResetMode mode, Rng& rng) {
  require(d.degree() <= static_cast<int>(sp.v) &&
              e.degree() <= static_cast<int>(sp.v),
          "build_reset_message: randomizer degree exceeds v");
  ResetMessage msg;
  msg.new_period = pk.period + 1;
  msg.mode = mode;
  if (mode == ResetMode::kPlain) {
    // Plain mode encodes full Z_q coefficients through enc (paper Sect. 4);
    // only the Z_p^* backend has a full-range invertible encoding.
    require(!(encode_capacity(sp.group) < sp.group.order()),
            "build_reset_message: plain mode needs full-range encoding "
            "(use hybrid mode on elliptic-curve groups)");
    msg.coefficient_cts.reserve(2 * sp.v + 2);
    for (std::size_t i = 0; i <= sp.v; ++i) {
      msg.coefficient_cts.push_back(
          encrypt(sp, pk, encode_to_group(sp.group, d.coeff(i)), rng));
    }
    for (std::size_t i = 0; i <= sp.v; ++i) {
      msg.coefficient_cts.push_back(
          encrypt(sp, pk, encode_to_group(sp.group, e.coeff(i)), rng));
    }
  } else {
    const Gelt shared = sp.group.random_element(rng);
    msg.kem = encrypt(sp, pk, shared, rng);
    const Bytes key = kem_session_key(sp.group, shared);
    msg.sealed_coefficients = seal(key, pack_coefficients(d, e, sp.v));
  }
  return msg;
}

std::pair<Polynomial, Polynomial> open_reset_message(const SystemParams& sp,
                                                     const UserKey& sk,
                                                     const ResetMessage& msg) {
  const Zq& zq = sp.group.zq();
  if (msg.mode == ResetMode::kPlain) {
    if (msg.coefficient_cts.size() != 2 * sp.v + 2) {
      throw DecodeError("open_reset_message: wrong ciphertext count");
    }
    std::vector<Bigint> dc, ec;
    dc.reserve(sp.v + 1);
    ec.reserve(sp.v + 1);
    for (std::size_t i = 0; i < 2 * sp.v + 2; ++i) {
      const Gelt m = decrypt(sp, sk, msg.coefficient_cts[i]);
      const Bigint c = decode_from_group(sp.group, m);
      if (i <= sp.v) {
        dc.push_back(c);
      } else {
        ec.push_back(c);
      }
    }
    return {Polynomial(zq, std::move(dc)), Polynomial(zq, std::move(ec))};
  }
  if (!msg.kem.has_value()) {
    throw DecodeError("open_reset_message: hybrid message without KEM");
  }
  const Gelt shared = decrypt(sp, sk, *msg.kem);
  const Bytes key = kem_session_key(sp.group, shared);
  const Bytes payload = open_sealed(key, msg.sealed_coefficients);
  return unpack_coefficients(zq, payload, sp.v);
}

}  // namespace dfky
