// New-period reset message (paper Sect. 4).
//
// Plain mode follows the paper's main construction: 2v + 2 ciphertexts, each
// encrypting one coefficient of the randomizing polynomials D and E through
// the quadratic-residue encoding `enc` — O(v^2) group elements on the wire.
//
// Hybrid mode implements the paper's Remark: a single KEM ciphertext
// encapsulates a fresh session key which seals all 2v + 2 coefficients with
// one-time authenticated symmetric encryption — O(v) on the wire. The MAC
// also gives receivers explicit failure detection (a revoked receiver sees
// an authentication error instead of silently corrupting its key).
//
// The bundle is signed by the security manager (Schnorr), covering both the
// `change period` announcement and the reset payload, as the paper requires.
#pragma once

#include "core/ciphertext.h"
#include "crypto/schnorr.h"

namespace dfky {

enum class ResetMode : std::uint8_t { kPlain = 0, kHybrid = 1 };

struct ResetMessage {
  std::uint64_t new_period = 0;
  ResetMode mode = ResetMode::kPlain;
  /// Plain: 2v + 2 ciphertexts for enc(d_0..d_v), enc(e_0..e_v).
  std::vector<Ciphertext> coefficient_cts;
  /// Hybrid: one ciphertext encapsulating the session key...
  std::optional<Ciphertext> kem;
  /// ...and the sealed, concatenated coefficients.
  Bytes sealed_coefficients;

  void serialize(Writer& w, const Group& group) const;
  static ResetMessage deserialize(Reader& r, const Group& group);
  std::size_t wire_size(const Group& group) const;
};

/// The signed `change period` broadcast: announcement + reset payload +
/// manager signature over both.
struct SignedResetBundle {
  ResetMessage reset;
  SchnorrSignature signature;

  /// The byte string the signature covers.
  Bytes signed_payload(const Group& group) const;

  void serialize(Writer& w, const Group& group) const;
  static SignedResetBundle deserialize(Reader& r, const Group& group);
  std::size_t wire_size(const Group& group) const;

  bool verify(const Group& group, const Gelt& manager_vk) const;
};

/// Catch-up request from a receiver that detected a period gap (its key is
/// at `have_period` but it saw authenticated evidence of `want_period`).
/// Unauthenticated — the manager's answer is what carries signatures.
struct CatchUpRequest {
  std::uint64_t nonce = 0;  // echoed in the response for correlation
  std::uint64_t have_period = 0;
  std::uint64_t want_period = 0;

  void serialize(Writer& w) const;
  static CatchUpRequest deserialize(Reader& r);
};

/// Catch-up response: the consecutive run of archived signed reset bundles
/// covering periods have_period+1 .. want_period, or an empty list when the
/// bounded archive has already evicted period have_period+1 (the receiver
/// is then unrecoverable). `oldest_available` is the earliest new_period
/// the archive can still serve. The whole response is signed by the
/// manager: the bundles are already individually signed, but the eviction
/// verdict (`oldest_available` with no bundles) is what sends a receiver
/// to its terminal state, so it must not be forgeable. Replay is harmless:
/// the archive only evicts forward, so any authentic eviction verdict
/// stays true.
struct CatchUpResponse {
  std::uint64_t nonce = 0;
  std::uint64_t oldest_available = 0;
  std::vector<SignedResetBundle> bundles;
  SchnorrSignature signature;

  /// The byte string the signature covers.
  Bytes signed_payload(const Group& group) const;
  bool verify(const Group& group, const Gelt& manager_vk) const;

  void serialize(Writer& w, const Group& group) const;
  static CatchUpResponse deserialize(Reader& r, const Group& group);
};

/// Builds a reset message for randomizers D, E under the current public key.
ResetMessage build_reset_message(const SystemParams& sp, const PublicKey& pk,
                                 const Polynomial& d, const Polynomial& e,
                                 ResetMode mode, Rng& rng);

/// Recovers the randomizing polynomials (D, E) from a reset message using a
/// non-revoked user key. Throws DecodeError if the receiver cannot follow the
/// period change (hybrid mode detects this via the MAC; plain mode throws
/// only on structural failure).
std::pair<Polynomial, Polynomial> open_reset_message(const SystemParams& sp,
                                                     const UserKey& sk,
                                                     const ResetMessage& msg);

}  // namespace dfky
