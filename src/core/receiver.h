// A subscriber's receiver: stateless within a period, stateful across
// periods (paper Sect. 2). Holds the user key, decrypts broadcasts, and
// follows signed New-period announcements by updating its key.
//
// The broadcast medium is authenticated but unreliable, so the receiver is
// a small state machine over the periods it has evidence for:
//
//   kCurrent ──(signed reset with a period gap, or a newer observed
//               ciphertext period)──▶ kStale ──(catch-up replay closes the
//               gap)──▶ kCurrent
//   kStale ──(manager archive has evicted the needed period)──▶
//               kUnrecoverable (terminal; the subscription must be
//               re-issued out of band)
//
// Future signed bundles arriving out of order are quarantined in a bounded
// pending buffer and replayed automatically once the gap closes.
#pragma once

#include <map>

#include "core/reset_message.h"
#include "core/scheme.h"

namespace dfky {

enum class ReceiverState : std::uint8_t {
  kCurrent = 0,        // key period matches every authenticated observation
  kStale = 1,          // a period gap was detected; catch-up needed
  kUnrecoverable = 2,  // the needed resets are gone from the archive
};

/// What a (non-strict) apply_reset did with a verified bundle.
enum class ResetOutcome : std::uint8_t {
  kApplied = 0,       // key advanced (and pending bundles drained)
  kStaleIgnored = 1,  // duplicate / old period: idempotent no-op
  kGapDetected = 2,   // future period: buffered, receiver is now kStale
  kCannotFollow = 3,  // next period but undecryptable (revoked key)
};

class Receiver {
 public:
  /// `strict` restores the original paper-identity behavior: any bundle
  /// that is not the immediate next period throws DecodeError instead of
  /// engaging the gap/idempotency state machine.
  Receiver(SystemParams sp, UserKey key, Gelt manager_vk, bool strict = false);

  const UserKey& key() const { return key_; }
  std::uint64_t period() const { return key_.period; }
  ReceiverState state() const { return state_; }
  /// The manager verification key this receiver trusts.
  const Gelt& manager_vk() const { return manager_vk_; }

  /// Decrypts a broadcast ciphertext. Throws ContractError if the ciphertext
  /// belongs to a different period or this receiver is revoked in it.
  Gelt decrypt(const Ciphertext& ct) const;

  /// Processes a signed change-period broadcast: verifies the manager's
  /// signature, recovers the randomizing polynomials with the current key,
  /// and updates SK_i := < x_i, A(x_i)+D(x_i), B(x_i)+E(x_i) >.
  ///
  /// Always throws DecodeError on a bad signature. In strict mode it also
  /// throws on any period other than key.period + 1 (and on an
  /// undecryptable payload). Otherwise it distinguishes the failure modes:
  /// stale periods are idempotently ignored, future periods flip the
  /// receiver to kStale and buffer the bundle, and an undecryptable
  /// next-period payload (a revoked key) reports kCannotFollow.
  ResetOutcome apply_reset(const SignedResetBundle& bundle);

  /// Unauthenticated staleness hint from an observed ciphertext period
  /// (e.g. a content message the receiver could not decrypt). Never
  /// advances the key — it only widens the catch-up target, and the
  /// signed catch-up response is what actually moves the state.
  void note_observed_period(std::uint64_t period);

  /// First period this receiver is missing (key period + 1).
  std::uint64_t needed_from() const { return key_.period + 1; }
  /// Highest period the receiver has evidence for (signed or hinted).
  std::uint64_t catch_up_target() const;
  /// Terminal transition, taken on signed evidence that the manager's
  /// archive no longer holds needed_from().
  void mark_unrecoverable();

  /// Verified future bundles awaiting replay.
  std::size_t pending_resets() const { return pending_.size(); }

 private:
  /// Applies a verified bundle for exactly key_.period + 1.
  ResetOutcome apply_next(const SignedResetBundle& bundle);
  void refresh_state();

  SystemParams sp_;
  UserKey key_;
  Gelt manager_vk_;
  bool strict_;
  ReceiverState state_ = ReceiverState::kCurrent;
  std::uint64_t signed_horizon_ = 0;  // highest verified reset period seen
  std::uint64_t hinted_horizon_ = 0;  // highest unauthenticated hint seen
  std::map<std::uint64_t, SignedResetBundle> pending_;

  static constexpr std::size_t kMaxPending = 32;
};

}  // namespace dfky
