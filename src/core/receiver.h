// A subscriber's receiver: stateless within a period, stateful across
// periods (paper Sect. 2). Holds the user key, decrypts broadcasts, and
// follows signed New-period announcements by updating its key.
#pragma once

#include "core/reset_message.h"
#include "core/scheme.h"

namespace dfky {

class Receiver {
 public:
  Receiver(SystemParams sp, UserKey key, Gelt manager_vk);

  const UserKey& key() const { return key_; }
  std::uint64_t period() const { return key_.period; }

  /// Decrypts a broadcast ciphertext. Throws ContractError if the ciphertext
  /// belongs to a different period or this receiver is revoked in it.
  Gelt decrypt(const Ciphertext& ct) const;

  /// Processes a signed change-period broadcast: verifies the manager's
  /// signature, recovers the randomizing polynomials with the current key,
  /// and updates SK_i := < x_i, A(x_i)+D(x_i), B(x_i)+E(x_i) >.
  /// Throws DecodeError on a bad signature, a wrong period, or (hybrid mode)
  /// when this receiver has been revoked and cannot follow the change.
  void apply_reset(const SignedResetBundle& bundle);

 private:
  SystemParams sp_;
  UserKey key_;
  Gelt manager_vk_;
};

}  // namespace dfky
