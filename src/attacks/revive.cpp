#include "attacks/revive.h"

#include "broadcast/recovery.h"

namespace dfky {

namespace {

/// Can the baseline adversary recover a random plaintext right now?
bool baseline_adversary_decrypts(const SystemParams& sp,
                                 const BoundedTraceRevoke& system,
                                 const BoundedTraceRevoke::UserSecret& key,
                                 Rng& rng) {
  const Gelt m = sp.group.random_element(rng);
  const Ciphertext ct = system.encrypt(m, rng);
  try {
    return system.decrypt(ct, key) == m;
  } catch (const Error&) {
    return false;
  }
}

/// Can the scheme adversary recover a random plaintext right now? Tries the
/// raw key (possibly stale) — the strongest concrete move available once the
/// reset messages are undecryptable (cf. Theorem 1).
bool scheme_adversary_decrypts(const SystemParams& sp,
                               const SecurityManager& mgr, const UserKey& key,
                               Rng& rng) {
  const Gelt m = sp.group.random_element(rng);
  const Ciphertext ct = encrypt(sp, mgr.public_key(), m, rng);
  try {
    UserKey forced = key;
    forced.period = ct.period;  // pretend the stale key is current
    return decrypt(sp, forced, ct) == m;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace

ReviveOutcome run_revive_attack(const SystemParams& sp, Rng& rng) {
  ReviveOutcome out;
  out.extra_revocations = sp.v;

  // ---- Baseline: bounded revocation list, oldest entry dropped. ----
  BoundedTraceRevoke baseline(sp, OverflowPolicy::kDropOldest, rng);
  const auto bad_baseline = baseline.add_user(rng);
  std::vector<BoundedTraceRevoke::UserSecret> victims_b;
  for (std::size_t i = 0; i < sp.v; ++i) victims_b.push_back(baseline.add_user(rng));

  require(baseline.revoke(bad_baseline.id), "revive: baseline revoke failed");
  out.baseline_decrypts_when_revoked =
      baseline_adversary_decrypts(sp, baseline, bad_baseline, rng);
  for (const auto& victim : victims_b) baseline.revoke(victim.id);
  // The adversary's entry has been pushed out of the bounded list.
  out.baseline_revived =
      baseline_adversary_decrypts(sp, baseline, bad_baseline, rng);

  // ---- The paper's scheme: same pressure forces a New-period. ----
  SecurityManager mgr(sp, rng);
  const auto bad = mgr.add_user(rng);
  std::vector<std::uint64_t> victims;
  for (std::size_t i = 0; i < sp.v; ++i) victims.push_back(mgr.add_user(rng).id);

  mgr.remove_user(bad.id, rng);
  out.scheme_decrypts_when_revoked =
      scheme_adversary_decrypts(sp, mgr, bad.key, rng);

  UserKey adversary_key = bad.key;
  for (std::uint64_t victim : victims) {
    const auto bundle = mgr.remove_user(victim, rng);
    if (bundle) {
      // The adversary eavesdrops the reset message and tries to follow it.
      try {
        const auto [d, e] =
            open_reset_message(sp, adversary_key, bundle->reset);
        const Zq& zq = sp.group.zq();
        adversary_key.ax = zq.add(adversary_key.ax, d.eval(adversary_key.x));
        adversary_key.bx = zq.add(adversary_key.bx, e.eval(adversary_key.x));
        adversary_key.period = bundle->reset.new_period;
      } catch (const Error&) {
        // Expected: a revoked key cannot open the reset message.
      }
    }
  }
  out.scheme_revived = scheme_adversary_decrypts(sp, mgr, adversary_key, rng);

  // ---- Catch-up abuse: pose as a stale receiver and request replay. ----
  // The adversary's key is still at its issue period; the manager's archive
  // obligingly serves every missed signed bundle. None of them opens under
  // a revoked key, so the catch-up path must not revive her either.
  BroadcastBus bus;
  CatchUpResponder responder(mgr, bus, rng);
  SubscriberClient adversary(sp, adversary_key, mgr.verification_key(), bus);
  RecoveryClient recovery(adversary, bus, RecoveryPolicy{});
  ContentProvider provider("post-revocation", sp, mgr.public_key(), bus);
  // Fresh content exposes the period gap and triggers the recovery protocol
  // (request, archive replay, failed bundle applications).
  for (int i = 0; i < 3; ++i) {
    provider.broadcast(Bytes{0x42}, rng);
  }
  out.catch_up_requests_answered = responder.requests_answered();
  out.scheme_revived_via_catch_up =
      !adversary.received_content().empty() ||
      scheme_adversary_decrypts(sp, mgr, adversary.receiver().key(), rng);
  return out;
}

}  // namespace dfky
