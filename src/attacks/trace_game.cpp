#include "attacks/trace_game.h"

namespace dfky {

TraceGame::TraceGame(SystemParams sp, Rng& rng)
    : manager_(std::move(sp), rng) {}

UserKey TraceGame::join(const Bigint& x) {
  require(traitor_ids_.size() < manager_.params().max_collusion(),
          "TraceGame: at most m Join queries");
  const auto added = manager_.add_user_with_value(x);
  traitor_ids_.push_back(added.id);
  traitor_keys_.push_back(added.key);
  return added.key;
}

std::uint64_t TraceGame::add_honest(Rng& rng) {
  return manager_.add_user(rng).id;
}

void TraceGame::apply_reset_to_traitors(const SignedResetBundle& bundle) {
  const SystemParams& sp = manager_.params();
  const Zq& zq = sp.group.zq();
  for (UserKey& key : traitor_keys_) {
    const auto [d, e] = open_reset_message(sp, key, bundle.reset);
    key.ax = zq.add(key.ax, d.eval(key.x));
    key.bx = zq.add(key.bx, e.eval(key.x));
    key.period = bundle.reset.new_period;
  }
}

void TraceGame::revoke_honest(std::uint64_t id, Rng& rng) {
  for (std::uint64_t t : traitor_ids_) {
    require(t != id, "TraceGame: Revoke oracle rejects traitors");
  }
  const auto bundle = manager_.remove_user(id, rng);
  if (bundle) apply_reset_to_traitors(*bundle);
}

void TraceGame::force_new_period(Rng& rng) {
  apply_reset_to_traitors(manager_.new_period(rng));
}

Representation TraceGame::build_pirate(Rng& rng) const {
  return build_pirate_representation(manager_.params(), manager_.public_key(),
                                     traitor_keys_, rng);
}

Representation TraceGame::build_pirate_subset(
    std::span<const std::size_t> indices, Rng& rng) const {
  std::vector<UserKey> subset;
  subset.reserve(indices.size());
  for (std::size_t i : indices) {
    require(i < traitor_keys_.size(), "TraceGame: bad traitor index");
    subset.push_back(traitor_keys_[i]);
  }
  return build_pirate_representation(manager_.params(), manager_.public_key(),
                                     subset, rng);
}

}  // namespace dfky
