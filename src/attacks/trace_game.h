// Executable traceability attack game G_trt^m (paper Sect. 6.1.1).
//
// The adversary adaptively corrupts up to m users (choosing their identity
// values), watches and drives arbitrarily many revocations of honest users
// (including full period changes, across which the coalition's keys update
// legitimately — traitors are subscribers in good standing until caught),
// and finally emits a pirate decoder. The game hands the tracer exactly what
// the model gives it: the final public key, the master secret, and the
// registry.
#pragma once

#include "core/manager.h"
#include "tracing/pirate.h"

namespace dfky {

class TraceGame {
 public:
  TraceGame(SystemParams sp, Rng& rng);

  /// Join query (adversary-chosen value). Enforces |T| <= m.
  UserKey join(const Bigint& x);
  std::uint64_t add_honest(Rng& rng);
  /// Revoke oracle on honest users; traitor keys follow any period change.
  void revoke_honest(std::uint64_t id, Rng& rng);
  /// Proactive period change driven by the adversary's observation.
  void force_new_period(Rng& rng);

  /// The adversary's final output: a pirate representation built from the
  /// coalition's current keys (random convex combination).
  Representation build_pirate(Rng& rng) const;
  /// A pirate using only a sub-coalition (tests partial contributions).
  Representation build_pirate_subset(std::span<const std::size_t> indices,
                                     Rng& rng) const;

  const SystemParams& params() const { return manager_.params(); }
  const PublicKey& pk() const { return manager_.public_key(); }
  const MasterSecret& msk() const { return manager_.master_secret(); }
  const std::vector<UserRecord>& registry() const { return manager_.users(); }
  const std::vector<std::uint64_t>& traitor_ids() const { return traitor_ids_; }
  const std::vector<UserKey>& traitor_keys() const { return traitor_keys_; }
  SecurityManager& manager() { return manager_; }

 private:
  void apply_reset_to_traitors(const SignedResetBundle& bundle);

  SecurityManager manager_;
  std::vector<std::uint64_t> traitor_ids_;
  std::vector<UserKey> traitor_keys_;
};

}  // namespace dfky
