// The "revive" attack (paper Sect. 1.3).
//
// In every prior public-key trace-and-revoke scheme with fixed ciphertext
// size, a revoked adversary who keeps watching the system can regain
// decryption capability once enough further revocations push her out of the
// bounded revocation window. The paper's scheme *expires* such adversaries
// instead: the New-period re-randomization makes their key information
// permanently useless. This module stages the attack against both systems
// and reports who survives.
#pragma once

#include "baselines/bounded_trace_revoke.h"
#include "core/manager.h"

namespace dfky {

struct ReviveOutcome {
  /// Could the revoked adversary decrypt immediately after being revoked?
  bool baseline_decrypts_when_revoked = false;
  bool scheme_decrypts_when_revoked = false;
  /// ...and after v further revocations (baseline window overflow /
  /// scheme period change)?
  bool baseline_revived = false;
  bool scheme_revived = false;
  /// ...and after also abusing the catch-up recovery protocol (requesting
  /// the missed signed reset bundles from the manager's archive)?
  bool scheme_revived_via_catch_up = false;
  /// Diagnostics: number of further revocations staged, and catch-up
  /// requests the manager's archive answered for the (still-expired)
  /// adversary.
  std::size_t extra_revocations = 0;
  std::size_t catch_up_requests_answered = 0;
};

/// Stages the attack: subscribe adversary + population, revoke the
/// adversary, then revoke v more users. In the baseline (kDropOldest) the
/// adversary's entry falls out of the revocation list; in the paper's scheme
/// the same pressure triggers a New-period the adversary cannot follow.
/// The adversary attack against the scheme tries its raw (stale) key, the
/// reset message it eavesdropped, AND the catch-up recovery path: it poses
/// as a stale-but-legitimate receiver and asks the manager's archive to
/// replay the missed bundles. The replayed bundles are the same ones it
/// already failed to open, so recovery must not revive it.
ReviveOutcome run_revive_attack(const SystemParams& sp, Rng& rng);

}  // namespace dfky
