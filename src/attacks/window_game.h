// Executable window-adversary attack game G_win^v (paper Sect. 5.1.1).
//
// The game wraps a real SecurityManager and exposes exactly the oracles the
// formal model grants the adversary: Join (adversary-chosen identity value,
// at most v of them), Revoke on arbitrary honest users (unbounded, may force
// New-period operations the adversary observes in full), then the mandatory
// revocation of all corrupted users inside one window, the message-pair
// challenge, and the guess. Built-in adversary strategies exercise the
// natural concrete attacks; Theorem 1 says none can do noticeably better
// than coin flipping.
#pragma once

#include "core/manager.h"

namespace dfky {

class WindowGame {
 public:
  WindowGame(SystemParams sp, Rng& rng);

  // -- oracles (stage fst / snd) ---------------------------------------------
  /// Join query: corrupts a fresh user with adversary-chosen value x.
  /// Enforces the <= v bound of the game.
  UserKey join(const Bigint& x, Rng& rng);
  /// Population growth the adversary can later revoke against.
  std::uint64_t add_honest(Rng& rng);
  /// Revoke oracle on an honest user; the adversary sees the resulting
  /// public key and, when saturation forces one, the full reset bundle.
  void revoke_honest(std::uint64_t id, Rng& rng);

  /// Steps 5/6: revokes every corrupted user within the current window.
  /// Throws ContractError if L + |Corr| > v (window constraint violated).
  void revoke_corrupted(Rng& rng);

  /// Steps 7/8: the challenger flips sigma* and encrypts m[sigma*].
  Ciphertext challenge(const Gelt& m0, const Gelt& m1, Rng& rng);
  bool check_guess(int sigma) const;

  // -- adversary view ----------------------------------------------------------
  const PublicKey& pk() const { return manager_.public_key(); }
  const SystemParams& params() const { return manager_.params(); }
  const std::vector<SignedResetBundle>& observed_resets() const {
    return resets_;
  }
  /// Corrupted keys, kept up to date across periods for as long as the
  /// corrupted users can follow reset messages (i.e. until revoked).
  const std::vector<UserKey>& corrupted_keys() const { return corr_keys_; }
  const std::vector<std::uint64_t>& corrupted_ids() const { return corr_ids_; }
  SecurityManager& manager() { return manager_; }

 private:
  void track_reset(const SignedResetBundle& bundle);

  SecurityManager manager_;
  std::vector<std::uint64_t> corr_ids_;
  std::vector<UserKey> corr_keys_;
  std::vector<SignedResetBundle> resets_;
  bool corrupted_revoked_ = false;
  bool challenged_ = false;
  int sigma_star_ = 0;
};

/// Built-in concrete adversary strategies for advantage estimation.
enum class WindowStrategy {
  /// Corrupt v users, hold the convex-combination pirate key built while it
  /// was still valid, get revoked, then use it on the challenge.
  kExpiredConvex,
  /// After revocation the adversary knows v points of the degree-v master
  /// polynomials; guess the missing information by pretending the degree is
  /// v-1 and interpolating.
  kExpiredInterpolation,
  /// Same as kExpiredConvex but the adversary additionally forces a full
  /// New-period cycle (by revoking honest users) after its own revocation,
  /// and attacks in the fresh period with its (stale) key.
  kExpiredAcrossPeriod,
  /// Control experiment: one corrupted key is (incorrectly) never revoked —
  /// the game's window discipline is skipped. Advantage must be ~1; this
  /// validates the game machinery, not the scheme.
  kUnrevokedControl,
};

struct WindowTrialStats {
  std::size_t trials = 0;
  std::size_t successes = 0;
  double success_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
  double advantage() const {
    const double r = success_rate() - 0.5;
    return r < 0 ? -r : r;
  }
};

/// Runs `trials` independent games with the given strategy and counts wins.
WindowTrialStats run_window_trials(const SystemParams& sp,
                                   WindowStrategy strategy, std::size_t trials,
                                   std::size_t coalition_size, Rng& rng);

}  // namespace dfky
