#include "attacks/window_game.h"

#include "poly/lagrange.h"
#include "tracing/pirate.h"

namespace dfky {

WindowGame::WindowGame(SystemParams sp, Rng& rng)
    : manager_(std::move(sp), rng) {}

void WindowGame::track_reset(const SignedResetBundle& bundle) {
  resets_.push_back(bundle);
  // Corrupted-but-not-yet-revoked users are legitimate receivers: they
  // follow period changes like anyone else. Once revoked they cannot.
  const SystemParams& sp = manager_.params();
  for (UserKey& key : corr_keys_) {
    if (key.period + 1 != bundle.reset.new_period) continue;  // already stale
    try {
      const auto [d, e] = open_reset_message(sp, key, bundle.reset);
      const Zq& zq = sp.group.zq();
      key.ax = zq.add(key.ax, d.eval(key.x));
      key.bx = zq.add(key.bx, e.eval(key.x));
      key.period = bundle.reset.new_period;
    } catch (const Error&) {
      // Revoked during this period: the key expires here.
    }
  }
}

UserKey WindowGame::join(const Bigint& x, Rng&) {
  require(corr_ids_.size() < manager_.params().v,
          "WindowGame: at most v Join queries");
  require(!corrupted_revoked_, "WindowGame: Join after the learning stage");
  const auto added = manager_.add_user_with_value(x);
  corr_ids_.push_back(added.id);
  corr_keys_.push_back(added.key);
  return added.key;
}

std::uint64_t WindowGame::add_honest(Rng& rng) {
  return manager_.add_user(rng).id;
}

void WindowGame::revoke_honest(std::uint64_t id, Rng& rng) {
  for (std::uint64_t corr : corr_ids_) {
    require(corr != id, "WindowGame: Revoke oracle rejects corrupted users");
  }
  auto bundle = manager_.remove_user(id, rng);
  if (bundle) track_reset(*bundle);
}

void WindowGame::revoke_corrupted(Rng& rng) {
  require(!corrupted_revoked_, "WindowGame: corrupted users already revoked");
  // Step 5: the window constraint — all corrupted users must fit into the
  // remaining slots of the current period.
  require(manager_.saturation_level() + corr_ids_.size() <=
              manager_.params().v,
          "WindowGame: window constraint violated (L + |Corr| > v)");
  for (std::uint64_t id : corr_ids_) {
    const auto bundle = manager_.remove_user(id, rng);
    require(!bundle.has_value(),
            "WindowGame: unexpected period change inside the window");
  }
  corrupted_revoked_ = true;
}

Ciphertext WindowGame::challenge(const Gelt& m0, const Gelt& m1, Rng& rng) {
  require(!challenged_, "WindowGame: challenge already issued");
  challenged_ = true;
  sigma_star_ = static_cast<int>(rng.u64() & 1);
  const Gelt& m = sigma_star_ == 0 ? m0 : m1;
  return encrypt(manager_.params(), manager_.public_key(), m, rng);
}

bool WindowGame::check_guess(int sigma) const {
  require(challenged_, "WindowGame: no challenge issued");
  return sigma == sigma_star_;
}

namespace {

/// Guess by comparing a candidate plaintext against the two messages,
/// falling back to a coin flip.
int guess_from_candidate(const Gelt& candidate, const Gelt& m0, const Gelt& m1,
                         Rng& rng) {
  if (candidate == m0) return 0;
  if (candidate == m1) return 1;
  return static_cast<int>(rng.u64() & 1);
}

bool run_one_trial(const SystemParams& sp, WindowStrategy strategy,
                   std::size_t coalition_size, Rng& rng) {
  WindowGame game(sp, rng);
  const Zq& zq = sp.group.zq();

  // Stage fst: corrupt the coalition with adversary-chosen values.
  std::vector<UserKey> keys;
  for (std::size_t i = 0; i < coalition_size; ++i) {
    Bigint x = rng.uniform_nonzero_below(zq.modulus());
    while (x <= Bigint(static_cast<long>(sp.v))) {
      x = rng.uniform_nonzero_below(zq.modulus());
    }
    try {
      keys.push_back(game.join(x, rng));
    } catch (const ContractError&) {
      --i;  // x collision: re-draw (negligible probability)
    }
  }

  // A pirate key built while the coalition was still active.
  const Representation pirate =
      build_pirate_representation(sp, game.pk(), keys, rng);

  if (strategy != WindowStrategy::kUnrevokedControl) {
    game.revoke_corrupted(rng);
  }

  if (strategy == WindowStrategy::kExpiredAcrossPeriod) {
    // Force a full new period after the coalition's revocation: the
    // adversary adaptively revokes honest users until the period rolls.
    const std::uint64_t start_period = game.pk().period;
    while (game.pk().period == start_period) {
      const std::uint64_t victim = game.add_honest(rng);
      game.revoke_honest(victim, rng);
    }
  }

  // Stage snd: the adversary picks two random messages.
  const Gelt m0 = sp.group.random_element(rng);
  const Gelt m1 = sp.group.random_element(rng);
  const Ciphertext ct = game.challenge(m0, m1, rng);

  // Stage trd: mount the concrete attack.
  Gelt candidate;
  switch (strategy) {
    case WindowStrategy::kUnrevokedControl: {
      // The un-revoked key decrypts the challenge outright.
      candidate = decrypt(sp, game.corrupted_keys().front(), ct);
      break;
    }
    case WindowStrategy::kExpiredConvex:
    case WindowStrategy::kExpiredAcrossPeriod: {
      candidate = decrypt_with_representation(sp, pirate, ct);
      break;
    }
    case WindowStrategy::kExpiredInterpolation: {
      // The coalition knows v points of each degree-v master polynomial;
      // pretend the degree were v-1 and interpolate A(0), B(0).
      std::vector<std::pair<Bigint, Bigint>> pa, pb;
      for (const UserKey& k : game.corrupted_keys()) {
        pa.emplace_back(k.x, k.ax);
        pb.emplace_back(k.x, k.bx);
      }
      const Bigint a0 = interpolate(zq, pa).eval(Bigint(0));
      const Bigint b0 = interpolate(zq, pb).eval(Bigint(0));
      const std::array<Gelt, 2> bases = {ct.u, ct.u2};
      const std::array<Bigint, 2> exps = {a0, b0};
      candidate = sp.group.div(ct.w, multiexp(sp.group, bases, exps));
      break;
    }
  }
  return game.check_guess(guess_from_candidate(candidate, m0, m1, rng));
}

}  // namespace

WindowTrialStats run_window_trials(const SystemParams& sp,
                                   WindowStrategy strategy, std::size_t trials,
                                   std::size_t coalition_size, Rng& rng) {
  require(coalition_size >= 1 && coalition_size <= sp.v,
          "run_window_trials: coalition size must be in [1, v]");
  WindowTrialStats stats;
  stats.trials = trials;
  for (std::size_t t = 0; t < trials; ++t) {
    if (run_one_trial(sp, strategy, coalition_size, rng)) ++stats.successes;
  }
  return stats;
}

}  // namespace dfky
