// In-process broadcast channel.
//
// Models the paper's distribution medium: an authenticated-but-insecure
// broadcast channel every party (and every eavesdropper) can read. Messages
// are serialized bytes — the byte counters here are what the transmission-
// efficiency experiments report.
//
// The channel is authenticated but NOT reliable: `publish` is virtual so
// FaultyBus can interpose drops, duplicates, reorders, corruption, and
// delays between the sender's log and the subscribers (see faulty_bus.h).
#pragma once

#include <functional>
#include <map>

#include "common.h"

namespace dfky {

enum class MsgType : std::uint8_t {
  kContent = 0,          // ContentMessage from a provider
  kPublicKeyUpdate = 1,  // PublicKey republished by the manager
  kChangePeriod = 2,     // SignedResetBundle
  kCatchUpRequest = 3,   // CatchUpRequest from a stale receiver
  kCatchUpResponse = 4,  // CatchUpResponse from the manager's archive
};

struct Envelope {
  MsgType type;
  Bytes payload;
};

/// Stable lowercase name for metric labels and log lines.
const char* msg_type_name(MsgType type);

class BroadcastBus {
 public:
  using Handler = std::function<void(const Envelope&)>;

  virtual ~BroadcastBus() = default;

  /// Registers a listener; returns a token for unsubscribe.
  std::size_t subscribe(Handler handler);
  void unsubscribe(std::size_t token);

  /// Logs the message and delivers it to all current subscribers. The base
  /// bus is synchronous and lossless; FaultyBus overrides this.
  virtual void publish(Envelope env);

  // Published side: what the sender put on the wire. Delivered side: each
  // envelope that actually reached the subscriber set, counted once per
  // envelope — drops make delivered < published, duplicates make it larger.
  // Instance counters stay live in every build; DFKY_OBS additionally
  // mirrors them into the process-wide registry (dfky_bus_* series).
  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }
  std::uint64_t bytes_sent(MsgType type) const;
  std::uint64_t messages_delivered() const { return delivered_messages_; }
  std::uint64_t bytes_delivered() const { return delivered_bytes_; }
  std::uint64_t bytes_delivered(MsgType type) const;

  /// Everything ever broadcast — the eavesdropper's view. Faults are a
  /// delivery phenomenon; the log always records what the sender put on
  /// the wire.
  const std::vector<Envelope>& log() const { return log_; }

 protected:
  /// Accounting + append to the eavesdropper log.
  void record(const Envelope& env);
  /// Invokes every current handler on `env`. Snapshots the handler map
  /// first, so handlers may (un)subscribe — or publish recursively —
  /// during delivery.
  void deliver(const Envelope& env);

 private:
  std::map<std::size_t, Handler> handlers_;
  std::size_t next_token_ = 0;
  std::vector<Envelope> log_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::map<MsgType, std::uint64_t> bytes_by_type_;
  std::uint64_t delivered_messages_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::map<MsgType, std::uint64_t> delivered_bytes_by_type_;
};

}  // namespace dfky
