// In-process broadcast channel.
//
// Models the paper's distribution medium: an authenticated-but-insecure
// broadcast channel every party (and every eavesdropper) can read. Messages
// are serialized bytes — the byte counters here are what the transmission-
// efficiency experiments report.
#pragma once

#include <functional>
#include <map>

#include "common.h"

namespace dfky {

enum class MsgType : std::uint8_t {
  kContent = 0,        // ContentMessage from a provider
  kPublicKeyUpdate = 1,  // PublicKey republished by the manager
  kChangePeriod = 2,     // SignedResetBundle
};

struct Envelope {
  MsgType type;
  Bytes payload;
};

class BroadcastBus {
 public:
  using Handler = std::function<void(const Envelope&)>;

  /// Registers a listener; returns a token for unsubscribe.
  std::size_t subscribe(Handler handler);
  void unsubscribe(std::size_t token);

  /// Delivers synchronously to all current subscribers and logs the message.
  void publish(Envelope env);

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }
  std::uint64_t bytes_sent(MsgType type) const;

  /// Everything ever broadcast — the eavesdropper's view.
  const std::vector<Envelope>& log() const { return log_; }

 private:
  std::map<std::size_t, Handler> handlers_;
  std::size_t next_token_ = 0;
  std::vector<Envelope> log_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::map<MsgType, std::uint64_t> bytes_by_type_;
};

}  // namespace dfky
