// Fault-injecting broadcast channel.
//
// The paper assumes an authenticated-but-unreliable broadcast medium; the
// plain BroadcastBus is lossless, which hides a whole class of receiver
// failures (one missed New-period bundle bricks a legitimate subscriber).
// FaultyBus interposes a deterministic, seeded fault plan between the
// sender's log and the subscribers: per-message drop / duplicate / reorder /
// byte-corruption / delay-by-N-messages probabilities, plus a targeted
// "drop the next kChangePeriod bundle" directive for staging exact gap
// scenarios. Every decision is drawn from a ChaCha20 PRG seeded by the
// plan, so two runs with the same seed and publish sequence produce
// identical fault counters and identical delivery schedules.
#pragma once

#include <map>

#include "broadcast/bus.h"
#include "rng/chacha_rng.h"

namespace dfky {

/// Knobs of the channel model. Probabilities are evaluated independently
/// per message, in a fixed order (drop, duplicate, corrupt, delay, reorder),
/// so the random stream — and therefore the run — is seed-deterministic.
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop_prob = 0.0;       // message never delivered
  double duplicate_prob = 0.0;  // message delivered twice back-to-back
  double corrupt_prob = 0.0;    // one payload byte flipped before delivery
  double delay_prob = 0.0;      // delivery deferred by `delay_messages`
  double reorder_prob = 0.0;    // delivery deferred by one message (swap)
  std::size_t delay_messages = 2;
};

/// Per-fault counters. `published` counts publish() calls; `delivered`
/// counts envelopes actually handed to subscribers (duplicates count
/// twice, drops not at all).
struct FaultCounters {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t targeted_drops = 0;

  bool operator==(const FaultCounters&) const = default;
};

class FaultyBus final : public BroadcastBus {
 public:
  explicit FaultyBus(FaultPlan plan);

  void publish(Envelope env) override;

  /// Targeted directive: unconditionally drop the next `n` kChangePeriod
  /// envelopes (stages "receiver missed the New-period bundle" exactly).
  void drop_next_change_periods(std::size_t n) {
    drop_change_period_budget_ += n;
  }

  /// Zeroes all fault probabilities and releases every held envelope —
  /// the channel heals. Counters and the PRG stream are kept.
  void heal();

  /// Releases every delayed/reordered envelope now, in schedule order.
  void flush();

  const FaultPlan& plan() const { return plan_; }
  const FaultCounters& fault_counters() const { return counters_; }
  std::size_t held_messages() const { return held_.size(); }

 private:
  bool roll(double prob);
  void release_due();

  FaultPlan plan_;
  ChaChaRng rng_;
  FaultCounters counters_;
  std::size_t drop_change_period_budget_ = 0;
  std::uint64_t clock_ = 0;  // publish() calls seen so far
  std::multimap<std::uint64_t, Envelope> held_;  // release clock -> envelope
};

}  // namespace dfky
