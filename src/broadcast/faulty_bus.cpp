#include "broadcast/faulty_bus.h"

#include "obs/metrics.h"

namespace dfky {

namespace {

// Mirrors a per-instance FaultCounters increment into the registry; the
// struct itself stays the source of truth for seeded-determinism tests.
inline void note_fault(const char* kind) {
  DFKY_OBS(obs::counter("dfky_bus_faults_total", {{"kind", kind}}).inc(););
#if !DFKY_OBS_ENABLED
  (void)kind;
#endif
}

}  // namespace

FaultyBus::FaultyBus(FaultPlan plan) : plan_(plan), rng_(plan.seed) {}

bool FaultyBus::roll(double prob) {
  // 53-bit uniform draw; drawn unconditionally per fault type per message
  // so the stream position never depends on earlier outcomes.
  const double u =
      static_cast<double>(rng_.u64() >> 11) * (1.0 / 9007199254740992.0);
  return u < prob;
}

void FaultyBus::release_due() {
  while (!held_.empty() && held_.begin()->first <= clock_) {
    Envelope env = std::move(held_.begin()->second);
    held_.erase(held_.begin());
    ++counters_.delivered;
    deliver(env);
  }
}

void FaultyBus::publish(Envelope env) {
  record(env);  // the sender put it on the wire; the eavesdropper saw it
  ++counters_.published;
  ++clock_;

  // Fixed draw order keeps the PRG stream aligned across runs.
  const bool drop = roll(plan_.drop_prob);
  const bool duplicate = roll(plan_.duplicate_prob);
  const bool corrupt = roll(plan_.corrupt_prob);
  const bool delay = roll(plan_.delay_prob);
  const bool reorder = roll(plan_.reorder_prob);
  const std::uint64_t corrupt_pos = rng_.u64();

  const bool targeted =
      env.type == MsgType::kChangePeriod && drop_change_period_budget_ > 0;
  if (targeted) {
    --drop_change_period_budget_;
    ++counters_.targeted_drops;
    ++counters_.dropped;
    note_fault("targeted_drop");
    note_fault("drop");
    release_due();
    return;
  }
  if (drop) {
    ++counters_.dropped;
    note_fault("drop");
    release_due();
    return;
  }
  if (corrupt && !env.payload.empty()) {
    env.payload[corrupt_pos % env.payload.size()] ^= 0x5a;
    ++counters_.corrupted;
    note_fault("corrupt");
  }
  if (delay) {
    ++counters_.delayed;
    note_fault("delay");
    held_.emplace(clock_ + plan_.delay_messages, std::move(env));
  } else if (reorder) {
    ++counters_.reordered;
    note_fault("reorder");
    held_.emplace(clock_ + 1, std::move(env));
  } else {
    ++counters_.delivered;
    deliver(env);
    if (duplicate) {
      ++counters_.duplicated;
      ++counters_.delivered;
      note_fault("duplicate");
      deliver(env);
    }
  }
  release_due();
}

void FaultyBus::flush() {
  while (!held_.empty()) {
    Envelope env = std::move(held_.begin()->second);
    held_.erase(held_.begin());
    ++counters_.delivered;
    deliver(env);
  }
}

void FaultyBus::heal() {
  plan_.drop_prob = 0.0;
  plan_.duplicate_prob = 0.0;
  plan_.corrupt_prob = 0.0;
  plan_.delay_prob = 0.0;
  plan_.reorder_prob = 0.0;
  drop_change_period_budget_ = 0;
  flush();
}

}  // namespace dfky
