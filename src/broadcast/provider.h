// Content providers and subscriber clients on the broadcast bus.
//
// Server-side scalability (paper Sect. 1.1.4): any number of providers
// encrypt with the same public key; none holds secret material, so
// compromising a provider compromises nothing. Providers track the public
// key from the manager's bus announcements. Subscriber clients wrap a
// Receiver: they decrypt content and follow signed period changes.
#pragma once

#include <optional>
#include <string>

#include "broadcast/bus.h"
#include "core/content.h"
#include "core/receiver.h"

namespace dfky {

class ContentProvider {
 public:
  /// Subscribes to public-key updates on the bus.
  ContentProvider(std::string name, SystemParams sp, PublicKey initial,
                  BroadcastBus& bus);
  ~ContentProvider();

  ContentProvider(const ContentProvider&) = delete;
  ContentProvider& operator=(const ContentProvider&) = delete;

  const std::string& name() const { return name_; }
  const PublicKey& current_public_key() const { return pk_; }
  /// Corrupted key-update envelopes ignored (the provider keeps encrypting
  /// under its last good key).
  std::size_t quarantined_updates() const { return quarantined_updates_; }

  /// Encrypts `payload` under the current public key and broadcasts it.
  ContentMessage broadcast(BytesView payload, Rng& rng);

 private:
  std::string name_;
  SystemParams sp_;
  PublicKey pk_;
  BroadcastBus& bus_;
  std::size_t token_;
  std::size_t quarantined_updates_ = 0;
};

/// Publishes the manager's current public key on the bus (done after every
/// Remove-user / New-period so providers stay current).
void announce_public_key(BroadcastBus& bus, const Group& group,
                         const PublicKey& pk);

/// Publishes a signed reset bundle on the bus.
void announce_reset(BroadcastBus& bus, const Group& group,
                    const SignedResetBundle& bundle);

/// Wraps a Receiver on the bus. Resilient by construction: envelopes that
/// fail to parse or authenticate are counted and quarantined, never thrown
/// through the bus callback; period gaps flip the receiver into kStale
/// (attach a RecoveryClient, see broadcast/recovery.h, to drive catch-up).
class SubscriberClient {
 public:
  /// Subscribes to content and period-change messages.
  SubscriberClient(SystemParams sp, UserKey key, Gelt manager_vk,
                   BroadcastBus& bus);
  ~SubscriberClient();

  SubscriberClient(const SubscriberClient&) = delete;
  SubscriberClient& operator=(const SubscriberClient&) = delete;

  const SystemParams& params() const { return sp_; }
  const Receiver& receiver() const { return receiver_; }
  /// Mutable access for the recovery path (catch-up bundle replay).
  Receiver& receiver() { return receiver_; }
  std::uint64_t period() const { return receiver_.period(); }
  ReceiverState state() const { return receiver_.state(); }

  /// Payloads successfully decrypted so far.
  const std::vector<Bytes>& received_content() const { return content_; }
  /// Broadcasts this client failed to decrypt (revoked/stale).
  std::size_t missed_broadcasts() const { return missed_; }
  /// Reset bundles this client could not follow (revoked key).
  std::size_t failed_resets() const { return failed_resets_; }
  /// Envelopes whose payload failed to parse or authenticate (corruption,
  /// forgery) — counted, never surfaced as exceptions.
  std::size_t quarantined_envelopes() const { return quarantined_; }
  /// Duplicate / replayed resets idempotently ignored.
  std::size_t stale_resets_ignored() const { return stale_resets_; }
  /// Period gaps detected (reset for a future period, or a newer observed
  /// ciphertext period).
  std::size_t gaps_detected() const { return gaps_; }

 private:
  void on_message(const Envelope& env);

  SystemParams sp_;
  Receiver receiver_;
  BroadcastBus& bus_;
  std::size_t token_;
  std::vector<Bytes> content_;
  std::size_t missed_ = 0;
  std::size_t failed_resets_ = 0;
  std::size_t quarantined_ = 0;
  std::size_t stale_resets_ = 0;
  std::size_t gaps_ = 0;
};

}  // namespace dfky
