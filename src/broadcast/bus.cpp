#include "broadcast/bus.h"

#include "obs/metrics.h"

namespace dfky {

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kContent: return "content";
    case MsgType::kPublicKeyUpdate: return "public_key_update";
    case MsgType::kChangePeriod: return "change_period";
    case MsgType::kCatchUpRequest: return "catch_up_request";
    case MsgType::kCatchUpResponse: return "catch_up_response";
  }
  return "unknown";
}

std::size_t BroadcastBus::subscribe(Handler handler) {
  const std::size_t token = next_token_++;
  handlers_.emplace(token, std::move(handler));
  return token;
}

void BroadcastBus::unsubscribe(std::size_t token) {
  handlers_.erase(token);
}

void BroadcastBus::record(const Envelope& env) {
  ++messages_;
  bytes_ += env.payload.size();
  bytes_by_type_[env.type] += env.payload.size();
  log_.push_back(env);
  DFKY_OBS(
      const obs::Labels labels = {{"type", msg_type_name(env.type)}};
      obs::counter("dfky_bus_publish_total", labels).inc();
      obs::counter("dfky_bus_publish_bytes_total", labels)
          .inc(env.payload.size()););
}

void BroadcastBus::deliver(const Envelope& env) {
  ++delivered_messages_;
  delivered_bytes_ += env.payload.size();
  delivered_bytes_by_type_[env.type] += env.payload.size();
  DFKY_OBS(
      const obs::Labels labels = {{"type", msg_type_name(env.type)}};
      obs::counter("dfky_bus_deliver_total", labels).inc();
      obs::counter("dfky_bus_deliver_bytes_total", labels)
          .inc(env.payload.size()););
  // Deliver to a snapshot so handlers may (un)subscribe during delivery.
  // `env` must be the caller's own copy: a handler that publishes
  // recursively grows log_, so a reference into it would dangle.
  std::vector<Handler> snapshot;
  snapshot.reserve(handlers_.size());
  for (const auto& [token, h] : handlers_) snapshot.push_back(h);
  for (const Handler& h : snapshot) h(env);
}

void BroadcastBus::publish(Envelope env) {
  record(env);
  deliver(env);
}

std::uint64_t BroadcastBus::bytes_sent(MsgType type) const {
  const auto it = bytes_by_type_.find(type);
  return it == bytes_by_type_.end() ? 0 : it->second;
}

std::uint64_t BroadcastBus::bytes_delivered(MsgType type) const {
  const auto it = delivered_bytes_by_type_.find(type);
  return it == delivered_bytes_by_type_.end() ? 0 : it->second;
}

}  // namespace dfky
