#include "broadcast/bus.h"

namespace dfky {

std::size_t BroadcastBus::subscribe(Handler handler) {
  const std::size_t token = next_token_++;
  handlers_.emplace(token, std::move(handler));
  return token;
}

void BroadcastBus::unsubscribe(std::size_t token) {
  handlers_.erase(token);
}

void BroadcastBus::record(const Envelope& env) {
  ++messages_;
  bytes_ += env.payload.size();
  bytes_by_type_[env.type] += env.payload.size();
  log_.push_back(env);
}

void BroadcastBus::deliver(const Envelope& env) {
  // Deliver to a snapshot so handlers may (un)subscribe during delivery.
  // `env` must be the caller's own copy: a handler that publishes
  // recursively grows log_, so a reference into it would dangle.
  std::vector<Handler> snapshot;
  snapshot.reserve(handlers_.size());
  for (const auto& [token, h] : handlers_) snapshot.push_back(h);
  for (const Handler& h : snapshot) h(env);
}

void BroadcastBus::publish(Envelope env) {
  record(env);
  deliver(env);
}

std::uint64_t BroadcastBus::bytes_sent(MsgType type) const {
  const auto it = bytes_by_type_.find(type);
  return it == bytes_by_type_.end() ? 0 : it->second;
}

}  // namespace dfky
