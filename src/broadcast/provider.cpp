#include "broadcast/provider.h"

namespace dfky {

ContentProvider::ContentProvider(std::string name, SystemParams sp,
                                 PublicKey initial, BroadcastBus& bus)
    : name_(std::move(name)),
      sp_(std::move(sp)),
      pk_(std::move(initial)),
      bus_(bus) {
  token_ = bus_.subscribe([this](const Envelope& env) {
    if (env.type == MsgType::kPublicKeyUpdate) {
      Reader r(env.payload);
      pk_ = PublicKey::deserialize(r, sp_.group);
    }
  });
}

ContentProvider::~ContentProvider() {
  bus_.unsubscribe(token_);
}

ContentMessage ContentProvider::broadcast(BytesView payload, Rng& rng) {
  ContentMessage msg = seal_content(sp_, pk_, payload, rng);
  Writer w;
  msg.serialize(w, sp_.group);
  bus_.publish(Envelope{MsgType::kContent, std::move(w).take()});
  return msg;
}

void announce_public_key(BroadcastBus& bus, const Group& group,
                         const PublicKey& pk) {
  Writer w;
  pk.serialize(w, group);
  bus.publish(Envelope{MsgType::kPublicKeyUpdate, std::move(w).take()});
}

void announce_reset(BroadcastBus& bus, const Group& group,
                    const SignedResetBundle& bundle) {
  Writer w;
  bundle.serialize(w, group);
  bus.publish(Envelope{MsgType::kChangePeriod, std::move(w).take()});
}

SubscriberClient::SubscriberClient(SystemParams sp, UserKey key,
                                   Gelt manager_vk, BroadcastBus& bus)
    : sp_(sp), receiver_(std::move(sp), std::move(key), std::move(manager_vk)),
      bus_(bus) {
  token_ = bus_.subscribe([this](const Envelope& env) { on_message(env); });
}

SubscriberClient::~SubscriberClient() {
  bus_.unsubscribe(token_);
}

void SubscriberClient::on_message(const Envelope& env) {
  switch (env.type) {
    case MsgType::kContent: {
      try {
        Reader r(env.payload);
        const ContentMessage msg = ContentMessage::deserialize(r, sp_.group);
        content_.push_back(
            open_content(sp_, receiver_.key(), msg));
      } catch (const Error&) {
        ++missed_;  // revoked, stale key, or malformed broadcast
      }
      break;
    }
    case MsgType::kChangePeriod: {
      try {
        Reader r(env.payload);
        const SignedResetBundle bundle =
            SignedResetBundle::deserialize(r, sp_.group);
        receiver_.apply_reset(bundle);
      } catch (const Error&) {
        ++failed_resets_;  // revoked receivers cannot follow the change
      }
      break;
    }
    case MsgType::kPublicKeyUpdate:
      break;  // receivers do not need the public key
  }
}

}  // namespace dfky
