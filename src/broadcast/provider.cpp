#include "broadcast/provider.h"

namespace dfky {

ContentProvider::ContentProvider(std::string name, SystemParams sp,
                                 PublicKey initial, BroadcastBus& bus)
    : name_(std::move(name)),
      sp_(std::move(sp)),
      pk_(std::move(initial)),
      bus_(bus) {
  token_ = bus_.subscribe([this](const Envelope& env) {
    if (env.type != MsgType::kPublicKeyUpdate) return;
    try {
      Reader r(env.payload);
      PublicKey pk = PublicKey::deserialize(r, sp_.group);
      r.expect_end();
      // A delayed/reordered update must not roll the provider's key back
      // to an earlier period (same-period updates carry new revocations).
      if (pk.period >= pk_.period) pk_ = std::move(pk);
    } catch (const Error&) {
      ++quarantined_updates_;  // corrupted on the wire
    }
  });
}

ContentProvider::~ContentProvider() {
  bus_.unsubscribe(token_);
}

ContentMessage ContentProvider::broadcast(BytesView payload, Rng& rng) {
  ContentMessage msg = seal_content(sp_, pk_, payload, rng);
  Writer w;
  msg.serialize(w, sp_.group);
  bus_.publish(Envelope{MsgType::kContent, std::move(w).take()});
  return msg;
}

void announce_public_key(BroadcastBus& bus, const Group& group,
                         const PublicKey& pk) {
  Writer w;
  pk.serialize(w, group);
  bus.publish(Envelope{MsgType::kPublicKeyUpdate, std::move(w).take()});
}

void announce_reset(BroadcastBus& bus, const Group& group,
                    const SignedResetBundle& bundle) {
  Writer w;
  bundle.serialize(w, group);
  bus.publish(Envelope{MsgType::kChangePeriod, std::move(w).take()});
}

SubscriberClient::SubscriberClient(SystemParams sp, UserKey key,
                                   Gelt manager_vk, BroadcastBus& bus)
    : sp_(sp), receiver_(std::move(sp), std::move(key), std::move(manager_vk)),
      bus_(bus) {
  token_ = bus_.subscribe([this](const Envelope& env) { on_message(env); });
}

SubscriberClient::~SubscriberClient() {
  bus_.unsubscribe(token_);
}

void SubscriberClient::on_message(const Envelope& env) {
  switch (env.type) {
    case MsgType::kContent: {
      std::optional<ContentMessage> msg;
      try {
        Reader r(env.payload);
        msg.emplace(ContentMessage::deserialize(r, sp_.group));
        r.expect_end();
      } catch (const Error&) {
        ++quarantined_;  // corrupted on the wire
        break;
      }
      try {
        content_.push_back(open_content(sp_, receiver_.key(), *msg));
      } catch (const Error&) {
        ++missed_;  // revoked or stale key
        // A ciphertext from a future period is (unauthenticated) evidence
        // that New-period bundles were lost; widen the catch-up target.
        if (msg->kem.period > receiver_.period()) {
          const bool was_stale = receiver_.state() != ReceiverState::kCurrent;
          receiver_.note_observed_period(msg->kem.period);
          if (!was_stale && receiver_.state() == ReceiverState::kStale) {
            ++gaps_;
          }
        }
      }
      break;
    }
    case MsgType::kChangePeriod: {
      std::optional<SignedResetBundle> bundle;
      try {
        Reader r(env.payload);
        bundle.emplace(SignedResetBundle::deserialize(r, sp_.group));
        r.expect_end();
      } catch (const Error&) {
        ++quarantined_;  // corrupted on the wire
        break;
      }
      try {
        switch (receiver_.apply_reset(*bundle)) {
          case ResetOutcome::kApplied:
            break;
          case ResetOutcome::kStaleIgnored:
            ++stale_resets_;
            break;
          case ResetOutcome::kGapDetected:
            ++gaps_;
            break;
          case ResetOutcome::kCannotFollow:
            ++failed_resets_;  // revoked receivers cannot follow the change
            break;
        }
      } catch (const Error&) {
        ++quarantined_;  // forged signature (or corrupted past parsing)
      }
      break;
    }
    case MsgType::kPublicKeyUpdate:
    case MsgType::kCatchUpRequest:
    case MsgType::kCatchUpResponse:
      break;  // handled by providers / RecoveryClient, not the subscriber
  }
}

}  // namespace dfky
