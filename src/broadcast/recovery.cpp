#include "broadcast/recovery.h"

#include "obs/metrics.h"

namespace dfky {

CatchUpResponder::CatchUpResponder(SecurityManager& mgr, BroadcastBus& bus,
                                   Rng& rng)
    : mgr_(mgr), bus_(bus), rng_(rng) {
  token_ = bus_.subscribe([this](const Envelope& env) {
    if (env.type != MsgType::kCatchUpRequest) return;
    std::optional<CatchUpRequest> req;
    try {
      Reader r(env.payload);
      req.emplace(CatchUpRequest::deserialize(r));
      r.expect_end();
    } catch (const Error&) {
      ++quarantined_;  // corrupted request; the client will retry
      DFKY_OBS(obs::counter("dfky_catchup_requests_quarantined_total").inc(););
      return;
    }
    const CatchUpResponse resp = mgr_.handle_catch_up(*req, rng_);
    Writer w;
    resp.serialize(w, mgr_.params().group);
    ++answered_;
    DFKY_OBS(obs::counter("dfky_catchup_requests_answered_total").inc(););
    bus_.publish(Envelope{MsgType::kCatchUpResponse, std::move(w).take()});
  });
}

CatchUpResponder::~CatchUpResponder() {
  bus_.unsubscribe(token_);
}

RecoveryClient::RecoveryClient(SubscriberClient& subscriber, BroadcastBus& bus,
                               RecoveryPolicy policy)
    : subscriber_(subscriber), bus_(bus), policy_(policy) {
  token_ = bus_.subscribe([this](const Envelope& env) { on_message(env); });
}

RecoveryClient::~RecoveryClient() {
  bus_.unsubscribe(token_);
}

void RecoveryClient::on_message(const Envelope& env) {
  ++tick_;
  if (env.type == MsgType::kCatchUpResponse) handle_response(env);

  Receiver& receiver = subscriber_.receiver();
  switch (receiver.state()) {
    case ReceiverState::kUnrecoverable:
      status_ = Status::kUnrecoverable;
      return;
    case ReceiverState::kCurrent:
      // Any stale episode is over; re-arm the budget for the next one.
      if (status_ == Status::kWaiting || status_ == Status::kExhausted) {
        status_ = Status::kRecovered;
      }
      attempts_ = 0;
      next_attempt_tick_ = tick_;
      return;
    case ReceiverState::kStale:
      break;
  }
  if (attempts_ >= policy_.attempt_budget) {
    status_ = Status::kExhausted;
    return;
  }
  if (tick_ < next_attempt_tick_) return;

  CatchUpRequest req;
  req.nonce = policy_.nonce;
  req.have_period = receiver.period();
  req.want_period = receiver.catch_up_target();
  Writer w;
  req.serialize(w);
  ++attempts_;
  ++requests_sent_;
  DFKY_OBS(
      obs::counter("dfky_recovery_requests_total").inc();
      obs::event({.name = "recovery_request",
                  .period = static_cast<std::int64_t>(req.have_period),
                  .detail = "attempt",
                  .value = static_cast<std::int64_t>(attempts_)}););
  status_ = Status::kWaiting;
  // Deterministic exponential backoff, measured in observed bus messages.
  next_attempt_tick_ = tick_ + (policy_.backoff_base << (attempts_ - 1));
  bus_.publish(Envelope{MsgType::kCatchUpRequest, std::move(w).take()});
}

void RecoveryClient::handle_response(const Envelope& env) {
  const Group& group = subscriber_.params().group;
  Receiver& receiver = subscriber_.receiver();
  if (receiver.state() != ReceiverState::kStale) return;

  std::optional<CatchUpResponse> resp;
  try {
    Reader r(env.payload);
    resp.emplace(CatchUpResponse::deserialize(r, group));
    r.expect_end();
  } catch (const Error&) {
    return;  // corrupted response; backoff drives a retry
  }
  if (!resp->verify(group, receiver.manager_vk())) {
    return;  // forged or corrupted in flight; backoff drives a retry
  }

  // The response is authentic, so replay its bundles no matter whose
  // request triggered it (concurrent recoveries share work).
  for (const SignedResetBundle& bundle : resp->bundles) {
    try {
      if (receiver.apply_reset(bundle) == ResetOutcome::kApplied) {
        ++bundles_replayed_;
        DFKY_OBS(obs::counter("dfky_recovery_bundles_replayed_total").inc(););
      }
    } catch (const Error&) {
      return;  // inner bundle fails its own check; stop replaying
    }
  }

  // Authenticated eviction verdict: the earliest period the archive still
  // serves is past what this receiver needs. Replay of an old verdict is
  // harmless — the archive only evicts forward, so it stays true.
  if (receiver.state() == ReceiverState::kStale && resp->bundles.empty() &&
      resp->oldest_available > receiver.needed_from()) {
    receiver.mark_unrecoverable();
    status_ = Status::kUnrecoverable;
  }
}

}  // namespace dfky
