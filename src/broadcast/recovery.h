// Catch-up recovery protocol over the broadcast bus.
//
// When a receiver misses New-period bundles (lossy channel), it flips to
// kStale and needs the missing SignedResetBundles replayed in order. Two
// small actors implement that:
//
//   CatchUpResponder — manager side. Listens for kCatchUpRequest envelopes
//   and answers from the manager's bounded signed-reset archive with a
//   kCatchUpResponse carrying the missing bundle range (or an empty range
//   plus the archive floor when the needed period has been evicted).
//
//   RecoveryClient — receiver side. Watches a SubscriberClient; whenever
//   its receiver is kStale it publishes catch-up requests under a bounded
//   attempt budget with a deterministic exponential backoff, measured in
//   observed bus messages (the in-process bus has no clock). Responses are
//   self-authenticating (each bundle is signed), so the client replays
//   bundles from ANY response it sees — concurrent recoveries share work.
//   Signed evidence that the archive evicted the needed period drives the
//   receiver to its terminal kUnrecoverable state.
#pragma once

#include "broadcast/provider.h"
#include "core/manager.h"

namespace dfky {

class CatchUpResponder {
 public:
  /// `rng` feeds the response signatures (seed it for deterministic runs).
  CatchUpResponder(SecurityManager& mgr, BroadcastBus& bus, Rng& rng);
  ~CatchUpResponder();

  CatchUpResponder(const CatchUpResponder&) = delete;
  CatchUpResponder& operator=(const CatchUpResponder&) = delete;

  std::uint64_t requests_answered() const { return answered_; }
  std::uint64_t requests_quarantined() const { return quarantined_; }

 private:
  SecurityManager& mgr_;
  BroadcastBus& bus_;
  Rng& rng_;
  std::size_t token_;
  std::uint64_t answered_ = 0;
  std::uint64_t quarantined_ = 0;
};

struct RecoveryPolicy {
  /// Max catch-up requests per stale episode. Exhausting the budget stops
  /// this client (kExhausted) but does NOT mark the receiver unrecoverable:
  /// only signed archive-eviction evidence is terminal, so lost responses
  /// cannot be escalated into a bricked subscriber by an injected hint.
  std::size_t attempt_budget = 6;
  /// Backoff before retry #n, in observed bus messages: base << (n - 1).
  std::uint64_t backoff_base = 1;
  /// Correlation nonce echoed by the responder (pick per client).
  std::uint64_t nonce = 1;
};

class RecoveryClient {
 public:
  enum class Status : std::uint8_t {
    kIdle = 0,         // receiver current; nothing to do
    kWaiting = 1,      // request sent, watching for a response
    kRecovered = 2,    // last stale episode ended in kCurrent
    kExhausted = 3,    // attempt budget spent while still stale
    kUnrecoverable = 4,  // archive evicted the needed period (terminal)
  };

  RecoveryClient(SubscriberClient& subscriber, BroadcastBus& bus,
                 RecoveryPolicy policy = {});
  ~RecoveryClient();

  RecoveryClient(const RecoveryClient&) = delete;
  RecoveryClient& operator=(const RecoveryClient&) = delete;

  Status status() const { return status_; }
  std::size_t attempts() const { return attempts_; }
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t bundles_replayed() const { return bundles_replayed_; }

 private:
  void on_message(const Envelope& env);
  void handle_response(const Envelope& env);
  void maybe_request();

  SubscriberClient& subscriber_;
  BroadcastBus& bus_;
  RecoveryPolicy policy_;
  std::size_t token_;
  Status status_ = Status::kIdle;
  std::uint64_t tick_ = 0;  // bus messages observed
  std::uint64_t next_attempt_tick_ = 0;
  std::size_t attempts_ = 0;  // within the current stale episode
  std::uint64_t requests_sent_ = 0;
  std::uint64_t bundles_replayed_ = 0;
};

}  // namespace dfky
