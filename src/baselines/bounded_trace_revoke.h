// Baseline 2: bounded-revocation public-key trace-and-revoke in the style of
// Naor-Pinkas [25] / Tzeng-Tzeng [28].
//
// A single fixed secret polynomial P of degree v; the public key carries
// g^{a_j} for every coefficient so any provider can compute g^{P(z)} at any
// point. A broadcast bars the members of the current revocation list R
// (|R| <= v, padded with placeholders):
//     < g^r, M * g^{r P(0)}, { (z, g^{r P(z)}) : z in R } >.
// User keys are fixed points (x_i, P(x_i)) — never refreshed.
//
// This reproduces the two weaknesses the paper's scheme eliminates:
//   * the total number of revocations is bounded by v for the system's
//     entire lifetime (client-side scalability failure), and
//   * if the manager is forced to drop an old entry from the list (policy
//     kDropOldest), the dropped user's key immediately works again — the
//     "revive" attack of Sect. 1.3.
#pragma once

#include <deque>
#include <optional>
#include <set>

#include "core/ciphertext.h"
#include "poly/polynomial.h"

namespace dfky {

enum class OverflowPolicy {
  kRefuse,      // revocation beyond v fails: the system is saturated forever
  kDropOldest,  // old revocations are forgotten: revived pirate keys
};

class BoundedTraceRevoke {
 public:
  BoundedTraceRevoke(SystemParams sp, OverflowPolicy policy, Rng& rng);

  struct UserSecret {
    std::uint64_t id;
    Bigint x;
    Bigint px;  // P(x), fixed for the lifetime of the system
  };

  UserSecret add_user(Rng& rng);

  /// Revokes user `id`. Returns false when the revocation list is full and
  /// the policy is kRefuse. With kDropOldest the oldest revocation is
  /// dropped (and that user can decrypt again).
  bool revoke(std::uint64_t id);

  /// Whether `id`'s key currently decrypts broadcasts.
  bool currently_barred(std::uint64_t id) const;

  /// The published coefficients commitments g^{a_0..a_v} plus generator:
  /// the public encryption key. Encryption uses only public data.
  Ciphertext encrypt(const Gelt& m, Rng& rng) const;

  /// Decrypts with a fixed user point (Lagrange through the ciphertext's
  /// revocation slots). Throws ContractError when the user is barred.
  Gelt decrypt(const Ciphertext& ct, const UserSecret& us) const;

  std::size_t wire_size(const Ciphertext& ct) const {
    return ct.wire_size(sp_.group);
  }

 private:
  Gelt g_pow_p(const Bigint& z) const;  // g^{P(z)} from the commitments

  SystemParams sp_;
  OverflowPolicy policy_;
  Polynomial p_;
  std::vector<Gelt> coeff_commitments_;  // g^{a_j}
  std::vector<std::pair<std::uint64_t, Bigint>> users_;  // id -> x
  std::deque<std::uint64_t> revocation_list_;            // FIFO, size <= v
  std::set<Bigint> used_x_;
};

}  // namespace dfky
