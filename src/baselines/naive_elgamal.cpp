#include "baselines/naive_elgamal.h"

#include "serial/codec.h"

namespace dfky {

NaiveElGamalBroadcast::NaiveElGamalBroadcast(Group group)
    : group_(std::move(group)) {}

NaiveElGamalBroadcast::UserSecret NaiveElGamalBroadcast::add_user(Rng& rng) {
  const Bigint sk = group_.random_exponent(rng);
  users_.push_back(UserRec{group_.pow_g(sk), false});
  return UserSecret{users_.size() - 1, sk};
}

void NaiveElGamalBroadcast::revoke(std::uint64_t id) {
  require(id < users_.size(), "NaiveElGamal: unknown user");
  users_[id].revoked = true;
}

std::size_t NaiveElGamalBroadcast::active_users() const {
  std::size_t n = 0;
  for (const UserRec& u : users_) {
    if (!u.revoked) ++n;
  }
  return n;
}

NaiveElGamalBroadcast::Broadcast NaiveElGamalBroadcast::encrypt(
    const Gelt& m, Rng& rng) const {
  Broadcast out;
  for (std::size_t id = 0; id < users_.size(); ++id) {
    if (users_[id].revoked) continue;
    const Bigint r = group_.random_exponent(rng);
    out.entries.push_back(Broadcast::Entry{
        id, group_.pow_g(r),
        group_.mul(group_.pow(users_[id].pk, r), m)});
  }
  return out;
}

std::optional<Gelt> NaiveElGamalBroadcast::decrypt(
    const Broadcast& b, const UserSecret& us) const {
  for (const Broadcast::Entry& e : b.entries) {
    if (e.id == us.id) {
      return group_.div(e.c2, group_.pow(e.c1, us.sk));
    }
  }
  return std::nullopt;
}

std::size_t NaiveElGamalBroadcast::Broadcast::wire_size(
    const Group& group) const {
  Writer w;
  for (const Entry& e : entries) {
    w.put_u64(e.id);
    put_gelt(w, group, e.c1);
    put_gelt(w, group, e.c2);
  }
  return w.size();
}

}  // namespace dfky
