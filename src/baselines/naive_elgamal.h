// Baseline 1: naive per-user ElGamal broadcast.
//
// The strawman of the paper's transmission-efficiency discussion
// (Sect. 1.1.3): every user has an independent ElGamal key pair and each
// broadcast carries one ciphertext per active subscriber — ciphertext size
// O(n), revocation trivial (skip the user), tracing trivial (keys are
// per-user). Exists to anchor the E1 transmission experiment.
#pragma once

#include <optional>

#include "group/element.h"
#include "serial/buffer.h"

namespace dfky {

class NaiveElGamalBroadcast {
 public:
  explicit NaiveElGamalBroadcast(Group group);

  struct UserSecret {
    std::uint64_t id;
    Bigint sk;
  };

  UserSecret add_user(Rng& rng);
  void revoke(std::uint64_t id);
  std::size_t active_users() const;

  struct Broadcast {
    // One (g^r, m * pk_i^r) pair per active user, tagged with the id.
    struct Entry {
      std::uint64_t id;
      Gelt c1;
      Gelt c2;
    };
    std::vector<Entry> entries;

    std::size_t wire_size(const Group& group) const;
  };

  Broadcast encrypt(const Gelt& m, Rng& rng) const;
  /// Decrypts with a user secret; nullopt if the user has no entry
  /// (revoked).
  std::optional<Gelt> decrypt(const Broadcast& b, const UserSecret& us) const;

 private:
  struct UserRec {
    Gelt pk;
    bool revoked = false;
  };

  Group group_;
  std::vector<UserRec> users_;
};

}  // namespace dfky
