#include "baselines/bounded_trace_revoke.h"

#include "poly/leap_vector.h"

namespace dfky {

BoundedTraceRevoke::BoundedTraceRevoke(SystemParams sp, OverflowPolicy policy,
                                       Rng& rng)
    : sp_(std::move(sp)),
      policy_(policy),
      p_(Polynomial::random(sp_.group.zq(), sp_.v, rng)) {
  coeff_commitments_.reserve(sp_.v + 1);
  for (std::size_t j = 0; j <= sp_.v; ++j) {
    coeff_commitments_.push_back(sp_.group.pow(sp_.g, p_.coeff(j)));
  }
}

Gelt BoundedTraceRevoke::g_pow_p(const Bigint& z) const {
  std::vector<Bigint> exps;
  exps.reserve(coeff_commitments_.size());
  Bigint pw(1);
  for (std::size_t j = 0; j < coeff_commitments_.size(); ++j) {
    exps.push_back(pw);
    pw = sp_.group.zq().mul(pw, z);
  }
  return multiexp(sp_.group, coeff_commitments_, exps);
}

BoundedTraceRevoke::UserSecret BoundedTraceRevoke::add_user(Rng& rng) {
  const Bigint v_bound(static_cast<long>(sp_.v));
  Bigint x;
  do {
    x = rng.uniform_nonzero_below(sp_.group.order());
  } while (x <= v_bound || used_x_.contains(x));
  used_x_.insert(x);
  const std::uint64_t id = users_.size();
  users_.emplace_back(id, x);
  return UserSecret{id, x, p_.eval(x)};
}

bool BoundedTraceRevoke::revoke(std::uint64_t id) {
  require(id < users_.size(), "BoundedTraceRevoke: unknown user");
  for (std::uint64_t barred : revocation_list_) {
    require(barred != id, "BoundedTraceRevoke: user already revoked");
  }
  if (revocation_list_.size() == sp_.v) {
    if (policy_ == OverflowPolicy::kRefuse) return false;
    revocation_list_.pop_front();  // the dropped user's key revives
  }
  revocation_list_.push_back(id);
  return true;
}

bool BoundedTraceRevoke::currently_barred(std::uint64_t id) const {
  for (std::uint64_t barred : revocation_list_) {
    if (barred == id) return true;
  }
  return false;
}

Ciphertext BoundedTraceRevoke::encrypt(const Gelt& m, Rng& rng) const {
  const Bigint r = sp_.group.random_exponent(rng);
  Ciphertext ct;
  ct.period = 0;  // this scheme has no periods
  ct.u = sp_.group.pow(sp_.g, r);
  ct.u2 = sp_.group.one();  // unused: single-generator scheme
  ct.w = sp_.group.mul(sp_.group.pow(coeff_commitments_[0], r), m);
  // Slots: revoked users' x values, padded to v with placeholders 1..v.
  std::vector<Bigint> zs;
  zs.reserve(sp_.v);
  for (std::uint64_t id : revocation_list_) zs.push_back(users_[id].second);
  for (long l = 1; zs.size() < sp_.v; ++l) zs.push_back(Bigint(l));
  for (const Bigint& z : zs) {
    ct.slots.push_back(CtSlot{z, sp_.group.pow(g_pow_p(z), r)});
  }
  return ct;
}

Gelt BoundedTraceRevoke::decrypt(const Ciphertext& ct,
                                 const UserSecret& us) const {
  const Zq& zq = sp_.group.zq();
  const std::vector<Bigint> zs = ct.slot_ids();
  // Throws ContractError when us.x collides with a slot (barred user).
  const LeapCoefficients lc = leap_coefficients(zq, us.x, zs);
  std::vector<Gelt> bases;
  std::vector<Bigint> exps;
  bases.reserve(ct.slots.size() + 1);
  exps.reserve(ct.slots.size() + 1);
  bases.push_back(ct.u);
  exps.push_back(zq.mul(lc.lambda0, us.px));
  for (std::size_t l = 0; l < ct.slots.size(); ++l) {
    bases.push_back(ct.slots[l].hr);
    exps.push_back(lc.lambdas[l]);
  }
  return sp_.group.div(ct.w, multiexp(sp_.group, bases, exps));
}

}  // namespace dfky
