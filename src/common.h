// Common error types and small utilities shared by every dfky module.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dfky {

using byte = std::uint8_t;
using Bytes = std::vector<byte>;
using BytesView = std::span<const byte>;

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad argument, wrong state).
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

/// A wire message failed to parse or authenticate.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error(what) {}
};

/// An algorithm's mathematical precondition failed at runtime
/// (singular matrix, non-invertible element, undecodable word, ...).
class MathError : public Error {
 public:
  explicit MathError(const std::string& what) : Error(what) {}
};

/// Throws ContractError with `msg` unless `cond` holds.
inline void require(bool cond, const char* msg) {
  if (!cond) throw ContractError(msg);
}

}  // namespace dfky
