#include "field/zq.h"

namespace dfky {

Zq::Zq(Bigint q, bool trust_prime) : q_(std::move(q)) {
  require(q_ > Bigint(2), "Zq: modulus must be an odd prime > 2");
  if (!trust_prime) {
    require(q_.probab_prime(24), "Zq: modulus must be prime");
  }
}

void Zq::batch_inv(std::vector<Bigint>& xs) const {
  if (xs.empty()) return;
  // prefix[i] = xs[0] * ... * xs[i]
  std::vector<Bigint> prefix(xs.size());
  prefix[0] = reduce(xs[0]);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    prefix[i] = mul(prefix[i - 1], xs[i]);
  }
  Bigint acc = inv(prefix.back());  // throws if any xs[i] == 0
  for (std::size_t i = xs.size(); i-- > 1;) {
    const Bigint inv_i = mul(acc, prefix[i - 1]);
    acc = mul(acc, xs[i]);
    xs[i] = inv_i;
  }
  xs[0] = acc;
}

}  // namespace dfky
