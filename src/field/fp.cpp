#include "field/fp.h"

namespace dfky {

bool is_quadratic_residue(const Bigint& a, const Bigint& p) {
  const Bigint r = a.mod(p);
  if (r.is_zero()) return false;
  return r.jacobi(p) == 1;
}

namespace {

// Tonelli-Shanks for p = 1 (mod 4). Assumes `a` is a QR.
Bigint tonelli_shanks(const Bigint& a, const Bigint& p) {
  // Write p - 1 = s * 2^e with s odd.
  Bigint s = p - Bigint(1);
  unsigned long e = 0;
  while (!s.is_odd()) {
    s = s >> 1;
    ++e;
  }
  // Find a quadratic non-residue n (deterministic scan; fine for fixed p).
  Bigint n(2);
  while (n.jacobi(p) != -1) n += Bigint(1);

  Bigint x = Bigint::powm(a, (s + Bigint(1)) >> 1, p);
  Bigint b = Bigint::powm(a, s, p);
  Bigint g = Bigint::powm(n, s, p);
  unsigned long r = e;
  while (true) {
    // Find least m with b^(2^m) == 1.
    Bigint t = b;
    unsigned long m = 0;
    while (!t.is_one()) {
      t = (t * t).mod(p);
      ++m;
      if (m == r) throw MathError("sqrt_mod: not a quadratic residue");
    }
    if (m == 0) return x;
    // x *= g^(2^(r-m-1)); b *= g^(2^(r-m)); g = g^(2^(r-m)); r = m.
    Bigint gs = g;
    for (unsigned long i = 0; i + m + 1 < r; ++i) gs = (gs * gs).mod(p);
    x = (x * gs).mod(p);
    g = (gs * gs).mod(p);
    b = (b * g).mod(p);
    r = m;
  }
}

}  // namespace

Bigint sqrt_mod(const Bigint& a, const Bigint& p) {
  const Bigint r = a.mod(p);
  if (r.is_zero()) return Bigint(0);
  if (r.jacobi(p) != 1) throw MathError("sqrt_mod: not a quadratic residue");
  if (p.mod(Bigint(4)) == Bigint(3)) {
    return Bigint::powm(r, (p + Bigint(1)) >> 2, p);
  }
  return tonelli_shanks(r, p);
}

Bigint min_sqrt_mod(const Bigint& a, const Bigint& p) {
  const Bigint r1 = sqrt_mod(a, p);
  const Bigint r2 = (p - r1).mod(p);
  return r1 < r2 ? r1 : r2;
}

}  // namespace dfky
