// Prime-field context Z_q.
//
// Scalars are plain Bigint values held in canonical form [0, q); all
// operations are routed through a Zq context so the modulus is stated once.
// Polynomials, matrices and codes all carry a Zq by value (the modulus copy
// is a few machine words; contexts compare equal iff their moduli do).
#pragma once

#include <vector>

#include "bigint/bigint.h"

namespace dfky {

class Zq {
 public:
  /// `q` must be an odd prime (checked probabilistically unless
  /// `trust_prime` is set, which the embedded parameter sets use).
  explicit Zq(Bigint q, bool trust_prime = false);

  const Bigint& modulus() const { return q_; }

  Bigint reduce(const Bigint& a) const { return a.mod(q_); }

  Bigint add(const Bigint& a, const Bigint& b) const {
    return (a + b).mod(q_);
  }
  Bigint sub(const Bigint& a, const Bigint& b) const {
    return (a - b).mod(q_);
  }
  Bigint mul(const Bigint& a, const Bigint& b) const {
    return (a * b).mod(q_);
  }
  Bigint neg(const Bigint& a) const { return (-a).mod(q_); }
  /// Throws MathError if `a` is zero mod q.
  Bigint inv(const Bigint& a) const { return Bigint::invm(a, q_); }
  /// a / b in the field; throws MathError if b == 0.
  Bigint div(const Bigint& a, const Bigint& b) const {
    return mul(a, inv(b));
  }
  Bigint pow(const Bigint& a, const Bigint& e) const {
    return Bigint::powm(a, e, q_);
  }

  bool is_zero(const Bigint& a) const { return a.mod(q_).is_zero(); }

  /// Inverts every element of `xs` in place using Montgomery's batch trick
  /// (one field inversion + 3(n-1) multiplications). Throws MathError if any
  /// element is zero.
  void batch_inv(std::vector<Bigint>& xs) const;

  friend bool operator==(const Zq& a, const Zq& b) { return a.q_ == b.q_; }

 private:
  Bigint q_;
};

}  // namespace dfky
