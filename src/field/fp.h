// Square roots and quadratic-residue tests modulo an odd prime p.
//
// The scheme's message encoding (paper Sect. 4, New-period) maps a in Z_q to
// (a+1)^2 mod p and inverts by taking the smaller square root; since the
// group uses a safe prime p = 2q + 1 we always have p = 3 (mod 4) and the
// fast exponent-(p+1)/4 root applies, but a general Tonelli-Shanks fallback
// is provided (and cross-checked in tests) for completeness.
#pragma once

#include "bigint/bigint.h"

namespace dfky {

/// True iff a is a nonzero quadratic residue mod odd prime p.
bool is_quadratic_residue(const Bigint& a, const Bigint& p);

/// A square root of `a` modulo odd prime `p`.
/// Throws MathError if `a` is not a quadratic residue.
Bigint sqrt_mod(const Bigint& a, const Bigint& p);

/// The smaller of the two square roots of `a` mod `p`, as an integer in
/// [0, p). For a = 0 returns 0.
Bigint min_sqrt_mod(const Bigint& a, const Bigint& p);

}  // namespace dfky
