#include "serial/codec.h"

#include "field/fp.h"

namespace dfky {

void put_bigint(Writer& w, const Bigint& v) {
  require(v.sign() >= 0, "put_bigint: negative value");
  w.put_blob(v.to_bytes());
}

Bigint get_bigint(Reader& r) {
  return Bigint::from_bytes(r.get_blob());
}

void put_gelt(Writer& w, const Group& group, const Gelt& e) {
  if (!group.is_elliptic()) {
    w.put_raw(e.value().to_bytes_padded(group.element_size()));
    return;
  }
  const std::size_t field_bytes = group.element_size() - 1;
  if (e.is_infinity()) {
    w.put_u8(0);
    w.put_raw(Bytes(field_bytes, 0));
    return;
  }
  // Compressed point: 0x02 / 0x03 by y parity, then x.
  w.put_u8(static_cast<std::uint8_t>(e.py().is_odd() ? 3 : 2));
  w.put_raw(e.px().to_bytes_padded(field_bytes));
}

Gelt get_gelt(Reader& r, const Group& group) {
  if (!group.is_elliptic()) {
    const Bytes raw = r.get_raw(group.element_size());
    Bigint v = Bigint::from_bytes(raw);
    try {
      return group.element_from(std::move(v));
    } catch (const ContractError&) {
      throw DecodeError("get_gelt: value not a group element");
    }
  }
  const CurveSpec& c = group.curve();
  const std::size_t field_bytes = group.element_size() - 1;
  const std::uint8_t tag = r.get_u8();
  const Bytes raw = r.get_raw(field_bytes);
  if (tag == 0) {
    for (byte b : raw) {
      if (b != 0) throw DecodeError("get_gelt: malformed infinity encoding");
    }
    return Gelt::infinity();
  }
  if (tag != 2 && tag != 3) throw DecodeError("get_gelt: bad point tag");
  const Bigint x = Bigint::from_bytes(raw);
  if (x >= c.p) throw DecodeError("get_gelt: x coordinate out of range");
  const Bigint rhs = (x * x * x + c.a * x + c.b).mod(c.p);
  Bigint y;
  try {
    y = sqrt_mod(rhs, c.p);
  } catch (const MathError&) {
    throw DecodeError("get_gelt: x not on curve");
  }
  if (y.is_odd() != (tag == 3)) y = (c.p - y).mod(c.p);
  const Gelt e = Gelt::point(x, y);
  if (!group.is_element(e)) throw DecodeError("get_gelt: point not on curve");
  return e;
}

Bytes gelt_canonical_bytes(const Group& group, const Gelt& e) {
  Writer w;
  put_gelt(w, group, e);
  return std::move(w).take();
}

void put_bigint_vec(Writer& w, std::span<const Bigint> v) {
  require(v.size() <= UINT32_MAX, "put_bigint_vec: too many entries");
  w.put_u32(static_cast<std::uint32_t>(v.size()));
  for (const Bigint& x : v) put_bigint(w, x);
}

std::vector<Bigint> get_bigint_vec(Reader& r) {
  const std::uint32_t n = r.get_u32();
  r.check_count(n, 4);  // every entry carries at least a length prefix
  std::vector<Bigint> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(get_bigint(r));
  return out;
}

}  // namespace dfky
