// Serialization helpers for math types.
#pragma once

#include "group/element.h"
#include "serial/buffer.h"

namespace dfky {

void put_bigint(Writer& w, const Bigint& v);
Bigint get_bigint(Reader& r);

/// Fixed-width element encoding relative to a group: the raw residue for
/// the Z_p^* backend, a compressed point (tag byte + x coordinate) for the
/// elliptic-curve backend — group.element_size() bytes either way.
void put_gelt(Writer& w, const Group& group, const Gelt& e);
/// Reads and validates membership; throws DecodeError for non-elements.
Gelt get_gelt(Reader& r, const Group& group);

/// The canonical fixed-width byte encoding of one element (used as KDF
/// input by the KEM paths).
Bytes gelt_canonical_bytes(const Group& group, const Gelt& e);

void put_bigint_vec(Writer& w, std::span<const Bigint> v);
std::vector<Bigint> get_bigint_vec(Reader& r);

}  // namespace dfky
