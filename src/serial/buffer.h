// Canonical byte serialization.
//
// All broadcast messages (ciphertexts, public keys, reset messages, signed
// envelopes) are serialized through these writers/readers, so transmission
// costs reported by the benchmarks are real on-the-wire byte counts.
// Encoding rules: fixed-width big-endian integers; variable-size blobs are
// u32-length-prefixed.
#pragma once

#include <cstdint>

#include "common.h"

namespace dfky {

class Writer {
 public:
  void put_u8(std::uint8_t v) { out_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// u32 length prefix + raw bytes.
  void put_blob(BytesView data);
  /// Raw bytes, no prefix (caller knows the size).
  void put_raw(BytesView data);

  const Bytes& bytes() const& { return out_; }
  Bytes take() && { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  Bytes get_blob();
  Bytes get_raw(std::size_t n);

  bool empty() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws DecodeError unless the entire input was consumed.
  void expect_end() const;

  /// Validates an untrusted element count against the bytes actually left:
  /// throws DecodeError unless count * min_bytes_each <= remaining().
  /// Deserializers MUST call this before reserving count elements, so a
  /// forged length field cannot drive an allocation bomb.
  void check_count(std::uint64_t count, std::size_t min_bytes_each) const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace dfky
