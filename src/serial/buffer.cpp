#include "serial/buffer.h"

namespace dfky {

void Writer::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v >> 8));
  put_u8(static_cast<std::uint8_t>(v));
}

void Writer::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v >> 16));
  put_u16(static_cast<std::uint16_t>(v));
}

void Writer::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void Writer::put_blob(BytesView data) {
  require(data.size() <= UINT32_MAX, "Writer::put_blob: blob too large");
  put_u32(static_cast<std::uint32_t>(data.size()));
  put_raw(data);
}

void Writer::put_raw(BytesView data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("Reader: truncated input");
}

std::uint8_t Reader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::get_u16() {
  const auto hi = get_u8();
  return static_cast<std::uint16_t>((hi << 8) | get_u8());
}

std::uint32_t Reader::get_u32() {
  const auto hi = get_u16();
  return (static_cast<std::uint32_t>(hi) << 16) | get_u16();
}

std::uint64_t Reader::get_u64() {
  const auto hi = get_u32();
  return (static_cast<std::uint64_t>(hi) << 32) | get_u32();
}

Bytes Reader::get_blob() {
  const std::uint32_t len = get_u32();
  return get_raw(len);
}

Bytes Reader::get_raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

void Reader::expect_end() const {
  if (!empty()) throw DecodeError("Reader: trailing bytes");
}

void Reader::check_count(std::uint64_t count, std::size_t min_bytes_each) const {
  const std::size_t each = std::max<std::size_t>(min_bytes_each, 1);
  if (count > remaining() / each) {
    throw DecodeError("Reader: element count exceeds available bytes");
  }
}

}  // namespace dfky
