#include "linalg/matrix.h"

namespace dfky {

Matrix::Matrix(Zq field, std::size_t rows, std::size_t cols)
    : field_(std::move(field)),
      rows_(rows),
      cols_(cols),
      data_(rows * cols, Bigint(0)) {}

Matrix::Matrix(Zq field, std::size_t rows, std::size_t cols,
               std::vector<Bigint> data)
    : field_(std::move(field)), rows_(rows), cols_(cols), data_(std::move(data)) {
  require(data_.size() == rows_ * cols_, "Matrix: data size mismatch");
  for (Bigint& v : data_) v = field_.reduce(v);
}

Matrix Matrix::identity(const Zq& field, std::size_t n) {
  Matrix m(field, n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = Bigint(1);
  return m;
}

Matrix Matrix::vandermonde(const Zq& field, std::span<const Bigint> xs,
                           std::size_t cols) {
  Matrix m(field, xs.size(), cols);
  for (std::size_t r = 0; r < xs.size(); ++r) {
    Bigint pw(1);
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = pw;
      pw = field.mul(pw, xs[r]);
    }
  }
  return m;
}

const Bigint& Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

Bigint& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix out(field_, cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& o) const {
  require(field_ == o.field_, "Matrix: field mismatch");
  require(cols_ == o.rows_, "Matrix: dimension mismatch");
  Matrix out(field_, rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Bigint& aik = at(i, k);
      if (aik.is_zero()) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) {
        out.at(i, j) = field_.add(out.at(i, j), field_.mul(aik, o.at(k, j)));
      }
    }
  }
  return out;
}

std::vector<Bigint> Matrix::left_mul(std::span<const Bigint> v) const {
  require(v.size() == rows_, "Matrix::left_mul: size mismatch");
  std::vector<Bigint> out(cols_, Bigint(0));
  for (std::size_t i = 0; i < rows_; ++i) {
    if (v[i].is_zero()) continue;
    for (std::size_t j = 0; j < cols_; ++j) {
      out[j] = field_.add(out[j], field_.mul(v[i], at(i, j)));
    }
  }
  return out;
}

std::vector<Bigint> Matrix::right_mul(std::span<const Bigint> v) const {
  require(v.size() == cols_, "Matrix::right_mul: size mismatch");
  std::vector<Bigint> out(rows_, Bigint(0));
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      if (v[j].is_zero()) continue;
      out[i] = field_.add(out[i], field_.mul(at(i, j), v[j]));
    }
  }
  return out;
}

}  // namespace dfky
