#include "linalg/gauss.h"

namespace dfky {

std::vector<std::size_t> row_echelon(Matrix& m) {
  const Zq& f = m.field();
  std::vector<std::size_t> pivots;
  std::size_t row = 0;
  for (std::size_t col = 0; col < m.cols() && row < m.rows(); ++col) {
    // Find a pivot.
    std::size_t pivot = row;
    while (pivot < m.rows() && m.at(pivot, col).is_zero()) ++pivot;
    if (pivot == m.rows()) continue;
    if (pivot != row) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        std::swap(m.at(pivot, c), m.at(row, c));
      }
    }
    // Normalize pivot row.
    const Bigint inv = f.inv(m.at(row, col));
    for (std::size_t c = col; c < m.cols(); ++c) {
      m.at(row, c) = f.mul(m.at(row, c), inv);
    }
    // Eliminate below and above (reduced row echelon form).
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r == row || m.at(r, col).is_zero()) continue;
      const Bigint factor = m.at(r, col);
      for (std::size_t c = col; c < m.cols(); ++c) {
        m.at(r, c) = f.sub(m.at(r, c), f.mul(factor, m.at(row, c)));
      }
    }
    pivots.push_back(col);
    ++row;
  }
  return pivots;
}

std::size_t rank(Matrix m) {
  return row_echelon(m).size();
}

std::optional<std::vector<Bigint>> solve(const Matrix& m,
                                         std::span<const Bigint> b) {
  require(b.size() == m.rows(), "solve: rhs size mismatch");
  const Zq& f = m.field();
  // Augmented matrix [M | b].
  Matrix aug(f, m.rows(), m.cols() + 1);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) aug.at(r, c) = m.at(r, c);
    aug.at(r, m.cols()) = f.reduce(b[r]);
  }
  const auto pivots = row_echelon(aug);
  // Inconsistent iff a pivot lands in the augmented column.
  if (!pivots.empty() && pivots.back() == m.cols()) return std::nullopt;
  std::vector<Bigint> x(m.cols(), Bigint(0));
  for (std::size_t r = 0; r < pivots.size(); ++r) {
    x[pivots[r]] = aug.at(r, m.cols());
  }
  return x;
}

std::optional<std::vector<Bigint>> solve_left(const Matrix& m,
                                              std::span<const Bigint> b) {
  return solve(m.transposed(), b);
}

std::optional<std::vector<Bigint>> kernel_vector(const Matrix& m) {
  const Zq& f = m.field();
  Matrix red = m;
  const auto pivots = row_echelon(red);
  if (pivots.size() == m.cols()) return std::nullopt;  // trivial kernel
  // Find the first free column.
  std::size_t free_col = 0;
  {
    std::size_t pi = 0;
    while (free_col < m.cols() && pi < pivots.size() &&
           pivots[pi] == free_col) {
      ++pi;
      ++free_col;
    }
  }
  // Back-substitute with the free variable set to 1.
  std::vector<Bigint> x(m.cols(), Bigint(0));
  x[free_col] = Bigint(1);
  for (std::size_t r = 0; r < pivots.size(); ++r) {
    if (pivots[r] < free_col) {
      // Reduced echelon form: pivot rows read off directly.
      x[pivots[r]] = f.neg(red.at(r, free_col));
    }
  }
  return x;
}

}  // namespace dfky
