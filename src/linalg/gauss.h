// Gaussian elimination over Z_q: rank, solving, kernel vectors.
#pragma once

#include <optional>

#include "linalg/matrix.h"

namespace dfky {

/// Reduces `m` to row echelon form in place; returns the rank and the pivot
/// column of each nonzero row.
std::vector<std::size_t> row_echelon(Matrix& m);

std::size_t rank(Matrix m);

/// Solves M x = b (column vector). Returns one solution if the system is
/// consistent (free variables set to zero), std::nullopt otherwise.
std::optional<std::vector<Bigint>> solve(const Matrix& m,
                                         std::span<const Bigint> b);

/// Solves x M = b for a row vector x (i.e. M^T x^T = b^T).
std::optional<std::vector<Bigint>> solve_left(const Matrix& m,
                                              std::span<const Bigint> b);

/// A nonzero kernel vector of M (M x = 0), if the kernel is nontrivial.
std::optional<std::vector<Bigint>> kernel_vector(const Matrix& m);

}  // namespace dfky
