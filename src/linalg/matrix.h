// Dense matrices over Z_q.
//
// Used by the non-black-box tracer (solving theta * H = delta'', building the
// A/B/H matrices of Sect. 6.3.2) and by tests that verify the rank arguments
// behind the paper's Lemma 1 applications.
#pragma once

#include <vector>

#include "field/zq.h"

namespace dfky {

class Matrix {
 public:
  Matrix(Zq field, std::size_t rows, std::size_t cols);
  /// Row-major construction; `data.size()` must equal rows * cols.
  Matrix(Zq field, std::size_t rows, std::size_t cols,
         std::vector<Bigint> data);

  static Matrix identity(const Zq& field, std::size_t n);
  /// Vandermonde matrix with rows (1, x_i, x_i^2, ..., x_i^{cols-1}).
  static Matrix vandermonde(const Zq& field, std::span<const Bigint> xs,
                            std::size_t cols);

  const Zq& field() const { return field_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  const Bigint& at(std::size_t r, std::size_t c) const;
  Bigint& at(std::size_t r, std::size_t c);

  Matrix transposed() const;
  Matrix operator*(const Matrix& o) const;
  /// Row vector times matrix: returns v * M (v.size() == rows()).
  std::vector<Bigint> left_mul(std::span<const Bigint> v) const;
  /// Matrix times column vector (v.size() == cols()).
  std::vector<Bigint> right_mul(std::span<const Bigint> v) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.field_ == b.field_ &&
           a.data_ == b.data_;
  }

 private:
  Zq field_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Bigint> data_;  // row-major
};

}  // namespace dfky
