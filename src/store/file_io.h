// File-system abstraction under the durable state store (DESIGN.md Sect. 9).
//
// The store's crash-consistency argument only mentions these primitives, so
// one interface serves three implementations:
//
//   * RealFileIo  — POSIX files; what dfky_cli and dfky_fsck run on.
//   * MemFileIo   — an in-memory file system that MODELS DURABILITY: every
//     write lands in a volatile view, fsync_file promotes a file's content
//     to the durable view, fsync_dir promotes a directory's entry table
//     (creates, renames, removals). crash() throws away everything that was
//     never promoted — exactly what a power cut does to a kernel page
//     cache — so tests can assert what actually survives.
//   * FaultyFileIo — wraps a MemFileIo and injects crash points, torn
//     writes, bit flips and short reads deterministically from a seed
//     (the file-system sibling of FaultyBus).
//
// Paths use '/' separators; directory durability is tracked per dirname.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common.h"
#include "rng/chacha_rng.h"

namespace dfky {

/// An injected power cut: the fault plan decided the process dies at this
/// I/O boundary. Distinct from Error so crash-matrix harnesses can tell a
/// simulated crash apart from a real store bug.
class CrashPoint : public Error {
 public:
  explicit CrashPoint(const std::string& what) : Error(what) {}
};

/// A real I/O primitive failed (ENOSPC, EIO, permissions...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

class FileIo {
 public:
  virtual ~FileIo() = default;

  virtual bool exists(const std::string& path) const = 0;
  virtual bool is_dir(const std::string& path) const = 0;
  /// Basenames of regular files in `dir`, sorted. Throws IoError if `dir`
  /// does not exist.
  virtual std::vector<std::string> list(const std::string& dir) const = 0;
  /// Whole-file read. Throws IoError if missing.
  virtual Bytes read(const std::string& path) const = 0;

  /// Create-or-truncate write of the whole file (no durability implied).
  virtual void write(const std::string& path, BytesView data) = 0;
  /// Append to the end of the file, creating it if absent.
  virtual void append(const std::string& path, BytesView data) = 0;
  /// Shrink the file to `size` bytes. Throws IoError if missing or growing.
  virtual void truncate(const std::string& path, std::size_t size) = 0;
  virtual void rename(const std::string& from, const std::string& to) = 0;
  virtual void remove(const std::string& path) = 0;
  virtual void mkdir(const std::string& path) = 0;

  /// Durability barriers: fsync_file makes a file's *content* durable,
  /// fsync_dir makes a directory's *entries* durable. Both are required
  /// for a freshly created file to survive a crash.
  virtual void fsync_file(const std::string& path) = 0;
  virtual void fsync_dir(const std::string& dir) = 0;

  /// Advisory exclusive lock on `path`, created if absent. On success the
  /// holder's pid is recorded in the file and the lock is held until
  /// unlock() or process death. Returns false when someone else holds it,
  /// reporting that holder's recorded pid via `holder` (0 if unreadable).
  /// The lock file itself is never unlinked — removing it would let a
  /// third process acquire a lock on a fresh inode while the old one is
  /// still held.
  virtual bool lock(const std::string& path, std::uint64_t* holder) = 0;
  /// Releases a lock() taken through this instance; no-op otherwise.
  virtual void unlock(const std::string& path) = 0;
};

/// "" for paths with no '/', otherwise everything before the last '/'.
std::string dirname_of(const std::string& path);

// ---- POSIX --------------------------------------------------------------------

class RealFileIo final : public FileIo {
 public:
  bool exists(const std::string& path) const override;
  bool is_dir(const std::string& path) const override;
  std::vector<std::string> list(const std::string& dir) const override;
  Bytes read(const std::string& path) const override;
  void write(const std::string& path, BytesView data) override;
  void append(const std::string& path, BytesView data) override;
  void truncate(const std::string& path, std::size_t size) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void mkdir(const std::string& path) override;
  void fsync_file(const std::string& path) override;
  void fsync_dir(const std::string& dir) override;
  bool lock(const std::string& path, std::uint64_t* holder) override;
  void unlock(const std::string& path) override;

  ~RealFileIo() override;

 private:
  std::map<std::string, int> lock_fds_;  // held flocks, path -> open fd
};

// ---- in-memory durability model -----------------------------------------------

class MemFileIo final : public FileIo {
 public:
  MemFileIo() = default;
  /// Deep copy of both namespaces (tests fork a filesystem to model an
  /// independent replica or a post-crash reopen). Thread-safe on `other`;
  /// the new instance starts unshared.
  MemFileIo(const MemFileIo& other);
  MemFileIo& operator=(const MemFileIo& other);

  bool exists(const std::string& path) const override;
  bool is_dir(const std::string& path) const override;
  std::vector<std::string> list(const std::string& dir) const override;
  Bytes read(const std::string& path) const override;
  void write(const std::string& path, BytesView data) override;
  void append(const std::string& path, BytesView data) override;
  void truncate(const std::string& path, std::size_t size) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void mkdir(const std::string& path) override;
  void fsync_file(const std::string& path) override;
  void fsync_dir(const std::string& dir) override;
  bool lock(const std::string& path, std::uint64_t* holder) override;
  void unlock(const std::string& path) override;

  /// Simulated power cut: the live view is replaced by the durable view.
  /// Files whose directory entry was never fsync_dir'ed vanish; files whose
  /// content was never fsync_file'd revert to their last synced content.
  /// Held locks are dropped — a dead process holds nothing.
  void crash();

  /// Splices bytes into a file's DURABLE content directly — the "torn
  /// append" a crash mid-write leaves on a physical platter. Only the
  /// fault injector should call this.
  void inject_durable_append(const std::string& path, BytesView data);

 private:
  struct Inode {
    Bytes live;
    Bytes durable;
  };

  Inode& live_inode(const std::string& path);

  /// One MemFileIo is shared by every shard of a set, so committer,
  /// replication-sender and client threads reach the same maps through
  /// different files; RealFileIo gets this isolation from the kernel.
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> locks_;  // path -> holder pid
  std::map<std::string, Inode> files_;       // live namespace
  std::set<std::string> live_dirs_{{""}};    // "" is the cwd root
  std::map<std::string, Inode> durable_ns_;  // entries that survive a crash
  std::set<std::string> durable_dirs_{{""}};
};

// ---- fault injector ------------------------------------------------------------

/// Knobs of the storage fault model. Mirrors FaultPlan (broadcast): every
/// decision is drawn from a ChaCha20 PRG seeded by the plan, so two runs
/// with the same seed and op sequence inject identical faults.
struct FilePlan {
  std::uint64_t seed = 1;
  /// Crash on the Nth mutating op (0-based, counting write/append/truncate/
  /// rename/remove/mkdir/fsync_file/fsync_dir). The op is torn mid-flight —
  /// for appends a seeded prefix of the data reaches the durable medium
  /// (the classic torn WAL tail); every other op simply never happens —
  /// and CrashPoint is thrown. nullopt = never crash.
  std::optional<std::uint64_t> crash_at;
  double bitflip_read_prob = 0.0;  // one bit of a read() flipped
  double short_read_prob = 0.0;    // read() loses a seeded-length tail
  /// Every fsync_file sleeps this long before completing — a stalled disk,
  /// not a fault. Used by the tracing tests to force a request over the
  /// slow-request threshold deterministically.
  std::uint64_t fsync_delay_ns = 0;
};

struct FileFaultCounters {
  std::uint64_t mutating_ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t crashes = 0;
  std::uint64_t torn_bytes = 0;  // bytes of the crashed append that survived
  std::uint64_t bitflips = 0;
  std::uint64_t short_reads = 0;

  bool operator==(const FileFaultCounters&) const = default;
};

class FaultyFileIo final : public FileIo {
 public:
  /// Wraps a MemFileIo (crash modeling needs the durable/volatile split).
  FaultyFileIo(MemFileIo& fs, FilePlan plan);

  bool exists(const std::string& path) const override;
  bool is_dir(const std::string& path) const override;
  std::vector<std::string> list(const std::string& dir) const override;
  Bytes read(const std::string& path) const override;
  void write(const std::string& path, BytesView data) override;
  void append(const std::string& path, BytesView data) override;
  void truncate(const std::string& path, std::size_t size) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void mkdir(const std::string& path) override;
  void fsync_file(const std::string& path) override;
  void fsync_dir(const std::string& dir) override;
  bool lock(const std::string& path, std::uint64_t* holder) override;
  void unlock(const std::string& path) override;

  FilePlan plan() const;
  FileFaultCounters fault_counters() const;

  /// Replaces the fault plan mid-run; the op counter keeps running, so a
  /// caller arms a relative crash with
  /// `crash_at = fault_counters().mutating_ops + d`. The cluster simulator
  /// uses this to detonate inside a specific window (e.g. the epoch
  /// barrier's phase-2 appends) after a fault-free warm-up.
  void set_plan(FilePlan plan);

 private:
  /// Counts the op; throws CrashPoint when the plan says so. `torn_target`
  /// non-null marks ops whose in-flight data can partially reach the
  /// platter (appends/writes).
  void mutating_op(const char* op, const std::string& path,
                   BytesView torn_data, const std::string* torn_target);

  MemFileIo& fs_;
  /// Committer, sender and client threads all funnel through one injector
  /// in the simulator; the plan/PRG/counters must move in lockstep.
  mutable std::mutex mu_;
  FilePlan plan_;
  mutable ChaChaRng rng_;
  mutable FileFaultCounters counters_;
};

}  // namespace dfky
