#include "store/store.h"

#include <algorithm>
#include <chrono>
#include <new>

#include "crypto/crc32c.h"
#include "crypto/hmac.h"
#include "obs/metrics.h"
#include "serial/codec.h"

namespace dfky {

namespace {

constexpr std::uint32_t kKeyMagic = 0x6466736b;   // "dfsk"
constexpr std::uint32_t kSnapMagic = 0x64667374;  // "dfst"
constexpr std::uint32_t kWalMagic = 0x6466776c;   // "dfwl"
constexpr std::uint32_t kTermMagic = 0x6466746d;  // "dftm"
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kTagSize = Sha256::kDigestSize;
// Per record: u32 payload length, u32 CRC32C, chained HMAC tag.
constexpr std::size_t kFrameHeader = 4 + 4 + kTagSize;
// WAL file prefix: magic, version, generation, chain seed tag.
constexpr std::size_t kWalHeader = 4 + 1 + 8 + kTagSize;
constexpr std::size_t kMaxRecordBytes = std::size_t{1} << 28;

std::string snap_name(std::uint64_t gen) {
  return StateStore::kSnapPrefix + std::to_string(gen);
}
std::string wal_name(std::uint64_t gen) {
  return StateStore::kWalPrefix + std::to_string(gen);
}

std::string join(const std::string& dir, const std::string& name) {
  return dir.empty() ? name : dir + "/" + name;
}

/// Takes the directory's LOCK file or throws StoreLockedError. On success
/// the returned guard releases the lock on destruction until ownership is
/// transferred to the StateStore (`disarm()`).
struct LockGuard {
  FileIo* io = nullptr;
  std::string path;

  static LockGuard acquire(FileIo& io, const std::string& dir) {
    const std::string path = join(dir, StateStore::kLockFile);
    std::uint64_t holder = 0;
    if (!io.lock(path, &holder)) {
      throw StoreLockedError("state store: " + dir + " is locked by pid " +
                             std::to_string(holder));
    }
    return LockGuard{&io, path};
  }
  void disarm() { io = nullptr; }
  ~LockGuard() {
    if (io == nullptr) return;
    try {
      io->unlock(path);
    } catch (...) {
      // Releasing on an error path must not mask the original exception.
    }
  }
};

/// snap.<digits> / wal.<digits> -> the generation; nullopt otherwise.
std::optional<std::uint64_t> parse_gen(const std::string& name,
                                       const char* prefix) {
  const std::string p = prefix;
  if (name.size() <= p.size() || name.compare(0, p.size(), p) != 0) {
    return std::nullopt;
  }
  std::uint64_t gen = 0;
  for (std::size_t i = p.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    if (gen > (UINT64_MAX - 9) / 10) return std::nullopt;
    gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return gen;
}

Sha256::Digest chain_next(BytesView key, const Sha256::Digest& prev,
                          BytesView payload) {
  HmacSha256 h(key);
  h.update(prev);
  h.update(payload);
  return h.finish();
}

Sha256::Digest snapshot_tag(BytesView key, std::uint64_t gen,
                            BytesView payload) {
  static constexpr char kLabel[] = "dfky-snap-v1";
  Writer g8;
  g8.put_u64(gen);
  HmacSha256 h(key);
  h.update(BytesView(reinterpret_cast<const byte*>(kLabel), sizeof kLabel));
  h.update(g8.bytes());
  h.update(payload);
  return h.finish();
}

Bytes encode_key_file(BytesView key32) {
  Writer w;
  w.put_u32(kKeyMagic);
  w.put_u8(kVersion);
  w.put_raw(key32);
  w.put_u32(crc32c(key32));
  return std::move(w).take();
}

Bytes decode_key_file(BytesView raw) {
  Reader r(raw);
  if (r.get_u32() != kKeyMagic) throw DecodeError("store.key: bad magic");
  if (r.get_u8() != kVersion) throw DecodeError("store.key: bad version");
  Bytes key = r.get_raw(32);
  if (r.get_u32() != crc32c(key)) throw DecodeError("store.key: bad checksum");
  r.expect_end();
  return key;
}

Bytes encode_term_file(std::uint64_t term) {
  Writer w;
  w.put_u32(kTermMagic);
  w.put_u8(kVersion);
  w.put_u64(term);
  w.put_u32(crc32c(w.bytes()));
  return std::move(w).take();
}

/// 0 when the file is absent or fails validation — a corrupt TERM only
/// regresses the node's view; peers carrying the real term re-fence it on
/// the first exchange, so treating damage as "never failed over" is safe.
std::uint64_t read_term_file(FileIo& io, const std::string& dir) {
  const std::string p = join(dir, StateStore::kTermFile);
  if (!io.exists(p)) return 0;
  try {
    const Bytes raw = io.read(p);
    Reader r(raw);
    if (r.get_u32() != kTermMagic) return 0;
    if (r.get_u8() != kVersion) return 0;
    const std::uint64_t term = r.get_u64();
    if (r.get_u32() != crc32c(BytesView(raw.data(), 4 + 1 + 8))) return 0;
    r.expect_end();
    return term;
  } catch (const Error&) {
    return 0;
  }
}

Bytes encode_snapshot(BytesView key, std::uint64_t gen, BytesView payload,
                      Sha256::Digest& tag_out) {
  tag_out = snapshot_tag(key, gen, payload);
  Writer w;
  w.put_u32(kSnapMagic);
  w.put_u8(kVersion);
  w.put_u64(gen);
  w.put_blob(payload);
  w.put_u32(crc32c(payload));
  w.put_raw(tag_out);
  return std::move(w).take();
}

struct SnapInfo {
  Bytes payload;
  Sha256::Digest tag{};
};

/// Structural + integrity validation of one snapshot file; nullopt on any
/// mismatch (truncated frame, CRC, HMAC, wrong generation).
std::optional<SnapInfo> parse_snapshot(BytesView raw, BytesView key,
                                       std::uint64_t expected_gen) {
  try {
    Reader r(raw);
    if (r.get_u32() != kSnapMagic) return std::nullopt;
    if (r.get_u8() != kVersion) return std::nullopt;
    if (r.get_u64() != expected_gen) return std::nullopt;
    SnapInfo info;
    info.payload = r.get_blob();
    if (r.get_u32() != crc32c(info.payload)) return std::nullopt;
    const Bytes tag = r.get_raw(kTagSize);
    r.expect_end();
    const Sha256::Digest want = snapshot_tag(key, expected_gen, info.payload);
    if (!std::equal(tag.begin(), tag.end(), want.begin())) return std::nullopt;
    std::copy(want.begin(), want.end(), info.tag.begin());
    return info;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

Bytes encode_wal_header(std::uint64_t gen, const Sha256::Digest& seed) {
  Writer w;
  w.put_u32(kWalMagic);
  w.put_u8(kVersion);
  w.put_u64(gen);
  w.put_raw(seed);
  return std::move(w).take();
}

Bytes encode_record(BytesView key, const Sha256::Digest& prev,
                    BytesView payload, Sha256::Digest& tag_out) {
  tag_out = chain_next(key, prev, payload);
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_u32(crc32c(payload));
  w.put_raw(tag_out);
  w.put_raw(payload);
  return std::move(w).take();
}

std::uint32_t read_be32(BytesView raw, std::size_t off) {
  return (static_cast<std::uint32_t>(raw[off]) << 24) |
         (static_cast<std::uint32_t>(raw[off + 1]) << 16) |
         (static_cast<std::uint32_t>(raw[off + 2]) << 8) |
         static_cast<std::uint32_t>(raw[off + 3]);
}

/// Counts the frames a torn tail *looks like* it holds (for reporting; the
/// bytes are untrusted, so this is an estimate by length-prefix walking).
std::size_t estimate_frames(BytesView raw, std::size_t off) {
  std::size_t count = 0;
  while (off < raw.size()) {
    ++count;
    if (raw.size() - off < kFrameHeader) break;
    const std::size_t len = read_be32(raw, off);
    if (len > kMaxRecordBytes || raw.size() - off - kFrameHeader < len) break;
    off += kFrameHeader + len;
  }
  return count;
}

struct WalRecord {
  Bytes payload;
  std::size_t end = 0;  // offset one past this record's frame
  Sha256::Digest tag{};
};

struct WalScan {
  bool header_ok = false;
  std::vector<WalRecord> records;  // CRC- and chain-valid prefix
  std::size_t valid_end = 0;       // bytes of validated prefix (incl. header)
  std::size_t tail_bytes = 0;      // bytes past the validated prefix
  std::size_t tail_records = 0;    // estimated frames among those bytes
};

/// Integrity scan of a WAL file: header fields, then the longest prefix of
/// records whose length, CRC32C and HMAC chain all verify.
WalScan scan_wal(BytesView raw, BytesView key, std::uint64_t gen,
                 const Sha256::Digest& seed) {
  WalScan s;
  if (raw.size() < kWalHeader) {
    s.tail_bytes = raw.size();
    s.tail_records = raw.empty() ? 0 : 1;
    return s;
  }
  Reader r(raw);
  Bytes seed_in;
  if (r.get_u32() != kWalMagic || r.get_u8() != kVersion ||
      r.get_u64() != gen ||
      (seed_in = r.get_raw(kTagSize),
       !std::equal(seed_in.begin(), seed_in.end(), seed.begin()))) {
    s.tail_bytes = raw.size();
    s.tail_records = 1;
    return s;
  }
  s.header_ok = true;
  s.valid_end = kWalHeader;
  Sha256::Digest chain = seed;
  while (true) {
    if (r.remaining() < kFrameHeader) break;
    const std::size_t len = r.get_u32();
    const std::uint32_t crc = r.get_u32();
    const Bytes tag = r.get_raw(kTagSize);
    if (len > kMaxRecordBytes || len > r.remaining()) break;
    const Bytes payload = r.get_raw(len);
    if (crc32c(payload) != crc) break;
    const Sha256::Digest want = chain_next(key, chain, payload);
    if (!std::equal(tag.begin(), tag.end(), want.begin())) break;
    chain = want;
    const std::size_t end = raw.size() - r.remaining();
    s.records.push_back(WalRecord{payload, end, want});
    s.valid_end = end;
  }
  s.tail_bytes = raw.size() - s.valid_end;
  s.tail_records = estimate_frames(raw, s.valid_end);
  return s;
}

}  // namespace

// ---- StateStore ----------------------------------------------------------------

StateStore::StateStore(FileIo& io, std::string dir, StoreOptions opts,
                       SecurityManager mgr, Bytes key)
    : io_(&io),
      dir_(std::move(dir)),
      opts_(opts),
      mgr_(std::move(mgr)),
      key_(std::move(key)) {}

StateStore::StateStore(StateStore&& other) noexcept
    : io_(other.io_),
      dir_(std::move(other.dir_)),
      opts_(other.opts_),
      mgr_(std::move(other.mgr_)),
      key_(std::move(other.key_)),
      gen_(other.gen_),
      term_(other.term_),
      wal_records_(other.wal_records_),
      chain_tag_(other.chain_tag_),
      recovery_(other.recovery_),
      locked_(other.locked_),
      batching_(other.batching_),
      poisoned_(other.poisoned_),
      pending_(std::move(other.pending_)),
      unsynced_records_(other.unsynced_records_) {
  other.io_ = nullptr;
  other.locked_ = false;
}

StateStore& StateStore::operator=(StateStore&& other) noexcept {
  if (this == &other) return *this;
  this->~StateStore();
  new (this) StateStore(std::move(other));
  return *this;
}

StateStore::~StateStore() {
  if (locked_ && io_ != nullptr) {
    try {
      io_->unlock(path(kLockFile));
    } catch (...) {
      // Destructors must not throw; a failed unlock only delays reuse
      // until the process exits.
    }
  }
}

std::string StateStore::path(const std::string& name) const {
  return join(dir_, name);
}

StateStore StateStore::create(FileIo& io, std::string dir,
                              SecurityManager manager, Rng& rng,
                              StoreOptions opts) {
  if (!io.is_dir(dir)) io.mkdir(dir);
  // Exclusion before the already-a-store check: a locked directory answers
  // "locked by pid N", not "already holds a store".
  LockGuard lock = LockGuard::acquire(io, dir);
  if (io.exists(join(dir, kKeyFile))) {
    throw ContractError("state store: " + dir + " already holds a store");
  }
  Bytes key = rng.bytes(32);
  StateStore s(io, std::move(dir), opts, std::move(manager), std::move(key));
  s.locked_ = true;
  lock.disarm();

  io.write(s.path(kKeyFile), encode_key_file(s.key_));
  io.fsync_file(s.path(kKeyFile));

  const Bytes payload = s.mgr_.save_state();
  Sha256::Digest tag{};
  const Bytes frame = encode_snapshot(s.key_, 0, payload, tag);
  const std::string tmp = s.path(snap_name(0) + kTmpSuffix);
  io.write(tmp, frame);
  io.fsync_file(tmp);
  io.rename(tmp, s.path(snap_name(0)));
  io.write(s.path(wal_name(0)), encode_wal_header(0, tag));
  io.fsync_file(s.path(wal_name(0)));
  // Commit point: generation 0's entries and the store directory itself.
  io.fsync_dir(s.dir_);
  io.fsync_dir(dirname_of(s.dir_));

  s.gen_ = 0;
  s.wal_records_ = 0;
  s.chain_tag_ = tag;
  s.recovery_.generation = 0;
  s.mgr_.set_mutation_recording(true);
  s.mgr_.take_mutation_log();  // discard records from before the store existed
  return s;
}

StateStore StateStore::open(FileIo& io, std::string dir, StoreOptions opts) {
  DFKY_OBS_TIMER(span, "dfky_store_recovery_ns");
  if (!io.is_dir(dir)) {
    throw DecodeError("state store: no such directory: " + dir);
  }
  // Exclusion first: recovery WRITES (tail truncation, stale cleanup), so
  // even open() must never run concurrently with another holder.
  LockGuard lock = LockGuard::acquire(io, dir);
  Bytes key;
  try {
    key = decode_key_file(io.read(join(dir, kKeyFile)));
  } catch (const IoError&) {
    throw DecodeError("state store: " + dir + " has no store.key");
  }

  // Newest generation whose snapshot passes CRC + HMAC + restore.
  std::vector<std::uint64_t> gens;
  for (const std::string& name : io.list(dir)) {
    if (const auto g = parse_gen(name, kSnapPrefix)) gens.push_back(*g);
  }
  std::sort(gens.rbegin(), gens.rend());
  RecoveryReport rep;
  std::optional<SecurityManager> mgr;
  std::uint64_t gen = 0;
  Sha256::Digest seed{};
  for (const std::uint64_t g : gens) {
    Bytes raw;
    try {
      raw = io.read(join(dir, snap_name(g)));
    } catch (const IoError&) {
      ++rep.skipped_snapshots;
      continue;
    }
    const auto info = parse_snapshot(raw, key, g);
    if (!info) {
      ++rep.skipped_snapshots;
      continue;
    }
    try {
      mgr.emplace(SecurityManager::restore_state(info->payload));
    } catch (const Error&) {
      ++rep.skipped_snapshots;
      continue;
    }
    gen = g;
    seed = info->tag;
    break;
  }
  if (!mgr) {
    throw DecodeError("state store: no valid snapshot in " + dir);
  }
  rep.generation = gen;

  // Replay the WAL suffix; truncate whatever fails integrity or replay.
  const std::string wal = join(dir, wal_name(gen));
  Sha256::Digest chain = seed;
  std::size_t applied = 0;
  bool rewrote_wal = false;
  if (io.exists(wal)) {
    const Bytes raw = io.read(wal);
    const WalScan scan = scan_wal(raw, key, gen, seed);
    if (!scan.header_ok) {
      rep.truncated_bytes += scan.tail_bytes;
      rep.truncated_records += scan.tail_records;
      io.write(wal, encode_wal_header(gen, seed));
      io.fsync_file(wal);
      rewrote_wal = true;
    } else {
      std::size_t keep_end = kWalHeader;
      const Group& group = mgr->params().group;
      std::size_t i = 0;
      for (; i < scan.records.size(); ++i) {
        const WalRecord& rec = scan.records[i];
        try {
          Reader pr(rec.payload);
          const ManagerMutation m = ManagerMutation::deserialize(pr, group);
          pr.expect_end();
          mgr->apply_mutation(m);
        } catch (const Error&) {
          break;  // semantically torn: drop this record and everything after
        }
        ++applied;
        chain = rec.tag;
        keep_end = rec.end;
      }
      rep.truncated_records += (scan.records.size() - i) + scan.tail_records;
      rep.truncated_bytes += raw.size() - keep_end;
      if (keep_end < raw.size()) {
        io.truncate(wal, keep_end);
        io.fsync_file(wal);
        rewrote_wal = true;
      }
    }
  } else {
    // Snapshot durable but its WAL never made it: start an empty one.
    io.write(wal, encode_wal_header(gen, seed));
    io.fsync_file(wal);
    rewrote_wal = true;
  }
  rep.replayed_records = applied;

  // Remove anything that is not the live generation (the LOCK file we are
  // holding is infrastructure, not state — unlinking it would hand a
  // third process a lock on a fresh inode).
  bool dirty_dir = rewrote_wal;
  for (const std::string& name : io.list(dir)) {
    if (name == kKeyFile || name == kLockFile || name == kTermFile ||
        name == snap_name(gen) || name == wal_name(gen)) {
      continue;
    }
    io.remove(join(dir, name));
    ++rep.stale_files_removed;
    dirty_dir = true;
  }
  if (dirty_dir) io.fsync_dir(dir);

  DFKY_OBS(
      obs::counter("dfky_store_recoveries_total").inc();
      obs::counter("dfky_store_recovery_replayed_records_total")
          .inc(rep.replayed_records);
      obs::counter("dfky_store_recovery_truncated_records_total")
          .inc(rep.truncated_records);
      obs::counter("dfky_store_recovery_truncated_bytes_total")
          .inc(rep.truncated_bytes);
      obs::event({.name = "store_recovery",
                  .period = static_cast<std::int64_t>(mgr->period()),
                  .detail = rep.truncated_records > 0 ? "truncated" : "clean",
                  .value = static_cast<std::int64_t>(rep.replayed_records)}););

  StateStore s(io, std::move(dir), opts, std::move(*mgr), std::move(key));
  s.gen_ = gen;
  s.term_ = read_term_file(io, s.dir_);
  s.wal_records_ = applied;
  s.chain_tag_ = chain;
  s.recovery_ = rep;
  s.mgr_.set_mutation_recording(true);
  s.locked_ = true;
  lock.disarm();
  return s;
}

void StateStore::set_term(std::uint64_t t) {
  if (t <= term_) return;
  const std::string tmp = path(std::string(kTermFile) + kTmpSuffix);
  io_->write(tmp, encode_term_file(t));
  io_->fsync_file(tmp);
  io_->rename(tmp, path(kTermFile));
  io_->fsync_dir(dir_);
  term_ = t;
}

void StateStore::append_record(const ManagerMutation& m) {
  Writer pw;
  m.serialize(pw, mgr_.params().group);
  Sha256::Digest tag{};
  const Bytes frame = encode_record(key_, chain_tag_, pw.bytes(), tag);
  if (batching_) {
    pending_.insert(pending_.end(), frame.begin(), frame.end());
  } else {
    io_->append(path(wal_name(gen_)), frame);
  }
  chain_tag_ = tag;
}

void StateStore::ensure_usable() const {
  if (poisoned_) {
    throw StorePoisonedError(
        "state store: " + dir_ +
        " is poisoned by an earlier WAL write failure; reopen to recover");
  }
}

void StateStore::commit() {
  const std::vector<ManagerMutation> muts = mgr_.take_mutation_log();
  if (muts.empty()) return;
  if (batching_) {
    // Stage the frames; durability (and the rotation check) waits for the
    // batch's sync(). The chain tag already advanced, so staged records
    // and any follow-ups land as one contiguous valid WAL run.
    for (const ManagerMutation& m : muts) append_record(m);
    unsynced_records_ += muts.size();
    return;
  }
  try {
    DFKY_OBS_TIMER(span, "dfky_store_wal_append_ns");
    for (const ManagerMutation& m : muts) append_record(m);
    io_->fsync_file(path(wal_name(gen_)));
  } catch (...) {
    // The chain tag advanced past frames that may not (all) be on disk;
    // nothing this process appends afterwards could verify. Fail-stop.
    poisoned_ = true;
    DFKY_OBS(obs::counter("dfky_store_poisoned_total").inc(););
    throw;
  }
  wal_records_ += muts.size();
  DFKY_OBS(obs::counter("dfky_store_wal_appends_total").inc(muts.size()););
  if (wal_records_ >= opts_.snapshot_every) snapshot();
}

void StateStore::flush_pending() {
  if (unsynced_records_ == 0) return;
  try {
    DFKY_OBS_TIMER(span, "dfky_store_wal_append_ns");
    io_->append(path(wal_name(gen_)), pending_);
    DFKY_OBS(last_sync_append_done_ns_ = static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count()););
    io_->fsync_file(path(wal_name(gen_)));
  } catch (...) {
    // The append may have landed (fully or torn) even though the fsync
    // failed. Retrying would append byte-identical duplicate frames,
    // breaking the HMAC chain and truncating every later acked batch at
    // recovery — so the store fail-stops instead: keep pending_ staged,
    // refuse further work, and let a fresh open() recover the valid
    // prefix that actually reached the file.
    poisoned_ = true;
    DFKY_OBS(obs::counter("dfky_store_poisoned_total").inc(););
    throw;
  }
  wal_records_ += unsynced_records_;
  DFKY_OBS(
      obs::counter("dfky_store_wal_appends_total").inc(unsynced_records_);
      obs::counter("dfky_store_group_commits_total").inc();
      obs::counter("dfky_store_group_commit_records_total")
          .inc(unsynced_records_););
  pending_.clear();
  unsynced_records_ = 0;
}

void StateStore::sync() {
  ensure_usable();
  flush_pending();
  if (wal_records_ >= opts_.snapshot_every) snapshot();
}

void StateStore::set_batching(bool on) {
  // A poisoned store must NOT flush its staged frames (they may already be
  // on disk); the daemon's shutdown path reaches here after a fail-stop.
  if (!on && batching_ && !poisoned_) sync();
  batching_ = on;
}

SecurityManager::AddedUser StateStore::add_user(Rng& rng) {
  ensure_usable();
  auto added = mgr_.add_user(rng);
  commit();
  return added;
}

SecurityManager::AddedUser StateStore::add_user_with_value(const Bigint& x) {
  ensure_usable();
  auto added = mgr_.add_user_with_value(x);
  commit();
  return added;
}

std::vector<SignedResetBundle> StateStore::remove_users(
    std::span<const std::uint64_t> ids, Rng& rng) {
  ensure_usable();
  auto bundles = mgr_.remove_users(ids, rng);
  commit();
  return bundles;
}

SignedResetBundle StateStore::new_period(Rng& rng) {
  ensure_usable();
  auto bundle = mgr_.new_period(rng);
  commit();
  return bundle;
}

void StateStore::snapshot() {
  ensure_usable();
  // Batched frames were chained against the current generation's WAL;
  // land them there before rotating (the records are then superseded by
  // the snapshot, but the old WAL stays self-consistent if the rotation
  // is torn).
  flush_pending();
  DFKY_OBS_TIMER(span, "dfky_store_snapshot_ns");
  const std::uint64_t next = gen_ + 1;
  const Bytes payload = mgr_.save_state();
  Sha256::Digest tag{};
  const Bytes frame = encode_snapshot(key_, next, payload, tag);
  const std::string tmp = path(snap_name(next) + kTmpSuffix);
  io_->write(tmp, frame);
  io_->fsync_file(tmp);
  io_->rename(tmp, path(snap_name(next)));
  io_->write(path(wal_name(next)), encode_wal_header(next, tag));
  io_->fsync_file(path(wal_name(next)));
  // Commit point: the new generation's entries become durable together.
  io_->fsync_dir(dir_);
  const std::uint64_t old = gen_;
  gen_ = next;
  wal_records_ = 0;
  chain_tag_ = tag;
  DFKY_OBS(obs::counter("dfky_store_snapshots_total").inc(););
  // Best-effort cleanup; a crash from here on only leaves stale files that
  // the next open()/fsck removes.
  try {
    io_->remove(path(snap_name(old)));
    io_->remove(path(wal_name(old)));
    io_->fsync_dir(dir_);
  } catch (const IoError&) {
    // Leftovers are harmless; CrashPoint (not IoError) still propagates.
  }
}

// ---- replication ---------------------------------------------------------------

namespace {

std::string hex_of(BytesView raw) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(raw.size() * 2);
  for (const byte b : raw) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace

std::string StateStore::chain_head_hex() const {
  return hex_of(BytesView(chain_tag_.data(), chain_tag_.size()));
}

WalShipment StateStore::read_frames_from(std::uint64_t start_record,
                                         std::size_t max_bytes) const {
  ensure_usable();
  if (start_record > wal_records_) {
    throw ContractError("state store: read_frames_from(" +
                        std::to_string(start_record) + ") past the " +
                        std::to_string(wal_records_) + " durable record(s)");
  }
  WalShipment out;
  out.generation = gen_;
  out.start_record = start_record;
  // Staged batch frames live in pending_, never in the file, so the file
  // holds exactly the durable records — the only ones a replica may see.
  const Bytes raw = io_->read(path(wal_name(gen_)));
  if (raw.size() < kWalHeader) {
    throw DecodeError("state store: " + wal_name(gen_) + " lost its header");
  }
  std::size_t off = kWalHeader;
  for (std::uint64_t idx = 0; idx < wal_records_; ++idx) {
    if (raw.size() - off < kFrameHeader) {
      throw DecodeError("state store: " + wal_name(gen_) + " truncated");
    }
    const std::size_t len = read_be32(raw, off);
    if (len > kMaxRecordBytes || raw.size() - off - kFrameHeader < len) {
      throw DecodeError("state store: " + wal_name(gen_) + " malformed frame");
    }
    const std::size_t end = off + kFrameHeader + len;
    if (idx >= start_record) {
      if (max_bytes != 0 && !out.frames.empty() &&
          out.frames.size() + (end - off) > max_bytes) {
        break;
      }
      out.frames.insert(out.frames.end(), raw.begin() + off, raw.begin() + end);
      ++out.records;
    }
    off = end;
  }
  return out;
}

Bytes StateStore::read_snapshot_frame() const {
  ensure_usable();
  return io_->read(path(snap_name(gen_)));
}

std::uint64_t StateStore::replica_apply_frames(std::uint64_t gen,
                                               std::uint64_t start_record,
                                               BytesView frames) {
  ensure_usable();
  if (batching_) {
    throw ContractError("state store: replica apply requires batching off");
  }
  if (gen != gen_) {
    throw DecodeError("state store: replica shipment for generation " +
                      std::to_string(gen) + ", store is at " +
                      std::to_string(gen_));
  }
  if (start_record > wal_records_) {
    throw DecodeError("state store: replica shipment starts at record " +
                      std::to_string(start_record) + " past our " +
                      std::to_string(wal_records_));
  }
  // Validate the whole shipment before touching disk or state: skip the
  // overlap (records we already hold — dup re-delivery), then CRC-, chain-
  // and parse-check every new record. A torn final frame (truncated mid
  // record) is dropped; the primary re-ships it whole. A record that fails
  // verification, by contrast, means the streams diverged — throw.
  std::vector<ManagerMutation> muts;
  Sha256::Digest chain = chain_tag_;
  std::uint64_t idx = start_record;
  std::size_t new_begin = 0, new_end = 0;
  bool have_new = false;
  std::size_t off = 0;
  while (off < frames.size()) {
    if (frames.size() - off < kFrameHeader) break;  // torn header
    const std::size_t len = read_be32(frames, off);
    if (len > kMaxRecordBytes || frames.size() - off - kFrameHeader < len) {
      break;  // torn payload
    }
    const std::size_t end = off + kFrameHeader + len;
    if (idx < wal_records_) {  // dup: already durable here, skip structurally
      off = end;
      ++idx;
      continue;
    }
    const std::uint32_t crc = read_be32(frames, off + 4);
    const BytesView tag = frames.subspan(off + 8, kTagSize);
    const BytesView payload = frames.subspan(off + kFrameHeader, len);
    if (crc32c(payload) != crc) {
      throw DecodeError("state store: replica frame " + std::to_string(idx) +
                        " fails CRC");
    }
    const Sha256::Digest want = chain_next(key_, chain, payload);
    if (!std::equal(tag.begin(), tag.end(), want.begin())) {
      throw DecodeError("state store: replica frame " + std::to_string(idx) +
                        " breaks the HMAC chain — streams diverged");
    }
    try {
      Reader pr(payload);
      muts.push_back(ManagerMutation::deserialize(pr, mgr_.params().group));
      pr.expect_end();
    } catch (const Error& e) {
      throw DecodeError("state store: replica frame " + std::to_string(idx) +
                        " does not parse: " + e.what());
    }
    if (!have_new) {
      new_begin = off;
      have_new = true;
    }
    new_end = end;
    chain = want;
    ++idx;
    off = end;
  }
  if (!have_new) return wal_records_;  // pure dup (or torn-only) shipment
  try {
    DFKY_OBS_TIMER(span, "dfky_store_wal_append_ns");
    io_->append(path(wal_name(gen_)),
                Bytes(frames.begin() + static_cast<std::ptrdiff_t>(new_begin),
                      frames.begin() + static_cast<std::ptrdiff_t>(new_end)));
    io_->fsync_file(path(wal_name(gen_)));
  } catch (...) {
    // Same fail-stop contract as flush_pending: the frames may be partially
    // on disk, so this process can no longer extend the chain.
    poisoned_ = true;
    DFKY_OBS(obs::counter("dfky_store_poisoned_total").inc(););
    throw;
  }
  for (const ManagerMutation& m : muts) {
    try {
      mgr_.apply_mutation(m);
    } catch (...) {
      // Durable but unappliable: memory and disk disagree. Fail-stop; a
      // reopen replays the file and surfaces the same error deterministically.
      poisoned_ = true;
      throw;
    }
  }
  wal_records_ += muts.size();
  chain_tag_ = chain;
  DFKY_OBS(obs::counter("dfky_store_replica_frames_total").inc(muts.size()););
  return wal_records_;
}

void StateStore::replica_apply_snapshot(std::uint64_t new_gen,
                                        BytesView frame) {
  ensure_usable();
  if (batching_) {
    throw ContractError("state store: replica apply requires batching off");
  }
  if (new_gen <= gen_) return;  // dup re-delivery of a rotation we hold
  const auto info = parse_snapshot(frame, key_, new_gen);
  if (!info) {
    throw DecodeError("state store: shipped snapshot for generation " +
                      std::to_string(new_gen) + " fails validation");
  }
  SecurityManager restored = SecurityManager::restore_state(info->payload);
  // Durable install, mirroring snapshot(): temp + fsync + rename, fresh WAL
  // seeded from the snapshot tag, then directory fsync as the commit point.
  const std::string tmp = path(snap_name(new_gen) + kTmpSuffix);
  io_->write(tmp, Bytes(frame.begin(), frame.end()));
  io_->fsync_file(tmp);
  io_->rename(tmp, path(snap_name(new_gen)));
  io_->write(path(wal_name(new_gen)), encode_wal_header(new_gen, info->tag));
  io_->fsync_file(path(wal_name(new_gen)));
  io_->fsync_dir(dir_);
  const std::uint64_t old = gen_;
  gen_ = new_gen;
  wal_records_ = 0;
  chain_tag_ = info->tag;
  mgr_ = std::move(restored);
  mgr_.set_mutation_recording(true);
  DFKY_OBS(obs::counter("dfky_store_replica_snapshots_total").inc(););
  try {
    io_->remove(path(snap_name(old)));
    io_->remove(path(wal_name(old)));
    io_->fsync_dir(dir_);
  } catch (const IoError&) {
    // Leftovers are harmless; the next open()/fsck removes them.
  }
}

std::string StateStore::chain_tag_hex_at(std::uint64_t records) const {
  if (records > wal_records_) {
    throw DecodeError("state store: chain_tag_hex_at(" +
                      std::to_string(records) + ") past the " +
                      std::to_string(wal_records_) + " durable record(s)");
  }
  if (records == wal_records_) return chain_head_hex();
  const Bytes raw = io_->read(path(wal_name(gen_)));
  if (raw.size() < kWalHeader) {
    throw DecodeError("state store: " + wal_name(gen_) + " lost its header");
  }
  // The header carries the chain seed; scanning from it re-derives every
  // prefix tag (records = 0 is the seed itself).
  Sha256::Digest seed{};
  std::copy(raw.begin() + 4 + 1 + 8, raw.begin() + kWalHeader, seed.begin());
  if (records == 0) return hex_of(BytesView(seed.data(), seed.size()));
  const WalScan scan = scan_wal(raw, key_, gen_, seed);
  if (!scan.header_ok || scan.records.size() < records) {
    throw DecodeError("state store: " + wal_name(gen_) +
                      " no longer validates to record " +
                      std::to_string(records));
  }
  const Sha256::Digest& tag = scan.records[records - 1].tag;
  return hex_of(BytesView(tag.data(), tag.size()));
}

std::uint64_t StateStore::replica_truncate(std::uint64_t gen,
                                           std::uint64_t records,
                                           const std::string& expected_tag_hex) {
  if (batching_) {
    throw ContractError("state store: replica truncate requires batching off");
  }
  if (gen != gen_) {
    throw DecodeError("state store: replica truncate for generation " +
                      std::to_string(gen) + " but the store is at " +
                      std::to_string(gen_));
  }
  if (records > wal_records_) {
    throw DecodeError("state store: replica truncate to " +
                      std::to_string(records) + " record(s) past the " +
                      std::to_string(wal_records_) + " held");
  }
  if (chain_tag_hex_at(records) != expected_tag_hex) {
    throw DecodeError("state store: chain tag mismatch at record " +
                      std::to_string(records) +
                      " — divergence predates the requested prefix");
  }
  if (records == wal_records_) return wal_records_;  // nothing forked here

  // The retained prefix matches the primary's history byte for byte; drop
  // the forked suffix and rebuild memory from what is left on disk.
  const Bytes raw = io_->read(path(wal_name(gen_)));
  Sha256::Digest seed{};
  std::copy(raw.begin() + 4 + 1 + 8, raw.begin() + kWalHeader, seed.begin());
  const WalScan scan = scan_wal(raw, key_, gen_, seed);
  const std::size_t keep_end =
      records == 0 ? kWalHeader : scan.records[records - 1].end;
  [[maybe_unused]] const std::uint64_t dropped = wal_records_ - records;
  io_->truncate(path(wal_name(gen_)), keep_end);
  io_->fsync_file(path(wal_name(gen_)));
  try {
    const auto info =
        parse_snapshot(io_->read(path(snap_name(gen_))), key_, gen_);
    if (!info) {
      throw DecodeError("state store: " + snap_name(gen_) +
                        " fails validation during truncate rebuild");
    }
    SecurityManager restored = SecurityManager::restore_state(info->payload);
    const Group& group = restored.params().group;
    for (std::uint64_t i = 0; i < records; ++i) {
      Reader pr(scan.records[i].payload);
      const ManagerMutation m = ManagerMutation::deserialize(pr, group);
      pr.expect_end();
      restored.apply_mutation(m);
    }
    mgr_ = std::move(restored);
  } catch (...) {
    // File already truncated but memory could not be rebuilt: disk and
    // memory disagree, same contract as a failed flush.
    poisoned_ = true;
    throw;
  }
  wal_records_ = records;
  chain_tag_ = records == 0 ? seed : scan.records[records - 1].tag;
  mgr_.set_mutation_recording(true);
  mgr_.take_mutation_log();
  poisoned_ = false;  // disk and memory were just re-reconciled
  DFKY_OBS(obs::counter("dfky_store_replica_truncates_total").inc();
           obs::event({.name = "replica_truncate",
                       .period = static_cast<std::int64_t>(mgr_.period()),
                       .detail = dir_,
                       .value = static_cast<std::int64_t>(dropped)}););
  return wal_records_;
}

void clone_store_files(FileIo& src, FileIo& dst, const std::string& dir) {
  if (!src.is_dir(dir)) {
    throw DecodeError("clone: no such directory: " + dir);
  }
  if (!dst.is_dir(dir)) dst.mkdir(dir);
  for (const std::string& name : src.list(dir)) {
    if (name == StateStore::kLockFile) continue;  // per-process, never cloned
    const std::string p = join(dir, name);
    dst.write(p, src.read(p));
    dst.fsync_file(p);
  }
  // list() reports regular files only; a shard root's subdirectories are
  // probed by their well-known names.
  for (std::size_t i = 0; src.is_dir(join(dir, shard_dir_name(i))); ++i) {
    clone_store_files(src, dst, join(dir, shard_dir_name(i)));
  }
  dst.fsync_dir(dir);
}

WalInspection inspect_store_wal(FileIo& io, const std::string& dir) {
  WalInspection r;
  if (!io.is_dir(dir)) {
    r.notes.push_back("no such directory: " + dir);
    return r;
  }
  Bytes key;
  try {
    key = decode_key_file(io.read(join(dir, StateStore::kKeyFile)));
  } catch (const Error& e) {
    r.notes.push_back(std::string("store.key unusable: ") + e.what());
    return r;
  }
  std::vector<std::uint64_t> gens;
  for (const std::string& name : io.list(dir)) {
    if (const auto g = parse_gen(name, StateStore::kSnapPrefix)) {
      gens.push_back(*g);
    }
  }
  std::sort(gens.rbegin(), gens.rend());
  std::optional<SecurityManager> mgr;
  Sha256::Digest seed{};
  for (const std::uint64_t g : gens) {
    Bytes raw;
    try {
      raw = io.read(join(dir, snap_name(g)));
    } catch (const IoError&) {
      continue;
    }
    const auto info = parse_snapshot(raw, key, g);
    if (!info) continue;
    try {
      mgr.emplace(SecurityManager::restore_state(info->payload));
    } catch (const Error&) {
      continue;
    }
    r.generation = g;
    seed = info->tag;
    break;
  }
  if (!mgr) {
    r.notes.push_back("no valid snapshot");
    return r;
  }
  r.chain_head_hex = hex_of(BytesView(seed.data(), seed.size()));
  const std::string wal = join(dir, wal_name(r.generation));
  if (!io.exists(wal)) {
    r.notes.push_back(wal_name(r.generation) + " missing");
    r.period = mgr->period();
    r.ok = true;  // a snapshot with no WAL is an empty (zero-record) log
    return r;
  }
  const Bytes raw = io.read(wal);
  const WalScan scan = scan_wal(raw, key, r.generation, seed);
  if (!scan.header_ok) {
    r.notes.push_back(wal_name(r.generation) + ": bad header");
    r.period = mgr->period();
    return r;
  }
  std::size_t keep_end = kWalHeader;
  const Group& group = mgr->params().group;
  for (const WalRecord& rec : scan.records) {
    try {
      Reader pr(rec.payload);
      const ManagerMutation m = ManagerMutation::deserialize(pr, group);
      pr.expect_end();
      mgr->apply_mutation(m);
    } catch (const Error&) {
      break;  // semantically torn tail
    }
    ++r.records;
    keep_end = rec.end;
    r.chain_head_hex = hex_of(BytesView(rec.tag.data(), rec.tag.size()));
  }
  if (keep_end < raw.size()) {
    r.notes.push_back(wal_name(r.generation) + ": " +
                      std::to_string(raw.size() - keep_end) +
                      " torn tail byte(s)");
  }
  r.frames.assign(raw.begin() + kWalHeader,
                  raw.begin() + static_cast<std::ptrdiff_t>(keep_end));
  r.frame_bytes = r.frames.size();
  r.period = mgr->period();
  r.ok = true;
  return r;
}

// ---- sharded deployments -------------------------------------------------------

std::string shard_dir_name(std::size_t shard) {
  return "shard." + std::to_string(shard);
}

bool is_shard_root(FileIo& io, const std::string& dir) {
  return io.is_dir(dir) && io.is_dir(join(dir, shard_dir_name(0)));
}

std::size_t count_shards(FileIo& io, const std::string& dir) {
  std::size_t n = 0;
  while (io.is_dir(join(dir, shard_dir_name(n)))) ++n;
  return n;
}

std::vector<StateStore> create_shard_set(FileIo& io, const std::string& root,
                                         std::vector<SecurityManager> managers,
                                         Rng& rng, StoreOptions opts) {
  if (managers.empty()) {
    throw ContractError("shard set: need at least one shard");
  }
  if (!io.is_dir(root)) io.mkdir(root);
  if (io.exists(join(root, StateStore::kKeyFile))) {
    throw ContractError("shard set: " + root + " already holds a plain store");
  }
  if (is_shard_root(io, root)) {
    throw ContractError("shard set: " + root + " already holds a shard set");
  }
  std::vector<StateStore> shards;
  shards.reserve(managers.size());
  for (std::size_t i = 0; i < managers.size(); ++i) {
    shards.push_back(StateStore::create(io, join(root, shard_dir_name(i)),
                                        std::move(managers[i]), rng, opts));
  }
  // The shard.<i> entries are part of the committed layout.
  io.fsync_dir(root);
  return shards;
}

std::vector<StateStore> open_shard_set(FileIo& io, const std::string& root,
                                       Rng& rng, StoreOptions opts,
                                       ShardSetReport* report) {
  const std::size_t n = count_shards(io, root);
  if (n == 0) {
    throw DecodeError("shard set: " + root + " has no shard.0 directory");
  }
  // All-or-nothing locking: a StoreLockedError on any shard propagates and
  // the already-opened shards release their LOCKs on unwind, so a partially
  // locked set never lingers.
  std::vector<StateStore> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards.push_back(StateStore::open(io, join(root, shard_dir_name(i)), opts));
  }
  // Epoch equalization. Shards diverge in exactly two ways: a crash between
  // the two phases of a cross-shard new-period (some shards' WAL syncs
  // landed, some did not — the barrier was never acked, so completing it is
  // safe), and saturating revokes that rolled one shard autonomously. Both
  // resolve the same way: roll every lagging shard forward to the maximum
  // period; each roll is an ordinary durable new-period whose reset bundle
  // lands in that shard's archive for receiver catch-up.
  std::uint64_t epoch = 0;
  for (const StateStore& s : shards) {
    epoch = std::max(epoch, s.manager().period());
  }
  std::size_t rolled = 0;
  for (StateStore& s : shards) {
    while (s.manager().period() < epoch) {
      s.new_period(rng);
      ++rolled;
    }
  }
  if (report != nullptr) {
    report->shards = n;
    report->epoch = epoch;
    report->rolled_forward = rolled;
    report->recoveries.clear();
    for (const StateStore& s : shards) {
      report->recoveries.push_back(s.recovery_report());
    }
  }
  DFKY_OBS(obs::counter("dfky_store_shard_set_opens_total").inc();
           obs::counter("dfky_store_shard_rollforwards_total").inc(rolled););
  return shards;
}

// ---- fsck ----------------------------------------------------------------------

FsckReport fsck_store(FileIo& io, const std::string& dir, bool repair) {
  FsckReport r;
  if (!io.is_dir(dir)) {
    r.unrecoverable = true;
    r.notes.push_back("no such directory: " + dir);
    return r;
  }
  Bytes key;
  try {
    key = decode_key_file(io.read(join(dir, StateStore::kKeyFile)));
  } catch (const Error& e) {
    r.unrecoverable = true;
    r.notes.push_back(std::string("store.key unusable: ") + e.what());
    return r;
  }

  if (repair) {
    try {
      const StateStore s = StateStore::open(io, dir);
      const RecoveryReport& rr = s.recovery_report();
      r.ok = true;
      r.generation = rr.generation;
      r.period = s.manager().period();
      r.wal_records = rr.replayed_records;
      r.torn_tail_bytes = rr.truncated_bytes;
      r.stale_files = rr.stale_files_removed;
      r.repaired = rr.truncated_records > 0 || rr.truncated_bytes > 0 ||
                   rr.stale_files_removed > 0 || rr.skipped_snapshots > 0;
      if (rr.truncated_records > 0) {
        r.notes.push_back("truncated " + std::to_string(rr.truncated_records) +
                          " torn record(s), " +
                          std::to_string(rr.truncated_bytes) + " byte(s)");
      }
      if (rr.skipped_snapshots > 0) {
        r.notes.push_back("skipped " + std::to_string(rr.skipped_snapshots) +
                          " invalid snapshot(s)");
      }
      if (rr.stale_files_removed > 0) {
        r.notes.push_back("removed " + std::to_string(rr.stale_files_removed) +
                          " stale file(s)");
      }
    } catch (const Error& e) {
      r.unrecoverable = true;
      r.notes.push_back(e.what());
    }
    return r;
  }

  // Check-only: same validation as open(), nothing written.
  std::vector<std::uint64_t> gens;
  std::size_t entries = 0;
  for (const std::string& name : io.list(dir)) {
    if (name == StateStore::kLockFile || name == StateStore::kTermFile) {
      continue;  // infrastructure, not state
    }
    ++entries;
    if (const auto g = parse_gen(name, StateStore::kSnapPrefix)) {
      gens.push_back(*g);
    }
  }
  std::sort(gens.rbegin(), gens.rend());
  std::optional<SecurityManager> mgr;
  Sha256::Digest seed{};
  std::size_t skipped = 0;
  for (const std::uint64_t g : gens) {
    Bytes raw;
    try {
      raw = io.read(join(dir, snap_name(g)));
    } catch (const IoError&) {
      ++skipped;
      continue;
    }
    const auto info = parse_snapshot(raw, key, g);
    if (!info) {
      ++skipped;
      continue;
    }
    try {
      mgr.emplace(SecurityManager::restore_state(info->payload));
    } catch (const Error&) {
      ++skipped;
      continue;
    }
    r.generation = g;
    seed = info->tag;
    break;
  }
  if (skipped > 0) {
    r.notes.push_back(std::to_string(skipped) + " invalid snapshot(s)");
  }
  if (!mgr) {
    r.unrecoverable = true;
    r.notes.push_back("no valid snapshot");
    return r;
  }

  const std::string wal = join(dir, wal_name(r.generation));
  bool wal_clean = false;
  if (!io.exists(wal)) {
    r.notes.push_back(wal_name(r.generation) + " missing");
  } else {
    const Bytes raw = io.read(wal);
    const WalScan scan = scan_wal(raw, key, r.generation, seed);
    if (!scan.header_ok) {
      r.torn_tail_bytes = scan.tail_bytes;
      r.notes.push_back(wal_name(r.generation) + ": bad header");
    } else {
      std::size_t keep_end = kWalHeader;
      const Group& group = mgr->params().group;
      std::size_t i = 0;
      for (; i < scan.records.size(); ++i) {
        try {
          Reader pr(scan.records[i].payload);
          const ManagerMutation m = ManagerMutation::deserialize(pr, group);
          pr.expect_end();
          mgr->apply_mutation(m);
        } catch (const Error&) {
          break;
        }
        ++r.wal_records;
        keep_end = scan.records[i].end;
      }
      r.torn_tail_bytes = raw.size() - keep_end;
      wal_clean = r.torn_tail_bytes == 0;
      if (!wal_clean) {
        r.notes.push_back(wal_name(r.generation) + ": torn tail (" +
                          std::to_string(r.torn_tail_bytes) + " byte(s), ~" +
                          std::to_string((scan.records.size() - i) +
                                         scan.tail_records) +
                          " record(s))");
      }
    }
  }

  r.period = mgr->period();

  // Anything beyond {store.key, snap.<g>, wal.<g>} is stale.
  r.stale_files =
      entries - 1 /* store.key */ - 1 /* snap */ - (io.exists(wal) ? 1 : 0);
  if (r.stale_files > 0) {
    r.notes.push_back(std::to_string(r.stale_files) + " stale file(s)");
  }
  r.ok = wal_clean && r.stale_files == 0 && skipped == 0;
  return r;
}

}  // namespace dfky
