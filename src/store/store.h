// Crash-consistent durable store for the security manager's state
// (DESIGN.md Sect. 9).
//
// On-disk layout (one directory per deployment):
//
//   <dir>/store.key   32-byte HMAC key, CRC-framed; written once at create
//   <dir>/snap.<g>    checksummed full snapshot of generation g
//   <dir>/wal.<g>     write-ahead log of ManagerMutation records since g
//
// Exactly one generation is live at a time; a snapshot rotation writes
// snap.<g+1> via write-to-temp / fsync / rename / fsync-dir, starts a fresh
// WAL seeded from the new snapshot's HMAC tag, and only then removes the
// old generation. Every WAL record is framed with a length, a CRC32C of the
// payload, and an HMAC-SHA256 chained from the previous record's tag, so a
// torn tail, a bit flip and a spliced-in record are all detected. open()
// loads the newest valid snapshot, replays the WAL suffix, truncates any
// torn tail, removes stale files, and reports what it did.
//
// Mutations are durable (appended + fsynced) before the mutating call
// returns — the acknowledgement contract a manager daemon needs.
#pragma once

#include "core/manager.h"
#include "crypto/sha256.h"
#include "store/file_io.h"

namespace dfky {

struct StoreOptions {
  /// WAL records accumulated before an automatic snapshot rotation.
  std::size_t snapshot_every = 64;
};

/// Bytes of framing per WAL record: u32 payload length, u32 CRC32C, and the
/// 32-byte chained HMAC tag. Shared with the replication transport, which
/// splits shipments on frame boundaries.
inline constexpr std::size_t kWalFrameHeaderBytes = 4 + 4 + Sha256::kDigestSize;

/// A slice of a primary's live WAL, framed exactly as on disk, ready to be
/// appended verbatim by a replica that shares the store's HMAC key.
struct WalShipment {
  std::uint64_t generation = 0;    // WAL generation the frames belong to
  std::uint64_t start_record = 0;  // index of the first framed record
  std::uint64_t records = 0;       // whole records in `frames`
  Bytes frames;                    // raw frame bytes (no WAL header)
};

/// Another process holds the store directory's LOCK file. Distinct from
/// DecodeError: the store is fine, it is just in use.
class StoreLockedError : public Error {
 public:
  explicit StoreLockedError(const std::string& what) : Error(what) {}
};

/// A WAL append/fsync failed after frames may have reached the file, so
/// the in-memory state and the on-disk log can no longer be reconciled by
/// this process: every further mutation/sync on the store throws this.
/// Reopening the directory (a fresh open() replays what actually landed)
/// is the only recovery path.
class StorePoisonedError : public Error {
 public:
  explicit StorePoisonedError(const std::string& what) : Error(what) {}
};

/// What open() found and repaired. All zeros after a clean open.
struct RecoveryReport {
  std::uint64_t generation = 0;      // generation recovered into
  std::size_t replayed_records = 0;  // WAL records applied on top of the snapshot
  std::size_t truncated_records = 0; // torn/corrupt tail records dropped
  std::size_t truncated_bytes = 0;
  std::size_t skipped_snapshots = 0; // newer generations whose snapshot failed validation
  std::size_t stale_files_removed = 0;  // leftover tmp/old-generation files
};

class StateStore {
 public:
  /// Creates a fresh store directory around `manager` (the directory must
  /// not already contain a store). `rng` supplies the 32-byte HMAC key.
  /// The initial snapshot is durable when this returns.
  static StateStore create(FileIo& io, std::string dir,
                           SecurityManager manager, Rng& rng,
                           StoreOptions opts = {});
  /// Opens an existing store: newest valid snapshot + WAL replay + torn
  /// tail truncation + stale file cleanup. Throws DecodeError when the
  /// directory holds no recoverable store.
  ///
  /// Both create() and open() first take the directory's LOCK file
  /// (flock-style advisory exclusion, threaded through FileIo) and throw
  /// StoreLockedError("... is locked by pid N") when another process —
  /// e.g. a live dfkyd — holds it. The lock is released by the destructor.
  static StateStore open(FileIo& io, std::string dir, StoreOptions opts = {});

  StateStore(StateStore&& other) noexcept;
  StateStore& operator=(StateStore&& other) noexcept;
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;
  /// Releases the LOCK file (the file itself stays behind; see FileIo::lock).
  ~StateStore();

  const SecurityManager& manager() const { return mgr_; }

  // -- mutating operations; each is durable before it returns -------------------
  SecurityManager::AddedUser add_user(Rng& rng);
  SecurityManager::AddedUser add_user_with_value(const Bigint& x);
  std::vector<SignedResetBundle> remove_users(
      std::span<const std::uint64_t> ids, Rng& rng);
  SignedResetBundle new_period(Rng& rng);

  /// Forces a snapshot rotation now (also taken automatically every
  /// `opts.snapshot_every` WAL records). Flushes any batched records first.
  void snapshot();

  // -- group commit --------------------------------------------------------------
  /// While batching is on, mutations still validate, apply and frame their
  /// WAL records immediately, but the records accumulate in memory instead
  /// of reaching the file: they are NOT durable until sync() issues the
  /// batch's single append+fsync. This is the knob the daemon's committer
  /// thread uses to amortize one fsync over a whole batch of concurrent
  /// clients — callers must not acknowledge a mutation before sync()
  /// returns. Turning batching off flushes anything pending.
  void set_batching(bool on);
  bool batching() const { return batching_; }
  /// One append + one fsync for every record accumulated since the last
  /// sync; then a snapshot rotation if one is due. No-op when nothing is
  /// pending.
  void sync();
  /// Records applied to the manager but not yet durable (batching only).
  std::size_t unsynced_records() const { return unsynced_records_; }
  /// Steady-clock ns at which the last sync()'s WAL append returned,
  /// before its fsync began — the wal_append/fsync split point request
  /// traces use (DESIGN.md Sect. 13). 0 until the first flush, and always
  /// 0 under DFKY_OBS=OFF.
  std::uint64_t last_sync_append_done_ns() const {
    return last_sync_append_done_ns_;
  }
  /// True after a WAL append/fsync failed mid-flush. The staged frames may
  /// be partially on disk; re-appending them would write byte-identical
  /// duplicate records, break the HMAC chain, and cost every LATER acked
  /// batch at recovery — so a poisoned store refuses all further mutations
  /// (StorePoisonedError) and set_batching(false) skips its flush. What
  /// already reached the file is a valid chain prefix; a fresh open()
  /// recovers it.
  bool poisoned() const { return poisoned_; }

  std::uint64_t generation() const { return gen_; }
  std::size_t wal_records() const { return wal_records_; }
  const RecoveryReport& recovery_report() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  /// Hex of the WAL chain head (the last record's HMAC tag, or the live
  /// snapshot's seed tag when the WAL is empty). Two replicas whose chain
  /// heads match hold byte-identical logs.
  std::string chain_head_hex() const;

  // -- replication (DESIGN.md Sect. 12) ------------------------------------------
  //
  // Replicas are bootstrapped by cloning the primary's store directory
  // (clone_store_files), so primary and follower share one HMAC key and one
  // chain history. Replication then ships raw WAL frames: the follower
  // appends them verbatim, which keeps the replicas byte-identical and lets
  // the ordinary chain verification authenticate the stream.

  /// Reads up to `max_bytes` of whole framed records from the live WAL,
  /// starting at record index `start_record` (0-based; must not exceed
  /// wal_records()). `max_bytes = 0` means no cap. Only durable records are
  /// shipped — staged batch frames never appear.
  WalShipment read_frames_from(std::uint64_t start_record,
                               std::size_t max_bytes = 0) const;
  /// The live generation's snapshot file, verbatim. Shipping this exact
  /// frame (rather than re-encoding current state) matters: its tag seeds
  /// the live WAL's chain, so a follower installing it can verify and
  /// append the frames that follow.
  Bytes read_snapshot_frame() const;

  /// Follower ingest: verifies and appends WAL frames shipped from the
  /// primary. `start_record` anchors the shipment: records the follower
  /// already holds (index < wal_records()) are skipped structurally (dup
  /// re-delivery is a no-op), a gap (start_record > wal_records()) throws
  /// DecodeError, and a generation mismatch throws DecodeError (the primary
  /// resyncs with a snapshot). New records must pass CRC + HMAC chain
  /// verification from the current chain head; a torn final frame is
  /// ignored (the primary re-ships it whole). Valid new records are
  /// appended + fsynced, then applied to the manager. Returns the record
  /// count after ingest — the sequence number to ack.
  std::uint64_t replica_apply_frames(std::uint64_t gen,
                                     std::uint64_t start_record,
                                     BytesView frames);
  /// Follower ingest of a shipped snapshot rotation (or bootstrap resync):
  /// validates the frame against the shared key, durably installs it as
  /// generation `new_gen` with a fresh WAL, restores the manager from its
  /// payload, and removes the superseded generation. `new_gen <=
  /// generation()` is an idempotent no-op (dup re-delivery).
  void replica_apply_snapshot(std::uint64_t new_gen, BytesView frame);

  /// Hex of the chain tag after the first `records` WAL records (0 = the
  /// snapshot seed tag; wal_records() = chain_head_hex()). This is what a
  /// primary compares against a follower's reported chain head to detect a
  /// forked suffix. Throws DecodeError when `records` exceeds the log.
  std::string chain_tag_hex_at(std::uint64_t records) const;

  /// Fencing recovery: discards every WAL record past `records` after
  /// verifying that the retained prefix's chain tag equals
  /// `expected_tag_hex` (the new primary's tag at that depth). The WAL file
  /// is physically truncated and the manager is rebuilt from the snapshot +
  /// retained prefix, so a fenced ex-primary can drop its forked suffix and
  /// re-join the promoted node's history via ordinary replica_apply_frames.
  /// `gen` must match the live generation. Returns the record count after
  /// truncation. A tag mismatch throws DecodeError and changes nothing —
  /// the caller walks further back.
  std::uint64_t replica_truncate(std::uint64_t gen, std::uint64_t records,
                                 const std::string& expected_tag_hex);

  // -- failover term (DESIGN.md Sect. 14) -----------------------------------------
  /// Monotonic failover term persisted in <dir>/TERM (CRC-framed, written
  /// via tmp + fsync + rename). 0 when the file is absent — a cluster that
  /// never failed over. Loaded by open()/create().
  std::uint64_t term() const { return term_; }
  /// Durably persists `t` as the store's term. Lower-than-current values
  /// are ignored (terms only move forward).
  void set_term(std::uint64_t t);

  // -- layout constants shared with dfky_fsck ------------------------------------
  static constexpr char kKeyFile[] = "store.key";
  static constexpr char kSnapPrefix[] = "snap.";
  static constexpr char kWalPrefix[] = "wal.";
  static constexpr char kTmpSuffix[] = ".tmp";
  static constexpr char kLockFile[] = "LOCK";
  static constexpr char kTermFile[] = "TERM";

 private:
  StateStore(FileIo& io, std::string dir, StoreOptions opts,
             SecurityManager mgr, Bytes key);

  /// Drains the manager's mutation log into the WAL and fsyncs it (or, in
  /// batching mode, stages the frames for the next sync()).
  void commit();
  void append_record(const ManagerMutation& m);
  /// The staged batch's single append+fsync (no rotation check). A failed
  /// append/fsync poisons the store before the exception propagates.
  void flush_pending();
  /// Throws StorePoisonedError when a previous WAL failure poisoned us.
  void ensure_usable() const;
  std::string path(const std::string& name) const;

  FileIo* io_;  // null only in a moved-from store
  std::string dir_;
  StoreOptions opts_;
  SecurityManager mgr_;
  Bytes key_;  // HMAC key (never leaves the store directory)
  std::uint64_t gen_ = 0;
  std::uint64_t term_ = 0;  // failover term from <dir>/TERM (0 = absent)
  std::size_t wal_records_ = 0;
  Sha256::Digest chain_tag_{};  // tag of the last WAL record (or the seed)
  RecoveryReport recovery_;
  bool locked_ = false;
  bool batching_ = false;
  bool poisoned_ = false;  // WAL failed mid-write; mutations refused
  Bytes pending_;  // framed records staged while batching
  std::size_t unsynced_records_ = 0;
  std::uint64_t last_sync_append_done_ns_ = 0;
};

// ---- sharded deployments (DESIGN.md Sect. 11) ---------------------------------
//
// A shard ROOT is a directory holding shard.0 .. shard.<N-1>, each a
// complete store directory of its own: own HMAC key, own generations, own
// LOCK. Shards are independent scheme instances partitioned by user id
// (global id = local id * N + shard); the only cross-shard invariant is
// the EPOCH — after recovery every shard sits at the same period. A crash
// between the two phases of a cross-shard new-period leaves some shards
// one period ahead; since that barrier was never acknowledged, open can
// roll the lagging shards forward to the maximum (each roll is an
// ordinary durable new-period), which is what open_shard_set does.

/// "shard.<i>" — the root-relative directory of shard i.
std::string shard_dir_name(std::size_t shard);

/// True when `dir` is a shard root (contains a shard.0 subdirectory).
/// Plain stores carry store.key at the top level instead, so the two
/// layouts are distinguishable without configuration.
bool is_shard_root(FileIo& io, const std::string& dir);

/// Number of contiguous shard.<i> subdirectories starting at shard.0.
std::size_t count_shards(FileIo& io, const std::string& dir);

/// What open_shard_set found and did.
struct ShardSetReport {
  std::size_t shards = 0;
  std::uint64_t epoch = 0;         // common period every shard landed on
  std::size_t rolled_forward = 0;  // new-period rolls issued to equalize
  std::vector<RecoveryReport> recoveries;  // per-shard open() reports
};

/// Creates a shard root with one store per manager (`managers[i]` becomes
/// shard i). All shards durable when this returns.
std::vector<StateStore> create_shard_set(FileIo& io, const std::string& root,
                                         std::vector<SecurityManager> managers,
                                         Rng& rng, StoreOptions opts = {});

/// Multi-instance recovery entry point: opens every shard (taking every
/// LOCK — a StoreLockedError on any shard unwinds the ones already
/// opened), then equalizes the epoch by rolling lagging shards forward to
/// the maximum period with `rng`. Throws DecodeError when `root` holds no
/// shard.0.
std::vector<StateStore> open_shard_set(FileIo& io, const std::string& root,
                                       Rng& rng, StoreOptions opts = {},
                                       ShardSetReport* report = nullptr);

/// File-system check for a store directory. In check mode (repair = false)
/// nothing is written and `ok` reports whether the store is pristine: a
/// valid key file, exactly one generation, a clean WAL, no stale files.
/// With repair = true the store is opened (which truncates torn tails and
/// removes stale files) and `ok` reports whether it is usable afterwards.
struct FsckReport {
  bool ok = false;
  bool repaired = false;       // repair mode actually changed something
  bool unrecoverable = false;  // no valid snapshot survives
  std::uint64_t generation = 0;
  std::uint64_t period = 0;          // manager period after WAL replay
  std::size_t wal_records = 0;       // valid records in the live WAL
  std::size_t torn_tail_bytes = 0;   // trailing bytes failing validation
  std::size_t stale_files = 0;       // tmp / old-generation leftovers
  std::vector<std::string> notes;    // human-readable findings
};

FsckReport fsck_store(FileIo& io, const std::string& dir, bool repair);

// ---- replication helpers (DESIGN.md Sect. 12) ----------------------------------

/// Copies a store directory (plain store or shard root) from `src` to the
/// same path under `dst`, skipping LOCK files — the bootstrap step that
/// hands a follower the primary's HMAC keys and chain history. The source
/// must be quiescent (no live daemon writing it).
void clone_store_files(FileIo& src, FileIo& dst, const std::string& dir);

/// Read-only WAL inspection for replica comparison (dfky_fsck --replica).
/// Unlike fsck_store this exposes the raw validated frame bytes so two
/// replicas of one shard can be compared for prefix compatibility.
struct WalInspection {
  bool ok = false;  // a valid snapshot + WAL header were found
  std::uint64_t generation = 0;
  std::uint64_t period = 0;     // manager period after replaying the WAL
  std::size_t records = 0;      // chain-valid records in the live WAL
  std::size_t frame_bytes = 0;  // bytes of those frames (header excluded)
  std::string chain_head_hex;   // tag of the last valid record (or seed)
  Bytes frames;                 // the validated frame bytes themselves
  std::vector<std::string> notes;
};

WalInspection inspect_store_wal(FileIo& io, const std::string& dir);

}  // namespace dfky
