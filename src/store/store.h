// Crash-consistent durable store for the security manager's state
// (DESIGN.md Sect. 9).
//
// On-disk layout (one directory per deployment):
//
//   <dir>/store.key   32-byte HMAC key, CRC-framed; written once at create
//   <dir>/snap.<g>    checksummed full snapshot of generation g
//   <dir>/wal.<g>     write-ahead log of ManagerMutation records since g
//
// Exactly one generation is live at a time; a snapshot rotation writes
// snap.<g+1> via write-to-temp / fsync / rename / fsync-dir, starts a fresh
// WAL seeded from the new snapshot's HMAC tag, and only then removes the
// old generation. Every WAL record is framed with a length, a CRC32C of the
// payload, and an HMAC-SHA256 chained from the previous record's tag, so a
// torn tail, a bit flip and a spliced-in record are all detected. open()
// loads the newest valid snapshot, replays the WAL suffix, truncates any
// torn tail, removes stale files, and reports what it did.
//
// Mutations are durable (appended + fsynced) before the mutating call
// returns — the acknowledgement contract a manager daemon needs.
#pragma once

#include "core/manager.h"
#include "crypto/sha256.h"
#include "store/file_io.h"

namespace dfky {

struct StoreOptions {
  /// WAL records accumulated before an automatic snapshot rotation.
  std::size_t snapshot_every = 64;
};

/// Another process holds the store directory's LOCK file. Distinct from
/// DecodeError: the store is fine, it is just in use.
class StoreLockedError : public Error {
 public:
  explicit StoreLockedError(const std::string& what) : Error(what) {}
};

/// A WAL append/fsync failed after frames may have reached the file, so
/// the in-memory state and the on-disk log can no longer be reconciled by
/// this process: every further mutation/sync on the store throws this.
/// Reopening the directory (a fresh open() replays what actually landed)
/// is the only recovery path.
class StorePoisonedError : public Error {
 public:
  explicit StorePoisonedError(const std::string& what) : Error(what) {}
};

/// What open() found and repaired. All zeros after a clean open.
struct RecoveryReport {
  std::uint64_t generation = 0;      // generation recovered into
  std::size_t replayed_records = 0;  // WAL records applied on top of the snapshot
  std::size_t truncated_records = 0; // torn/corrupt tail records dropped
  std::size_t truncated_bytes = 0;
  std::size_t skipped_snapshots = 0; // newer generations whose snapshot failed validation
  std::size_t stale_files_removed = 0;  // leftover tmp/old-generation files
};

class StateStore {
 public:
  /// Creates a fresh store directory around `manager` (the directory must
  /// not already contain a store). `rng` supplies the 32-byte HMAC key.
  /// The initial snapshot is durable when this returns.
  static StateStore create(FileIo& io, std::string dir,
                           SecurityManager manager, Rng& rng,
                           StoreOptions opts = {});
  /// Opens an existing store: newest valid snapshot + WAL replay + torn
  /// tail truncation + stale file cleanup. Throws DecodeError when the
  /// directory holds no recoverable store.
  ///
  /// Both create() and open() first take the directory's LOCK file
  /// (flock-style advisory exclusion, threaded through FileIo) and throw
  /// StoreLockedError("... is locked by pid N") when another process —
  /// e.g. a live dfkyd — holds it. The lock is released by the destructor.
  static StateStore open(FileIo& io, std::string dir, StoreOptions opts = {});

  StateStore(StateStore&& other) noexcept;
  StateStore& operator=(StateStore&& other) noexcept;
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;
  /// Releases the LOCK file (the file itself stays behind; see FileIo::lock).
  ~StateStore();

  const SecurityManager& manager() const { return mgr_; }

  // -- mutating operations; each is durable before it returns -------------------
  SecurityManager::AddedUser add_user(Rng& rng);
  SecurityManager::AddedUser add_user_with_value(const Bigint& x);
  std::vector<SignedResetBundle> remove_users(
      std::span<const std::uint64_t> ids, Rng& rng);
  SignedResetBundle new_period(Rng& rng);

  /// Forces a snapshot rotation now (also taken automatically every
  /// `opts.snapshot_every` WAL records). Flushes any batched records first.
  void snapshot();

  // -- group commit --------------------------------------------------------------
  /// While batching is on, mutations still validate, apply and frame their
  /// WAL records immediately, but the records accumulate in memory instead
  /// of reaching the file: they are NOT durable until sync() issues the
  /// batch's single append+fsync. This is the knob the daemon's committer
  /// thread uses to amortize one fsync over a whole batch of concurrent
  /// clients — callers must not acknowledge a mutation before sync()
  /// returns. Turning batching off flushes anything pending.
  void set_batching(bool on);
  bool batching() const { return batching_; }
  /// One append + one fsync for every record accumulated since the last
  /// sync; then a snapshot rotation if one is due. No-op when nothing is
  /// pending.
  void sync();
  /// Records applied to the manager but not yet durable (batching only).
  std::size_t unsynced_records() const { return unsynced_records_; }
  /// True after a WAL append/fsync failed mid-flush. The staged frames may
  /// be partially on disk; re-appending them would write byte-identical
  /// duplicate records, break the HMAC chain, and cost every LATER acked
  /// batch at recovery — so a poisoned store refuses all further mutations
  /// (StorePoisonedError) and set_batching(false) skips its flush. What
  /// already reached the file is a valid chain prefix; a fresh open()
  /// recovers it.
  bool poisoned() const { return poisoned_; }

  std::uint64_t generation() const { return gen_; }
  std::size_t wal_records() const { return wal_records_; }
  const RecoveryReport& recovery_report() const { return recovery_; }
  const std::string& dir() const { return dir_; }

  // -- layout constants shared with dfky_fsck ------------------------------------
  static constexpr char kKeyFile[] = "store.key";
  static constexpr char kSnapPrefix[] = "snap.";
  static constexpr char kWalPrefix[] = "wal.";
  static constexpr char kTmpSuffix[] = ".tmp";
  static constexpr char kLockFile[] = "LOCK";

 private:
  StateStore(FileIo& io, std::string dir, StoreOptions opts,
             SecurityManager mgr, Bytes key);

  /// Drains the manager's mutation log into the WAL and fsyncs it (or, in
  /// batching mode, stages the frames for the next sync()).
  void commit();
  void append_record(const ManagerMutation& m);
  /// The staged batch's single append+fsync (no rotation check). A failed
  /// append/fsync poisons the store before the exception propagates.
  void flush_pending();
  /// Throws StorePoisonedError when a previous WAL failure poisoned us.
  void ensure_usable() const;
  std::string path(const std::string& name) const;

  FileIo* io_;  // null only in a moved-from store
  std::string dir_;
  StoreOptions opts_;
  SecurityManager mgr_;
  Bytes key_;  // HMAC key (never leaves the store directory)
  std::uint64_t gen_ = 0;
  std::size_t wal_records_ = 0;
  Sha256::Digest chain_tag_{};  // tag of the last WAL record (or the seed)
  RecoveryReport recovery_;
  bool locked_ = false;
  bool batching_ = false;
  bool poisoned_ = false;  // WAL failed mid-write; mutations refused
  Bytes pending_;  // framed records staged while batching
  std::size_t unsynced_records_ = 0;
};

// ---- sharded deployments (DESIGN.md Sect. 11) ---------------------------------
//
// A shard ROOT is a directory holding shard.0 .. shard.<N-1>, each a
// complete store directory of its own: own HMAC key, own generations, own
// LOCK. Shards are independent scheme instances partitioned by user id
// (global id = local id * N + shard); the only cross-shard invariant is
// the EPOCH — after recovery every shard sits at the same period. A crash
// between the two phases of a cross-shard new-period leaves some shards
// one period ahead; since that barrier was never acknowledged, open can
// roll the lagging shards forward to the maximum (each roll is an
// ordinary durable new-period), which is what open_shard_set does.

/// "shard.<i>" — the root-relative directory of shard i.
std::string shard_dir_name(std::size_t shard);

/// True when `dir` is a shard root (contains a shard.0 subdirectory).
/// Plain stores carry store.key at the top level instead, so the two
/// layouts are distinguishable without configuration.
bool is_shard_root(FileIo& io, const std::string& dir);

/// Number of contiguous shard.<i> subdirectories starting at shard.0.
std::size_t count_shards(FileIo& io, const std::string& dir);

/// What open_shard_set found and did.
struct ShardSetReport {
  std::size_t shards = 0;
  std::uint64_t epoch = 0;         // common period every shard landed on
  std::size_t rolled_forward = 0;  // new-period rolls issued to equalize
  std::vector<RecoveryReport> recoveries;  // per-shard open() reports
};

/// Creates a shard root with one store per manager (`managers[i]` becomes
/// shard i). All shards durable when this returns.
std::vector<StateStore> create_shard_set(FileIo& io, const std::string& root,
                                         std::vector<SecurityManager> managers,
                                         Rng& rng, StoreOptions opts = {});

/// Multi-instance recovery entry point: opens every shard (taking every
/// LOCK — a StoreLockedError on any shard unwinds the ones already
/// opened), then equalizes the epoch by rolling lagging shards forward to
/// the maximum period with `rng`. Throws DecodeError when `root` holds no
/// shard.0.
std::vector<StateStore> open_shard_set(FileIo& io, const std::string& root,
                                       Rng& rng, StoreOptions opts = {},
                                       ShardSetReport* report = nullptr);

/// File-system check for a store directory. In check mode (repair = false)
/// nothing is written and `ok` reports whether the store is pristine: a
/// valid key file, exactly one generation, a clean WAL, no stale files.
/// With repair = true the store is opened (which truncates torn tails and
/// removes stale files) and `ok` reports whether it is usable afterwards.
struct FsckReport {
  bool ok = false;
  bool repaired = false;       // repair mode actually changed something
  bool unrecoverable = false;  // no valid snapshot survives
  std::uint64_t generation = 0;
  std::uint64_t period = 0;          // manager period after WAL replay
  std::size_t wal_records = 0;       // valid records in the live WAL
  std::size_t torn_tail_bytes = 0;   // trailing bytes failing validation
  std::size_t stale_files = 0;       // tmp / old-generation leftovers
  std::vector<std::string> notes;    // human-readable findings
};

FsckReport fsck_store(FileIo& io, const std::string& dir, bool repair);

}  // namespace dfky
