#include "store/file_io.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.h"

namespace dfky {

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// ---- RealFileIo ----------------------------------------------------------------

namespace {

[[noreturn]] void io_fail(const std::string& op, const std::string& path) {
  throw IoError("file_io: " + op + " " + path + ": " + std::strerror(errno));
}

/// Retries a -1/errno syscall while it reports EINTR. With the daemon's
/// SIGINT/SIGTERM handlers installed, an interrupted append must not
/// surface as a spurious IoError mid-mutation.
template <typename Fn>
auto eintr_retry(Fn fn) {
  decltype(fn()) r;
  do {
    r = fn();
  } while (r < 0 && errno == EINTR);
  return r;
}

class Fd {
 public:
  Fd(const std::string& path, int flags, mode_t mode = 0644)
      : fd_(eintr_retry([&] { return ::open(path.c_str(), flags, mode); })),
        path_(path) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  bool ok() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_;
  std::string path_;
};

void write_all(const Fd& fd, BytesView data, const char* op) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = eintr_retry(
        [&] { return ::write(fd.get(), data.data() + off, data.size() - off); });
    if (n < 0) io_fail(op, fd.path());
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool RealFileIo::exists(const std::string& path) const {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool RealFileIo::is_dir(const std::string& path) const {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::string> RealFileIo::list(const std::string& dir) const {
  DIR* d = ::opendir(dir.empty() ? "." : dir.c_str());
  if (d == nullptr) io_fail("list", dir);
  std::vector<std::string> names;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    const std::string full = dir.empty() ? name : dir + "/" + name;
    if (::stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Bytes RealFileIo::read(const std::string& path) const {
  Fd fd(path, O_RDONLY);
  if (!fd.ok()) io_fail("read", path);
  Bytes out;
  byte buf[1 << 16];
  while (true) {
    const ssize_t n =
        eintr_retry([&] { return ::read(fd.get(), buf, sizeof buf); });
    if (n < 0) io_fail("read", path);
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

void RealFileIo::write(const std::string& path, BytesView data) {
  Fd fd(path, O_WRONLY | O_CREAT | O_TRUNC);
  if (!fd.ok()) io_fail("write", path);
  write_all(fd, data, "write");
}

void RealFileIo::append(const std::string& path, BytesView data) {
  Fd fd(path, O_WRONLY | O_CREAT | O_APPEND);
  if (!fd.ok()) io_fail("append", path);
  write_all(fd, data, "append");
}

void RealFileIo::truncate(const std::string& path, std::size_t size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) io_fail("truncate", path);
  if (static_cast<std::size_t>(st.st_size) < size) {
    errno = EINVAL;
    io_fail("truncate-grow", path);
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    io_fail("truncate", path);
  }
}

void RealFileIo::rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) io_fail("rename", from);
}

void RealFileIo::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) io_fail("remove", path);
}

void RealFileIo::mkdir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0) io_fail("mkdir", path);
}

void RealFileIo::fsync_file(const std::string& path) {
  Fd fd(path, O_RDONLY);
  if (!fd.ok()) io_fail("fsync_file", path);
  if (eintr_retry([&] { return ::fsync(fd.get()); }) != 0) {
    io_fail("fsync_file", path);
  }
}

void RealFileIo::fsync_dir(const std::string& dir) {
  Fd fd(dir.empty() ? "." : dir, O_RDONLY | O_DIRECTORY);
  if (!fd.ok()) io_fail("fsync_dir", dir);
  if (eintr_retry([&] { return ::fsync(fd.get()); }) != 0) {
    io_fail("fsync_dir", dir);
  }
}

bool RealFileIo::lock(const std::string& path, std::uint64_t* holder) {
  if (holder != nullptr) *holder = 0;
  if (lock_fds_.contains(path)) {
    // We already hold it; flock would not tell us so on a fresh fd.
    if (holder != nullptr) *holder = static_cast<std::uint64_t>(::getpid());
    return false;
  }
  const int fd = eintr_retry(
      [&] { return ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644); });
  if (fd < 0) io_fail("lock", path);
  if (eintr_retry([&] { return ::flock(fd, LOCK_EX | LOCK_NB); }) != 0) {
    if (errno != EWOULDBLOCK && errno != EAGAIN) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      io_fail("lock", path);
    }
    // Contended: report the pid the holder stamped into the file.
    char buf[32];
    const ssize_t n =
        eintr_retry([&] { return ::read(fd, buf, sizeof buf - 1); });
    if (n > 0 && holder != nullptr) {
      buf[n] = '\0';
      *holder = std::strtoull(buf, nullptr, 10);
    }
    ::close(fd);
    return false;
  }
  // Ours now: stamp our pid over whatever a previous (dead) holder left.
  char buf[32];
  const int len =
      std::snprintf(buf, sizeof buf, "%ld\n", static_cast<long>(::getpid()));
  if (eintr_retry([&] { return ::ftruncate(fd, 0); }) != 0 ||
      eintr_retry([&] { return ::write(fd, buf, len); }) != len) {
    const int saved = errno;
    ::close(fd);  // releases the flock
    errno = saved;
    io_fail("lock", path);
  }
  lock_fds_[path] = fd;
  return true;
}

void RealFileIo::unlock(const std::string& path) {
  const auto it = lock_fds_.find(path);
  if (it == lock_fds_.end()) return;
  ::close(it->second);  // closing the description releases the flock
  lock_fds_.erase(it);
}

RealFileIo::~RealFileIo() {
  for (const auto& [path, fd] : lock_fds_) ::close(fd);
}

// ---- MemFileIo -----------------------------------------------------------------

MemFileIo::MemFileIo(const MemFileIo& other) { *this = other; }

MemFileIo& MemFileIo::operator=(const MemFileIo& other) {
  if (this == &other) return *this;
  std::scoped_lock lk(mu_, other.mu_);
  locks_ = other.locks_;
  files_ = other.files_;
  live_dirs_ = other.live_dirs_;
  durable_ns_ = other.durable_ns_;
  durable_dirs_ = other.durable_dirs_;
  return *this;
}

MemFileIo::Inode& MemFileIo::live_inode(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) throw IoError("mem_io: no such file: " + path);
  return it->second;
}

bool MemFileIo::exists(const std::string& path) const {
  std::lock_guard lk(mu_);
  return files_.contains(path) || live_dirs_.contains(path);
}

bool MemFileIo::is_dir(const std::string& path) const {
  std::lock_guard lk(mu_);
  return live_dirs_.contains(path);
}

std::vector<std::string> MemFileIo::list(const std::string& dir) const {
  std::lock_guard lk(mu_);
  if (!live_dirs_.contains(dir)) throw IoError("mem_io: no such dir: " + dir);
  std::vector<std::string> names;
  for (const auto& [path, inode] : files_) {
    (void)inode;
    if (dirname_of(path) == dir) {
      names.push_back(path.substr(dir.empty() ? 0 : dir.size() + 1));
    }
  }
  return names;  // std::map iteration is already sorted
}

Bytes MemFileIo::read(const std::string& path) const {
  std::lock_guard lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) throw IoError("mem_io: no such file: " + path);
  return it->second.live;
}

void MemFileIo::write(const std::string& path, BytesView data) {
  std::lock_guard lk(mu_);
  if (!live_dirs_.contains(dirname_of(path))) {
    throw IoError("mem_io: no such dir for: " + path);
  }
  files_[path].live.assign(data.begin(), data.end());
}

void MemFileIo::append(const std::string& path, BytesView data) {
  std::lock_guard lk(mu_);
  if (!live_dirs_.contains(dirname_of(path))) {
    throw IoError("mem_io: no such dir for: " + path);
  }
  Bytes& live = files_[path].live;
  live.insert(live.end(), data.begin(), data.end());
}

void MemFileIo::truncate(const std::string& path, std::size_t size) {
  std::lock_guard lk(mu_);
  Inode& ino = live_inode(path);
  if (ino.live.size() < size) throw IoError("mem_io: truncate grows " + path);
  ino.live.resize(size);
}

void MemFileIo::rename(const std::string& from, const std::string& to) {
  std::lock_guard lk(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) throw IoError("mem_io: rename missing " + from);
  if (!live_dirs_.contains(dirname_of(to))) {
    throw IoError("mem_io: rename into missing dir: " + to);
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
}

void MemFileIo::remove(const std::string& path) {
  std::lock_guard lk(mu_);
  if (files_.erase(path) == 0) throw IoError("mem_io: remove missing " + path);
}

void MemFileIo::mkdir(const std::string& path) {
  std::lock_guard lk(mu_);
  if (files_.contains(path) || live_dirs_.contains(path)) {
    throw IoError("mem_io: mkdir exists: " + path);
  }
  if (!live_dirs_.contains(dirname_of(path))) {
    throw IoError("mem_io: mkdir into missing dir: " + path);
  }
  live_dirs_.insert(path);
}

void MemFileIo::fsync_file(const std::string& path) {
  std::lock_guard lk(mu_);
  Inode& ino = live_inode(path);
  ino.durable = ino.live;
  // If the directory entry is already durable, the synced content reaches
  // the platter immediately (POSIX fsync); otherwise it stays staged on the
  // inode until fsync_dir promotes the entry.
  const auto it = durable_ns_.find(path);
  if (it != durable_ns_.end()) it->second.durable = ino.durable;
}

void MemFileIo::fsync_dir(const std::string& dir) {
  std::lock_guard lk(mu_);
  if (!live_dirs_.contains(dir)) throw IoError("mem_io: no such dir: " + dir);
  // Persist the entry table of `dir`: creations, renames and removals all
  // become crash-safe. Content durability is fsync_file's job — an entry
  // promoted here still reverts to its last synced *content* on crash.
  durable_dirs_.insert(dir);
  for (auto it = durable_ns_.begin(); it != durable_ns_.end();) {
    if (dirname_of(it->first) == dir && !files_.contains(it->first)) {
      it = durable_ns_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, inode] : files_) {
    if (dirname_of(path) != dir) continue;
    durable_ns_[path].durable = inode.durable;
  }
}

bool MemFileIo::lock(const std::string& path, std::uint64_t* holder) {
  std::lock_guard lk(mu_);
  if (holder != nullptr) *holder = 0;
  if (!live_dirs_.contains(dirname_of(path))) {
    throw IoError("mem_io: no such dir for: " + path);
  }
  const auto it = locks_.find(path);
  if (it != locks_.end()) {
    if (holder != nullptr) *holder = it->second;
    return false;
  }
  const auto pid = static_cast<std::uint64_t>(::getpid());
  locks_[path] = pid;
  // Mirror RealFileIo: the lock file exists (and lists) while held, with
  // the holder's pid as its content, and is never unlinked.
  const std::string text = std::to_string(pid) + "\n";
  files_[path].live.assign(text.begin(), text.end());
  return true;
}

void MemFileIo::unlock(const std::string& path) {
  std::lock_guard lk(mu_);
  locks_.erase(path);
}

void MemFileIo::crash() {
  std::lock_guard lk(mu_);
  std::map<std::string, Inode> survivors;
  for (const auto& [path, inode] : durable_ns_) {
    survivors[path] = Inode{inode.durable, inode.durable};
  }
  files_ = std::move(survivors);
  live_dirs_ = durable_dirs_;
  locks_.clear();  // kernel-held locks die with the process
}

void MemFileIo::inject_durable_append(const std::string& path,
                                      BytesView data) {
  std::lock_guard lk(mu_);
  auto it = durable_ns_.find(path);
  if (it == durable_ns_.end()) return;  // entry never durable: nothing lands
  it->second.durable.insert(it->second.durable.end(), data.begin(),
                            data.end());
  // Mirror into the live inode's synced content so a later fsync-less
  // crash() is idempotent.
  auto live = files_.find(path);
  if (live != files_.end()) {
    live->second.durable = it->second.durable;
  }
}

// ---- FaultyFileIo --------------------------------------------------------------

namespace {

inline void note_io_fault(const char* kind) {
  DFKY_OBS(obs::counter("dfky_store_io_faults_total", {{"kind", kind}}).inc(););
#if !DFKY_OBS_ENABLED
  (void)kind;
#endif
}

}  // namespace

FaultyFileIo::FaultyFileIo(MemFileIo& fs, FilePlan plan)
    : fs_(fs), plan_(plan), rng_(plan.seed) {}

FilePlan FaultyFileIo::plan() const {
  std::lock_guard lk(mu_);
  return plan_;
}

FileFaultCounters FaultyFileIo::fault_counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

void FaultyFileIo::set_plan(FilePlan plan) {
  std::lock_guard lk(mu_);
  plan_ = plan;
}

void FaultyFileIo::mutating_op(const char* op, const std::string& path,
                               BytesView torn_data,
                               const std::string* torn_target) {
  std::lock_guard lk(mu_);
  const std::uint64_t index = counters_.mutating_ops++;
  if (plan_.crash_at && index == *plan_.crash_at) {
    ++counters_.crashes;
    note_io_fault("crash");
    if (torn_target != nullptr && !torn_data.empty()) {
      // A seeded prefix of the in-flight append reaches the platter.
      const std::size_t kept = rng_.u64() % (torn_data.size() + 1);
      fs_.inject_durable_append(*torn_target, torn_data.subspan(0, kept));
      counters_.torn_bytes += kept;
      if (kept > 0) note_io_fault("torn_append");
    }
    throw CrashPoint(std::string("injected crash at op ") +
                     std::to_string(index) + " (" + op + " " + path + ")");
  }
}

bool FaultyFileIo::exists(const std::string& path) const {
  return fs_.exists(path);
}
bool FaultyFileIo::is_dir(const std::string& path) const {
  return fs_.is_dir(path);
}
std::vector<std::string> FaultyFileIo::list(const std::string& dir) const {
  return fs_.list(dir);
}

Bytes FaultyFileIo::read(const std::string& path) const {
  std::lock_guard lk(mu_);
  ++counters_.reads;
  Bytes data = fs_.read(path);
  // Unconditional draws keep the PRG stream aligned across runs, exactly
  // like FaultyBus::roll.
  const std::uint64_t flip_roll = rng_.u64();
  const std::uint64_t flip_pos = rng_.u64();
  const std::uint64_t short_roll = rng_.u64();
  const std::uint64_t short_len = rng_.u64();
  const auto hits = [](std::uint64_t roll, double prob) {
    return static_cast<double>(roll >> 11) * (1.0 / 9007199254740992.0) < prob;
  };
  if (!data.empty() && hits(flip_roll, plan_.bitflip_read_prob)) {
    data[flip_pos % data.size()] ^=
        static_cast<byte>(1u << (flip_pos % 8));
    ++counters_.bitflips;
    note_io_fault("bitflip");
  }
  if (!data.empty() && hits(short_roll, plan_.short_read_prob)) {
    data.resize(short_len % data.size());
    ++counters_.short_reads;
    note_io_fault("short_read");
  }
  return data;
}

void FaultyFileIo::write(const std::string& path, BytesView data) {
  mutating_op("write", path, {}, nullptr);
  fs_.write(path, data);
}

void FaultyFileIo::append(const std::string& path, BytesView data) {
  mutating_op("append", path, data, &path);
  fs_.append(path, data);
}

void FaultyFileIo::truncate(const std::string& path, std::size_t size) {
  mutating_op("truncate", path, {}, nullptr);
  fs_.truncate(path, size);
}

void FaultyFileIo::rename(const std::string& from, const std::string& to) {
  mutating_op("rename", from, {}, nullptr);
  fs_.rename(from, to);
}

void FaultyFileIo::remove(const std::string& path) {
  mutating_op("remove", path, {}, nullptr);
  fs_.remove(path);
}

void FaultyFileIo::mkdir(const std::string& path) {
  mutating_op("mkdir", path, {}, nullptr);
  fs_.mkdir(path);
}

void FaultyFileIo::fsync_file(const std::string& path) {
  mutating_op("fsync_file", path, {}, nullptr);
  std::uint64_t delay = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    delay = plan_.fsync_delay_ns;
  }
  // Sleep outside the lock: a stalled fsync must not block other threads'
  // fault bookkeeping.
  if (delay != 0) std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
  fs_.fsync_file(path);
}

void FaultyFileIo::fsync_dir(const std::string& dir) {
  mutating_op("fsync_dir", dir, {}, nullptr);
  fs_.fsync_dir(dir);
}

bool FaultyFileIo::lock(const std::string& path, std::uint64_t* holder) {
  // Locking is a liveness primitive, not a durability one: it is not
  // counted as a mutating op (crash matrices key op indices off WAL I/O)
  // and never torn.
  return fs_.lock(path, holder);
}

void FaultyFileIo::unlock(const std::string& path) { fs_.unlock(path); }

}  // namespace dfky
