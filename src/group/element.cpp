#include "group/element.h"

#include "obs/metrics.h"

namespace dfky {

namespace {

EcPoint to_point(const Gelt& e) {
  if (e.is_infinity()) return EcPoint::at_infinity();
  return EcPoint::affine(e.px(), e.py());
}

Gelt from_point(const EcPoint& pt) {
  if (pt.infinity) return Gelt::infinity();
  return Gelt::point(pt.x, pt.y);
}

}  // namespace

Group::Group(GroupParams params)
    : params_(std::move(params)),
      order_(params_->q),
      zq_(params_->q, /*trust_prime=*/true) {
  require(params_->p > Bigint(3), "Group: p too small");
  require(params_->p == (params_->q << 1) + Bigint(1), "Group: p != 2q + 1");
}

Group::Group(CurveSpec curve)
    : curve_(std::move(curve)),
      order_(curve_->q),
      zq_(curve_->q, /*trust_prime=*/true) {
  require(ec_on_curve(*curve_, EcPoint::affine(curve_->gx, curve_->gy)),
          "Group: base point not on curve");
}

const GroupParams& Group::params() const {
  require(params_.has_value(), "Group::params: elliptic-curve backend");
  return *params_;
}

const CurveSpec& Group::curve() const {
  require(curve_.has_value(), "Group::curve: Z_p* backend");
  return *curve_;
}

const Bigint& Group::p() const {
  return is_elliptic() ? curve_->p : params_->p;
}

Gelt Group::generator() const {
  if (is_elliptic()) return Gelt::point(curve_->gx, curve_->gy);
  return Gelt(params_->g);
}

Gelt Group::one() const {
  if (is_elliptic()) return Gelt::infinity();
  return Gelt(Bigint(1));
}

Gelt Group::mul(const Gelt& a, const Gelt& b) const {
  if (is_elliptic()) {
    return from_point(ec_add(*curve_, to_point(a), to_point(b)));
  }
  return Gelt((a.value() * b.value()).mod(params_->p));
}

Gelt Group::div(const Gelt& a, const Gelt& b) const {
  return mul(a, inv(b));
}

Gelt Group::inv(const Gelt& a) const {
  if (is_elliptic()) return from_point(ec_neg(*curve_, to_point(a)));
  return Gelt(Bigint::invm(a.value(), params_->p));
}

Gelt Group::pow(const Gelt& a, const Bigint& e) const {
  if (is_elliptic()) {
    DFKY_OBS(static obs::Counter& c =
                 obs::counter("dfky_group_pow_total", {{"backend", "ec"}});
             c.inc(););
    return from_point(ec_mul(*curve_, to_point(a), e.mod(order_)));
  }
  DFKY_OBS(static obs::Counter& c =
               obs::counter("dfky_group_pow_total", {{"backend", "zp"}});
           c.inc(););
  return Gelt(Bigint::powm(a.value(), e.mod(order_), params_->p));
}

bool Group::is_element(const Gelt& a) const {
  if (is_elliptic()) {
    if (a.is_scalar()) return false;
    // Prime order + cofactor 1: on-curve implies full-order subgroup.
    return ec_on_curve(*curve_, to_point(a));
  }
  if (!a.is_scalar()) return false;
  const Bigint& v = a.value();
  if (v.sign() <= 0 || v >= params_->p) return false;
  if (v.is_one()) return true;
  // QR subgroup of a safe prime == elements with Jacobi symbol +1.
  return v.jacobi(params_->p) == 1;
}

Gelt Group::element_from(Bigint raw) const {
  require(!is_elliptic(),
          "Group::element_from: use point decoding for curves");
  Gelt e(std::move(raw));
  require(is_element(e), "Group::element_from: value not in subgroup");
  return e;
}

Gelt Group::random_element(Rng& rng) const {
  if (is_elliptic()) return pow_g(random_exponent(rng));
  const Bigint h = rng.uniform_nonzero_below(params_->p);
  return Gelt((h * h).mod(params_->p));
}

std::size_t Group::element_size() const {
  const std::size_t field_bytes = (p().bit_length() + 7) / 8;
  // EC: one tag byte (infinity / compressed-point parity) + x coordinate.
  return is_elliptic() ? field_bytes + 1 : field_bytes;
}

bool operator==(const Group& a, const Group& b) {
  if (a.is_elliptic() != b.is_elliptic()) return false;
  if (a.is_elliptic()) return *a.curve_ == *b.curve_;
  return a.params_->p == b.params_->p && a.params_->g == b.params_->g;
}

Gelt multiexp(const Group& group, std::span<const Gelt> bases,
              std::span<const Bigint> exps) {
  require(bases.size() == exps.size(), "multiexp: size mismatch");
  if (bases.empty()) return group.one();
  DFKY_OBS(static obs::Counter& c = obs::counter("dfky_group_multiexp_total");
           c.inc(););

  std::vector<Bigint> reduced;
  reduced.reserve(exps.size());
  std::size_t max_bits = 0;
  for (const Bigint& e : exps) {
    reduced.push_back(e.mod(group.order()));
    max_bits = std::max(max_bits, reduced.back().bit_length());
  }
  Gelt acc = group.one();
  for (std::size_t bit = max_bits; bit-- > 0;) {
    acc = group.mul(acc, acc);
    for (std::size_t i = 0; i < bases.size(); ++i) {
      if (reduced[i].bit(bit)) acc = group.mul(acc, bases[i]);
    }
  }
  return acc;
}

}  // namespace dfky
