// Schnorr group parameters: the order-q subgroup of quadratic residues of
// Z_p^*, with p = 2q + 1 a safe prime (paper Sect. 3).
#pragma once

#include "bigint/bigint.h"
#include "rng/rng.h"

namespace dfky {

enum class ParamId {
  kTest128,  // 128-bit p: fast, for tests only
  kSec256,
  kSec512,
  kSec1024,
  kSec2048,
};

struct GroupParams {
  Bigint p;  // safe prime, p = 2q + 1
  Bigint q;  // prime group order
  Bigint g;  // generator of the order-q subgroup (a quadratic residue != 1)

  /// Embedded, pre-generated parameter set.
  static GroupParams named(ParamId id);

  /// Generates a fresh safe-prime group with p of `p_bits` bits.
  /// Expensive for large sizes; prefer the embedded sets.
  static GroupParams generate(Rng& rng, std::size_t p_bits);

  /// Full consistency check: p, q prime, p = 2q+1, g a generator of the
  /// QR subgroup. Throws ContractError on failure.
  void validate() const;
};

}  // namespace dfky
