// Elliptic-curve arithmetic over prime fields (short Weierstrass form
// y^2 = x^3 + ax + b), affine coordinates.
//
// The paper (Sect. 3) allows instantiating the scheme's group 𝒢 either as
// the order-q subgroup of Z_p^* or as "the (additive) group of points of an
// elliptic curve over a finite field". This module supplies the latter; the
// Group facade in group/element.h dispatches between the two backends.
//
// Embedded curves (secp256k1, NIST P-256) both have prime order and
// cofactor 1, so every finite point on the curve generates the full group —
// membership testing is an on-curve check.
#pragma once

#include "bigint/bigint.h"

namespace dfky {

struct CurveSpec {
  Bigint p;   // field prime (p = 3 mod 4 for both embedded curves)
  Bigint a;   // curve coefficient a
  Bigint b;   // curve coefficient b
  Bigint q;   // prime group order (cofactor 1)
  Bigint gx;  // base point
  Bigint gy;

  static CurveSpec secp256k1();
  static CurveSpec p256();

  /// Checks p, q prime, base point on curve and of order q.
  /// Throws ContractError on failure.
  void validate() const;

  friend bool operator==(const CurveSpec& l, const CurveSpec& r) {
    return l.p == r.p && l.a == r.a && l.b == r.b && l.q == r.q &&
           l.gx == r.gx && l.gy == r.gy;
  }
};

struct EcPoint {
  bool infinity = true;
  Bigint x;
  Bigint y;

  static EcPoint at_infinity() { return EcPoint{}; }
  static EcPoint affine(Bigint px, Bigint py) {
    return EcPoint{false, std::move(px), std::move(py)};
  }

  friend bool operator==(const EcPoint& l, const EcPoint& r) {
    if (l.infinity || r.infinity) return l.infinity == r.infinity;
    return l.x == r.x && l.y == r.y;
  }
};

bool ec_on_curve(const CurveSpec& c, const EcPoint& pt);
EcPoint ec_neg(const CurveSpec& c, const EcPoint& pt);
EcPoint ec_add(const CurveSpec& c, const EcPoint& l, const EcPoint& r);
EcPoint ec_double(const CurveSpec& c, const EcPoint& pt);
/// Scalar multiplication k * pt (k may be any integer; reduced mod q).
EcPoint ec_mul(const CurveSpec& c, const EcPoint& pt, const Bigint& k);

}  // namespace dfky
