// Fixed-base exponentiation with precomputed windowed tables.
//
// A content provider encrypts many broadcasts under the same public key, so
// the bases (g, g', y, h_1..h_v) are fixed between Remove-user operations.
// Precomputing radix-2^w digit tables turns each exponentiation into
// ~ceil(|q| / w) multiplications with no squarings. The Encryptor wrapper
// applies this to the scheme's Encryption algorithm; the ablation benchmark
// (bench_encdec) quantifies the speedup.
#pragma once

#include "core/ciphertext.h"
#include "group/element.h"

namespace dfky {

class FixedBaseTable {
 public:
  /// Precomputes tables for `base` covering exponents below the group
  /// order. `window_bits` in [1, 8].
  FixedBaseTable(const Group& group, const Gelt& base,
                 std::size_t window_bits = 4);

  /// base^e (e reduced mod q).
  Gelt pow(const Group& group, const Bigint& e) const;

  std::size_t window_bits() const { return window_bits_; }
  /// Total precomputed elements (memory footprint indicator).
  std::size_t table_size() const;

 private:
  std::size_t window_bits_;
  // tables_[i][d] = base^(d << (i * window_bits)), d in [1, 2^w).
  std::vector<std::vector<Gelt>> tables_;
};

/// Encryption context bound to one public key: precomputes fixed-base
/// tables for every base in PK and produces ciphertexts identical in
/// distribution to dfky::encrypt.
class Encryptor {
 public:
  Encryptor(SystemParams sp, PublicKey pk, std::size_t window_bits = 4);

  const PublicKey& public_key() const { return pk_; }

  Ciphertext encrypt(const Gelt& m, Rng& rng) const;

 private:
  SystemParams sp_;
  PublicKey pk_;
  FixedBaseTable g_table_;
  FixedBaseTable g2_table_;
  FixedBaseTable y_table_;
  std::vector<FixedBaseTable> slot_tables_;
};

}  // namespace dfky
