#include "group/params.h"

namespace dfky {

namespace {

struct Embedded {
  const char* p;
  const char* q;
  const char* g;
};

// Safe primes generated once with GMP (deterministic seeds); see
// DESIGN.md Sect. 5. All values hexadecimal.
constexpr Embedded kTest128Params = {
    "faa45b4ad6056503fbcfe237234b0903",
    "7d522da56b02b281fde7f11b91a58481",
    "277804bb82c7fab2aaaced71b0eef524"};

constexpr Embedded kSec256Params = {
    "c7c4cb344f9b56ff5cd0a66f7c8e8ea21480921b8d5a2eca991587316e296c17",
    "63e2659a27cdab7fae685337be4747510a40490dc6ad17654c8ac398b714b60b",
    "c12c4cfea3c589b24dcc597db460890259fe145e4f833aaf0c60dd29b3236884"};

constexpr Embedded kSec512Params = {
    "e1cdd12096e646cefdad161138374d5fb3d511a1468df256af3767ad985cf51d"
    "47616b59ce6ecc4b51278f08023fe30517938aece9acf0217efa55988fcc2a5f",
    "70e6e8904b7323677ed68b089c1ba6afd9ea88d0a346f92b579bb3d6cc2e7a8e"
    "a3b0b5ace7376625a893c784011ff1828bc9c57674d67810bf7d2acc47e6152f",
    "891ab242d41b7fdbe1eacd323175e5ac0ea6055d2b1c9a9115652d794ea4c344"
    "3ae05e8745d3d355ec6f84fcf470c640b84725c3c1d1a05bf68f34e23ae4fe9f"};

constexpr Embedded kSec1024Params = {
    "e91a3c70131b1cf4d23b317ee35f6ffcdb231952514ff82a0325c1a0c81c8436"
    "15958634ce80c4c31b48a38830a372e3d92e70bdf2f9c7f1b291b01eee8ad0c1"
    "01dc4fdb4fb07fd173f5275dd55b6175fac8c28b568720b6d84299c78cb92012"
    "b3fe1e0a3767e8749c5f787caf882574311c2dc2db309069e10a0afa937c0837",
    "748d1e38098d8e7a691d98bf71afb7fe6d918ca928a7fc150192e0d0640e421b"
    "0acac31a674062618da451c41851b971ec97385ef97ce3f8d948d80f77456860"
    "80ee27eda7d83fe8b9fa93aeeaadb0bafd646145ab43905b6c214ce3c65c9009"
    "59ff0f051bb3f43a4e2fbc3e57c412ba188e16e16d984834f085057d49be041b",
    "685af0596ecd072d213a3cfc0c8dc057028f0dd73f1b16cefa75b8458832e670"
    "8b77c28fea155910a492edfa5599dced8e85c384545eff00dd6bdd97a28efad6"
    "0e4532b6d9733a636e7bef7a031c6aa6150acf71c66395a8b83a2b580c8cf7c7"
    "dde665bf25dcd8a3b0c07d64516cfe08e695ef09a97cfd94178dc88a1c08f1d"};

constexpr Embedded kSec2048Params = {
    "ff1455267c778363cf6c8e11eab2ca71505385f26b754a2de9eb82d18f76f60c"
    "2a2e56a5d18ca78dfd350f55b565f9c8abe0fd1adc76ce70f3de6de4c45c964e"
    "cd2bdd3fd0435219bd03b997bc5b24069eeca2bc2f2f342613f1ace75c2bdd79"
    "0be2d7a4494730a96c200957cf7821529ca06190bfffb7137808f4028fe2d8f9"
    "484359d814cfb9478ded7762b521220a8dd8a4682041e2304dedebea1ae836d0"
    "2c251fe4e2b741e96a4fe8c008df037acb20b6fa93965086a4afbb33b74a846d"
    "0426102946de94c2b396b26bb2a48b620d2881c6d2a54ab4ae8e3bbcb3b08a78"
    "a2fa1830e97c82e25d01ea1809694ea4abb28bc3e8b32f23ef5201b2899ae683",
    "7f8a2a933e3bc1b1e7b64708f5596538a829c2f935baa516f4f5c168c7bb7b06"
    "15172b52e8c653c6fe9a87aadab2fce455f07e8d6e3b673879ef36f2622e4b27"
    "6695ee9fe821a90cde81dccbde2d92034f76515e17979a1309f8d673ae15eebc"
    "85f16bd224a39854b61004abe7bc10a94e5030c85fffdb89bc047a0147f16c7c"
    "a421acec0a67dca3c6f6bbb15a90910546ec52341020f11826f6f5f50d741b68"
    "16128ff2715ba0f4b527f460046f81bd65905b7d49cb28435257dd99dba54236"
    "82130814a36f4a6159cb5935d95245b1069440e36952a55a57471dde59d8453c"
    "517d0c1874be41712e80f50c04b4a75255d945e1f4599791f7a900d944cd7341",
    "8cbb56ff4091691a2348ce20359a3f2be0638cfe2825c27074414dff4de6706d"
    "9637887e6ed790f540ee9c8af809c933895d9cfa527bd0f6c85d11cb0eff99e0"
    "c0dfa6a3af4881e0297329c7016486e84a3e362227ba56bf5e763beefdd48313"
    "0d32134e91f228509b500240442bff7773d1a412775bab7d2d8a3205f24f652e"
    "78b6b4f01e64d2f1ce4b56c658dd5178c4372f5076a51ebff29567ca8b062f4d"
    "0a7e1ec2cace90a1116d8436bae565888b8317375e8f32c52e81257dcdb9c046"
    "2c1a4cdaf16c1a119de5b0d12ca8b47156dece105db4a0d621c5da029baab46c"
    "dce91ba7634340f61e04ccd5d058e9d9b3f82c5f0feafde0ee687df17a8dc189"};

GroupParams from_embedded(const Embedded& e) {
  return GroupParams{Bigint::from_hex(e.p), Bigint::from_hex(e.q),
                     Bigint::from_hex(e.g)};
}

}  // namespace

GroupParams GroupParams::named(ParamId id) {
  switch (id) {
    case ParamId::kTest128:
      return from_embedded(kTest128Params);
    case ParamId::kSec256:
      return from_embedded(kSec256Params);
    case ParamId::kSec512:
      return from_embedded(kSec512Params);
    case ParamId::kSec1024:
      return from_embedded(kSec1024Params);
    case ParamId::kSec2048:
      return from_embedded(kSec2048Params);
  }
  throw ContractError("GroupParams::named: unknown id");
}

GroupParams GroupParams::generate(Rng& rng, std::size_t p_bits) {
  require(p_bits >= 16, "GroupParams::generate: p_bits too small");
  GroupParams out;
  while (true) {
    Bigint q = rng.uniform_bits(p_bits - 1);
    // Make odd.
    if (!q.is_odd()) q += Bigint(1);
    q = q.next_prime();
    const Bigint p = (q << 1) + Bigint(1);
    if (q.bit_length() != p_bits - 1) continue;
    if (!p.probab_prime(32) || !q.probab_prime(32)) continue;
    out.p = p;
    out.q = q;
    break;
  }
  // Generator of the QR subgroup: square of a random unit (and != 1).
  while (true) {
    const Bigint h = rng.uniform_nonzero_below(out.p);
    const Bigint g = (h * h).mod(out.p);
    if (!g.is_one()) {
      out.g = g;
      break;
    }
  }
  return out;
}

void GroupParams::validate() const {
  require(p.probab_prime(24), "GroupParams: p not prime");
  require(q.probab_prime(24), "GroupParams: q not prime");
  require(p == (q << 1) + Bigint(1), "GroupParams: p != 2q + 1");
  require(!g.is_one() && g.sign() > 0 && g < p, "GroupParams: bad generator");
  require(Bigint::powm(g, q, p).is_one(),
          "GroupParams: generator not of order q");
}

}  // namespace dfky
