// Group facade and strongly-typed group elements.
//
// The paper instantiates 𝒢 either as the order-q subgroup of quadratic
// residues of Z_p^* (the construction it details, Sect. 3) or as "the
// (additive) group of points of an elliptic curve over a finite field".
// Group supports both backends behind one multiplicative-notation API; all
// higher layers (scheme, tracing, signatures) are backend-agnostic.
//
// A `Gelt` is either a residue mod p (Schnorr backend) or an affine point /
// point at infinity (EC backend). Elements of different groups cannot be
// mixed silently — every operation goes through a Group context and the
// membership checks reject foreign representations.
#pragma once

#include <optional>
#include <vector>

#include "field/zq.h"
#include "group/curve.h"
#include "group/params.h"

namespace dfky {

class Gelt {
 public:
  /// Placeholder identity for the Z_p^* backend. (EC code never produces
  /// scalar-kind elements; use Group::one() for a backend-correct identity.)
  Gelt() : kind_(Kind::kScalar), a_(1) {}
  /// Z_p^* residue.
  explicit Gelt(Bigint v) : kind_(Kind::kScalar), a_(std::move(v)) {}

  static Gelt point(Bigint x, Bigint y) {
    Gelt e;
    e.kind_ = Kind::kPoint;
    e.a_ = std::move(x);
    e.b_ = std::move(y);
    return e;
  }
  static Gelt infinity() {
    Gelt e;
    e.kind_ = Kind::kInfinity;
    e.a_ = Bigint(0);
    return e;
  }

  bool is_scalar() const { return kind_ == Kind::kScalar; }
  bool is_point() const { return kind_ == Kind::kPoint; }
  bool is_infinity() const { return kind_ == Kind::kInfinity; }

  /// The residue (Z_p^* backend only).
  const Bigint& value() const {
    require(is_scalar(), "Gelt::value: not a residue element");
    return a_;
  }
  const Bigint& px() const {
    require(is_point(), "Gelt::px: not an affine point");
    return a_;
  }
  const Bigint& py() const {
    require(is_point(), "Gelt::py: not an affine point");
    return b_;
  }

  friend bool operator==(const Gelt& l, const Gelt& r) {
    return l.kind_ == r.kind_ && l.a_ == r.a_ && l.b_ == r.b_;
  }

 private:
  enum class Kind : std::uint8_t { kScalar, kPoint, kInfinity };

  Kind kind_;
  Bigint a_;
  Bigint b_;
};

class Group {
 public:
  /// Z_p^* subgroup backend (safe prime p = 2q + 1).
  explicit Group(GroupParams params);
  /// Elliptic-curve backend (prime order, cofactor 1).
  explicit Group(CurveSpec curve);

  bool is_elliptic() const { return curve_.has_value(); }
  /// Backend parameters; each accessor requires the matching backend.
  const GroupParams& params() const;
  const CurveSpec& curve() const;

  /// Field prime (modulus p / curve field prime).
  const Bigint& p() const;
  /// Prime group order q.
  const Bigint& order() const { return order_; }
  /// Exponent field Z_q.
  const Zq& zq() const { return zq_; }

  Gelt generator() const;
  Gelt one() const;

  Gelt mul(const Gelt& a, const Gelt& b) const;
  Gelt div(const Gelt& a, const Gelt& b) const;
  Gelt inv(const Gelt& a) const;
  /// a^e for any integer exponent (reduced mod q).
  Gelt pow(const Gelt& a, const Bigint& e) const;
  /// g^e for the canonical generator.
  Gelt pow_g(const Bigint& e) const { return pow(generator(), e); }

  /// Full membership test (subgroup membership / on-curve).
  bool is_element(const Gelt& a) const;
  /// Validates and wraps a raw residue (Z_p^* backend only).
  Gelt element_from(Bigint raw) const;

  /// Uniformly random group element.
  Gelt random_element(Rng& rng) const;
  /// Uniformly random exponent in [0, q).
  Bigint random_exponent(Rng& rng) const { return rng.uniform_below(order_); }

  /// Serialized size of one element (fixed width; see serial/codec.h).
  std::size_t element_size() const;

  friend bool operator==(const Group& a, const Group& b);

 private:
  std::optional<GroupParams> params_;
  std::optional<CurveSpec> curve_;
  Bigint order_;
  Zq zq_;
};

/// Simultaneous multi-exponentiation: prod_i bases[i]^exps[i]
/// (interleaved square-and-multiply, one shared squaring chain).
Gelt multiexp(const Group& group, std::span<const Gelt> bases,
              std::span<const Bigint> exps);

}  // namespace dfky
