#include "group/encoding.h"

#include "field/fp.h"

namespace dfky {

namespace {

constexpr unsigned long kKoblitzBits = 16;

Gelt encode_koblitz(const CurveSpec& c, const Bigint& a) {
  const Bigint base = a << kKoblitzBits;
  for (long i = 0; i < (1L << kKoblitzBits); ++i) {
    const Bigint x = base + Bigint(i);
    if (x >= c.p) break;
    const Bigint rhs = (x * x * x + c.a * x + c.b).mod(c.p);
    if (rhs.is_zero() || is_quadratic_residue(rhs, c.p)) {
      return Gelt::point(x, sqrt_mod(rhs, c.p));
    }
  }
  throw MathError("encode_to_group: no curve point in padding budget");
}

}  // namespace

Bigint encode_capacity(const Group& group) {
  if (group.is_elliptic()) return group.order() >> kKoblitzBits;
  return group.order();
}

Gelt encode_to_group(const Group& group, const Bigint& a) {
  require(a.sign() >= 0 && a < encode_capacity(group),
          "encode_to_group: value out of range");
  if (group.is_elliptic()) return encode_koblitz(group.curve(), a);
  const Bigint a1 = a + Bigint(1);  // in [1, q], nonzero mod p
  return Gelt((a1 * a1).mod(group.p()));
}

Bigint decode_from_group(const Group& group, const Gelt& e) {
  if (!group.is_element(e)) {
    throw DecodeError("decode_from_group: not a group element");
  }
  if (group.is_elliptic()) {
    if (e.is_infinity()) {
      throw DecodeError("decode_from_group: infinity is not an encoding");
    }
    const Bigint a = e.px() >> kKoblitzBits;
    if (a >= encode_capacity(group)) {
      throw DecodeError("decode_from_group: recovered value out of range");
    }
    return a;
  }
  // Both square roots of e are a+1 and p-(a+1); since a+1 <= q = (p-1)/2,
  // the encoded value corresponds to the smaller root.
  Bigint root;
  try {
    root = min_sqrt_mod(e.value(), group.p());
  } catch (const MathError&) {
    throw DecodeError("decode_from_group: element has no square root");
  }
  if (root.is_zero()) throw DecodeError("decode_from_group: zero root");
  const Bigint a = root - Bigint(1);
  if (a >= group.order()) {
    throw DecodeError("decode_from_group: recovered value out of range");
  }
  return a;
}

}  // namespace dfky
