#include "group/curve.h"

namespace dfky {

CurveSpec CurveSpec::secp256k1() {
  CurveSpec c;
  c.p = Bigint::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  c.a = Bigint(0);
  c.b = Bigint(7);
  c.q = Bigint::from_hex(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  c.gx = Bigint::from_hex(
      "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  c.gy = Bigint::from_hex(
      "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
  return c;
}

CurveSpec CurveSpec::p256() {
  CurveSpec c;
  c.p = Bigint::from_hex(
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  c.a = c.p - Bigint(3);
  c.b = Bigint::from_hex(
      "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
  c.q = Bigint::from_hex(
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  c.gx = Bigint::from_hex(
      "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
  c.gy = Bigint::from_hex(
      "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
  return c;
}

void CurveSpec::validate() const {
  require(p.probab_prime(24), "CurveSpec: field prime not prime");
  require(q.probab_prime(24), "CurveSpec: group order not prime");
  const EcPoint g = EcPoint::affine(gx, gy);
  require(ec_on_curve(*this, g), "CurveSpec: base point not on curve");
  require(ec_mul(*this, g, q).infinity,
          "CurveSpec: base point order is not q");
}

bool ec_on_curve(const CurveSpec& c, const EcPoint& pt) {
  if (pt.infinity) return true;
  if (pt.x.sign() < 0 || pt.x >= c.p || pt.y.sign() < 0 || pt.y >= c.p) {
    return false;
  }
  // y^2 == x^3 + a x + b (mod p)
  const Bigint lhs = (pt.y * pt.y).mod(c.p);
  const Bigint rhs = (pt.x * pt.x * pt.x + c.a * pt.x + c.b).mod(c.p);
  return lhs == rhs;
}

EcPoint ec_neg(const CurveSpec& c, const EcPoint& pt) {
  if (pt.infinity) return pt;
  return EcPoint::affine(pt.x, (-pt.y).mod(c.p));
}

EcPoint ec_double(const CurveSpec& c, const EcPoint& pt) {
  if (pt.infinity) return pt;
  if (pt.y.is_zero()) return EcPoint::at_infinity();
  // lambda = (3 x^2 + a) / (2 y)
  const Bigint num = (Bigint(3) * pt.x * pt.x + c.a).mod(c.p);
  const Bigint den = Bigint::invm((Bigint(2) * pt.y).mod(c.p), c.p);
  const Bigint lambda = (num * den).mod(c.p);
  const Bigint x3 = (lambda * lambda - pt.x - pt.x).mod(c.p);
  const Bigint y3 = (lambda * (pt.x - x3) - pt.y).mod(c.p);
  return EcPoint::affine(x3, y3);
}

EcPoint ec_add(const CurveSpec& c, const EcPoint& l, const EcPoint& r) {
  if (l.infinity) return r;
  if (r.infinity) return l;
  if (l.x == r.x) {
    if (l.y == r.y) return ec_double(c, l);
    return EcPoint::at_infinity();  // P + (-P)
  }
  const Bigint num = (r.y - l.y).mod(c.p);
  const Bigint den = Bigint::invm((r.x - l.x).mod(c.p), c.p);
  const Bigint lambda = (num * den).mod(c.p);
  const Bigint x3 = (lambda * lambda - l.x - r.x).mod(c.p);
  const Bigint y3 = (lambda * (l.x - x3) - l.y).mod(c.p);
  return EcPoint::affine(x3, y3);
}

EcPoint ec_mul(const CurveSpec& c, const EcPoint& pt, const Bigint& k) {
  const Bigint e = k.mod(c.q);
  EcPoint acc = EcPoint::at_infinity();
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    acc = ec_double(c, acc);
    if (e.bit(i)) acc = ec_add(c, acc, pt);
  }
  return acc;
}

}  // namespace dfky
