// Invertible message encoding enc : [0, capacity) -> 𝒢.
//
// Z_p^* backend (the paper's Sect. 4 construction): enc(a) = (a+1)^2 mod p,
// a quadratic residue, inverted via the smaller square root; capacity is the
// full exponent range q.
//
// Elliptic-curve backend: Koblitz padding — x = a * 2^16 + i for the
// smallest i that puts x on the curve; capacity is q >> 16. The New-period
// plain mode needs full-range encoding and is therefore only available on
// the Z_p^* backend (the hybrid mode of the paper's Remark works on both).
#pragma once

#include "group/element.h"

namespace dfky {

/// Exclusive upper bound on encodable values for this group.
Bigint encode_capacity(const Group& group);

/// Encodes a in [0, capacity) as a group element. Throws ContractError if a
/// is out of range; MathError in the (cryptographically negligible) event
/// that no curve point exists within the padding budget.
Gelt encode_to_group(const Group& group, const Bigint& a);

/// Inverts encode_to_group. Throws DecodeError if `e` is not a valid
/// encoding (not in the group, or the recovered value is out of range).
Bigint decode_from_group(const Group& group, const Gelt& e);

}  // namespace dfky
