#include "group/fixed_base.h"

#include "obs/metrics.h"

namespace dfky {

FixedBaseTable::FixedBaseTable(const Group& group, const Gelt& base,
                               std::size_t window_bits)
    : window_bits_(window_bits) {
  require(window_bits >= 1 && window_bits <= 8,
          "FixedBaseTable: window_bits must be in [1, 8]");
  DFKY_OBS_TIMER(obs_span, "dfky_fixedbase_precompute_ns");
  const std::size_t digits =
      (group.order().bit_length() + window_bits - 1) / window_bits;
  const std::size_t radix = std::size_t{1} << window_bits;

  tables_.reserve(digits);
  Gelt window_base = base;  // base^(2^(i * w)) at digit i
  for (std::size_t i = 0; i < digits; ++i) {
    std::vector<Gelt> row;
    row.reserve(radix - 1);
    Gelt acc = window_base;
    for (std::size_t d = 1; d < radix; ++d) {
      row.push_back(acc);
      if (d + 1 < radix) acc = group.mul(acc, window_base);
    }
    tables_.push_back(std::move(row));
    // Advance to the next digit position: square w times.
    window_base = group.mul(acc, window_base);  // == base^(2^w * 2^(i*w))
  }
}

Gelt FixedBaseTable::pow(const Group& group, const Bigint& e) const {
  DFKY_OBS(static obs::Counter& c = obs::counter("dfky_fixedbase_pow_total");
           c.inc(););
  const Bigint exp = e.mod(group.order());
  Gelt acc = group.one();
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i * window_bits_ < bits; ++i) {
    std::size_t digit = 0;
    for (std::size_t b = 0; b < window_bits_; ++b) {
      if (exp.bit(i * window_bits_ + b)) digit |= std::size_t{1} << b;
    }
    if (digit != 0) {
      require(i < tables_.size(), "FixedBaseTable: exponent too large");
      acc = group.mul(acc, tables_[i][digit - 1]);
    }
  }
  return acc;
}

std::size_t FixedBaseTable::table_size() const {
  std::size_t total = 0;
  for (const auto& row : tables_) total += row.size();
  return total;
}

Encryptor::Encryptor(SystemParams sp, PublicKey pk, std::size_t window_bits)
    : sp_(std::move(sp)),
      pk_(std::move(pk)),
      g_table_(sp_.group, pk_.g, window_bits),
      g2_table_(sp_.group, pk_.g2, window_bits),
      y_table_(sp_.group, pk_.y, window_bits) {
  slot_tables_.reserve(pk_.slots.size());
  for (const PkSlot& s : pk_.slots) {
    slot_tables_.emplace_back(sp_.group, s.h, window_bits);
  }
}

Ciphertext Encryptor::encrypt(const Gelt& m, Rng& rng) const {
  require(sp_.group.is_element(m), "Encryptor: message not a group element");
  DFKY_OBS_TIMER(obs_span, "dfky_encrypt_ns", {{"path", "fixed_base"}});
  DFKY_OBS(static obs::Counter& c =
               obs::counter("dfky_encrypt_total", {{"path", "fixed_base"}});
           c.inc(););
  const Bigint r = sp_.group.random_exponent(rng);
  Ciphertext ct;
  ct.period = pk_.period;
  ct.u = g_table_.pow(sp_.group, r);
  ct.u2 = g2_table_.pow(sp_.group, r);
  ct.w = sp_.group.mul(y_table_.pow(sp_.group, r), m);
  ct.slots.reserve(pk_.slots.size());
  for (std::size_t l = 0; l < pk_.slots.size(); ++l) {
    ct.slots.push_back(
        CtSlot{pk_.slots[l].z, slot_tables_[l].pow(sp_.group, r)});
  }
  return ct;
}

}  // namespace dfky
