// Build identity: which binary produced this scrape / BENCH json?
//
// The version and git describe are baked in at configure time (top-level
// CMakeLists); sanitizer flags and the DFKY_OBS state come from the same
// build options that shaped the binary. Exposed two ways:
//
//   * publish_build_info() sets a constant `dfky_build_info{...} 1` gauge
//     (the standard Prometheus build-info idiom), so every /metrics
//     scrape and --metrics-out snapshot names the binary under test.
//   * benchjson::Report embeds build_info() as a "build" object in every
//     BENCH_*.json, so baseline diffs can tell a sanitizer build from a
//     release build before comparing numbers.
#pragma once

#include <string>

namespace dfky {

struct BuildInfo {
  std::string version;    // project version (DFKY_VERSION)
  std::string git;        // `git describe --always --dirty`, or "unknown"
  std::string sanitizer;  // "none" | "asan-ubsan" | "tsan"
  bool obs = false;       // DFKY_OBS state of this binary
};

BuildInfo build_info();

/// Registers the dfky_build_info gauge (value 1, identity in the labels).
/// No-op when the obs layer is compiled out.
void publish_build_info();

}  // namespace dfky
