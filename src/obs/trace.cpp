#include "obs/trace.h"

#if DFKY_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace dfky::obs {
inline namespace on {
namespace {

std::atomic<std::uint64_t> g_next_id{1};
std::atomic<bool> g_tracing{true};
std::atomic<std::uint64_t> g_slow_threshold_ns{10ull * 1000 * 1000};

thread_local TraceContext* t_current = nullptr;

/// One ring stripe: a fixed circular buffer behind its own mutex. Traces
/// are striped by id, so concurrent completions mostly hit distinct
/// stripes and the push cost stays one short critical section.
struct RingStripe {
  std::mutex mu;
  std::vector<TraceContext> slots;  // lazily grown up to kTraceRingPerStripe
  std::size_t next = 0;             // slot overwritten by the next push
};

RingStripe* ring() {
  static RingStripe* r = new RingStripe[kTraceRingStripes];
  return r;
}

/// Per-verb slow log: two half-windows of the K slowest traces. Rotation
/// happens on insert, so a burst of slow requests ages out after at most
/// one full window with no background thread.
struct VerbSlow {
  std::vector<TraceContext> cur, prev;  // sorted slowest-first, size <= K
  std::uint64_t cur_start_ns = 0;
};

struct SlowLog {
  std::mutex mu;
  std::map<std::string, VerbSlow> by_verb;
};

SlowLog& slow_log() {
  static SlowLog* s = new SlowLog;
  return *s;
}

void slow_insert(VerbSlow& vs, const TraceContext& t, std::uint64_t now) {
  constexpr std::uint64_t half = kSlowWindowNs / 2;
  if (vs.cur_start_ns == 0) vs.cur_start_ns = now;
  if (now - vs.cur_start_ns >= half) {
    // Rotate; if more than a whole window elapsed, the old half is stale
    // too.
    vs.prev = (now - vs.cur_start_ns >= kSlowWindowNs)
                  ? std::vector<TraceContext>{}
                  : std::move(vs.cur);
    vs.cur.clear();
    vs.cur_start_ns = now;
  }
  auto pos = std::upper_bound(
      vs.cur.begin(), vs.cur.end(), t,
      [](const TraceContext& a, const TraceContext& b) {
        return a.total_ns > b.total_ns;
      });
  vs.cur.insert(pos, t);
  if (vs.cur.size() > kSlowTracesPerVerb) vs.cur.resize(kSlowTracesPerVerb);
}

}  // namespace

std::uint64_t TraceContext::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceContext::mark_at(SpanKind k, std::uint64_t t,
                           std::string_view label) {
  const std::uint64_t end = t > cursor_ns ? t : cursor_ns;
  spans.push_back(TraceSpan{k, cursor_ns, end, std::string(label)});
  cursor_ns = end;
}

void TraceContext::mark(SpanKind k) { mark_at(k, now_ns()); }

TraceContext* current_trace() { return t_current; }

void trace_adopt_id(std::uint64_t id) {
  if (t_current != nullptr) t_current->id = id;
}

ScopedTrace::ScopedTrace() {
  if (!g_tracing.load(std::memory_order_relaxed)) return;
  ctx_.id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  ctx_.start_ns = TraceContext::now_ns();
  ctx_.cursor_ns = ctx_.start_ns;
  ctx_.spans.reserve(8);
  prev_ = t_current;
  t_current = &ctx_;
  active_ = true;
}

ScopedTrace::~ScopedTrace() {
  if (!active_) return;
  t_current = prev_;
  ctx_.mark(SpanKind::kRespond);
  ctx_.total_ns = ctx_.cursor_ns - ctx_.start_ns;
  // Per-verb end-to-end latency; the verb set is closed (verb_label), so
  // the label cardinality is bounded.
  histogram("dfkyd_request_ns", {{"verb", ctx_.verb}}).observe(ctx_.total_ns);
  trace_record(ctx_);
}

void ScopedTrace::set_verb(std::string_view verb) {
  if (active_) ctx_.verb.assign(verb);
}

void ScopedTrace::set_outcome(bool ok) {
  if (active_) ctx_.ok = ok;
}

void trace_mark(SpanKind k) {
  if (t_current != nullptr) t_current->mark(k);
}

void set_tracing(bool on) { g_tracing.store(on, std::memory_order_relaxed); }
bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

void set_slow_threshold_ns(std::uint64_t ns) {
  g_slow_threshold_ns.store(ns, std::memory_order_relaxed);
}
std::uint64_t slow_threshold_ns() {
  return g_slow_threshold_ns.load(std::memory_order_relaxed);
}

void trace_record(const TraceContext& t) {
  RingStripe& s = ring()[t.id % kTraceRingStripes];
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.slots.size() < kTraceRingPerStripe) {
      s.slots.push_back(t);
    } else {
      s.slots[s.next] = t;
      s.next = (s.next + 1) % kTraceRingPerStripe;
    }
  }
  const std::uint64_t thr = slow_threshold_ns();
  if (thr != 0 && t.total_ns >= thr) {
    SlowLog& sl = slow_log();
    std::lock_guard<std::mutex> lk(sl.mu);
    slow_insert(sl.by_verb[t.verb], t, TraceContext::now_ns());
  }
}

std::vector<TraceContext> recent_traces(std::size_t max) {
  std::vector<TraceContext> out;
  for (std::size_t i = 0; i < kTraceRingStripes; ++i) {
    RingStripe& s = ring()[i];
    std::lock_guard<std::mutex> lk(s.mu);
    out.insert(out.end(), s.slots.begin(), s.slots.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceContext& a, const TraceContext& b) {
              return a.id < b.id;
            });
  if (max > 0 && out.size() > max)
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(max));
  return out;
}

std::vector<TraceContext> slow_traces() {
  std::vector<TraceContext> out;
  SlowLog& sl = slow_log();
  {
    std::lock_guard<std::mutex> lk(sl.mu);
    for (const auto& [verb, vs] : sl.by_verb) {
      out.insert(out.end(), vs.cur.begin(), vs.cur.end());
      out.insert(out.end(), vs.prev.begin(), vs.prev.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceContext& a, const TraceContext& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.id < b.id;
            });
  return out;
}

std::string trace_json_line(const TraceContext& t, std::string_view kind) {
  std::ostringstream os;
  os << "{\"kind\":\"" << kind << "\",\"id\":" << t.id << ",\"verb\":\""
     << json::escape(t.verb) << "\",\"outcome\":\"" << (t.ok ? "ok" : "err")
     << "\",\"total_ns\":" << t.total_ns << ",\"spans\":[";
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    const TraceSpan& sp = t.spans[i];
    if (i > 0) os << ",";
    os << "{\"span\":\"" << span_name(sp.kind) << "\"";
    if (!sp.label.empty()) os << ",\"label\":\"" << json::escape(sp.label)
                              << "\"";
    os << ",\"start_ns\":" << (sp.start_ns - t.start_ns)
       << ",\"dur_ns\":" << (sp.end_ns - sp.start_ns) << "}";
  }
  os << "]}";
  return os.str();
}

std::string trace_jsonl(std::size_t max) {
  const std::vector<TraceContext> ring_traces = recent_traces(max);
  const std::vector<TraceContext> slow = slow_traces();
  std::ostringstream os;
  os << "{\"kind\":\"trace_meta\",\"ring\":" << ring_traces.size()
     << ",\"slow\":" << slow.size()
     << ",\"slow_threshold_ns\":" << slow_threshold_ns()
     << ",\"tracing\":" << (tracing_enabled() ? "true" : "false") << "}\n";
  for (const TraceContext& t : ring_traces) os << trace_json_line(t) << "\n";
  for (const TraceContext& t : slow)
    os << trace_json_line(t, "slow_trace") << "\n";
  return os.str();
}

void trace_reset() {
  for (std::size_t i = 0; i < kTraceRingStripes; ++i) {
    RingStripe& s = ring()[i];
    std::lock_guard<std::mutex> lk(s.mu);
    s.slots.clear();
    s.next = 0;
  }
  {
    SlowLog& sl = slow_log();
    std::lock_guard<std::mutex> lk(sl.mu);
    sl.by_verb.clear();
  }
  g_next_id.store(1, std::memory_order_relaxed);
}

}  // inline namespace on
}  // namespace dfky::obs

#endif  // DFKY_OBS_ENABLED
