#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dfky::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* msg) {
    throw DecodeError("json: " + std::string(msg) + " at offset " +
                      std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value::string(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // UTF-8 encode (surrogate pairs unsupported; our writers only
            // escape control characters, which fit in one code unit).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string text(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) fail("malformed number");
    return Value::number(v);
  }

  Value array() {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value object() {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.set(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double n) {
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = n;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

Value Value::parse(std::string_view text) {
  return Parser(text).document();
}

bool Value::as_bool() const {
  if (!is_bool()) throw DecodeError("json: not a boolean");
  return bool_;
}

double Value::as_number() const {
  if (!is_number()) throw DecodeError("json: not a number");
  return num_;
}

const std::string& Value::as_string() const {
  if (!is_string()) throw DecodeError("json: not a string");
  return str_;
}

const std::vector<Value>& Value::as_array() const {
  if (!is_array()) throw DecodeError("json: not an array");
  return arr_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  if (!is_object()) throw DecodeError("json: not an object");
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::push_back(Value v) {
  if (!is_array()) throw ContractError("json: push_back on non-array");
  arr_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  if (!is_object()) throw ContractError("json: set on non-object");
  obj_.emplace_back(std::move(key), std::move(v));
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace dfky::json
