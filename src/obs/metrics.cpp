#include "obs/metrics.h"

#if DFKY_OBS_ENABLED

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common.h"
#include "obs/json.h"

namespace dfky::obs {
inline namespace on {

namespace {

/// Canonical series key: labels sorted by key so the same logical series is
/// found regardless of call-site label order, and exporters iterate the map
/// in a deterministic order.
struct SeriesKey {
  std::string name;
  Labels labels;

  bool operator<(const SeriesKey& o) const {
    if (name != o.name) return name < o.name;
    return labels < o.labels;
  }
};

SeriesKey make_key(std::string_view name, const Labels& labels) {
  SeriesKey k{std::string(name), labels};
  std::sort(k.labels.begin(), k.labels.end());
  return k;
}

std::string label_suffix(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += "\"";
  }
  out += "}";
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json::escape(k) + "\":\"" + json::escape(v) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::vector<std::uint64_t> Histogram::default_ns_bounds() {
  return {1'000ull,      4'000ull,       16'000ull,      64'000ull,
          250'000ull,    1'000'000ull,   4'000'000ull,   16'000'000ull,
          64'000'000ull, 250'000'000ull, 1'000'000'000ull};
}

std::vector<std::uint64_t> Histogram::fast_ns_bounds() {
  return {250ull,         1'000ull,       4'000ull,       16'000ull,
          64'000ull,      250'000ull,     1'000'000ull,   4'000'000ull,
          16'000'000ull,  64'000'000ull,  250'000'000ull, 1'000'000'000ull};
}

Histogram::Histogram(const std::vector<std::uint64_t>& bounds) {
  require(bounds.size() <= kMaxBounds, "histogram: too many bucket bounds");
  require(std::is_sorted(bounds.begin(), bounds.end()),
          "histogram: bucket bounds must be sorted");
  n_bounds_ = bounds.size();
  for (std::size_t i = 0; i < n_bounds_; ++i) bounds_[i] = bounds[i];
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds.assign(bounds_.begin(), bounds_.begin() + n_bounds_);
  s.cumulative_counts.resize(n_bounds_ + 1);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i <= n_bounds_; ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    s.cumulative_counts[i] = running;
  }
  // `count`/`sum` are read after the buckets; under concurrent observes the
  // snapshot is merely approximate, which is fine for reporting.
  s.count = running;
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0 || cumulative_counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::size_t i = 0;
  while (i < cumulative_counts.size() &&
         static_cast<double>(cumulative_counts[i]) < rank) {
    ++i;
  }
  if (i >= bounds.size()) {
    // +Inf bucket: report the highest finite bound (or mean when unbounded).
    if (!bounds.empty()) return static_cast<double>(bounds.back());
    return static_cast<double>(sum) / static_cast<double>(count);
  }
  const double hi = static_cast<double>(bounds[i]);
  const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
  const std::uint64_t below = i == 0 ? 0 : cumulative_counts[i - 1];
  const std::uint64_t in_bucket = cumulative_counts[i] - below;
  if (in_bucket == 0) return hi;
  const double frac = (rank - static_cast<double>(below)) /
                      static_cast<double>(in_bucket);
  return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;  // guards series creation and the event ring only
  std::map<SeriesKey, std::unique_ptr<Counter>> counters;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges;
  std::map<SeriesKey, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, std::vector<std::uint64_t>, std::less<>>
      histogram_bounds;  // per-name registration-time bounds overrides
  std::deque<Event> events;
  std::uint64_t events_dropped = 0;
};

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked singleton: cached handle references stay valid through static
  // destruction (instrumented destructors may still run late).
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[make_key(name, labels)];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.gauges[make_key(name, labels)];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels,
                                      const std::vector<std::uint64_t>& bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[make_key(name, labels)];
  if (!slot) {
    const auto reg = im.histogram_bounds.find(name);
    if (reg != im.histogram_bounds.end()) {
      slot.reset(new Histogram(reg->second));
    } else {
      slot.reset(new Histogram(bounds.empty() ? Histogram::default_ns_bounds()
                                              : bounds));
    }
  }
  return *slot;
}

void MetricsRegistry::set_default_bounds(std::string_view name,
                                         std::vector<std::uint64_t> bounds) {
  require(bounds.size() <= Histogram::kMaxBounds,
          "set_default_bounds: too many bucket bounds");
  require(std::is_sorted(bounds.begin(), bounds.end()),
          "set_default_bounds: bucket bounds must be sorted");
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.histogram_bounds[std::string(name)] = std::move(bounds);
}

void MetricsRegistry::emit(Event ev) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (im.events.size() >= kEventCapacity) {
    im.events.pop_front();
    ++im.events_dropped;
  }
  im.events.push_back(std::move(ev));
}

std::vector<Event> MetricsRegistry::events() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return {im.events.begin(), im.events.end()};
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [k, c] : im.counters) c->v_.store(0, std::memory_order_relaxed);
  for (auto& [k, g] : im.gauges) g->v_.store(0, std::memory_order_relaxed);
  for (auto& [k, h] : im.histograms) {
    for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
  }
  im.events.clear();
  im.events_dropped = 0;
}

std::string MetricsRegistry::prometheus() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream out;
  for (const auto& [key, c] : im.counters) {
    out << key.name << label_suffix(key.labels) << " " << c->value() << "\n";
  }
  if (im.events_dropped > 0) {
    out << "dfky_obs_events_dropped_total " << im.events_dropped << "\n";
  }
  for (const auto& [key, g] : im.gauges) {
    out << key.name << label_suffix(key.labels) << " " << g->value() << "\n";
  }
  for (const auto& [key, h] : im.histograms) {
    const Histogram::Snapshot s = h->snapshot();
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      Labels with_le = key.labels;
      with_le.emplace_back("le", std::to_string(s.bounds[i]));
      out << key.name << "_bucket" << label_suffix(with_le) << " "
          << s.cumulative_counts[i] << "\n";
    }
    Labels with_inf = key.labels;
    with_inf.emplace_back("le", "+Inf");
    out << key.name << "_bucket" << label_suffix(with_inf) << " " << s.count
        << "\n";
    out << key.name << "_sum" << label_suffix(key.labels) << " " << s.sum
        << "\n";
    out << key.name << "_count" << label_suffix(key.labels) << " " << s.count
        << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::jsonl() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream out;
  out << "{\"kind\":\"meta\",\"obs\":\"on\",\"schema\":\"dfky-metrics-v1\"}\n";
  for (const auto& [key, c] : im.counters) {
    out << "{\"kind\":\"counter\",\"name\":\"" << json::escape(key.name)
        << "\",\"labels\":" << labels_json(key.labels)
        << ",\"value\":" << c->value() << "}\n";
  }
  if (im.events_dropped > 0) {
    out << "{\"kind\":\"counter\",\"name\":\"dfky_obs_events_dropped_total\","
           "\"labels\":{},\"value\":"
        << im.events_dropped << "}\n";
  }
  for (const auto& [key, g] : im.gauges) {
    out << "{\"kind\":\"gauge\",\"name\":\"" << json::escape(key.name)
        << "\",\"labels\":" << labels_json(key.labels)
        << ",\"value\":" << g->value() << "}\n";
  }
  for (const auto& [key, h] : im.histograms) {
    const Histogram::Snapshot s = h->snapshot();
    out << "{\"kind\":\"histogram\",\"name\":\"" << json::escape(key.name)
        << "\",\"labels\":" << labels_json(key.labels) << ",\"bounds\":[";
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      if (i) out << ",";
      out << s.bounds[i];
    }
    out << "],\"cumulative_counts\":[";
    for (std::size_t i = 0; i < s.cumulative_counts.size(); ++i) {
      if (i) out << ",";
      out << s.cumulative_counts[i];
    }
    out << "],\"count\":" << s.count << ",\"sum\":" << s.sum << ",\"p50\":"
        << json::format_number(s.quantile(0.5))
        << ",\"p95\":" << json::format_number(s.quantile(0.95)) << "}\n";
  }
  for (const Event& ev : im.events) {
    out << "{\"kind\":\"event\",\"name\":\"" << json::escape(ev.name) << "\"";
    if (ev.period >= 0) out << ",\"period\":" << ev.period;
    if (ev.user >= 0) out << ",\"user\":" << ev.user;
    if (!ev.detail.empty()) {
      out << ",\"detail\":\"" << json::escape(ev.detail) << "\"";
    }
    if (ev.value != 0) out << ",\"value\":" << ev.value;
    out << "}\n";
  }
  return out.str();
}

}  // inline namespace on
}  // namespace dfky::obs

#endif  // DFKY_OBS_ENABLED
