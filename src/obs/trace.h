// Request tracing: per-request span timelines for the dfkyd daemon.
//
// Design (DESIGN.md Sect. 13):
//
//   * A TraceContext carries a 64-bit trace id plus a vector of
//     monotonic-clock spans. Spans *tile*: the context keeps a cursor at
//     the end of the last closed span, and `mark(kind)` closes
//     [cursor, now] under that name. By construction spans are monotone,
//     non-overlapping and gap-free, so their durations sum exactly to the
//     traced total — the property the span-sum acceptance test checks.
//   * The active trace is a thread-local pointer installed by ScopedTrace
//     (RAII over one request inside RequestHandler::handle). Code below
//     the handler (ShardRouter, GroupCommit's committer thread) reaches it
//     via current_trace(), or via the TraceContext* that rides each queued
//     group-commit ticket; the committer stamps wal_append / fsync /
//     repl_ack into blocked submitters' contexts. The submitter only reads
//     its context after the ticket's done-flag hand-off (mutex + condvar),
//     which gives the required happens-before edge.
//   * Completed traces land in a lock-striped bounded ring (8 stripes x 64
//     entries, striped by trace id, one mutex per stripe) and — when the
//     total exceeds the slow threshold — in a slow-request log retaining
//     the K slowest traces per verb over a sliding window (two rotating
//     half-windows, so an old burst ages out after at most 2x the window).
//   * With -DDFKY_OBS=OFF everything here compiles to inlined no-ops; the
//     whole of trace.cpp is preprocessed away, so OFF builds contain no
//     trace symbols at all (tests/obs_off_build_check.sh proves it).
#pragma once

#ifndef DFKY_OBS_ENABLED
#define DFKY_OBS_ENABLED 1
#endif

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dfky::obs {

/// Span taxonomy. The request path emits accept -> parse -> route ->
/// queue_wait -> wal_append -> fsync -> repl_ack -> respond; the
/// cross-shard new-period barrier replaces the commit quartet with
/// barrier_prepare / barrier_commit (DESIGN.md Sect. 13.2).
enum class SpanKind : std::uint8_t {
  kAccept = 0,
  kParse,
  kRoute,
  kQueueWait,
  kWalAppend,
  kFsync,
  kReplAck,
  kRespond,
  kBarrierPrepare,
  kBarrierCommit,
};

inline constexpr std::string_view span_name(SpanKind k) {
  switch (k) {
    case SpanKind::kAccept: return "accept";
    case SpanKind::kParse: return "parse";
    case SpanKind::kRoute: return "route";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kWalAppend: return "wal_append";
    case SpanKind::kFsync: return "fsync";
    case SpanKind::kReplAck: return "repl_ack";
    case SpanKind::kRespond: return "respond";
    case SpanKind::kBarrierPrepare: return "barrier_prepare";
    case SpanKind::kBarrierCommit: return "barrier_commit";
  }
  return "unknown";
}

/// One closed span: [start_ns, end_ns] on the steady clock. `label`
/// qualifies the kind when one name isn't enough — a repl_ack span
/// carries the follower names that held the batch at ack time.
struct TraceSpan {
  SpanKind kind = SpanKind::kAccept;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::string label;
};

#if DFKY_OBS_ENABLED

inline namespace on {

/// The timeline of one request. Cheap to move; owned by ScopedTrace on
/// the handling thread for the request's whole lifetime.
struct TraceContext {
  std::uint64_t id = 0;
  std::string verb = "unknown";
  bool ok = true;
  std::uint64_t start_ns = 0;   // steady-clock ns when the trace began
  std::uint64_t cursor_ns = 0;  // end of the last closed span
  std::uint64_t total_ns = 0;   // stamped when the trace completes
  std::vector<TraceSpan> spans;

  static std::uint64_t now_ns();

  /// Closes [cursor, max(t, cursor)] as `k` and advances the cursor.
  /// Timestamps from the past are clamped to a zero-length span rather
  /// than producing overlap. A non-empty `label` is rendered alongside
  /// the span name in the JSONL.
  void mark_at(SpanKind k, std::uint64_t t, std::string_view label = {});
  /// mark_at(k, now).
  void mark(SpanKind k);
};

/// The thread's active trace, or nullptr outside a traced request (and
/// always nullptr while tracing is runtime-disabled).
TraceContext* current_trace();

/// RAII over one request: allocates a trace id, starts the clock and
/// installs the context as the thread's current trace. At scope exit it
/// closes the final `respond` span, stamps the total and files the trace
/// into the ring and (if slow enough) the slow-request log. Inactive —
/// near-zero cost, current_trace() stays null — when set_tracing(false).
class ScopedTrace {
 public:
  ScopedTrace();
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  bool active() const { return active_; }
  void set_verb(std::string_view verb);
  void set_outcome(bool ok);

 private:
  TraceContext ctx_;
  TraceContext* prev_ = nullptr;
  bool active_ = false;
};

/// Convenience: close a span on the thread's current trace (no-op when
/// there is none).
void trace_mark(SpanKind k);

/// Replaces the current trace's id (no-op without one). Replication uses
/// it to JOIN timelines: a follower applying a repl-append that carries
/// `trace=<id>` adopts the primary's id, so the same id indexes the
/// mutation's spans on the primary AND its apply spans on the follower
/// (DESIGN.md Sect. 13/14).
void trace_adopt_id(std::uint64_t id);

/// Runtime switches. Tracing defaults to on; the slow threshold defaults
/// to 10ms and 0 disables the slow log (the ring still fills).
void set_tracing(bool on);
bool tracing_enabled();
void set_slow_threshold_ns(std::uint64_t ns);
std::uint64_t slow_threshold_ns();

constexpr std::size_t kTraceRingStripes = 8;
constexpr std::size_t kTraceRingPerStripe = 64;
constexpr std::size_t kSlowTracesPerVerb = 8;
constexpr std::uint64_t kSlowWindowNs = 60ull * 1000 * 1000 * 1000;

/// Files a completed trace (total_ns already stamped) into the ring and
/// slow log. ScopedTrace calls this; tests call it directly to inject
/// synthetic timelines.
void trace_record(const TraceContext& t);

/// Ring contents, oldest-to-newest per stripe, sorted by id across
/// stripes; `max` > 0 keeps only the `max` newest.
std::vector<TraceContext> recent_traces(std::size_t max = 0);
/// Slow-log contents (both half-windows), sorted slowest-first.
std::vector<TraceContext> slow_traces();

/// One deterministic JSON object for a trace:
///   {"kind":"trace","id":7,"verb":"add-user","outcome":"ok",
///    "total_ns":N,"spans":[{"span":"accept","start_ns":0,"dur_ns":D},..]}
/// Span starts are relative to the trace start so goldens are stable.
std::string trace_json_line(const TraceContext& t,
                            std::string_view kind = "trace");
/// JSONL dump: one meta line, then ring traces (id order, newest `max`
/// if max > 0), then slow-log traces as "slow_trace" lines.
std::string trace_jsonl(std::size_t max = 0);

/// Clears the ring, the slow log and the id counter (tests only).
void trace_reset();

}  // inline namespace on

#else  // !DFKY_OBS_ENABLED

inline namespace off {

// Stubs: empty, stateless, trivially constructible. Call sites compile to
// nothing; trace.cpp contributes no symbols to OFF builds.

struct TraceContext {
  static std::uint64_t now_ns() { return 0; }
  void mark_at(SpanKind, std::uint64_t, std::string_view = {}) const noexcept {
  }
  void mark(SpanKind) const noexcept {}
};

inline TraceContext* current_trace() { return nullptr; }

class ScopedTrace {
 public:
  ScopedTrace() noexcept = default;
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  bool active() const noexcept { return false; }
  void set_verb(std::string_view) const noexcept {}
  void set_outcome(bool) const noexcept {}
};

inline void trace_mark(SpanKind) {}
inline void trace_adopt_id(std::uint64_t) {}
inline void set_tracing(bool) {}
inline bool tracing_enabled() { return false; }
inline void set_slow_threshold_ns(std::uint64_t) {}
inline std::uint64_t slow_threshold_ns() { return 0; }

constexpr std::size_t kTraceRingStripes = 8;
constexpr std::size_t kTraceRingPerStripe = 64;
constexpr std::size_t kSlowTracesPerVerb = 8;
constexpr std::uint64_t kSlowWindowNs = 60ull * 1000 * 1000 * 1000;

inline void trace_record(const TraceContext&) {}
inline std::vector<TraceContext> recent_traces(std::size_t = 0) { return {}; }
inline std::vector<TraceContext> slow_traces() { return {}; }
inline std::string trace_json_line(const TraceContext&,
                                   std::string_view = "trace") {
  return {};
}
inline std::string trace_jsonl(std::size_t = 0) { return {}; }
inline void trace_reset() {}

}  // inline namespace off

#endif  // DFKY_OBS_ENABLED

}  // namespace dfky::obs
