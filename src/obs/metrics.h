// Observability layer: process-wide metrics registry, RAII timing spans and
// a structured event log for the DFKY lifecycle.
//
// Design goals (DESIGN.md Sect. 8):
//
//   * Hot-path cost when enabled is one relaxed atomic add (counters) or one
//     steady_clock read pair (timers). Series creation takes a mutex once;
//     call sites cache handles in function-local statics via DFKY_OBS(...).
//   * With -DDFKY_OBS=OFF the whole layer compiles down to inlined no-ops:
//     the stub types below are empty, trivially constructible and carry no
//     state, so every instrumentation statement vanishes. The two variants
//     live in distinct inline namespaces (`on` / `off`), so a translation
//     unit can even force the stubs locally (tests do) without ODR clashes.
//   * Exporters: Prometheus text exposition and a JSONL snapshot (one JSON
//     object per line: counters, gauges, histograms, then events). Ordering
//     is deterministic (sorted by name, then labels) so golden tests can
//     compare exact strings.
//
// Naming conventions: `dfky_<subsystem>_<what>_total` for counters,
// `dfky_<what>_ns` for timing histograms, labels for low-cardinality
// dimensions only (backend, msg type, outcome, path, mode).
#pragma once

#ifndef DFKY_OBS_ENABLED
#define DFKY_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if DFKY_OBS_ENABLED
#include <array>
#include <chrono>
#endif

namespace dfky::obs {

/// One `key="value"` metric dimension. Keep cardinality low: label values
/// must come from small fixed sets (an enum name, a message type), never
/// from user ids or payload data.
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// A single structured event (the longitudinal trace the tracing-scheme
/// literature needs: probe outcomes, period resets, channel faults over
/// time). Fields with no meaning for an event stay at their defaults and
/// are omitted from the JSONL form.
struct Event {
  std::string name;          // e.g. "new_period", "reset_apply"
  std::int64_t period = -1;  // scheme period, when known
  std::int64_t user = -1;    // user id, when known
  std::string detail;        // msg type / outcome / free-form context
  std::int64_t value = 0;    // optional magnitude (bytes, count)
};

#if DFKY_OBS_ENABLED

inline namespace on {

/// Monotonically increasing counter. Updates are lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins signed gauge. Updates are lock-free.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram; bucket i counts observations <= bounds[i], with
/// one implicit +Inf bucket. Updates are lock-free (linear scan over at
/// most kMaxBounds comparisons, then one relaxed add).
class Histogram {
 public:
  static constexpr std::size_t kMaxBounds = 16;

  /// Default bounds for nanosecond timings: 1us .. 4s, roughly x4 steps.
  static std::vector<std::uint64_t> default_ns_bounds();

  /// Sub-microsecond bounds for daemon request latencies: 250ns .. 1s,
  /// roughly x4 steps. Registered by dfkyd for its request histograms via
  /// MetricsRegistry::set_default_bounds.
  static std::vector<std::uint64_t> fast_ns_bounds();

  void observe(std::uint64_t x) noexcept {
    std::size_t i = 0;
    while (i < n_bounds_ && x > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  struct Snapshot {
    std::vector<std::uint64_t> bounds;            // upper bounds, no +Inf
    std::vector<std::uint64_t> cumulative_counts; // per bucket incl. +Inf
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Approximate quantile (q in [0,1]) by linear interpolation inside
    /// the containing bucket; 0 when empty.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::vector<std::uint64_t>& bounds);

  std::size_t n_bounds_ = 0;
  std::array<std::uint64_t, kMaxBounds> bounds_{};
  std::array<std::atomic<std::uint64_t>, kMaxBounds + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide registry. Series are created on first use (mutex-guarded)
/// and live for the process lifetime, so handle references never dangle;
/// `reset()` zeroes values in place rather than removing series.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       const std::vector<std::uint64_t>& bounds = {});

  /// Registers default bucket bounds for every *future* histogram series
  /// with this name (any label set), overriding both default_ns_bounds()
  /// and call-site bounds. Series created earlier keep their bounds
  /// (first registration wins per series), so call this at startup before
  /// traffic — dfkyd does, to give its latency histograms sub-microsecond
  /// resolution without recompiling call sites.
  void set_default_bounds(std::string_view name,
                          std::vector<std::uint64_t> bounds);

  /// Appends to the bounded event ring (oldest events are dropped; the
  /// drop count is itself reported as dfky_obs_events_dropped_total).
  void emit(Event ev);
  std::vector<Event> events() const;
  static constexpr std::size_t kEventCapacity = 4096;

  /// Prometheus text exposition format, deterministically ordered.
  std::string prometheus() const;
  /// JSONL snapshot: one object per metric/event line, same ordering.
  std::string jsonl() const;

  /// Zeroes every counter/gauge/histogram and clears the event ring.
  /// Registered series survive (handles cached by call sites stay valid).
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII timing span: records elapsed wall nanoseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(&h), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    h_->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

constexpr bool enabled() { return true; }

inline Counter& counter(std::string_view name, const Labels& labels = {}) {
  return MetricsRegistry::instance().counter(name, labels);
}
inline Gauge& gauge(std::string_view name, const Labels& labels = {}) {
  return MetricsRegistry::instance().gauge(name, labels);
}
inline Histogram& histogram(std::string_view name, const Labels& labels = {},
                            const std::vector<std::uint64_t>& bounds = {}) {
  return MetricsRegistry::instance().histogram(name, labels, bounds);
}
inline void event(Event ev) { MetricsRegistry::instance().emit(std::move(ev)); }

}  // inline namespace on

/// Wraps instrumentation statements; compiled out entirely when the layer
/// is disabled. Declarations inside (cached static handles) are legal:
///   DFKY_OBS(static obs::Counter& c = obs::counter("dfky_x_total"); c.inc(););
#define DFKY_OBS(...)      \
  do {                     \
    __VA_ARGS__            \
  } while (false)

/// Declares a timing span `var` over the rest of the scope, recording into
/// the named histogram (handle cached in a function-local static). Expands
/// to nothing when the layer is disabled — label arguments are not even
/// constructed.
#define DFKY_OBS_TIMER(var, ...)                                         \
  static ::dfky::obs::Histogram& var##_hist =                            \
      ::dfky::obs::histogram(__VA_ARGS__);                               \
  ::dfky::obs::ScopedTimer var(var##_hist)

#else  // !DFKY_OBS_ENABLED

inline namespace off {

// Stubs: empty, stateless, trivially constructible/destructible. Every
// member is an inline no-op, so instrumented call sites compile to nothing.

class Counter {
 public:
  void inc(std::uint64_t = 1) const noexcept {}
  std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) const noexcept {}
  void add(std::int64_t) const noexcept {}
  std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  static constexpr std::size_t kMaxBounds = 16;
  static std::vector<std::uint64_t> default_ns_bounds() { return {}; }
  static std::vector<std::uint64_t> fast_ns_bounds() { return {}; }
  void observe(std::uint64_t) const noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  std::uint64_t sum() const noexcept { return 0; }
  struct Snapshot {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> cumulative_counts;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double quantile(double) const { return 0.0; }
  };
  Snapshot snapshot() const { return {}; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance() {
    static MetricsRegistry r;
    return r;
  }
  Counter& counter(std::string_view, const Labels& = {}) { return counter_; }
  Gauge& gauge(std::string_view, const Labels& = {}) { return gauge_; }
  Histogram& histogram(std::string_view, const Labels& = {},
                       const std::vector<std::uint64_t>& = {}) {
    return histogram_;
  }
  void set_default_bounds(std::string_view, std::vector<std::uint64_t>) {}
  void emit(Event) {}
  std::vector<Event> events() const { return {}; }
  static constexpr std::size_t kEventCapacity = 4096;
  std::string prometheus() const { return {}; }
  std::string jsonl() const { return {}; }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const Histogram&) noexcept {}
};

constexpr bool enabled() { return false; }

inline Counter& counter(std::string_view name, const Labels& labels = {}) {
  return MetricsRegistry::instance().counter(name, labels);
}
inline Gauge& gauge(std::string_view name, const Labels& labels = {}) {
  return MetricsRegistry::instance().gauge(name, labels);
}
inline Histogram& histogram(std::string_view name, const Labels& labels = {},
                            const std::vector<std::uint64_t>& bounds = {}) {
  return MetricsRegistry::instance().histogram(name, labels, bounds);
}
inline void event(Event) {}

}  // inline namespace off

#define DFKY_OBS(...) \
  do {                \
  } while (false)

#define DFKY_OBS_TIMER(var, ...) \
  do {                           \
  } while (false)

#endif  // DFKY_OBS_ENABLED

}  // namespace dfky::obs
