#include "obs/build_info.h"

#include "obs/metrics.h"

#ifndef DFKY_VERSION
#define DFKY_VERSION "0.0.0"
#endif
#ifndef DFKY_GIT_DESC
#define DFKY_GIT_DESC "unknown"
#endif

namespace dfky {

BuildInfo build_info() {
  BuildInfo b;
  b.version = DFKY_VERSION;
  b.git = DFKY_GIT_DESC;
#if defined(DFKY_BUILD_TSAN)
  b.sanitizer = "tsan";
#elif defined(DFKY_BUILD_ASAN)
  b.sanitizer = "asan-ubsan";
#else
  b.sanitizer = "none";
#endif
  b.obs = obs::enabled();
  return b;
}

void publish_build_info() {
  const BuildInfo b = build_info();
  obs::gauge("dfky_build_info", {{"version", b.version},
                                 {"git", b.git},
                                 {"sanitizer", b.sanitizer},
                                 {"obs", b.obs ? "on" : "off"}})
      .set(1);
}

}  // namespace dfky
