// Minimal JSON reader/writer for the observability layer.
//
// Scope: exactly what the metrics exporters, `dfky_cli stats` and the
// BENCH_*.json schema checker need — no external dependency, strict enough
// to reject malformed files loudly (DecodeError), tolerant of whitespace.
// Numbers are held as doubles (all our values — ns, bytes, counts — fit
// well inside the 2^53 exact-integer range).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common.h"

namespace dfky::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  static Value boolean(bool b);
  static Value number(double n);
  static Value string(std::string s);
  static Value array();
  static Value object();

  /// Parses one JSON document (throws DecodeError on trailing garbage).
  static Value parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  /// Insertion-ordered key/value pairs.
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

  // -- building (used by tests) ------------------------------------------------
  void push_back(Value v);                      // arrays
  void set(std::string key, Value v);           // objects

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// JSON string escaping (quotes not included).
std::string escape(std::string_view s);

/// Canonical number formatting: integers without exponent/decimals, other
/// values via shortest round-trip-ish %.17g.
std::string format_number(double v);

}  // namespace dfky::json
