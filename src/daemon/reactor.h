// Event-driven front end for dfkyd (DESIGN.md Sect. 15).
//
// One epoll loop owns every client socket: non-blocking accepts, per-
// connection incremental line framing (LineFramer), and per-connection
// bounded write queues flushed on EPOLLOUT. Request execution happens on
// a small fixed worker pool — the reactor thread never blocks on a
// handler (mutations park inside group commit until their fsync), and no
// per-connection or per-request thread is ever spawned. This replaces
// the thread-per-connection serve path, whose ~2 threads + 2 stacks per
// idle client put a low ceiling on concurrent connections.
//
// Per-connection pipelining semantics are unchanged from the threaded
// front end (protocol.h): tagged requests run concurrently (bounded
// fan-out) and complete out of order; an untagged request waits for the
// tagged ones in flight, runs alone, and blocks later dispatch until it
// answers.
//
// Policies, all bounded and observable on /metrics:
//   * EMFILE/ENFILE on accept: a reserved fd is burned to accept the
//     connection, answer `err busy`, and close it — then accepting
//     pauses for a backoff instead of hot-spinning on a level-triggered
//     ready listen socket.
//   * Admission control: when the group-commit queues are saturated
//     (depth >= busy_queue_limit), new mutations are shed with
//     `err busy` before they are enqueued, and accepting pauses until
//     the backlog drains. Reads and repl/cluster verbs are never shed.
//   * Write backpressure: a connection that stops reading its responses
//     first has its reads paused (the kernel socket buffers then
//     backpressure the client), and is closed once its queue passes
//     write_queue_limit.
//   * Idle reaping: connections with no traffic for idle_timeout_ms are
//     closed (0 disables). Metrics scrapers get a short fixed deadline
//     and a connection cap instead — a scraper flood can no longer
//     spawn unbounded threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "daemon/protocol.h"

namespace dfky::daemon {

class FeedHub;

struct ReactorOptions {
  int listen_fd = -1;   // bound+listening unix socket (required)
  int metrics_fd = -1;  // bound+listening loopback TCP socket (-1: none)
  int wake_fd = -1;     // read end of the owner's wake pipe (required)

  std::size_t workers = 4;  // request-execution pool size (>= 1)
  /// Concurrently executing tagged requests per connection (the threaded
  /// front end's kMaxInFlight).
  std::size_t max_inflight_per_conn = 64;
  /// Parsed-but-undispatched lines buffered per connection before its
  /// reads pause.
  std::size_t max_pending_per_conn = 128;
  /// Bytes of unflushed responses before the connection is closed as
  /// unresponsive. Must exceed one max-size response line.
  std::size_t write_queue_limit = 2 * kMaxLineBytes;
  /// Close client connections idle this long, in ms (0: never).
  int idle_timeout_ms = 0;
  /// Metrics scraper read/flush deadline, ms (they get no idle grace).
  int metrics_timeout_ms = 2000;
  std::size_t max_metrics_conns = 32;
  /// Shed mutations with `err busy` while the group-commit depth is at or
  /// past this (0: never shed).
  std::size_t busy_queue_limit = 0;
  /// Accept pause after an EMFILE/ENFILE accept failure, ms.
  int accept_backoff_ms = 100;
  /// Streaming fan-out hub (DESIGN.md Sect. 16). When set, `subscribe
  /// [from-period]` upgrades a connection to a push stream: published
  /// frames are fanned out through the bounded write queues (one
  /// refcounted copy, writev from the frame rope), slow subscribers are
  /// shed by the ordinary overflow close, and missed epochs are replayed
  /// via the hub's replay source. Not owned; must outlive run().
  FeedHub* feed = nullptr;
};

class Reactor {
 public:
  struct Result {
    std::string response;   // one response line, no trailing newline
    bool shutdown = false;  // a `shutdown` request was acknowledged
  };
  /// Executes one request line; called from worker threads, must be
  /// thread-safe (RequestHandler::handle is).
  using Handler = std::function<Result(const std::string&)>;

  /// Counters/levels for tests and gauges; snapshot via stats().
  struct Stats {
    std::uint64_t accepted = 0;        // client conns accepted
    std::uint64_t emfile_rejects = 0;  // accepts shed for fd exhaustion
    std::uint64_t busy_shed = 0;       // mutations answered `err busy`
    std::uint64_t idle_reaped = 0;
    std::uint64_t overflow_closed = 0;  // write-queue overflow closes
    std::uint64_t metrics_rejects = 0;  // scrapers over the conn cap
    std::size_t open_conns = 0;         // current client conns
    std::uint64_t feed_shed = 0;      // subscribers closed as too slow
    std::uint64_t feed_replayed = 0;  // replayed epoch frames (subscribe)
    std::size_t subscribers = 0;      // current push-stream conns
  };

  /// `queue_depth` (may be empty) returns the admission-control signal —
  /// mutations submitted to group commit and not yet (N)ACKed.
  /// `on_shutdown_request` (may be empty) is invoked from the reactor
  /// thread after a handler result carried shutdown=true and its
  /// response was queued; the owner is expected to make wake_fd readable.
  Reactor(ReactorOptions opts, Handler handler,
          std::function<std::size_t()> queue_depth = {},
          std::function<void()> on_shutdown_request = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Serves until wake_fd becomes readable, then drains: accepting
  /// stops, undispatched input is dropped, every request already handed
  /// to the pool completes and has its response flushed (bounded by a
  /// drain deadline), the pool joins. Client fds are closed; the listen
  /// fds and wake_fd stay open (the owner closes them).
  void run();

  Stats stats() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace dfky::daemon
