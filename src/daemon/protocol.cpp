#include "daemon/protocol.h"

namespace dfky::daemon {

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty() || s.size() > 20) return std::nullopt;  // 2^64-1 is 20 digits
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

std::string hex_encode(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const byte b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<Bytes> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<byte>((hi << 4) | lo));
  }
  return out;
}

std::vector<std::string> split_tokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

TaggedLine split_request_tag(std::string_view line) {
  TaggedLine out;
  out.body = line;
  if (line.empty() || line[0] != '@') return out;
  const std::size_t end = line.find(' ');
  const std::string_view tag =
      line.substr(1, end == std::string_view::npos ? end : end - 1);
  const auto id = parse_u64(tag);
  if (!id) {
    out.bad_tag = true;
    return out;
  }
  out.id = *id;
  out.body = end == std::string_view::npos ? std::string_view{}
                                           : line.substr(end + 1);
  return out;
}

std::string tag_response(std::optional<std::uint64_t> id,
                         std::string response) {
  if (!id) return response;
  return "@" + std::to_string(*id) + " " + std::move(response);
}

std::string ok_response(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out = "ok";
  for (const auto& [k, v] : fields) {
    out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

std::string err_response(std::string_view message) {
  std::string out = "err ";
  for (const char c : message) out += (c == '\n' || c == '\r') ? ' ' : c;
  return out;
}

bool LineFramer::feed(std::string_view data) {
  if (overflow_) return false;
  buf_.append(data);
  return true;
}

std::optional<std::string> LineFramer::next() {
  if (overflow_) return std::nullopt;
  const std::size_t start = scan_ < pos_ ? pos_ : scan_;
  const std::size_t lf = buf_.find('\n', start);
  if (lf == std::string::npos) {
    scan_ = buf_.size();
    if (buf_.size() - pos_ > max_) overflow_ = true;
    return std::nullopt;
  }
  std::size_t end = lf;
  if (end > pos_ && buf_[end - 1] == '\r') --end;
  if (end - pos_ > max_) {
    overflow_ = true;
    return std::nullopt;
  }
  std::string line = buf_.substr(pos_, end - pos_);
  pos_ = lf + 1;
  scan_ = pos_;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = scan_ = 0;
  } else if (pos_ > (std::size_t{64} << 10)) {
    // Amortized compaction: drop the consumed prefix once it dominates.
    buf_.erase(0, pos_);
    scan_ -= pos_;
    pos_ = 0;
  }
  return line;
}

std::optional<Response> parse_response(std::string_view line) {
  Response resp;
  if (line.starts_with("@")) {
    const TaggedLine tagged = split_request_tag(line);
    if (tagged.bad_tag || !tagged.id) return std::nullopt;
    resp.id = tagged.id;
    line = tagged.body;
  }
  if (line == "ok" || line.starts_with("ok ")) {
    resp.ok = true;
    for (const std::string& tok :
         split_tokens(line.substr(2))) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) return std::nullopt;
      resp.fields[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
    return resp;
  }
  if (line.starts_with("err ")) {
    resp.error = std::string(line.substr(4));
    return resp;
  }
  return std::nullopt;
}

}  // namespace dfky::daemon
