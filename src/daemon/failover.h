// Follower-side automatic failover (DESIGN.md Sect. 14).
//
// A FailoverWatchdog runs on every armed follower. It watches the
// router's primary-contact clock (fed by repl-append/snap/truncate/hb
// ingest); once the primary has been silent past hb_timeout_ms, the
// follower waits a randomized election delay (plus capped backoff after
// failed rounds) and campaigns: it polls every peer's `repl-status` and
// promotes itself ONLY when
//
//   - no reachable peer is a primary at our term or newer, and no
//     reachable follower still hears a primary (its hb_age_ms is fresh) —
//     otherwise a partitioned candidate could elect itself while the
//     majority side is healthy;
//   - a majority of the follower set is reachable and equally starved
//     (votes = reachable stale followers + itself) — an armed primary's
//     ack needs a cluster majority, so the quorums intersect and the
//     winner holds every acknowledged record;
//   - no reachable stale peer is more caught up (higher summed
//     generation, then records, then lexicographically smaller identity
//     breaks exact ties) — the better-positioned peer is left to win.
//
// The winner adopts term = max(every term seen) + 1 — durably, via
// ShardRouter::promote(new_term), BEFORE its committers start — and the
// owner's on_promoted callback attaches a ReplicationSender to the other
// peers. A revived ex-primary then sees the higher term on its first
// exchange and fences itself (shard.h: StaleTermError).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "daemon/repl.h"

namespace dfky::daemon {

class ShardRouter;

struct FailoverOptions {
  /// This node's cluster identity — its socket path. Must be the same
  /// string the peers use in their own peer lists: exact ties in the
  /// catch-up comparison elect the lexicographically smallest identity.
  std::string self;
  /// Every OTHER cluster member (the primary included), with link
  /// factories; FollowerSpec::name must be the peer's identity.
  std::vector<FollowerSpec> peers;
  /// The primary is presumed dead after this much ingest silence. Keep it
  /// ABOVE the primary's ReplOptions::lease_ms so a primary that lost its
  /// lease has fenced itself before any follower starts campaigning.
  int hb_timeout_ms = 1000;
  /// Randomized pre-campaign delay bounds: desynchronizes candidates so
  /// one usually polls (and wins) before the others start.
  int election_min_ms = 100;
  int election_max_ms = 400;
  /// Failed campaign rounds back off exponentially up to this cap.
  int backoff_max_ms = 3000;
  /// Seeds the election-delay rng (the simulator passes its workload
  /// seed; the daemon passes system entropy).
  std::uint64_t seed = 0;
  /// Invoked from the watchdog thread right after a winning promote, with
  /// the new term — the owner starts replicating to the peers. Must not
  /// join the watchdog's thread.
  std::function<void(std::uint64_t new_term)> on_promoted;
};

class FailoverWatchdog {
 public:
  /// Exported as the dfky_watchdog_state gauge (and `health`).
  enum class State : int {
    kIdle = 0,      // constructed, thread not yet scanning
    kWatching = 1,  // primary contact is fresh
    kElecting = 2,  // silence exceeded; delaying or campaigning
    kPromoted = 3,  // this node won; watchdog is done
  };

  /// Starts the watchdog thread. `router` must outlive the watchdog.
  FailoverWatchdog(ShardRouter& router, FailoverOptions opts);
  ~FailoverWatchdog();

  FailoverWatchdog(const FailoverWatchdog&) = delete;
  FailoverWatchdog& operator=(const FailoverWatchdog&) = delete;

  /// Stops the thread; no promotion happens after this returns.
  void stop();

  State state() const { return state_.load(); }
  static const char* state_name(State s);

 private:
  enum class Round {
    kWon,           // promoted under a fresh term
    kPrimaryAlive,  // a primary (or a follower that hears one) answered
    kLost,          // a better-positioned candidate should win
    kNoQuorum,      // not enough reachable starved followers
  };

  void loop();
  Round campaign();
  void set_state(State s);
  bool stopped_wait(std::chrono::milliseconds d);  // true when stopping

  ShardRouter& router_;
  FailoverOptions opts_;
  std::mt19937_64 rng_;
  std::atomic<State> state_{State::kIdle};
  /// Contact clock fallback: treats construction time as the last contact
  /// until the router hears a real primary, so a freshly armed follower
  /// grants the primary one full timeout before campaigning.
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dfky::daemon
