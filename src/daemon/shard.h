// ShardRouter — dfkyd over N StateStore shards (DESIGN.md Sect. 11).
//
// Each shard is an independent scheme instance with its own store
// directory, exclusive LOCK, reader/writer state lock, RNG and
// group-commit committer thread; every daemon metric a shard emits
// carries a {"shard", "<k>"} label. The router owns the fan-out:
//
//   * user ids — global id = local id * N + shard, so `id % N` names the
//     shard and ids from different shards never collide. add-user places
//     round-robin; revoke partitions its ids by shard and commits per
//     shard (atomic within a shard, not across shards).
//   * new-period — a TWO-PHASE cross-shard epoch barrier: with every
//     shard's state lock held exclusively (committers sync before
//     releasing theirs, so nothing is staged), phase 1 stages each
//     shard's reset record in memory (batching mode: no I/O), phase 2
//     issues each shard's WAL append+fsync. The caller is acked only
//     after every shard's sync. A crash between the phases leaves shards
//     at mixed periods; open_shard_set rolls the laggards forward, which
//     is safe exactly because the barrier was never acked.
//   * fail-stop — any shard's sync failure (in a batch or in the
//     barrier) poisons that shard's store; the router reports fatal()
//     and invokes on_fatal once so the daemon can shut down and restart
//     into recovery.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "daemon/group_commit.h"
#include "store/store.h"

namespace dfky::daemon {

class ReplicationSender;

class ShardRouter {
 public:
  /// One fresh Rng per shard, so committer threads never serialize on a
  /// shared generator (the daemon passes SystemRng, tests a seeded one).
  using RngFactory = std::function<std::unique_ptr<Rng>(std::size_t shard)>;

  /// Takes ownership of the opened shard stores (from open_shard_set, or
  /// a single-element vector for a plain store). `on_fatal` is invoked at
  /// most once, on the first sync failure anywhere in the set.
  ///
  /// With `follower = true` the router comes up as a read-only replica:
  /// no committer threads run (the stores stay in fsync-per-mutation mode,
  /// which replica ingest requires), every mutation verb throws, and state
  /// advances only through replica_append / replica_snapshot — until
  /// promote() turns the router into an ordinary primary.
  ShardRouter(std::vector<StateStore> stores, const RngFactory& make_rng,
              std::function<void()> on_fatal = {}, bool follower = false);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t shards() const { return shards_.size(); }
  std::size_t shard_of(std::uint64_t global_id) const {
    return static_cast<std::size_t>(global_id % shards_.size());
  }
  std::uint64_t local_of(std::uint64_t global_id) const {
    return global_id / shards_.size();
  }
  std::uint64_t global_of(std::uint64_t local_id, std::size_t shard) const {
    return local_id * shards_.size() + shard;
  }

  // -- mutations (durable before they return, per the shard's committer) --------

  struct AddedUser {
    std::uint64_t global_id = 0;
    std::size_t shard = 0;
    Bytes key_file;  // ready-to-write key file (group + vk + user key)
  };
  AddedUser add_user();

  struct RevokeResult {
    std::uint64_t period = 0;  // max period across the whole set afterwards
    std::vector<Bytes> bundles;  // serialized SignedResetBundles, all shards
  };
  /// Partitions `global_ids` by shard and revokes per shard. Ids are
  /// validated against their shard by the manager; an unknown id fails
  /// that shard's sub-batch (earlier shards' revocations stand — the
  /// operation is atomic per shard, not across shards).
  RevokeResult revoke(std::span<const std::uint64_t> global_ids);

  struct NewPeriodResult {
    std::uint64_t period = 0;    // the new common epoch
    std::vector<Bytes> bundles;  // one serialized reset bundle per shard
  };
  /// The two-phase cross-shard epoch barrier. Serialized against itself;
  /// throws after a fail-stop.
  NewPeriodResult new_period_all();

  // -- reads --------------------------------------------------------------------

  struct Status {
    std::size_t shards = 0;
    std::uint64_t period = 0;  // max across shards
    std::vector<std::uint64_t> periods;  // per shard
    std::size_t active = 0, revoked = 0;             // summed
    std::size_t saturation_level = 0, saturation_limit = 0;  // summed
    std::uint64_t generation = 0;   // summed
    std::size_t wal_records = 0;    // summed
    std::uint64_t commit_batches = 0, committed = 0;  // summed
  };
  Status status() const;

  /// Raw material for the `health` verb (DESIGN.md Sect. 13.4): role and
  /// fail-stop state, per-shard poisoned/epoch/queue-depth, and — with a
  /// replication sender attached — per-follower liveness and lag (primary
  /// records minus acked records, summed across shards; a follower on a
  /// stale generation counts the primary's whole shard log as lag). The
  /// ok/degraded/fail verdict is the protocol layer's to compute.
  struct HealthReport {
    bool follower = false;
    bool fatal = false;
    std::uint64_t period = 0;                 // max across shards
    std::vector<std::uint64_t> periods;       // per shard
    std::vector<bool> poisoned;               // per shard
    std::vector<std::size_t> queue_depths;    // per shard (0 on a follower)
    struct Follower {
      std::string name;
      bool live = false;
      std::uint64_t lag_records = 0;
    };
    std::vector<Follower> followers;  // empty when no sender is attached
  };
  HealthReport health() const;

  /// Seals `payload` under shard `shard`'s public key (keys issued by a
  /// shard only open that shard's broadcasts).
  Bytes encrypt(BytesView payload, std::size_t shard);

  /// True after any shard fail-stopped (batch sync or barrier failure).
  bool fatal() const { return fatal_.load(); }

  // -- replication (DESIGN.md Sect. 12) ------------------------------------------

  /// True while this router is a read-only replica.
  bool follower() const { return follower_.load(); }

  /// Follower ingest of a primary's WAL shipment for one shard, under the
  /// shard's exclusive state lock. Returns the shard's record count after
  /// ingest — the sequence number acked back to the primary. Throws
  /// ContractError on a primary (the stream would race the committers).
  std::uint64_t replica_append(std::size_t shard, std::uint64_t gen,
                               std::uint64_t start_record, BytesView frames);
  /// Follower ingest of a shipped snapshot rotation (idempotent).
  void replica_snapshot(std::size_t shard, std::uint64_t gen, BytesView frame);

  struct ReplPosition {
    std::uint64_t generation = 0;
    std::uint64_t records = 0;
  };
  /// Per-shard durable positions (shared state lock), for repl-status.
  std::vector<ReplPosition> repl_positions() const;

  /// Turns a follower into a primary: equalizes shard epochs by rolling
  /// laggards forward (the same laggard-recovery new-periods open_shard_set
  /// issues — a kill during the old primary's phase-2 sync loop can leave a
  /// follower's shards at mixed periods), then starts the committer
  /// threads. Idempotent; serialized against the epoch barrier.
  void promote();

  /// Attaches (or detaches, with nullptr) the primary's replication
  /// sender. While attached, committers and the epoch barrier block acks
  /// on live-follower replication. Detach before destroying the sender.
  void attach_replication(ReplicationSender* repl) { repl_.store(repl); }

  // -- shutdown helpers (the daemon's teardown sequence) ------------------------

  /// Joins every shard's committer thread and returns the stores to
  /// fsync-per-mutation mode (poisoned shards skip their flush).
  void stop_commits();
  /// Final snapshot on every shard, under its exclusive state lock.
  /// Throws on the first failing shard.
  void snapshot_all();

  // -- direct shard access (tests, bench) ---------------------------------------
  StateStore& store(std::size_t shard) { return shards_[shard]->store; }
  std::shared_mutex& state_mu(std::size_t shard) {
    return shards_[shard]->state_mu;
  }

 private:
  /// Non-movable: GroupCommit and the committer thread hold references
  /// into the shard, so its address must be stable for its lifetime.
  struct Shard {
    explicit Shard(StateStore s) : store(std::move(s)) {}
    StateStore store;
    std::shared_mutex state_mu;
    std::unique_ptr<Rng> rng;
    std::mutex rng_mu;  // reads (encrypt) vs the shard's committer
    std::optional<GroupCommit> commits;
  };

  void fail_stop();  // sets fatal_, invokes on_fatal_ once
  void start_committers();
  void ensure_primary(const char* verb) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void()> on_fatal_;
  std::atomic<bool> fatal_{false};
  std::atomic<bool> follower_{false};
  std::atomic<ReplicationSender*> repl_{nullptr};
  std::atomic<std::uint64_t> next_add_{0};  // round-robin placement
  std::mutex barrier_mu_;  // serializes new_period_all (and promote)
};

}  // namespace dfky::daemon
