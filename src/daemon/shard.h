// ShardRouter — dfkyd over N StateStore shards (DESIGN.md Sect. 11).
//
// Each shard is an independent scheme instance with its own store
// directory, exclusive LOCK, reader/writer state lock, RNG and
// group-commit committer thread; every daemon metric a shard emits
// carries a {"shard", "<k>"} label. The router owns the fan-out:
//
//   * user ids — global id = local id * N + shard, so `id % N` names the
//     shard and ids from different shards never collide. add-user places
//     round-robin; revoke partitions its ids by shard and commits per
//     shard (atomic within a shard, not across shards).
//   * new-period — a TWO-PHASE cross-shard epoch barrier: with every
//     shard's state lock held exclusively (committers sync before
//     releasing theirs, so nothing is staged), phase 1 stages each
//     shard's reset record in memory (batching mode: no I/O), phase 2
//     issues each shard's WAL append+fsync. The caller is acked only
//     after every shard's sync. A crash between the phases leaves shards
//     at mixed periods; open_shard_set rolls the laggards forward, which
//     is safe exactly because the barrier was never acked.
//   * fail-stop — any shard's sync failure (in a batch or in the
//     barrier) poisons that shard's store; the router reports fatal()
//     and invokes on_fatal once so the daemon can shut down and restart
//     into recovery.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "daemon/group_commit.h"
#include "store/store.h"

namespace dfky::daemon {

class ReplicationSender;

/// A mutation (or replication shipment) arrived carrying a failover term
/// older than the one this node has adopted — the sender is a fenced
/// ex-primary (or this node is). Distinct from ContractError so the
/// protocol layer can emit the `stale-term` NACK a zombie's sender parses,
/// and so a fenced write is never confused with an ordinary refusal
/// (DESIGN.md Sect. 14).
class StaleTermError : public Error {
 public:
  explicit StaleTermError(const std::string& what) : Error(what) {}
};

class ShardRouter {
 public:
  /// One fresh Rng per shard, so committer threads never serialize on a
  /// shared generator (the daemon passes SystemRng, tests a seeded one).
  using RngFactory = std::function<std::unique_ptr<Rng>(std::size_t shard)>;

  /// Takes ownership of the opened shard stores (from open_shard_set, or
  /// a single-element vector for a plain store). `on_fatal` is invoked at
  /// most once, on the first sync failure anywhere in the set.
  ///
  /// With `follower = true` the router comes up as a read-only replica:
  /// no committer threads run (the stores stay in fsync-per-mutation mode,
  /// which replica ingest requires), every mutation verb throws, and state
  /// advances only through replica_append / replica_snapshot — until
  /// promote() turns the router into an ordinary primary.
  ShardRouter(std::vector<StateStore> stores, const RngFactory& make_rng,
              std::function<void()> on_fatal = {}, bool follower = false);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t shards() const { return shards_.size(); }
  std::size_t shard_of(std::uint64_t global_id) const {
    return static_cast<std::size_t>(global_id % shards_.size());
  }
  std::uint64_t local_of(std::uint64_t global_id) const {
    return global_id / shards_.size();
  }
  std::uint64_t global_of(std::uint64_t local_id, std::size_t shard) const {
    return local_id * shards_.size() + shard;
  }

  // -- mutations (durable before they return, per the shard's committer) --------

  struct AddedUser {
    std::uint64_t global_id = 0;
    std::size_t shard = 0;
    Bytes key_file;  // ready-to-write key file (group + vk + user key)
  };
  AddedUser add_user();

  struct RevokeResult {
    std::uint64_t period = 0;  // max period across the whole set afterwards
    std::vector<Bytes> bundles;  // serialized SignedResetBundles, all shards
  };
  /// Partitions `global_ids` by shard and revokes per shard. Ids are
  /// validated against their shard by the manager; an unknown id fails
  /// that shard's sub-batch (earlier shards' revocations stand — the
  /// operation is atomic per shard, not across shards).
  RevokeResult revoke(std::span<const std::uint64_t> global_ids);

  struct NewPeriodResult {
    std::uint64_t period = 0;    // the new common epoch
    std::vector<Bytes> bundles;  // one serialized reset bundle per shard
  };
  /// The two-phase cross-shard epoch barrier. Serialized against itself;
  /// throws after a fail-stop.
  NewPeriodResult new_period_all();

  // -- reads --------------------------------------------------------------------

  struct Status {
    std::size_t shards = 0;
    std::uint64_t period = 0;  // max across shards
    std::vector<std::uint64_t> periods;  // per shard
    std::size_t active = 0, revoked = 0;             // summed
    std::size_t saturation_level = 0, saturation_limit = 0;  // summed
    std::uint64_t generation = 0;   // summed
    std::size_t wal_records = 0;    // summed
    std::uint64_t commit_batches = 0, committed = 0;  // summed
  };
  Status status() const;

  /// Raw material for the `health` verb (DESIGN.md Sect. 13.4): role and
  /// fail-stop state, per-shard poisoned/epoch/queue-depth, and — with a
  /// replication sender attached — per-follower liveness and lag (primary
  /// records minus acked records, summed across shards; a follower on a
  /// stale generation counts the primary's whole shard log as lag). The
  /// ok/degraded/fail verdict is the protocol layer's to compute.
  struct HealthReport {
    bool follower = false;
    bool fatal = false;
    bool fenced = false;
    std::uint64_t term = 0;
    std::uint64_t period = 0;                 // max across shards
    std::vector<std::uint64_t> periods;       // per shard
    std::vector<bool> poisoned;               // per shard
    std::vector<std::size_t> queue_depths;    // per shard (0 on a follower)
    struct Follower {
      std::string name;
      bool live = false;
      std::uint64_t lag_records = 0;
    };
    std::vector<Follower> followers;  // empty when no sender is attached
  };
  HealthReport health() const;

  /// Seals `payload` under shard `shard`'s public key (keys issued by a
  /// shard only open that shard's broadcasts).
  Bytes encrypt(BytesView payload, std::size_t shard);

  /// True after any shard fail-stopped (batch sync or barrier failure).
  bool fatal() const { return fatal_.load(); }

  /// Mutations submitted across every shard's committer and not yet
  /// (N)ACKed — the reactor's admission-control signal (DESIGN.md
  /// Sect. 15). Lock-free reads of each queue's depth counter; 0 on a
  /// follower (no committers run).
  std::size_t queue_depth_total() const;

  // -- replication (DESIGN.md Sect. 12) ------------------------------------------

  /// True while this router is a read-only replica.
  bool follower() const { return follower_.load(); }

  /// Follower ingest of a primary's WAL shipment for one shard, under the
  /// shard's exclusive state lock. `term` is the sender's failover term:
  /// lower than ours NACKs with StaleTermError (a fenced zombie never
  /// feeds us), higher is adopted and persisted. Returns the shard's
  /// record count after ingest — the sequence number acked back to the
  /// primary. Throws ContractError on a primary (the stream would race
  /// the committers). A successful ingest clears the fenced flag: the
  /// node is demonstrably back on the legitimate primary's stream.
  std::uint64_t replica_append(std::size_t shard, std::uint64_t gen,
                               std::uint64_t start_record, BytesView frames,
                               std::uint64_t term);
  /// Follower ingest of a shipped snapshot rotation (idempotent). Same
  /// term handling as replica_append.
  void replica_snapshot(std::size_t shard, std::uint64_t gen, BytesView frame,
                        std::uint64_t term);
  /// Follower-side fork repair: drops shard `shard`'s WAL suffix past
  /// `records` once the retained prefix's chain tag matches
  /// `expected_tag_hex` (see StateStore::replica_truncate). Same term
  /// handling as replica_append.
  std::uint64_t replica_truncate(std::size_t shard, std::uint64_t gen,
                                 std::uint64_t records,
                                 const std::string& expected_tag_hex,
                                 std::uint64_t term);

  struct ReplPosition {
    std::uint64_t generation = 0;
    std::uint64_t records = 0;
    std::string chain_head;  // hex chain tag — divergence detection
  };
  /// Per-shard durable positions (shared state lock), for repl-status.
  std::vector<ReplPosition> repl_positions() const;

  // -- failover terms + fencing (DESIGN.md Sect. 14) ----------------------------

  /// The highest failover term this node has adopted (max across shard
  /// TERM files at open; persisted to every shard on adoption).
  std::uint64_t term() const { return term_.load(); }
  /// Durably adopts `t` on every shard (no-op unless it exceeds term()).
  void adopt_term(std::uint64_t t);
  /// Fences this node: adopts `observed_term` and refuses every further
  /// mutation with StaleTermError until it re-joins a legitimate
  /// primary's stream (replica_append under the current term clears it).
  void fence(std::uint64_t observed_term);
  bool fenced() const { return fenced_.load(); }

  /// `repl-hb <term>` ingest. On a follower: rejects a stale sender with
  /// StaleTermError, adopts a newer term, stamps primary contact. On a
  /// primary: a newer term fences this node (it is a zombie and a real
  /// primary is pinging it); the same term is a split-brain ContractError.
  void note_primary_heartbeat(std::uint64_t term);
  /// Milliseconds since the last primary contact (repl-append/snap/
  /// truncate/hb ingest), or -1 when none was ever seen. The follower
  /// watchdog's silence clock, and repl-status's `hb_age_ms` field.
  std::int64_t primary_contact_age_ms() const;
  /// Restarts the silence clock without a real contact — the watchdog
  /// stamps this after standing down to a primary it can reach but that
  /// cannot reach us, so it re-campaigns a full timeout later at the
  /// earliest.
  void stamp_primary_contact();

  struct PromoteResult {
    bool already = false;      // node was already in the requested role
    std::uint64_t term = 0;    // term in effect after the call
    std::uint64_t period = 0;  // max epoch after the call
    std::size_t rolled = 0;    // laggard new-periods issued (promote only)
  };
  /// Turns a follower into a primary: equalizes shard epochs by rolling
  /// laggards forward (the same laggard-recovery new-periods open_shard_set
  /// issues — a kill during the old primary's phase-2 sync loop can leave a
  /// follower's shards at mixed periods), then starts the committer
  /// threads. `new_term`, when set, is durably adopted before committers
  /// start (the watchdog promotes under max(seen)+1). Promoting a primary
  /// is an `already = true` no-op — distinct, not an error. Serialized
  /// against the epoch barrier.
  PromoteResult promote(std::optional<std::uint64_t> new_term = std::nullopt);
  /// The inverse: joins the committers and returns the node to read-only
  /// follower mode (replica ingest requires fsync-per-mutation stores).
  /// Demoting a follower is an `already = true` no-op. The caller must
  /// detach/stop any replication sender itself.
  PromoteResult demote();

  /// Attaches (or detaches, with nullptr) the primary's replication
  /// sender. While attached, committers and the epoch barrier block acks
  /// on live-follower replication. Shared ownership: a committer that
  /// loaded the pointer into its post_sync gate holds the sender alive
  /// through sync_shard, so the owner may detach + stop + drop its own
  /// reference while a borrower is still inside the gate.
  void attach_replication(std::shared_ptr<ReplicationSender> repl) {
    std::lock_guard lk(repl_ptr_mu_);
    repl_ = std::move(repl);
  }

  /// Borrows the attached sender (null when detached). The returned copy
  /// keeps the sender alive for the duration of the borrow even if the
  /// owner detaches concurrently.
  std::shared_ptr<ReplicationSender> replication() const {
    std::lock_guard lk(repl_ptr_mu_);
    return repl_;
  }

  // -- shutdown helpers (the daemon's teardown sequence) ------------------------

  /// Joins every shard's committer thread and returns the stores to
  /// fsync-per-mutation mode (poisoned shards skip their flush).
  void stop_commits();
  /// Final snapshot on every shard, under its exclusive state lock.
  /// Throws on the first failing shard.
  void snapshot_all();

  // -- direct shard access (tests, bench) ---------------------------------------
  StateStore& store(std::size_t shard) { return shards_[shard]->store; }
  std::shared_mutex& state_mu(std::size_t shard) {
    return shards_[shard]->state_mu;
  }
  /// Trace id of the most recent traced mutation routed to `shard` (0 when
  /// none) — stamped on repl-append shipments so the follower's apply span
  /// joins the primary's timeline (DESIGN.md Sect. 13).
  std::uint64_t last_trace_id(std::size_t shard) const {
    return shards_[shard]->last_trace_id.load(std::memory_order_relaxed);
  }

 private:
  /// Non-movable: GroupCommit and the committer thread hold references
  /// into the shard, so its address must be stable for its lifetime.
  struct Shard {
    explicit Shard(StateStore s) : store(std::move(s)) {}
    StateStore store;
    std::shared_mutex state_mu;
    std::unique_ptr<Rng> rng;
    std::mutex rng_mu;  // reads (encrypt) vs the shard's committer
    /// Atomic shared_ptr so demote() can stop and drop a live queue while
    /// a straggling mutation still holds a reference (its run() then fails
    /// with "shutting down" instead of touching freed memory). Null on a
    /// follower.
    std::atomic<std::shared_ptr<GroupCommit>> commits;
    std::atomic<std::uint64_t> last_trace_id{0};  // repl trace propagation
  };

  void fail_stop();  // sets fatal_, invokes on_fatal_ once
  void start_committers();
  void ensure_primary(const char* verb) const;
  void note_term(Shard& sh, std::uint64_t term, const char* verb);
  void stamp_trace(Shard& sh);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void()> on_fatal_;
  std::atomic<bool> fatal_{false};
  std::atomic<bool> follower_{false};
  std::atomic<bool> fenced_{false};
  std::atomic<std::uint64_t> term_{0};
  /// steady_clock ns of the last primary contact; -1 = never.
  std::atomic<std::int64_t> primary_contact_ns_{-1};
  /// Guards repl_ (a plain mutex rather than std::atomic<shared_ptr>:
  /// the borrow is a pointer copy, never held across blocking work).
  mutable std::mutex repl_ptr_mu_;
  std::shared_ptr<ReplicationSender> repl_;
  std::atomic<std::uint64_t> next_add_{0};  // round-robin placement
  std::mutex barrier_mu_;  // serializes new_period_all (and promote)
  std::mutex term_mu_;     // serializes TERM-file persistence
};

}  // namespace dfky::daemon
