#include "daemon/repl.h"

#include <algorithm>
#include <chrono>
#include <shared_mutex>

#include "daemon/protocol.h"
#include "daemon/shard.h"
#include "obs/metrics.h"

namespace dfky::daemon {

namespace {

std::uint32_t frame_be32(BytesView raw, std::size_t off) {
  return (static_cast<std::uint32_t>(raw[off]) << 24) |
         (static_cast<std::uint32_t>(raw[off + 1]) << 16) |
         (static_cast<std::uint32_t>(raw[off + 2]) << 8) |
         static_cast<std::uint32_t>(raw[off + 3]);
}

/// Splits a frames blob into whole-record chunks of at most `max_bytes`
/// (a chunk always holds at least one record). Returns {offset, records}
/// chunk boundaries; the blob is trusted (it came from our own WAL).
struct FrameChunk {
  std::size_t begin = 0, end = 0;
  std::uint64_t records = 0;
};

std::vector<FrameChunk> split_frames(BytesView frames, std::size_t max_bytes) {
  std::vector<FrameChunk> out;
  FrameChunk cur;
  std::size_t off = 0;
  while (off < frames.size()) {
    const std::size_t len = frame_be32(frames, off);
    const std::size_t end = off + kWalFrameHeaderBytes + len;
    if (cur.records > 0 && end - cur.begin > max_bytes) {
      cur.end = off;
      out.push_back(cur);
      cur = FrameChunk{off, off, 0};
    }
    ++cur.records;
    off = end;
  }
  if (cur.records > 0) {
    cur.end = off;
    out.push_back(cur);
  }
  return out;
}

std::optional<std::uint64_t> field_u64(const Response& r, const std::string& k) {
  const auto it = r.fields.find(k);
  if (it == r.fields.end()) return std::nullopt;
  return parse_u64(it->second);
}

}  // namespace

ReplicationSender::ReplicationSender(ShardRouter& router,
                                     std::vector<FollowerSpec> followers,
                                     ReplOptions opts)
    : router_(router), opts_(opts) {
  for (FollowerSpec& spec : followers) {
    auto f = std::make_unique<Follower>();
    f->spec = std::move(spec);
    f->gen.assign(router_.shards(), 0);
    f->acked.assign(router_.shards(), 0);
    followers_.push_back(std::move(f));
  }
  for (auto& f : followers_) {
    f->thread = std::thread([this, fp = f.get()] { follower_loop(*fp); });
  }
}

ReplicationSender::~ReplicationSender() { stop(); }

void ReplicationSender::stop() {
  {
    std::lock_guard lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  ack_cv_.notify_all();
  for (auto& f : followers_) {
    if (f->thread.joinable()) f->thread.join();
  }
}

bool ReplicationSender::stopping() const {
  std::lock_guard lk(mu_);
  return stop_;
}

void ReplicationSender::set_live(Follower& f, bool live) {
  {
    std::lock_guard lk(mu_);
    f.live = live;
  }
  // Dead followers stop gating acks; waiters must re-evaluate.
  ack_cv_.notify_all();
  DFKY_OBS(obs::gauge("dfkyd_repl_follower_live", {{"follower", f.spec.name}})
               .set(live ? 1 : 0););
}

void ReplicationSender::publish_lag(const std::string& follower, std::size_t k,
                                    std::uint64_t lag_frames,
                                    std::uint64_t lag_bytes,
                                    std::uint64_t acked) const {
  DFKY_OBS(const obs::Labels labels = {{"shard", std::to_string(k)},
                                       {"follower", follower}};
           obs::gauge("dfkyd_repl_lag_frames", labels)
               .set(static_cast<std::int64_t>(lag_frames));
           obs::gauge("dfkyd_repl_lag_bytes", labels)
               .set(static_cast<std::int64_t>(lag_bytes));
           obs::gauge("dfkyd_repl_acked_seq", labels)
               .set(static_cast<std::int64_t>(acked)););
  (void)follower;
  (void)k;
  (void)lag_frames;
  (void)lag_bytes;
  (void)acked;
}

bool ReplicationSender::establish(Follower& f) {
  f.link = f.spec.connect ? f.spec.connect() : nullptr;
  if (!f.link) return false;
  const auto line = f.link->roundtrip("repl-status");
  if (!line) {
    f.link.reset();
    return false;
  }
  const auto resp = parse_response(*line);
  if (!resp || !resp->ok) {
    f.link.reset();
    return false;
  }
  {
    std::lock_guard lk(mu_);
    for (std::size_t k = 0; k < router_.shards(); ++k) {
      // s<k> = "<generation>:<records>"
      const auto it = resp->fields.find("s" + std::to_string(k));
      f.gen[k] = 0;
      f.acked[k] = 0;
      if (it == resp->fields.end()) continue;
      const std::size_t colon = it->second.find(':');
      if (colon == std::string::npos) continue;
      const auto g = parse_u64(it->second.substr(0, colon));
      const auto s = parse_u64(it->second.substr(colon + 1));
      if (g && s) {
        f.gen[k] = *g;
        f.acked[k] = *s;
      }
    }
  }
  set_live(f, true);
  DFKY_OBS(obs::counter("dfkyd_repl_connects_total",
                        {{"follower", f.spec.name}})
               .inc(););
  return true;
}

bool ReplicationSender::ship_shard(Follower& f, std::size_t k, bool* shipped) {
  std::uint64_t fgen, fseq;
  {
    std::lock_guard lk(mu_);
    fgen = f.gen[k];
    fseq = f.acked[k];
  }
  // Read the shard's durable head (and whatever needs shipping) under the
  // shard's shared state lock; committers exclude us while they batch.
  std::uint64_t pgen = 0, precs = 0;
  Bytes snap;
  WalShipment ship;
  {
    std::shared_lock state(router_.state_mu(k));
    const StateStore& st = router_.store(k);
    pgen = st.generation();
    precs = st.wal_records();
    if (fgen != pgen) {
      snap = router_.store(k).read_snapshot_frame();
    } else if (fseq < precs) {
      ship = router_.store(k).read_frames_from(fseq, 0);
    }
  }

  if (fgen != pgen) {
    // A generation behind (or, after a primary restart from backup, ahead —
    // the snapshot install is idempotent and re-anchors either way).
    publish_lag(f.spec.name, k, precs, snap.size(), 0);
    const std::string line = "repl-snap " + std::to_string(k) + " " +
                             std::to_string(pgen) + " " + hex_encode(snap);
    const auto out = f.link->roundtrip(line);
    if (!out) return false;
    const auto resp = parse_response(*out);
    if (!resp || !resp->ok) return false;
    {
      std::lock_guard lk(mu_);
      f.gen[k] = pgen;
      f.acked[k] = 0;
    }
    ack_cv_.notify_all();
    *shipped = true;
    DFKY_OBS(obs::counter("dfkyd_repl_snapshots_total",
                          {{"follower", f.spec.name}})
                 .inc(););
    return true;
  }

  if (ship.frames.empty()) {
    publish_lag(f.spec.name, k, 0, 0, fseq);
    return true;
  }
  publish_lag(f.spec.name, k, precs - fseq, ship.frames.size(), fseq);
  std::uint64_t next = ship.start_record;
  for (const FrameChunk& c : split_frames(ship.frames, opts_.max_batch_bytes)) {
    const BytesView chunk(ship.frames.data() + c.begin, c.end - c.begin);
    const std::string line = "repl-append " + std::to_string(k) + " " +
                             std::to_string(pgen) + " " + std::to_string(next) +
                             " " + hex_encode(chunk);
    const auto out = f.link->roundtrip(line);
    if (!out) return false;
    const auto resp = parse_response(*out);
    if (!resp || !resp->ok) return false;
    const auto seq = field_u64(*resp, "seq");
    // No forward progress from a healthy-looking follower means the
    // streams disagree; drop the link and resync from repl-status.
    if (!seq || *seq < next + c.records) return false;
    next += c.records;
    {
      std::lock_guard lk(mu_);
      f.gen[k] = pgen;
      f.acked[k] = std::max(f.acked[k], *seq);
    }
    ack_cv_.notify_all();
    *shipped = true;
    DFKY_OBS(obs::counter("dfkyd_repl_shipped_frames_total",
                          {{"shard", std::to_string(k)},
                           {"follower", f.spec.name}})
                 .inc(c.records););
  }
  publish_lag(f.spec.name, k, 0, 0, next);
  return true;
}

void ReplicationSender::follower_loop(Follower& f) {
  int backoff = opts_.backoff_min_ms;
  while (!stopping()) {
    if (!f.link) {
      if (!establish(f)) {
        set_live(f, false);
        std::unique_lock lk(mu_);
        work_cv_.wait_for(lk, std::chrono::milliseconds(backoff),
                          [&] { return stop_; });
        backoff = std::min(backoff * 2, opts_.backoff_max_ms);
        continue;
      }
      backoff = opts_.backoff_min_ms;
    }
    bool shipped = false;
    bool link_ok = true;
    try {
      for (std::size_t k = 0; k < router_.shards() && link_ok; ++k) {
        link_ok = ship_shard(f, k, &shipped);
      }
    } catch (const Error&) {
      // A fail-stopped shard can no longer be read (the store poisoned
      // itself mid-mutation). Nothing is shippable and the daemon is
      // already shutting down; doze instead of tearing down the process
      // from a shipping thread.
      shipped = false;
    }
    if (!link_ok) {
      f.link.reset();
      set_live(f, false);
      continue;
    }
    if (!shipped) {
      // Caught up: doze until a committer syncs new work (post_sync wakes
      // us via sync_shard) or a timeout re-checks the head.
      std::unique_lock lk(mu_);
      work_cv_.wait_for(lk, std::chrono::milliseconds(20),
                        [&] { return stop_; });
    }
  }
}

void ReplicationSender::sync_shard(std::size_t shard) {
  std::uint64_t pgen = 0, head = 0;
  {
    std::shared_lock state(router_.state_mu(shard));
    const StateStore& st = router_.store(shard);
    pgen = st.generation();
    head = st.wal_records();
  }
  std::unique_lock lk(mu_);
  work_cv_.notify_all();
  ack_cv_.wait(lk, [&] {
    if (stop_) return true;
    for (const auto& f : followers_) {
      if (!f->live) continue;
      if (f->gen[shard] > pgen) continue;  // rotated past the captured head
      if (f->gen[shard] == pgen && f->acked[shard] >= head) continue;
      return false;
    }
    return true;
  });
}

void ReplicationSender::sync_all() {
  for (std::size_t k = 0; k < router_.shards(); ++k) sync_shard(k);
}

std::vector<ReplicationSender::FollowerStatus> ReplicationSender::status()
    const {
  std::lock_guard lk(mu_);
  std::vector<FollowerStatus> out;
  out.reserve(followers_.size());
  for (const auto& f : followers_) {
    out.push_back(FollowerStatus{f->spec.name, f->live, f->gen, f->acked});
  }
  return out;
}

}  // namespace dfky::daemon
