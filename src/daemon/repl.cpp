#include "daemon/repl.h"

#include <algorithm>
#include <chrono>
#include <shared_mutex>

#include "daemon/protocol.h"
#include "daemon/shard.h"
#include "obs/metrics.h"

namespace dfky::daemon {

namespace {

std::uint32_t frame_be32(BytesView raw, std::size_t off) {
  return (static_cast<std::uint32_t>(raw[off]) << 24) |
         (static_cast<std::uint32_t>(raw[off + 1]) << 16) |
         (static_cast<std::uint32_t>(raw[off + 2]) << 8) |
         static_cast<std::uint32_t>(raw[off + 3]);
}

/// Splits a frames blob into whole-record chunks of at most `max_bytes`
/// (a chunk always holds at least one record). Returns {offset, records}
/// chunk boundaries; the blob is trusted (it came from our own WAL).
struct FrameChunk {
  std::size_t begin = 0, end = 0;
  std::uint64_t records = 0;
};

std::vector<FrameChunk> split_frames(BytesView frames, std::size_t max_bytes) {
  std::vector<FrameChunk> out;
  FrameChunk cur;
  std::size_t off = 0;
  while (off < frames.size()) {
    const std::size_t len = frame_be32(frames, off);
    const std::size_t end = off + kWalFrameHeaderBytes + len;
    if (cur.records > 0 && end - cur.begin > max_bytes) {
      cur.end = off;
      out.push_back(cur);
      cur = FrameChunk{off, off, 0};
    }
    ++cur.records;
    off = end;
  }
  if (cur.records > 0) {
    cur.end = off;
    out.push_back(cur);
  }
  return out;
}

std::optional<std::uint64_t> field_u64(const Response& r, const std::string& k) {
  const auto it = r.fields.find(k);
  if (it == r.fields.end()) return std::nullopt;
  return parse_u64(it->second);
}

/// A follower's `stale-term term=<N> (...)` NACK -> N; nullopt for every
/// other error. The prefix is part of the protocol (DESIGN.md Sect. 14):
/// it is how a fenced ex-primary learns the term that fenced it.
std::optional<std::uint64_t> parse_stale_term(const std::string& error) {
  constexpr std::string_view kPrefix = "stale-term term=";
  if (error.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  std::size_t end = kPrefix.size();
  while (end < error.size() && error[end] >= '0' && error[end] <= '9') ++end;
  return parse_u64(std::string_view(error).substr(kPrefix.size(),
                                                  end - kPrefix.size()));
}

std::string trace_hex(std::uint64_t id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[id & 0xf];
    id >>= 4;
  }
  return out;
}

}  // namespace

ReplicationSender::ReplicationSender(ShardRouter& router,
                                     std::vector<FollowerSpec> followers,
                                     ReplOptions opts)
    : router_(router), opts_(opts), term_(router.term()) {
  for (FollowerSpec& spec : followers) {
    auto f = std::make_unique<Follower>();
    f->spec = std::move(spec);
    f->gen.assign(router_.shards(), 0);
    f->acked.assign(router_.shards(), 0);
    // Lease grace starts NOW, not when the shipping thread first runs: an
    // epoch-zero last_contact would read as an expired lease to a sync that
    // beats the thread to its first statement.
    f->last_contact = std::chrono::steady_clock::now();
    followers_.push_back(std::move(f));
  }
  for (auto& f : followers_) {
    f->thread = std::thread([this, fp = f.get()] { follower_loop(*fp); });
  }
}

ReplicationSender::~ReplicationSender() { stop(); }

void ReplicationSender::stop() {
  {
    std::lock_guard lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  ack_cv_.notify_all();
  for (auto& f : followers_) {
    if (f->thread.joinable()) f->thread.join();
  }
}

bool ReplicationSender::stopping() const {
  std::lock_guard lk(mu_);
  return stop_;
}

void ReplicationSender::set_live(Follower& f, bool live) {
  {
    std::lock_guard lk(mu_);
    f.live = live;
  }
  // Dead followers stop gating acks; waiters must re-evaluate.
  ack_cv_.notify_all();
  DFKY_OBS(obs::gauge("dfkyd_repl_follower_live", {{"follower", f.spec.name}})
               .set(live ? 1 : 0););
}

void ReplicationSender::note_contact(Follower& f) {
  {
    std::lock_guard lk(mu_);
    f.last_contact = std::chrono::steady_clock::now();
  }
  ack_cv_.notify_all();  // the lease just got fresher
}

void ReplicationSender::note_nack(const Follower& f, const std::string& error) {
  const auto newer = parse_stale_term(error);
  if (!newer) return;
  // Keep the largest term any follower reported, then signal exactly once:
  // every armed ack from here on is refused (sync_shard throws), and the
  // owner gets one shot at shutting the primary down.
  std::uint64_t cur = stale_term_value_.load();
  while (*newer > cur &&
         !stale_term_value_.compare_exchange_weak(cur, *newer)) {
  }
  DFKY_OBS(obs::counter("dfkyd_repl_stale_terms_total",
                        {{"follower", f.spec.name}})
               .inc(););
  const bool first = !stale_term_seen_.exchange(true);
  ack_cv_.notify_all();
  if (first && opts_.on_stale_term) {
    opts_.on_stale_term(stale_term_value_.load());
  }
}

bool ReplicationSender::lease_expired_locked(
    std::chrono::steady_clock::time_point now) const {
  const auto lease = std::chrono::milliseconds(opts_.lease_ms);
  for (const auto& f : followers_) {
    if (now - f->last_contact < lease) return false;
  }
  return true;
}

void ReplicationSender::publish_lag(const std::string& follower, std::size_t k,
                                    std::uint64_t lag_frames,
                                    std::uint64_t lag_bytes,
                                    std::uint64_t acked) const {
  DFKY_OBS(const obs::Labels labels = {{"shard", std::to_string(k)},
                                       {"follower", follower}};
           obs::gauge("dfkyd_repl_lag_frames", labels)
               .set(static_cast<std::int64_t>(lag_frames));
           obs::gauge("dfkyd_repl_lag_bytes", labels)
               .set(static_cast<std::int64_t>(lag_bytes));
           obs::gauge("dfkyd_repl_acked_seq", labels)
               .set(static_cast<std::int64_t>(acked)););
  (void)follower;
  (void)k;
  (void)lag_frames;
  (void)lag_bytes;
  (void)acked;
}

bool ReplicationSender::establish(Follower& f) {
  f.link = f.spec.connect ? f.spec.connect() : nullptr;
  if (!f.link) return false;
  const auto line = f.link->roundtrip("repl-status");
  if (!line) {
    f.link.reset();
    return false;
  }
  const auto resp = parse_response(*line);
  if (!resp) {
    f.link.reset();
    return false;
  }
  if (!resp->ok) {
    note_nack(f, resp->error);
    f.link.reset();
    return false;
  }
  // Term scrutiny before any byte ships — and before the contact stamp. A
  // peer carrying a newer term means WE are the stale side (a failover
  // happened behind our back): signal it exactly like a stale-term NACK. A
  // peer answering as a primary at our term or below is a same-epoch split
  // (manual double promote) — never feed it; keep retrying until one side
  // demotes. Neither answer is lease-qualifying contact: counting a
  // dueling primary's reconnect probes would keep this side's lease fresh
  // forever, masking the split as a silent ack stall instead of letting
  // the lease expire and fail-stop it.
  const auto pterm = field_u64(*resp, "term");
  if (pterm && *pterm > term_) {
    note_nack(f, "stale-term term=" + std::to_string(*pterm) +
                     " (peer " + f.spec.name + " is ahead of us)");
    f.link.reset();
    return false;
  }
  const auto role = resp->fields.find("role");
  if (role != resp->fields.end() && role->second == "primary") {
    f.link.reset();
    return false;
  }
  note_contact(f);
  {
    std::lock_guard lk(mu_);
    f.chain.assign(router_.shards(), std::string());
    for (std::size_t k = 0; k < router_.shards(); ++k) {
      // s<k> = "<generation>:<records>[:<chain-head-hex>]" (the chain head
      // is new in Sect. 14; absent from pre-failover followers).
      const auto it = resp->fields.find("s" + std::to_string(k));
      f.gen[k] = 0;
      f.acked[k] = 0;
      if (it == resp->fields.end()) continue;
      const std::size_t colon = it->second.find(':');
      if (colon == std::string::npos) continue;
      const std::size_t colon2 = it->second.find(':', colon + 1);
      const auto g = parse_u64(it->second.substr(0, colon));
      const auto s = parse_u64(
          it->second.substr(colon + 1, colon2 == std::string::npos
                                           ? std::string::npos
                                           : colon2 - colon - 1));
      if (g && s) {
        f.gen[k] = *g;
        f.acked[k] = *s;
        if (colon2 != std::string::npos) {
          f.chain[k] = it->second.substr(colon2 + 1);
        }
      }
    }
  }
  set_live(f, true);
  DFKY_OBS(obs::counter("dfkyd_repl_connects_total",
                        {{"follower", f.spec.name}})
               .inc(););
  return true;
}

bool ReplicationSender::ship_shard(Follower& f, std::size_t k, bool* shipped) {
  std::uint64_t fgen, fseq;
  std::string fchain;
  {
    std::lock_guard lk(mu_);
    fgen = f.gen[k];
    fseq = f.acked[k];
    fchain = f.chain[k];
  }
  const std::uint64_t term = term_;
  // Read the shard's durable head (and whatever needs shipping) under the
  // shard's shared state lock; committers exclude us while they batch.
  std::uint64_t pgen = 0, precs = 0;
  bool diverged = false;
  Bytes snap;
  WalShipment ship;
  {
    std::shared_lock state(router_.state_mu(k));
    const StateStore& st = router_.store(k);
    pgen = st.generation();
    precs = st.wal_records();
    if (fgen == pgen && !fchain.empty()) {
      // Unverified chain head from repl-status: a forked suffix (the
      // follower was a primary that committed un-acked records before
      // fencing) either sticks out past our head or disagrees with our
      // chain at its own position. Equal heads verify the whole prefix.
      diverged = fseq > precs ||
                 st.chain_tag_hex_at(std::min(fseq, precs)) != fchain;
    }
    if (!diverged) {
      if (fgen != pgen) {
        snap = st.read_snapshot_frame();
      } else if (fseq < precs) {
        ship = st.read_frames_from(fseq, 0);
      }
    }
  }

  if (diverged) {
    if (!repair_divergence(f, k, pgen, precs, fseq)) return false;
    *shipped = true;  // the truncate was forward progress; re-enter to ship
    return true;
  }
  if (fgen == pgen && !fchain.empty()) {
    // Verified: matching chain tag at the follower's head, so its WAL is a
    // byte-identical prefix of ours. Stop re-checking on every pass.
    std::lock_guard lk(mu_);
    f.chain[k].clear();
  }

  if (fgen != pgen) {
    // A generation behind (or, after a primary restart from backup, ahead —
    // the snapshot install is idempotent and re-anchors either way).
    publish_lag(f.spec.name, k, precs, snap.size(), 0);
    const std::string line = "repl-snap " + std::to_string(k) + " " +
                             std::to_string(pgen) + " " +
                             std::to_string(term) + " " + hex_encode(snap);
    const auto out = f.link->roundtrip(line);
    if (!out) return false;
    const auto resp = parse_response(*out);
    if (!resp) return false;
    if (!resp->ok) {
      note_nack(f, resp->error);
      return false;
    }
    note_contact(f);
    {
      std::lock_guard lk(mu_);
      f.gen[k] = pgen;
      f.acked[k] = 0;
    }
    ack_cv_.notify_all();
    *shipped = true;
    DFKY_OBS(obs::counter("dfkyd_repl_snapshots_total",
                          {{"follower", f.spec.name}})
                 .inc(););
    return true;
  }

  if (ship.frames.empty()) {
    publish_lag(f.spec.name, k, 0, 0, fseq);
    return true;
  }
  publish_lag(f.spec.name, k, precs - fseq, ship.frames.size(), fseq);
  std::uint64_t next = ship.start_record;
  for (const FrameChunk& c : split_frames(ship.frames, opts_.max_batch_bytes)) {
    const BytesView chunk(ship.frames.data() + c.begin, c.end - c.begin);
    std::string line = "repl-append " + std::to_string(k) + " " +
                       std::to_string(pgen) + " " + std::to_string(term) +
                       " " + std::to_string(next) + " " + hex_encode(chunk);
    // Trace propagation (DESIGN.md Sect. 13): the last mutation's trace id
    // rides along so the follower's apply span joins the primary's trace.
    if (const std::uint64_t tid = router_.last_trace_id(k)) {
      line += " trace=";
      line += trace_hex(tid);
    }
    const auto out = f.link->roundtrip(line);
    if (!out) return false;
    const auto resp = parse_response(*out);
    if (!resp) return false;
    if (!resp->ok) {
      note_nack(f, resp->error);
      return false;
    }
    note_contact(f);
    const auto seq = field_u64(*resp, "seq");
    // No forward progress from a healthy-looking follower means the
    // streams disagree; drop the link and resync from repl-status.
    if (!seq || *seq < next + c.records) return false;
    next += c.records;
    {
      std::lock_guard lk(mu_);
      f.gen[k] = pgen;
      f.acked[k] = std::max(f.acked[k], *seq);
    }
    ack_cv_.notify_all();
    *shipped = true;
    DFKY_OBS(obs::counter("dfkyd_repl_shipped_frames_total",
                          {{"shard", std::to_string(k)},
                           {"follower", f.spec.name}})
                 .inc(c.records););
  }
  publish_lag(f.spec.name, k, 0, 0, next);
  return true;
}

bool ReplicationSender::repair_divergence(Follower& f, std::size_t k,
                                          std::uint64_t pgen,
                                          std::uint64_t precs,
                                          std::uint64_t fseq) {
  DFKY_OBS(obs::counter("dfkyd_repl_divergences_total",
                        {{"shard", std::to_string(k)},
                         {"follower", f.spec.name}})
               .inc(););
  // Walk downward from the last position both sides could share, offering
  // OUR chain tag at each; the follower truncates at the first one that
  // matches its own chain (tag p is the whole prefix [0,p), so a match
  // proves everything below it too — one accepted truncate finishes the
  // repair). The walk is monotone and bounded by min(precs, fseq) <= the
  // un-acked suffix length in practice, since acked records are shared.
  std::uint64_t p = std::min(precs, fseq);
  for (;;) {
    if (stopping()) return false;
    std::string tag;
    {
      std::shared_lock state(router_.state_mu(k));
      tag = router_.store(k).chain_tag_hex_at(p);
    }
    const std::string line = "repl-truncate " + std::to_string(k) + " " +
                             std::to_string(pgen) + " " + std::to_string(term_) +
                             " " + std::to_string(p) + " " + tag;
    const auto out = f.link->roundtrip(line);
    if (!out) return false;
    const auto resp = parse_response(*out);
    if (!resp) return false;
    if (resp->ok) {
      note_contact(f);
      std::lock_guard lk(mu_);
      f.gen[k] = pgen;
      f.acked[k] = p;
      f.chain[k].clear();  // shared prefix re-established and verified
      return true;
    }
    note_nack(f, resp->error);
    if (parse_stale_term(resp->error)) return false;
    if (p == 0) return false;  // no shared prefix at all: resync from status
    --p;
  }
}

void ReplicationSender::follower_loop(Follower& f) {
  int backoff = opts_.backoff_min_ms;
  auto last_hb = std::chrono::steady_clock::now();
  // A deposed sender retires: once any follower reports a newer term this
  // whole tenure is over — nothing it could ship is legitimate, and verbs
  // stamped with term_ would only be refused anyway.
  while (!stopping() && !stale_term_seen_.load()) {
    if (!f.link) {
      if (!establish(f)) {
        set_live(f, false);
        std::unique_lock lk(mu_);
        work_cv_.wait_for(lk, std::chrono::milliseconds(backoff),
                          [&] { return stop_; });
        backoff = std::min(backoff * 2, opts_.backoff_max_ms);
        continue;
      }
      backoff = opts_.backoff_min_ms;
    }
    bool shipped = false;
    bool link_ok = true;
    try {
      for (std::size_t k = 0; k < router_.shards() && link_ok; ++k) {
        link_ok = ship_shard(f, k, &shipped);
      }
    } catch (const Error&) {
      // A fail-stopped shard can no longer be read (the store poisoned
      // itself mid-mutation). Nothing is shippable and the daemon is
      // already shutting down; doze instead of tearing down the process
      // from a shipping thread.
      shipped = false;
    }
    if (!link_ok) {
      f.link.reset();
      set_live(f, false);
      continue;
    }
    if (!shipped) {
      // Caught up and idle: heartbeat so follower watchdogs know their
      // primary is alive and our lease stays fresh with no mutations
      // flowing. The follower NACKs stale-term if it moved to a newer
      // epoch behind our back — exactly like a shipment would.
      const auto now = std::chrono::steady_clock::now();
      if (opts_.hb_interval_ms > 0 &&
          now - last_hb >= std::chrono::milliseconds(opts_.hb_interval_ms)) {
        last_hb = now;
        const auto out =
            f.link->roundtrip("repl-hb " + std::to_string(term_));
        const auto resp = out ? parse_response(*out) : std::nullopt;
        if (!resp) {
          f.link.reset();
          set_live(f, false);
          continue;
        }
        if (!resp->ok) {
          note_nack(f, resp->error);
          f.link.reset();
          set_live(f, false);
          continue;
        }
        note_contact(f);
        DFKY_OBS(obs::counter("dfkyd_repl_heartbeats_total",
                              {{"follower", f.spec.name}})
                     .inc(););
      }
      // Doze until a committer syncs new work (post_sync wakes us via
      // sync_shard) or a timeout re-checks the head.
      std::unique_lock lk(mu_);
      work_cv_.wait_for(lk, std::chrono::milliseconds(20),
                        [&] { return stop_; });
    }
  }
}

std::string ReplicationSender::sync_shard(std::size_t shard) {
  std::uint64_t pgen = 0, head = 0;
  {
    std::shared_lock state(router_.state_mu(shard));
    const StateStore& st = router_.store(shard);
    pgen = st.generation();
    head = st.wal_records();
  }
  std::unique_lock lk(mu_);
  work_cv_.notify_all();
  const auto holds_head = [&](const Follower& f) {
    if (f.gen[shard] > pgen) return true;  // rotated past the captured head
    return f.gen[shard] == pgen && f.acked[shard] >= head;
  };
  const auto holder_names = [&] {
    std::string names;
    for (const auto& f : followers_) {
      if (!holds_head(*f)) continue;
      if (!names.empty()) names += ',';
      names += f->spec.name;
    }
    return names;
  };
  if (opts_.lease_ms <= 0) {
    // Unarmed (PR 6 semantics): every live follower must hold the head;
    // no live follower means a degraded standalone ack.
    ack_cv_.wait(lk, [&] {
      if (stop_) return true;
      for (const auto& f : followers_) {
        if (f->live && !holds_head(*f)) return false;
      }
      return true;
    });
    return holder_names();
  }
  // ARMED: an ack needs (a) every live follower caught up AND (b) a cluster
  // majority holding the head — acked-but-dead followers count, their copy
  // is durable. With N followers the cluster is N+1 nodes, majority is
  // floor((N+1)/2)+1 nodes = ceil((N+1)/2) - 1 + 1 ... i.e. this primary
  // plus ceil(N/2) = (N+1)/2 followers (integer division). An election
  // quorum is a majority of the N followers with the max-records winner,
  // so any elected successor holds every record acked here.
  const std::size_t required = (followers_.size() + 1) / 2;
  for (;;) {
    if (stop_) return holder_names();
    if (stale_term_seen_.load()) {
      throw StaleTermError(
          "stale-term term=" + std::to_string(stale_term_value_.load()) +
          " (replication gate: a newer primary fenced this node)");
    }
    const auto now = std::chrono::steady_clock::now();
    if (lease_expired_locked(now)) {
      std::string ages;
      for (const auto& f : followers_) {
        if (!ages.empty()) ages += ',';
        ages += f->spec.name + (f->live ? "=" : "[dead]=") +
                std::to_string(std::chrono::duration_cast<
                                   std::chrono::milliseconds>(
                                   now - f->last_contact)
                                   .count()) +
                "ms";
      }
      throw StaleTermError(
          "stale-term term=" + std::to_string(router_.term()) +
          " (replication lease lost: no follower heard from within " +
          std::to_string(opts_.lease_ms) + "ms [" + ages +
          "]; a successor may be elected — refusing the ack)");
    }
    bool live_ok = true;
    std::size_t holders = 0;
    for (const auto& f : followers_) {
      if (holds_head(*f)) {
        ++holders;
      } else if (f->live) {
        live_ok = false;
      }
    }
    if (live_ok && holders >= required) return holder_names();
    // Bounded waits so the lease re-checks even with no ack traffic.
    ack_cv_.wait_for(lk, std::chrono::milliseconds(5));
  }
}

void ReplicationSender::sync_all() {
  for (std::size_t k = 0; k < router_.shards(); ++k) sync_shard(k);
}

std::vector<ReplicationSender::FollowerStatus> ReplicationSender::status()
    const {
  std::lock_guard lk(mu_);
  std::vector<FollowerStatus> out;
  out.reserve(followers_.size());
  for (const auto& f : followers_) {
    out.push_back(FollowerStatus{f->spec.name, f->live, f->gen, f->acked});
  }
  return out;
}

}  // namespace dfky::daemon
