#include "daemon/reactor.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "daemon/feed.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dfky::daemon {

namespace {

using Clock = std::chrono::steady_clock;

/// epoll_event.data.u64 sentinels; connection ids start above them.
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kListenId = 2;
constexpr std::uint64_t kMetricsListenId = 3;
constexpr std::uint64_t kCompletionId = 4;
constexpr std::uint64_t kFeedId = 5;
constexpr std::uint64_t kFirstConnId = 16;

/// Segments gathered per writev batch.
constexpr std::size_t kWritevBatch = 64;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Verbs funneled through group commit — the only ones admission control
/// sheds. Reads stay cheap under load and repl/cluster verbs must never
/// bounce (a shed repl-append would stall replication exactly when the
/// primary is busiest).
bool is_shed_verb(std::string_view body) {
  const std::size_t sp = body.find(' ');
  const std::string_view verb =
      sp == std::string_view::npos ? body : body.substr(0, sp);
  return verb == "add-user" || verb == "revoke" || verb == "new-period";
}

/// `subscribe` is the one verb the reactor answers itself: it mutates
/// per-connection stream state the workers cannot see. Never shed — a
/// busy daemon is exactly when receivers need the push stream.
bool is_subscribe_verb(std::string_view body) {
  const std::size_t sp = body.find(' ');
  const std::string_view verb =
      sp == std::string_view::npos ? body : body.substr(0, sp);
  return verb == "subscribe";
}

/// One metrics scraper exchange (same contract as the old detached-thread
/// server): parse the request line, answer Prometheus text, close.
std::string metrics_http_response(const std::string& request) {
  std::string status = "200 OK";
  std::string body;
  if (request.starts_with("GET /trace")) {
    body = obs::trace_jsonl();
    if (!obs::enabled()) body = "# dfky observability layer compiled out\n";
    DFKY_OBS(obs::counter("dfkyd_trace_scrapes_total").inc(););
  } else if (request.starts_with("GET /metrics") ||
             request.starts_with("GET / ")) {
    body = obs::MetricsRegistry::instance().prometheus();
    if (!obs::enabled()) body = "# dfky observability layer compiled out\n";
    DFKY_OBS(obs::counter("dfkyd_metrics_scrapes_total").inc(););
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  char head[256];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %s\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status.c_str(), body.size());
  return std::string(head) + body;
}

std::size_t count_open_fds() {
  std::size_t n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n >= 3 ? n - 2 : n;  // ".", ".." and the opendir fd roughly cancel
}

}  // namespace

struct Reactor::Impl {
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    bool metrics = false;

    // Client conns: incremental framing + pipelining state.
    LineFramer framer;
    std::deque<std::string> pending;  // complete lines, not yet dispatched
    std::size_t in_flight = 0;        // tagged requests at the pool
    bool untagged_running = false;

    // Write side, both kinds of conn: a rope of refcounted segments
    // drained with writev. Broadcast fan-out aliases ONE FeedFrame
    // buffer into every subscriber's rope — no per-subscriber copy.
    struct Seg {
      std::shared_ptr<const std::string> data;
      std::size_t off = 0;  // bytes of *data already sent
    };
    std::deque<Seg> wq;
    std::size_t wq_bytes = 0;  // unflushed bytes across all segments

    std::uint32_t interest = 0;  // events currently registered
    bool read_paused = false;
    bool read_closed = false;       // peer EOF (or drain shut the read side)
    bool close_after_flush = false;
    bool line_overflow = false;     // framer poisoned: err + close
    bool overflow_err_queued = false;
    bool subscriber = false;  // upgraded to a push stream by `subscribe`

    Clock::time_point last_activity;
    /// Hard close time: always set on scrapers, set on a client conn
    /// once it owes us nothing but a final flush it may never take.
    Clock::time_point deadline{};
    std::string http_req;  // scrapers only

    std::size_t wq_size() const { return wq_bytes; }
  };

  struct Job {
    std::uint64_t conn_id;
    std::string line;
    bool untagged;
  };
  struct Completion {
    std::uint64_t conn_id;
    std::string bytes;  // newline-terminated response
    bool untagged;
    bool shutdown;
  };

  ReactorOptions opts;
  Handler handler;
  std::function<std::size_t()> queue_depth;
  std::function<void()> on_shutdown;

  int epfd = -1;
  int comp_pipe[2] = {-1, -1};  // [0] in epoll, [1] nonblocking, workers kick
  int reserve_fd = -1;          // burned to drain accepts under EMFILE

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_id = kFirstConnId;
  std::size_t metrics_conns = 0;
  std::unordered_set<std::uint64_t> subscribers;  // push-stream conn ids

  bool draining = false;
  bool accept_paused = false;  // listen fd out of the epoll set
  bool accept_paused_busy = false;
  Clock::time_point accept_resume{};  // EMFILE backoff expiry
  bool emfile_logged = false;
  Clock::time_point last_fd_gauge{};
  Clock::time_point last_tick{};

  // Worker pool.
  std::vector<std::thread> workers;
  std::mutex jobs_mu;
  std::condition_variable jobs_cv;
  std::deque<Job> jobs;
  bool jobs_stop = false;
  std::mutex comp_mu;
  std::vector<Completion> completions;

  // Stats, readable from other threads (tests poll while run() serves).
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> emfile_rejects{0};
  std::atomic<std::uint64_t> busy_shed{0};
  std::atomic<std::uint64_t> idle_reaped{0};
  std::atomic<std::uint64_t> overflow_closed{0};
  std::atomic<std::uint64_t> metrics_rejects{0};
  std::atomic<std::size_t> open_conns{0};
  std::atomic<std::uint64_t> feed_shed{0};
  std::atomic<std::uint64_t> feed_replayed{0};
  std::atomic<std::size_t> subscriber_count{0};

  // ---- epoll plumbing ----

  void ep_add(int fd, std::uint64_t id, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  }
  void ep_mod(int fd, std::uint64_t id, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev);
  }
  void ep_del(int fd) { ::epoll_ctl(epfd, EPOLL_CTL_DEL, fd, nullptr); }

  /// Reconciles a connection's registered events with what it needs now:
  /// EPOLLIN unless its reads are paused or closed, EPOLLOUT while
  /// responses wait for socket buffer space.
  void update_interest(Conn& c) {
    std::uint32_t want = 0;
    if (!c.read_closed && !c.read_paused) want |= EPOLLIN;
    if (c.wq_size() > 0) want |= EPOLLOUT;
    if (want != c.interest) {
      ep_mod(c.fd, c.id, want);
      c.interest = want;
    }
  }

  // ---- connection lifecycle ----

  Conn* find(std::uint64_t id) {
    const auto it = conns.find(id);
    return it == conns.end() ? nullptr : it->second.get();
  }

  void close_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Conn& c = *it->second;
    if (c.metrics) {
      --metrics_conns;
    } else {
      open_conns.fetch_sub(1, std::memory_order_relaxed);
    }
    if (c.subscriber) {
      subscribers.erase(id);
      subscriber_count.store(subscribers.size(), std::memory_order_relaxed);
    }
    ::close(c.fd);  // the kernel drops it from the epoll set
    conns.erase(it);
  }

  /// Appends one response (an owned segment) and flushes what the
  /// socket accepts now. Returns false when the connection was closed
  /// (write-queue overflow or a dead peer) — the caller's Conn
  /// reference is gone.
  bool queue_bytes(Conn& c, std::string bytes) {
    if (bytes.empty()) return flush_wq(c);
    return queue_seg(c, std::make_shared<const std::string>(std::move(bytes)));
  }

  /// Appends one refcounted segment — broadcast fan-out pushes the SAME
  /// frame buffer into every subscriber's rope through here.
  bool queue_seg(Conn& c, std::shared_ptr<const std::string> seg) {
    c.wq_bytes += seg->size();
    c.wq.push_back(Conn::Seg{std::move(seg), 0});
    return flush_wq(c);
  }

  bool flush_wq(Conn& c) {
    while (!c.wq.empty()) {
      iovec iov[kWritevBatch];
      std::size_t iovcnt = 0;
      for (const Conn::Seg& s : c.wq) {
        if (iovcnt == kWritevBatch) break;
        iov[iovcnt].iov_base =
            const_cast<char*>(s.data->data() + s.off);
        iov[iovcnt].iov_len = s.data->size() - s.off;
        ++iovcnt;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = iovcnt;
      const ssize_t n = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(c.id);
        return false;
      }
      c.wq_bytes -= static_cast<std::size_t>(n);
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        Conn::Seg& s = c.wq.front();
        const std::size_t avail = s.data->size() - s.off;
        if (left < avail) {
          s.off += left;
          break;
        }
        left -= avail;
        c.wq.pop_front();  // releases this conn's frame reference
      }
    }
    if (c.wq_bytes > opts.write_queue_limit) {
      // The peer stopped reading its responses long ago; holding its
      // backlog in memory indefinitely is the unbounded-thread bug in a
      // new costume. Drop the connection. For a push stream this IS the
      // slow-subscriber shed: its queued frame references are released
      // and nobody else's stream is touched.
      overflow_closed.fetch_add(1, std::memory_order_relaxed);
      DFKY_OBS(obs::counter("dfkyd_write_overflow_closed_total").inc(););
      if (c.subscriber) {
        feed_shed.fetch_add(1, std::memory_order_relaxed);
        DFKY_OBS(obs::counter("dfkyd_feed_shed_total").inc(););
      }
      close_conn(c.id);
      return false;
    }
    return true;
  }

  // ---- request dispatch ----

  void submit(std::uint64_t conn_id, std::string line, bool untagged) {
    {
      std::lock_guard lk(jobs_mu);
      jobs.push_back(Job{conn_id, std::move(line), untagged});
    }
    jobs_cv.notify_one();
  }

  bool should_shed(std::string_view body) const {
    if (opts.busy_queue_limit == 0 || !queue_depth) return false;
    if (!is_shed_verb(body)) return false;
    return queue_depth() >= opts.busy_queue_limit;
  }

  /// Hands as many buffered lines to the pool as the pipelining rules
  /// allow (protocol.h): tagged lines run concurrently up to the
  /// per-connection bound, an untagged line waits for all of them and
  /// then runs alone. Returns false when the connection closed under a
  /// locally answered `err busy` whose flush failed.
  bool try_dispatch(Conn& c) {
    while (!c.pending.empty()) {
      const TaggedLine tagged = split_request_tag(c.pending.front());
      const bool is_tagged = tagged.id.has_value() && !tagged.bad_tag;
      if (c.untagged_running) break;
      if (opts.feed != nullptr && is_subscribe_verb(tagged.body)) {
        // Stream registration mutates reactor-owned state, so the
        // reactor answers it inline (no worker round trip). An untagged
        // subscribe still honors the barrier; a tagged one is
        // instantaneous and may answer out of order like any tagged
        // request.
        if (!is_tagged && c.in_flight > 0) break;
        const std::string line = std::move(c.pending.front());
        c.pending.pop_front();
        if (!handle_subscribe(c, split_request_tag(line))) return false;
        continue;
      }
      if (is_tagged) {
        if (c.in_flight >= opts.max_inflight_per_conn) break;
        if (should_shed(tagged.body)) {
          busy_shed.fetch_add(1, std::memory_order_relaxed);
          DFKY_OBS(obs::counter("dfkyd_busy_shed_total").inc(););
          const std::string resp =
              tag_response(tagged.id, err_response("busy")) + "\n";
          c.pending.pop_front();
          if (!queue_bytes(c, resp)) return false;
          continue;
        }
        ++c.in_flight;
        submit(c.id, std::move(c.pending.front()), /*untagged=*/false);
        c.pending.pop_front();
        continue;
      }
      if (c.in_flight > 0) break;
      if (should_shed(tagged.body)) {
        busy_shed.fetch_add(1, std::memory_order_relaxed);
        DFKY_OBS(obs::counter("dfkyd_busy_shed_total").inc(););
        c.pending.pop_front();
        if (!queue_bytes(c, err_response("busy") + "\n")) return false;
        continue;
      }
      c.untagged_running = true;
      submit(c.id, std::move(c.pending.front()), /*untagged=*/true);
      c.pending.pop_front();
      break;
    }
    c.read_paused = draining || c.line_overflow ||
                    c.pending.size() >= opts.max_pending_per_conn ||
                    c.wq_size() >= opts.write_queue_limit / 2;
    return true;
  }

  // ---- streaming fan-out (DESIGN.md Sect. 16) ----

  /// `subscribe [from-period]`, answered on the reactor thread: replay
  /// the missed epochs out of the hub's history, then upgrade the
  /// connection to a push stream. Returns false when the connection
  /// closed (flush failure or replay overflowing the write queue).
  bool handle_subscribe(Conn& c, const TaggedLine& t) {
    const std::vector<std::string> tokens = split_tokens(t.body);
    std::optional<std::uint64_t> from;
    bool bad = tokens.size() > 2;
    if (tokens.size() == 2) {
      from = parse_u64(tokens[1]);
      bad = !from.has_value();
    }
    if (bad) {
      DFKY_OBS(obs::counter("dfkyd_requests_total",
                            {{"verb", "subscribe"}, {"outcome", "err"}})
                   .inc(););
      return queue_bytes(
          c, tag_response(t.id, err_response("usage: subscribe [from-period]")) +
                 "\n");
    }
    const FeedReplay rep = opts.feed->replay(from);
    if (!rep.ok) {
      // `from` predates every archive: the client needs the signed
      // catch-up protocol (RecoveryClient), not a feed replay. The
      // connection is NOT upgraded.
      DFKY_OBS(obs::counter("dfkyd_requests_total",
                            {{"verb", "subscribe"}, {"outcome", "err"}})
                   .inc(););
      return queue_bytes(
          c, tag_response(
                 t.id, err_response("replay-unavailable oldest=" +
                                    std::to_string(rep.oldest) + " period=" +
                                    std::to_string(rep.current))) +
                 "\n");
    }
    if (!c.subscriber) {
      c.subscriber = true;
      subscribers.insert(c.id);
      subscriber_count.store(subscribers.size(), std::memory_order_relaxed);
    }
    DFKY_OBS(obs::counter("dfkyd_requests_total",
                          {{"verb", "subscribe"}, {"outcome", "ok"}})
                 .inc(););
    const std::string head =
        tag_response(t.id,
                     ok_response({{"period", std::to_string(rep.current)},
                                  {"replayed",
                                   std::to_string(rep.lines.size())}})) +
        "\n";
    if (!queue_bytes(c, head)) return false;
    const std::size_t replayed = rep.lines.size();
    for (std::string line : rep.lines) {
      line += '\n';
      if (!queue_bytes(c, std::move(line))) return false;
    }
    feed_replayed.fetch_add(replayed, std::memory_order_relaxed);
    DFKY_OBS(if (replayed > 0) {
      obs::counter("dfkyd_feed_replayed_total").inc(replayed);
    });
    return true;
  }

  /// Frames pending at the hub: encode-once fan-out. Every subscriber's
  /// rope gets an aliased reference to the SAME frame buffer; the frame
  /// dies (and stamps the broadcast-to-all-current histogram) when the
  /// last queue drains or sheds it.
  void on_feed_ready() {
    if (opts.feed == nullptr) return;
    char drainbuf[256];
    while (::read(opts.feed->notify_fd(), drainbuf, sizeof drainbuf) > 0) {
    }
    const std::vector<FeedFramePtr> frames = opts.feed->take_pending();
    if (frames.empty()) return;
    // Snapshot: a shed inside queue_seg mutates the live set.
    const std::vector<std::uint64_t> ids(subscribers.begin(),
                                         subscribers.end());
    for (const std::uint64_t id : ids) {
      Conn* c = find(id);
      if (c == nullptr || !c->subscriber) continue;
      bool alive = true;
      for (const FeedFramePtr& f : frames) {
        std::shared_ptr<const std::string> seg(f, &f->line);
        if (!queue_seg(*c, std::move(seg))) {
          alive = false;
          break;
        }
      }
      if (alive) update_interest(*c);  // arm EPOLLOUT for the tail
    }
  }

  /// Finishing moves once a connection has nothing left to do: the
  /// deferred oversize-line error, then the close it has been waiting
  /// for (peer EOF, protocol violation, or a flushed scraper response).
  void maybe_finish(std::uint64_t id) {
    Conn* c = find(id);
    if (c == nullptr) return;
    const bool quiesced =
        c->pending.empty() && c->in_flight == 0 && !c->untagged_running;
    if (c->line_overflow && quiesced && !c->overflow_err_queued) {
      // Matches the threaded front end: every complete line already read
      // gets its answer first, then the violation is reported and the
      // connection dropped.
      c->overflow_err_queued = true;
      c->close_after_flush = true;
      c->deadline = Clock::now() + std::chrono::seconds(5);
      if (!queue_bytes(*c, err_response("request line too long") + "\n")) {
        return;
      }
    }
    if ((c->read_closed || c->close_after_flush) && quiesced &&
        c->wq_size() == 0) {
      close_conn(id);
      return;
    }
    update_interest(*c);
  }

  // ---- accept paths ----

  void pause_accept(bool busy, Clock::time_point resume) {
    if (!accept_paused) {
      ep_del(opts.listen_fd);
      accept_paused = true;
    }
    accept_paused_busy = busy;
    accept_resume = resume;
  }

  void maybe_resume_accept(Clock::time_point now) {
    if (!accept_paused || draining) return;
    if (accept_paused_busy) {
      if (opts.busy_queue_limit != 0 && queue_depth &&
          queue_depth() >= opts.busy_queue_limit) {
        return;
      }
    } else if (now < accept_resume) {
      return;
    }
    accept_paused = false;
    accept_paused_busy = false;
    ep_add(opts.listen_fd, kListenId, EPOLLIN);
  }

  void on_listen_ready(Clock::time_point now) {
    for (int i = 0; i < 64; ++i) {
      if (opts.busy_queue_limit != 0 && queue_depth &&
          queue_depth() >= opts.busy_queue_limit) {
        // Saturated: stop taking on new clients until the committers
        // drain the backlog (existing connections shed per-request).
        pause_accept(/*busy=*/true, now);
        return;
      }
      const int cfd =
          ::accept4(opts.listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EMFILE || errno == ENFILE) {
          reject_accept_emfile(now);
          return;
        }
        // ECONNABORTED and friends: the would-be client is gone; the
        // listen socket is fine.
        continue;
      }
      accepted.fetch_add(1, std::memory_order_relaxed);
      DFKY_OBS(obs::counter("dfkyd_connections_total").inc(););
      set_nonblocking(cfd);
      add_conn(cfd, /*metrics=*/false, now);
    }
  }

  /// EMFILE/ENFILE: the process is out of fds, and a level-triggered
  /// ready listen socket would otherwise spin this loop at 100% doing
  /// nothing. Burn the reserve fd to actually accept the connection,
  /// tell the client `err busy`, close it, and back off.
  void reject_accept_emfile(Clock::time_point now) {
    emfile_rejects.fetch_add(1, std::memory_order_relaxed);
    DFKY_OBS(obs::counter("dfkyd_accept_overflow_total").inc(););
    if (!emfile_logged) {
      emfile_logged = true;
      std::fprintf(stderr,
                   "dfkyd: accept: out of file descriptors; shedding new "
                   "connections (raise RLIMIT_NOFILE)\n");
    }
    if (reserve_fd >= 0) {
      ::close(reserve_fd);
      reserve_fd = -1;
      const int cfd =
          ::accept4(opts.listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd >= 0) {
        const char msg[] = "err busy\n";
        [[maybe_unused]] const ssize_t n =
            ::send(cfd, msg, sizeof msg - 1, MSG_NOSIGNAL | MSG_DONTWAIT);
        ::close(cfd);
      }
      reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    }
    pause_accept(/*busy=*/false,
                 now + std::chrono::milliseconds(opts.accept_backoff_ms));
  }

  void on_metrics_listen_ready(Clock::time_point now) {
    for (int i = 0; i < 16; ++i) {
      const int mfd =
          ::accept4(opts.metrics_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (mfd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN, EMFILE, ...: try again on the next wakeup
      }
      if (metrics_conns >= opts.max_metrics_conns) {
        // A scraper flood used to mean a thread per scrape, without
        // bound. Now it means a closed connection.
        metrics_rejects.fetch_add(1, std::memory_order_relaxed);
        DFKY_OBS(obs::counter("dfkyd_metrics_rejected_total").inc(););
        ::close(mfd);
        continue;
      }
      set_nonblocking(mfd);
      Conn* c = add_conn(mfd, /*metrics=*/true, now);
      c->deadline = now + std::chrono::milliseconds(opts.metrics_timeout_ms);
    }
  }

  Conn* add_conn(int fd, bool metrics, Clock::time_point now) {
    auto conn = std::make_unique<Conn>();
    Conn* c = conn.get();
    c->fd = fd;
    c->id = next_id++;
    c->metrics = metrics;
    c->last_activity = now;
    c->interest = EPOLLIN;
    conns.emplace(c->id, std::move(conn));
    if (metrics) {
      ++metrics_conns;
    } else {
      open_conns.fetch_add(1, std::memory_order_relaxed);
    }
    ep_add(fd, c->id, EPOLLIN);
    return c;
  }

  // ---- read paths ----

  void on_conn_readable(Conn& c, Clock::time_point now) {
    char buf[std::size_t{64} << 10];
    for (int i = 0; i < 16; ++i) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(c.id);
        return;
      }
      if (n == 0) {
        c.read_closed = true;
        break;
      }
      c.last_activity = now;
      if (c.metrics) {
        c.http_req.append(buf, static_cast<std::size_t>(n));
        if (c.http_req.size() > 8192) c.read_closed = true;  // not HTTP
        break;  // one request per connection; no need to drain more
      }
      c.framer.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      while (auto line = c.framer.next()) c.pending.push_back(std::move(*line));
      if (c.framer.overflowed()) {
        c.line_overflow = true;
        ::shutdown(c.fd, SHUT_RD);
        c.read_closed = true;
        break;
      }
      if (c.pending.size() >= opts.max_pending_per_conn) break;
    }
    if (c.metrics) {
      if (c.http_req.find("\r\n\r\n") != std::string::npos ||
          c.http_req.find("\n\n") != std::string::npos || c.read_closed) {
        c.read_closed = true;
        c.close_after_flush = true;
        if (!queue_bytes(c, metrics_http_response(c.http_req))) return;
      }
      maybe_finish(c.id);
      return;
    }
    if (!try_dispatch(c)) return;
    maybe_finish(c.id);
  }

  // ---- completions ----

  void on_completions() {
    char drainbuf[256];
    while (::read(comp_pipe[0], drainbuf, sizeof drainbuf) > 0) {
    }
    std::vector<Completion> done;
    {
      std::lock_guard lk(comp_mu);
      done.swap(completions);
    }
    const auto now = Clock::now();
    for (Completion& comp : done) {
      bool alive = true;
      if (Conn* c = find(comp.conn_id)) {
        if (comp.untagged) {
          c->untagged_running = false;
        } else if (c->in_flight > 0) {
          --c->in_flight;
        }
        c->last_activity = now;
        alive = queue_bytes(*c, std::move(comp.bytes));
        if (alive) alive = try_dispatch(*c);
        if (alive) maybe_finish(comp.conn_id);
      }
      if (comp.shutdown && on_shutdown) on_shutdown();
    }
  }

  // ---- periodic work ----

  void on_tick(Clock::time_point now) {
    maybe_resume_accept(now);
    if (now - last_tick < std::chrono::milliseconds(50)) return;
    last_tick = now;
    std::vector<std::uint64_t> reap_deadline;
    std::vector<std::uint64_t> reap_idle;
    for (const auto& [id, c] : conns) {
      if (c->deadline != Clock::time_point{} && now >= c->deadline) {
        reap_deadline.push_back(id);
        continue;
      }
      if (c->metrics || opts.idle_timeout_ms <= 0) continue;
      // A push stream is legitimately quiet between broadcasts — it is
      // never idle-reaped (a dead peer still fails its next fan-out).
      if (c->subscriber) continue;
      if (c->in_flight > 0 || c->untagged_running || !c->pending.empty() ||
          c->wq_size() > 0) {
        continue;
      }
      if (now - c->last_activity >=
          std::chrono::milliseconds(opts.idle_timeout_ms)) {
        reap_idle.push_back(id);
      }
    }
    for (const std::uint64_t id : reap_deadline) close_conn(id);
    for (const std::uint64_t id : reap_idle) {
      idle_reaped.fetch_add(1, std::memory_order_relaxed);
      DFKY_OBS(obs::counter("dfkyd_idle_reaped_total").inc(););
      close_conn(id);
    }
    DFKY_OBS(
        obs::gauge("dfkyd_conns").set(static_cast<std::int64_t>(
            open_conns.load(std::memory_order_relaxed)));
        obs::gauge("dfkyd_metrics_conns")
            .set(static_cast<std::int64_t>(metrics_conns));
        obs::gauge("dfkyd_feed_subscribers")
            .set(static_cast<std::int64_t>(subscribers.size()));
        if (now - last_fd_gauge >= std::chrono::seconds(1)) {
          last_fd_gauge = now;
          obs::gauge("dfkyd_fds_open")
              .set(static_cast<std::int64_t>(count_open_fds()));
          rlimit rl{};
          if (::getrlimit(RLIMIT_NOFILE, &rl) == 0) {
            obs::gauge("dfkyd_fds_limit")
                .set(static_cast<std::int64_t>(rl.rlim_cur));
          }
        });
  }

  // ---- drain ----

  /// Stop-the-front-end sequence, same contract as the threaded path:
  /// accepting stops, reads stop (undispatched input is dropped — the
  /// old loop dropped its read buffer the same way), every request
  /// already at the pool completes and its ack is flushed, then a
  /// bounded flush window covers clients slow to read the last bytes.
  void drain() {
    draining = true;
    ep_del(opts.wake_fd);  // level-triggered; would spin the drain loop
    if (!accept_paused) ep_del(opts.listen_fd);
    if (opts.metrics_fd >= 0) ep_del(opts.metrics_fd);
    for (auto& [id, c] : conns) {
      if (!c->read_closed) {
        ::shutdown(c->fd, SHUT_RD);
        c->read_closed = true;
      }
      c->pending.clear();
      update_interest(*c);
    }
    std::optional<Clock::time_point> flush_deadline;
    epoll_event events[64];
    for (;;) {
      // A worker finishing new-period mid-drain may still publish; fan
      // those frames out BEFORE deciding whether anything is unflushed,
      // so in-flight broadcasts reach every subscriber's last flush.
      on_feed_ready();
      bool executing = false;
      bool unflushed = false;
      for (const auto& [id, c] : conns) {
        if (c->in_flight > 0 || c->untagged_running) executing = true;
        if (c->wq_size() > 0) unflushed = true;
      }
      if (!executing && !unflushed) break;
      const auto now = Clock::now();
      if (!executing) {
        if (!flush_deadline) {
          flush_deadline = now + std::chrono::seconds(5);
        } else if (now >= *flush_deadline) {
          break;  // unresponsive clients forfeit their last responses
        }
      }
      const int n = ::epoll_wait(epfd, events, 64, 100);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const std::uint64_t id = events[i].data.u64;
        if (id == kCompletionId) {
          on_completions();
        } else if (id == kFeedId) {
          on_feed_ready();
        } else if (Conn* c = find(id)) {
          if (events[i].events & (EPOLLERR | EPOLLHUP)) {
            close_conn(id);
          } else if (events[i].events & EPOLLOUT) {
            if (flush_wq(*c)) maybe_finish(id);
          }
        }
      }
    }
    {
      std::lock_guard lk(jobs_mu);
      jobs_stop = true;
    }
    jobs_cv.notify_all();
    for (std::thread& w : workers) w.join();
    workers.clear();
    std::vector<std::uint64_t> ids;
    ids.reserve(conns.size());
    for (const auto& [id, c] : conns) ids.push_back(id);
    for (const std::uint64_t id : ids) close_conn(id);
  }

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock lk(jobs_mu);
        jobs_cv.wait(lk, [&] { return jobs_stop || !jobs.empty(); });
        if (jobs.empty()) return;  // stop requested and fully drained
        job = std::move(jobs.front());
        jobs.pop_front();
      }
      Result res = handler(job.line);
      res.response += '\n';
      {
        std::lock_guard lk(comp_mu);
        completions.push_back(Completion{job.conn_id, std::move(res.response),
                                         job.untagged, res.shutdown});
      }
      // Nonblocking kick; a full pipe already means a wakeup is pending.
      const char b = 1;
      [[maybe_unused]] const ssize_t n = ::write(comp_pipe[1], &b, 1);
    }
  }

  void run() {
    epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd < 0) {
      std::fprintf(stderr, "dfkyd: epoll_create1: %s\n", std::strerror(errno));
      return;
    }
    if (::pipe2(comp_pipe, O_CLOEXEC | O_NONBLOCK) != 0) {
      std::fprintf(stderr, "dfkyd: pipe2: %s\n", std::strerror(errno));
      ::close(epfd);
      epfd = -1;
      return;
    }
    reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    set_nonblocking(opts.listen_fd);
    if (opts.metrics_fd >= 0) set_nonblocking(opts.metrics_fd);

    ep_add(opts.wake_fd, kWakeId, EPOLLIN);
    ep_add(opts.listen_fd, kListenId, EPOLLIN);
    if (opts.metrics_fd >= 0) ep_add(opts.metrics_fd, kMetricsListenId, EPOLLIN);
    ep_add(comp_pipe[0], kCompletionId, EPOLLIN);
    if (opts.feed != nullptr && opts.feed->notify_fd() >= 0) {
      ep_add(opts.feed->notify_fd(), kFeedId, EPOLLIN);
    }

    const std::size_t nworkers = opts.workers > 0 ? opts.workers : 1;
    workers.reserve(nworkers);
    for (std::size_t i = 0; i < nworkers; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }

    epoll_event events[128];
    bool wake = false;
    while (!wake) {
      const int n = ::epoll_wait(epfd, events, 128, 250);
      if (n < 0) {
        if (errno == EINTR) continue;
        std::fprintf(stderr, "dfkyd: epoll_wait: %s\n", std::strerror(errno));
        break;
      }
      const auto now = Clock::now();
      for (int i = 0; i < n && !wake; ++i) {
        const std::uint64_t id = events[i].data.u64;
        switch (id) {
          case kWakeId:
            wake = true;
            break;
          case kListenId:
            on_listen_ready(now);
            break;
          case kMetricsListenId:
            on_metrics_listen_ready(now);
            break;
          case kCompletionId:
            on_completions();
            break;
          case kFeedId:
            on_feed_ready();
            break;
          default:
            if (Conn* c = find(id)) {
              if (events[i].events & (EPOLLERR | EPOLLHUP)) {
                close_conn(id);
                break;
              }
              if (events[i].events & EPOLLOUT) {
                if (!flush_wq(*c)) break;
                // Draining the queue may lift the backpressure pause.
                if (!try_dispatch(*c)) break;
              }
              if (events[i].events & EPOLLIN) {
                on_conn_readable(*c, now);
              } else {
                maybe_finish(id);
              }
            }
            break;
        }
      }
      on_tick(Clock::now());
    }

    drain();

    ::close(comp_pipe[0]);
    ::close(comp_pipe[1]);
    comp_pipe[0] = comp_pipe[1] = -1;
    if (reserve_fd >= 0) {
      ::close(reserve_fd);
      reserve_fd = -1;
    }
    ::close(epfd);
    epfd = -1;
  }
};

Reactor::Reactor(ReactorOptions opts, Handler handler,
                 std::function<std::size_t()> queue_depth,
                 std::function<void()> on_shutdown_request)
    : impl_(new Impl) {
  impl_->opts = opts;
  impl_->handler = std::move(handler);
  impl_->queue_depth = std::move(queue_depth);
  impl_->on_shutdown = std::move(on_shutdown_request);
}

Reactor::~Reactor() { delete impl_; }

void Reactor::run() { impl_->run(); }

Reactor::Stats Reactor::stats() const {
  Stats s;
  s.accepted = impl_->accepted.load(std::memory_order_relaxed);
  s.emfile_rejects = impl_->emfile_rejects.load(std::memory_order_relaxed);
  s.busy_shed = impl_->busy_shed.load(std::memory_order_relaxed);
  s.idle_reaped = impl_->idle_reaped.load(std::memory_order_relaxed);
  s.overflow_closed = impl_->overflow_closed.load(std::memory_order_relaxed);
  s.metrics_rejects = impl_->metrics_rejects.load(std::memory_order_relaxed);
  s.open_conns = impl_->open_conns.load(std::memory_order_relaxed);
  s.feed_shed = impl_->feed_shed.load(std::memory_order_relaxed);
  s.feed_replayed = impl_->feed_replayed.load(std::memory_order_relaxed);
  s.subscribers = impl_->subscriber_count.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dfky::daemon
