#include "daemon/reactor.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dfky::daemon {

namespace {

using Clock = std::chrono::steady_clock;

/// epoll_event.data.u64 sentinels; connection ids start above them.
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kListenId = 2;
constexpr std::uint64_t kMetricsListenId = 3;
constexpr std::uint64_t kCompletionId = 4;
constexpr std::uint64_t kFirstConnId = 16;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Verbs funneled through group commit — the only ones admission control
/// sheds. Reads stay cheap under load and repl/cluster verbs must never
/// bounce (a shed repl-append would stall replication exactly when the
/// primary is busiest).
bool is_shed_verb(std::string_view body) {
  const std::size_t sp = body.find(' ');
  const std::string_view verb =
      sp == std::string_view::npos ? body : body.substr(0, sp);
  return verb == "add-user" || verb == "revoke" || verb == "new-period";
}

/// One metrics scraper exchange (same contract as the old detached-thread
/// server): parse the request line, answer Prometheus text, close.
std::string metrics_http_response(const std::string& request) {
  std::string status = "200 OK";
  std::string body;
  if (request.starts_with("GET /trace")) {
    body = obs::trace_jsonl();
    if (!obs::enabled()) body = "# dfky observability layer compiled out\n";
    DFKY_OBS(obs::counter("dfkyd_trace_scrapes_total").inc(););
  } else if (request.starts_with("GET /metrics") ||
             request.starts_with("GET / ")) {
    body = obs::MetricsRegistry::instance().prometheus();
    if (!obs::enabled()) body = "# dfky observability layer compiled out\n";
    DFKY_OBS(obs::counter("dfkyd_metrics_scrapes_total").inc(););
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  char head[256];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %s\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status.c_str(), body.size());
  return std::string(head) + body;
}

std::size_t count_open_fds() {
  std::size_t n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n >= 3 ? n - 2 : n;  // ".", ".." and the opendir fd roughly cancel
}

}  // namespace

struct Reactor::Impl {
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    bool metrics = false;

    // Client conns: incremental framing + pipelining state.
    LineFramer framer;
    std::deque<std::string> pending;  // complete lines, not yet dispatched
    std::size_t in_flight = 0;        // tagged requests at the pool
    bool untagged_running = false;

    // Write side, both kinds of conn.
    std::string wq;  // unflushed response bytes
    std::size_t wq_off = 0;

    std::uint32_t interest = 0;  // events currently registered
    bool read_paused = false;
    bool read_closed = false;       // peer EOF (or drain shut the read side)
    bool close_after_flush = false;
    bool line_overflow = false;     // framer poisoned: err + close
    bool overflow_err_queued = false;

    Clock::time_point last_activity;
    /// Hard close time: always set on scrapers, set on a client conn
    /// once it owes us nothing but a final flush it may never take.
    Clock::time_point deadline{};
    std::string http_req;  // scrapers only

    std::size_t wq_size() const { return wq.size() - wq_off; }
  };

  struct Job {
    std::uint64_t conn_id;
    std::string line;
    bool untagged;
  };
  struct Completion {
    std::uint64_t conn_id;
    std::string bytes;  // newline-terminated response
    bool untagged;
    bool shutdown;
  };

  ReactorOptions opts;
  Handler handler;
  std::function<std::size_t()> queue_depth;
  std::function<void()> on_shutdown;

  int epfd = -1;
  int comp_pipe[2] = {-1, -1};  // [0] in epoll, [1] nonblocking, workers kick
  int reserve_fd = -1;          // burned to drain accepts under EMFILE

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_id = kFirstConnId;
  std::size_t metrics_conns = 0;

  bool draining = false;
  bool accept_paused = false;  // listen fd out of the epoll set
  bool accept_paused_busy = false;
  Clock::time_point accept_resume{};  // EMFILE backoff expiry
  bool emfile_logged = false;
  Clock::time_point last_fd_gauge{};
  Clock::time_point last_tick{};

  // Worker pool.
  std::vector<std::thread> workers;
  std::mutex jobs_mu;
  std::condition_variable jobs_cv;
  std::deque<Job> jobs;
  bool jobs_stop = false;
  std::mutex comp_mu;
  std::vector<Completion> completions;

  // Stats, readable from other threads (tests poll while run() serves).
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> emfile_rejects{0};
  std::atomic<std::uint64_t> busy_shed{0};
  std::atomic<std::uint64_t> idle_reaped{0};
  std::atomic<std::uint64_t> overflow_closed{0};
  std::atomic<std::uint64_t> metrics_rejects{0};
  std::atomic<std::size_t> open_conns{0};

  // ---- epoll plumbing ----

  void ep_add(int fd, std::uint64_t id, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  }
  void ep_mod(int fd, std::uint64_t id, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev);
  }
  void ep_del(int fd) { ::epoll_ctl(epfd, EPOLL_CTL_DEL, fd, nullptr); }

  /// Reconciles a connection's registered events with what it needs now:
  /// EPOLLIN unless its reads are paused or closed, EPOLLOUT while
  /// responses wait for socket buffer space.
  void update_interest(Conn& c) {
    std::uint32_t want = 0;
    if (!c.read_closed && !c.read_paused) want |= EPOLLIN;
    if (c.wq_size() > 0) want |= EPOLLOUT;
    if (want != c.interest) {
      ep_mod(c.fd, c.id, want);
      c.interest = want;
    }
  }

  // ---- connection lifecycle ----

  Conn* find(std::uint64_t id) {
    const auto it = conns.find(id);
    return it == conns.end() ? nullptr : it->second.get();
  }

  void close_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Conn& c = *it->second;
    if (c.metrics) {
      --metrics_conns;
    } else {
      open_conns.fetch_sub(1, std::memory_order_relaxed);
    }
    ::close(c.fd);  // the kernel drops it from the epoll set
    conns.erase(it);
  }

  /// Appends one response and flushes what the socket accepts now.
  /// Returns false when the connection was closed (write-queue overflow
  /// or a dead peer) — the caller's Conn reference is gone.
  bool queue_bytes(Conn& c, std::string bytes) {
    if (c.wq_off > 0 && c.wq_off == c.wq.size()) {
      c.wq.clear();
      c.wq_off = 0;
    }
    c.wq += std::move(bytes);
    return flush_wq(c);
  }

  bool flush_wq(Conn& c) {
    while (c.wq_off < c.wq.size()) {
      const ssize_t n = ::send(c.fd, c.wq.data() + c.wq_off,
                               c.wq.size() - c.wq_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(c.id);
        return false;
      }
      c.wq_off += static_cast<std::size_t>(n);
    }
    if (c.wq_off == c.wq.size()) {
      c.wq.clear();
      c.wq_off = 0;
    } else if (c.wq_off > (std::size_t{256} << 10)) {
      c.wq.erase(0, c.wq_off);
      c.wq_off = 0;
    }
    if (c.wq_size() > opts.write_queue_limit) {
      // The peer stopped reading its responses long ago; holding its
      // backlog in memory indefinitely is the unbounded-thread bug in a
      // new costume. Drop the connection.
      overflow_closed.fetch_add(1, std::memory_order_relaxed);
      DFKY_OBS(obs::counter("dfkyd_write_overflow_closed_total").inc(););
      close_conn(c.id);
      return false;
    }
    return true;
  }

  // ---- request dispatch ----

  void submit(std::uint64_t conn_id, std::string line, bool untagged) {
    {
      std::lock_guard lk(jobs_mu);
      jobs.push_back(Job{conn_id, std::move(line), untagged});
    }
    jobs_cv.notify_one();
  }

  bool should_shed(std::string_view body) const {
    if (opts.busy_queue_limit == 0 || !queue_depth) return false;
    if (!is_shed_verb(body)) return false;
    return queue_depth() >= opts.busy_queue_limit;
  }

  /// Hands as many buffered lines to the pool as the pipelining rules
  /// allow (protocol.h): tagged lines run concurrently up to the
  /// per-connection bound, an untagged line waits for all of them and
  /// then runs alone. Returns false when the connection closed under a
  /// locally answered `err busy` whose flush failed.
  bool try_dispatch(Conn& c) {
    while (!c.pending.empty()) {
      const TaggedLine tagged = split_request_tag(c.pending.front());
      const bool is_tagged = tagged.id.has_value() && !tagged.bad_tag;
      if (c.untagged_running) break;
      if (is_tagged) {
        if (c.in_flight >= opts.max_inflight_per_conn) break;
        if (should_shed(tagged.body)) {
          busy_shed.fetch_add(1, std::memory_order_relaxed);
          DFKY_OBS(obs::counter("dfkyd_busy_shed_total").inc(););
          const std::string resp =
              tag_response(tagged.id, err_response("busy")) + "\n";
          c.pending.pop_front();
          if (!queue_bytes(c, resp)) return false;
          continue;
        }
        ++c.in_flight;
        submit(c.id, std::move(c.pending.front()), /*untagged=*/false);
        c.pending.pop_front();
        continue;
      }
      if (c.in_flight > 0) break;
      if (should_shed(tagged.body)) {
        busy_shed.fetch_add(1, std::memory_order_relaxed);
        DFKY_OBS(obs::counter("dfkyd_busy_shed_total").inc(););
        c.pending.pop_front();
        if (!queue_bytes(c, err_response("busy") + "\n")) return false;
        continue;
      }
      c.untagged_running = true;
      submit(c.id, std::move(c.pending.front()), /*untagged=*/true);
      c.pending.pop_front();
      break;
    }
    c.read_paused = draining || c.line_overflow ||
                    c.pending.size() >= opts.max_pending_per_conn ||
                    c.wq_size() >= opts.write_queue_limit / 2;
    return true;
  }

  /// Finishing moves once a connection has nothing left to do: the
  /// deferred oversize-line error, then the close it has been waiting
  /// for (peer EOF, protocol violation, or a flushed scraper response).
  void maybe_finish(std::uint64_t id) {
    Conn* c = find(id);
    if (c == nullptr) return;
    const bool quiesced =
        c->pending.empty() && c->in_flight == 0 && !c->untagged_running;
    if (c->line_overflow && quiesced && !c->overflow_err_queued) {
      // Matches the threaded front end: every complete line already read
      // gets its answer first, then the violation is reported and the
      // connection dropped.
      c->overflow_err_queued = true;
      c->close_after_flush = true;
      c->deadline = Clock::now() + std::chrono::seconds(5);
      if (!queue_bytes(*c, err_response("request line too long") + "\n")) {
        return;
      }
    }
    if ((c->read_closed || c->close_after_flush) && quiesced &&
        c->wq_size() == 0) {
      close_conn(id);
      return;
    }
    update_interest(*c);
  }

  // ---- accept paths ----

  void pause_accept(bool busy, Clock::time_point resume) {
    if (!accept_paused) {
      ep_del(opts.listen_fd);
      accept_paused = true;
    }
    accept_paused_busy = busy;
    accept_resume = resume;
  }

  void maybe_resume_accept(Clock::time_point now) {
    if (!accept_paused || draining) return;
    if (accept_paused_busy) {
      if (opts.busy_queue_limit != 0 && queue_depth &&
          queue_depth() >= opts.busy_queue_limit) {
        return;
      }
    } else if (now < accept_resume) {
      return;
    }
    accept_paused = false;
    accept_paused_busy = false;
    ep_add(opts.listen_fd, kListenId, EPOLLIN);
  }

  void on_listen_ready(Clock::time_point now) {
    for (int i = 0; i < 64; ++i) {
      if (opts.busy_queue_limit != 0 && queue_depth &&
          queue_depth() >= opts.busy_queue_limit) {
        // Saturated: stop taking on new clients until the committers
        // drain the backlog (existing connections shed per-request).
        pause_accept(/*busy=*/true, now);
        return;
      }
      const int cfd =
          ::accept4(opts.listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EMFILE || errno == ENFILE) {
          reject_accept_emfile(now);
          return;
        }
        // ECONNABORTED and friends: the would-be client is gone; the
        // listen socket is fine.
        continue;
      }
      accepted.fetch_add(1, std::memory_order_relaxed);
      DFKY_OBS(obs::counter("dfkyd_connections_total").inc(););
      set_nonblocking(cfd);
      add_conn(cfd, /*metrics=*/false, now);
    }
  }

  /// EMFILE/ENFILE: the process is out of fds, and a level-triggered
  /// ready listen socket would otherwise spin this loop at 100% doing
  /// nothing. Burn the reserve fd to actually accept the connection,
  /// tell the client `err busy`, close it, and back off.
  void reject_accept_emfile(Clock::time_point now) {
    emfile_rejects.fetch_add(1, std::memory_order_relaxed);
    DFKY_OBS(obs::counter("dfkyd_accept_overflow_total").inc(););
    if (!emfile_logged) {
      emfile_logged = true;
      std::fprintf(stderr,
                   "dfkyd: accept: out of file descriptors; shedding new "
                   "connections (raise RLIMIT_NOFILE)\n");
    }
    if (reserve_fd >= 0) {
      ::close(reserve_fd);
      reserve_fd = -1;
      const int cfd =
          ::accept4(opts.listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd >= 0) {
        const char msg[] = "err busy\n";
        [[maybe_unused]] const ssize_t n =
            ::send(cfd, msg, sizeof msg - 1, MSG_NOSIGNAL | MSG_DONTWAIT);
        ::close(cfd);
      }
      reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    }
    pause_accept(/*busy=*/false,
                 now + std::chrono::milliseconds(opts.accept_backoff_ms));
  }

  void on_metrics_listen_ready(Clock::time_point now) {
    for (int i = 0; i < 16; ++i) {
      const int mfd =
          ::accept4(opts.metrics_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (mfd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN, EMFILE, ...: try again on the next wakeup
      }
      if (metrics_conns >= opts.max_metrics_conns) {
        // A scraper flood used to mean a thread per scrape, without
        // bound. Now it means a closed connection.
        metrics_rejects.fetch_add(1, std::memory_order_relaxed);
        DFKY_OBS(obs::counter("dfkyd_metrics_rejected_total").inc(););
        ::close(mfd);
        continue;
      }
      set_nonblocking(mfd);
      Conn* c = add_conn(mfd, /*metrics=*/true, now);
      c->deadline = now + std::chrono::milliseconds(opts.metrics_timeout_ms);
    }
  }

  Conn* add_conn(int fd, bool metrics, Clock::time_point now) {
    auto conn = std::make_unique<Conn>();
    Conn* c = conn.get();
    c->fd = fd;
    c->id = next_id++;
    c->metrics = metrics;
    c->last_activity = now;
    c->interest = EPOLLIN;
    conns.emplace(c->id, std::move(conn));
    if (metrics) {
      ++metrics_conns;
    } else {
      open_conns.fetch_add(1, std::memory_order_relaxed);
    }
    ep_add(fd, c->id, EPOLLIN);
    return c;
  }

  // ---- read paths ----

  void on_conn_readable(Conn& c, Clock::time_point now) {
    char buf[std::size_t{64} << 10];
    for (int i = 0; i < 16; ++i) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(c.id);
        return;
      }
      if (n == 0) {
        c.read_closed = true;
        break;
      }
      c.last_activity = now;
      if (c.metrics) {
        c.http_req.append(buf, static_cast<std::size_t>(n));
        if (c.http_req.size() > 8192) c.read_closed = true;  // not HTTP
        break;  // one request per connection; no need to drain more
      }
      c.framer.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      while (auto line = c.framer.next()) c.pending.push_back(std::move(*line));
      if (c.framer.overflowed()) {
        c.line_overflow = true;
        ::shutdown(c.fd, SHUT_RD);
        c.read_closed = true;
        break;
      }
      if (c.pending.size() >= opts.max_pending_per_conn) break;
    }
    if (c.metrics) {
      if (c.http_req.find("\r\n\r\n") != std::string::npos ||
          c.http_req.find("\n\n") != std::string::npos || c.read_closed) {
        c.read_closed = true;
        c.close_after_flush = true;
        if (!queue_bytes(c, metrics_http_response(c.http_req))) return;
      }
      maybe_finish(c.id);
      return;
    }
    if (!try_dispatch(c)) return;
    maybe_finish(c.id);
  }

  // ---- completions ----

  void on_completions() {
    char drainbuf[256];
    while (::read(comp_pipe[0], drainbuf, sizeof drainbuf) > 0) {
    }
    std::vector<Completion> done;
    {
      std::lock_guard lk(comp_mu);
      done.swap(completions);
    }
    const auto now = Clock::now();
    for (Completion& comp : done) {
      bool alive = true;
      if (Conn* c = find(comp.conn_id)) {
        if (comp.untagged) {
          c->untagged_running = false;
        } else if (c->in_flight > 0) {
          --c->in_flight;
        }
        c->last_activity = now;
        alive = queue_bytes(*c, std::move(comp.bytes));
        if (alive) alive = try_dispatch(*c);
        if (alive) maybe_finish(comp.conn_id);
      }
      if (comp.shutdown && on_shutdown) on_shutdown();
    }
  }

  // ---- periodic work ----

  void on_tick(Clock::time_point now) {
    maybe_resume_accept(now);
    if (now - last_tick < std::chrono::milliseconds(50)) return;
    last_tick = now;
    std::vector<std::uint64_t> reap_deadline;
    std::vector<std::uint64_t> reap_idle;
    for (const auto& [id, c] : conns) {
      if (c->deadline != Clock::time_point{} && now >= c->deadline) {
        reap_deadline.push_back(id);
        continue;
      }
      if (c->metrics || opts.idle_timeout_ms <= 0) continue;
      if (c->in_flight > 0 || c->untagged_running || !c->pending.empty() ||
          c->wq_size() > 0) {
        continue;
      }
      if (now - c->last_activity >=
          std::chrono::milliseconds(opts.idle_timeout_ms)) {
        reap_idle.push_back(id);
      }
    }
    for (const std::uint64_t id : reap_deadline) close_conn(id);
    for (const std::uint64_t id : reap_idle) {
      idle_reaped.fetch_add(1, std::memory_order_relaxed);
      DFKY_OBS(obs::counter("dfkyd_idle_reaped_total").inc(););
      close_conn(id);
    }
    DFKY_OBS(
        obs::gauge("dfkyd_conns").set(static_cast<std::int64_t>(
            open_conns.load(std::memory_order_relaxed)));
        obs::gauge("dfkyd_metrics_conns")
            .set(static_cast<std::int64_t>(metrics_conns));
        if (now - last_fd_gauge >= std::chrono::seconds(1)) {
          last_fd_gauge = now;
          obs::gauge("dfkyd_fds_open")
              .set(static_cast<std::int64_t>(count_open_fds()));
          rlimit rl{};
          if (::getrlimit(RLIMIT_NOFILE, &rl) == 0) {
            obs::gauge("dfkyd_fds_limit")
                .set(static_cast<std::int64_t>(rl.rlim_cur));
          }
        });
  }

  // ---- drain ----

  /// Stop-the-front-end sequence, same contract as the threaded path:
  /// accepting stops, reads stop (undispatched input is dropped — the
  /// old loop dropped its read buffer the same way), every request
  /// already at the pool completes and its ack is flushed, then a
  /// bounded flush window covers clients slow to read the last bytes.
  void drain() {
    draining = true;
    ep_del(opts.wake_fd);  // level-triggered; would spin the drain loop
    if (!accept_paused) ep_del(opts.listen_fd);
    if (opts.metrics_fd >= 0) ep_del(opts.metrics_fd);
    for (auto& [id, c] : conns) {
      if (!c->read_closed) {
        ::shutdown(c->fd, SHUT_RD);
        c->read_closed = true;
      }
      c->pending.clear();
      update_interest(*c);
    }
    std::optional<Clock::time_point> flush_deadline;
    epoll_event events[64];
    for (;;) {
      bool executing = false;
      bool unflushed = false;
      for (const auto& [id, c] : conns) {
        if (c->in_flight > 0 || c->untagged_running) executing = true;
        if (c->wq_size() > 0) unflushed = true;
      }
      if (!executing && !unflushed) break;
      const auto now = Clock::now();
      if (!executing) {
        if (!flush_deadline) {
          flush_deadline = now + std::chrono::seconds(5);
        } else if (now >= *flush_deadline) {
          break;  // unresponsive clients forfeit their last responses
        }
      }
      const int n = ::epoll_wait(epfd, events, 64, 100);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const std::uint64_t id = events[i].data.u64;
        if (id == kCompletionId) {
          on_completions();
        } else if (Conn* c = find(id)) {
          if (events[i].events & (EPOLLERR | EPOLLHUP)) {
            close_conn(id);
          } else if (events[i].events & EPOLLOUT) {
            if (flush_wq(*c)) maybe_finish(id);
          }
        }
      }
    }
    {
      std::lock_guard lk(jobs_mu);
      jobs_stop = true;
    }
    jobs_cv.notify_all();
    for (std::thread& w : workers) w.join();
    workers.clear();
    std::vector<std::uint64_t> ids;
    ids.reserve(conns.size());
    for (const auto& [id, c] : conns) ids.push_back(id);
    for (const std::uint64_t id : ids) close_conn(id);
  }

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock lk(jobs_mu);
        jobs_cv.wait(lk, [&] { return jobs_stop || !jobs.empty(); });
        if (jobs.empty()) return;  // stop requested and fully drained
        job = std::move(jobs.front());
        jobs.pop_front();
      }
      Result res = handler(job.line);
      res.response += '\n';
      {
        std::lock_guard lk(comp_mu);
        completions.push_back(Completion{job.conn_id, std::move(res.response),
                                         job.untagged, res.shutdown});
      }
      // Nonblocking kick; a full pipe already means a wakeup is pending.
      const char b = 1;
      [[maybe_unused]] const ssize_t n = ::write(comp_pipe[1], &b, 1);
    }
  }

  void run() {
    epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd < 0) {
      std::fprintf(stderr, "dfkyd: epoll_create1: %s\n", std::strerror(errno));
      return;
    }
    if (::pipe2(comp_pipe, O_CLOEXEC | O_NONBLOCK) != 0) {
      std::fprintf(stderr, "dfkyd: pipe2: %s\n", std::strerror(errno));
      ::close(epfd);
      epfd = -1;
      return;
    }
    reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    set_nonblocking(opts.listen_fd);
    if (opts.metrics_fd >= 0) set_nonblocking(opts.metrics_fd);

    ep_add(opts.wake_fd, kWakeId, EPOLLIN);
    ep_add(opts.listen_fd, kListenId, EPOLLIN);
    if (opts.metrics_fd >= 0) ep_add(opts.metrics_fd, kMetricsListenId, EPOLLIN);
    ep_add(comp_pipe[0], kCompletionId, EPOLLIN);

    const std::size_t nworkers = opts.workers > 0 ? opts.workers : 1;
    workers.reserve(nworkers);
    for (std::size_t i = 0; i < nworkers; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }

    epoll_event events[128];
    bool wake = false;
    while (!wake) {
      const int n = ::epoll_wait(epfd, events, 128, 250);
      if (n < 0) {
        if (errno == EINTR) continue;
        std::fprintf(stderr, "dfkyd: epoll_wait: %s\n", std::strerror(errno));
        break;
      }
      const auto now = Clock::now();
      for (int i = 0; i < n && !wake; ++i) {
        const std::uint64_t id = events[i].data.u64;
        switch (id) {
          case kWakeId:
            wake = true;
            break;
          case kListenId:
            on_listen_ready(now);
            break;
          case kMetricsListenId:
            on_metrics_listen_ready(now);
            break;
          case kCompletionId:
            on_completions();
            break;
          default:
            if (Conn* c = find(id)) {
              if (events[i].events & (EPOLLERR | EPOLLHUP)) {
                close_conn(id);
                break;
              }
              if (events[i].events & EPOLLOUT) {
                if (!flush_wq(*c)) break;
                // Draining the queue may lift the backpressure pause.
                if (!try_dispatch(*c)) break;
              }
              if (events[i].events & EPOLLIN) {
                on_conn_readable(*c, now);
              } else {
                maybe_finish(id);
              }
            }
            break;
        }
      }
      on_tick(Clock::now());
    }

    drain();

    ::close(comp_pipe[0]);
    ::close(comp_pipe[1]);
    comp_pipe[0] = comp_pipe[1] = -1;
    if (reserve_fd >= 0) {
      ::close(reserve_fd);
      reserve_fd = -1;
    }
    ::close(epfd);
    epfd = -1;
  }
};

Reactor::Reactor(ReactorOptions opts, Handler handler,
                 std::function<std::size_t()> queue_depth,
                 std::function<void()> on_shutdown_request)
    : impl_(new Impl) {
  impl_->opts = opts;
  impl_->handler = std::move(handler);
  impl_->queue_depth = std::move(queue_depth);
  impl_->on_shutdown = std::move(on_shutdown_request);
}

Reactor::~Reactor() { delete impl_; }

void Reactor::run() { impl_->run(); }

Reactor::Stats Reactor::stats() const {
  Stats s;
  s.accepted = impl_->accepted.load(std::memory_order_relaxed);
  s.emfile_rejects = impl_->emfile_rejects.load(std::memory_order_relaxed);
  s.busy_shed = impl_->busy_shed.load(std::memory_order_relaxed);
  s.idle_reaped = impl_->idle_reaped.load(std::memory_order_relaxed);
  s.overflow_closed = impl_->overflow_closed.load(std::memory_order_relaxed);
  s.metrics_rejects = impl_->metrics_rejects.load(std::memory_order_relaxed);
  s.open_conns = impl_->open_conns.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dfky::daemon
