// Group-commit queue for the manager daemon (DESIGN.md Sect. 10).
//
// Concurrent connections submit mutation closures; one committer thread
// drains the queue, puts the store into batching mode, executes the whole
// batch serially against the manager state, then issues the batch's single
// WAL append+fsync via StateStore::sync(). A submitter's run() returns
// only after the sync that covers its mutation — durable-before-ack is
// preserved, at one fsync per batch instead of one per mutation (measured
// in bench_daemon, E12).
//
// The state mutex is the daemon-wide reader/writer lock on the manager:
// the committer holds it exclusively for the duration of a batch, readers
// (status, encrypt) take it shared between batches.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/store.h"

namespace dfky::daemon {

class GroupCommit {
 public:
  /// Puts `store` into batching mode for its lifetime; both references
  /// must outlive the queue. `on_fatal` (optional) is invoked once, from
  /// the committer thread, when a batch's sync() fails — the queue has
  /// fail-stopped and the owner should shut down (see fatal()).
  /// `labels` is attached to every dfkyd_commit_* metric this queue
  /// emits; a sharded daemon passes {{"shard", "<k>"}} so per-shard
  /// committers stay distinguishable in one registry.
  /// `post_sync` (optional) runs on the committer thread after each
  /// successful batch sync, after the state lock is released but BEFORE
  /// any submitter is acked — the replication hook: a primary blocks here
  /// until live followers ack the batch, keeping durable-on-a-follower
  /// part of the acknowledgement contract. Its return value labels the
  /// batch's repl_ack trace spans (the follower names that held the
  /// batch; "" for no label). A throw REFUSES the ack: the batch is
  /// NACKed and the queue fail-stops (how a lease-fenced or stale-term
  /// primary guarantees it never acknowledges past the fence).
  GroupCommit(StateStore& store, std::shared_mutex& state_mu,
              std::function<void()> on_fatal = {}, obs::Labels labels = {},
              std::function<std::string()> post_sync = {});
  /// Drains everything still queued, stops the committer, returns the
  /// store to fsync-per-mutation mode (a poisoned store skips the flush).
  ~GroupCommit();

  GroupCommit(const GroupCommit&) = delete;
  GroupCommit& operator=(const GroupCommit&) = delete;

  /// The destructor's work as an idempotent, thread-safe call: drains the
  /// queue, joins the committer, returns the store to fsync-per-mutation
  /// mode. run() refuses new submissions from the moment this starts.
  /// demote() uses this to stop a live queue while stragglers may still
  /// hold a reference to it.
  void shut_down();

  /// Runs `op` on the committer thread, grouped under one fsync with
  /// concurrently submitted ops. `op` must only touch the store/manager
  /// (the committer already holds the state lock) and may throw
  /// dfky::Error for invalid requests — the exception is rethrown here
  /// and the op's own changes were never applied (manager mutations
  /// validate before they mutate). Blocks until the covering sync is
  /// durable. Throws ContractError after shutdown began or after a sync
  /// failure fail-stopped the queue.
  void run(const std::function<void()>& op);

  std::uint64_t batches() const { return batches_; }
  std::uint64_t committed() const { return committed_; }
  /// True after a batch's sync() failed. The batch's ops were applied to
  /// the in-memory manager but their durability is INDETERMINATE (the
  /// store is poisoned; what reached the WAL is recovered on the next
  /// open). The committer has exited, every queued ticket was failed, and
  /// run() refuses new work — the owner must fail-stop and restart.
  bool fatal() const {
    std::lock_guard lk(mu_);
    return fatal_;
  }

  /// Mutations currently waiting for the committer (excludes the batch
  /// being flushed right now). Health reporting reads this as the shard's
  /// queue depth.
  std::size_t queued() const {
    std::lock_guard lk(mu_);
    return queue_.size();
  }

  /// Mutations submitted but not yet acked or NACKed (queued + the batch
  /// in flight). Lock-free: the reactor's admission control polls this on
  /// every mutation dispatch, so it must never contend with the committer
  /// (DESIGN.md Sect. 15).
  std::size_t depth() const { return depth_.load(std::memory_order_relaxed); }

 private:
  struct Ticket {
    const std::function<void()>* op;
    std::exception_ptr error;
    bool done = false;
    /// The submitter's request trace, stamped by the committer thread
    /// (queue_wait / wal_append / fsync / repl_ack). Safe without extra
    /// synchronization: the submitter blocks until `done`, and the done
    /// hand-off (mutex + condvar) orders the committer's writes before
    /// the submitter's reads. Null when the request isn't traced.
    obs::TraceContext* trace = nullptr;
  };

  void committer_loop();

  StateStore& store_;
  std::shared_mutex& state_mu_;
  std::function<void()> on_fatal_;
  obs::Labels labels_;  // shard identity on every metric
  // Replication ack gate (may be empty); returns the repl_ack span label.
  std::function<std::string()> post_sync_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // committer: queue non-empty or stop
  std::condition_variable done_cv_;  // submitters: my ticket is done
  std::vector<Ticket*> queue_;
  bool stop_ = false;
  bool fatal_ = false;  // a sync failed; the committer has fail-stopped
  std::once_flag shutdown_once_;  // shut_down() races dtor vs demote

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::size_t> depth_{0};  // submitted and not yet (N)ACKed

  std::thread committer_;  // last member: starts after everything above
};

}  // namespace dfky::daemon
