#include "daemon/feed.h"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "obs/metrics.h"

namespace dfky::daemon {

namespace {

// Broadcast-to-all-current latency buckets: 10us .. 1s.
const std::vector<std::uint64_t> kBroadcastBoundsNs = {
    10'000,      50'000,      100'000,       500'000,     1'000'000,
    5'000'000,   10'000'000,  50'000'000,    100'000'000, 500'000'000,
    1'000'000'000};

}  // namespace

FeedFrame::~FeedFrame() {
  // The last subscriber write queue to finish with (or shed) this frame
  // destroys it — that instant is "every current subscriber has it".
  if (published == std::chrono::steady_clock::time_point{}) return;
  DFKY_OBS(
      const auto dt = std::chrono::steady_clock::now() - published;
      obs::histogram(
          "dfkyd_feed_broadcast_ns", {},
          kBroadcastBoundsNs)
          .observe(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                  .count())););
}

FeedHub::FeedHub() {
  if (::pipe2(pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    pipe_[0] = pipe_[1] = -1;
  }
}

FeedHub::~FeedHub() {
  for (int fd : pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void FeedHub::publish(std::string line, std::uint64_t period) {
  auto frame = std::make_shared<FeedFrame>();
  frame->line = std::move(line);
  frame->line += '\n';
  frame->period = period;
  frame->published = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending_.push_back(std::move(frame));
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  DFKY_OBS(obs::counter("dfkyd_feed_frames_total").inc(););
  if (pipe_[1] >= 0) {
    const char b = 'f';
    [[maybe_unused]] const ssize_t n = ::write(pipe_[1], &b, 1);
    // EAGAIN (pipe full) is fine: the reactor is already signalled.
  }
}

std::vector<FeedFramePtr> FeedHub::take_pending() {
  std::vector<FeedFramePtr> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.swap(pending_);
  return out;
}

void FeedHub::set_replay(FeedReplayFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  replay_ = std::move(fn);
}

FeedReplay FeedHub::replay(std::optional<std::uint64_t> from) const {
  FeedReplayFn fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn = replay_;
  }
  if (!fn) {
    // No history wired: fresh subscribes succeed (nothing to replay),
    // resume requests get eviction semantics.
    FeedReplay rep;
    rep.ok = !from.has_value();
    return rep;
  }
  return fn(from);
}

}  // namespace dfky::daemon
