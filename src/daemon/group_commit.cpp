#include "daemon/group_commit.h"

#include "obs/metrics.h"

namespace dfky::daemon {

GroupCommit::GroupCommit(StateStore& store, std::shared_mutex& state_mu,
                         std::function<void()> on_fatal, obs::Labels labels,
                         std::function<std::string()> post_sync)
    : store_(store),
      state_mu_(state_mu),
      on_fatal_(std::move(on_fatal)),
      labels_(std::move(labels)),
      post_sync_(std::move(post_sync)) {
  store_.set_batching(true);
  committer_ = std::thread([this] { committer_loop(); });
}

GroupCommit::~GroupCommit() { shut_down(); }

void GroupCommit::shut_down() {
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    committer_.join();
    // Returns the store to fsync-per-mutation mode. On the normal path this
    // flushes nothing (the committer drained the queue); after a fail-stop
    // the store is poisoned and set_batching skips the flush, so mutations
    // that were NACKed can never silently become durable here.
    store_.set_batching(false);
  });
}

void GroupCommit::run(const std::function<void()>& op) {
  Ticket ticket{&op, nullptr, false, obs::current_trace()};
  {
    std::unique_lock lk(mu_);
    if (fatal_) throw ContractError("group commit: store failed (fail-stop)");
    if (stop_) throw ContractError("group commit: shutting down");
    queue_.push_back(&ticket);
    depth_.fetch_add(1, std::memory_order_relaxed);
    work_cv_.notify_one();
    done_cv_.wait(lk, [&] { return ticket.done; });
  }
  if (ticket.error) std::rethrow_exception(ticket.error);
}

void GroupCommit::committer_loop() {
  for (;;) {
    std::vector<Ticket*> batch;
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      batch.swap(queue_);
    }
    bool sync_failed = false;
    {
      DFKY_OBS_TIMER(span, "dfkyd_commit_batch_ns", labels_);
      std::unique_lock state(state_mu_);
      for (Ticket* t : batch) {
        // The ticket's queue wait ends as its op starts executing.
        DFKY_OBS(if (t->trace) t->trace->mark(obs::SpanKind::kQueueWait););
        try {
          (*t->op)();
        } catch (...) {
          t->error = std::current_exception();
        }
      }
      try {
        store_.sync();
        // One append+fsync covered the whole batch, so every ticket gets
        // the same wal_append/fsync boundary: the store's append-done
        // stamp splits the two.
        DFKY_OBS(const std::uint64_t append_done =
                     store_.last_sync_append_done_ns();
                 const std::uint64_t sync_done =
                     obs::TraceContext::now_ns();
                 for (Ticket* t : batch) {
                   if (!t->trace) continue;
                   t->trace->mark_at(obs::SpanKind::kWalAppend, append_done);
                   t->trace->mark_at(obs::SpanKind::kFsync, sync_done);
                 });
      } catch (...) {
        // The batch's fsync (or rotation) failed: nothing in this batch is
        // acknowledged, and the store has poisoned itself against
        // re-appending the staged frames. The batch's mutations are live
        // in the in-memory manager though — serving on would let a later
        // flush (or shutdown) silently commit NACKed state. Fail-stop:
        // this thread exits, run() refuses new work, and the owner is
        // told to shut down so a restart can recover the true prefix.
        const std::exception_ptr err = std::current_exception();
        for (Ticket* t : batch) {
          if (!t->error) t->error = err;
        }
        sync_failed = true;
      }
    }
    std::string repl_label;
    if (!sync_failed && post_sync_) {
      // Replication gate, outside the state lock (the sender's shipping
      // threads take it shared to read the WAL) and before any ticket is
      // marked done — submitters never see their ack until live followers
      // hold the batch.
      try {
        repl_label = post_sync_();
      } catch (...) {
        // The gate REFUSED the ack (replication lease lost, or a higher
        // failover term fenced this node). The batch is durable in the
        // local WAL but acknowledging it would split history from the
        // cluster's: NACK every ticket and fail-stop exactly like a sync
        // failure. The un-acked suffix is discarded when this node
        // re-seeds from the new primary (DESIGN.md Sect. 14).
        const std::exception_ptr err = std::current_exception();
        for (Ticket* t : batch) {
          if (!t->error) t->error = err;
        }
        sync_failed = true;
      }
    }
    if (!sync_failed) {
      DFKY_OBS(const std::uint64_t acked = obs::TraceContext::now_ns();
               for (Ticket* t : batch) {
                 if (t->trace)
                   t->trace->mark_at(obs::SpanKind::kReplAck, acked,
                                     repl_label);
               });
      (void)repl_label;
      batches_.fetch_add(1, std::memory_order_relaxed);
      committed_.fetch_add(batch.size(), std::memory_order_relaxed);
      DFKY_OBS(obs::counter("dfkyd_commit_batches_total", labels_).inc();
               obs::counter("dfkyd_commit_mutations_total", labels_)
                   .inc(batch.size()););
    } else {
      // Before any submitter wakes to its NACK: by the time a client sees
      // the error, the shutdown is already underway.
      DFKY_OBS(obs::counter("dfkyd_commit_failures_total", labels_).inc(););
      if (on_fatal_) on_fatal_();
    }
    {
      std::lock_guard lk(mu_);
      for (Ticket* t : batch) t->done = true;
      depth_.fetch_sub(batch.size(), std::memory_order_relaxed);
      if (sync_failed) {
        // Anything enqueued while the failed batch ran gets failed too —
        // after fatal_ is set, run() rejects at the door.
        fatal_ = true;
        for (Ticket* t : queue_) {
          t->error = std::make_exception_ptr(
              ContractError("group commit: store failed (fail-stop)"));
          t->done = true;
        }
        depth_.fetch_sub(queue_.size(), std::memory_order_relaxed);
        queue_.clear();
      }
    }
    done_cv_.notify_all();
    if (sync_failed) return;
  }
}

}  // namespace dfky::daemon
