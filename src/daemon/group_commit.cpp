#include "daemon/group_commit.h"

#include "obs/metrics.h"

namespace dfky::daemon {

GroupCommit::GroupCommit(StateStore& store, std::shared_mutex& state_mu)
    : store_(store), state_mu_(state_mu) {
  store_.set_batching(true);
  committer_ = std::thread([this] { committer_loop(); });
}

GroupCommit::~GroupCommit() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  committer_.join();
  store_.set_batching(false);  // flushes anything a failed sync left staged
}

void GroupCommit::run(const std::function<void()>& op) {
  Ticket ticket{&op, nullptr, false};
  {
    std::unique_lock lk(mu_);
    if (stop_) throw ContractError("group commit: shutting down");
    queue_.push_back(&ticket);
    work_cv_.notify_one();
    done_cv_.wait(lk, [&] { return ticket.done; });
  }
  if (ticket.error) std::rethrow_exception(ticket.error);
}

void GroupCommit::committer_loop() {
  for (;;) {
    std::vector<Ticket*> batch;
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      batch.swap(queue_);
    }
    {
      DFKY_OBS_TIMER(span, "dfkyd_commit_batch_ns");
      std::unique_lock state(state_mu_);
      for (Ticket* t : batch) {
        try {
          (*t->op)();
        } catch (...) {
          t->error = std::current_exception();
        }
      }
      try {
        store_.sync();
      } catch (...) {
        // The fsync itself failed: nothing in this batch is acknowledged.
        const std::exception_ptr err = std::current_exception();
        for (Ticket* t : batch) {
          if (!t->error) t->error = err;
        }
      }
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    committed_.fetch_add(batch.size(), std::memory_order_relaxed);
    DFKY_OBS(obs::counter("dfkyd_commit_batches_total").inc();
             obs::counter("dfkyd_commit_mutations_total").inc(batch.size()););
    {
      std::lock_guard lk(mu_);
      for (Ticket* t : batch) t->done = true;
    }
    done_cv_.notify_all();
  }
}

}  // namespace dfky::daemon
