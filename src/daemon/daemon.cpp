#include "daemon/daemon.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <thread>

#include "core/content.h"
#include "core/keyfile.h"
#include "daemon/protocol.h"
#include "obs/metrics.h"
#include "serial/codec.h"

namespace dfky::daemon {

// ---- RequestHandler ------------------------------------------------------------

namespace {

const char* verb_label(const std::string& verb) {
  static constexpr const char* kVerbs[] = {
      "ping", "status", "add-user", "revoke", "new-period", "encrypt",
      "shutdown"};
  for (const char* v : kVerbs) {
    if (verb == v) return v;
  }
  return "unknown";  // keep the metric label set closed
}

std::string saturation_field(const SecurityManager& mgr) {
  return std::to_string(mgr.saturation_level()) + "/" +
         std::to_string(mgr.saturation_limit());
}

}  // namespace

RequestHandler::RequestHandler(StateStore& store, GroupCommit& commits,
                               std::shared_mutex& state_mu, Rng& rng)
    : store_(store), commits_(commits), state_mu_(state_mu), rng_(rng) {}

RequestHandler::Result RequestHandler::handle(const std::string& line) {
  Result res;
  if (line.size() > kMaxLineBytes) {
    res.response = err_response("request line too long");
    return res;
  }
  const std::vector<std::string> tokens = split_tokens(line);
  if (tokens.empty()) {
    res.response = err_response("empty request");
    return res;
  }
  if (tokens[0] == "shutdown") {
    res.response = ok_response();
    res.shutdown = true;
  } else {
    try {
      res.response = dispatch(tokens);
    } catch (const Error& e) {
      res.response = err_response(e.what());
    } catch (const std::exception& e) {
      res.response = err_response(std::string("internal: ") + e.what());
    }
  }
  DFKY_OBS(obs::counter("dfkyd_requests_total",
                        {{"verb", verb_label(tokens[0])},
                         {"outcome", res.response[0] == 'o' ? "ok" : "err"}})
               .inc(););
  return res;
}

std::string RequestHandler::dispatch(const std::vector<std::string>& tokens) {
  const std::string& verb = tokens[0];

  if (verb == "ping") {
    return ok_response({{"pid", std::to_string(::getpid())}});
  }

  if (verb == "status") {
    std::shared_lock state(state_mu_);
    const SecurityManager& mgr = store_.manager();
    std::size_t active = 0, revoked = 0;
    for (const UserRecord& u : mgr.users()) (u.revoked ? revoked : active) += 1;
    return ok_response(
        {{"pid", std::to_string(::getpid())},
         {"period", std::to_string(mgr.period())},
         {"active", std::to_string(active)},
         {"revoked", std::to_string(revoked)},
         {"saturation", saturation_field(mgr)},
         {"generation", std::to_string(store_.generation())},
         {"wal_records", std::to_string(store_.wal_records())},
         {"commit_batches", std::to_string(commits_.batches())},
         {"committed", std::to_string(commits_.committed())}});
  }

  if (verb == "add-user") {
    if (tokens.size() != 1) return err_response("add-user takes no arguments");
    std::uint64_t id = 0;
    Bytes key_file;
    commits_.run([&] {
      std::lock_guard rng_lk(rng_mu_);
      const SecurityManager::AddedUser added = store_.add_user(rng_);
      id = added.id;
      key_file = encode_key_file(store_.manager().params(),
                                 store_.manager().verification_key(),
                                 added.key);
    });
    return ok_response(
        {{"id", std::to_string(id)}, {"key", hex_encode(key_file)}});
  }

  if (verb == "revoke") {
    if (tokens.size() < 2) return err_response("usage: revoke <id...>");
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto id = parse_u64(tokens[i]);
      if (!id) return err_response("bad user id '" + tokens[i] + "'");
      ids.push_back(*id);
    }
    std::string period, saturation, bundles_csv;
    commits_.run([&] {
      std::lock_guard rng_lk(rng_mu_);
      const std::vector<SignedResetBundle> bundles =
          store_.remove_users(ids, rng_);
      const Group& group = store_.manager().params().group;
      for (std::size_t i = 0; i < bundles.size(); ++i) {
        Writer w;
        bundles[i].serialize(w, group);
        if (i > 0) bundles_csv += ',';
        bundles_csv += hex_encode(w.bytes());
      }
      period = std::to_string(store_.manager().period());
      saturation = saturation_field(store_.manager());
    });
    return ok_response({{"period", period},
                        {"saturation", saturation},
                        {"bundles", bundles_csv}});
  }

  if (verb == "new-period") {
    if (tokens.size() != 1) {
      return err_response("new-period takes no arguments");
    }
    std::string period, saturation, bundle_hex;
    commits_.run([&] {
      std::lock_guard rng_lk(rng_mu_);
      const SignedResetBundle bundle = store_.new_period(rng_);
      Writer w;
      bundle.serialize(w, store_.manager().params().group);
      bundle_hex = hex_encode(w.bytes());
      period = std::to_string(store_.manager().period());
      saturation = saturation_field(store_.manager());
    });
    return ok_response({{"period", period},
                        {"saturation", saturation},
                        {"bundle", bundle_hex}});
  }

  if (verb == "encrypt") {
    if (tokens.size() != 2) {
      return err_response("usage: encrypt <hex-payload>");
    }
    const auto payload = hex_decode(tokens[1]);
    if (!payload) return err_response("payload is not hex");
    std::shared_lock state(state_mu_);
    const SecurityManager& mgr = store_.manager();
    Writer w;
    {
      std::lock_guard rng_lk(rng_mu_);
      const ContentMessage msg =
          seal_content(mgr.params(), mgr.public_key(), *payload, rng_);
      msg.serialize(w, mgr.params().group);
    }
    return ok_response({{"bytes", std::to_string(payload->size())},
                        {"ct", hex_encode(w.bytes())}});
  }

  return err_response("unknown command '" + verb + "'");
}

// ---- Daemon --------------------------------------------------------------------

namespace {

std::atomic<int> g_wake_fd{-1};

void on_signal(int) {
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 1;
    // Best effort: a full pipe already means a wakeup is pending.
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

[[noreturn]] void die(const std::string& what) {
  std::fprintf(stderr, "dfkyd: %s: %s\n", what.c_str(), std::strerror(errno));
  std::exit(1);
}

/// One /metrics connection, served on its own short-lived detached thread
/// so a stalled scraper can never wedge the accept loop (the fd carries
/// recv/send timeouts set by the acceptor). Touches only process-global
/// state — it must not reference the Daemon, which may be torn down while
/// a slow scraper drains.
void serve_metrics_conn(int fd) {
  char req[2048];
  const ssize_t n = ::recv(fd, req, sizeof req - 1, 0);
  const std::string request(req, n > 0 ? static_cast<std::size_t>(n) : 0);
  std::string status = "200 OK";
  std::string body;
  if (request.starts_with("GET /metrics") || request.starts_with("GET / ")) {
    body = obs::MetricsRegistry::instance().prometheus();
    if (!obs::enabled()) body = "# dfky observability layer compiled out\n";
    DFKY_OBS(obs::counter("dfkyd_metrics_scrapes_total").inc(););
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  char head[256];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %s\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status.c_str(), body.size());
  send_all(fd, head);
  send_all(fd, body);
  ::close(fd);
}

}  // namespace

Daemon::Daemon(DaemonOptions opts) : opts_(std::move(opts)) {
  store_.emplace(StateStore::open(io_, opts_.store_dir, opts_.store));
  commits_.emplace(*store_, state_mu_, [this] {
    // Committer thread: a batch's sync failed, the store is poisoned.
    // Fail-stop — ack nothing more, shut down, let a restart recover.
    std::fprintf(stderr, "dfkyd: commit sync failed; shutting down\n");
    request_stop();
  });
  handler_.emplace(*store_, *commits_, state_mu_, rng_);
}

Daemon::~Daemon() {
  close_fd(listen_fd_);
  close_fd(metrics_fd_);
}

void Daemon::request_stop() {
  stopping_.store(true);
  const int fd = wake_fd_.load();
  if (fd >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}

int Daemon::run() {
  int pipefd[2];
  if (::pipe(pipefd) != 0) die("pipe");
  int wake_read = pipefd[0];
  wake_fd_.store(pipefd[1]);
  g_wake_fd.store(pipefd[1]);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) die("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "dfkyd: socket path too long: %s\n",
                 opts_.socket_path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  // A stale socket file from a SIGKILLed daemon would make bind fail; the
  // store LOCK is what actually guarantees one daemon per store.
  ::unlink(opts_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    die("bind " + opts_.socket_path);
  }
  if (::listen(listen_fd_, 64) != 0) die("listen");

  if (opts_.metrics_port >= 0) {
    metrics_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (metrics_fd_ < 0) die("metrics socket");
    const int one = 1;
    ::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sin.sin_port = htons(static_cast<std::uint16_t>(opts_.metrics_port));
    if (::bind(metrics_fd_, reinterpret_cast<sockaddr*>(&sin), sizeof sin) !=
        0) {
      die("metrics bind");
    }
    if (::listen(metrics_fd_, 16) != 0) die("metrics listen");
    socklen_t len = sizeof sin;
    ::getsockname(metrics_fd_, reinterpret_cast<sockaddr*>(&sin), &len);
    metrics_port_ = ntohs(sin.sin_port);
  }

  std::printf("dfkyd: serving %s on %s (pid %ld)\n", opts_.store_dir.c_str(),
              opts_.socket_path.c_str(), static_cast<long>(::getpid()));
  if (metrics_port_ >= 0) {
    std::printf("dfkyd: metrics on http://127.0.0.1:%d/metrics\n",
                metrics_port_);
  }
  std::printf("dfkyd: ready\n");
  std::fflush(stdout);

  while (!stopping_.load()) {
    pollfd fds[3] = {{wake_read, POLLIN, 0},
                     {listen_fd_, POLLIN, 0},
                     {metrics_fd_, POLLIN, 0}};
    const nfds_t nfds = metrics_fd_ >= 0 ? 3 : 2;
    const int n = ::poll(fds, nfds, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      die("poll");
    }
    if (fds[0].revents != 0) break;  // SIGINT/SIGTERM or shutdown request
    if (fds[1].revents & POLLIN) {
      const int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd >= 0) {
        {
          std::lock_guard lk(conns_mu_);
          conn_fds_.insert(cfd);
          ++active_conns_;
        }
        DFKY_OBS(obs::counter("dfkyd_connections_total").inc(););
        std::thread([this, cfd] { conn_loop(cfd); }).detach();
      }
    }
    if (nfds == 3 && (fds[2].revents & POLLIN)) {
      const int mfd = ::accept4(metrics_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (mfd >= 0) {
        // Timeouts bound the detached thread's lifetime; without them a
        // scraper that connects and sends nothing would hold the thread
        // (and, if served inline, the whole daemon) hostage.
        timeval tv{.tv_sec = 2, .tv_usec = 0};
        ::setsockopt(mfd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(mfd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        std::thread([mfd] { serve_metrics_conn(mfd); }).detach();
      }
    }
  }
  stopping_.store(true);

  // Shutdown sequence: stop accepting, nudge idle connections (their
  // in-flight requests still finish and get their acks), wait for the
  // connection threads, drain the commit queue, final snapshot, release
  // the store lock, remove the socket.
  close_fd(listen_fd_);
  close_fd(metrics_fd_);
  {
    std::lock_guard lk(conns_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  {
    std::unique_lock lk(conns_mu_);
    conns_cv_.wait(lk, [&] { return active_conns_ == 0; });
  }
  int rc = 0;
  handler_.reset();
  const bool commit_failed = commits_->fatal();
  commits_.reset();  // joins the committer; a poisoned store skips the flush
  if (commit_failed) {
    // Fail-stop shutdown: the last batch's durability is indeterminate;
    // skip the final snapshot (the store refuses it anyway) and exit
    // nonzero so supervisors restart us into recovery.
    std::fprintf(stderr, "dfkyd: exiting after commit failure; "
                         "restart recovers the durable prefix\n");
    rc = 1;
  } else {
    try {
      std::unique_lock state(state_mu_);
      store_->snapshot();
    } catch (const Error& e) {
      std::fprintf(stderr, "dfkyd: final snapshot failed: %s\n", e.what());
      rc = 1;
    }
  }
  store_.reset();  // releases the LOCK file
  ::unlink(opts_.socket_path.c_str());
  g_wake_fd.store(-1);
  close_fd(wake_read);
  const int wfd = wake_fd_.exchange(-1);
  if (wfd >= 0) ::close(wfd);
  std::printf("dfkyd: shutdown complete%s\n",
              rc == 0 ? "" : " (after commit failure)");
  std::fflush(stdout);
  return rc;
}

void Daemon::conn_loop(int fd) {
  std::string buf;
  char chunk[1 << 16];
  bool done = false;
  while (!done) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while (!done && (pos = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      RequestHandler::Result res = handler_->handle(line);
      res.response += '\n';
      if (!send_all(fd, res.response)) done = true;
      if (res.shutdown) {
        request_stop();
        done = true;
      }
    }
    if (buf.size() > kMaxLineBytes) {
      send_all(fd, err_response("request line too long") + "\n");
      done = true;
    }
  }
  ::close(fd);
  std::lock_guard lk(conns_mu_);
  conn_fds_.erase(fd);
  --active_conns_;
  conns_cv_.notify_all();
}

}  // namespace dfky::daemon
