#include "daemon/daemon.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <memory>
#include <random>
#include <shared_mutex>
#include <thread>

#include "daemon/protocol.h"
#include "daemon/reactor.h"
#include "serial/buffer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dfky::daemon {

// ---- RequestHandler ------------------------------------------------------------

namespace {

// Only referenced from DFKY_OBS blocks, hence unused in OFF builds.
[[maybe_unused]] const char* verb_label(const std::string& verb) {
  static constexpr const char* kVerbs[] = {
      "ping", "status", "add-user", "revoke", "new-period", "encrypt",
      "shutdown", "repl-status", "repl-append", "repl-snap", "repl-truncate",
      "repl-hb", "promote", "demote", "health", "trace", "subscribe"};
  for (const char* v : kVerbs) {
    if (verb == v) return v;
  }
  return "unknown";  // keep the metric label set closed
}

std::string saturation_field(const ShardRouter::Status& st) {
  return std::to_string(st.saturation_level) + "/" +
         std::to_string(st.saturation_limit);
}

std::string periods_field(const ShardRouter::Status& st) {
  std::string out;
  for (std::size_t i = 0; i < st.periods.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(st.periods[i]);
  }
  return out;
}

// Only referenced from a DFKY_OBS block (trace-id adoption).
[[maybe_unused]] std::optional<std::uint64_t> parse_hex_u64(
    std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

std::string bundles_field(const std::vector<Bytes>& bundles) {
  std::string out;
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    if (i > 0) out += ',';
    out += hex_encode(bundles[i]);
  }
  return out;
}

}  // namespace

RequestHandler::RequestHandler(ShardRouter& router, Hooks hooks)
    : router_(router), hooks_(std::move(hooks)) {}

RequestHandler::Result RequestHandler::handle(const std::string& line) {
  // The request's whole lifetime inside the daemon. The destructor closes
  // the final `respond` span (wakeup from the committer, response
  // formatting, tagging) and files the trace; layers below stamp their own
  // spans through the thread-local context or the group-commit ticket.
  // (maybe_unused: the OFF stub is stateless and side-effect free.)
  [[maybe_unused]] obs::ScopedTrace trace;
  Result res;
  if (line.size() > kMaxLineBytes) {
    res.response = err_response("request line too long");
    return res;
  }
  const TaggedLine tagged = split_request_tag(line);
  DFKY_OBS(obs::trace_mark(obs::SpanKind::kAccept););
  if (tagged.bad_tag) {
    res.response = err_response("malformed request tag");
    return res;
  }
  const std::vector<std::string> tokens = split_tokens(tagged.body);
  if (tokens.empty()) {
    res.response = tag_response(tagged.id, err_response("empty request"));
    return res;
  }
  DFKY_OBS(trace.set_verb(verb_label(tokens[0]));
           obs::trace_mark(obs::SpanKind::kParse););
  if (tokens[0] == "shutdown") {
    if (tokens.size() != 1) {
      res.response = err_response("shutdown takes no arguments");
    } else {
      res.response = ok_response();
      res.shutdown = true;
    }
  } else {
    try {
      res.response = dispatch(tokens);
    } catch (const Error& e) {
      res.response = err_response(e.what());
    } catch (const std::exception& e) {
      res.response = err_response(std::string("internal: ") + e.what());
    }
  }
  DFKY_OBS(obs::counter("dfkyd_requests_total",
                        {{"verb", verb_label(tokens[0])},
                         {"outcome", res.response[0] == 'o' ? "ok" : "err"}})
               .inc();
           trace.set_outcome(res.response[0] == 'o'););
  res.response = tag_response(tagged.id, std::move(res.response));
  return res;
}

std::string RequestHandler::dispatch(const std::vector<std::string>& tokens) {
  const std::string& verb = tokens[0];

  if (verb == "ping") {
    if (tokens.size() != 1) return err_response("ping takes no arguments");
    return ok_response({{"pid", std::to_string(::getpid())}});
  }

  if (verb == "status") {
    if (tokens.size() != 1) return err_response("status takes no arguments");
    const ShardRouter::Status st = router_.status();
    return ok_response(
        {{"pid", std::to_string(::getpid())},
         {"role", router_.follower() ? "follower" : "primary"},
         {"term", std::to_string(router_.term())},
         {"shards", std::to_string(st.shards)},
         {"period", std::to_string(st.period)},
         {"periods", periods_field(st)},
         {"active", std::to_string(st.active)},
         {"revoked", std::to_string(st.revoked)},
         {"saturation", saturation_field(st)},
         {"generation", std::to_string(st.generation)},
         {"wal_records", std::to_string(st.wal_records)},
         {"commit_batches", std::to_string(st.commit_batches)},
         {"committed", std::to_string(st.committed)}});
  }

  if (verb == "add-user") {
    if (tokens.size() != 1) return err_response("add-user takes no arguments");
    const ShardRouter::AddedUser added = router_.add_user();
    return ok_response({{"id", std::to_string(added.global_id)},
                        {"shard", std::to_string(added.shard)},
                        {"key", hex_encode(added.key_file)}});
  }

  if (verb == "revoke") {
    if (tokens.size() < 2) return err_response("usage: revoke <id...>");
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto id = parse_u64(tokens[i]);
      if (!id) return err_response("bad user id '" + tokens[i] + "'");
      ids.push_back(*id);
    }
    const ShardRouter::RevokeResult r = router_.revoke(ids);
    // A revoke that crossed its shard's saturation threshold rolled the
    // period reactively — subscribers need that reset like any other.
    if (!r.bundles.empty() && hooks_.publish) {
      hooks_.publish("bcast new-period period=" + std::to_string(r.period) +
                         " bundles=" + bundles_field(r.bundles),
                     r.period);
    }
    return ok_response({{"period", std::to_string(r.period)},
                        {"saturation", saturation_field(router_.status())},
                        {"bundles", bundles_field(r.bundles)}});
  }

  if (verb == "new-period") {
    if (tokens.size() != 1) {
      return err_response("new-period takes no arguments");
    }
    const ShardRouter::NewPeriodResult r = router_.new_period_all();
    if (hooks_.publish) {
      hooks_.publish("bcast new-period period=" + std::to_string(r.period) +
                         " bundles=" + bundles_field(r.bundles),
                     r.period);
    }
    return ok_response({{"period", std::to_string(r.period)},
                        {"saturation", saturation_field(router_.status())},
                        {"bundles", bundles_field(r.bundles)}});
  }

  if (verb == "repl-status") {
    if (tokens.size() != 1) {
      return err_response("repl-status takes no arguments");
    }
    const std::vector<ShardRouter::ReplPosition> pos = router_.repl_positions();
    std::vector<std::pair<std::string, std::string>> fields = {
        {"role", router_.follower() ? "follower" : "primary"},
        {"term", std::to_string(router_.term())},
        {"shards", std::to_string(pos.size())}};
    // How long ago this follower last heard any primary — election
    // candidates poll it to detect asymmetric partitions (a peer that
    // still hears a primary vetoes the election). Omitted when no
    // primary was ever heard: absence reads as "starved".
    const std::int64_t hb_age = router_.primary_contact_age_ms();
    if (router_.follower() && hb_age >= 0) {
      fields.emplace_back("hb_age_ms", std::to_string(hb_age));
    }
    for (std::size_t k = 0; k < pos.size(); ++k) {
      fields.emplace_back("s" + std::to_string(k),
                          std::to_string(pos[k].generation) + ":" +
                              std::to_string(pos[k].records) + ":" +
                              pos[k].chain_head);
    }
    return ok_response(fields);
  }

  if (verb == "repl-append") {
    if (tokens.size() != 6 && tokens.size() != 7) {
      return err_response(
          "usage: repl-append <shard> <generation> <term> <start-record> "
          "<hex-frames> [trace=<id>]");
    }
    const auto shard = parse_u64(tokens[1]);
    const auto gen = parse_u64(tokens[2]);
    const auto term = parse_u64(tokens[3]);
    const auto start = parse_u64(tokens[4]);
    if (!shard || !gen || !term || !start) {
      return err_response("repl-append: bad numeric argument");
    }
    const auto frames = hex_decode(tokens[5]);
    if (!frames) return err_response("repl-append: frames are not hex");
    if (tokens.size() == 7) {
      if (!tokens[6].starts_with("trace=")) {
        return err_response("repl-append: bad trailing token '" + tokens[6] +
                            "'");
      }
      // Join the primary's trace: this request's spans file under the id
      // of the mutation that produced the shipped frames.
      DFKY_OBS(if (const auto tid = parse_hex_u64(
                       std::string_view(tokens[6]).substr(6))) {
        obs::trace_adopt_id(*tid);
      });
    }
    const std::uint64_t seq = router_.replica_append(
        static_cast<std::size_t>(*shard), *gen, *start, *frames, *term);
    return ok_response({{"seq", std::to_string(seq)},
                        {"term", std::to_string(router_.term())}});
  }

  if (verb == "repl-snap") {
    if (tokens.size() != 5) {
      return err_response(
          "usage: repl-snap <shard> <generation> <term> <hex-snapshot>");
    }
    const auto shard = parse_u64(tokens[1]);
    const auto gen = parse_u64(tokens[2]);
    const auto term = parse_u64(tokens[3]);
    if (!shard || !gen || !term) {
      return err_response("repl-snap: bad numeric argument");
    }
    const auto frame = hex_decode(tokens[4]);
    if (!frame) return err_response("repl-snap: snapshot is not hex");
    router_.replica_snapshot(static_cast<std::size_t>(*shard), *gen, *frame,
                             *term);
    return ok_response({{"gen", std::to_string(*gen)}, {"seq", "0"}});
  }

  if (verb == "repl-truncate") {
    if (tokens.size() != 6) {
      return err_response(
          "usage: repl-truncate <shard> <generation> <term> <records> "
          "<chain-tag-hex>");
    }
    const auto shard = parse_u64(tokens[1]);
    const auto gen = parse_u64(tokens[2]);
    const auto term = parse_u64(tokens[3]);
    const auto records = parse_u64(tokens[4]);
    if (!shard || !gen || !term || !records) {
      return err_response("repl-truncate: bad numeric argument");
    }
    const std::uint64_t seq = router_.replica_truncate(
        static_cast<std::size_t>(*shard), *gen, *records, tokens[5], *term);
    return ok_response({{"seq", std::to_string(seq)}});
  }

  if (verb == "repl-hb") {
    if (tokens.size() != 2) return err_response("usage: repl-hb <term>");
    const auto term = parse_u64(tokens[1]);
    if (!term) return err_response("repl-hb: bad term");
    router_.note_primary_heartbeat(*term);
    return ok_response(
        {{"term", std::to_string(router_.term())},
         {"role", router_.follower() ? "follower" : "primary"}});
  }

  if (verb == "promote") {
    if (tokens.size() != 1) return err_response("promote takes no arguments");
    const ShardRouter::PromoteResult r = router_.promote();
    // A fresh primary must replicate before it acks: without the sender
    // the post_sync gate is a no-op and every mutation acks standalone,
    // silently voiding the armed majority-ack contract. Idempotent
    // re-promotes skip it — the sender is already running.
    if (!r.already && hooks_.post_promote) hooks_.post_promote();
    const ShardRouter::Status st = router_.status();
    return ok_response({{"role", "primary"},
                        {"already", r.already ? "1" : "0"},
                        {"term", std::to_string(r.term)},
                        {"period", std::to_string(st.period)},
                        {"wal_records", std::to_string(st.wal_records)}});
  }

  if (verb == "demote") {
    if (tokens.size() != 1) return err_response("demote takes no arguments");
    // Stop the replication sender FIRST: it releases any committer parked
    // in the ack gate, which demote() is about to join.
    if (hooks_.pre_demote) hooks_.pre_demote();
    const ShardRouter::PromoteResult r = router_.demote();
    // Back to follower: re-arm the failover watchdog, or the node would
    // silently stop voting in (and standing for) elections.
    if (!r.already && hooks_.post_demote) hooks_.post_demote();
    return ok_response({{"role", "follower"},
                        {"already", r.already ? "1" : "0"},
                        {"term", std::to_string(r.term)},
                        {"period", std::to_string(r.period)}});
  }

  if (verb == "health") {
    if (tokens.size() != 1) return err_response("health takes no arguments");
    const ShardRouter::HealthReport h = router_.health();
    // Verdict: `fail` when nothing can be acked any more (fail-stop or a
    // poisoned shard), `degraded` when the node serves but not fully (a
    // read-only follower, or a primary whose follower died and stopped
    // gating acks), `ok` otherwise. Reasons are comma-joined (values must
    // stay space-free for the k=v protocol).
    std::vector<std::string> reasons;
    for (std::size_t k = 0; k < h.poisoned.size(); ++k) {
      if (h.poisoned[k]) {
        reasons.push_back("shard" + std::to_string(k) + "-poisoned");
      }
    }
    if (h.fatal) reasons.push_back("fail-stop");
    const bool fail = !reasons.empty();
    if (h.follower) reasons.push_back("follower-read-only");
    if (h.fenced) reasons.push_back("fenced");
    std::size_t live = 0;
    std::uint64_t lag = 0;
    for (const auto& f : h.followers) {
      if (f.live) {
        ++live;
      } else {
        reasons.push_back("follower-dead:" + f.name);
      }
      lag += f.lag_records;
    }
    const char* verdict =
        fail ? "fail" : (reasons.empty() ? "ok" : "degraded");
    std::string poisoned, periods, queue_total;
    std::size_t queued = 0;
    for (std::size_t k = 0; k < h.poisoned.size(); ++k) {
      if (k > 0) {
        poisoned += ',';
        periods += ',';
      }
      poisoned += h.poisoned[k] ? '1' : '0';
      periods += std::to_string(h.periods[k]);
      queued += h.queue_depths[k];
    }
    std::string joined = "none";
    if (!reasons.empty()) {
      joined.clear();
      for (std::size_t i = 0; i < reasons.size(); ++i) {
        if (i > 0) joined += ',';
        joined += reasons[i];
      }
    }
    std::string watchdog = hooks_.watchdog_state ? hooks_.watchdog_state()
                                                 : std::string();
    if (watchdog.empty()) watchdog = "off";
    return ok_response(
        {{"verdict", verdict},
         {"role", h.follower ? "follower" : "primary"},
         {"term", std::to_string(h.term)},
         {"fenced", h.fenced ? "1" : "0"},
         {"watchdog", watchdog},
         {"shards", std::to_string(h.poisoned.size())},
         {"period", std::to_string(h.period)},
         {"periods", periods},
         {"poisoned", poisoned},
         {"queued", std::to_string(queued)},
         {"followers_live",
          std::to_string(live) + "/" + std::to_string(h.followers.size())},
         {"lag_records", std::to_string(lag)},
         {"reasons", joined}});
  }

  if (verb == "trace") {
    if (tokens.size() > 2) return err_response("usage: trace [max]");
    std::size_t max = 64;
    if (tokens.size() == 2) {
      const auto m = parse_u64(tokens[1]);
      if (!m) return err_response("bad trace count '" + tokens[1] + "'");
      max = static_cast<std::size_t>(*m);
    }
    // JSONL rides the one-line protocol as hex, exactly like key files and
    // ciphertexts do; GET /trace serves the same text raw.
    const std::string jsonl = obs::trace_jsonl(max);
    const std::size_t lines =
        static_cast<std::size_t>(std::count(jsonl.begin(), jsonl.end(), '\n'));
    return ok_response(
        {{"lines", std::to_string(lines)},
         {"jsonl", hex_encode(Bytes(jsonl.begin(), jsonl.end()))}});
  }

  if (verb == "encrypt") {
    if (tokens.size() != 2 && tokens.size() != 3) {
      return err_response("usage: encrypt <hex-payload> [shard]");
    }
    const auto payload = hex_decode(tokens[1]);
    if (!payload) return err_response("payload is not hex");
    std::size_t shard = 0;
    if (tokens.size() == 3) {
      const auto k = parse_u64(tokens[2]);
      if (!k) return err_response("bad shard index '" + tokens[2] + "'");
      shard = static_cast<std::size_t>(*k);
    }
    const Bytes ct = router_.encrypt(*payload, shard);
    if (hooks_.publish) {
      hooks_.publish("bcast encrypt shard=" + std::to_string(shard) +
                         " bytes=" + std::to_string(payload->size()) + " ct=" +
                         hex_encode(ct),
                     0);
    }
    return ok_response({{"bytes", std::to_string(payload->size())},
                        {"shard", std::to_string(shard)},
                        {"ct", hex_encode(ct)}});
  }

  if (verb == "subscribe") {
    // The reactor intercepts `subscribe` before it reaches a worker —
    // landing here means the connection has no stream to upgrade (the
    // in-process simulator, or a front end without a feed hub).
    return err_response("subscribe requires a streaming client connection");
  }

  return err_response("unknown command '" + verb + "'");
}

// ---- Daemon --------------------------------------------------------------------

namespace {

std::atomic<int> g_wake_fd{-1};

void on_signal(int) {
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 1;
    // Best effort: a full pipe already means a wakeup is pending.
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

[[noreturn]] void die(const std::string& what) {
  std::fprintf(stderr, "dfkyd: %s: %s\n", what.c_str(), std::strerror(errno));
  std::exit(1);
}

/// Replication link over the follower daemon's unix socket: one untagged
/// request line per roundtrip. Timeouts bound a hung follower — the
/// sender treats a timeout as a link failure and reconnects with backoff.
class SocketReplLink : public ReplLink {
 public:
  explicit SocketReplLink(int fd) : fd_(fd) {}
  ~SocketReplLink() override {
    if (fd_ >= 0) ::close(fd_);
  }
  std::optional<std::string> roundtrip(const std::string& line) override {
    if (!send_all(fd_, line + "\n")) return std::nullopt;
    for (;;) {
      const std::size_t pos = buf_.find('\n');
      if (pos != std::string::npos) {
        std::string resp = buf_.substr(0, pos);
        buf_.erase(0, pos + 1);
        if (!resp.empty() && resp.back() == '\r') resp.pop_back();
        return resp;
      }
      char chunk[1 << 16];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;  // peer gone, or timeout
      buf_.append(chunk, static_cast<std::size_t>(n));
      if (buf_.size() > kMaxLineBytes) return std::nullopt;
    }
  }

 private:
  int fd_;
  std::string buf_;
};

std::unique_ptr<ReplLink> connect_repl_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return nullptr;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return nullptr;
  }
  const timeval tv{.tv_sec = 30, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  return std::make_unique<SocketReplLink>(fd);
}

/// Forwards everything to the real io, sleeping before each fsync_file.
/// Armed only via the DFKYD_TEST_FSYNC_STALL_US environment variable —
/// the e2e harness's deterministic "slow disk" (DESIGN.md Sect. 13.3).
class StallFileIo final : public FileIo {
 public:
  StallFileIo(FileIo& inner, std::uint64_t stall_us)
      : inner_(inner), stall_us_(stall_us) {}

  bool exists(const std::string& p) const override { return inner_.exists(p); }
  bool is_dir(const std::string& p) const override { return inner_.is_dir(p); }
  std::vector<std::string> list(const std::string& d) const override {
    return inner_.list(d);
  }
  Bytes read(const std::string& p) const override { return inner_.read(p); }
  void write(const std::string& p, BytesView d) override { inner_.write(p, d); }
  void append(const std::string& p, BytesView d) override {
    inner_.append(p, d);
  }
  void truncate(const std::string& p, std::size_t s) override {
    inner_.truncate(p, s);
  }
  void rename(const std::string& f, const std::string& t) override {
    inner_.rename(f, t);
  }
  void remove(const std::string& p) override { inner_.remove(p); }
  void mkdir(const std::string& p) override { inner_.mkdir(p); }
  void fsync_file(const std::string& p) override {
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    inner_.fsync_file(p);
  }
  void fsync_dir(const std::string& d) override { inner_.fsync_dir(d); }
  bool lock(const std::string& p, std::uint64_t* h) override {
    return inner_.lock(p, h);
  }
  void unlock(const std::string& p) override { inner_.unlock(p); }

 private:
  FileIo& inner_;
  std::uint64_t stall_us_;
};

std::unique_ptr<FileIo> make_stall_io(FileIo& inner) {
  const char* env = std::getenv("DFKYD_TEST_FSYNC_STALL_US");
  if (env == nullptr || *env == '\0') return nullptr;
  const auto us = parse_u64(env);
  if (!us || *us == 0) return nullptr;
  std::fprintf(stderr, "dfkyd: TEST fsync stall armed: %llu us per fsync\n",
               static_cast<unsigned long long>(*us));
  return std::make_unique<StallFileIo>(inner, *us);
}

}  // namespace

Daemon::Daemon(DaemonOptions opts)
    : opts_(std::move(opts)),
      stall_io_(make_stall_io(real_io_)),
      io_(stall_io_ ? *stall_io_ : static_cast<FileIo&>(real_io_)) {
  std::vector<StateStore> stores;
  if (is_shard_root(io_, opts_.store_dir)) {
    if (opts_.follower) {
      // A follower opens its shards WITHOUT open_shard_set's epoch
      // equalization: rolling a laggard forward writes local new-period
      // records, forking the stream it is about to receive from the
      // primary. Mixed epochs on a follower are resolved by the primary's
      // frames — or by promote(), if this replica is the survivor.
      const std::size_t n = count_shards(io_, opts_.store_dir);
      for (std::size_t i = 0; i < n; ++i) {
        stores.push_back(StateStore::open(
            io_, opts_.store_dir + "/" + shard_dir_name(i), opts_.store));
      }
    } else {
      ShardSetReport report;
      stores =
          open_shard_set(io_, opts_.store_dir, rng_, opts_.store, &report);
      if (report.rolled_forward > 0) {
        std::fprintf(stderr,
                     "dfkyd: shard set recovered to epoch %llu "
                     "(%zu roll-forward(s))\n",
                     static_cast<unsigned long long>(report.epoch),
                     report.rolled_forward);
      }
    }
  } else {
    stores.push_back(StateStore::open(io_, opts_.store_dir, opts_.store));
  }
  router_.emplace(
      std::move(stores),
      [](std::size_t) { return std::make_unique<SystemRng>(); },
      [this] {
        // Committer/barrier thread: a sync failed, that shard's store is
        // poisoned. Fail-stop — ack nothing more, shut down, let a
        // restart recover.
        std::fprintf(stderr, "dfkyd: commit sync failed; shutting down\n");
        request_stop();
      },
      opts_.follower);
  feed_ = std::make_unique<FeedHub>();
  feed_->set_replay(
      [this](std::optional<std::uint64_t> from) { return feed_replay(from); });
  handler_.emplace(
      *router_,
      RequestHandler::Hooks{
          .pre_demote = [this] { stop_replication(); },
          .post_demote = [this] { start_watchdog(); },
          .post_promote = [this] { start_replication(); },
          .watchdog_state =
              [this] {
                std::lock_guard lk(watchdog_mu_);
                return watchdog_ ? std::string(FailoverWatchdog::state_name(
                                       watchdog_->state()))
                                 : std::string();
              },
          .publish =
              [this](std::string line, std::uint64_t period) {
                feed_->publish(std::move(line), period);
              }});
}

FeedReplay Daemon::feed_replay(std::optional<std::uint64_t> from) {
  // Runs on the reactor thread. Shared-lock every shard in index order
  // (the same order the epoch barrier locks them) for one consistent
  // cut of periods + archives.
  const std::size_t n = router_->shards();
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(n);
  for (std::size_t k = 0; k < n; ++k) locks.emplace_back(router_->state_mu(k));
  FeedReplay rep;
  for (std::size_t k = 0; k < n; ++k) {
    const SecurityManager& mgr = router_->store(k).manager();
    rep.current = std::max(rep.current, mgr.period());
    // The shard with the shortest archive binds how far back the feed
    // can bridge; beyond that the client needs the signed catch-up
    // protocol.
    rep.oldest = std::max(rep.oldest, mgr.archive_oldest_period());
  }
  if (!from) {  // fresh subscribe: current broadcasts only
    rep.ok = true;
    return rep;
  }
  if (*from >= rep.current) {  // nothing missed
    rep.ok = true;
    return rep;
  }
  if (*from + 1 < rep.oldest) return rep;  // evicted: ok stays false
  for (std::uint64_t p = *from + 1; p <= rep.current; ++p) {
    std::string bundles;
    for (std::size_t k = 0; k < n; ++k) {
      const SecurityManager& mgr = router_->store(k).manager();
      for (const SignedResetBundle& b : mgr.reset_archive()) {
        if (b.reset.new_period != p) continue;
        Writer w;
        b.serialize(w, mgr.params().group);
        if (!bundles.empty()) bundles += ',';
        bundles += hex_encode(std::move(w).take());
      }
    }
    // A shard that never rolled through p (per-shard reactive resets)
    // contributes nothing; skip epochs no shard archived.
    if (bundles.empty()) continue;
    rep.lines.push_back("bcast new-period period=" + std::to_string(p) +
                        " bundles=" + bundles);
  }
  rep.ok = true;
  return rep;
}

Daemon::~Daemon() {
  close_fd(listen_fd_);
  close_fd(metrics_fd_);
}

void Daemon::request_stop() {
  stopping_.store(true);
  const int fd = wake_fd_.load();
  if (fd >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}

void Daemon::probe_peers() {
  // Armed startup: learn the cluster's epoch BEFORE serving a request. A
  // revived ex-primary finds the successor's higher term here, demotes in
  // place and starts fenced as a follower — it never accepts a write the
  // cluster would have to disown (DESIGN.md Sect. 14).
  for (const std::string& path : opts_.replicate_to) {
    const auto link = connect_repl_socket(path);
    if (!link) continue;
    const auto out = link->roundtrip("repl-status");
    if (!out) continue;
    const auto resp = parse_response(*out);
    if (!resp || !resp->ok) continue;
    const auto term_it = resp->fields.find("term");
    if (term_it == resp->fields.end()) continue;
    const auto pterm = parse_u64(term_it->second);
    if (!pterm || *pterm <= router_->term()) continue;
    // ANY peer on a higher term proves a successor was elected (terms only
    // advance through promotes) — a primary that merely adopted the number
    // and kept serving would be a zombie running under the successor's own
    // term, indistinguishable from it to every follower.
    if (!router_->follower()) {
      const auto role = resp->fields.find("role");
      std::fprintf(stderr,
                   "dfkyd: peer %s (%s) is at term %llu (ours %llu): "
                   "starting fenced until re-seeded\n",
                   path.c_str(),
                   role != resp->fields.end() ? role->second.c_str()
                                              : "unknown role",
                   static_cast<unsigned long long>(*pterm),
                   static_cast<unsigned long long>(router_->term()));
      router_->demote();
      router_->fence(*pterm);
    } else {
      router_->adopt_term(*pterm);
    }
  }
}

void Daemon::start_replication() {
  std::lock_guard lk(repl_mu_);
  if (repl_ || opts_.replicate_to.empty()) return;
  std::vector<FollowerSpec> specs;
  for (const std::string& path : opts_.replicate_to) {
    specs.push_back(
        FollowerSpec{path, [path] { return connect_repl_socket(path); }});
    std::printf("dfkyd: replicating to %s\n", path.c_str());
  }
  ReplOptions ropts;
  if (opts_.auto_failover) {
    ropts.lease_ms = opts_.lease_ms;
    ropts.hb_interval_ms = opts_.hb_interval_ms;
    ropts.on_stale_term = [this](std::uint64_t t) {
      // Self-STONITH: a follower is on a newer primary's term. Fence (all
      // further mutations NACK with StaleTermError) and exit nonzero; the
      // restarted process probes the peers and re-seeds as a follower.
      std::fprintf(stderr,
                   "dfkyd: fenced by newer term %llu; shutting down\n",
                   static_cast<unsigned long long>(t));
      router_->fence(t);
      fenced_exit_.store(true);
      request_stop();
    };
  }
  repl_ = std::make_shared<ReplicationSender>(*router_, std::move(specs),
                                              ropts);
  router_->attach_replication(repl_);
  std::fflush(stdout);
}

void Daemon::stop_replication() {
  std::lock_guard lk(repl_mu_);
  if (!repl_) return;
  // Detach first (later syncs skip the gate), then stop() — it releases
  // any committer parked in sync_shard before joining the ship threads.
  // Dropping our reference does NOT destroy a sender a committer is still
  // borrowing inside sync_shard: the gate's shared_ptr keeps it alive
  // until the borrower leaves (stop() made that wait momentary).
  router_->attach_replication(nullptr);
  repl_->stop();
  repl_.reset();
}

void Daemon::start_watchdog() {
  if (!opts_.auto_failover || opts_.replicate_to.empty()) return;
  std::lock_guard lk(watchdog_mu_);
  // A watchdog still scanning keeps its state; one that retired in
  // kPromoted (its node was primary until this demote) is replaced.
  if (watchdog_ &&
      watchdog_->state() != FailoverWatchdog::State::kPromoted) {
    return;
  }
  FailoverOptions fo;
  fo.self = opts_.socket_path;
  for (const std::string& path : opts_.replicate_to) {
    fo.peers.push_back(
        FollowerSpec{path, [path] { return connect_repl_socket(path); }});
  }
  fo.hb_timeout_ms = opts_.hb_timeout_ms;
  fo.election_min_ms = opts_.election_min_ms;
  fo.election_max_ms = opts_.election_max_ms;
  fo.seed = (static_cast<std::uint64_t>(std::random_device{}()) << 32) ^
            std::random_device{}();
  fo.on_promoted = [this](std::uint64_t term) {
    std::printf("dfkyd: auto-failover: promoted to primary at term %llu\n",
                static_cast<unsigned long long>(term));
    std::fflush(stdout);
    start_replication();
  };
  watchdog_ = std::make_unique<FailoverWatchdog>(*router_, std::move(fo));
  std::printf("dfkyd: auto-failover watchdog armed (hb timeout %d ms)\n",
              opts_.hb_timeout_ms);
  std::fflush(stdout);
}

void Daemon::stop_watchdog() {
  std::lock_guard lk(watchdog_mu_);
  if (watchdog_) watchdog_->stop();
}

int Daemon::run() {
  int pipefd[2];
  if (::pipe(pipefd) != 0) die("pipe");
  int wake_read = pipefd[0];
  wake_fd_.store(pipefd[1]);
  g_wake_fd.store(pipefd[1]);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) die("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "dfkyd: socket path too long: %s\n",
                 opts_.socket_path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  // A stale socket file from a SIGKILLed daemon would make bind fail; the
  // store LOCK is what actually guarantees one daemon per store.
  ::unlink(opts_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    die("bind " + opts_.socket_path);
  }
  // Let the kernel clamp to net.core.somaxconn rather than hardcoding a
  // backlog far below it — a 10k-client reconnect storm overflows a
  // backlog of 64 and the overflow looks like silent connect stalls.
  const int backlog = opts_.backlog > 0 ? opts_.backlog : SOMAXCONN;
  if (::listen(listen_fd_, backlog) != 0) die("listen");

  // Serve with as many fds as the hard limit allows; connections are the
  // whole point of the reactor front end. Best effort — on failure the
  // EMFILE accept path sheds gracefully instead of spinning.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
  }

  if (opts_.metrics_port >= 0) {
    metrics_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (metrics_fd_ < 0) die("metrics socket");
    const int one = 1;
    ::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sin.sin_port = htons(static_cast<std::uint16_t>(opts_.metrics_port));
    if (::bind(metrics_fd_, reinterpret_cast<sockaddr*>(&sin), sizeof sin) !=
        0) {
      die("metrics bind");
    }
    if (::listen(metrics_fd_, 16) != 0) die("metrics listen");
    socklen_t len = sizeof sin;
    ::getsockname(metrics_fd_, reinterpret_cast<sockaddr*>(&sin), &len);
    metrics_port_ = ntohs(sin.sin_port);
  }

  std::printf("dfkyd: serving %s on %s (pid %ld)\n", opts_.store_dir.c_str(),
              opts_.socket_path.c_str(), static_cast<long>(::getpid()));
  if (router_->shards() > 1) {
    std::printf("dfkyd: shard set with %zu shards\n", router_->shards());
  }
  if (opts_.follower) {
    std::printf("dfkyd: follower (read-only replica; `promote` to serve "
                "mutations)\n");
  }
  if (opts_.auto_failover && !opts_.replicate_to.empty()) {
    probe_peers();
  }
  if (!opts_.replicate_to.empty() && !router_->follower()) {
    start_replication();
  }
  if (router_->follower()) start_watchdog();
  if (metrics_port_ >= 0) {
    std::printf("dfkyd: metrics on http://127.0.0.1:%d/metrics\n",
                metrics_port_);
  }
  ReactorOptions ropts;
  ropts.listen_fd = listen_fd_;
  ropts.metrics_fd = metrics_fd_;
  ropts.wake_fd = wake_read;
  const unsigned hw = std::thread::hardware_concurrency();
  ropts.workers = opts_.workers > 0
                      ? static_cast<std::size_t>(opts_.workers)
                      : std::clamp<std::size_t>(hw, 4, 16);
  ropts.idle_timeout_ms = opts_.idle_timeout_ms;
  ropts.busy_queue_limit = opts_.busy_queue_limit;
  ropts.feed = feed_.get();
  std::printf("dfkyd: reactor: %zu workers, backlog %d%s\n", ropts.workers,
              backlog,
              opts_.idle_timeout_ms > 0 ? ", idle timeout armed" : "");
  std::printf("dfkyd: ready\n");
  std::fflush(stdout);

  {
    Reactor reactor(
        ropts,
        [this](const std::string& line) {
          const RequestHandler::Result res = handler_->handle(line);
          return Reactor::Result{res.response, res.shutdown};
        },
        [this] { return router_->queue_depth_total(); },
        [this] { request_stop(); });
    // Serves until a signal, a `shutdown` request or a fail-stop makes
    // the wake pipe readable; returns with every request that reached
    // the pool answered and every client fd closed.
    reactor.run();
  }
  stopping_.store(true);

  // Shutdown sequence: the reactor already stopped accepting and drained
  // the connections (in-flight requests got their acks); now stop the
  // committers, final snapshot per shard, release the store locks,
  // remove the socket.
  close_fd(listen_fd_);
  close_fd(metrics_fd_);
  int rc = 0;
  // Watchdog first: after its thread joins, no promotion (and no sender
  // engagement) can race the teardown below.
  stop_watchdog();
  // Stop replication before the committers: stop() releases any committer
  // blocked in its post_sync ack gate, and detaching keeps later syncs
  // (final snapshot) from touching a dead sender.
  stop_replication();
  handler_.reset();
  const bool commit_failed = router_->fatal();
  router_->stop_commits();  // joins committers; poisoned shards skip the flush
  if (commit_failed || fenced_exit_.load()) {
    // Fail-stop shutdown: the last batch's (or barrier's) durability is
    // indeterminate — or this node was fenced by a newer term and its WAL
    // may carry a NACKed (forked) suffix. Skip the final snapshots (a
    // poisoned store refuses them anyway; snapshotting a fork would bake
    // it into a new generation) and exit nonzero so supervisors restart
    // us into recovery — roll-forward re-equalization, or a fenced
    // re-seed from the new primary.
    std::fprintf(stderr,
                 commit_failed
                     ? "dfkyd: exiting after commit failure; restart "
                       "recovers the durable prefix\n"
                     : "dfkyd: exiting fenced (a newer primary exists); "
                       "restart re-seeds from it\n");
    rc = 1;
  } else {
    try {
      router_->snapshot_all();
    } catch (const Error& e) {
      std::fprintf(stderr, "dfkyd: final snapshot failed: %s\n", e.what());
      rc = 1;
    }
  }
  router_.reset();  // releases every shard's LOCK file
  ::unlink(opts_.socket_path.c_str());
  g_wake_fd.store(-1);
  close_fd(wake_read);
  const int wfd = wake_fd_.exchange(-1);
  if (wfd >= 0) ::close(wfd);
  std::printf("dfkyd: shutdown complete%s\n",
              rc == 0 ? "" : " (after commit failure)");
  std::fflush(stdout);
  return rc;
}

}  // namespace dfky::daemon
