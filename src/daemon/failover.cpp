#include "daemon/failover.h"

#include <algorithm>

#include "daemon/protocol.h"
#include "daemon/shard.h"
#include "obs/metrics.h"

namespace dfky::daemon {

namespace {

std::optional<std::uint64_t> field_u64(const Response& r, const std::string& k) {
  const auto it = r.fields.find(k);
  if (it == r.fields.end()) return std::nullopt;
  return parse_u64(it->second);
}

/// Summed catch-up position parsed from a repl-status response:
/// generations first (a rotation outranks any record count within one),
/// then records. Identity breaks exact ties.
struct Position {
  std::uint64_t generations = 0;
  std::uint64_t records = 0;
};

Position parse_position(const Response& r) {
  Position p;
  for (std::size_t k = 0;; ++k) {
    const auto it = r.fields.find("s" + std::to_string(k));
    if (it == r.fields.end()) break;
    const std::size_t colon = it->second.find(':');
    if (colon == std::string::npos) continue;
    const std::size_t colon2 = it->second.find(':', colon + 1);
    const auto g = parse_u64(it->second.substr(0, colon));
    const auto s = parse_u64(
        it->second.substr(colon + 1, colon2 == std::string::npos
                                         ? std::string::npos
                                         : colon2 - colon - 1));
    if (g) p.generations += *g;
    if (s) p.records += *s;
  }
  return p;
}

}  // namespace

FailoverWatchdog::FailoverWatchdog(ShardRouter& router, FailoverOptions opts)
    : router_(router),
      opts_(std::move(opts)),
      rng_(opts_.seed),
      started_(std::chrono::steady_clock::now()) {
  DFKY_OBS(obs::gauge("dfky_watchdog_state").set(0););
  thread_ = std::thread([this] { loop(); });
}

FailoverWatchdog::~FailoverWatchdog() { stop(); }

void FailoverWatchdog::stop() {
  {
    std::lock_guard lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

const char* FailoverWatchdog::state_name(State s) {
  switch (s) {
    case State::kIdle:
      return "idle";
    case State::kWatching:
      return "watching";
    case State::kElecting:
      return "electing";
    case State::kPromoted:
      return "promoted";
  }
  return "?";
}

void FailoverWatchdog::set_state(State s) {
  state_.store(s);
  DFKY_OBS(obs::gauge("dfky_watchdog_state").set(static_cast<int>(s)););
}

bool FailoverWatchdog::stopped_wait(std::chrono::milliseconds d) {
  std::unique_lock lk(mu_);
  cv_.wait_for(lk, d, [&] { return stop_; });
  return stop_;
}

void FailoverWatchdog::loop() {
  set_state(State::kWatching);
  const auto hb_timeout = std::chrono::milliseconds(opts_.hb_timeout_ms);
  // Poll the contact clock a few times per timeout; the clock itself is
  // stamped by the ingest path, so silence detection needs no callbacks.
  const auto tick = std::chrono::milliseconds(
      std::clamp(opts_.hb_timeout_ms / 4, 5, 250));
  int backoff_ms = 0;
  for (;;) {
    if (!router_.follower()) {
      // A manual `promote` beat us to it — the watchdog's job is done.
      set_state(State::kPromoted);
      return;
    }
    const std::int64_t age = router_.primary_contact_age_ms();
    const auto since_start = std::chrono::steady_clock::now() - started_;
    const bool silent =
        age >= 0 ? age > opts_.hb_timeout_ms : since_start > hb_timeout;
    if (!silent) {
      set_state(State::kWatching);
      backoff_ms = 0;
      if (stopped_wait(tick)) return;
      continue;
    }
    // The primary is presumed dead. Randomized delay first — candidates
    // desynchronize, and a heartbeat arriving meanwhile cancels the round.
    set_state(State::kElecting);
    const int window = std::max(1, opts_.election_max_ms -
                                       opts_.election_min_ms + 1);
    const int delay_ms =
        opts_.election_min_ms +
        static_cast<int>(rng_() % static_cast<std::uint64_t>(window)) +
        backoff_ms;
    if (stopped_wait(std::chrono::milliseconds(delay_ms))) return;
    const std::int64_t age2 = router_.primary_contact_age_ms();
    if (age2 >= 0 && age2 <= opts_.hb_timeout_ms) continue;  // it came back
    switch (campaign()) {
      case Round::kWon:
        set_state(State::kPromoted);
        return;
      case Round::kPrimaryAlive:
        // Defer to that primary: restart our silence clock so the next
        // campaign is a full timeout away even if it never feeds US (the
        // partition heals, or its sender reaches us eventually).
        router_.stamp_primary_contact();
        backoff_ms = 0;
        set_state(State::kWatching);
        break;
      case Round::kLost:
      case Round::kNoQuorum:
        backoff_ms = std::min(
            backoff_ms == 0 ? std::max(1, opts_.election_min_ms)
                            : backoff_ms * 2,
            opts_.backoff_max_ms);
        break;
    }
  }
}

FailoverWatchdog::Round FailoverWatchdog::campaign() {
  DFKY_OBS(obs::counter("dfkyd_elections_total").inc(););
  Position mine;
  for (const auto& p : router_.repl_positions()) {
    mine.generations += p.generation;
    mine.records += p.records;
  }
  std::uint64_t max_term = router_.term();
  std::size_t votes = 1;  // self
  bool outranked = false;
  for (const FollowerSpec& peer : opts_.peers) {
    if (stopped_wait(std::chrono::milliseconds(0))) return Round::kNoQuorum;
    const auto link = peer.connect ? peer.connect() : nullptr;
    if (!link) continue;
    const auto out = link->roundtrip("repl-status");
    if (!out) continue;
    const auto resp = parse_response(*out);
    if (!resp || !resp->ok) continue;
    const auto pterm = field_u64(*resp, "term");
    if (pterm) max_term = std::max(max_term, *pterm);
    const auto role = resp->fields.find("role");
    if (role != resp->fields.end() && role->second == "primary") {
      if (!pterm || *pterm >= router_.term()) {
        // A live primary at our epoch or newer: adopt and stand down.
        if (pterm) router_.adopt_term(*pterm);
        return Round::kPrimaryAlive;
      }
      continue;  // a zombie at a stale term is not a vote — it gets fenced
    }
    const auto hb_age = field_u64(*resp, "hb_age_ms");
    if (hb_age && *hb_age <= static_cast<std::uint64_t>(opts_.hb_timeout_ms)) {
      // That follower still hears a primary we cannot reach (asymmetric
      // partition): electing ourselves would split the cluster.
      return Round::kPrimaryAlive;
    }
    ++votes;  // a reachable, equally starved follower
    const Position theirs = parse_position(*resp);
    if (theirs.generations > mine.generations ||
        (theirs.generations == mine.generations &&
         (theirs.records > mine.records ||
          (theirs.records == mine.records && peer.name < opts_.self)))) {
      outranked = true;  // keep polling: a primary answer still overrides
    }
  }
  // Majority of the follower set (cluster minus its one primary; with N
  // peers the follower set has N members — the dead primary is a peer but
  // not a follower). An armed ack reached >= (N+1)/2 followers, any two
  // such sets intersect with any N/2+1 voter set, and followers hold
  // prefixes of one chain — so the most-caught-up voter holds every acked
  // record, and standing down to it (kLost) never loses one.
  const std::size_t quorum = opts_.peers.size() / 2 + 1;
  if (votes < quorum) return Round::kNoQuorum;
  if (outranked) return Round::kLost;
  const std::uint64_t new_term = max_term + 1;
  try {
    const ShardRouter::PromoteResult r = router_.promote(new_term);
    DFKY_OBS(obs::counter("dfky_failovers_total").inc();
             obs::event({.name = "failover",
                         .detail = "promoted self, " +
                                   std::to_string(r.rolled) +
                                   " laggard roll-forward(s)",
                         .value = static_cast<std::int64_t>(new_term)}););
    (void)r;
  } catch (const Error&) {
    return Round::kNoQuorum;  // fail-stopped or raced; retry after backoff
  }
  if (opts_.on_promoted) opts_.on_promoted(new_term);
  return Round::kWon;
}

}  // namespace dfky::daemon
