// WAL-shipping replication for dfkyd (DESIGN.md Sect. 12).
//
// A primary daemon owns one ReplicationSender. The sender runs one thread
// per follower; each thread keeps a protocol link to its follower daemon
// (reconnecting with capped exponential backoff), learns the follower's
// per-shard position with `repl-status`, and streams the gap: raw WAL
// frames (`repl-append`, whole records, chunked under the protocol's line
// cap) while the generations match, the live snapshot file (`repl-snap`)
// when the follower is a generation behind. Followers append the frames
// verbatim — primary and follower share the store's HMAC key from the
// bootstrap clone, so the ordinary chain verification authenticates the
// stream and replicas stay byte-identical.
//
// The ack contract: sync_shard(k) blocks until every LIVE follower has
// acked shard k up to the head captured at entry. GroupCommit calls it
// from its post_sync hook, so a client's ack means the batch is durable on
// the primary AND on every live follower. A follower whose link drops is
// marked dead and stops gating acks — the primary degrades to standalone
// rather than stalling, and catches the follower up after reconnect.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common.h"

namespace dfky::daemon {

class ShardRouter;

/// One request/response round over the daemon protocol. Implementations:
/// a unix-socket client line (the daemon), a direct RequestHandler call
/// with fault injection (the simulator).
class ReplLink {
 public:
  virtual ~ReplLink() = default;
  /// Sends one request line (no trailing newline) and returns the response
  /// line, or nullopt on link failure (the sender reconnects and resyncs;
  /// the protocol is idempotent, so a lost ack only costs a re-ship).
  virtual std::optional<std::string> roundtrip(const std::string& line) = 0;
};

/// Reconnect seam: a fresh link, or nullptr while the follower is down.
using ReplLinkFactory = std::function<std::unique_ptr<ReplLink>()>;

struct FollowerSpec {
  std::string name;  // metric label ("follower") and log identity
  ReplLinkFactory connect;
};

struct ReplOptions {
  /// Raw frame bytes per repl-append line (hex doubles this on the wire;
  /// keep well under protocol::kMaxLineBytes).
  std::size_t max_batch_bytes = std::size_t{1} << 20;
  int backoff_min_ms = 10;   // reconnect backoff floor
  int backoff_max_ms = 500;  // reconnect backoff cap

  // -- failover arming (DESIGN.md Sect. 14; all zero = PR 6 semantics) ----------

  /// When > 0 the sender is ARMED: an ack additionally requires a majority
  /// of the cluster (acked followers + this primary) to hold the batch,
  /// and once no follower has answered any request within `lease_ms` the
  /// gate throws StaleTermError instead of acking — the primary fences
  /// itself BEFORE any follower's election timeout can elect a successor
  /// (keep lease_ms <= the followers' heartbeat timeout).
  int lease_ms = 0;
  /// Idle `repl-hb` cadence: keeps follower watchdogs fed and the lease
  /// fresh when no mutations flow. 0 disables (unarmed clusters).
  int hb_interval_ms = 0;
  /// Invoked (at most once, from a shipping thread) when a follower NACKs
  /// a shipment with `stale-term`: a newer primary exists and this node
  /// must stop acting as one. The callback must not join the sender's
  /// threads — trigger the owner's shutdown instead.
  std::function<void(std::uint64_t newer_term)> on_stale_term;
};

class ReplicationSender {
 public:
  /// Starts one shipping thread per follower. `router` must outlive the
  /// sender; call stop() (or destroy) before tearing the router down.
  ReplicationSender(ShardRouter& router, std::vector<FollowerSpec> followers,
                    ReplOptions opts = {});
  ~ReplicationSender();

  ReplicationSender(const ReplicationSender&) = delete;
  ReplicationSender& operator=(const ReplicationSender&) = delete;

  /// Blocks until every live follower acked shard k up to the durable head
  /// captured at entry (a follower that rotated past the captured
  /// generation counts as caught up). Returns immediately when no follower
  /// is live — a degraded primary acks standalone. Unblocked by stop().
  /// ARMED (ReplOptions::lease_ms > 0): additionally requires a cluster
  /// majority to hold the head, and throws StaleTermError once the lease
  /// expires or a stale-term NACK arrived — refusing the ack so the
  /// committer NACKs the batch and fail-stops (DESIGN.md Sect. 14).
  /// Returns the comma-joined names of the followers that held the head
  /// at return ("" when none) — the committer's repl_ack span label.
  std::string sync_shard(std::size_t shard);
  /// sync_shard for every shard — the barrier's prepare/commit gates.
  void sync_all();

  struct FollowerStatus {
    std::string name;
    bool live = false;
    std::vector<std::uint64_t> generation;  // per shard, last acked
    std::vector<std::uint64_t> acked;       // per shard, acked record count
  };
  std::vector<FollowerStatus> status() const;

  /// Stops the shipping threads and releases every sync_shard waiter.
  void stop();

 private:
  struct Follower {
    FollowerSpec spec;
    std::unique_ptr<ReplLink> link;  // touched only by its own thread
    bool live = false;               // guarded by mu_
    std::vector<std::uint64_t> gen;    // guarded by mu_
    std::vector<std::uint64_t> acked;  // guarded by mu_
    /// Chain head the follower reported at the last repl-status, hex, per
    /// shard; cleared once verified against ours (guarded by mu_). A
    /// mismatch at matching positions means a forked suffix — the
    /// divergence walk truncates it (DESIGN.md Sect. 14).
    std::vector<std::string> chain;
    /// Last successful roundtrip, any verb (guarded by mu_) — lease input.
    std::chrono::steady_clock::time_point last_contact{};
    std::thread thread;
  };

  void follower_loop(Follower& f);
  /// Connect + repl-status resync; false when the follower is unreachable
  /// (or NACKed us with a stale term / is itself a primary).
  bool establish(Follower& f);
  /// Ships shard k's gap; false on link failure (caller drops the link).
  /// Sets *shipped when at least one line went out.
  bool ship_shard(Follower& f, std::size_t k, bool* shipped);
  /// Walks the follower's forked shard k back to the longest shared chain
  /// prefix via repl-truncate; false on link failure.
  bool repair_divergence(Follower& f, std::size_t k, std::uint64_t pgen,
                         std::uint64_t precs, std::uint64_t fseq);
  void set_live(Follower& f, bool live);
  void note_contact(Follower& f);
  /// Inspects a follower's err response: a `stale-term` NACK adopts the
  /// newer term, signals on_stale_term once, and poisons further acks.
  void note_nack(const Follower& f, const std::string& error);
  void publish_lag(const std::string& follower, std::size_t k,
                   std::uint64_t lag_frames, std::uint64_t lag_bytes,
                   std::uint64_t acked) const;
  bool stopping() const;
  /// Armed only: true when no follower answered within lease_ms.
  bool lease_expired_locked(std::chrono::steady_clock::time_point now) const;

  ShardRouter& router_;
  ReplOptions opts_;
  /// The router's term at construction — this sender's TENURE term, stamped
  /// on every verb it ships. Deliberately NOT re-read from the router: a
  /// fence() adopts the deposing primary's newer term into the router, and a
  /// still-running shipping thread that re-read it could stamp verbs that
  /// pass the followers' term gate (a fenced zombie issuing repl-truncate
  /// under the successor's term is exactly the split-brain fencing exists to
  /// prevent). A promote creates a NEW sender, which captures the new term.
  const std::uint64_t term_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // shipping threads: new head or stop
  std::condition_variable ack_cv_;   // sync_shard waiters: acks advanced
  bool stop_ = false;
  /// A follower told us a newer primary exists (stale-term NACK). Armed
  /// senders refuse every further ack; set once, never cleared.
  std::atomic<bool> stale_term_seen_{false};
  std::atomic<std::uint64_t> stale_term_value_{0};

  std::vector<std::unique_ptr<Follower>> followers_;
};

}  // namespace dfky::daemon
