// WAL-shipping replication for dfkyd (DESIGN.md Sect. 12).
//
// A primary daemon owns one ReplicationSender. The sender runs one thread
// per follower; each thread keeps a protocol link to its follower daemon
// (reconnecting with capped exponential backoff), learns the follower's
// per-shard position with `repl-status`, and streams the gap: raw WAL
// frames (`repl-append`, whole records, chunked under the protocol's line
// cap) while the generations match, the live snapshot file (`repl-snap`)
// when the follower is a generation behind. Followers append the frames
// verbatim — primary and follower share the store's HMAC key from the
// bootstrap clone, so the ordinary chain verification authenticates the
// stream and replicas stay byte-identical.
//
// The ack contract: sync_shard(k) blocks until every LIVE follower has
// acked shard k up to the head captured at entry. GroupCommit calls it
// from its post_sync hook, so a client's ack means the batch is durable on
// the primary AND on every live follower. A follower whose link drops is
// marked dead and stops gating acks — the primary degrades to standalone
// rather than stalling, and catches the follower up after reconnect.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common.h"

namespace dfky::daemon {

class ShardRouter;

/// One request/response round over the daemon protocol. Implementations:
/// a unix-socket client line (the daemon), a direct RequestHandler call
/// with fault injection (the simulator).
class ReplLink {
 public:
  virtual ~ReplLink() = default;
  /// Sends one request line (no trailing newline) and returns the response
  /// line, or nullopt on link failure (the sender reconnects and resyncs;
  /// the protocol is idempotent, so a lost ack only costs a re-ship).
  virtual std::optional<std::string> roundtrip(const std::string& line) = 0;
};

/// Reconnect seam: a fresh link, or nullptr while the follower is down.
using ReplLinkFactory = std::function<std::unique_ptr<ReplLink>()>;

struct FollowerSpec {
  std::string name;  // metric label ("follower") and log identity
  ReplLinkFactory connect;
};

struct ReplOptions {
  /// Raw frame bytes per repl-append line (hex doubles this on the wire;
  /// keep well under protocol::kMaxLineBytes).
  std::size_t max_batch_bytes = std::size_t{1} << 20;
  int backoff_min_ms = 10;   // reconnect backoff floor
  int backoff_max_ms = 500;  // reconnect backoff cap
};

class ReplicationSender {
 public:
  /// Starts one shipping thread per follower. `router` must outlive the
  /// sender; call stop() (or destroy) before tearing the router down.
  ReplicationSender(ShardRouter& router, std::vector<FollowerSpec> followers,
                    ReplOptions opts = {});
  ~ReplicationSender();

  ReplicationSender(const ReplicationSender&) = delete;
  ReplicationSender& operator=(const ReplicationSender&) = delete;

  /// Blocks until every live follower acked shard k up to the durable head
  /// captured at entry (a follower that rotated past the captured
  /// generation counts as caught up). Returns immediately when no follower
  /// is live — a degraded primary acks standalone. Unblocked by stop().
  void sync_shard(std::size_t shard);
  /// sync_shard for every shard — the barrier's prepare/commit gates.
  void sync_all();

  struct FollowerStatus {
    std::string name;
    bool live = false;
    std::vector<std::uint64_t> generation;  // per shard, last acked
    std::vector<std::uint64_t> acked;       // per shard, acked record count
  };
  std::vector<FollowerStatus> status() const;

  /// Stops the shipping threads and releases every sync_shard waiter.
  void stop();

 private:
  struct Follower {
    FollowerSpec spec;
    std::unique_ptr<ReplLink> link;  // touched only by its own thread
    bool live = false;               // guarded by mu_
    std::vector<std::uint64_t> gen;    // guarded by mu_
    std::vector<std::uint64_t> acked;  // guarded by mu_
    std::thread thread;
  };

  void follower_loop(Follower& f);
  /// Connect + repl-status resync; false when the follower is unreachable.
  bool establish(Follower& f);
  /// Ships shard k's gap; false on link failure (caller drops the link).
  /// Sets *shipped when at least one line went out.
  bool ship_shard(Follower& f, std::size_t k, bool* shipped);
  void set_live(Follower& f, bool live);
  void publish_lag(const std::string& follower, std::size_t k,
                   std::uint64_t lag_frames, std::uint64_t lag_bytes,
                   std::uint64_t acked) const;
  bool stopping() const;

  ShardRouter& router_;
  ReplOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // shipping threads: new head or stop
  std::condition_variable ack_cv_;   // sync_shard waiters: acks advanced
  bool stop_ = false;

  std::vector<std::unique_ptr<Follower>> followers_;
};

}  // namespace dfky::daemon
