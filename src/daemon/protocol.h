// Wire protocol of the dfkyd manager daemon (DESIGN.md Sect. 10), plus the
// strict parsing helpers it shares with dfky_cli.
//
// Requests and responses are single LF-terminated text lines over a
// unix-domain stream socket:
//
//   request  := verb (' ' arg)*
//   response := "ok" (' ' key '=' value)*  |  "err " message
//
// Values never contain spaces or newlines: binary payloads (key files,
// reset bundles, ciphertexts) travel as lowercase hex, lists as
// comma-separated values. One request line yields exactly one response
// line.
//
// Pipelining (DESIGN.md Sect. 11): a request may carry a client-chosen
// tag as its first token, and the response echoes it:
//
//   request  := ['@' id ' '] verb (' ' arg)*
//   response := ['@' id ' '] ("ok" (' ' key '=' value)* | "err " message)
//
// Tagged requests on one connection may complete OUT OF ORDER (a sharded
// daemon runs them concurrently), so the tag — not arrival order — maps a
// response to its request. Untagged requests keep the strict one-in
// one-out ordering and never overlap tagged ones.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common.h"

namespace dfky::daemon {

/// Hard cap on one protocol line (request or response), framing included.
/// Generous enough for a sec2048 reset bundle in hex; anything larger is a
/// protocol violation, not a bigger buffer.
constexpr std::size_t kMaxLineBytes = std::size_t{8} << 20;

/// Strict base-10 uint64 parse: digits only (no sign, no whitespace, no
/// 0x), non-empty, must fit. Everything the CLI and the daemon accept as a
/// number goes through here — the stoull family's undocumented tolerance
/// for "-5" (wraps) and leading spaces is exactly the bug class this
/// replaces.
std::optional<std::uint64_t> parse_u64(std::string_view s);

std::string hex_encode(BytesView data);
/// Lowercase/uppercase hex -> bytes; nullopt on odd length or non-hex.
std::optional<Bytes> hex_decode(std::string_view hex);

/// Splits a request line on spaces; runs of spaces collapse, so empty
/// tokens never appear.
std::vector<std::string> split_tokens(std::string_view line);

/// A request line with its optional `@<id>` pipeline tag peeled off.
struct TaggedLine {
  std::optional<std::uint64_t> id;  // set iff the line began with a tag
  std::string_view body;            // the line after the tag (whole line if none)
  bool bad_tag = false;             // began with '@' but the id is malformed
};
/// Recognizes a leading `@<id>` token (strict parse_u64 id). A lone '@' or
/// a non-numeric id sets bad_tag — the daemon answers `err`, it does not
/// guess. The returned views alias `line`.
TaggedLine split_request_tag(std::string_view line);

/// Prefixes `response` with the `@<id> ` echo when `id` is set.
std::string tag_response(std::optional<std::uint64_t> id,
                         std::string response);

std::string ok_response(
    const std::vector<std::pair<std::string, std::string>>& fields = {});
/// The message is flattened to one line (newlines become spaces).
std::string err_response(std::string_view message);

struct Response {
  bool ok = false;
  std::optional<std::uint64_t> id;            // echoed pipeline tag, if any
  std::string error;                          // "err" responses
  std::map<std::string, std::string> fields;  // "ok" responses
};

/// Parses one response line (no trailing newline), including an optional
/// leading `@<id>` echo; nullopt when the line fits neither grammar
/// production.
std::optional<Response> parse_response(std::string_view line);

/// Incremental LF framing for a non-blocking byte stream (the reactor's
/// per-connection read path, DESIGN.md Sect. 15). Bytes go in as they
/// arrive, complete lines come out with the LF (and an optional trailing
/// CR) stripped. The scan position is remembered across feeds, so a line
/// arriving in many small reads costs one pass over each byte, not a
/// re-scan of the whole buffer per read. A partial line growing past
/// `max_line_bytes` poisons the framer: the connection is violating the
/// protocol and must be answered `err` and closed, not buffered further.
class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line_bytes = kMaxLineBytes)
      : max_(max_line_bytes) {}

  /// Appends raw bytes. Returns false when the framer is already
  /// poisoned (the bytes are dropped).
  bool feed(std::string_view data);
  /// Pops the next complete line, or nullopt when none is buffered (or
  /// the framer is poisoned). Overflow is detected here, so drain every
  /// complete line after each feed() — buffered() only means "incomplete
  /// tail" once next() has returned nullopt.
  std::optional<std::string> next();

  bool overflowed() const { return overflow_; }
  /// Bytes buffered but not yet returned (the incomplete tail).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;   // start of the first unreturned line
  std::size_t scan_ = 0;  // resume point for the LF scan
  std::size_t max_;
  bool overflow_ = false;
};

}  // namespace dfky::daemon
