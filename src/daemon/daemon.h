// dfkyd — the long-running manager daemon (DESIGN.md Sect. 10).
//
// One daemon owns one store directory (exclusively, via the store's LOCK
// file) and serves the newline protocol of daemon/protocol.h over a
// unix-domain stream socket. Mutations (`add-user`, `revoke`,
// `new-period`) are funneled through the GroupCommit queue and
// acknowledged only after their batch's fsync; reads (`status`,
// `encrypt`) run on the connection threads under a shared state lock.
// SIGINT/SIGTERM (or a `shutdown` request) drain in-flight requests, take
// a final snapshot and release the store. An optional loopback TCP port
// answers `GET /metrics` with the obs registry's Prometheus text.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>

#include "daemon/group_commit.h"
#include "rng/system_rng.h"
#include "store/store.h"

namespace dfky::daemon {

/// Request dispatch, socket-free so tests can drive it directly: one
/// protocol line in, one response line out (no trailing newline).
/// Thread-safe; mutations block until durable.
class RequestHandler {
 public:
  RequestHandler(StateStore& store, GroupCommit& commits,
                 std::shared_mutex& state_mu, Rng& rng);

  struct Result {
    std::string response;
    bool shutdown = false;  // a `shutdown` request was acknowledged
  };
  Result handle(const std::string& line);

 private:
  std::string dispatch(const std::vector<std::string>& tokens);

  StateStore& store_;
  GroupCommit& commits_;
  std::shared_mutex& state_mu_;
  Rng& rng_;
  std::mutex rng_mu_;  // encrypt (conn threads) vs mutations (committer)
};

struct DaemonOptions {
  std::string store_dir;
  std::string socket_path;
  /// Loopback TCP port for GET /metrics: -1 disables, 0 binds an
  /// ephemeral port (reported by metrics_port() and on stdout).
  int metrics_port = -1;
  StoreOptions store;
};

class Daemon {
 public:
  /// Opens the store (taking its LOCK — throws StoreLockedError when a
  /// second daemon targets the same directory).
  explicit Daemon(DaemonOptions opts);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the sockets, installs SIGINT/SIGTERM handlers, prints the
  /// `dfkyd: ready` line and serves until a signal, a `shutdown` request,
  /// or a group-commit failure (fail-stop); then drains connections,
  /// commits a final snapshot, releases the store lock and removes the
  /// socket. Returns the process exit code (nonzero after a fail-stop or
  /// a failed final snapshot).
  int run();

  /// The bound metrics port (resolves option 0); -1 when disabled.
  int metrics_port() const { return metrics_port_; }

 private:
  void conn_loop(int fd);
  void request_stop();

  DaemonOptions opts_;
  RealFileIo io_;
  std::optional<StateStore> store_;
  std::shared_mutex state_mu_;
  SystemRng rng_;
  std::optional<GroupCommit> commits_;
  std::optional<RequestHandler> handler_;

  int listen_fd_ = -1;
  int metrics_fd_ = -1;
  int metrics_port_ = -1;
  // Write end of the signal self-pipe. Atomic: the group-commit thread's
  // fail-stop callback writes to it concurrently with the main loop.
  std::atomic<int> wake_fd_{-1};
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::condition_variable conns_cv_;
  std::set<int> conn_fds_;
  std::size_t active_conns_ = 0;
};

}  // namespace dfky::daemon
