// dfkyd — the long-running manager daemon (DESIGN.md Sect. 10–11).
//
// One daemon owns one store directory — a plain store or a shard root
// (autodetected; every shard's LOCK is taken) — and serves the newline
// protocol of daemon/protocol.h over a unix-domain stream socket through
// a ShardRouter. Connections are owned by an epoll reactor
// (daemon/reactor.h) and requests execute on its small fixed worker
// pool. Mutations (`add-user`, `revoke`, `new-period`) are funneled
// through the owning shard's GroupCommit queue (new-period through the
// cross-shard epoch barrier) and acknowledged only after their fsync;
// reads (`status`, `encrypt`) run on the worker threads under shared
// state locks. Requests tagged `@<id>` run concurrently and may
// complete out of order; untagged requests keep strict ordering.
// SIGINT/SIGTERM (or a `shutdown` request) drain in-flight requests,
// take a final snapshot on every shard and release the stores. An
// optional loopback TCP port answers `GET /metrics` with the obs
// registry's Prometheus text.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "daemon/failover.h"
#include "daemon/feed.h"
#include "daemon/repl.h"
#include "daemon/shard.h"
#include "rng/system_rng.h"
#include "store/store.h"

namespace dfky::daemon {

/// Request dispatch, socket-free so tests can drive it directly: one
/// protocol line in, one response line out (no trailing newline); a
/// leading `@<id>` tag is echoed on the response. Thread-safe; mutations
/// block until durable on their shard.
class RequestHandler {
 public:
  /// Daemon-level integration points for verbs that reach beyond the
  /// router. All optional — the simulator and tests wire what they need.
  struct Hooks {
    /// Invoked before ShardRouter::demote(): the owner detaches and stops
    /// its replication sender so no committer can be parked in the ack
    /// gate while demote() joins it.
    std::function<void()> pre_demote;
    /// Invoked after a non-idempotent demote: the owner re-arms its
    /// failover watchdog so the node keeps voting in (and standing for)
    /// elections as a follower.
    std::function<void()> post_demote;
    /// Invoked after a non-idempotent promote: the owner starts its
    /// replication sender — without it a manually promoted node would ack
    /// every mutation standalone, voiding the armed majority-ack contract
    /// (the watchdog's auto-promote runs the same path via on_promoted).
    std::function<void()> post_promote;
    /// Returns the failover watchdog's state name ("watching", ...) or ""
    /// when none is armed — surfaced by `health`.
    std::function<std::string()> watchdog_state;
    /// Invoked after a committed broadcast-worthy mutation (`new-period`,
    /// a revoke that rolled its shard's period, `encrypt`) with the push
    /// line for the streaming feed (DESIGN.md Sect. 16). Runs on the
    /// worker thread AFTER durability — subscribers never see an epoch
    /// the store could still lose.
    std::function<void(std::string line, std::uint64_t period)> publish;
  };

  explicit RequestHandler(ShardRouter& router, Hooks hooks = {});

  struct Result {
    std::string response;
    bool shutdown = false;  // a `shutdown` request was acknowledged
  };
  Result handle(const std::string& line);

 private:
  std::string dispatch(const std::vector<std::string>& tokens);

  ShardRouter& router_;
  Hooks hooks_;
};

struct DaemonOptions {
  std::string store_dir;  // plain store or shard root (autodetected)
  std::string socket_path;
  /// Loopback TCP port for GET /metrics: -1 disables, 0 binds an
  /// ephemeral port (reported by metrics_port() and on stdout).
  int metrics_port = -1;
  /// listen(2) backlog for the client socket; 0 uses SOMAXCONN (the
  /// kernel clamps to net.core.somaxconn either way — see README).
  int backlog = 0;
  /// Close client connections idle this long, in ms (0: never reap).
  int idle_timeout_ms = 0;
  /// Request-execution pool size; 0 sizes from the hardware (clamped to
  /// [4, 16]). This bounds concurrently executing requests daemon-wide —
  /// connections themselves are nearly free under the reactor.
  int workers = 0;
  /// Admission control (DESIGN.md Sect. 15): shed mutations with
  /// `err busy` and pause accepting while the group-commit queues hold
  /// this many un-acked mutations (0 disables).
  std::size_t busy_queue_limit = 1024;
  StoreOptions store;
  /// Come up as a read-only replica (DESIGN.md Sect. 12): no committers,
  /// mutations rejected, state advances via repl-append/repl-snap from a
  /// primary, `promote` flips to primary. A follower shard set is opened
  /// WITHOUT epoch equalization — rolling laggards forward writes local
  /// new-period records, which would fork the replicated stream.
  bool follower = false;
  /// Peer daemon socket paths. On a primary: the followers it replicates
  /// to. With auto_failover, every node lists every OTHER cluster member
  /// here (symmetric peer lists) — a promoted follower replicates to the
  /// same set it used to watch.
  std::vector<std::string> replicate_to;
  /// Arms self-healing failover (DESIGN.md Sect. 14). On a primary the
  /// replication sender gains a majority-ack lease plus idle heartbeats
  /// and the daemon fail-stops when fenced by a newer term; on a follower
  /// a watchdog election-promotes it once the primary goes silent. Both
  /// roles probe the peers at startup and start fenced if a newer-term
  /// primary already exists.
  bool auto_failover = false;
  /// Armed timings. Keep lease_ms <= hb_timeout_ms: a primary that lost
  /// its lease has fenced itself before any follower campaigns.
  int lease_ms = 750;
  int hb_interval_ms = 200;
  int hb_timeout_ms = 1000;
  int election_min_ms = 100;
  int election_max_ms = 400;
};

class Daemon {
 public:
  /// Opens the store — `opts.store_dir/shard.0` existing makes it a shard
  /// set, every shard's LOCK is taken (throws StoreLockedError when any
  /// shard is held by another daemon, and the already-locked shards are
  /// released). Laggard shards are rolled forward to the set's epoch.
  explicit Daemon(DaemonOptions opts);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the sockets, installs SIGINT/SIGTERM handlers, prints the
  /// `dfkyd: ready` line and serves until a signal, a `shutdown` request,
  /// or a commit/barrier failure (fail-stop); then drains connections,
  /// commits a final snapshot per shard, releases the store locks and
  /// removes the socket. Returns the process exit code (nonzero after a
  /// fail-stop or a failed final snapshot).
  int run();

  /// The bound metrics port (resolves option 0); -1 when disabled.
  int metrics_port() const { return metrics_port_; }

 private:
  void request_stop();
  /// Replay source for `subscribe from-period`: rebuilds the missed
  /// `new-period` push lines out of the shards' reset archives.
  FeedReplay feed_replay(std::optional<std::uint64_t> from);
  void probe_peers();        // armed startup: adopt/fence the cluster epoch
  void start_replication();  // idempotent; manual promote and on_promoted
  void stop_replication();   // idempotent; pre-demote and shutdown
  void start_watchdog();     // idempotent; armed startup and post-demote
  void stop_watchdog();      // shutdown

  DaemonOptions opts_;
  RealFileIo real_io_;
  /// Test-only: when DFKYD_TEST_FSYNC_STALL_US is set in the environment,
  /// every fsync sleeps that many microseconds first — daemon_e2e.sh uses
  /// it to force requests over the slow-trace threshold. Null in normal
  /// operation.
  std::unique_ptr<FileIo> stall_io_;
  FileIo& io_;  // stall_io_ when armed, else real_io_
  SystemRng rng_;  // shard-set open (roll-forward); shards get their own
  std::optional<ShardRouter> router_;
  /// Streaming fan-out hub (DESIGN.md Sect. 16): workers publish
  /// committed broadcasts through the handler's publish hook, the
  /// reactor fans them out to `subscribe`d connections. Created before
  /// handler_ (the hooks capture it) and destroyed after the reactor.
  std::unique_ptr<FeedHub> feed_;
  std::optional<RequestHandler> handler_;
  /// Engaged on a (possibly just-promoted) primary with peers. Guarded by
  /// repl_mu_: the watchdog thread engages it on promotion while a demote
  /// request or the shutdown path stops it. A shared_ptr because the
  /// router's committers borrow it through the post_sync gate — the last
  /// borrower leaving sync_shard keeps it alive past stop_replication().
  std::shared_ptr<ReplicationSender> repl_;
  std::mutex repl_mu_;
  /// Armed followers only. Guarded by watchdog_mu_: a demote request
  /// re-arms it while `health` reads its state (and shutdown stops it).
  std::unique_ptr<FailoverWatchdog> watchdog_;
  std::mutex watchdog_mu_;
  /// Set when a stale-term NACK fenced this (ex-)primary: exit nonzero
  /// and skip the final snapshots, exactly like a commit failure — the
  /// forked WAL suffix stays a WAL suffix for the re-seed to truncate.
  std::atomic<bool> fenced_exit_{false};

  int listen_fd_ = -1;
  int metrics_fd_ = -1;
  int metrics_port_ = -1;
  // Write end of the signal self-pipe. Atomic: a committer thread's
  // fail-stop callback writes to it concurrently with the main loop.
  std::atomic<int> wake_fd_{-1};
  std::atomic<bool> stopping_{false};
};

}  // namespace dfky::daemon
