// Streaming broadcast fan-out for dfkyd (DESIGN.md Sect. 16).
//
// The paper's whole point is one ciphertext serving an unbounded
// population; this is the delivery side. A client sends `subscribe
// [from-period]` and its connection becomes a push stream: every
// committed `new-period` / `encrypt` broadcast is serialized ONCE into a
// refcounted FeedFrame and fanned out to every subscriber through the
// reactor's bounded per-connection write queues (writev from the frame
// rope — no per-subscriber copy of the payload). A reconnecting
// receiver passes the last period it applied and the missed epochs are
// replayed straight out of the reset archive, without a full
// RecoveryClient round trip.
//
// Threading: publish() is called from worker threads (after the commit
// is durable); the reactor thread drains pending frames via
// take_pending() when notify_fd() becomes readable and owns all
// per-subscriber state. The broadcast-to-all-current latency histogram
// is driven by the frame refcount itself: the last write queue to
// release its reference destroys the frame, which observes
// now - published.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace dfky::daemon {

/// One serialized broadcast, encoded once and shared by every
/// subscriber's write queue (aliased shared_ptr into `line`).
struct FeedFrame {
  std::string line;  // full push line, '\n'-terminated
  std::uint64_t period = 0;
  std::chrono::steady_clock::time_point published{};
  ~FeedFrame();  // records broadcast-to-all-current latency
};
using FeedFramePtr = std::shared_ptr<const FeedFrame>;

/// Answer to `subscribe [from-period]`: the missed epochs, replayed out
/// of the reset archives. ok=false means `from` predates every shard's
/// archive — the client must fall back to the signed catch-up protocol
/// (RecoveryClient) or re-register.
struct FeedReplay {
  bool ok = false;
  std::uint64_t current = 0;  // the store's period at replay time
  std::uint64_t oldest = 0;   // oldest period the archives can bridge from
  std::vector<std::string> lines;  // one push line per missed epoch, no '\n'
};
using FeedReplayFn = std::function<FeedReplay(std::optional<std::uint64_t>)>;

/// The worker-side half of the fan-out: a pending-frame queue plus a
/// self-pipe the reactor registers in epoll. The reactor side (stream
/// registration, fan-out, shedding) lives in reactor.cpp.
class FeedHub {
 public:
  FeedHub();
  ~FeedHub();
  FeedHub(const FeedHub&) = delete;
  FeedHub& operator=(const FeedHub&) = delete;

  /// Read end of the notify pipe (non-blocking); becomes readable when
  /// frames are pending. The reactor registers it alongside its other
  /// sentinels.
  int notify_fd() const { return pipe_[0]; }

  /// Encode `line` (newline appended) as one shared frame and make
  /// notify_fd() readable. Thread-safe; called after the broadcast's
  /// commit is durable.
  void publish(std::string line, std::uint64_t period);

  /// Drain the pending frames (reactor thread). The caller is expected
  /// to have drained notify_fd() too.
  std::vector<FeedFramePtr> take_pending();

  /// Replay source for `subscribe from-period` (daemon wires the shard
  /// archives in; tests wire synthetic histories). Thread-safe swap.
  void set_replay(FeedReplayFn fn);
  FeedReplay replay(std::optional<std::uint64_t> from) const;

  std::uint64_t frames_published() const {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  int pipe_[2] = {-1, -1};
  mutable std::mutex mu_;
  std::vector<FeedFramePtr> pending_;
  FeedReplayFn replay_;
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace dfky::daemon
