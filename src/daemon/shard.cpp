#include "daemon/shard.h"

#include <algorithm>

#include "core/content.h"
#include "core/keyfile.h"
#include "obs/metrics.h"
#include "serial/codec.h"

namespace dfky::daemon {

namespace {

obs::Labels shard_labels(std::size_t shard) {
  return {{"shard", std::to_string(shard)}};
}

Bytes serialize_bundle(const SignedResetBundle& bundle, const Group& group) {
  Writer w;
  bundle.serialize(w, group);
  return std::move(w).take();
}

}  // namespace

ShardRouter::ShardRouter(std::vector<StateStore> stores,
                         const RngFactory& make_rng,
                         std::function<void()> on_fatal)
    : on_fatal_(std::move(on_fatal)) {
  if (stores.empty()) throw ContractError("shard router: no shards");
  shards_.reserve(stores.size());
  for (StateStore& s : stores) {
    shards_.push_back(std::make_unique<Shard>(std::move(s)));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    sh.rng = make_rng(i);
    sh.commits.emplace(sh.store, sh.state_mu, [this] { fail_stop(); },
                       shard_labels(i));
  }
}

ShardRouter::~ShardRouter() { stop_commits(); }

void ShardRouter::fail_stop() {
  bool expected = false;
  if (fatal_.compare_exchange_strong(expected, true) && on_fatal_) {
    on_fatal_();
  }
}

ShardRouter::AddedUser ShardRouter::add_user() {
  const std::size_t k = static_cast<std::size_t>(
      next_add_.fetch_add(1, std::memory_order_relaxed) % shards_.size());
  Shard& sh = *shards_[k];
  AddedUser out;
  out.shard = k;
  sh.commits->run([&] {
    std::lock_guard rng_lk(sh.rng_mu);
    const SecurityManager::AddedUser added = sh.store.add_user(*sh.rng);
    out.global_id = global_of(added.id, k);
    out.key_file = encode_key_file(sh.store.manager().params(),
                                   sh.store.manager().verification_key(),
                                   added.key);
  });
  DFKY_OBS(obs::counter("dfkyd_shard_mutations_total",
                        {{"shard", std::to_string(k)}, {"verb", "add-user"}})
               .inc(););
  return out;
}

ShardRouter::RevokeResult ShardRouter::revoke(
    std::span<const std::uint64_t> global_ids) {
  // Partition by shard, preserving the caller's order within a shard.
  std::vector<std::vector<std::uint64_t>> by_shard(shards_.size());
  for (const std::uint64_t id : global_ids) {
    by_shard[shard_of(id)].push_back(local_of(id));
  }
  RevokeResult out;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (by_shard[k].empty()) continue;
    Shard& sh = *shards_[k];
    sh.commits->run([&] {
      std::lock_guard rng_lk(sh.rng_mu);
      const std::vector<SignedResetBundle> bundles =
          sh.store.remove_users(by_shard[k], *sh.rng);
      const Group& group = sh.store.manager().params().group;
      for (const SignedResetBundle& b : bundles) {
        out.bundles.push_back(serialize_bundle(b, group));
      }
    });
    DFKY_OBS(obs::counter("dfkyd_shard_mutations_total",
                          {{"shard", std::to_string(k)}, {"verb", "revoke"}})
                 .inc(););
  }
  for (auto& sh : shards_) {
    std::shared_lock lk(sh->state_mu);
    out.period = std::max(out.period, sh->store.manager().period());
  }
  return out;
}

ShardRouter::NewPeriodResult ShardRouter::new_period_all() {
  std::lock_guard barrier_lk(barrier_mu_);
  if (fatal_.load()) {
    throw ContractError("new-period: shard set failed (fail-stop)");
  }
  DFKY_OBS_TIMER(span, "dfkyd_epoch_barrier_ns");
  // Hold every shard's state lock exclusively for the whole barrier. The
  // committers run their batch AND its sync under this lock, so once we
  // hold all of them no shard has staged-but-unsynced records: the only
  // frames the phase-2 syncs flush are the barrier's own.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& sh : shards_) locks.emplace_back(sh->state_mu);

  NewPeriodResult out;
  // The target epoch equalizes shards that drifted apart through
  // saturating revokes: every shard rolls up to max+1, laggards emitting
  // one bundle per period they skip.
  std::uint64_t target = 0;
  for (auto& sh : shards_) {
    target = std::max(target, sh->store.manager().period());
  }
  ++target;
  try {
    // Phase 1 — prepare: apply and stage each shard's reset record(s).
    // The stores are in batching mode (the committers own them), so this
    // touches no file: a crash here loses everything uniformly.
    for (auto& sh : shards_) {
      std::lock_guard rng_lk(sh->rng_mu);
      const Group& group = sh->store.manager().params().group;
      while (sh->store.manager().period() < target) {
        out.bundles.push_back(
            serialize_bundle(sh->store.new_period(*sh->rng), group));
      }
    }
    // Phase 2 — commit: one WAL append+fsync per shard. A crash between
    // two syncs leaves the set at mixed epochs; open_shard_set rolls the
    // laggards forward, which is sound because we have not acked yet.
    for (auto& sh : shards_) sh->store.sync();
  } catch (...) {
    // Some shards may hold applied-but-unstaged or staged-but-unsynced
    // state that a later batch's sync would silently commit. Fail-stop:
    // nothing is acked, the daemon shuts down, recovery re-equalizes.
    fail_stop();
    throw;
  }
  out.period = target;
  DFKY_OBS(obs::counter("dfkyd_epoch_barriers_total").inc(););
  return out;
}

ShardRouter::Status ShardRouter::status() const {
  Status st;
  st.shards = shards_.size();
  for (const auto& sh : shards_) {
    std::shared_lock lk(sh->state_mu);
    const SecurityManager& mgr = sh->store.manager();
    st.periods.push_back(mgr.period());
    st.period = std::max(st.period, mgr.period());
    for (const UserRecord& u : mgr.users()) {
      (u.revoked ? st.revoked : st.active) += 1;
    }
    st.saturation_level += mgr.saturation_level();
    st.saturation_limit += mgr.saturation_limit();
    st.generation += sh->store.generation();
    st.wal_records += sh->store.wal_records();
    st.commit_batches += sh->commits->batches();
    st.committed += sh->commits->committed();
  }
  return st;
}

Bytes ShardRouter::encrypt(BytesView payload, std::size_t shard) {
  if (shard >= shards_.size()) {
    throw ContractError("encrypt: shard " + std::to_string(shard) +
                        " out of range (have " +
                        std::to_string(shards_.size()) + ")");
  }
  Shard& sh = *shards_[shard];
  std::shared_lock state(sh.state_mu);
  const SecurityManager& mgr = sh.store.manager();
  Writer w;
  {
    std::lock_guard rng_lk(sh.rng_mu);
    const ContentMessage msg =
        seal_content(mgr.params(), mgr.public_key(), payload, *sh.rng);
    msg.serialize(w, mgr.params().group);
  }
  return std::move(w).take();
}

void ShardRouter::stop_commits() {
  for (auto& sh : shards_) sh->commits.reset();
}

void ShardRouter::snapshot_all() {
  for (auto& sh : shards_) {
    std::unique_lock state(sh->state_mu);
    sh->store.snapshot();
  }
}

}  // namespace dfky::daemon
