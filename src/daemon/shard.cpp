#include "daemon/shard.h"

#include <algorithm>
#include <chrono>

#include "core/content.h"
#include "core/keyfile.h"
#include "daemon/repl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serial/codec.h"

namespace dfky::daemon {

namespace {

obs::Labels shard_labels(std::size_t shard) {
  return {{"shard", std::to_string(shard)}};
}

Bytes serialize_bundle(const SignedResetBundle& bundle, const Group& group) {
  Writer w;
  bundle.serialize(w, group);
  return std::move(w).take();
}

}  // namespace

ShardRouter::ShardRouter(std::vector<StateStore> stores,
                         const RngFactory& make_rng,
                         std::function<void()> on_fatal, bool follower)
    : on_fatal_(std::move(on_fatal)), follower_(follower) {
  if (stores.empty()) throw ContractError("shard router: no shards");
  shards_.reserve(stores.size());
  for (StateStore& s : stores) {
    shards_.push_back(std::make_unique<Shard>(std::move(s)));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->rng = make_rng(i);
  }
  // The node's failover term is the max across shard TERM files: a crash
  // between adopt_term's per-shard writes leaves some shards behind, and
  // max-recovery re-equalizes them upward (terms only move forward).
  std::uint64_t term = 0;
  for (const auto& sh : shards_) term = std::max(term, sh->store.term());
  term_.store(term);
  // A follower runs no committers: its stores must stay in
  // fsync-per-mutation mode so replica ingest appends land directly.
  if (!follower) start_committers();
  DFKY_OBS(obs::gauge("dfkyd_role", {{"role", "primary"}})
               .set(follower ? 0 : 1);
           obs::gauge("dfkyd_role", {{"role", "follower"}})
               .set(follower ? 1 : 0);
           obs::gauge("dfky_repl_term").set(term););
}

void ShardRouter::start_committers() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    // Exclusive state lock: promote() runs this while readers (status)
    // probe sh.commits under the shared lock.
    std::unique_lock state(sh.state_mu);
    sh.commits.store(std::make_shared<GroupCommit>(
        sh.store, sh.state_mu, [this] { fail_stop(); }, shard_labels(i),
        [this, i] {
          // Replication ack gate: with a sender attached, a batch is acked
          // only once every live follower holds it. A throw here (lease
          // lost, stale term) NACKs the batch and fail-stops the queue.
          // The shared_ptr keeps the sender alive through sync_shard even
          // if a concurrent demote detaches and drops it mid-wait.
          if (const std::shared_ptr<ReplicationSender> r = replication()) {
            return r->sync_shard(i);
          }
          return std::string();
        }));
  }
}

void ShardRouter::ensure_primary(const char* verb) const {
  if (fenced_.load()) {
    DFKY_OBS(obs::counter("dfky_fenced_writes_total").inc(););
    throw StaleTermError("stale-term term=" + std::to_string(term_.load()) +
                         " (" + verb +
                         ": this node was fenced by a newer primary and is "
                         "re-seeding)");
  }
  if (follower_.load()) {
    throw ContractError(std::string(verb) +
                        ": this daemon is a read-only replica (promote it "
                        "to accept mutations)");
  }
}

void ShardRouter::adopt_term(std::uint64_t t) {
  std::lock_guard term_lk(term_mu_);
  if (t <= term_.load()) return;
  // Persist before publishing: a crash mid-loop leaves some shards behind,
  // and the constructor's max-recovery absorbs that.
  for (auto& sh : shards_) sh->store.set_term(t);
  term_.store(t);
  DFKY_OBS(obs::gauge("dfky_repl_term").set(t);
           obs::event({.name = "term_adopt",
                       .detail = "",
                       .value = static_cast<std::int64_t>(t)}););
}

void ShardRouter::fence(std::uint64_t observed_term) {
  adopt_term(observed_term);
  if (fenced_.exchange(true)) return;
  DFKY_OBS(obs::event({.name = "fence",
                       .detail = "stale-term",
                       .value = static_cast<std::int64_t>(term_.load())}););
}

void ShardRouter::note_term(Shard& sh, std::uint64_t term, const char* verb) {
  (void)sh;
  const std::uint64_t ours = term_.load();
  if (term < ours) {
    throw StaleTermError("stale-term term=" + std::to_string(ours) + " (" +
                         verb + " carries term " + std::to_string(term) +
                         " — sender is a fenced ex-primary)");
  }
  if (term > ours) adopt_term(term);
}

void ShardRouter::stamp_trace(Shard& sh) {
  DFKY_OBS(if (const obs::TraceContext* t = obs::current_trace()) {
    sh.last_trace_id.store(t->id, std::memory_order_relaxed);
  });
}

void ShardRouter::stamp_primary_contact() {
  primary_contact_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
}

std::int64_t ShardRouter::primary_contact_age_ms() const {
  const std::int64_t at = primary_contact_ns_.load(std::memory_order_relaxed);
  if (at < 0) return -1;
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return std::max<std::int64_t>(0, (now - at) / 1'000'000);
}

void ShardRouter::note_primary_heartbeat(std::uint64_t term) {
  const std::uint64_t ours = term_.load();
  if (!follower_.load()) {
    if (term > ours) {
      // A real primary at a newer term is pinging us while we still think
      // we are one: we are the zombie. Fence immediately — mutations start
      // refusing before our own sender even hears a stale-term NACK.
      fence(term);
      return;
    }
    if (term < ours) {
      throw StaleTermError("stale-term term=" + std::to_string(ours) +
                           " (repl-hb from a fenced ex-primary)");
    }
    throw ContractError(
        "repl-hb: split-brain — receiver is a primary at the same term");
  }
  if (term < ours) {
    throw StaleTermError("stale-term term=" + std::to_string(ours) +
                         " (repl-hb carries term " + std::to_string(term) +
                         " — sender is a fenced ex-primary)");
  }
  if (term > ours) adopt_term(term);
  stamp_primary_contact();
}

ShardRouter::~ShardRouter() { stop_commits(); }

void ShardRouter::fail_stop() {
  bool expected = false;
  if (fatal_.compare_exchange_strong(expected, true) && on_fatal_) {
    on_fatal_();
  }
}

ShardRouter::AddedUser ShardRouter::add_user() {
  ensure_primary("add-user");
  const std::size_t k = static_cast<std::size_t>(
      next_add_.fetch_add(1, std::memory_order_relaxed) % shards_.size());
  Shard& sh = *shards_[k];
  AddedUser out;
  out.shard = k;
  // Routing is done; the queue wait starts at submission.
  DFKY_OBS(obs::trace_mark(obs::SpanKind::kRoute););
  stamp_trace(sh);
  const std::shared_ptr<GroupCommit> commits = sh.commits.load();
  if (!commits) {  // demoted since the entry check
    ensure_primary("add-user");
    throw ContractError("add-user: shard committer is gone (demoting)");
  }
  commits->run([&] {
    std::lock_guard rng_lk(sh.rng_mu);
    const SecurityManager::AddedUser added = sh.store.add_user(*sh.rng);
    out.global_id = global_of(added.id, k);
    out.key_file = encode_key_file(sh.store.manager().params(),
                                   sh.store.manager().verification_key(),
                                   added.key);
  });
  DFKY_OBS(obs::counter("dfkyd_shard_mutations_total",
                        {{"shard", std::to_string(k)}, {"verb", "add-user"}})
               .inc(););
  return out;
}

ShardRouter::RevokeResult ShardRouter::revoke(
    std::span<const std::uint64_t> global_ids) {
  ensure_primary("revoke");
  // Partition by shard, preserving the caller's order within a shard.
  std::vector<std::vector<std::uint64_t>> by_shard(shards_.size());
  for (const std::uint64_t id : global_ids) {
    by_shard[shard_of(id)].push_back(local_of(id));
  }
  RevokeResult out;
  DFKY_OBS(obs::trace_mark(obs::SpanKind::kRoute););
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (by_shard[k].empty()) continue;
    Shard& sh = *shards_[k];
    stamp_trace(sh);
    const std::shared_ptr<GroupCommit> commits = sh.commits.load();
    if (!commits) {  // demoted since the entry check
      ensure_primary("revoke");
      throw ContractError("revoke: shard committer is gone (demoting)");
    }
    commits->run([&] {
      std::lock_guard rng_lk(sh.rng_mu);
      const std::vector<SignedResetBundle> bundles =
          sh.store.remove_users(by_shard[k], *sh.rng);
      const Group& group = sh.store.manager().params().group;
      for (const SignedResetBundle& b : bundles) {
        out.bundles.push_back(serialize_bundle(b, group));
      }
    });
    DFKY_OBS(obs::counter("dfkyd_shard_mutations_total",
                          {{"shard", std::to_string(k)}, {"verb", "revoke"}})
                 .inc(););
  }
  for (auto& sh : shards_) {
    std::shared_lock lk(sh->state_mu);
    out.period = std::max(out.period, sh->store.manager().period());
  }
  return out;
}

ShardRouter::NewPeriodResult ShardRouter::new_period_all() {
  ensure_primary("new-period");
  std::lock_guard barrier_lk(barrier_mu_);
  // Re-checked under the barrier lock: a concurrent demote() (serialized
  // on the same lock) may have turned us into a follower, whose stores are
  // no longer in batching mode — phase 1 would hit the files directly.
  ensure_primary("new-period");
  if (fatal_.load()) {
    throw ContractError("new-period: shard set failed (fail-stop)");
  }
  DFKY_OBS_TIMER(span, "dfkyd_epoch_barrier_ns");
  // Prepare gate across replicas: every live follower must hold the full
  // pre-barrier history before we stage the epoch roll. Done before taking
  // the state locks — the sender's shipping threads read under shared
  // locks, so waiting while holding them exclusively would deadlock.
  if (const std::shared_ptr<ReplicationSender> r = replication()) {
    r->sync_all();
  }
  // Hold every shard's state lock exclusively for the whole barrier. The
  // committers run their batch AND its sync under this lock, so once we
  // hold all of them no shard has staged-but-unsynced records: the only
  // frames the phase-2 syncs flush are the barrier's own.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& sh : shards_) locks.emplace_back(sh->state_mu);
  // Route ends once the barrier owns every shard: what follows is the
  // two-phase epoch roll (barrier_prepare / barrier_commit spans).
  DFKY_OBS(obs::trace_mark(obs::SpanKind::kRoute););

  NewPeriodResult out;
  // The target epoch equalizes shards that drifted apart through
  // saturating revokes: every shard rolls up to max+1, laggards emitting
  // one bundle per period they skip.
  std::uint64_t target = 0;
  for (auto& sh : shards_) {
    target = std::max(target, sh->store.manager().period());
  }
  ++target;
  try {
    // Phase 1 — prepare: apply and stage each shard's reset record(s).
    // The stores are in batching mode (the committers own them), so this
    // touches no file: a crash here loses everything uniformly.
    for (auto& sh : shards_) {
      stamp_trace(*sh);
      std::lock_guard rng_lk(sh->rng_mu);
      const Group& group = sh->store.manager().params().group;
      while (sh->store.manager().period() < target) {
        out.bundles.push_back(
            serialize_bundle(sh->store.new_period(*sh->rng), group));
      }
    }
    DFKY_OBS(obs::trace_mark(obs::SpanKind::kBarrierPrepare););
    // Phase 2 — commit: one WAL append+fsync per shard. A crash between
    // two syncs leaves the set at mixed epochs; open_shard_set rolls the
    // laggards forward, which is sound because we have not acked yet.
    for (auto& sh : shards_) sh->store.sync();
    DFKY_OBS(obs::trace_mark(obs::SpanKind::kBarrierCommit););
  } catch (...) {
    // Some shards may hold applied-but-unstaged or staged-but-unsynced
    // state that a later batch's sync would silently commit. Fail-stop:
    // nothing is acked, the daemon shuts down, recovery re-equalizes.
    fail_stop();
    throw;
  }
  out.period = target;
  DFKY_OBS(obs::counter("dfkyd_epoch_barriers_total").inc(););
  // Commit gate: release the state locks (the shipping threads need them
  // shared), then hold the ack until every live follower has replayed the
  // barrier records. A follower that dies mid-wait stops gating — the
  // barrier lands standalone, and the laggard roll-forward (promote /
  // open_shard_set) re-equalizes that replica if it ever comes back.
  locks.clear();
  if (const std::shared_ptr<ReplicationSender> r = replication()) {
    try {
      r->sync_all();
    } catch (...) {
      // The armed gate refused the barrier's ack (lease lost / stale
      // term). The rolls are durable LOCALLY but acknowledging them would
      // fork epoch history from the cluster's: NACK and fail-stop, same
      // contract as the group-commit gate. The re-seed truncates them.
      fail_stop();
      throw;
    }
  }
  DFKY_OBS(obs::trace_mark(obs::SpanKind::kReplAck););
  return out;
}

std::uint64_t ShardRouter::replica_append(std::size_t shard, std::uint64_t gen,
                                          std::uint64_t start_record,
                                          BytesView frames,
                                          std::uint64_t term) {
  if (!follower_.load()) {
    throw ContractError("repl-append: this daemon is a primary");
  }
  if (shard >= shards_.size()) {
    throw ContractError("repl-append: shard " + std::to_string(shard) +
                        " out of range");
  }
  Shard& sh = *shards_[shard];
  std::unique_lock state(sh.state_mu);
  note_term(sh, term, "repl-append");
  stamp_primary_contact();
  const std::uint64_t seq =
      sh.store.replica_apply_frames(gen, start_record, frames);
  // The current-term primary is feeding us again: whatever fencing put us
  // here has been repaired (the forked suffix is gone, or never existed).
  fenced_.store(false);
  DFKY_OBS(obs::counter("dfkyd_shard_mutations_total",
                        {{"shard", std::to_string(shard)},
                         {"verb", "repl-append"}})
               .inc(););
  return seq;
}

void ShardRouter::replica_snapshot(std::size_t shard, std::uint64_t gen,
                                   BytesView frame, std::uint64_t term) {
  if (!follower_.load()) {
    throw ContractError("repl-snap: this daemon is a primary");
  }
  if (shard >= shards_.size()) {
    throw ContractError("repl-snap: shard " + std::to_string(shard) +
                        " out of range");
  }
  Shard& sh = *shards_[shard];
  std::unique_lock state(sh.state_mu);
  note_term(sh, term, "repl-snap");
  stamp_primary_contact();
  sh.store.replica_apply_snapshot(gen, frame);
  fenced_.store(false);
  DFKY_OBS(obs::counter("dfkyd_shard_mutations_total",
                        {{"shard", std::to_string(shard)},
                         {"verb", "repl-snap"}})
               .inc(););
}

std::uint64_t ShardRouter::replica_truncate(std::size_t shard,
                                            std::uint64_t gen,
                                            std::uint64_t records,
                                            const std::string& expected_tag_hex,
                                            std::uint64_t term) {
  if (!follower_.load()) {
    throw ContractError("repl-truncate: this daemon is a primary");
  }
  if (shard >= shards_.size()) {
    throw ContractError("repl-truncate: shard " + std::to_string(shard) +
                        " out of range");
  }
  Shard& sh = *shards_[shard];
  std::unique_lock state(sh.state_mu);
  note_term(sh, term, "repl-truncate");
  stamp_primary_contact();
  const std::uint64_t seq =
      sh.store.replica_truncate(gen, records, expected_tag_hex);
  DFKY_OBS(obs::counter("dfkyd_shard_mutations_total",
                        {{"shard", std::to_string(shard)},
                         {"verb", "repl-truncate"}})
               .inc(););
  return seq;
}

std::size_t ShardRouter::queue_depth_total() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    const std::shared_ptr<GroupCommit> commits = sh->commits.load();
    if (commits) total += commits->depth();
  }
  return total;
}

std::vector<ShardRouter::ReplPosition> ShardRouter::repl_positions() const {
  std::vector<ReplPosition> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) {
    std::shared_lock lk(sh->state_mu);
    out.push_back(ReplPosition{
        sh->store.generation(),
        static_cast<std::uint64_t>(sh->store.wal_records()),
        sh->store.chain_head_hex()});
  }
  return out;
}

ShardRouter::PromoteResult ShardRouter::promote(
    std::optional<std::uint64_t> new_term) {
  std::lock_guard barrier_lk(barrier_mu_);
  PromoteResult res;
  if (!follower_.load()) {  // already a primary — idempotent, but distinct
    res.already = true;
    res.term = term_.load();
    for (auto& sh : shards_) {
      std::shared_lock lk(sh->state_mu);
      res.period = std::max(res.period, sh->store.manager().period());
    }
    DFKY_OBS(obs::event({.name = "promote",
                         .period = static_cast<std::int64_t>(res.period),
                         .detail = "already-primary",
                         .value = static_cast<std::int64_t>(res.term)}););
    return res;
  }
  if (fatal_.load()) {
    throw ContractError("promote: shard set failed (fail-stop)");
  }
  // The new term is durable BEFORE this node can accept a write: a zombie
  // of the old term must see it on its first exchange, not a window where
  // both sides still claim the same term.
  if (new_term) adopt_term(*new_term);
  // Laggard roll-forward: a primary killed inside the barrier's phase-2
  // sync loop replicated the epoch roll to some shards only. The barrier
  // was never acked, so completing it here is safe — the same reasoning
  // (and the same ordinary durable new-periods) as open_shard_set's
  // equalization after a crash.
  std::uint64_t target = 0;
  for (auto& sh : shards_) {
    std::unique_lock lk(sh->state_mu);
    target = std::max(target, sh->store.manager().period());
  }
  std::size_t rolled = 0;
  for (auto& sh : shards_) {
    std::unique_lock lk(sh->state_mu);
    std::lock_guard rng_lk(sh->rng_mu);
    while (sh->store.manager().period() < target) {
      sh->store.new_period(*sh->rng);  // durable: batching is off here
      ++rolled;
    }
  }
  start_committers();
  fenced_.store(false);
  follower_.store(false);
  res.term = term_.load();
  res.period = target;
  res.rolled = rolled;
  DFKY_OBS(obs::gauge("dfkyd_role", {{"role", "primary"}}).set(1);
           obs::gauge("dfkyd_role", {{"role", "follower"}}).set(0);
           obs::counter("dfkyd_promotions_total").inc();
           obs::counter("dfky_store_shard_rollforwards_total").inc(rolled);
           obs::event({.name = "promote",
                       .period = static_cast<std::int64_t>(target),
                       .detail = "term=" + std::to_string(res.term),
                       .value = static_cast<std::int64_t>(rolled)}););
  return res;
}

ShardRouter::PromoteResult ShardRouter::demote() {
  std::lock_guard barrier_lk(barrier_mu_);
  PromoteResult res;
  res.term = term_.load();
  for (auto& sh : shards_) {
    std::shared_lock lk(sh->state_mu);
    res.period = std::max(res.period, sh->store.manager().period());
  }
  if (follower_.load()) {  // already a follower — idempotent, but distinct
    res.already = true;
    DFKY_OBS(obs::event({.name = "demote",
                         .period = static_cast<std::int64_t>(res.period),
                         .detail = "already-follower",
                         .value = static_cast<std::int64_t>(res.term)}););
    return res;
  }
  // Refuse new mutations first (ensure_primary), then stop each committer.
  // Mutations already queued drain and ack normally — they were accepted
  // while this node was primary, so they linearize before the demotion.
  // A straggler submitting after the stop flag gets a clean "shutting
  // down" NACK, and the atomic shared_ptr keeps its queue alive while it
  // does — never a call into a destroyed committer.
  follower_.store(true);
  for (auto& sh : shards_) {
    if (const std::shared_ptr<GroupCommit> c = sh->commits.exchange(nullptr)) {
      c->shut_down();
    }
  }
  DFKY_OBS(obs::gauge("dfkyd_role", {{"role", "primary"}}).set(0);
           obs::gauge("dfkyd_role", {{"role", "follower"}}).set(1);
           obs::counter("dfkyd_demotions_total").inc();
           obs::event({.name = "demote",
                       .period = static_cast<std::int64_t>(res.period),
                       .detail = "term=" + std::to_string(res.term),
                       .value = 0}););
  return res;
}

ShardRouter::Status ShardRouter::status() const {
  Status st;
  st.shards = shards_.size();
  for (const auto& sh : shards_) {
    std::shared_lock lk(sh->state_mu);
    const SecurityManager& mgr = sh->store.manager();
    st.periods.push_back(mgr.period());
    st.period = std::max(st.period, mgr.period());
    for (const UserRecord& u : mgr.users()) {
      (u.revoked ? st.revoked : st.active) += 1;
    }
    st.saturation_level += mgr.saturation_level();
    st.saturation_limit += mgr.saturation_limit();
    st.generation += sh->store.generation();
    st.wal_records += sh->store.wal_records();
    if (const std::shared_ptr<GroupCommit> c = sh->commits.load()) {
      st.commit_batches += c->batches();  // a follower runs no committers
      st.committed += c->committed();
    }
  }
  return st;
}

ShardRouter::HealthReport ShardRouter::health() const {
  HealthReport h;
  h.follower = follower_.load();
  h.fatal = fatal_.load();
  h.fenced = fenced_.load();
  h.term = term_.load();
  std::vector<std::uint64_t> records(shards_.size(), 0);
  std::vector<std::uint64_t> gens(shards_.size(), 0);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const auto& sh = shards_[k];
    std::shared_lock lk(sh->state_mu);
    h.periods.push_back(sh->store.manager().period());
    h.period = std::max(h.period, h.periods.back());
    h.poisoned.push_back(sh->store.poisoned());
    const std::shared_ptr<GroupCommit> c = sh->commits.load();
    h.queue_depths.push_back(c ? c->queued() : 0);
    records[k] = static_cast<std::uint64_t>(sh->store.wal_records());
    gens[k] = sh->store.generation();
  }
  if (const std::shared_ptr<ReplicationSender> r = replication()) {
    for (const ReplicationSender::FollowerStatus& fs : r->status()) {
      HealthReport::Follower f;
      f.name = fs.name;
      f.live = fs.live;
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        const std::uint64_t gen = k < fs.generation.size() ? fs.generation[k]
                                                          : 0;
        const std::uint64_t acked =
            (gen == gens[k] && k < fs.acked.size()) ? fs.acked[k] : 0;
        if (records[k] > acked) f.lag_records += records[k] - acked;
      }
      h.followers.push_back(std::move(f));
    }
  }
  return h;
}

Bytes ShardRouter::encrypt(BytesView payload, std::size_t shard) {
  if (shard >= shards_.size()) {
    throw ContractError("encrypt: shard " + std::to_string(shard) +
                        " out of range (have " +
                        std::to_string(shards_.size()) + ")");
  }
  Shard& sh = *shards_[shard];
  std::shared_lock state(sh.state_mu);
  const SecurityManager& mgr = sh.store.manager();
  Writer w;
  {
    std::lock_guard rng_lk(sh.rng_mu);
    const ContentMessage msg =
        seal_content(mgr.params(), mgr.public_key(), payload, *sh.rng);
    msg.serialize(w, mgr.params().group);
  }
  return std::move(w).take();
}

void ShardRouter::stop_commits() {
  for (auto& sh : shards_) {
    if (const std::shared_ptr<GroupCommit> c = sh->commits.exchange(nullptr)) {
      c->shut_down();
    }
  }
}

void ShardRouter::snapshot_all() {
  // A follower must never self-rotate: its generations are the primary's
  // (shipped via repl-snap), and a locally minted generation would wedge
  // the stream — the primary's frames would mismatch until a resync.
  if (follower_.load()) return;
  for (auto& sh : shards_) {
    std::unique_lock state(sh->state_mu);
    sh->store.snapshot();
  }
}

}  // namespace dfky::daemon
