#include "poly/lagrange.h"

namespace dfky {

std::vector<Bigint> lagrange_coefficients_at(const Zq& field,
                                             std::span<const Bigint> xs,
                                             const Bigint& at) {
  const std::size_t n = xs.size();
  require(n > 0, "lagrange: need at least one point");

  // c[i] = prod_{j != i} (at - x_j) / (x_i - x_j).
  // Batch all denominators for a single field inversion.
  std::vector<Bigint> denoms(n, Bigint(1));
  std::vector<Bigint> numers(n, Bigint(1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Bigint diff = field.sub(xs[i], xs[j]);
      if (diff.is_zero()) throw ContractError("lagrange: duplicate points");
      denoms[i] = field.mul(denoms[i], diff);
      numers[i] = field.mul(numers[i], field.sub(at, xs[j]));
    }
  }
  field.batch_inv(denoms);
  std::vector<Bigint> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = field.mul(numers[i], denoms[i]);
  }
  return out;
}

std::vector<Bigint> lagrange_coefficients_at_zero(const Zq& field,
                                                  std::span<const Bigint> xs) {
  return lagrange_coefficients_at(field, xs, Bigint(0));
}

Polynomial interpolate(const Zq& field,
                       std::span<const std::pair<Bigint, Bigint>> points) {
  const std::size_t n = points.size();
  require(n > 0, "interpolate: need at least one point");

  // Newton's divided differences would also work; direct Lagrange basis
  // assembly is O(n^2) and adequate for the polynomial sizes used here.
  Polynomial acc = Polynomial::zero(field);
  std::vector<Bigint> denoms(n, Bigint(1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Bigint diff = field.sub(points[i].first, points[j].first);
      if (diff.is_zero()) throw ContractError("interpolate: duplicate points");
      denoms[i] = field.mul(denoms[i], diff);
    }
  }
  field.batch_inv(denoms);
  for (std::size_t i = 0; i < n; ++i) {
    // Basis polynomial prod_{j != i} (x - x_j), built incrementally.
    Polynomial basis = Polynomial::constant(field, Bigint(1));
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      basis = basis * Polynomial(field, {field.neg(points[j].first), Bigint(1)});
    }
    acc = acc + basis.scaled(field.mul(points[i].second, denoms[i]));
  }
  return acc;
}

}  // namespace dfky
