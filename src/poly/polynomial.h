// Dense univariate polynomials over Z_q.
//
// These are the paper's central objects: the master secret key is a pair of
// random degree-v polynomials (A, B); New-period adds fresh random
// polynomials (D, E); tracing manipulates error-locator and numerator
// polynomials of the Berlekamp-Welch / Berlekamp-Massey decoders.
#pragma once

#include <vector>

#include "field/zq.h"
#include "rng/rng.h"

namespace dfky {

class Polynomial {
 public:
  /// coeffs[i] is the coefficient of x^i. Trailing zeros are trimmed.
  Polynomial(Zq field, std::vector<Bigint> coeffs);

  static Polynomial zero(const Zq& field);
  static Polynomial constant(const Zq& field, const Bigint& c);
  /// Uniformly random polynomial of degree exactly <= `degree` (each
  /// coefficient uniform in Z_q; the leading coefficient may be zero, which
  /// matches the paper's "random element of Z_q^v[x]").
  static Polynomial random(const Zq& field, std::size_t degree, Rng& rng);

  const Zq& field() const { return field_; }
  /// Degree; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  bool is_zero() const { return coeffs_.empty(); }
  /// Coefficient of x^i (zero beyond the degree).
  const Bigint& coeff(std::size_t i) const;
  const std::vector<Bigint>& coeffs() const { return coeffs_; }

  /// Horner evaluation.
  Bigint eval(const Bigint& x) const;
  /// Evaluates at many points.
  std::vector<Bigint> eval_many(std::span<const Bigint> xs) const;

  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator-(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;
  Polynomial scaled(const Bigint& c) const;

  /// Euclidean division: returns {quotient, remainder}.
  /// Throws MathError when dividing by the zero polynomial.
  std::pair<Polynomial, Polynomial> divmod(const Polynomial& divisor) const;
  /// Exact division; throws MathError if the remainder is nonzero.
  Polynomial divided_exactly_by(const Polynomial& divisor) const;

  friend bool operator==(const Polynomial& a, const Polynomial& b) {
    return a.field_ == b.field_ && a.coeffs_ == b.coeffs_;
  }

 private:
  void trim();

  Zq field_;
  std::vector<Bigint> coeffs_;
};

}  // namespace dfky
