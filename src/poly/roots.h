// Root finding for univariate polynomials over Z_q.
//
// Needed by the Roth-Ruckenstein step of the Sudan list decoder (tracing
// beyond the collusion bound, paper Sect. 6.3.2 "Time-Complexity"): each
// recursion level extracts the roots of Q(0, y).
//
// Algorithm: strip the root at zero, isolate the distinct linear factors via
// gcd(p, y^q - y) computed with modular polynomial exponentiation, then
// split them with Cantor-Zassenhaus random gcds.
#pragma once

#include "poly/polynomial.h"

namespace dfky {

/// Polynomial gcd (monic result; gcd(0, 0) = 0).
Polynomial poly_gcd(const Polynomial& a, const Polynomial& b);

/// base^e mod m in Z_q[y]. m must be non-constant.
Polynomial poly_powmod(const Polynomial& base, const Bigint& e,
                       const Polynomial& m);

/// All distinct roots of p in Z_q (without multiplicities).
/// Expected polynomial time; randomized (Cantor-Zassenhaus splitting).
std::vector<Bigint> polynomial_roots(const Polynomial& p, Rng& rng);

}  // namespace dfky
