#include "poly/polynomial.h"

#include "obs/metrics.h"

namespace dfky {

Polynomial::Polynomial(Zq field, std::vector<Bigint> coeffs)
    : field_(std::move(field)), coeffs_(std::move(coeffs)) {
  for (Bigint& c : coeffs_) c = field_.reduce(c);
  trim();
}

Polynomial Polynomial::zero(const Zq& field) {
  return Polynomial(field, {});
}

Polynomial Polynomial::constant(const Zq& field, const Bigint& c) {
  return Polynomial(field, {c});
}

Polynomial Polynomial::random(const Zq& field, std::size_t degree, Rng& rng) {
  std::vector<Bigint> coeffs;
  coeffs.reserve(degree + 1);
  for (std::size_t i = 0; i <= degree; ++i) {
    coeffs.push_back(rng.uniform_below(field.modulus()));
  }
  return Polynomial(field, std::move(coeffs));
}

void Polynomial::trim() {
  while (!coeffs_.empty() && coeffs_.back().is_zero()) coeffs_.pop_back();
}

const Bigint& Polynomial::coeff(std::size_t i) const {
  static const Bigint kZero(0);
  return i < coeffs_.size() ? coeffs_[i] : kZero;
}

Bigint Polynomial::eval(const Bigint& x) const {
  DFKY_OBS(static obs::Counter& c = obs::counter("dfky_poly_eval_total");
           c.inc(););
  Bigint acc(0);
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = field_.add(field_.mul(acc, x), coeffs_[i]);
  }
  return acc;
}

std::vector<Bigint> Polynomial::eval_many(std::span<const Bigint> xs) const {
  std::vector<Bigint> out;
  out.reserve(xs.size());
  for (const Bigint& x : xs) out.push_back(eval(x));
  return out;
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  require(field_ == o.field_, "Polynomial: field mismatch");
  std::vector<Bigint> out(std::max(coeffs_.size(), o.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = field_.add(coeff(i), o.coeff(i));
  }
  return Polynomial(field_, std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& o) const {
  require(field_ == o.field_, "Polynomial: field mismatch");
  std::vector<Bigint> out(std::max(coeffs_.size(), o.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = field_.sub(coeff(i), o.coeff(i));
  }
  return Polynomial(field_, std::move(out));
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
  require(field_ == o.field_, "Polynomial: field mismatch");
  if (is_zero() || o.is_zero()) return zero(field_);
  std::vector<Bigint> out(coeffs_.size() + o.coeffs_.size() - 1, Bigint(0));
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i].is_zero()) continue;
    for (std::size_t j = 0; j < o.coeffs_.size(); ++j) {
      out[i + j] = field_.add(out[i + j], field_.mul(coeffs_[i], o.coeffs_[j]));
    }
  }
  return Polynomial(field_, std::move(out));
}

Polynomial Polynomial::scaled(const Bigint& c) const {
  std::vector<Bigint> out(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    out[i] = field_.mul(coeffs_[i], c);
  }
  return Polynomial(field_, std::move(out));
}

std::pair<Polynomial, Polynomial> Polynomial::divmod(
    const Polynomial& divisor) const {
  require(field_ == divisor.field_, "Polynomial: field mismatch");
  if (divisor.is_zero()) throw MathError("Polynomial: division by zero");
  if (degree() < divisor.degree()) return {zero(field_), *this};

  std::vector<Bigint> rem = coeffs_;
  const std::size_t dd = static_cast<std::size_t>(divisor.degree());
  const Bigint lead_inv = field_.inv(divisor.coeffs_.back());
  std::vector<Bigint> quot(coeffs_.size() - dd, Bigint(0));
  for (std::size_t i = rem.size(); i-- > dd;) {
    if (rem[i].is_zero()) continue;
    const Bigint f = field_.mul(rem[i], lead_inv);
    quot[i - dd] = f;
    for (std::size_t j = 0; j <= dd; ++j) {
      rem[i - dd + j] =
          field_.sub(rem[i - dd + j], field_.mul(f, divisor.coeffs_[j]));
    }
  }
  return {Polynomial(field_, std::move(quot)), Polynomial(field_, std::move(rem))};
}

Polynomial Polynomial::divided_exactly_by(const Polynomial& divisor) const {
  auto [q, r] = divmod(divisor);
  if (!r.is_zero()) throw MathError("Polynomial: inexact division");
  return q;
}

}  // namespace dfky
