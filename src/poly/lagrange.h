// Lagrange interpolation over Z_q.
#pragma once

#include "poly/polynomial.h"

namespace dfky {

/// Lagrange basis coefficients evaluated at `at`: the vector c with
/// P(at) = sum_i c[i] * P(x_i) for every polynomial P of degree < xs.size().
/// The points must be pairwise distinct.
std::vector<Bigint> lagrange_coefficients_at(const Zq& field,
                                             std::span<const Bigint> xs,
                                             const Bigint& at);

/// Lagrange basis coefficients at zero (the common case in the paper).
std::vector<Bigint> lagrange_coefficients_at_zero(const Zq& field,
                                                  std::span<const Bigint> xs);

/// The unique polynomial of degree < points.size() through `points`.
/// Throws ContractError on duplicate abscissae.
Polynomial interpolate(const Zq& field,
                       std::span<const std::pair<Bigint, Bigint>> points);

}  // namespace dfky
