#include "poly/leap_vector.h"

namespace dfky {

LeapCoefficients leap_coefficients(const Zq& field, const Bigint& xi,
                                   std::span<const Bigint> zs) {
  std::vector<Bigint> points;
  points.reserve(zs.size() + 1);
  points.push_back(field.reduce(xi));
  for (const Bigint& z : zs) points.push_back(field.reduce(z));
  std::vector<Bigint> lambda = lagrange_coefficients_at_zero(field, points);
  LeapCoefficients out;
  out.lambda0 = std::move(lambda[0]);
  out.lambdas.assign(std::make_move_iterator(lambda.begin() + 1),
                     std::make_move_iterator(lambda.end()));
  return out;
}

bool LeapVector::satisfies(const Zq& field, const Bigint& p_at_zero,
                           std::span<const Bigint> p_at_zs) const {
  require(p_at_zs.size() == tail.size(), "LeapVector: size mismatch");
  Bigint acc = alpha0;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    acc = field.add(acc, field.mul(tail[i], p_at_zs[i]));
  }
  return field.sub(acc, p_at_zero).is_zero();
}

LeapVector leap_vector(const Zq& field, const Bigint& xi,
                       const Bigint& p_at_xi, std::span<const Bigint> zs) {
  return leap_vector_from(field, leap_coefficients(field, xi, zs), p_at_xi);
}

LeapVector leap_vector_from(const Zq& field, const LeapCoefficients& coeffs,
                            const Bigint& p_at_xi) {
  LeapVector out;
  out.alpha0 = field.mul(coeffs.lambda0, p_at_xi);
  out.tail = coeffs.lambdas;
  return out;
}

}  // namespace dfky
