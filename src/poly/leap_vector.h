// Leap-vectors (paper Sect. 3.2, Definitions 5/6).
//
// A leap-vector with respect to a degree-v polynomial P and values
// z_1, ..., z_v is a vector alpha in Z_q^{v+1} with
//     P(0) = alpha_0 + sum_l alpha_l * P(z_l)            (Eq. 1)
// i.e. a discrete-log representation of g^{P(0)} w.r.t. the base
// g, g^{P(z_1)}, ..., g^{P(z_v)}. A user holding the point (x_i, P(x_i))
// derives one by Lagrange interpolation through {x_i, z_1, ..., z_v}:
//     alpha = < lambda_0 * P(x_i), lambda_1, ..., lambda_v >   (Eq. 2)
// where lambda_0 is the Lagrange-at-zero coefficient of x_i and lambda_l are
// those of the z_l. The lambdas depend only on x_i and the z's, not on P —
// which is why the same tail serves both master polynomials A and B in the
// scheme's decryption.
#pragma once

#include "poly/lagrange.h"

namespace dfky {

/// The Lagrange scaffolding of a leap-vector: lambda_0 for the user point
/// and the shared tail lambda_1..lambda_v for the public slots.
struct LeapCoefficients {
  Bigint lambda0;
  std::vector<Bigint> lambdas;  // size v
};

/// Computes the Lagrange-at-zero coefficients for interpolation through
/// {x_i, z_1, ..., z_v}. All points must be distinct; throws ContractError
/// if x_i collides with some z_l (e.g. the user has been revoked).
LeapCoefficients leap_coefficients(const Zq& field, const Bigint& xi,
                                   std::span<const Bigint> zs);

/// A full leap-vector: alpha_0 = lambda_0 * P(x_i) plus the shared tail.
struct LeapVector {
  Bigint alpha0;
  std::vector<Bigint> tail;  // size v

  /// Checks Eq. (1) against explicit values of P at 0 and at the z's.
  bool satisfies(const Zq& field, const Bigint& p_at_zero,
                 std::span<const Bigint> p_at_zs) const;
};

/// Leap-vector associated to the point (x_i, P(x_i)) per Definition 6.
LeapVector leap_vector(const Zq& field, const Bigint& xi,
                       const Bigint& p_at_xi, std::span<const Bigint> zs);

/// Builds a leap-vector from precomputed coefficients (shares the lambda
/// computation between the A- and B-polynomial leap-vectors).
LeapVector leap_vector_from(const Zq& field, const LeapCoefficients& coeffs,
                            const Bigint& p_at_xi);

}  // namespace dfky
