// Bivariate polynomials over Z_q, represented as polynomials in y whose
// coefficients are polynomials in x:  Q(x, y) = sum_j q_j(x) y^j.
//
// Provides exactly the operations the Sudan decoder's Roth-Ruckenstein
// y-root extraction needs.
#pragma once

#include "poly/polynomial.h"

namespace dfky {

class BiPoly {
 public:
  /// coeffs[j] is the coefficient of y^j.
  BiPoly(Zq field, std::vector<Polynomial> coeffs);

  static BiPoly zero(const Zq& field);

  const Zq& field() const { return field_; }
  bool is_zero() const { return coeffs_.empty(); }
  /// Degree in y; -1 for zero.
  int y_degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const Polynomial& y_coeff(std::size_t j) const;
  const std::vector<Polynomial>& y_coeffs() const { return coeffs_; }

  Bigint eval(const Bigint& x, const Bigint& y) const;
  /// Q(x, f(x)) as a univariate polynomial in x.
  Polynomial eval_poly(const Polynomial& f) const;
  /// Q(0, y) as a univariate polynomial in y.
  Polynomial at_x_zero() const;

  /// Q(x, x*y + gamma): the Roth-Ruckenstein descent step.
  BiPoly shift_substitute(const Bigint& gamma) const;
  /// Divides by the largest power of x dividing every coefficient.
  BiPoly strip_x() const;

 private:
  void trim();

  Zq field_;
  std::vector<Polynomial> coeffs_;
};

}  // namespace dfky
