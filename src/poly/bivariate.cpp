#include "poly/bivariate.h"

namespace dfky {

BiPoly::BiPoly(Zq field, std::vector<Polynomial> coeffs)
    : field_(std::move(field)), coeffs_(std::move(coeffs)) {
  for (const Polynomial& c : coeffs_) {
    require(c.field() == field_, "BiPoly: field mismatch");
  }
  trim();
}

BiPoly BiPoly::zero(const Zq& field) {
  return BiPoly(field, {});
}

void BiPoly::trim() {
  while (!coeffs_.empty() && coeffs_.back().is_zero()) coeffs_.pop_back();
}

const Polynomial& BiPoly::y_coeff(std::size_t j) const {
  require(j < coeffs_.size(), "BiPoly: y_coeff out of range");
  return coeffs_[j];
}

Bigint BiPoly::eval(const Bigint& x, const Bigint& y) const {
  Bigint acc(0);
  for (std::size_t j = coeffs_.size(); j-- > 0;) {
    acc = field_.add(field_.mul(acc, y), coeffs_[j].eval(x));
  }
  return acc;
}

Polynomial BiPoly::eval_poly(const Polynomial& f) const {
  Polynomial acc = Polynomial::zero(field_);
  for (std::size_t j = coeffs_.size(); j-- > 0;) {
    acc = acc * f + coeffs_[j];
  }
  return acc;
}

Polynomial BiPoly::at_x_zero() const {
  std::vector<Bigint> c;
  c.reserve(coeffs_.size());
  for (const Polynomial& q : coeffs_) c.push_back(q.coeff(0));
  return Polynomial(field_, std::move(c));
}

BiPoly BiPoly::shift_substitute(const Bigint& gamma) const {
  // Q(x, x*y + gamma) = sum_j q_j(x) * sum_{i<=j} C(j,i) x^i gamma^{j-i} y^i.
  const int dy = y_degree();
  if (dy < 0) return *this;
  const std::size_t n = static_cast<std::size_t>(dy) + 1;

  // Pascal's triangle mod q (y-degrees are small).
  std::vector<std::vector<Bigint>> binom(n);
  for (std::size_t j = 0; j < n; ++j) {
    binom[j].assign(j + 1, Bigint(1));
    for (std::size_t i = 1; i < j; ++i) {
      binom[j][i] = field_.add(binom[j - 1][i - 1], binom[j - 1][i]);
    }
  }

  std::vector<Polynomial> out(n, Polynomial::zero(field_));
  for (std::size_t j = 0; j < n; ++j) {
    if (coeffs_[j].is_zero()) continue;
    Bigint gamma_pow(1);  // gamma^{j-i}, iterating i = j down to 0
    for (std::size_t i = j + 1; i-- > 0;) {
      // term into y^i: q_j(x) * C(j,i) * gamma^{j-i} * x^i
      const Bigint scale = field_.mul(binom[j][i], gamma_pow);
      if (!scale.is_zero()) {
        // multiply q_j by scale and shift by x^i
        std::vector<Bigint> shifted(i, Bigint(0));
        for (const Bigint& c : coeffs_[j].coeffs()) {
          shifted.push_back(field_.mul(c, scale));
        }
        out[i] = out[i] + Polynomial(field_, std::move(shifted));
      }
      gamma_pow = field_.mul(gamma_pow, gamma);
    }
  }
  return BiPoly(field_, std::move(out));
}

BiPoly BiPoly::strip_x() const {
  if (is_zero()) return *this;
  // r = min over coefficients of the lowest nonzero x-power.
  std::size_t r = SIZE_MAX;
  for (const Polynomial& q : coeffs_) {
    if (q.is_zero()) continue;
    std::size_t low = 0;
    while (q.coeff(low).is_zero()) ++low;
    r = std::min(r, low);
  }
  if (r == 0 || r == SIZE_MAX) return *this;
  std::vector<Polynomial> out;
  out.reserve(coeffs_.size());
  for (const Polynomial& q : coeffs_) {
    if (q.is_zero()) {
      out.push_back(q);
    } else {
      std::vector<Bigint> c(q.coeffs().begin() + static_cast<long>(r),
                            q.coeffs().end());
      out.push_back(Polynomial(field_, std::move(c)));
    }
  }
  return BiPoly(field_, std::move(out));
}

}  // namespace dfky
