#include "poly/roots.h"

namespace dfky {

namespace {

Polynomial make_monic(const Polynomial& p) {
  if (p.is_zero()) return p;
  const Bigint& lead = p.coeffs().back();
  if (lead.is_one()) return p;
  return p.scaled(p.field().inv(lead));
}

/// y as a polynomial.
Polynomial poly_y(const Zq& f) {
  return Polynomial(f, {Bigint(0), Bigint(1)});
}

/// Splits a squarefree product of distinct linear factors into roots.
void split_linear_product(const Polynomial& g, Rng& rng,
                          std::vector<Bigint>& out) {
  const Zq& f = g.field();
  if (g.degree() <= 0) return;
  if (g.degree() == 1) {
    // monic: y + c0  =>  root -c0.
    out.push_back(f.neg(g.coeff(0)));
    return;
  }
  // Cantor-Zassenhaus: gcd(g, (y + a)^((q-1)/2) - 1) splits g with
  // probability ~1/2 per random shift a.
  const Bigint half = (f.modulus() - Bigint(1)) >> 1;
  while (true) {
    const Bigint a = rng.uniform_below(f.modulus());
    const Polynomial shifted(f, {a, Bigint(1)});  // y + a
    Polynomial h = poly_powmod(shifted, half, g);
    h = h - Polynomial::constant(f, Bigint(1));
    Polynomial d = poly_gcd(h, g);
    if (d.degree() > 0 && d.degree() < g.degree()) {
      split_linear_product(d, rng, out);
      split_linear_product(g.divided_exactly_by(d), rng, out);
      return;
    }
  }
}

}  // namespace

Polynomial poly_gcd(const Polynomial& a, const Polynomial& b) {
  Polynomial x = a;
  Polynomial y = b;
  while (!y.is_zero()) {
    Polynomial r = x.divmod(y).second;
    x = std::move(y);
    y = std::move(r);
  }
  return make_monic(x);
}

Polynomial poly_powmod(const Polynomial& base, const Bigint& e,
                       const Polynomial& m) {
  require(m.degree() >= 1, "poly_powmod: modulus must be non-constant");
  require(e.sign() >= 0, "poly_powmod: negative exponent");
  const Zq& f = base.field();
  Polynomial acc = Polynomial::constant(f, Bigint(1));
  Polynomial b = base.divmod(m).second;
  const std::size_t bits = e.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    acc = (acc * acc).divmod(m).second;
    if (e.bit(i)) acc = (acc * b).divmod(m).second;
  }
  return acc;
}

std::vector<Bigint> polynomial_roots(const Polynomial& p, Rng& rng) {
  const Zq& f = p.field();
  std::vector<Bigint> out;
  if (p.degree() <= 0) return out;  // constants (incl. zero poly) have no
                                    // well-defined root set here
  Polynomial work = make_monic(p);

  // Root at zero.
  if (work.coeff(0).is_zero()) {
    out.push_back(Bigint(0));
    // Divide out all y factors.
    std::vector<Bigint> shifted(work.coeffs().begin() + 1,
                                work.coeffs().end());
    while (!shifted.empty() && shifted.front().is_zero()) {
      shifted.erase(shifted.begin());
    }
    work = Polynomial(f, std::move(shifted));
    if (work.degree() <= 0) return out;
  }

  if (work.degree() == 1) {
    out.push_back(f.neg(f.div(work.coeff(0), work.coeff(1))));
    return out;
  }

  // g = gcd(work, y^q - y) = product of (y - r) over the distinct nonzero
  // roots r (y itself was divided out above).
  const Polynomial yq = poly_powmod(poly_y(f), f.modulus(), work);
  const Polynomial g = poly_gcd(yq - poly_y(f), work);
  split_linear_product(g, rng, out);
  return out;
}

}  // namespace dfky
