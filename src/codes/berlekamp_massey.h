// Berlekamp-Massey syndrome decoding over Z_q.
//
// The paper notes (Sect. 6.3.2, "Time-Complexity") that tracing can be
// implemented in better than O(n^2) "in a more sophisticated manner". This
// module provides that faster path: the tracer's parity checks
// delta''_k = sum_j c_j x_j^k (k = 1..v) are power-sum syndromes of the error
// vector, so the error-locator polynomial can be found with Berlekamp-Massey
// in O(v^2), located by scanning the user registry in O(n v), and the error
// values recovered from a small linear system — O(n v + v^3) overall instead
// of Gaussian elimination over n x n systems. Both paths are implemented and
// cross-checked in tests.
#pragma once

#include <optional>

#include "poly/polynomial.h"

namespace dfky {

/// Minimal LFSR (connection polynomial) for the syndrome sequence
/// S_1, S_2, ... Returns C(z) = 1 + c_1 z + ... + c_L z^L such that
/// S_k = -sum_{i=1..L} c_i S_{k-i} for all k > L.
Polynomial berlekamp_massey(const Zq& field,
                            std::span<const Bigint> syndromes);

/// Error described by a weight-t vector with support {locs} and values
/// {vals}: syndromes S_k = sum_j vals[j] * locs[j]^k.
struct SyndromeError {
  std::vector<Bigint> locators;  // the x_j with nonzero error
  std::vector<Bigint> values;    // the corresponding c_j
};

/// Recovers error locations and values from power-sum syndromes
/// S_k = sum_j c_j x_j^k (k = 1..syndromes.size()), where the locators are
/// known to come from the candidate set `candidates` and the error weight is
/// at most floor(syndromes.size() / 2). Returns nullopt if decoding fails
/// (locator does not split over the candidates, or inconsistent values).
std::optional<SyndromeError> decode_power_sums(
    const Zq& field, std::span<const Bigint> syndromes,
    std::span<const Bigint> candidates);

}  // namespace dfky
