#include "codes/berlekamp_welch.h"

#include "linalg/gauss.h"
#include "obs/metrics.h"
#include "poly/lagrange.h"

namespace dfky {

namespace {

/// Counts indices where P disagrees with (xs, ys).
std::size_t disagreements(const Polynomial& p, std::span<const Bigint> xs,
                          std::span<const Bigint> ys) {
  std::size_t bad = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!(p.eval(xs[i]) == ys[i])) ++bad;
  }
  return bad;
}

}  // namespace

std::optional<Polynomial> berlekamp_welch(const Zq& field,
                                          std::span<const Bigint> xs,
                                          std::span<const Bigint> ys,
                                          std::size_t dim,
                                          std::size_t max_errors) {
  require(xs.size() == ys.size(), "berlekamp_welch: size mismatch");
  const std::size_t n = xs.size();
  require(dim >= 1 && dim + 2 * max_errors <= n,
          "berlekamp_welch: dim + 2e must be <= n");
  DFKY_OBS_TIMER(obs_span, "dfky_bw_decode_ns");
  // Counts the ok/fail verdict of whichever return below fires.
  const auto decoded = [](std::optional<Polynomial> p) {
    DFKY_OBS(obs::counter("dfky_bw_decode_total",
                          {{"result", p ? "ok" : "fail"}})
                 .inc(););
    return p;
  };

  for (std::size_t e = max_errors + 1; e-- > 0;) {
    DFKY_OBS(static obs::Counter& rounds =
                 obs::counter("dfky_bw_decode_rounds_total");
             rounds.inc(););
    if (e == 0) {
      // Plain interpolation through the first `dim` points, then verify.
      std::vector<std::pair<Bigint, Bigint>> pts;
      pts.reserve(dim);
      for (std::size_t i = 0; i < dim; ++i) pts.emplace_back(xs[i], ys[i]);
      Polynomial p = interpolate(field, pts);
      if (p.degree() < static_cast<int>(dim) &&
          disagreements(p, xs, ys) == 0) {
        return decoded(std::move(p));
      }
      return decoded(std::nullopt);
    }

    // Unknowns: N_0..N_{dim+e-1}, E_0..E_{e-1} (E monic of degree e).
    // Equation per point i:  sum_j N_j x^j - y_i sum_j E_j x^j = y_i x^e.
    const std::size_t n_unknowns = dim + e + e;
    Matrix m(field, n, n_unknowns);
    std::vector<Bigint> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      Bigint pw(1);
      for (std::size_t j = 0; j < dim + e; ++j) {
        m.at(i, j) = pw;
        pw = field.mul(pw, xs[i]);
      }
      pw = Bigint(1);
      for (std::size_t j = 0; j < e; ++j) {
        m.at(i, dim + e + j) = field.neg(field.mul(ys[i], pw));
        pw = field.mul(pw, xs[i]);
      }
      rhs[i] = field.mul(ys[i], pw);  // y_i * x_i^e
    }
    const auto sol = solve(m, rhs);
    if (!sol) continue;  // no solution with exactly this locator degree

    std::vector<Bigint> n_coeffs(sol->begin(), sol->begin() + dim + e);
    std::vector<Bigint> e_coeffs(sol->begin() + dim + e, sol->end());
    e_coeffs.push_back(Bigint(1));  // monic
    const Polynomial num(field, std::move(n_coeffs));
    const Polynomial loc(field, std::move(e_coeffs));
    try {
      Polynomial p = num.divided_exactly_by(loc);
      if (p.degree() < static_cast<int>(dim) &&
          disagreements(p, xs, ys) <= max_errors) {
        return decoded(std::move(p));
      }
    } catch (const MathError&) {
      // Inexact division: fall through to a smaller locator degree.
    }
  }
  return decoded(std::nullopt);
}

}  // namespace dfky
