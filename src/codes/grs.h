// Generalized Reed-Solomon codes over Z_q.
//
// The non-black-box tracer (paper Sect. 6.3) recasts a pirate key as a
// corrupted codeword of the GRS code
//   C' = { < -(lambda_1/lambda_0^(1)) P(x_1), ...,
//            -(lambda_n/lambda_0^(n)) P(x_n) > : deg P < n - v }
// (Lemma 7), whose distance v+1 lets it correct up to m = floor(v/2) errors —
// exactly the traitor positions.
#pragma once

#include <optional>

#include "linalg/matrix.h"
#include "poly/polynomial.h"

namespace dfky {

/// A GRS code of length xs.size() and dimension `dim`, with codewords
/// ( ws[0] * P(xs[0]), ..., ws[n-1] * P(xs[n-1]) ), deg P < dim.
class GrsCode {
 public:
  GrsCode(Zq field, std::vector<Bigint> xs, std::vector<Bigint> ws,
          std::size_t dim);

  const Zq& field() const { return field_; }
  std::size_t length() const { return xs_.size(); }
  std::size_t dimension() const { return dim_; }
  /// Minimum distance n - k + 1 (MDS).
  std::size_t distance() const { return length() - dim_ + 1; }
  std::size_t max_correctable() const { return (distance() - 1) / 2; }
  const std::vector<Bigint>& evaluation_points() const { return xs_; }
  const std::vector<Bigint>& multipliers() const { return ws_; }

  /// Encodes a message polynomial (deg < dimension).
  std::vector<Bigint> encode(const Polynomial& message) const;

  bool is_codeword(std::span<const Bigint> word) const;

  struct Decoded {
    Polynomial message;
    std::vector<Bigint> codeword;
    std::vector<std::size_t> error_positions;
  };

  /// Decodes `received` (length n) correcting up to `max_errors` errors via
  /// Berlekamp-Welch. Returns nullopt if no codeword lies within range.
  std::optional<Decoded> decode(std::span<const Bigint> received,
                                std::size_t max_errors) const;

 private:
  Zq field_;
  std::vector<Bigint> xs_;
  std::vector<Bigint> ws_;
  std::size_t dim_;
};

}  // namespace dfky
