// Sudan list decoding of Reed-Solomon codes beyond half the minimum
// distance.
//
// The paper (Sect. 6.3.2, "Time-Complexity") notes that when the traitor
// coalition exceeds m = floor(v/2), candidate traitor sets can still be
// extracted with Guruswami-Sudan-style decoding "beyond the error-correction
// bound". This module implements the multiplicity-1 (Sudan) variant:
//
//  1. Interpolate a nonzero bivariate Q(x, y) with (1, k-1)-weighted degree
//     at most D = t - 1 vanishing on all n points (possible whenever the
//     monomial count exceeds n);
//  2. every f with deg f < k agreeing with the points in >= t positions
//     satisfies (y - f(x)) | Q, so the y-roots of Q (Roth-Ruckenstein)
//     contain all such f;
//  3. verify each candidate's agreement count.
//
// For the low-rate regime (k << n) this decodes well beyond (n - k) / 2.
#pragma once

#include "poly/bivariate.h"

namespace dfky {

/// True iff the Sudan interpolation step is feasible for these parameters:
/// the number of monomials of (1, k-1)-weighted degree <= t-1 exceeds n.
bool sudan_feasible(std::size_t n, std::size_t k, std::size_t t);

/// All polynomials f with deg f < k and f(xs[i]) == ys[i] for at least `t`
/// indices. Throws ContractError when parameters are infeasible
/// (use sudan_feasible to probe).
std::vector<Polynomial> sudan_list_decode(const Zq& field,
                                          std::span<const Bigint> xs,
                                          std::span<const Bigint> ys,
                                          std::size_t k, std::size_t t,
                                          Rng& rng);

/// The Roth-Ruckenstein y-root extraction: all f with deg f < k and
/// Q(x, f(x)) == 0. Exposed for tests.
std::vector<Polynomial> y_roots(const BiPoly& q, std::size_t k, Rng& rng);

}  // namespace dfky
