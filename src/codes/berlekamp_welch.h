// Berlekamp-Welch decoding of (generalized) Reed-Solomon codes.
//
// This is the decoder the paper cites ([1] in Sect. 6.3.2) for recovering the
// traitor-indicator vector phi from the "partially corrupted codeword" theta.
#pragma once

#include <optional>

#include "poly/polynomial.h"

namespace dfky {

/// Finds the unique polynomial P with deg P < dim such that P(xs[i]) == ys[i]
/// for all but at most `max_errors` indices, if one exists.
/// Classic key-equation approach: solve for an error-locator E (monic,
/// deg <= max_errors) and N = P * E (deg < dim + max_errors) from the linear
/// system N(x_i) = y_i * E(x_i), then divide.
std::optional<Polynomial> berlekamp_welch(const Zq& field,
                                          std::span<const Bigint> xs,
                                          std::span<const Bigint> ys,
                                          std::size_t dim,
                                          std::size_t max_errors);

}  // namespace dfky
