#include "codes/berlekamp_massey.h"

#include "linalg/gauss.h"

namespace dfky {

Polynomial berlekamp_massey(const Zq& field,
                            std::span<const Bigint> syndromes) {
  // Massey's algorithm; syndromes[0] is S_1.
  std::vector<Bigint> c = {Bigint(1)};  // connection polynomial C(z)
  std::vector<Bigint> b = {Bigint(1)};  // previous C before last length change
  std::size_t len = 0;                  // current LFSR length L
  std::size_t m = 1;                    // steps since last length change
  Bigint bb(1);                         // discrepancy at last length change

  for (std::size_t n = 0; n < syndromes.size(); ++n) {
    // Discrepancy d = S_{n+1} + sum_{i=1..L} c_i * S_{n+1-i}.
    Bigint d = field.reduce(syndromes[n]);
    for (std::size_t i = 1; i <= len && i <= n; ++i) {
      if (i < c.size()) d = field.add(d, field.mul(c[i], syndromes[n - i]));
    }
    if (d.is_zero()) {
      ++m;
      continue;
    }
    const Bigint coef = field.mul(d, field.inv(bb));
    if (2 * len <= n) {
      const std::vector<Bigint> t = c;
      if (c.size() < b.size() + m) c.resize(b.size() + m, Bigint(0));
      for (std::size_t i = 0; i < b.size(); ++i) {
        c[i + m] = field.sub(c[i + m], field.mul(coef, b[i]));
      }
      len = n + 1 - len;
      b = t;
      bb = d;
      m = 1;
    } else {
      if (c.size() < b.size() + m) c.resize(b.size() + m, Bigint(0));
      for (std::size_t i = 0; i < b.size(); ++i) {
        c[i + m] = field.sub(c[i + m], field.mul(coef, b[i]));
      }
      ++m;
    }
  }
  return Polynomial(field, std::move(c));
}

std::optional<SyndromeError> decode_power_sums(
    const Zq& field, std::span<const Bigint> syndromes,
    std::span<const Bigint> candidates) {
  require(!syndromes.empty(), "decode_power_sums: no syndromes");

  // All-zero syndromes: zero error (valid, empty support).
  bool all_zero = true;
  for (const Bigint& s : syndromes) {
    if (!field.is_zero(s)) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) return SyndromeError{};

  // 1. Error-locator polynomial C(z) = prod_j (1 - x_j z) via BM.
  const Polynomial locator = berlekamp_massey(field, syndromes);
  const std::size_t weight = static_cast<std::size_t>(locator.degree());
  if (weight == 0 || 2 * weight > syndromes.size()) return std::nullopt;

  // 2. Locator roots are the inverses of the error locators; scan the
  //    candidate set (the user registry in the tracer).
  SyndromeError out;
  for (const Bigint& x : candidates) {
    const Bigint xr = field.reduce(x);
    if (xr.is_zero()) continue;
    if (field.is_zero(locator.eval(field.inv(xr)))) {
      out.locators.push_back(xr);
    }
  }
  if (out.locators.size() != weight) return std::nullopt;

  // 3. Error values from the first `weight` syndromes:
  //    S_k = sum_j c_j x_j^k, k = 1..weight — a (scaled) Vandermonde system.
  Matrix m(field, weight, weight);
  std::vector<Bigint> rhs(weight);
  for (std::size_t k = 0; k < weight; ++k) {
    for (std::size_t j = 0; j < weight; ++j) {
      m.at(k, j) = field.pow(out.locators[j], Bigint(static_cast<long>(k + 1)));
    }
    rhs[k] = field.reduce(syndromes[k]);
  }
  auto vals = solve(m, rhs);
  if (!vals) return std::nullopt;
  out.values = std::move(*vals);

  // 4. Verify against all provided syndromes (catches wrong candidates).
  for (std::size_t k = 0; k < syndromes.size(); ++k) {
    Bigint acc(0);
    for (std::size_t j = 0; j < weight; ++j) {
      acc = field.add(
          acc, field.mul(out.values[j],
                         field.pow(out.locators[j],
                                   Bigint(static_cast<long>(k + 1)))));
    }
    if (!(acc == field.reduce(syndromes[k]))) return std::nullopt;
  }
  for (const Bigint& v : out.values) {
    if (v.is_zero()) return std::nullopt;  // weight smaller than claimed
  }
  return out;
}

}  // namespace dfky
