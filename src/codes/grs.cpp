#include "codes/grs.h"

#include "codes/berlekamp_welch.h"
#include "poly/lagrange.h"

namespace dfky {

GrsCode::GrsCode(Zq field, std::vector<Bigint> xs, std::vector<Bigint> ws,
                 std::size_t dim)
    : field_(std::move(field)),
      xs_(std::move(xs)),
      ws_(std::move(ws)),
      dim_(dim) {
  require(xs_.size() == ws_.size(), "GrsCode: xs/ws size mismatch");
  require(dim_ >= 1 && dim_ <= xs_.size(), "GrsCode: bad dimension");
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    xs_[i] = field_.reduce(xs_[i]);
    ws_[i] = field_.reduce(ws_[i]);
    require(!ws_[i].is_zero(), "GrsCode: zero column multiplier");
  }
}

std::vector<Bigint> GrsCode::encode(const Polynomial& message) const {
  require(message.degree() < static_cast<int>(dim_),
          "GrsCode::encode: message degree too high");
  std::vector<Bigint> out(xs_.size());
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    out[i] = field_.mul(ws_[i], message.eval(xs_[i]));
  }
  return out;
}

bool GrsCode::is_codeword(std::span<const Bigint> word) const {
  if (word.size() != xs_.size()) return false;
  // Divide out the multipliers and check the result interpolates to a
  // polynomial of degree < dim.
  std::vector<std::pair<Bigint, Bigint>> pts;
  pts.reserve(word.size());
  for (std::size_t i = 0; i < word.size(); ++i) {
    pts.emplace_back(xs_[i], field_.div(word[i], ws_[i]));
  }
  const Polynomial p = interpolate(field_, pts);
  return p.degree() < static_cast<int>(dim_);
}

std::optional<GrsCode::Decoded> GrsCode::decode(
    std::span<const Bigint> received, std::size_t max_errors) const {
  require(received.size() == xs_.size(), "GrsCode::decode: length mismatch");
  require(max_errors <= max_correctable(),
          "GrsCode::decode: beyond unique-decoding radius");
  std::vector<Bigint> ys(received.size());
  for (std::size_t i = 0; i < received.size(); ++i) {
    ys[i] = field_.div(received[i], ws_[i]);
  }
  auto p = berlekamp_welch(field_, xs_, ys, dim_, max_errors);
  if (!p) return std::nullopt;
  Decoded out{std::move(*p), {}, {}};
  out.codeword = encode(out.message);
  for (std::size_t i = 0; i < received.size(); ++i) {
    if (!(out.codeword[i] == field_.reduce(received[i]))) {
      out.error_positions.push_back(i);
    }
  }
  return out;
}

}  // namespace dfky
