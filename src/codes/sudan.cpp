#include "codes/sudan.h"

#include "linalg/gauss.h"
#include "poly/roots.h"

namespace dfky {

namespace {

/// Monomials x^a y^b with a + b(k-1) <= d, as (a-bound per b) list.
std::vector<std::size_t> x_bounds(std::size_t k, std::size_t d) {
  std::vector<std::size_t> out;  // out[b] = max x-degree for y^b, plus one
  const std::size_t step = k >= 2 ? k - 1 : 1;
  for (std::size_t b = 0; b * step <= d; ++b) {
    out.push_back(d - b * step + 1);
  }
  return out;
}

std::size_t monomial_count(std::size_t k, std::size_t d) {
  std::size_t total = 0;
  for (std::size_t c : x_bounds(k, d)) total += c;
  return total;
}

void rr_descend(const BiPoly& q, std::size_t budget,
                std::vector<Bigint>& partial,
                std::vector<std::vector<Bigint>>& found, Rng& rng,
                std::size_t& nodes) {
  constexpr std::size_t kNodeCap = 50000;
  if (++nodes > kNodeCap) return;  // safety valve; verification is sound
  if (budget == 0) {
    // The remaining tail of f must be zero: Q(x, 0) = q_0(x) must vanish.
    if (q.is_zero() || q.y_coeff(0).is_zero()) found.push_back(partial);
    return;
  }
  if (q.is_zero()) {
    // Every completion works; take the zero completion (candidates are
    // verified against the agreement bound afterwards anyway).
    std::vector<Bigint> padded = partial;
    padded.resize(partial.size() + budget, Bigint(0));
    found.push_back(std::move(padded));
    return;
  }
  const BiPoly stripped = q.strip_x();
  const Polynomial r = stripped.at_x_zero();
  std::vector<Bigint> gammas = polynomial_roots(r, rng);
  if (r.is_zero()) {
    // Q(0, y) == 0: any gamma continues a root branch; in particular 0.
    gammas.push_back(Bigint(0));
  }
  for (const Bigint& gamma : gammas) {
    partial.push_back(gamma);
    rr_descend(stripped.shift_substitute(gamma), budget - 1, partial, found,
               rng, nodes);
    partial.pop_back();
  }
}

}  // namespace

bool sudan_feasible(std::size_t n, std::size_t k, std::size_t t) {
  if (t == 0 || k == 0 || t > n) return false;
  return monomial_count(k, t - 1) > n;
}

std::vector<Polynomial> y_roots(const BiPoly& q, std::size_t k, Rng& rng) {
  std::vector<Polynomial> out;
  if (q.is_zero()) return out;
  std::vector<Bigint> partial;
  std::vector<std::vector<Bigint>> found;
  std::size_t nodes = 0;
  rr_descend(q, k, partial, found, rng, nodes);
  for (auto& coeffs : found) {
    Polynomial f(q.field(), std::move(coeffs));
    // Deduplicate and verify Q(x, f(x)) == 0.
    bool dup = false;
    for (const Polynomial& g : out) {
      if (g == f) dup = true;
    }
    if (!dup && q.eval_poly(f).is_zero()) out.push_back(std::move(f));
  }
  return out;
}

std::vector<Polynomial> sudan_list_decode(const Zq& field,
                                          std::span<const Bigint> xs,
                                          std::span<const Bigint> ys,
                                          std::size_t k, std::size_t t,
                                          Rng& rng) {
  const std::size_t n = xs.size();
  require(ys.size() == n, "sudan: size mismatch");
  require(sudan_feasible(n, k, t),
          "sudan: agreement too low for multiplicity-1 interpolation");
  const std::size_t d = t - 1;
  const std::vector<std::size_t> bounds = x_bounds(k, d);
  const std::size_t cols = monomial_count(k, d);

  // Interpolation matrix: one row per point, one column per monomial
  // x^a y^b (a < bounds[b]).
  Matrix m(field, n, cols);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t col = 0;
    Bigint ypow(1);
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      Bigint xpow(1);
      for (std::size_t a = 0; a < bounds[b]; ++a) {
        m.at(i, col++) = field.mul(ypow, xpow);
        xpow = field.mul(xpow, xs[i]);
      }
      ypow = field.mul(ypow, ys[i]);
    }
  }
  const auto kv = kernel_vector(m);
  if (!kv) throw MathError("sudan: interpolation failed (no kernel)");

  // Assemble Q from the kernel vector.
  std::vector<Polynomial> qc;
  {
    std::size_t col = 0;
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      std::vector<Bigint> c(kv->begin() + static_cast<long>(col),
                            kv->begin() + static_cast<long>(col + bounds[b]));
      qc.push_back(Polynomial(field, std::move(c)));
      col += bounds[b];
    }
  }
  const BiPoly q(field, std::move(qc));

  // Extract y-roots and keep those meeting the agreement bound.
  std::vector<Polynomial> out;
  for (Polynomial& f : y_roots(q, k, rng)) {
    if (f.degree() >= static_cast<int>(k)) continue;
    std::size_t agree = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (f.eval(xs[i]) == field.reduce(ys[i])) ++agree;
    }
    if (agree >= t) out.push_back(std::move(f));
  }
  return out;
}

}  // namespace dfky
