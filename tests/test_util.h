// Shared test fixtures: fast embedded group parameters and seeded PRGs so
// every test run is deterministic.
#pragma once

#include "core/keys.h"
#include "group/params.h"
#include "rng/chacha_rng.h"

namespace dfky::test {

inline Group test_group() {
  return Group(GroupParams::named(ParamId::kTest128));
}

inline SystemParams test_params(std::size_t v, std::uint64_t seed = 42) {
  ChaChaRng rng(seed);
  return SystemParams::create(test_group(), v, rng);
}

inline Zq test_zq() {
  return Zq(GroupParams::named(ParamId::kTest128).q, /*trust_prime=*/true);
}

}  // namespace dfky::test
