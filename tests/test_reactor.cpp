// The epoll reactor front end (DESIGN.md Sect. 15) against real unix
// sockets, with a stub handler in place of the store-backed
// RequestHandler: partial-line reassembly, pipelining order (tagged
// concurrent, untagged barrier), write-queue backpressure and overflow
// close, idle reaping, admission-control shedding, the oversize-line
// error path, the metrics scraper cap and the shutdown handshake.
// tools/sanitize_check.sh re-runs this binary under ASan and TSan.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "daemon/feed.h"
#include "daemon/protocol.h"
#include "daemon/reactor.h"

namespace dfky::daemon {
namespace {

constexpr auto kDeadline = std::chrono::seconds(10);

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::listen(fd, 64), 0);
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const timeval tv{.tv_sec = 10, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// One LF-terminated line (stripped), or nullopt on EOF/timeout.
std::optional<std::string> recv_line(int fd, std::string& buf) {
  for (;;) {
    const std::size_t pos = buf.find('\n');
    if (pos != std::string::npos) {
      std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// True when nothing arrives on `fd` for `ms` — the negative assertion
/// for ordering tests (the barrier really is holding the response back).
bool quiet_for(int fd, int ms) {
  const timeval tv{.tv_sec = ms / 1000,
                   .tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  char c;
  const ssize_t n = ::recv(fd, &c, 1, MSG_PEEK);
  const bool quiet = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
  const timeval restore{.tv_sec = 10, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &restore, sizeof restore);
  return quiet;
}

/// Echo stub: `ok body=<request body>`, tag echoed, shutdown on the
/// `shutdown` verb — the protocol surface without a store behind it.
Reactor::Result echo_handler(const std::string& line) {
  const TaggedLine t = split_request_tag(line);
  if (t.body == "shutdown") {
    return {tag_response(t.id, ok_response()), true};
  }
  return {tag_response(t.id, "ok body=" + std::string(t.body)), false};
}

/// Reactor over a fresh socket in a temp dir, serving on its own thread.
struct Harness {
  std::string dir;
  std::string sock;
  int lfd = -1;
  int metrics_lfd = -1;
  int metrics_port = 0;
  int wake[2] = {-1, -1};
  std::optional<Reactor> reactor;
  std::thread thr;
  bool stopped = false;

  explicit Harness(ReactorOptions opts, Reactor::Handler handler,
                   std::function<std::size_t()> depth = {},
                   bool with_metrics = false) {
    char tmpl[] = "/tmp/dfky_reactor_test_XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr);
    dir = tmpl;
    sock = dir + "/d.sock";
    lfd = listen_unix(sock);
    EXPECT_EQ(::pipe2(wake, O_CLOEXEC), 0);
    opts.listen_fd = lfd;
    opts.wake_fd = wake[0];
    if (with_metrics) {
      metrics_lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      sockaddr_in sin{};
      sin.sin_family = AF_INET;
      sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      EXPECT_EQ(::bind(metrics_lfd, reinterpret_cast<sockaddr*>(&sin),
                       sizeof sin),
                0);
      EXPECT_EQ(::listen(metrics_lfd, 16), 0);
      socklen_t len = sizeof sin;
      ::getsockname(metrics_lfd, reinterpret_cast<sockaddr*>(&sin), &len);
      metrics_port = ntohs(sin.sin_port);
      opts.metrics_fd = metrics_lfd;
    }
    const int wake_wr = wake[1];
    reactor.emplace(opts, std::move(handler), std::move(depth), [wake_wr] {
      const char b = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_wr, &b, 1);
    });
    thr = std::thread([this] { reactor->run(); });
  }

  void stop() {
    if (stopped) return;
    stopped = true;
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake[1], &b, 1);
    thr.join();
  }

  /// Joins without poking the wake pipe — for the shutdown-verb test,
  /// where the handler result is what must stop the loop.
  void join() {
    stopped = true;
    thr.join();
  }

  ~Harness() {
    stop();
    ::close(lfd);
    if (metrics_lfd >= 0) ::close(metrics_lfd);
    ::close(wake[0]);
    ::close(wake[1]);
    ::unlink(sock.c_str());
    ::rmdir(dir.c_str());
  }

  int connect_metrics() const {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sin.sin_port = htons(static_cast<std::uint16_t>(metrics_port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof sin), 0);
    const timeval tv{.tv_sec = 10, .tv_usec = 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    return fd;
  }
};

template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + kDeadline;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(Reactor, PartialLineReassembly) {
  Harness h(ReactorOptions{}, echo_handler);
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  std::string buf;

  // One line dribbled across four writes, then two lines in one write.
  ASSERT_TRUE(send_all(fd, "he"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(send_all(fd, "ll"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(send_all(fd, "o"));
  ASSERT_TRUE(send_all(fd, "\n"));
  EXPECT_EQ(recv_line(fd, buf), "ok body=hello");

  ASSERT_TRUE(send_all(fd, "@7 foo\r\nbar\n"));
  EXPECT_EQ(recv_line(fd, buf), "@7 ok body=foo");
  EXPECT_EQ(recv_line(fd, buf), "ok body=bar");
  ::close(fd);
}

TEST(Reactor, TaggedRunConcurrentlyUntaggedBarriers) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ReactorOptions opts;
  opts.workers = 4;
  Harness h(opts, [&](const std::string& line) -> Reactor::Result {
    const TaggedLine t = split_request_tag(line);
    if (t.body == "slow") {
      std::unique_lock lk(mu);
      cv.wait(lk, [&] { return release; });
    }
    return {tag_response(t.id, "ok body=" + std::string(t.body)), false};
  });
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  std::string buf;

  // @1 parks in a worker; @2 overtakes it (out-of-order completion is
  // the tagged contract); the untagged line must wait for BOTH.
  ASSERT_TRUE(send_all(fd, "@1 slow\n@2 fast\nuntagged\n"));
  EXPECT_EQ(recv_line(fd, buf), "@2 ok body=fast");
  EXPECT_TRUE(quiet_for(fd, 300));  // the barrier is holding
  {
    std::lock_guard lk(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(recv_line(fd, buf), "@1 ok body=slow");
  EXPECT_EQ(recv_line(fd, buf), "ok body=untagged");
  ::close(fd);
}

TEST(Reactor, SlowReaderGetsEveryResponse) {
  Harness h(ReactorOptions{}, echo_handler);
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  const std::size_t kReqs = 500;
  std::string out;
  for (std::size_t i = 0; i < kReqs; ++i) {
    out += "@" + std::to_string(i) + " ping\n";
  }
  ASSERT_TRUE(send_all(fd, out));
  std::string buf;
  std::vector<bool> seen(kReqs, false);
  for (std::size_t i = 0; i < kReqs; ++i) {
    if (i % 100 == 0) {  // slow reader: EPOLLOUT flush path gets exercised
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const auto line = recv_line(fd, buf);
    ASSERT_TRUE(line.has_value()) << "connection died after " << i;
    const auto resp = parse_response(*line);
    ASSERT_TRUE(resp && resp->ok && resp->id) << *line;
    ASSERT_LT(*resp->id, kReqs);
    EXPECT_FALSE(seen[*resp->id]) << "duplicate id " << *resp->id;
    seen[*resp->id] = true;
  }
  EXPECT_EQ(h.reactor->stats().overflow_closed, 0u);
  ::close(fd);
}

TEST(Reactor, WriteQueueOverflowClosesUnresponsiveReader) {
  ReactorOptions opts;
  opts.write_queue_limit = std::size_t{64} << 10;
  const std::string big(std::size_t{32} << 10, 'x');
  Harness h(opts, [&](const std::string& line) -> Reactor::Result {
    const TaggedLine t = split_request_tag(line);
    return {tag_response(t.id, "ok big=" + big), false};
  });
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  // 64 x 32KiB of responses against a reader that never reads: the
  // socket buffer fills, then the write queue, then the reactor drops
  // the connection instead of buffering without bound.
  std::string out;
  for (int i = 0; i < 64; ++i) out += "@" + std::to_string(i) + " go\n";
  ASSERT_TRUE(send_all(fd, out));
  EXPECT_TRUE(eventually(
      [&] { return h.reactor->stats().overflow_closed >= 1; }));
  ::close(fd);
}

TEST(Reactor, IdleConnectionsAreReaped) {
  ReactorOptions opts;
  opts.idle_timeout_ms = 100;
  Harness h(opts, echo_handler);
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  std::string buf;
  ASSERT_TRUE(send_all(fd, "ping\n"));
  EXPECT_EQ(recv_line(fd, buf), "ok body=ping");
  // Now go idle; the reaper closes us and recv sees clean EOF.
  EXPECT_EQ(recv_line(fd, buf), std::nullopt);
  EXPECT_TRUE(eventually([&] { return h.reactor->stats().idle_reaped >= 1; }));
  EXPECT_EQ(h.reactor->stats().open_conns, 0u);
  ::close(fd);
}

TEST(Reactor, BusyShedsMutationsNotReads) {
  std::atomic<std::size_t> depth{0};
  ReactorOptions opts;
  opts.busy_queue_limit = 4;
  Harness h(opts, echo_handler, [&] { return depth.load(); });
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  std::string buf;
  ASSERT_TRUE(send_all(fd, "ping\n"));
  EXPECT_EQ(recv_line(fd, buf), "ok body=ping");

  depth.store(10);  // committers saturated
  ASSERT_TRUE(send_all(fd, "@1 add-user u\n"));
  EXPECT_EQ(recv_line(fd, buf), "@1 err busy");
  ASSERT_TRUE(send_all(fd, "revoke 3\n"));
  EXPECT_EQ(recv_line(fd, buf), "err busy");
  // Reads pass through even while mutations shed.
  ASSERT_TRUE(send_all(fd, "@2 status\n"));
  EXPECT_EQ(recv_line(fd, buf), "@2 ok body=status");
  EXPECT_EQ(h.reactor->stats().busy_shed, 2u);

  // New clients are not accepted while saturated...
  const int fd2 = connect_unix(h.sock);  // lands in the backlog
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(send_all(fd2, "ping\n"));
  EXPECT_TRUE(quiet_for(fd2, 300));
  // ...and are picked back up once the backlog drains.
  depth.store(0);
  std::string buf2;
  EXPECT_EQ(recv_line(fd2, buf2), "ok body=ping");
  ASSERT_TRUE(send_all(fd, "@3 add-user u\n"));
  EXPECT_EQ(recv_line(fd, buf), "@3 ok body=add-user u");
  ::close(fd);
  ::close(fd2);
}

TEST(Reactor, OversizeLineGetsErrThenClose) {
  Harness h(ReactorOptions{}, echo_handler);
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  // One valid line, then > kMaxLineBytes without a newline. The valid
  // line is answered; the violation earns one `err` and the close.
  ASSERT_TRUE(send_all(fd, "ping\n"));
  std::string buf;
  EXPECT_EQ(recv_line(fd, buf), "ok body=ping");
  const std::string junk(kMaxLineBytes + (std::size_t{64} << 10), 'a');
  send_all(fd, junk);  // may fail part-way once the reactor shuts its read
  EXPECT_EQ(recv_line(fd, buf), "err request line too long");
  EXPECT_EQ(recv_line(fd, buf), std::nullopt);  // EOF
  ::close(fd);
}

TEST(Reactor, MetricsScraperCapAndDeadline) {
  ReactorOptions opts;
  opts.max_metrics_conns = 1;
  opts.metrics_timeout_ms = 300;
  Harness h(opts, echo_handler, {}, /*with_metrics=*/true);

  const int held = h.connect_metrics();  // occupies the only slot, silent
  ASSERT_TRUE(eventually([&] {
    // Over the cap: accepted then immediately closed.
    const int fd = h.connect_metrics();
    std::string buf;
    const bool rejected = recv_line(fd, buf) == std::nullopt;
    ::close(fd);
    return rejected && h.reactor->stats().metrics_rejects >= 1;
  }));

  // The silent scraper is reaped at its deadline, freeing the slot for a
  // real scrape.
  std::string held_buf;
  EXPECT_EQ(recv_line(held, held_buf), std::nullopt);
  ::close(held);
  EXPECT_TRUE(eventually([&] {
    const int fd = h.connect_metrics();
    send_all(fd, "GET /metrics HTTP/1.0\r\n\r\n");
    std::string buf;
    const auto status = recv_line(fd, buf);
    ::close(fd);
    return status.has_value() && status->starts_with("HTTP/1.0 200");
  }));
}

TEST(Reactor, ShutdownVerbAcksThenStops) {
  Harness h(ReactorOptions{}, echo_handler);
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  std::string buf;
  ASSERT_TRUE(send_all(fd, "shutdown\n"));
  EXPECT_EQ(recv_line(fd, buf), "ok");
  EXPECT_EQ(recv_line(fd, buf), std::nullopt);  // drained and closed
  h.join();  // run() returned because the handler said shutdown
  ::close(fd);
}

// ---- streaming fan-out (DESIGN.md Sect. 16) ----

TEST(Reactor, FeedSubscribePushesFramesToEverySubscriberOnly) {
  FeedHub hub;
  ReactorOptions opts;
  opts.feed = &hub;
  Harness h(opts, echo_handler);

  const int sub1 = connect_unix(h.sock);
  const int sub2 = connect_unix(h.sock);
  const int plain = connect_unix(h.sock);
  ASSERT_GE(sub1, 0);
  ASSERT_GE(sub2, 0);
  ASSERT_GE(plain, 0);
  std::string b1, b2, bp;
  ASSERT_TRUE(send_all(sub1, "subscribe\n"));
  EXPECT_EQ(recv_line(sub1, b1), "ok period=0 replayed=0");
  ASSERT_TRUE(send_all(sub2, "@9 subscribe\n"));
  EXPECT_EQ(recv_line(sub2, b2), "@9 ok period=0 replayed=0");
  ASSERT_TRUE(send_all(plain, "ping\n"));
  EXPECT_EQ(recv_line(plain, bp), "ok body=ping");
  EXPECT_TRUE(eventually([&] { return h.reactor->stats().subscribers == 2; }));

  hub.publish("bcast new-period period=1 bundles=aa", 1);
  hub.publish("bcast new-period period=2 bundles=bb", 2);
  EXPECT_EQ(recv_line(sub1, b1), "bcast new-period period=1 bundles=aa");
  EXPECT_EQ(recv_line(sub1, b1), "bcast new-period period=2 bundles=bb");
  EXPECT_EQ(recv_line(sub2, b2), "bcast new-period period=1 bundles=aa");
  EXPECT_EQ(recv_line(sub2, b2), "bcast new-period period=2 bundles=bb");
  // Non-subscribers never see the push stream.
  EXPECT_TRUE(quiet_for(plain, 200));

  // A subscriber's connection still answers ordinary requests.
  ASSERT_TRUE(send_all(sub1, "@3 status\n"));
  EXPECT_EQ(recv_line(sub1, b1), "@3 ok body=status");

  ::close(sub1);
  ::close(sub2);
  EXPECT_TRUE(eventually([&] { return h.reactor->stats().subscribers == 0; }));
  ::close(plain);
}

TEST(Reactor, FeedSlowSubscriberShedLosesNobodyElsesFrames) {
  FeedHub hub;
  ReactorOptions opts;
  opts.feed = &hub;
  opts.write_queue_limit = std::size_t{64} << 10;
  Harness h(opts, echo_handler);

  const int good = connect_unix(h.sock);
  const int slow = connect_unix(h.sock);
  ASSERT_GE(good, 0);
  ASSERT_GE(slow, 0);
  std::string bg, bs;
  ASSERT_TRUE(send_all(good, "subscribe\n"));
  EXPECT_EQ(recv_line(good, bg), "ok period=0 replayed=0");
  ASSERT_TRUE(send_all(slow, "subscribe\n"));
  EXPECT_EQ(recv_line(slow, bs), "ok period=0 replayed=0");
  EXPECT_TRUE(eventually([&] { return h.reactor->stats().subscribers == 2; }));

  // 64 x 32KiB frames against a subscriber that never reads: its socket
  // buffer fills, then its write queue, then it is shed — while the
  // reading subscriber receives every frame, in order.
  const std::string pad(std::size_t{32} << 10, 'x');
  const int kFrames = 64;
  for (int i = 0; i < kFrames; ++i) {
    hub.publish("bcast n=" + std::to_string(i) + " pad=" + pad,
                static_cast<std::uint64_t>(i));
    const auto line = recv_line(good, bg);
    ASSERT_TRUE(line.has_value()) << "good subscriber died at frame " << i;
    EXPECT_TRUE(line->starts_with("bcast n=" + std::to_string(i) + " "))
        << "frame " << i << " got: " << line->substr(0, 40);
  }
  EXPECT_TRUE(eventually([&] { return h.reactor->stats().feed_shed >= 1; }));
  EXPECT_TRUE(eventually([&] { return h.reactor->stats().subscribers == 1; }));
  ::close(good);
  ::close(slow);
}

TEST(Reactor, FeedResumeReplaysExactlyTheMissedEpochs) {
  FeedHub hub;
  hub.set_replay([](std::optional<std::uint64_t> from) {
    FeedReplay rep;
    rep.current = 5;
    rep.oldest = 2;
    if (!from) {
      rep.ok = true;
      return rep;
    }
    if (*from + 1 < rep.oldest) return rep;  // evicted
    rep.ok = true;
    for (std::uint64_t p = *from + 1; p <= rep.current; ++p) {
      rep.lines.push_back("bcast new-period period=" + std::to_string(p) +
                          " bundles=ff");
    }
    return rep;
  });
  ReactorOptions opts;
  opts.feed = &hub;
  Harness h(opts, echo_handler);

  // Resume from period 2: epochs 3, 4, 5 — exactly the missed ones.
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  std::string buf;
  ASSERT_TRUE(send_all(fd, "subscribe 2\n"));
  EXPECT_EQ(recv_line(fd, buf), "ok period=5 replayed=3");
  EXPECT_EQ(recv_line(fd, buf), "bcast new-period period=3 bundles=ff");
  EXPECT_EQ(recv_line(fd, buf), "bcast new-period period=4 bundles=ff");
  EXPECT_EQ(recv_line(fd, buf), "bcast new-period period=5 bundles=ff");
  EXPECT_TRUE(quiet_for(fd, 200));  // and nothing more
  EXPECT_EQ(h.reactor->stats().feed_replayed, 3u);

  // Already current: subscribed, nothing replayed.
  ASSERT_TRUE(send_all(fd, "@1 subscribe 5\n"));
  EXPECT_EQ(recv_line(fd, buf), "@1 ok period=5 replayed=0");

  // Evicted from the archive: NOT subscribed, told where the feed can
  // bridge from so the client falls back to the signed catch-up path.
  const int old = connect_unix(h.sock);
  ASSERT_GE(old, 0);
  std::string bo;
  ASSERT_TRUE(send_all(old, "subscribe 0\n"));
  EXPECT_EQ(recv_line(old, bo), "err replay-unavailable oldest=2 period=5");
  hub.publish("bcast new-period period=6 bundles=ee", 6);
  EXPECT_EQ(recv_line(fd, buf), "bcast new-period period=6 bundles=ee");
  EXPECT_TRUE(quiet_for(old, 200));  // the rejected conn is not a stream

  // Malformed resume point.
  ASSERT_TRUE(send_all(old, "subscribe zero\n"));
  EXPECT_EQ(recv_line(old, bo), "err usage: subscribe [from-period]");
  ::close(fd);
  ::close(old);
}

TEST(Reactor, FeedDrainFlushesInFlightBroadcastFrames) {
  FeedHub hub;
  ReactorOptions opts;
  opts.feed = &hub;
  Harness h(opts, echo_handler);
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  std::string buf;
  ASSERT_TRUE(send_all(fd, "subscribe\n"));
  EXPECT_EQ(recv_line(fd, buf), "ok period=0 replayed=0");

  // Frames published right before shutdown must still reach the stream:
  // the drain fans out pending frames and flushes them before closing.
  hub.publish("bcast new-period period=1 bundles=aa", 1);
  hub.publish("bcast new-period period=2 bundles=bb", 2);
  hub.publish("bcast new-period period=3 bundles=cc", 3);
  h.stop();
  EXPECT_EQ(recv_line(fd, buf), "bcast new-period period=1 bundles=aa");
  EXPECT_EQ(recv_line(fd, buf), "bcast new-period period=2 bundles=bb");
  EXPECT_EQ(recv_line(fd, buf), "bcast new-period period=3 bundles=cc");
  EXPECT_EQ(recv_line(fd, buf), std::nullopt);  // then clean EOF
  ::close(fd);
}

TEST(Reactor, FeedSubscriberOutlivesIdleReaping) {
  FeedHub hub;
  ReactorOptions opts;
  opts.feed = &hub;
  opts.idle_timeout_ms = 100;
  Harness h(opts, echo_handler);
  const int sub = connect_unix(h.sock);
  const int plain = connect_unix(h.sock);
  ASSERT_GE(sub, 0);
  ASSERT_GE(plain, 0);
  std::string bs, bp;
  ASSERT_TRUE(send_all(sub, "subscribe\n"));
  EXPECT_EQ(recv_line(sub, bs), "ok period=0 replayed=0");
  ASSERT_TRUE(send_all(plain, "ping\n"));
  EXPECT_EQ(recv_line(plain, bp), "ok body=ping");

  // The plain connection idles out; the subscriber is quiet for the same
  // stretch but push streams are never idle-reaped.
  EXPECT_EQ(recv_line(plain, bp), std::nullopt);
  EXPECT_TRUE(eventually([&] { return h.reactor->stats().idle_reaped >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(h.reactor->stats().subscribers, 1u);
  hub.publish("bcast new-period period=9 bundles=dd", 9);
  EXPECT_EQ(recv_line(sub, bs), "bcast new-period period=9 bundles=dd");
  ::close(sub);
  ::close(plain);
}

TEST(Reactor, DrainAnswersInFlightRequests) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  Harness h(ReactorOptions{}, [&](const std::string& line) -> Reactor::Result {
    const TaggedLine t = split_request_tag(line);
    if (t.body == "slow") {
      std::unique_lock lk(mu);
      cv.wait(lk, [&] { return release; });
    }
    return {tag_response(t.id, "ok body=" + std::string(t.body)), false};
  });
  const int fd = connect_unix(h.sock);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, "@1 slow\n"));
  std::string buf;
  EXPECT_TRUE(quiet_for(fd, 100));  // parked in the worker
  std::thread stopper([&] { h.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard lk(mu);
    release = true;
  }
  cv.notify_all();
  // The drain must flush the ack for the request that was already
  // executing before it closes the connection.
  EXPECT_EQ(recv_line(fd, buf), "@1 ok body=slow");
  EXPECT_EQ(recv_line(fd, buf), std::nullopt);
  stopper.join();
  ::close(fd);
}

}  // namespace
}  // namespace dfky::daemon
