// Sudan list decoding and its building blocks (polynomial roots, bivariate
// polynomials), plus tracing beyond the collusion bound.
#include <gtest/gtest.h>

#include <algorithm>

#include "codes/sudan.h"
#include "poly/roots.h"
#include "rng/chacha_rng.h"
#include "test_util.h"
#include "tracing/list_tracing.h"
#include "tracing/pirate.h"

namespace dfky {
namespace {

// ---- polynomial roots ------------------------------------------------------

TEST(PolyRoots, LinearAndConstant) {
  const Zq f = test::test_zq();
  ChaChaRng rng(1);
  // 3y + 6 = 0  =>  y = -2.
  const Polynomial p(f, {Bigint(6), Bigint(3)});
  const auto roots = polynomial_roots(p, rng);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], f.neg(Bigint(2)));
  EXPECT_TRUE(polynomial_roots(Polynomial::constant(f, Bigint(5)), rng).empty());
  EXPECT_TRUE(polynomial_roots(Polynomial::zero(f), rng).empty());
}

TEST(PolyRoots, ProductOfKnownLinearFactors) {
  const Zq f = test::test_zq();
  ChaChaRng rng(2);
  const std::vector<long> want = {3, 17, 99, 12345};
  Polynomial p = Polynomial::constant(f, Bigint(1));
  for (long r : want) {
    p = p * Polynomial(f, {f.neg(Bigint(r)), Bigint(1)});
  }
  auto roots = polynomial_roots(p, rng);
  std::sort(roots.begin(), roots.end());
  ASSERT_EQ(roots.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(roots[i], Bigint(want[i]));
  }
}

TEST(PolyRoots, RootAtZero) {
  const Zq f = test::test_zq();
  ChaChaRng rng(3);
  // y * (y - 7)
  const Polynomial p =
      Polynomial(f, {Bigint(0), Bigint(1)}) * Polynomial(f, {f.neg(Bigint(7)), Bigint(1)});
  auto roots = polynomial_roots(p, rng);
  std::sort(roots.begin(), roots.end());
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0], Bigint(0));
  EXPECT_EQ(roots[1], Bigint(7));
}

TEST(PolyRoots, IrreducibleHasNoRoots) {
  const Zq f = test::test_zq();
  ChaChaRng rng(4);
  // y^2 - s for a non-residue s: no roots. Find a non-residue.
  Bigint s(2);
  while (s.jacobi(f.modulus()) != -1) s += Bigint(1);
  const Polynomial p(f, {f.neg(s), Bigint(0), Bigint(1)});
  EXPECT_TRUE(polynomial_roots(p, rng).empty());
}

TEST(PolyRoots, MixedFactors) {
  const Zq f = test::test_zq();
  ChaChaRng rng(5);
  // (y - 5)(y^2 - s) with s a non-residue: exactly one root.
  Bigint s(2);
  while (s.jacobi(f.modulus()) != -1) s += Bigint(1);
  const Polynomial p = Polynomial(f, {f.neg(Bigint(5)), Bigint(1)}) *
                       Polynomial(f, {f.neg(s), Bigint(0), Bigint(1)});
  const auto roots = polynomial_roots(p, rng);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], Bigint(5));
}

TEST(PolyRoots, RepeatedRootReportedOnce) {
  const Zq f = test::test_zq();
  ChaChaRng rng(6);
  const Polynomial lin(f, {f.neg(Bigint(9)), Bigint(1)});
  const auto roots = polynomial_roots(lin * lin * lin, rng);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], Bigint(9));
}

TEST(PolyGcd, KnownGcd) {
  const Zq f = test::test_zq();
  const Polynomial a(f, {f.neg(Bigint(1)), Bigint(0), Bigint(1)});  // y^2-1
  const Polynomial b(f, {Bigint(1), Bigint(1)});                    // y+1
  EXPECT_EQ(poly_gcd(a, b), b);
  EXPECT_EQ(poly_gcd(b, Polynomial::zero(f)), b);
}

TEST(PolyPowmod, MatchesRepeatedMultiplication) {
  const Zq f = test::test_zq();
  ChaChaRng rng(7);
  const Polynomial base = Polynomial::random(f, 3, rng);
  const Polynomial mod = Polynomial::random(f, 4, rng);
  Polynomial expect = Polynomial::constant(f, Bigint(1));
  for (int i = 0; i < 9; ++i) expect = (expect * base).divmod(mod).second;
  EXPECT_EQ(poly_powmod(base, Bigint(9), mod), expect);
}

// ---- bivariate polynomials ---------------------------------------------------

TEST(BiPoly, EvalAndAtXZero) {
  const Zq f = test::test_zq();
  // Q(x,y) = (1 + 2x) + (3 + x) y + 5 y^2
  const BiPoly q(f, {Polynomial(f, {Bigint(1), Bigint(2)}),
                     Polynomial(f, {Bigint(3), Bigint(1)}),
                     Polynomial(f, {Bigint(5)})});
  // Q(2, 3) = 5 + 5*3 + 5*9 = 65.
  EXPECT_EQ(q.eval(Bigint(2), Bigint(3)), Bigint(65));
  const Polynomial r = q.at_x_zero();
  EXPECT_EQ(r.coeff(0), Bigint(1));
  EXPECT_EQ(r.coeff(1), Bigint(3));
  EXPECT_EQ(r.coeff(2), Bigint(5));
}

TEST(BiPoly, ShiftSubstituteIdentity) {
  // Q(x, x*y + gamma) evaluated at (x0, y0) equals Q(x0, x0*y0 + gamma).
  const Zq f = test::test_zq();
  ChaChaRng rng(8);
  std::vector<Polynomial> coeffs;
  for (int j = 0; j < 4; ++j) coeffs.push_back(Polynomial::random(f, 3, rng));
  const BiPoly q(f, coeffs);
  const Bigint gamma = rng.uniform_below(f.modulus());
  const BiPoly shifted = q.shift_substitute(gamma);
  for (int trial = 0; trial < 5; ++trial) {
    const Bigint x0 = rng.uniform_below(f.modulus());
    const Bigint y0 = rng.uniform_below(f.modulus());
    EXPECT_EQ(shifted.eval(x0, y0),
              q.eval(x0, f.add(f.mul(x0, y0), gamma)));
  }
}

TEST(BiPoly, StripX) {
  const Zq f = test::test_zq();
  // Q = x^2 (1 + y): strip gives (1 + y).
  const BiPoly q(f, {Polynomial(f, {Bigint(0), Bigint(0), Bigint(1)}),
                     Polynomial(f, {Bigint(0), Bigint(0), Bigint(1)})});
  const BiPoly s = q.strip_x();
  EXPECT_EQ(s.y_coeff(0), Polynomial::constant(f, Bigint(1)));
  EXPECT_EQ(s.y_coeff(1), Polynomial::constant(f, Bigint(1)));
}

TEST(BiPoly, EvalPoly) {
  const Zq f = test::test_zq();
  ChaChaRng rng(9);
  // If Q = (y - f(x)) * (y - g(x)) then Q(x, f(x)) == 0.
  const Polynomial fx = Polynomial::random(f, 2, rng);
  const Polynomial gx = Polynomial::random(f, 2, rng);
  const BiPoly q(f, {fx * gx, (fx + gx).scaled(f.neg(Bigint(1))),
                     Polynomial::constant(f, Bigint(1))});
  EXPECT_TRUE(q.eval_poly(fx).is_zero());
  EXPECT_TRUE(q.eval_poly(gx).is_zero());
  EXPECT_FALSE(q.eval_poly(fx + Polynomial::constant(f, Bigint(1))).is_zero());
}

TEST(YRoots, FactorsOfExplicitProduct) {
  const Zq f = test::test_zq();
  ChaChaRng rng(10);
  const Polynomial fx = Polynomial::random(f, 2, rng);
  const Polynomial gx = Polynomial::random(f, 2, rng);
  const BiPoly q(f, {fx * gx, (fx + gx).scaled(f.neg(Bigint(1))),
                     Polynomial::constant(f, Bigint(1))});
  const auto roots = y_roots(q, 3, rng);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_TRUE((roots[0] == fx && roots[1] == gx) ||
              (roots[0] == gx && roots[1] == fx));
}

// ---- Sudan list decoding -------------------------------------------------------

std::vector<Bigint> distinct_nonzero(const Zq& f, std::size_t count,
                                     ChaChaRng& rng) {
  std::vector<Bigint> out;
  while (out.size() < count) {
    Bigint x = rng.uniform_nonzero_below(f.modulus());
    bool dup = false;
    for (const Bigint& y : out) {
      if (x == y) dup = true;
    }
    if (!dup) out.push_back(std::move(x));
  }
  return out;
}

TEST(Sudan, FeasibilityBounds) {
  // n = 64, k = 8: monomial count for D = t-1 must exceed n.
  EXPECT_TRUE(sudan_feasible(64, 8, 34));
  EXPECT_TRUE(sudan_feasible(64, 8, 29));   // e = 35 still feasible
  EXPECT_FALSE(sudan_feasible(64, 8, 24));  // e = 40 infeasible
  EXPECT_FALSE(sudan_feasible(64, 8, 0));
  EXPECT_FALSE(sudan_feasible(64, 8, 65));
}

TEST(Sudan, DecodesBeyondHalfDistance) {
  // n = 64, k = 8: unique decoding corrects (64-8)/2 = 28 errors; Sudan
  // handles 32 here.
  const Zq f = test::test_zq();
  ChaChaRng rng(11);
  const std::size_t n = 64, k = 8, e = 32;
  const auto xs = distinct_nonzero(f, n, rng);
  const Polynomial p = Polynomial::random(f, k - 1, rng);
  auto ys = p.eval_many(xs);
  for (std::size_t i = 0; i < e; ++i) ys[i] = rng.uniform_below(f.modulus());
  const auto list = sudan_list_decode(f, xs, ys, k, n - e, rng);
  bool found = false;
  for (const Polynomial& cand : list) {
    if (cand == p) found = true;
  }
  EXPECT_TRUE(found) << "list size " << list.size();
}

TEST(Sudan, NoErrorsReturnsThePolynomial) {
  const Zq f = test::test_zq();
  ChaChaRng rng(12);
  const std::size_t n = 20, k = 4;
  const auto xs = distinct_nonzero(f, n, rng);
  const Polynomial p = Polynomial::random(f, k - 1, rng);
  const auto ys = p.eval_many(xs);
  const auto list = sudan_list_decode(f, xs, ys, k, n, rng);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], p);
}

TEST(Sudan, InfeasibleParametersThrow) {
  const Zq f = test::test_zq();
  ChaChaRng rng(13);
  const auto xs = distinct_nonzero(f, 10, rng);
  const auto ys = distinct_nonzero(f, 10, rng);
  EXPECT_THROW(sudan_list_decode(f, xs, ys, 8, 3, rng), ContractError);
}

// ---- tracing beyond the bound ---------------------------------------------------

TEST(ListTracing, CoalitionBeyondUniqueBoundIsFound) {
  // v = 20 => m = 10 unique-traceable; trace a 12-coalition among n = 24.
  // (Multiplicity-1 Sudan needs low rate k/n; here k = n - v = 4.)
  ChaChaRng rng(14);
  const SystemParams sp = test::test_params(20, 15);
  SecurityManager mgr(sp, rng);
  std::vector<SecurityManager::AddedUser> users;
  for (int i = 0; i < 24; ++i) users.push_back(mgr.add_user(rng));

  std::vector<UserKey> keys;
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 12; ++i) {
    keys.push_back(users[i].key);
    expect.push_back(users[i].id);
  }
  const Representation delta =
      build_pirate_representation(sp, mgr.public_key(), keys, rng);

  // Unique decoding must fail at coalition 10 > m = 8...
  EXPECT_THROW(trace_nonblackbox(sp, mgr.public_key(), delta, mgr.users()),
               MathError);

  // ...but list tracing finds it.
  const auto coalitions = trace_beyond_bound(
      sp, mgr.public_key(), delta, mgr.users(), /*max_coalition=*/12, rng,
      &mgr.master_secret());
  ASSERT_GE(coalitions.size(), 1u);
  bool found = false;
  for (const auto& cc : coalitions) {
    auto ids = cc.ids();
    std::sort(ids.begin(), ids.end());
    if (ids == expect) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ListTracing, AgreesWithUniqueTracingInsideBound) {
  ChaChaRng rng(16);
  const SystemParams sp = test::test_params(8, 17);
  SecurityManager mgr(sp, rng);
  std::vector<SecurityManager::AddedUser> users;
  for (int i = 0; i < 20; ++i) users.push_back(mgr.add_user(rng));
  std::vector<UserKey> keys = {users[3].key, users[5].key, users[9].key};
  const Representation delta =
      build_pirate_representation(sp, mgr.public_key(), keys, rng);

  const auto unique =
      trace_nonblackbox(sp, mgr.public_key(), delta, mgr.users());
  const auto coalitions = trace_beyond_bound(sp, mgr.public_key(), delta,
                                             mgr.users(), 4, rng,
                                             &mgr.master_secret());
  ASSERT_GE(coalitions.size(), 1u);
  auto uids = unique.ids();
  std::sort(uids.begin(), uids.end());
  bool found = false;
  for (const auto& cc : coalitions) {
    auto ids = cc.ids();
    std::sort(ids.begin(), ids.end());
    if (ids == uids) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ListTracing, MaxListTraceableExceedsUniqueBound) {
  // For n = 24, v = 20: unique bound m = 10; list tracing reaches 13.
  EXPECT_GT(max_list_traceable(24, 20), 10u);
  // At rate 1/3 (n = 24, v = 16) multiplicity-1 Sudan matches but cannot
  // beat the unique bound m = 8.
  EXPECT_EQ(max_list_traceable(24, 16), 8u);
  EXPECT_EQ(max_list_traceable(10, 12), 0u);  // needs n > v
}

TEST(ListTracing, InvalidRepresentationRejected) {
  ChaChaRng rng(18);
  const SystemParams sp = test::test_params(4, 19);
  SecurityManager mgr(sp, rng);
  for (int i = 0; i < 8; ++i) mgr.add_user(rng);
  Representation delta;
  delta.gamma_a = Bigint(1);
  delta.gamma_b = Bigint(1);
  delta.tail.assign(4, Bigint(1));
  EXPECT_THROW(trace_beyond_bound(sp, mgr.public_key(), delta, mgr.users(), 2,
                                  rng, nullptr),
               MathError);
}

}  // namespace
}  // namespace dfky
