// Backend parity: the entire scheme must behave identically over every
// group backend (Z_p^* safe-prime subgroups of several sizes, secp256k1,
// P-256). One parameterized sweep, one behavior contract.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/content.h"
#include "core/manager.h"
#include "core/receiver.h"
#include "rng/chacha_rng.h"
#include "test_util.h"
#include "tracing/blackbox.h"
#include "tracing/nonblackbox.h"
#include "tracing/pirate.h"

namespace dfky {
namespace {

enum class Backend { kZp128, kZp256, kSecp256k1, kP256 };

Group make_group(Backend b) {
  switch (b) {
    case Backend::kZp128:
      return Group(GroupParams::named(ParamId::kTest128));
    case Backend::kZp256:
      return Group(GroupParams::named(ParamId::kSec256));
    case Backend::kSecp256k1:
      return Group(CurveSpec::secp256k1());
    case Backend::kP256:
      return Group(CurveSpec::p256());
  }
  throw ContractError("unknown backend");
}

class BackendSweep : public ::testing::TestWithParam<Backend> {
 protected:
  static constexpr std::size_t kV = 4;

  SystemParams make_sp(std::uint64_t seed) {
    ChaChaRng rng(seed);
    return SystemParams::create(make_group(GetParam()), kV, rng);
  }
};

TEST_P(BackendSweep, EncryptDecryptManyUsers) {
  ChaChaRng rng(40001);
  const SystemParams sp = make_sp(40002);
  const SetupResult s = setup(sp, rng);
  const Gelt m = sp.group.random_element(rng);
  const Ciphertext ct = encrypt(sp, s.pk, m, rng);
  for (long i = 0; i < 4; ++i) {
    const UserKey sk = issue_user_key(sp, s.msk, Bigint(1000 + i), 0);
    EXPECT_EQ(decrypt(sp, sk, ct), m);
  }
}

TEST_P(BackendSweep, RevocationBarsExactlyTheRevoked) {
  ChaChaRng rng(40003);
  SecurityManager mgr(make_sp(40004), rng);
  const auto good = mgr.add_user(rng);
  const auto bad = mgr.add_user(rng);
  mgr.remove_user(bad.id, rng);
  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_EQ(decrypt(mgr.params(), good.key, ct), m);
  EXPECT_THROW(decrypt(mgr.params(), bad.key, ct), ContractError);
}

TEST_P(BackendSweep, HybridPeriodChange) {
  ChaChaRng rng(40005);
  SecurityManager mgr(make_sp(40006), rng, ResetMode::kHybrid);
  const auto u = mgr.add_user(rng);
  Receiver receiver(mgr.params(), u.key, mgr.verification_key());
  receiver.apply_reset(mgr.new_period(rng));
  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_EQ(receiver.decrypt(ct), m);
}

TEST_P(BackendSweep, ContentRoundTripAndRevokedRejection) {
  ChaChaRng rng(40007);
  SecurityManager mgr(make_sp(40008), rng);
  const auto good = mgr.add_user(rng);
  const auto bad = mgr.add_user(rng);
  mgr.remove_user(bad.id, rng);
  const Bytes payload = {'x', 'y', 'z'};
  const ContentMessage msg =
      seal_content(mgr.params(), mgr.public_key(), payload, rng);
  EXPECT_EQ(open_content(mgr.params(), good.key, msg), payload);
  EXPECT_THROW(open_content(mgr.params(), bad.key, msg), Error);
}

TEST_P(BackendSweep, NonBlackBoxTracing) {
  ChaChaRng rng(40009);
  SecurityManager mgr(make_sp(40010), rng);
  std::vector<SecurityManager::AddedUser> users;
  for (int i = 0; i < 6; ++i) users.push_back(mgr.add_user(rng));
  std::vector<UserKey> keys = {users[0].key, users[4].key};
  const Representation delta = build_pirate_representation(
      mgr.params(), mgr.public_key(), keys, rng);
  const TraceResult result = trace_nonblackbox(
      mgr.params(), mgr.public_key(), delta, mgr.users());
  auto ids = result.ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{users[0].id, users[4].id}));
}

TEST_P(BackendSweep, BlackBoxConfirmation) {
  ChaChaRng rng(40011);
  SecurityManager mgr(make_sp(40012), rng);
  std::vector<SecurityManager::AddedUser> users;
  for (int i = 0; i < 4; ++i) users.push_back(mgr.add_user(rng));
  std::vector<UserKey> keys = {users[1].key};
  RepresentationDecoder dec(
      mgr.params(),
      build_pirate_representation(mgr.params(), mgr.public_key(), keys, rng));
  BbcOptions opt;
  opt.epsilon = 0.9;
  opt.samples_override = 15;
  const std::vector<UserRecord> suspects = {mgr.users()[users[1].id]};
  const BbcResult r =
      black_box_confirm(mgr.params(), mgr.master_secret(), mgr.public_key(),
                        suspects, dec, opt, rng);
  ASSERT_TRUE(r.accused.has_value());
  EXPECT_EQ(*r.accused, users[1].id);
}

TEST_P(BackendSweep, WireRoundTrips) {
  ChaChaRng rng(40013);
  SecurityManager mgr(make_sp(40014), rng);
  const auto u = mgr.add_user(rng);
  const Group& g = mgr.params().group;
  // Ciphertext.
  const Gelt m = g.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  Writer w1;
  ct.serialize(w1, g);
  Reader r1(w1.bytes());
  EXPECT_EQ(decrypt(mgr.params(), u.key, Ciphertext::deserialize(r1, g)), m);
  // Public key.
  Writer w2;
  mgr.public_key().serialize(w2, g);
  Reader r2(w2.bytes());
  EXPECT_TRUE(PublicKey::deserialize(r2, g).y == mgr.public_key().y);
  // Manager state.
  SecurityManager restored = SecurityManager::restore_state(mgr.save_state());
  EXPECT_EQ(restored.period(), mgr.period());
}

TEST_P(BackendSweep, SchnorrSignatures) {
  ChaChaRng rng(40015);
  const Group g = make_group(GetParam());
  const auto kp = SchnorrKeyPair::generate(g, rng);
  const Bytes msg = {'m'};
  EXPECT_TRUE(schnorr_verify(g, kp.public_key(), msg, kp.sign(g, msg, rng)));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendSweep,
                         ::testing::Values(Backend::kZp128, Backend::kZp256,
                                           Backend::kSecp256k1,
                                           Backend::kP256));

}  // namespace
}  // namespace dfky
