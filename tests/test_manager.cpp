// SecurityManager / Receiver lifecycle integration tests: unlimited adds,
// saturation-triggered period changes, receivers staying in sync, revoked
// users staying out (paper Sect. 2 scalability objectives).
#include "core/manager.h"

#include <gtest/gtest.h>

#include "core/receiver.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

TEST(Manager, SetupState) {
  ChaChaRng rng(100);
  SecurityManager mgr(test::test_params(4), rng);
  EXPECT_EQ(mgr.period(), 0u);
  EXPECT_EQ(mgr.saturation_level(), 0u);
  EXPECT_EQ(mgr.saturation_limit(), 4u);
  EXPECT_TRUE(mgr.users().empty());
}

TEST(Manager, AddUserIssuesWorkingKeys) {
  ChaChaRng rng(101);
  SecurityManager mgr(test::test_params(3), rng);
  const auto u = mgr.add_user(rng);
  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_EQ(decrypt(mgr.params(), u.key, ct), m);
  EXPECT_EQ(mgr.user(u.id).x, u.key.x);
}

TEST(Manager, AddUserValuesAreFreshAndOutsidePlaceholders) {
  ChaChaRng rng(102);
  SecurityManager mgr(test::test_params(5), rng);
  std::set<std::string> seen;
  for (int i = 0; i < 50; ++i) {
    const auto u = mgr.add_user(rng);
    EXPECT_GT(u.key.x, Bigint(5));
    EXPECT_TRUE(seen.insert(u.key.x.to_hex()).second);
  }
}

TEST(Manager, JoinQueryRespectsReservedValues) {
  ChaChaRng rng(103);
  SecurityManager mgr(test::test_params(4), rng);
  EXPECT_THROW(mgr.add_user_with_value(Bigint(3)), ContractError);
  EXPECT_THROW(mgr.add_user_with_value(Bigint(0)), ContractError);
  const auto u = mgr.add_user_with_value(Bigint(1234));
  EXPECT_EQ(u.key.x, Bigint(1234));
  EXPECT_THROW(mgr.add_user_with_value(Bigint(1234)), ContractError);
}

TEST(Manager, RemoveUserWithinSaturation) {
  ChaChaRng rng(104);
  SecurityManager mgr(test::test_params(3), rng);
  const auto a = mgr.add_user(rng);
  const auto b = mgr.add_user(rng);
  const auto bundle = mgr.remove_user(a.id, rng);
  EXPECT_FALSE(bundle.has_value());  // no period change needed
  EXPECT_EQ(mgr.saturation_level(), 1u);
  EXPECT_TRUE(mgr.is_revoked(a.id));

  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_THROW(decrypt(mgr.params(), a.key, ct), ContractError);
  EXPECT_EQ(decrypt(mgr.params(), b.key, ct), m);
}

TEST(Manager, DoubleRevocationRejected) {
  ChaChaRng rng(105);
  SecurityManager mgr(test::test_params(3), rng);
  const auto a = mgr.add_user(rng);
  mgr.remove_user(a.id, rng);
  EXPECT_THROW(mgr.remove_user(a.id, rng), ContractError);
}

TEST(Manager, UnknownUserRejected) {
  ChaChaRng rng(106);
  SecurityManager mgr(test::test_params(3), rng);
  EXPECT_THROW(mgr.remove_user(99, rng), ContractError);
}

TEST(Manager, SaturationOverflowTriggersNewPeriod) {
  ChaChaRng rng(107);
  SecurityManager mgr(test::test_params(2), rng);
  std::vector<SecurityManager::AddedUser> users;
  for (int i = 0; i < 3; ++i) users.push_back(mgr.add_user(rng));

  EXPECT_FALSE(mgr.remove_user(users[0].id, rng).has_value());
  EXPECT_FALSE(mgr.remove_user(users[1].id, rng).has_value());
  EXPECT_EQ(mgr.saturation_level(), 2u);
  // Third removal overflows the limit: a reset bundle must be emitted.
  const auto bundle = mgr.remove_user(users[2].id, rng);
  ASSERT_TRUE(bundle.has_value());
  EXPECT_EQ(mgr.period(), 1u);
  EXPECT_EQ(bundle->reset.new_period, 1u);
  EXPECT_EQ(mgr.saturation_level(), 1u);  // the triggering removal counted
  EXPECT_TRUE(bundle->verify(mgr.params().group, mgr.verification_key()));
}

TEST(Manager, ReceiversFollowAcrossManyPeriods) {
  ChaChaRng rng(108);
  SecurityManager mgr(test::test_params(2), rng);
  const auto survivor = mgr.add_user(rng);
  Receiver receiver(mgr.params(), survivor.key, mgr.verification_key());

  // Churn: 10 users come and go, forcing several period changes.
  for (int round = 0; round < 10; ++round) {
    const auto victim = mgr.add_user(rng);
    const auto bundle = mgr.remove_user(victim.id, rng);
    if (bundle) receiver.apply_reset(*bundle);
    EXPECT_EQ(receiver.period(), mgr.period());
    const Gelt m = mgr.params().group.random_element(rng);
    const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
    EXPECT_EQ(receiver.decrypt(ct), m) << "round " << round;
  }
  EXPECT_GE(mgr.period(), 4u);
}

TEST(Manager, ProactiveNewPeriod) {
  ChaChaRng rng(109);
  SecurityManager mgr(test::test_params(3), rng);
  const auto u = mgr.add_user(rng);
  Receiver receiver(mgr.params(), u.key, mgr.verification_key());
  const auto bundle = mgr.new_period(rng);
  EXPECT_EQ(mgr.period(), 1u);
  EXPECT_EQ(mgr.saturation_level(), 0u);
  receiver.apply_reset(bundle);
  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_EQ(receiver.decrypt(ct), m);
}

TEST(Manager, RevokedReceiverStaysOutAcrossPeriods) {
  ChaChaRng rng(110);
  SecurityManager mgr(test::test_params(2), rng);
  const auto bad = mgr.add_user(rng);
  // Strict mode: failure to follow a reset surfaces as a throw.
  Receiver bad_receiver(mgr.params(), bad.key, mgr.verification_key(),
                        /*strict=*/true);
  mgr.remove_user(bad.id, rng);

  // Force a period change with fresh victims; the revoked receiver cannot
  // apply the reset (its key cannot open the message).
  const auto v1 = mgr.add_user(rng);
  const auto v2 = mgr.add_user(rng);
  mgr.remove_user(v1.id, rng);
  const auto bundle = mgr.remove_user(v2.id, rng);
  ASSERT_TRUE(bundle.has_value());
  EXPECT_THROW(bad_receiver.apply_reset(*bundle), Error);

  // And its stale key cannot read period-1 content.
  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_THROW(bad_receiver.decrypt(ct), ContractError);  // period mismatch
  UserKey forced = bad.key;
  forced.period = mgr.period();
  EXPECT_FALSE(decrypt(mgr.params(), forced, ct) == m);
}

TEST(Manager, PlainAndHybridResetsBothWork) {
  for (const ResetMode mode : {ResetMode::kPlain, ResetMode::kHybrid}) {
    ChaChaRng rng(111);
    SecurityManager mgr(test::test_params(2), rng, mode);
    const auto u = mgr.add_user(rng);
    Receiver receiver(mgr.params(), u.key, mgr.verification_key());
    receiver.apply_reset(mgr.new_period(rng));
    const Gelt m = mgr.params().group.random_element(rng);
    const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
    EXPECT_EQ(receiver.decrypt(ct), m);
  }
}

TEST(Manager, BatchRemovalWithinPeriod) {
  ChaChaRng rng(113);
  SecurityManager mgr(test::test_params(4), rng);
  const auto survivor = mgr.add_user(rng);
  std::vector<std::uint64_t> victims;
  for (int i = 0; i < 3; ++i) victims.push_back(mgr.add_user(rng).id);
  const auto bundles = mgr.remove_users(victims, rng);
  EXPECT_TRUE(bundles.empty());  // 3 <= v = 4: fits in one period
  EXPECT_EQ(mgr.saturation_level(), 3u);
  for (std::uint64_t id : victims) EXPECT_TRUE(mgr.is_revoked(id));
  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_EQ(decrypt(mgr.params(), survivor.key, ct), m);
}

TEST(Manager, BatchRemovalRollsPeriods) {
  ChaChaRng rng(114);
  SecurityManager mgr(test::test_params(2), rng);
  const auto survivor = mgr.add_user(rng);
  Receiver receiver(mgr.params(), survivor.key, mgr.verification_key());
  std::vector<std::uint64_t> victims;
  for (int i = 0; i < 5; ++i) victims.push_back(mgr.add_user(rng).id);
  const auto bundles = mgr.remove_users(victims, rng);
  // 5 removals with v = 2: the period rolls after each saturated pair.
  EXPECT_EQ(bundles.size(), 2u);
  for (const auto& b : bundles) receiver.apply_reset(b);
  EXPECT_EQ(receiver.period(), mgr.period());
  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_EQ(receiver.decrypt(ct), m);
}

TEST(Manager, BatchRemovalValidatesAtomically) {
  ChaChaRng rng(115);
  SecurityManager mgr(test::test_params(3), rng);
  const auto a = mgr.add_user(rng);
  const auto b = mgr.add_user(rng);
  // Duplicate id in the batch: nothing may change.
  const std::vector<std::uint64_t> dup = {a.id, a.id};
  EXPECT_THROW(mgr.remove_users(dup, rng), ContractError);
  EXPECT_FALSE(mgr.is_revoked(a.id));
  // Unknown id mixed in: nothing may change.
  const std::vector<std::uint64_t> unknown = {b.id, 999};
  EXPECT_THROW(mgr.remove_users(unknown, rng), ContractError);
  EXPECT_FALSE(mgr.is_revoked(b.id));
}

TEST(Manager, UnlimitedRevocationsAcrossPeriods) {
  // More total revocations than v is impossible for the bounded baseline but
  // routine here: 3 * v + 1 removals with v = 2.
  ChaChaRng rng(112);
  SecurityManager mgr(test::test_params(2), rng);
  const auto survivor = mgr.add_user(rng);
  Receiver receiver(mgr.params(), survivor.key, mgr.verification_key());
  for (int i = 0; i < 7; ++i) {
    const auto victim = mgr.add_user(rng);
    const auto bundle = mgr.remove_user(victim.id, rng);
    if (bundle) receiver.apply_reset(*bundle);
  }
  std::size_t revoked = 0;
  for (const UserRecord& u : mgr.users()) {
    if (u.revoked) ++revoked;
  }
  EXPECT_EQ(revoked, 7u);
  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_EQ(receiver.decrypt(ct), m);
}

}  // namespace
}  // namespace dfky
