// Property tests for the paper's leap-vector machinery (Sect. 3.2):
// Definition 5/6 (Eq. 1) and Proposition 1 (rank extension).
#include "poly/leap_vector.h"

#include <gtest/gtest.h>

#include "linalg/gauss.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

struct LeapCase {
  std::size_t v;       // number of z-values (= slot count)
  std::uint64_t seed;  // randomness for polynomial/points
};

class LeapVectorProperty : public ::testing::TestWithParam<LeapCase> {};

std::vector<Bigint> distinct_points(const Zq& f, std::size_t count,
                                    ChaChaRng& rng) {
  std::vector<Bigint> out;
  while (out.size() < count) {
    Bigint x = rng.uniform_nonzero_below(f.modulus());
    bool dup = false;
    for (const Bigint& y : out) {
      if (x == y) dup = true;
    }
    if (!dup) out.push_back(std::move(x));
  }
  return out;
}

// Eq. (1): P(0) = alpha_0 + sum_l alpha_l P(z_l) for the leap-vector derived
// from any point (x_i, P(x_i)) outside {z_1..z_v}.
TEST_P(LeapVectorProperty, DefinitionEquationHolds) {
  const auto [v, seed] = GetParam();
  const Zq f = test::test_zq();
  ChaChaRng rng(seed);
  const Polynomial p = Polynomial::random(f, v, rng);
  auto pts = distinct_points(f, v + 1, rng);
  const Bigint xi = pts.back();
  pts.pop_back();

  const LeapVector lv = leap_vector(f, xi, p.eval(xi), pts);
  EXPECT_TRUE(lv.satisfies(f, p.eval(Bigint(0)), p.eval_many(pts)));
}

// The lambda tail is shared between polynomials: both the A- and B-vectors
// use identical tails (paper Sect. 4, Decryption).
TEST_P(LeapVectorProperty, TailIndependentOfPolynomial) {
  const auto [v, seed] = GetParam();
  const Zq f = test::test_zq();
  ChaChaRng rng(seed ^ 0x5555);
  const Polynomial a = Polynomial::random(f, v, rng);
  const Polynomial b = Polynomial::random(f, v, rng);
  auto pts = distinct_points(f, v + 1, rng);
  const Bigint xi = pts.back();
  pts.pop_back();

  const LeapVector la = leap_vector(f, xi, a.eval(xi), pts);
  const LeapVector lb = leap_vector(f, xi, b.eval(xi), pts);
  EXPECT_EQ(la.tail, lb.tail);
  EXPECT_TRUE(la.satisfies(f, a.eval(Bigint(0)), a.eval_many(pts)));
  EXPECT_TRUE(lb.satisfies(f, b.eval(Bigint(0)), b.eval_many(pts)));
}

// Proposition 1: appending the leap-vector constraint row to the Vandermonde
// rows of z_1..z_v yields a full-rank (v+1) x (v+1) matrix.
TEST_P(LeapVectorProperty, Proposition1FullRank) {
  const auto [v, seed] = GetParam();
  const Zq f = test::test_zq();
  ChaChaRng rng(seed ^ 0xabcd);
  auto pts = distinct_points(f, v + 1, rng);
  const Bigint xi = pts.back();
  pts.pop_back();
  const LeapCoefficients lc = leap_coefficients(f, xi, pts);

  // M: rows (1, z_l, ..., z_l^v) for each l, then the leap row
  // (1 - sum alpha_l, -sum alpha_l z_l, ..., -sum alpha_l z_l^v).
  Matrix m(f, v + 1, v + 1);
  for (std::size_t r = 0; r < v; ++r) {
    Bigint pw(1);
    for (std::size_t c = 0; c <= v; ++c) {
      m.at(r, c) = pw;
      pw = f.mul(pw, pts[r]);
    }
  }
  for (std::size_t c = 0; c <= v; ++c) {
    Bigint s(0);
    for (std::size_t l = 0; l < v; ++l) {
      s = f.add(s, f.mul(lc.lambdas[l], f.pow(pts[l], Bigint((long)c))));
    }
    m.at(v, c) = c == 0 ? f.sub(Bigint(1), s) : f.neg(s);
  }
  EXPECT_EQ(rank(m), v + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LeapVectorProperty,
    ::testing::Values(LeapCase{1, 1}, LeapCase{2, 2}, LeapCase{3, 3},
                      LeapCase{4, 4}, LeapCase{6, 5}, LeapCase{8, 6},
                      LeapCase{12, 7}, LeapCase{16, 8}, LeapCase{24, 9},
                      LeapCase{32, 10}));

TEST(LeapVector, RevokedPointThrows) {
  const Zq f = test::test_zq();
  std::vector<Bigint> zs = {Bigint(5), Bigint(7)};
  EXPECT_THROW(leap_coefficients(f, Bigint(5), zs), ContractError);
}

TEST(LeapVector, SatisfiesRejectsWrongValues) {
  const Zq f = test::test_zq();
  ChaChaRng rng(99);
  const Polynomial p = Polynomial::random(f, 3, rng);
  std::vector<Bigint> zs = {Bigint(2), Bigint(3), Bigint(4)};
  const LeapVector lv = leap_vector(f, Bigint(11), p.eval(Bigint(11)), zs);
  // Corrupt P(0).
  EXPECT_FALSE(lv.satisfies(f, f.add(p.eval(Bigint(0)), Bigint(1)),
                            p.eval_many(zs)));
}

TEST(LeapVector, WrongSizeThrows) {
  const Zq f = test::test_zq();
  LeapVector lv;
  lv.alpha0 = Bigint(1);
  lv.tail = {Bigint(1), Bigint(2)};
  const std::vector<Bigint> vals = {Bigint(1)};
  EXPECT_THROW(lv.satisfies(f, Bigint(0), vals), ContractError);
}

// A convex combination of leap-vectors (same z's) is again a leap-vector —
// the algebraic heart of pirate-key construction.
TEST(LeapVector, ConvexCombinationStillSatisfies) {
  const Zq f = test::test_zq();
  ChaChaRng rng(123);
  const std::size_t v = 6;
  const Polynomial p = Polynomial::random(f, v, rng);
  auto pts = distinct_points(f, v + 3, rng);
  const Bigint x1 = pts[v], x2 = pts[v + 1], x3 = pts[v + 2];
  pts.resize(v);

  const LeapVector l1 = leap_vector(f, x1, p.eval(x1), pts);
  const LeapVector l2 = leap_vector(f, x2, p.eval(x2), pts);
  const LeapVector l3 = leap_vector(f, x3, p.eval(x3), pts);

  const Bigint mu1 = rng.uniform_nonzero_below(f.modulus());
  const Bigint mu2 = rng.uniform_nonzero_below(f.modulus());
  const Bigint mu3 = f.sub(Bigint(1), f.add(mu1, mu2));

  LeapVector combo;
  combo.alpha0 = f.add(f.add(f.mul(mu1, l1.alpha0), f.mul(mu2, l2.alpha0)),
                       f.mul(mu3, l3.alpha0));
  combo.tail.resize(v);
  for (std::size_t i = 0; i < v; ++i) {
    combo.tail[i] =
        f.add(f.add(f.mul(mu1, l1.tail[i]), f.mul(mu2, l2.tail[i])),
              f.mul(mu3, l3.tail[i]));
  }
  EXPECT_TRUE(combo.satisfies(f, p.eval(Bigint(0)), p.eval_many(pts)));
}

}  // namespace
}  // namespace dfky
