// Correctness of the scheme's algorithms (paper Sect. 4): Setup, Add-user,
// Encryption/Decryption, Remove-user, and representations.
#include "core/scheme.h"

#include <gtest/gtest.h>

#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

struct SchemeFixture {
  SystemParams sp;
  ChaChaRng rng;
  SetupResult s;

  explicit SchemeFixture(std::size_t v, std::uint64_t seed = 1001)
      : sp(test::test_params(v, seed)), rng(seed ^ 0x1234), s(setup(sp, rng)) {}
};

TEST(Setup, PublicKeyShape) {
  SchemeFixture fx(6);
  EXPECT_EQ(fx.s.pk.slots.size(), 6u);
  EXPECT_EQ(fx.s.pk.period, 0u);
  for (std::size_t l = 0; l < 6; ++l) {
    EXPECT_EQ(fx.s.pk.slots[l].z, Bigint(static_cast<long>(l + 1)));
    EXPECT_TRUE(fx.sp.group.is_element(fx.s.pk.slots[l].h));
  }
  EXPECT_EQ(fx.s.msk.a.degree() <= 6, true);
}

TEST(Setup, PublicKeyMatchesMasterSecret) {
  SchemeFixture fx(4);
  const auto& [msk, pk] = fx.s;
  // y == g^{A(0)} g'^{B(0)} and each slot h == g^{A(z)} g'^{B(z)}.
  const Group& g = fx.sp.group;
  EXPECT_EQ(pk.y, g.mul(g.pow(fx.sp.g, msk.a.eval(Bigint(0))),
                        g.pow(fx.sp.g2, msk.b.eval(Bigint(0)))));
  for (const PkSlot& s : pk.slots) {
    EXPECT_EQ(s.h, g.mul(g.pow(fx.sp.g, msk.a.eval(s.z)),
                         g.pow(fx.sp.g2, msk.b.eval(s.z))));
  }
}

struct EncDecCase {
  std::size_t v;
  std::uint64_t seed;
};

class EncDecSweep : public ::testing::TestWithParam<EncDecCase> {};

TEST_P(EncDecSweep, DecryptInvertsEncrypt) {
  const auto [v, seed] = GetParam();
  SchemeFixture fx(v, seed);
  const UserKey sk =
      issue_user_key(fx.sp, fx.s.msk, Bigint(static_cast<long>(v + 100)), 0);
  for (int i = 0; i < 3; ++i) {
    const Gelt m = fx.sp.group.random_element(fx.rng);
    const Ciphertext ct = encrypt(fx.sp, fx.s.pk, m, fx.rng);
    EXPECT_EQ(decrypt(fx.sp, sk, ct), m);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EncDecSweep,
                         ::testing::Values(EncDecCase{1, 1}, EncDecCase{2, 2},
                                           EncDecCase{3, 3}, EncDecCase{4, 4},
                                           EncDecCase{8, 5}, EncDecCase{16, 6},
                                           EncDecCase{32, 7}));

TEST(EncDec, ManyUsersAllDecrypt) {
  SchemeFixture fx(5);
  const Gelt m = fx.sp.group.random_element(fx.rng);
  const Ciphertext ct = encrypt(fx.sp, fx.s.pk, m, fx.rng);
  for (long i = 0; i < 20; ++i) {
    const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(1000 + i), 0);
    EXPECT_EQ(decrypt(fx.sp, sk, ct), m);
  }
}

TEST(EncDec, WrongKeyGivesWrongPlaintext) {
  SchemeFixture fx(4);
  const Gelt m = fx.sp.group.random_element(fx.rng);
  const Ciphertext ct = encrypt(fx.sp, fx.s.pk, m, fx.rng);
  UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(500), 0);
  sk.ax = fx.sp.group.zq().add(sk.ax, Bigint(1));  // corrupt the key
  EXPECT_FALSE(decrypt(fx.sp, sk, ct) == m);
}

TEST(EncDec, PeriodMismatchThrows) {
  SchemeFixture fx(4);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(500), 1);
  const Gelt m = fx.sp.group.random_element(fx.rng);
  const Ciphertext ct = encrypt(fx.sp, fx.s.pk, m, fx.rng);  // period 0
  EXPECT_THROW(decrypt(fx.sp, sk, ct), ContractError);
}

TEST(EncDec, NonElementMessageRejected) {
  SchemeFixture fx(2);
  EXPECT_THROW(encrypt(fx.sp, fx.s.pk, Gelt(Bigint(0)), fx.rng),
               ContractError);
}

TEST(RemoveUser, RevokedUserCannotDecrypt) {
  SchemeFixture fx(4);
  const Bigint x(777);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, x, 0);
  PublicKey pk = fx.s.pk;
  revoke_into_slot(fx.sp, fx.s.msk, pk, 0, x);

  const Gelt m = fx.sp.group.random_element(fx.rng);
  const Ciphertext ct = encrypt(fx.sp, pk, m, fx.rng);
  // The revoked user's x collides with a ciphertext slot: no leap-vector.
  EXPECT_THROW(decrypt(fx.sp, sk, ct), ContractError);
}

TEST(RemoveUser, OthersStillDecryptAfterRevocation) {
  SchemeFixture fx(4);
  PublicKey pk = fx.s.pk;
  for (std::size_t l = 0; l < 4; ++l) {
    revoke_into_slot(fx.sp, fx.s.msk, pk, l,
                     Bigint(static_cast<long>(7000 + l)));
  }
  const UserKey honest = issue_user_key(fx.sp, fx.s.msk, Bigint(31337), 0);
  const Gelt m = fx.sp.group.random_element(fx.rng);
  const Ciphertext ct = encrypt(fx.sp, pk, m, fx.rng);
  EXPECT_EQ(decrypt(fx.sp, honest, ct), m);
}

TEST(RemoveUser, DuplicateRevocationRejected) {
  SchemeFixture fx(3);
  PublicKey pk = fx.s.pk;
  revoke_into_slot(fx.sp, fx.s.msk, pk, 0, Bigint(999));
  EXPECT_THROW(revoke_into_slot(fx.sp, fx.s.msk, pk, 1, Bigint(999)),
               ContractError);
}

TEST(RemoveUser, BadSlotIndexRejected) {
  SchemeFixture fx(3);
  PublicKey pk = fx.s.pk;
  EXPECT_THROW(revoke_into_slot(fx.sp, fx.s.msk, pk, 3, Bigint(999)),
               ContractError);
}

TEST(Representation, UserRepresentationIsValid) {
  SchemeFixture fx(5);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(600), 0);
  const Representation rep = representation_of(fx.sp, sk, fx.s.pk);
  EXPECT_TRUE(rep.valid_for(fx.sp, fx.s.pk));
}

TEST(Representation, DecryptsLikeTheKey) {
  SchemeFixture fx(5);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(600), 0);
  const Representation rep = representation_of(fx.sp, sk, fx.s.pk);
  const Gelt m = fx.sp.group.random_element(fx.rng);
  const Ciphertext ct = encrypt(fx.sp, fx.s.pk, m, fx.rng);
  EXPECT_EQ(decrypt_with_representation(fx.sp, rep, ct), m);
}

TEST(Representation, InvalidAfterKeyChange) {
  SchemeFixture fx(5);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(600), 0);
  Representation rep = representation_of(fx.sp, sk, fx.s.pk);
  rep.gamma_a = fx.sp.group.zq().add(rep.gamma_a, Bigint(1));
  EXPECT_FALSE(rep.valid_for(fx.sp, fx.s.pk));
}

TEST(Representation, ConvexCombinationIsValidAndDecrypts) {
  SchemeFixture fx(6);
  std::vector<Representation> deltas;
  for (long i = 0; i < 3; ++i) {
    const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(800 + i), 0);
    deltas.push_back(representation_of(fx.sp, sk, fx.s.pk));
  }
  const Zq& zq = fx.sp.group.zq();
  const Bigint mu0(5), mu1(10);
  const Bigint mu2 = zq.sub(Bigint(1), zq.add(mu0, mu1));
  const std::vector<Bigint> mus = {mu0, mu1, mu2};
  const Representation combo = convex_combination(fx.sp, deltas, mus);
  EXPECT_TRUE(combo.valid_for(fx.sp, fx.s.pk));
  const Gelt m = fx.sp.group.random_element(fx.rng);
  const Ciphertext ct = encrypt(fx.sp, fx.s.pk, m, fx.rng);
  EXPECT_EQ(decrypt_with_representation(fx.sp, combo, ct), m);
}

TEST(Representation, NonConvexCombinationRejected) {
  SchemeFixture fx(4);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(900), 0);
  const std::vector<Representation> deltas = {
      representation_of(fx.sp, sk, fx.s.pk)};
  const std::vector<Bigint> mus = {Bigint(2)};  // sums to 2, not 1
  EXPECT_THROW(convex_combination(fx.sp, deltas, mus), ContractError);
}

TEST(Ciphertext, SerializationRoundTrip) {
  SchemeFixture fx(4);
  const Gelt m = fx.sp.group.random_element(fx.rng);
  const Ciphertext ct = encrypt(fx.sp, fx.s.pk, m, fx.rng);
  Writer w;
  ct.serialize(w, fx.sp.group);
  Reader r(w.bytes());
  const Ciphertext ct2 = Ciphertext::deserialize(r, fx.sp.group);
  r.expect_end();
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(123), 0);
  EXPECT_EQ(decrypt(fx.sp, sk, ct2), m);
}

TEST(Ciphertext, WireSizeIndependentOfNothingButV) {
  // O(v) transmission: size grows linearly in v, independent of users.
  SchemeFixture fx4(4, 3001);
  SchemeFixture fx8(8, 3002);
  const Gelt m4 = fx4.sp.group.random_element(fx4.rng);
  const Gelt m8 = fx8.sp.group.random_element(fx8.rng);
  const auto ct4 = encrypt(fx4.sp, fx4.s.pk, m4, fx4.rng);
  const auto ct8 = encrypt(fx8.sp, fx8.s.pk, m8, fx8.rng);
  EXPECT_GT(ct8.wire_size(fx8.sp.group), ct4.wire_size(fx4.sp.group));
}

TEST(PublicKey, SerializationRoundTrip) {
  SchemeFixture fx(5);
  Writer w;
  fx.s.pk.serialize(w, fx.sp.group);
  Reader r(w.bytes());
  const PublicKey pk2 = PublicKey::deserialize(r, fx.sp.group);
  r.expect_end();
  EXPECT_EQ(pk2.y, fx.s.pk.y);
  EXPECT_EQ(pk2.period, fx.s.pk.period);
  ASSERT_EQ(pk2.slots.size(), fx.s.pk.slots.size());
  for (std::size_t i = 0; i < pk2.slots.size(); ++i) {
    EXPECT_EQ(pk2.slots[i].z, fx.s.pk.slots[i].z);
    EXPECT_EQ(pk2.slots[i].h, fx.s.pk.slots[i].h);
  }
}

TEST(UserKeySerial, RoundTrip) {
  SchemeFixture fx(3);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(456), 9);
  Writer w;
  sk.serialize(w);
  Reader r(w.bytes());
  const UserKey sk2 = UserKey::deserialize(r);
  EXPECT_EQ(sk2.x, sk.x);
  EXPECT_EQ(sk2.ax, sk.ax);
  EXPECT_EQ(sk2.bx, sk.bx);
  EXPECT_EQ(sk2.period, 9u);
}

TEST(IssueUserKey, RejectsZero) {
  SchemeFixture fx(3);
  EXPECT_THROW(issue_user_key(fx.sp, fx.s.msk, Bigint(0), 0), ContractError);
}

}  // namespace
}  // namespace dfky
