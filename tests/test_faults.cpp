// Fault-injection matrix: seeded fault plans (drop / duplicate / corrupt /
// reorder / delay, plus targeted New-period drops) over the full system —
// manager, providers, subscribers, catch-up responder and recovery clients.
// Asserts the acceptance bar of the channel-fault work: every non-revoked
// receiver converges back to the manager's period and decrypts post-recovery
// content, revoked receivers stay expired (no revival through the catch-up
// path), and runs are bit-deterministic given the seed.
#include "broadcast/faulty_bus.h"

#include <gtest/gtest.h>

#include <memory>

#include "attacks/revive.h"
#include "broadcast/recovery.h"
#include "core/manager.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

Bytes str(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

TEST(FaultyBus, DeterministicGivenSeed) {
  const FaultPlan plan{.seed = 99,
                       .drop_prob = 0.3,
                       .duplicate_prob = 0.2,
                       .corrupt_prob = 0.2,
                       .delay_prob = 0.15,
                       .reorder_prob = 0.15,
                       .delay_messages = 3};
  auto run = [&] {
    FaultyBus bus(plan);
    std::vector<Bytes> delivered;
    bus.subscribe([&](const Envelope& env) { delivered.push_back(env.payload); });
    for (int i = 0; i < 200; ++i) {
      bus.publish(Envelope{MsgType::kContent, Bytes(4, byte(i))});
    }
    bus.flush();
    return std::pair{bus.fault_counters(), delivered};
  };
  const auto [c1, d1] = run();
  const auto [c2, d2] = run();
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(d1, d2);
  // The plan actually injected every fault class.
  EXPECT_GT(c1.dropped, 0u);
  EXPECT_GT(c1.duplicated, 0u);
  EXPECT_GT(c1.corrupted, 0u);
  EXPECT_GT(c1.delayed, 0u);
  EXPECT_GT(c1.reordered, 0u);
  EXPECT_EQ(c1.published, 200u);
}

TEST(FaultyBus, TargetedChangePeriodDrop) {
  FaultyBus bus(FaultPlan{.seed = 5});  // no probabilistic faults
  std::size_t resets_seen = 0;
  bus.subscribe([&](const Envelope& env) {
    if (env.type == MsgType::kChangePeriod) ++resets_seen;
  });
  bus.drop_next_change_periods(1);
  bus.publish(Envelope{MsgType::kContent, Bytes{1}});      // unaffected
  bus.publish(Envelope{MsgType::kChangePeriod, Bytes{2}});  // dropped
  bus.publish(Envelope{MsgType::kChangePeriod, Bytes{3}});  // delivered
  EXPECT_EQ(resets_seen, 1u);
  EXPECT_EQ(bus.fault_counters().targeted_drops, 1u);
  EXPECT_EQ(bus.fault_counters().dropped, 1u);
  EXPECT_EQ(bus.log().size(), 3u);  // the eavesdropper still saw everything
}

// ---------------------------------------------------------------------------
// Full-system scenario under a fault mix.

struct Mix {
  const char* name;
  double drop, dup, corrupt, delay, reorder;
};

struct ScenarioResult {
  FaultCounters counters;
  std::uint64_t mgr_period = 0;
  std::vector<std::uint64_t> good_periods;
  std::vector<ReceiverState> good_states;
  std::vector<bool> good_got_finale;
  std::uint64_t bad_period = 0;
  bool bad_got_any_content = false;
  bool bad_got_finale = false;

  bool operator==(const ScenarioResult&) const = default;
};

ScenarioResult run_scenario(std::uint64_t seed, const Mix& mix) {
  constexpr int kGoodUsers = 4;
  constexpr int kTransitions = 6;  // >= 5 New-period transitions
  constexpr int kTrafficPerTransition = 6;

  ChaChaRng rng(seed);
  const SystemParams sp = test::test_params(3, seed ^ 0xfa157);
  FaultPlan plan{.seed = seed * 1000003 + 17,
                 .drop_prob = mix.drop,
                 .duplicate_prob = mix.dup,
                 .corrupt_prob = mix.corrupt,
                 .delay_prob = mix.delay,
                 .reorder_prob = mix.reorder,
                 .delay_messages = 3};
  FaultyBus bus(plan);
  SecurityManager mgr(sp, rng);
  ChaChaRng responder_rng(seed ^ 0xd00d);
  CatchUpResponder responder(mgr, bus, responder_rng);

  const auto bad = mgr.add_user(rng);
  std::vector<SecurityManager::AddedUser> good;
  for (int i = 0; i < kGoodUsers; ++i) good.push_back(mgr.add_user(rng));

  const RecoveryPolicy base_policy{
      .attempt_budget = 16, .backoff_base = 1, .nonce = 0};
  std::vector<std::unique_ptr<SubscriberClient>> subs;
  std::vector<std::unique_ptr<RecoveryClient>> recoveries;
  for (int i = 0; i < kGoodUsers; ++i) {
    subs.push_back(std::make_unique<SubscriberClient>(
        sp, good[i].key, mgr.verification_key(), bus));
    RecoveryPolicy policy = base_policy;
    policy.nonce = 100 + i;
    recoveries.push_back(
        std::make_unique<RecoveryClient>(*subs.back(), bus, policy));
  }
  SubscriberClient bad_sub(sp, bad.key, mgr.verification_key(), bus);
  RecoveryPolicy bad_policy = base_policy;
  bad_policy.nonce = 666;
  RecoveryClient bad_recovery(bad_sub, bus, bad_policy);

  ContentProvider tv("tv", sp, mgr.public_key(), bus);

  mgr.remove_user(bad.id, rng);
  announce_public_key(bus, sp.group, mgr.public_key());

  // Guarantee at least one clean "missed the New-period bundle" episode on
  // top of the probabilistic faults.
  bus.drop_next_change_periods(1);

  for (int t = 0; t < kTransitions; ++t) {
    announce_reset(bus, sp.group, mgr.new_period(rng));
    announce_public_key(bus, sp.group, mgr.public_key());
    for (int c = 0; c < kTrafficPerTransition; ++c) {
      tv.broadcast(str("tick"), rng);
    }
  }

  // The channel heals; steady traffic lets every pending recovery finish.
  bus.heal();
  announce_public_key(bus, sp.group, mgr.public_key());
  for (int c = 0; c < 8; ++c) tv.broadcast(str("post-heal"), rng);
  tv.broadcast(str("finale"), rng);

  auto got_finale = [](const SubscriberClient& sub) {
    const auto& content = sub.received_content();
    return !content.empty() && content.back() == str("finale");
  };

  ScenarioResult result;
  result.counters = bus.fault_counters();
  result.mgr_period = mgr.period();
  for (const auto& sub : subs) {
    result.good_periods.push_back(sub->period());
    result.good_states.push_back(sub->state());
    result.good_got_finale.push_back(got_finale(*sub));
  }
  result.bad_period = bad_sub.period();
  result.bad_got_any_content = !bad_sub.received_content().empty();
  result.bad_got_finale = got_finale(bad_sub);
  return result;
}

class FaultMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

const Mix kMixes[] = {
    // The acceptance mix: 20% drop / 10% duplicate / 5% corruption.
    {"acceptance", 0.20, 0.10, 0.05, 0.00, 0.00},
    {"reorder-heavy", 0.10, 0.05, 0.05, 0.15, 0.15},
    {"brutal", 0.30, 0.15, 0.10, 0.10, 0.10},
};

TEST_P(FaultMatrixTest, NonRevokedReceiversConvergeRevokedExpire) {
  const auto [seed, mix_index] = GetParam();
  const Mix& mix = kMixes[mix_index];
  const ScenarioResult r = run_scenario(seed, mix);

  EXPECT_GT(r.counters.dropped, 0u) << mix.name;
  EXPECT_EQ(r.counters.targeted_drops, 1u) << mix.name;
  EXPECT_EQ(r.mgr_period, 6u);

  for (std::size_t i = 0; i < r.good_periods.size(); ++i) {
    EXPECT_EQ(r.good_periods[i], r.mgr_period)
        << mix.name << " seed=" << seed << " receiver " << i;
    EXPECT_EQ(r.good_states[i], ReceiverState::kCurrent)
        << mix.name << " seed=" << seed << " receiver " << i;
    EXPECT_TRUE(r.good_got_finale[i])
        << mix.name << " seed=" << seed << " receiver " << i;
  }

  // The revoked receiver never follows a period change and never sees
  // content — the catch-up machinery must not revive it.
  EXPECT_EQ(r.bad_period, 0u) << mix.name;
  EXPECT_FALSE(r.bad_got_any_content) << mix.name;
  EXPECT_FALSE(r.bad_got_finale) << mix.name;

  // Determinism: the identical seed reproduces the run bit-for-bit.
  EXPECT_EQ(r, run_scenario(seed, mix)) << mix.name << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesMixes, FaultMatrixTest,
    ::testing::Combine(::testing::Values(11u, 42u), ::testing::Range(0, 3)));

// ---------------------------------------------------------------------------
// Archive eviction: a receiver that sleeps through more transitions than
// the archive retains is unrecoverable — terminally, with signed evidence.

TEST(Recovery, ArchiveEvictionIsTerminal) {
  ChaChaRng rng(404);
  const SystemParams sp = test::test_params(3, 405);
  BroadcastBus bus;  // lossless: isolates the eviction logic
  SecurityManager mgr(sp, rng);
  mgr.set_reset_archive_capacity(2);
  ChaChaRng responder_rng(406);
  CatchUpResponder responder(mgr, bus, responder_rng);

  const auto sleeper = mgr.add_user(rng);
  // Five transitions happen while the sleeper is offline; the archive only
  // retains the last two bundles (periods 4 and 5).
  for (int i = 0; i < 5; ++i) mgr.new_period(rng);
  EXPECT_EQ(mgr.archive_oldest_period(), 4u);

  SubscriberClient sub(sp, sleeper.key, mgr.verification_key(), bus);
  RecoveryClient recovery(sub, bus, RecoveryPolicy{.nonce = 9});
  ContentProvider tv("tv", sp, mgr.public_key(), bus);

  tv.broadcast(str("hello?"), rng);
  EXPECT_EQ(sub.state(), ReceiverState::kUnrecoverable);
  EXPECT_EQ(recovery.status(), RecoveryClient::Status::kUnrecoverable);
  EXPECT_EQ(sub.period(), 0u);  // the key never moved

  // Terminal: later resets and traffic change nothing.
  announce_reset(bus, sp.group, mgr.new_period(rng));
  tv.broadcast(str("still there?"), rng);
  EXPECT_EQ(sub.state(), ReceiverState::kUnrecoverable);
  EXPECT_TRUE(sub.received_content().empty());
}

TEST(Recovery, WithinArchiveGapIsBridged) {
  ChaChaRng rng(500);
  const SystemParams sp = test::test_params(3, 501);
  BroadcastBus bus;
  SecurityManager mgr(sp, rng);
  ChaChaRng responder_rng(502);
  CatchUpResponder responder(mgr, bus, responder_rng);

  const auto u = mgr.add_user(rng);
  for (int i = 0; i < 4; ++i) mgr.new_period(rng);  // within default K=16

  SubscriberClient sub(sp, u.key, mgr.verification_key(), bus);
  RecoveryClient recovery(sub, bus, RecoveryPolicy{.nonce = 3});
  ContentProvider tv("tv", sp, mgr.public_key(), bus);

  // One content message exposes the gap; the synchronous request/response
  // replays all four bundles, so the next message already decrypts.
  tv.broadcast(str("gap probe"), rng);
  EXPECT_EQ(sub.state(), ReceiverState::kCurrent);
  EXPECT_EQ(sub.period(), 4u);
  EXPECT_EQ(recovery.bundles_replayed(), 4u);
  EXPECT_EQ(recovery.status(), RecoveryClient::Status::kRecovered);

  tv.broadcast(str("back online"), rng);
  ASSERT_FALSE(sub.received_content().empty());
  EXPECT_EQ(sub.received_content().back(), str("back online"));
}

// The revive attack extended through the recovery protocol: the manager's
// archive happily answers the revoked adversary, but the replayed bundles
// do not open under her key — no revival through the catch-up path.
TEST(Recovery, NoRevivalThroughCatchUp) {
  ChaChaRng rng(321);
  const SystemParams sp = test::test_params(4, 322);
  const ReviveOutcome out = run_revive_attack(sp, rng);
  EXPECT_FALSE(out.scheme_decrypts_when_revoked);
  EXPECT_FALSE(out.scheme_revived);
  EXPECT_GT(out.catch_up_requests_answered, 0u);
  EXPECT_FALSE(out.scheme_revived_via_catch_up);
}

}  // namespace
}  // namespace dfky
