#include <gtest/gtest.h>

#include "rng/chacha_rng.h"
#include "serial/codec.h"
#include "test_util.h"

namespace dfky {
namespace {

TEST(Writer, IntegerEncodingsBigEndian) {
  Writer w;
  w.put_u8(0x01);
  w.put_u16(0x0203);
  w.put_u32(0x04050607);
  w.put_u64(0x08090a0b0c0d0e0fULL);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 15u);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(b[i], static_cast<byte>(i + 1));
  }
}

TEST(ReaderWriter, RoundTripAllTypes) {
  Writer w;
  w.put_u8(0xab);
  w.put_u16(0xcdef);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_blob(Bytes{1, 2, 3});
  Reader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0xcdef);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_blob(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.empty());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Reader, TruncationThrows) {
  Writer w;
  w.put_u16(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0);
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_THROW(r.get_u8(), DecodeError);
}

TEST(Reader, TruncatedBlobThrows) {
  Writer w;
  w.put_u32(100);  // claims 100 bytes follow, but none do
  Reader r(w.bytes());
  EXPECT_THROW(r.get_blob(), DecodeError);
}

TEST(Reader, TrailingBytesDetected) {
  Writer w;
  w.put_u8(1);
  w.put_u8(2);
  Reader r(w.bytes());
  r.get_u8();
  EXPECT_THROW(r.expect_end(), DecodeError);
}

TEST(Codec, BigintRoundTrip) {
  Writer w;
  const Bigint v = Bigint::from_dec("123456789123456789123456789");
  put_bigint(w, v);
  put_bigint(w, Bigint(0));
  Reader r(w.bytes());
  EXPECT_EQ(get_bigint(r), v);
  EXPECT_EQ(get_bigint(r), Bigint(0));
}

TEST(Codec, NegativeBigintRejected) {
  Writer w;
  EXPECT_THROW(put_bigint(w, Bigint(-1)), ContractError);
}

TEST(Codec, GeltRoundTripFixedWidth) {
  const Group g = test::test_group();
  ChaChaRng rng(51);
  Writer w;
  const Gelt e = g.random_element(rng);
  put_gelt(w, g, e);
  EXPECT_EQ(w.size(), g.element_size());
  Reader r(w.bytes());
  EXPECT_EQ(get_gelt(r, g), e);
}

TEST(Codec, GeltRejectsNonElement) {
  const Group g = test::test_group();
  Writer w;
  w.put_raw(Bigint(0).to_bytes_padded(g.element_size()));
  Reader r(w.bytes());
  EXPECT_THROW(get_gelt(r, g), DecodeError);
}

TEST(Codec, BigintVecRoundTrip) {
  Writer w;
  const std::vector<Bigint> v = {Bigint(1), Bigint::from_dec("99999999999"),
                                 Bigint(0)};
  put_bigint_vec(w, v);
  Reader r(w.bytes());
  EXPECT_EQ(get_bigint_vec(r), v);
}

TEST(Codec, EmptyBigintVec) {
  Writer w;
  put_bigint_vec(w, {});
  Reader r(w.bytes());
  EXPECT_TRUE(get_bigint_vec(r).empty());
}

}  // namespace
}  // namespace dfky
