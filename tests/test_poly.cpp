#include "poly/polynomial.h"

#include <gtest/gtest.h>

#include "poly/lagrange.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

Zq small_field() {
  return Zq{Bigint(101)};
}

TEST(Polynomial, ZeroProperties) {
  const Zq f = small_field();
  const Polynomial z = Polynomial::zero(f);
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  EXPECT_EQ(z.eval(Bigint(5)), Bigint(0));
}

TEST(Polynomial, TrimsTrailingZeros) {
  const Zq f = small_field();
  const Polynomial p(f, {Bigint(1), Bigint(2), Bigint(0), Bigint(0)});
  EXPECT_EQ(p.degree(), 1);
}

TEST(Polynomial, CoefficientsReducedIntoField) {
  const Zq f = small_field();
  const Polynomial p(f, {Bigint(102), Bigint(-1)});
  EXPECT_EQ(p.coeff(0), Bigint(1));
  EXPECT_EQ(p.coeff(1), Bigint(100));
}

TEST(Polynomial, HornerEvaluation) {
  const Zq f = small_field();
  // p(x) = 3 + 2x + x^2; p(5) = 3 + 10 + 25 = 38.
  const Polynomial p(f, {Bigint(3), Bigint(2), Bigint(1)});
  EXPECT_EQ(p.eval(Bigint(5)), Bigint(38));
  EXPECT_EQ(p.eval(Bigint(0)), Bigint(3));
}

TEST(Polynomial, AddSub) {
  const Zq f = small_field();
  const Polynomial p(f, {Bigint(1), Bigint(2)});
  const Polynomial q(f, {Bigint(3), Bigint(99), Bigint(7)});
  const Polynomial s = p + q;
  EXPECT_EQ(s.coeff(0), Bigint(4));
  EXPECT_EQ(s.coeff(1), Bigint(0));  // 2 + 99 = 101 = 0
  EXPECT_EQ(s.coeff(2), Bigint(7));
  EXPECT_EQ(s - q, p);
}

TEST(Polynomial, AdditionCancellationTrims) {
  const Zq f = small_field();
  const Polynomial p(f, {Bigint(1), Bigint(5)});
  const Polynomial q(f, {Bigint(1), Bigint(96)});
  EXPECT_EQ((p + q).degree(), 0);
}

TEST(Polynomial, Multiplication) {
  const Zq f = small_field();
  // (1 + x)(1 - x) = 1 - x^2.
  const Polynomial p(f, {Bigint(1), Bigint(1)});
  const Polynomial q(f, {Bigint(1), Bigint(100)});
  const Polynomial r = p * q;
  EXPECT_EQ(r.coeff(0), Bigint(1));
  EXPECT_EQ(r.coeff(1), Bigint(0));
  EXPECT_EQ(r.coeff(2), Bigint(100));
}

TEST(Polynomial, MultiplyByZero) {
  const Zq f = small_field();
  const Polynomial p(f, {Bigint(1), Bigint(1)});
  EXPECT_TRUE((p * Polynomial::zero(f)).is_zero());
}

TEST(Polynomial, DivmodRoundTrip) {
  const Zq f = small_field();
  ChaChaRng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Polynomial a = Polynomial::random(f, 7, rng);
    Polynomial b = Polynomial::random(f, 3, rng);
    if (b.is_zero()) continue;
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.degree(), b.degree());
  }
}

TEST(Polynomial, DivideByZeroThrows) {
  const Zq f = small_field();
  const Polynomial p(f, {Bigint(1)});
  EXPECT_THROW(p.divmod(Polynomial::zero(f)), MathError);
}

TEST(Polynomial, ExactDivision) {
  const Zq f = small_field();
  ChaChaRng rng(4);
  const Polynomial a = Polynomial::random(f, 5, rng);
  const Polynomial b = Polynomial::random(f, 3, rng);
  EXPECT_EQ((a * b).divided_exactly_by(b), a);
  // Inexact division throws.
  const Polynomial c = a * b + Polynomial::constant(f, Bigint(1));
  EXPECT_THROW(c.divided_exactly_by(b), MathError);
}

TEST(Polynomial, FieldMismatchThrows) {
  const Zq f1{Bigint(101)};
  const Zq f2{Bigint(103)};
  const Polynomial p(f1, {Bigint(1)});
  const Polynomial q(f2, {Bigint(1)});
  EXPECT_THROW(p + q, ContractError);
  EXPECT_THROW(p * q, ContractError);
}

TEST(Lagrange, InterpolateRecoversPolynomial) {
  const Zq f = test::test_zq();
  ChaChaRng rng(5);
  for (std::size_t deg : {0u, 1u, 3u, 8u}) {
    const Polynomial p = Polynomial::random(f, deg, rng);
    std::vector<std::pair<Bigint, Bigint>> pts;
    for (std::size_t i = 0; i <= deg; ++i) {
      const Bigint x(static_cast<long>(i + 1));
      pts.emplace_back(x, p.eval(x));
    }
    EXPECT_EQ(interpolate(f, pts), p) << "degree " << deg;
  }
}

TEST(Lagrange, InterpolateRejectsDuplicates) {
  const Zq f = small_field();
  std::vector<std::pair<Bigint, Bigint>> pts = {{Bigint(1), Bigint(2)},
                                                {Bigint(1), Bigint(3)}};
  EXPECT_THROW(interpolate(f, pts), ContractError);
}

TEST(Lagrange, CoefficientsReconstructEvaluation) {
  const Zq f = test::test_zq();
  ChaChaRng rng(6);
  const std::size_t n = 9;
  std::vector<Bigint> xs;
  for (std::size_t i = 0; i < n; ++i) xs.push_back(Bigint(static_cast<long>(3 * i + 2)));
  const Bigint at = Bigint(77);
  const auto coeffs = lagrange_coefficients_at(f, xs, at);
  const Polynomial p = Polynomial::random(f, n - 1, rng);
  Bigint acc(0);
  for (std::size_t i = 0; i < n; ++i) {
    acc = f.add(acc, f.mul(coeffs[i], p.eval(xs[i])));
  }
  EXPECT_EQ(acc, p.eval(at));
}

TEST(Lagrange, CoefficientsAtZeroSumToOneForConstants) {
  // For the constant polynomial 1, sum of Lagrange-at-zero coefficients = 1.
  const Zq f = test::test_zq();
  std::vector<Bigint> xs = {Bigint(5), Bigint(9), Bigint(13), Bigint(21)};
  const auto coeffs = lagrange_coefficients_at_zero(f, xs);
  Bigint acc(0);
  for (const Bigint& c : coeffs) acc = f.add(acc, c);
  EXPECT_EQ(acc, Bigint(1));
}

TEST(Lagrange, DuplicatePointsThrow) {
  const Zq f = small_field();
  std::vector<Bigint> xs = {Bigint(1), Bigint(102)};  // 102 = 1 mod 101
  EXPECT_THROW(lagrange_coefficients_at_zero(f, xs), ContractError);
}

TEST(Polynomial, RandomHasExpectedDegreeBound) {
  const Zq f = test::test_zq();
  ChaChaRng rng(8);
  for (int i = 0; i < 10; ++i) {
    const Polynomial p = Polynomial::random(f, 6, rng);
    EXPECT_LE(p.degree(), 6);
  }
}

TEST(Polynomial, EvalMany) {
  const Zq f = small_field();
  const Polynomial p(f, {Bigint(1), Bigint(1)});
  const std::vector<Bigint> xs = {Bigint(0), Bigint(1), Bigint(2)};
  const auto ys = p.eval_many(xs);
  ASSERT_EQ(ys.size(), 3u);
  EXPECT_EQ(ys[0], Bigint(1));
  EXPECT_EQ(ys[1], Bigint(2));
  EXPECT_EQ(ys[2], Bigint(3));
}

}  // namespace
}  // namespace dfky
