#!/usr/bin/env bash
# Runs one bench binary in smoke profile (DFKY_BENCH_SMOKE=1 shrinks the
# sweeps to seconds) and validates the BENCH_<name>.json it writes against
# the dfky-bench-v1 schema. Used by the `obs`-configuration ctest jobs:
#
#   tests/bench_smoke.sh <bench-binary> <bench_schema_check-binary>
set -euo pipefail

bench="$1"
check="$2"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
cd "$work"

DFKY_BENCH_SMOKE=1 "$bench" > bench.out

shopt -s nullglob
json=(BENCH_*.json)
[ "${#json[@]}" -ge 1 ] || { echo "bench_smoke: no BENCH_*.json produced" >&2; exit 1; }

"$check" "${json[@]}"
echo "bench_smoke: ok (${json[*]})"
