// Robustness of the wire decoders: random corruption of serialized
// ciphertexts, public keys, reset bundles and content messages must either
// decode to something structurally valid or throw a dfky::Error — never
// crash, hang, or surface a non-library exception.
#include <gtest/gtest.h>

#include "core/content.h"
#include "core/manager.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

struct FuzzWorld {
  ChaChaRng rng{20001};
  SystemParams sp{test::test_params(3, 20002)};
  SecurityManager mgr{sp, rng};
};

/// Applies `mutations` random byte mutations.
Bytes mutate(Bytes data, ChaChaRng& rng, int mutations) {
  for (int i = 0; i < mutations && !data.empty(); ++i) {
    const std::size_t pos = rng.u64() % data.size();
    data[pos] ^= static_cast<byte>(1 + (rng.u64() % 255));
  }
  return data;
}

template <typename DecodeFn>
void fuzz_roundtrip(const Bytes& wire, ChaChaRng& rng, DecodeFn decode) {
  // Bit flips.
  for (int trial = 0; trial < 60; ++trial) {
    const Bytes bad = mutate(wire, rng, 1 + trial % 5);
    try {
      decode(bad);
    } catch (const Error&) {
      // expected for most mutations
    }
  }
  // Truncations.
  for (std::size_t cut = 0; cut < wire.size();
       cut += std::max<std::size_t>(1, wire.size() / 37)) {
    try {
      decode(Bytes(wire.begin(), wire.begin() + static_cast<long>(cut)));
    } catch (const Error&) {
    }
  }
  // Random garbage of assorted sizes.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{16}, wire.size()}) {
    Bytes junk(len);
    rng.fill(junk);
    try {
      decode(junk);
    } catch (const Error&) {
    }
  }
}

TEST(FuzzDecode, Ciphertext) {
  FuzzWorld w;
  const Gelt m = w.sp.group.random_element(w.rng);
  const Ciphertext ct = encrypt(w.sp, w.mgr.public_key(), m, w.rng);
  Writer wr;
  ct.serialize(wr, w.sp.group);
  fuzz_roundtrip(wr.bytes(), w.rng, [&](const Bytes& b) {
    Reader r(b);
    const Ciphertext got = Ciphertext::deserialize(r, w.sp.group);
    r.expect_end();
    // Structurally valid decodes must contain only group elements.
    EXPECT_TRUE(w.sp.group.is_element(got.u));
    EXPECT_TRUE(w.sp.group.is_element(got.w));
  });
}

TEST(FuzzDecode, PublicKey) {
  FuzzWorld w;
  Writer wr;
  w.mgr.public_key().serialize(wr, w.sp.group);
  fuzz_roundtrip(wr.bytes(), w.rng, [&](const Bytes& b) {
    Reader r(b);
    const PublicKey got = PublicKey::deserialize(r, w.sp.group);
    r.expect_end();
    EXPECT_TRUE(w.sp.group.is_element(got.y));
  });
}

TEST(FuzzDecode, SignedResetBundle) {
  FuzzWorld w;
  const SignedResetBundle bundle = w.mgr.new_period(w.rng);
  Writer wr;
  bundle.serialize(wr, w.sp.group);
  fuzz_roundtrip(wr.bytes(), w.rng, [&](const Bytes& b) {
    Reader r(b);
    const auto got = SignedResetBundle::deserialize(r, w.sp.group);
    r.expect_end();
    // Any mutated-but-parsable bundle must fail signature verification
    // unless it is byte-identical to the original.
    Writer reser;
    got.serialize(reser, w.sp.group);
    if (reser.bytes() != wr.bytes()) {
      EXPECT_FALSE(got.verify(w.sp.group, w.mgr.verification_key()));
    }
  });
}

TEST(FuzzDecode, ContentMessage) {
  FuzzWorld w;
  const auto user = w.mgr.add_user(w.rng);
  const Bytes payload = {'p', 'a', 'y'};
  const ContentMessage msg =
      seal_content(w.sp, w.mgr.public_key(), payload, w.rng);
  Writer wr;
  msg.serialize(wr, w.sp.group);
  fuzz_roundtrip(wr.bytes(), w.rng, [&](const Bytes& b) {
    Reader r(b);
    const auto got = ContentMessage::deserialize(r, w.sp.group);
    r.expect_end();
    // Decodable mutants must never authenticate to a different payload.
    Writer reser;
    got.serialize(reser, w.sp.group);
    if (reser.bytes() != wr.bytes()) {
      EXPECT_THROW((void)open_content(w.sp, user.key, got), Error);
    }
  });
}

TEST(FuzzDecode, UserKey) {
  FuzzWorld w;
  const auto user = w.mgr.add_user(w.rng);
  Writer wr;
  user.key.serialize(wr);
  fuzz_roundtrip(wr.bytes(), w.rng, [&](const Bytes& b) {
    Reader r(b);
    (void)UserKey::deserialize(r);
    r.expect_end();
  });
}

TEST(FuzzDecode, ManagerState) {
  FuzzWorld w;
  w.mgr.add_user(w.rng);
  const Bytes state = w.mgr.save_state();
  fuzz_roundtrip(state, w.rng, [&](const Bytes& b) {
    (void)SecurityManager::restore_state(b);
  });
}

}  // namespace
}  // namespace dfky
