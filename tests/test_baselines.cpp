// Baseline schemes: correctness, their documented weaknesses, and the
// transmission-size contrast the paper's E1 experiment quantifies.
#include <gtest/gtest.h>

#include "baselines/bounded_trace_revoke.h"
#include "baselines/naive_elgamal.h"
#include "core/scheme.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

TEST(NaiveElGamal, RoundTrip) {
  ChaChaRng rng(8001);
  NaiveElGamalBroadcast sys(test::test_group());
  const auto u1 = sys.add_user(rng);
  const auto u2 = sys.add_user(rng);
  const Group g = test::test_group();
  const Gelt m = g.random_element(rng);
  const auto b = sys.encrypt(m, rng);
  EXPECT_EQ(sys.decrypt(b, u1), m);
  EXPECT_EQ(sys.decrypt(b, u2), m);
}

TEST(NaiveElGamal, RevokedUserHasNoEntry) {
  ChaChaRng rng(8002);
  NaiveElGamalBroadcast sys(test::test_group());
  const auto u1 = sys.add_user(rng);
  const auto u2 = sys.add_user(rng);
  sys.revoke(u1.id);
  EXPECT_EQ(sys.active_users(), 1u);
  const Group g = test::test_group();
  const auto b = sys.encrypt(g.random_element(rng), rng);
  EXPECT_FALSE(sys.decrypt(b, u1).has_value());
  EXPECT_TRUE(sys.decrypt(b, u2).has_value());
}

TEST(NaiveElGamal, WireSizeGrowsLinearlyInUsers) {
  ChaChaRng rng(8003);
  const Group g = test::test_group();
  NaiveElGamalBroadcast sys(g);
  for (int i = 0; i < 10; ++i) sys.add_user(rng);
  const auto b10 = sys.encrypt(g.random_element(rng), rng);
  for (int i = 0; i < 10; ++i) sys.add_user(rng);
  const auto b20 = sys.encrypt(g.random_element(rng), rng);
  EXPECT_EQ(b20.wire_size(g), 2 * b10.wire_size(g));
}

TEST(BoundedTR, RoundTrip) {
  ChaChaRng rng(8004);
  const SystemParams sp = test::test_params(3, 8005);
  BoundedTraceRevoke sys(sp, OverflowPolicy::kRefuse, rng);
  const auto u = sys.add_user(rng);
  const Gelt m = sp.group.random_element(rng);
  const Ciphertext ct = sys.encrypt(m, rng);
  EXPECT_EQ(sys.decrypt(ct, u), m);
}

TEST(BoundedTR, RevokedUserBarred) {
  ChaChaRng rng(8006);
  const SystemParams sp = test::test_params(3, 8007);
  BoundedTraceRevoke sys(sp, OverflowPolicy::kRefuse, rng);
  const auto bad = sys.add_user(rng);
  const auto good = sys.add_user(rng);
  ASSERT_TRUE(sys.revoke(bad.id));
  EXPECT_TRUE(sys.currently_barred(bad.id));
  const Gelt m = sp.group.random_element(rng);
  const Ciphertext ct = sys.encrypt(m, rng);
  EXPECT_THROW(sys.decrypt(ct, bad), ContractError);
  EXPECT_EQ(sys.decrypt(ct, good), m);
}

TEST(BoundedTR, RefusePolicySaturatesForever) {
  // The client-side scalability failure: after v lifetime revocations the
  // system cannot revoke anyone else, ever.
  ChaChaRng rng(8008);
  const SystemParams sp = test::test_params(2, 8009);
  BoundedTraceRevoke sys(sp, OverflowPolicy::kRefuse, rng);
  const auto u1 = sys.add_user(rng);
  const auto u2 = sys.add_user(rng);
  const auto u3 = sys.add_user(rng);
  EXPECT_TRUE(sys.revoke(u1.id));
  EXPECT_TRUE(sys.revoke(u2.id));
  EXPECT_FALSE(sys.revoke(u3.id));  // saturated: revocation refused
  EXPECT_FALSE(sys.currently_barred(u3.id));
}

TEST(BoundedTR, DropOldestRevivesTheDropped) {
  // The revive attack in miniature.
  ChaChaRng rng(8010);
  const SystemParams sp = test::test_params(2, 8011);
  BoundedTraceRevoke sys(sp, OverflowPolicy::kDropOldest, rng);
  const auto bad = sys.add_user(rng);
  const auto v1 = sys.add_user(rng);
  const auto v2 = sys.add_user(rng);

  ASSERT_TRUE(sys.revoke(bad.id));
  const Gelt m1 = sp.group.random_element(rng);
  EXPECT_THROW(sys.decrypt(sys.encrypt(m1, rng), bad), ContractError);

  ASSERT_TRUE(sys.revoke(v1.id));
  ASSERT_TRUE(sys.revoke(v2.id));  // pushes `bad` out of the window
  EXPECT_FALSE(sys.currently_barred(bad.id));
  const Gelt m2 = sp.group.random_element(rng);
  EXPECT_EQ(sys.decrypt(sys.encrypt(m2, rng), bad), m2);  // revived!
}

TEST(BoundedTR, DoubleRevocationRejected) {
  ChaChaRng rng(8012);
  const SystemParams sp = test::test_params(3, 8013);
  BoundedTraceRevoke sys(sp, OverflowPolicy::kRefuse, rng);
  const auto u = sys.add_user(rng);
  ASSERT_TRUE(sys.revoke(u.id));
  EXPECT_THROW(sys.revoke(u.id), ContractError);
}

TEST(BoundedTR, EncryptionUsesOnlyPublicData) {
  // The ciphertext slots must equal g^{r P(z)} computed from the published
  // coefficient commitments; cross-check against a fresh user's decryption
  // through several revocation-list states.
  ChaChaRng rng(8014);
  const SystemParams sp = test::test_params(3, 8015);
  BoundedTraceRevoke sys(sp, OverflowPolicy::kRefuse, rng);
  const auto u = sys.add_user(rng);
  for (int round = 0; round < 3; ++round) {
    const auto victim = sys.add_user(rng);
    ASSERT_TRUE(sys.revoke(victim.id));
    const Gelt m = sp.group.random_element(rng);
    EXPECT_EQ(sys.decrypt(sys.encrypt(m, rng), u), m) << "round " << round;
  }
}

TEST(Transmission, SchemeCiphertextIndependentOfPopulation) {
  // Our scheme: O(v) regardless of n; naive baseline: O(n).
  ChaChaRng rng(8016);
  const SystemParams sp = test::test_params(4, 8017);
  SetupResult s = setup(sp, rng);
  const Gelt m = sp.group.random_element(rng);
  const std::size_t size_small_pop =
      encrypt(sp, s.pk, m, rng).wire_size(sp.group);
  // "Add" 100 users (no state change needed for encryption at all).
  const std::size_t size_large_pop =
      encrypt(sp, s.pk, m, rng).wire_size(sp.group);
  EXPECT_EQ(size_small_pop, size_large_pop);

  NaiveElGamalBroadcast naive(sp.group);
  for (int i = 0; i < 8; ++i) naive.add_user(rng);
  const std::size_t naive8 = naive.encrypt(m, rng).wire_size(sp.group);
  EXPECT_GT(naive8, 0u);
}

}  // namespace
}  // namespace dfky
