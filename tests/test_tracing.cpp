// Non-black-box tracing tests (paper Sect. 6.3): deterministic recovery of
// ALL traitors from a pirate representation, via both the Berlekamp-Welch
// path and the syndrome (Berlekamp-Massey) path.
#include "tracing/nonblackbox.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "attacks/trace_game.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

struct TraceFixture {
  SystemParams sp;
  ChaChaRng rng;
  SecurityManager mgr;
  std::vector<SecurityManager::AddedUser> users;

  TraceFixture(std::size_t v, std::size_t n, std::uint64_t seed = 4001)
      : sp(test::test_params(v, seed)), rng(seed ^ 0x7777), mgr(sp, rng) {
    for (std::size_t i = 0; i < n; ++i) users.push_back(mgr.add_user(rng));
  }

  Representation pirate(std::span<const std::size_t> coalition) {
    std::vector<UserKey> keys;
    for (std::size_t i : coalition) keys.push_back(users[i].key);
    return build_pirate_representation(sp, mgr.public_key(), keys, rng);
  }
};

std::vector<std::uint64_t> sorted_ids(const TraceResult& r) {
  auto ids = r.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

struct TraceCase {
  std::size_t v, n, coalition;
  std::uint64_t seed;
};

class TraceSweep : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceSweep, SyndromePathRecoversExactCoalition) {
  const auto [v, n, csize, seed] = GetParam();
  TraceFixture fx(v, n, seed);
  std::vector<std::size_t> coalition;
  for (std::size_t i = 0; i < csize; ++i) coalition.push_back(2 * i + 1);
  const Representation delta = fx.pirate(coalition);

  const TraceResult result =
      trace_nonblackbox(fx.sp, fx.mgr.public_key(), delta, fx.mgr.users(),
                        TraceAlgorithm::kSyndrome);
  std::vector<std::uint64_t> expect;
  for (std::size_t i : coalition) expect.push_back(fx.users[i].id);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted_ids(result), expect);
}

TEST_P(TraceSweep, BerlekampWelchPathAgrees) {
  const auto [v, n, csize, seed] = GetParam();
  if (n <= v) GTEST_SKIP() << "BW path requires n > v";
  TraceFixture fx(v, n, seed ^ 0x3141);
  std::vector<std::size_t> coalition;
  for (std::size_t i = 0; i < csize; ++i) coalition.push_back(2 * i);
  const Representation delta = fx.pirate(coalition);

  const TraceResult syn =
      trace_nonblackbox(fx.sp, fx.mgr.public_key(), delta, fx.mgr.users(),
                        TraceAlgorithm::kSyndrome);
  const TraceResult bw =
      trace_nonblackbox(fx.sp, fx.mgr.public_key(), delta, fx.mgr.users(),
                        TraceAlgorithm::kBerlekampWelch);
  EXPECT_EQ(sorted_ids(syn), sorted_ids(bw));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceSweep,
    ::testing::Values(TraceCase{2, 8, 1, 1}, TraceCase{4, 10, 2, 2},
                      TraceCase{6, 12, 3, 3}, TraceCase{8, 16, 4, 4},
                      TraceCase{8, 20, 2, 5}, TraceCase{12, 20, 6, 6},
                      TraceCase{16, 24, 8, 7}, TraceCase{4, 40, 2, 8}));

TEST(Tracing, SingleTraitorIdentityKey) {
  // The laziest pirate: the decoder embeds one user's own representation.
  TraceFixture fx(4, 10);
  const Representation delta =
      representation_of(fx.sp, fx.users[3].key, fx.mgr.public_key());
  const TraceResult result =
      trace_nonblackbox(fx.sp, fx.mgr.public_key(), delta, fx.mgr.users());
  ASSERT_EQ(result.traitors.size(), 1u);
  EXPECT_EQ(result.traitors[0].id, fx.users[3].id);
  EXPECT_TRUE(result.traitors[0].weight.is_one());
}

TEST(Tracing, RecoversConvexWeights) {
  TraceFixture fx(6, 12);
  std::vector<Representation> deltas;
  const std::vector<std::size_t> coalition = {1, 4, 7};
  for (std::size_t i : coalition) {
    deltas.push_back(
        representation_of(fx.sp, fx.users[i].key, fx.mgr.public_key()));
  }
  const Zq& zq = fx.sp.group.zq();
  const Bigint mu0(17), mu1(23);
  const Bigint mu2 = zq.sub(Bigint(1), zq.add(mu0, mu1));
  const Representation delta =
      convex_combination(fx.sp, deltas, std::vector<Bigint>{mu0, mu1, mu2});

  const TraceResult result =
      trace_nonblackbox(fx.sp, fx.mgr.public_key(), delta, fx.mgr.users());
  ASSERT_EQ(result.traitors.size(), 3u);
  for (const auto& t : result.traitors) {
    if (t.id == fx.users[1].id) {
      EXPECT_EQ(t.weight, mu0);
    } else if (t.id == fx.users[4].id) {
      EXPECT_EQ(t.weight, mu1);
    } else if (t.id == fx.users[7].id) {
      EXPECT_EQ(t.weight, mu2);
    }
  }
}

TEST(Tracing, InvalidRepresentationRejected) {
  TraceFixture fx(4, 8);
  Representation delta =
      representation_of(fx.sp, fx.users[0].key, fx.mgr.public_key());
  delta.gamma_b = fx.sp.group.zq().add(delta.gamma_b, Bigint(1));
  EXPECT_THROW(
      trace_nonblackbox(fx.sp, fx.mgr.public_key(), delta, fx.mgr.users()),
      MathError);
}

TEST(Tracing, CoalitionBeyondBoundFails) {
  // m = floor(v/2) = 2, but 4 traitors collude: the tracer must fail
  // loudly, not accuse innocents.
  TraceFixture fx(4, 12);
  const std::vector<std::size_t> coalition = {0, 1, 2, 3};
  const Representation delta = fx.pirate(coalition);
  EXPECT_THROW(
      trace_nonblackbox(fx.sp, fx.mgr.public_key(), delta, fx.mgr.users(),
                        TraceAlgorithm::kSyndrome),
      MathError);
}

TEST(Tracing, WorksAfterRevocations) {
  // Trace against a public key whose slots contain revoked users.
  TraceFixture fx(4, 14);
  // Revoke three bystanders.
  fx.mgr.remove_user(fx.users[10].id, fx.rng);
  fx.mgr.remove_user(fx.users[11].id, fx.rng);
  fx.mgr.remove_user(fx.users[12].id, fx.rng);

  std::vector<UserKey> keys = {fx.users[2].key, fx.users[5].key};
  const Representation delta =
      build_pirate_representation(fx.sp, fx.mgr.public_key(), keys, fx.rng);
  const TraceResult result =
      trace_nonblackbox(fx.sp, fx.mgr.public_key(), delta, fx.mgr.users());
  EXPECT_EQ(sorted_ids(result),
            (std::vector<std::uint64_t>{fx.users[2].id, fx.users[5].id}));
}

TEST(Tracing, SyndromesMatchDefinition) {
  // delta'' = delta' * B where B is the slot Vandermonde (columns x^1..x^v).
  const Zq f = test::test_zq();
  const std::vector<Bigint> zs = {Bigint(2), Bigint(3), Bigint(5)};
  const std::vector<Bigint> tail = {Bigint(7), Bigint(11), Bigint(13)};
  const auto syn = tracing_syndromes(f, zs, tail);
  ASSERT_EQ(syn.size(), 3u);
  // S_1 = 7*2 + 11*3 + 13*5 = 112; S_2 = 7*4+11*9+13*25 = 452;
  // S_3 = 7*8+11*27+13*125 = 1978.
  EXPECT_EQ(syn[0], Bigint(112));
  EXPECT_EQ(syn[1], Bigint(452));
  EXPECT_EQ(syn[2], Bigint(1978));
}

// Full adversarial game: adaptive joins interleaved with revocations and
// period changes, pirate built at the end (paper Sect. 6.1.1).
TEST(TraceGame, AdaptiveAdversaryAcrossPeriodsIsTraced) {
  ChaChaRng rng(555);
  const SystemParams sp = test::test_params(4, 556);
  TraceGame game(sp, rng);

  game.join(Bigint(1000));
  // Some honest churn, including a forced period change.
  std::vector<std::uint64_t> honest;
  for (int i = 0; i < 6; ++i) honest.push_back(game.add_honest(rng));
  game.revoke_honest(honest[0], rng);
  game.join(Bigint(2000));
  game.revoke_honest(honest[1], rng);
  game.revoke_honest(honest[2], rng);
  game.revoke_honest(honest[3], rng);
  game.revoke_honest(honest[4], rng);  // forces a New-period (v = 4)
  EXPECT_GE(game.pk().period, 1u);

  const Representation delta = game.build_pirate(rng);
  EXPECT_TRUE(delta.valid_for(sp, game.pk()));
  const TraceResult result =
      trace_nonblackbox(sp, game.pk(), delta, game.registry());
  auto expect = game.traitor_ids();
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted_ids(result), expect);
}

TEST(TraceGame, EnforcesCollusionBound) {
  ChaChaRng rng(557);
  const SystemParams sp = test::test_params(4, 558);  // m = 2
  TraceGame game(sp, rng);
  game.join(Bigint(1000));
  game.join(Bigint(1001));
  EXPECT_THROW(game.join(Bigint(1002)), ContractError);
}

TEST(TraceGame, SubsetPirateTracesOnlyContributors) {
  ChaChaRng rng(559);
  const SystemParams sp = test::test_params(6, 560);  // m = 3
  TraceGame game(sp, rng);
  game.join(Bigint(1000));
  game.join(Bigint(1001));
  game.join(Bigint(1002));
  for (int i = 0; i < 4; ++i) game.add_honest(rng);

  const std::vector<std::size_t> subset = {0, 2};
  const Representation delta = game.build_pirate_subset(subset, rng);
  const TraceResult result =
      trace_nonblackbox(sp, game.pk(), delta, game.registry());
  EXPECT_EQ(sorted_ids(result),
            (std::vector<std::uint64_t>{game.traitor_ids()[0],
                                        game.traitor_ids()[2]}));
}

}  // namespace
}  // namespace dfky
