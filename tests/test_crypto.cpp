#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "crypto/crc32c.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"
#include "crypto/stream_seal.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

Bytes hex(std::string_view s) {
  Bytes out;
  auto nib = [](char c) -> byte {
    if (c >= '0' && c <= '9') return static_cast<byte>(c - '0');
    return static_cast<byte>(c - 'a' + 10);
  };
  for (std::size_t i = 0; i + 1 < s.size(); i += 2) {
    out.push_back(static_cast<byte>((nib(s[i]) << 4) | nib(s[i + 1])));
  }
  return out;
}

Bytes str(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_hex(BytesView b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (byte x : b) {
    out.push_back(kDigits[x >> 4]);
    out.push_back(kDigits[x & 0xf]);
  }
  return out;
}

// ---- CRC32C (RFC 3720 Sect. B.4 test vectors) --------------------------------

TEST(Crc32c, KnownAnswerVectors) {
  EXPECT_EQ(crc32c(Bytes{}), 0x00000000u);
  EXPECT_EQ(crc32c(str("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(Bytes(32, byte{0x00})), 0x8A9136AAu);
  EXPECT_EQ(crc32c(Bytes(32, byte{0xFF})), 0x62A8AB43u);
  Bytes ascending(32), descending(32);
  for (std::size_t i = 0; i < 32; ++i) {
    ascending[i] = static_cast<byte>(i);
    descending[i] = static_cast<byte>(31 - i);
  }
  EXPECT_EQ(crc32c(ascending), 0x46DD794Eu);
  EXPECT_EQ(crc32c(descending), 0x113FDB5Cu);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  ChaChaRng rng(31001);
  const Bytes data = rng.bytes(1027);
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                            std::size_t{513}, data.size()}) {
    std::uint32_t crc = crc32c_update(0, BytesView(data.data(), split));
    crc = crc32c_update(
        crc, BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  const Bytes data = str("the durable store frames every record");
  const std::uint32_t good = crc32c(data);
  for (std::size_t pos = 0; pos < data.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad = data;
      bad[pos] ^= static_cast<byte>(1u << bit);
      EXPECT_NE(crc32c(bad), good) << "pos " << pos << " bit " << bit;
    }
  }
}

// ---- SHA-256 (FIPS 180-4 / NIST vectors) ------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(str("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(Sha256::hash(
          str("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update(str("hello "));
  h.update(str("world"));
  EXPECT_EQ(h.finish(), Sha256::hash(str("hello world")));
}

TEST(Sha256, ExactBlockBoundary) {
  const Bytes block(64, 'x');
  Sha256 h;
  h.update(block);
  EXPECT_EQ(h.finish(), Sha256::hash(block));
}

// ---- HMAC-SHA256 (RFC 4231) --------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto tag = HmacSha256::mac(key, str("Hi There"));
  EXPECT_EQ(to_hex(tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto tag =
      HmacSha256::mac(str("Jefe"), str("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3LongKeyData) {
  const Bytes key(131, 0xaa);  // key longer than the block size
  const auto tag = HmacSha256::mac(
      key, str("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, VerifyAcceptsAndRejects) {
  const Bytes key = str("key");
  const Bytes msg = str("message");
  auto tag = HmacSha256::mac(key, msg);
  EXPECT_TRUE(HmacSha256::verify(key, msg, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(HmacSha256::verify(key, msg, tag));
  EXPECT_FALSE(HmacSha256::verify(key, msg, BytesView(tag.data(), 16)));
}

// ---- HKDF (RFC 5869) ----------------------------------------------------------

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = hex("000102030405060708090a0b0c");
  const Bytes info = hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3NoSaltNoInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, RejectsOverlongOutput) {
  EXPECT_THROW(hkdf_expand(Bytes(32, 1), {}, 255 * 32 + 1), ContractError);
}

// ---- ChaCha20 (RFC 8439) -------------------------------------------------------

TEST(ChaCha, Rfc8439Encryption) {
  const Bytes key = hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = hex("000000000000004a00000000");
  const Bytes plaintext = str(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  const Bytes ct = chacha20_xor(key, nonce, 1, plaintext);
  EXPECT_EQ(to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha, DecryptIsInverse) {
  const Bytes key(32, 7);
  const Bytes nonce(12, 9);
  const Bytes msg = str("round trip me");
  const Bytes ct = chacha20_xor(key, nonce, 0, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(chacha20_xor(key, nonce, 0, ct), msg);
}

TEST(ChaCha, StreamingMatchesOneShot) {
  const Bytes key(32, 1);
  const Bytes nonce(12, 2);
  Bytes data(300);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<byte>(i);
  const Bytes expect = chacha20_xor(key, nonce, 0, data);
  ChaCha20 c(key, nonce, 0);
  Bytes got = data;
  c.apply(std::span<byte>(got.data(), 100));
  c.apply(std::span<byte>(got.data() + 100, 200));
  EXPECT_EQ(got, expect);
}

TEST(ChaCha, KeySizeValidated) {
  EXPECT_THROW(ChaCha20(Bytes(31, 0), Bytes(12, 0)), ContractError);
  EXPECT_THROW(ChaCha20(Bytes(32, 0), Bytes(11, 0)), ContractError);
}

// ---- One-time seal -------------------------------------------------------------

TEST(Seal, RoundTrip) {
  const Bytes key(32, 0x42);
  const Bytes msg = str("top secret broadcast content");
  const Bytes sealed = seal(key, msg);
  EXPECT_EQ(open_sealed(key, sealed), msg);
}

TEST(Seal, EmptyPayload) {
  const Bytes key(32, 0x42);
  const Bytes sealed = seal(key, {});
  EXPECT_TRUE(open_sealed(key, sealed).empty());
}

TEST(Seal, TamperDetected) {
  const Bytes key(32, 0x42);
  Bytes sealed = seal(key, str("payload"));
  sealed[0] ^= 1;
  EXPECT_THROW(open_sealed(key, sealed), DecodeError);
}

TEST(Seal, WrongKeyRejected) {
  const Bytes key(32, 0x42);
  const Bytes other(32, 0x43);
  const Bytes sealed = seal(key, str("payload"));
  EXPECT_THROW(open_sealed(other, sealed), DecodeError);
}

TEST(Seal, TruncatedRejected) {
  const Bytes key(32, 0x42);
  const Bytes sealed = seal(key, str("payload"));
  EXPECT_THROW(
      open_sealed(key, BytesView(sealed.data(), HmacSha256::kTagSize - 1)),
      DecodeError);
}

// ---- Schnorr signatures ----------------------------------------------------------

TEST(Schnorr, SignVerifyRoundTrip) {
  const Group group = test::test_group();
  ChaChaRng rng(31);
  const auto kp = SchnorrKeyPair::generate(group, rng);
  const Bytes msg = str("change period");
  const auto sig = kp.sign(group, msg, rng);
  EXPECT_TRUE(schnorr_verify(group, kp.public_key(), msg, sig));
}

TEST(Schnorr, RejectsWrongMessage) {
  const Group group = test::test_group();
  ChaChaRng rng(32);
  const auto kp = SchnorrKeyPair::generate(group, rng);
  const auto sig = kp.sign(group, str("message A"), rng);
  EXPECT_FALSE(schnorr_verify(group, kp.public_key(), str("message B"), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  const Group group = test::test_group();
  ChaChaRng rng(33);
  const auto kp1 = SchnorrKeyPair::generate(group, rng);
  const auto kp2 = SchnorrKeyPair::generate(group, rng);
  const auto sig = kp1.sign(group, str("msg"), rng);
  EXPECT_FALSE(schnorr_verify(group, kp2.public_key(), str("msg"), sig));
}

TEST(Schnorr, RejectsTamperedSignature) {
  const Group group = test::test_group();
  ChaChaRng rng(34);
  const auto kp = SchnorrKeyPair::generate(group, rng);
  auto sig = kp.sign(group, str("msg"), rng);
  sig.response = group.zq().add(sig.response, Bigint(1));
  EXPECT_FALSE(schnorr_verify(group, kp.public_key(), str("msg"), sig));
}

TEST(Schnorr, SerializationRoundTrip) {
  const Group group = test::test_group();
  ChaChaRng rng(35);
  const auto kp = SchnorrKeyPair::generate(group, rng);
  const auto sig = kp.sign(group, str("msg"), rng);
  Writer w;
  sig.serialize(w, group);
  Reader r(w.bytes());
  const auto sig2 = SchnorrSignature::deserialize(r, group);
  EXPECT_TRUE(schnorr_verify(group, kp.public_key(), str("msg"), sig2));
}

}  // namespace
}  // namespace dfky
