// Elliptic-curve backend: curve arithmetic, group facade, point
// serialization, Koblitz message encoding, and the complete scheme
// (encrypt/decrypt/revoke/period-change/trace) running over secp256k1 —
// the paper's "alternatively, an elliptic curve" instantiation (Sect. 3).
#include <gtest/gtest.h>

#include "core/manager.h"
#include "core/receiver.h"
#include "group/encoding.h"
#include "rng/chacha_rng.h"
#include "serial/codec.h"
#include "test_util.h"
#include "tracing/nonblackbox.h"
#include "tracing/pirate.h"

namespace dfky {
namespace {

class CurveBackend : public ::testing::TestWithParam<int> {
 protected:
  CurveSpec spec() const {
    return GetParam() == 0 ? CurveSpec::secp256k1() : CurveSpec::p256();
  }
};

TEST_P(CurveBackend, SpecValidates) {
  EXPECT_NO_THROW(spec().validate());
}

TEST_P(CurveBackend, GroupLaws) {
  const CurveSpec c = spec();
  const EcPoint g = EcPoint::affine(c.gx, c.gy);
  // Closure + on-curve.
  const EcPoint g2 = ec_double(c, g);
  const EcPoint g3 = ec_add(c, g2, g);
  EXPECT_TRUE(ec_on_curve(c, g2));
  EXPECT_TRUE(ec_on_curve(c, g3));
  // Commutativity.
  EXPECT_EQ(ec_add(c, g, g2), ec_add(c, g2, g));
  // Identity and inverse.
  EXPECT_EQ(ec_add(c, g, EcPoint::at_infinity()), g);
  EXPECT_TRUE(ec_add(c, g, ec_neg(c, g)).infinity);
  // Associativity spot check: (g + g2) + g3 == g + (g2 + g3).
  EXPECT_EQ(ec_add(c, ec_add(c, g, g2), g3), ec_add(c, g, ec_add(c, g2, g3)));
}

TEST_P(CurveBackend, ScalarMultiplicationConsistency) {
  const CurveSpec c = spec();
  const EcPoint g = EcPoint::affine(c.gx, c.gy);
  EXPECT_EQ(ec_mul(c, g, Bigint(1)), g);
  EXPECT_EQ(ec_mul(c, g, Bigint(2)), ec_double(c, g));
  EXPECT_EQ(ec_mul(c, g, Bigint(5)),
            ec_add(c, ec_mul(c, g, Bigint(2)), ec_mul(c, g, Bigint(3))));
  // Order annihilates, and exponents reduce mod q.
  EXPECT_TRUE(ec_mul(c, g, c.q).infinity);
  EXPECT_EQ(ec_mul(c, g, c.q + Bigint(7)), ec_mul(c, g, Bigint(7)));
}

TEST_P(CurveBackend, DiffieHellmanProperty) {
  const CurveSpec c = spec();
  ChaChaRng rng(31337);
  const EcPoint g = EcPoint::affine(c.gx, c.gy);
  const Bigint a = rng.uniform_below(c.q);
  const Bigint b = rng.uniform_below(c.q);
  EXPECT_EQ(ec_mul(c, ec_mul(c, g, a), b), ec_mul(c, ec_mul(c, g, b), a));
}

INSTANTIATE_TEST_SUITE_P(Curves, CurveBackend, ::testing::Values(0, 1));

Group ec_group() {
  return Group(CurveSpec::secp256k1());
}

SystemParams ec_params(std::size_t v, std::uint64_t seed = 777) {
  ChaChaRng rng(seed);
  return SystemParams::create(ec_group(), v, rng);
}

TEST(EcGroup, FacadeBasics) {
  const Group g = ec_group();
  EXPECT_TRUE(g.is_elliptic());
  EXPECT_TRUE(g.is_element(g.generator()));
  EXPECT_TRUE(g.is_element(g.one()));
  EXPECT_TRUE(g.one() == Gelt::infinity());
  EXPECT_EQ(g.pow_g(g.order()), g.one());
  EXPECT_FALSE(g.is_element(Gelt(Bigint(5))));  // wrong representation kind
  EXPECT_EQ(g.element_size(), 33u);             // 1 tag + 32 bytes of x
}

TEST(EcGroup, MulPowConsistency) {
  const Group g = ec_group();
  ChaChaRng rng(1);
  const Gelt a = g.random_element(rng);
  EXPECT_EQ(g.mul(a, a), g.pow(a, Bigint(2)));
  EXPECT_EQ(g.mul(a, g.inv(a)), g.one());
  EXPECT_EQ(g.pow(a, Bigint(-1)), g.inv(a));
  EXPECT_EQ(g.div(a, a), g.one());
}

TEST(EcGroup, MultiexpMatchesNaive) {
  const Group g = ec_group();
  ChaChaRng rng(2);
  std::vector<Gelt> bases;
  std::vector<Bigint> exps;
  Gelt expect = g.one();
  for (int i = 0; i < 6; ++i) {
    bases.push_back(g.random_element(rng));
    exps.push_back(g.random_exponent(rng));
    expect = g.mul(expect, g.pow(bases[i], exps[i]));
  }
  EXPECT_EQ(multiexp(g, bases, exps), expect);
}

TEST(EcGroup, PointSerializationRoundTrip) {
  const Group g = ec_group();
  ChaChaRng rng(3);
  for (int i = 0; i < 10; ++i) {
    const Gelt e = g.random_element(rng);
    Writer w;
    put_gelt(w, g, e);
    EXPECT_EQ(w.size(), g.element_size());
    Reader r(w.bytes());
    EXPECT_EQ(get_gelt(r, g), e);
  }
  // Infinity.
  Writer w;
  put_gelt(w, g, g.one());
  Reader r(w.bytes());
  EXPECT_EQ(get_gelt(r, g), g.one());
}

TEST(EcGroup, SerializationRejectsGarbage) {
  const Group g = ec_group();
  // Bad tag.
  {
    Bytes raw(g.element_size(), 0);
    raw[0] = 9;
    Reader r(raw);
    EXPECT_THROW(get_gelt(r, g), DecodeError);
  }
  // x not on curve (x = 0 is not on secp256k1: rhs = 7, 7 is a QR? check
  // robustly with an x known to be off-curve by trial below).
  {
    Bytes raw(g.element_size(), 0);
    raw[0] = 2;
    raw[g.element_size() - 1] = 5;  // x = 5
    Reader r(raw);
    // Either decodes (if 5^3+7 is a QR) or throws; never crashes. Verify
    // on-curve if it decodes.
    try {
      const Gelt e = get_gelt(r, g);
      EXPECT_TRUE(g.is_element(e));
    } catch (const DecodeError&) {
    }
  }
  // Malformed infinity (nonzero payload).
  {
    Bytes raw(g.element_size(), 0);
    raw[1] = 1;
    Reader r(raw);
    EXPECT_THROW(get_gelt(r, g), DecodeError);
  }
}

TEST(EcGroup, KoblitzEncodingRoundTrip) {
  const Group g = ec_group();
  ChaChaRng rng(4);
  EXPECT_LT(encode_capacity(g), g.order());
  for (int i = 0; i < 20; ++i) {
    const Bigint a = rng.uniform_below(encode_capacity(g));
    const Gelt e = encode_to_group(g, a);
    EXPECT_TRUE(g.is_element(e));
    EXPECT_EQ(decode_from_group(g, e), a);
  }
  EXPECT_THROW(encode_to_group(g, encode_capacity(g)), ContractError);
  EXPECT_THROW(decode_from_group(g, g.one()), DecodeError);
}

TEST(EcScheme, EncryptDecryptRoundTrip) {
  ChaChaRng rng(5);
  const SystemParams sp = ec_params(4);
  const SetupResult s = setup(sp, rng);
  const UserKey sk = issue_user_key(sp, s.msk, Bigint(1234), 0);
  const Gelt m = sp.group.random_element(rng);
  const Ciphertext ct = encrypt(sp, s.pk, m, rng);
  EXPECT_EQ(decrypt(sp, sk, ct), m);
}

TEST(EcScheme, FullLifecycleHybridResets) {
  ChaChaRng rng(6);
  SecurityManager mgr(ec_params(2), rng, ResetMode::kHybrid);
  const auto survivor = mgr.add_user(rng);
  Receiver receiver(mgr.params(), survivor.key, mgr.verification_key());
  for (int i = 0; i < 5; ++i) {
    const auto victim = mgr.add_user(rng);
    const auto bundle = mgr.remove_user(victim.id, rng);
    if (bundle) receiver.apply_reset(*bundle);
    const Gelt m = mgr.params().group.random_element(rng);
    const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
    EXPECT_EQ(receiver.decrypt(ct), m) << "round " << i;
  }
  EXPECT_GE(mgr.period(), 1u);
}

TEST(EcScheme, PlainResetRejectedOnCurves) {
  ChaChaRng rng(7);
  SecurityManager mgr(ec_params(2), rng, ResetMode::kPlain);
  EXPECT_THROW(mgr.new_period(rng), ContractError);
}

TEST(EcScheme, RevokedUserBarred) {
  ChaChaRng rng(8);
  SecurityManager mgr(ec_params(3), rng);
  const auto bad = mgr.add_user(rng);
  const auto good = mgr.add_user(rng);
  mgr.remove_user(bad.id, rng);
  const Gelt m = mgr.params().group.random_element(rng);
  const Ciphertext ct = encrypt(mgr.params(), mgr.public_key(), m, rng);
  EXPECT_THROW(decrypt(mgr.params(), bad.key, ct), ContractError);
  EXPECT_EQ(decrypt(mgr.params(), good.key, ct), m);
}

TEST(EcScheme, TracingWorksOverCurves) {
  ChaChaRng rng(9);
  SecurityManager mgr(ec_params(4), rng);
  std::vector<SecurityManager::AddedUser> users;
  for (int i = 0; i < 8; ++i) users.push_back(mgr.add_user(rng));
  std::vector<UserKey> keys = {users[1].key, users[6].key};
  const Representation delta = build_pirate_representation(
      mgr.params(), mgr.public_key(), keys, rng);
  EXPECT_TRUE(delta.valid_for(mgr.params(), mgr.public_key()));
  const TraceResult result = trace_nonblackbox(
      mgr.params(), mgr.public_key(), delta, mgr.users());
  ASSERT_EQ(result.traitors.size(), 2u);
}

TEST(EcScheme, PersistenceRoundTrip) {
  ChaChaRng rng(10);
  SecurityManager mgr(ec_params(2), rng);
  const auto u = mgr.add_user(rng);
  SecurityManager restored = SecurityManager::restore_state(mgr.save_state());
  EXPECT_TRUE(restored.params().group.is_elliptic());
  const Gelt m = restored.params().group.random_element(rng);
  const Ciphertext ct =
      encrypt(restored.params(), restored.public_key(), m, rng);
  EXPECT_EQ(decrypt(restored.params(), u.key, ct), m);
}

TEST(EcScheme, CiphertextSmallerThanSchnorrAtSameSecurity) {
  // 256-bit EC ~ 3072-bit Z_p* security; even against only-512-bit Z_p*
  // groups the EC elements are half the size (33 vs 64 bytes).
  const Group ec = ec_group();
  const Group zp512(GroupParams::named(ParamId::kSec512));
  EXPECT_LT(ec.element_size(), zp512.element_size());
}

TEST(EcScheme, SchnorrSignaturesOverCurves) {
  const Group g = ec_group();
  ChaChaRng rng(12);
  const auto kp = SchnorrKeyPair::generate(g, rng);
  const Bytes msg = {'h', 'i'};
  const auto sig = kp.sign(g, msg, rng);
  EXPECT_TRUE(schnorr_verify(g, kp.public_key(), msg, sig));
  const Bytes other = {'h', 'o'};
  EXPECT_FALSE(schnorr_verify(g, kp.public_key(), other, sig));
}

}  // namespace
}  // namespace dfky
