#include <gtest/gtest.h>

#include "linalg/gauss.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

Zq f101() {
  return Zq{Bigint(101)};
}

Matrix from_rows(const Zq& f, std::vector<std::vector<long>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = rows[0].size();
  std::vector<Bigint> data;
  for (const auto& row : rows) {
    for (long v : row) data.push_back(Bigint(v));
  }
  return Matrix(f, r, c, std::move(data));
}

TEST(Matrix, IdentityMultiplication) {
  const Zq f = f101();
  const Matrix id = Matrix::identity(f, 3);
  const Matrix m = from_rows(f, {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_EQ(id * m, m);
  EXPECT_EQ(m * id, m);
}

TEST(Matrix, KnownProduct) {
  const Zq f = f101();
  const Matrix a = from_rows(f, {{1, 2}, {3, 4}});
  const Matrix b = from_rows(f, {{5, 6}, {7, 8}});
  EXPECT_EQ(a * b, from_rows(f, {{19, 22}, {43, 50}}));
}

TEST(Matrix, DimensionMismatchThrows) {
  const Zq f = f101();
  const Matrix a = from_rows(f, {{1, 2}});
  const Matrix b = from_rows(f, {{1, 2}});
  EXPECT_THROW(a * b, ContractError);
}

TEST(Matrix, Transpose) {
  const Zq f = f101();
  const Matrix a = from_rows(f, {{1, 2, 3}, {4, 5, 6}});
  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_EQ(at.at(2, 1), Bigint(6));
}

TEST(Matrix, LeftAndRightMul) {
  const Zq f = f101();
  const Matrix a = from_rows(f, {{1, 2}, {3, 4}, {5, 6}});
  const std::vector<Bigint> rowv = {Bigint(1), Bigint(1), Bigint(1)};
  const auto lm = a.left_mul(rowv);
  ASSERT_EQ(lm.size(), 2u);
  EXPECT_EQ(lm[0], Bigint(9));
  EXPECT_EQ(lm[1], Bigint(12));
  const std::vector<Bigint> colv = {Bigint(1), Bigint(2)};
  const auto rm = a.right_mul(colv);
  ASSERT_EQ(rm.size(), 3u);
  EXPECT_EQ(rm[0], Bigint(5));
  EXPECT_EQ(rm[2], Bigint(17));
}

TEST(Matrix, VandermondeRank) {
  const Zq f = test::test_zq();
  const std::vector<Bigint> xs = {Bigint(2), Bigint(5), Bigint(9), Bigint(11)};
  Matrix vm = Matrix::vandermonde(f, xs, 4);
  EXPECT_EQ(rank(vm), 4u);
  // Rectangular Vandermonde with distinct nodes still has full row rank.
  Matrix wide = Matrix::vandermonde(f, xs, 7);
  EXPECT_EQ(rank(wide), 4u);
}

TEST(Gauss, RankOfSingularMatrix) {
  const Zq f = f101();
  // Third row = first + second.
  const Matrix m = from_rows(f, {{1, 2, 3}, {4, 5, 6}, {5, 7, 9}});
  EXPECT_EQ(rank(m), 2u);
}

TEST(Gauss, SolveUniqueSystem) {
  const Zq f = f101();
  const Matrix m = from_rows(f, {{2, 1}, {1, 3}});
  // Solve: 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
  const std::vector<Bigint> b = {Bigint(5), Bigint(10)};
  const auto x = solve(m, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Bigint(1));
  EXPECT_EQ((*x)[1], Bigint(3));
}

TEST(Gauss, SolveInconsistentReturnsNullopt) {
  const Zq f = f101();
  const Matrix m = from_rows(f, {{1, 1}, {2, 2}});
  const std::vector<Bigint> b = {Bigint(1), Bigint(3)};
  EXPECT_FALSE(solve(m, b).has_value());
}

TEST(Gauss, SolveUnderdeterminedReturnsSomeSolution) {
  const Zq f = f101();
  const Matrix m = from_rows(f, {{1, 2, 3}});
  const std::vector<Bigint> b = {Bigint(7)};
  const auto x = solve(m, b);
  ASSERT_TRUE(x.has_value());
  const auto check = m.right_mul(*x);
  EXPECT_EQ(check[0], Bigint(7));
}

TEST(Gauss, SolveRandomSystemsRoundTrip) {
  const Zq f = test::test_zq();
  ChaChaRng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6;
    std::vector<Bigint> data;
    for (std::size_t i = 0; i < n * n; ++i) {
      data.push_back(rng.uniform_below(f.modulus()));
    }
    const Matrix m(f, n, n, std::move(data));
    std::vector<Bigint> xs;
    for (std::size_t i = 0; i < n; ++i) {
      xs.push_back(rng.uniform_below(f.modulus()));
    }
    const auto b = m.right_mul(xs);
    const auto sol = solve(m, b);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(m.right_mul(*sol), b);  // solution satisfies the system
  }
}

TEST(Gauss, SolveLeft) {
  const Zq f = f101();
  const Matrix m = from_rows(f, {{1, 2}, {3, 4}});
  // x * M = (7, 10)  =>  x = (1, 2).
  const std::vector<Bigint> b = {Bigint(7), Bigint(10)};
  const auto x = solve_left(m, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(m.left_mul(*x), b);
}

TEST(Gauss, KernelVector) {
  const Zq f = f101();
  const Matrix m = from_rows(f, {{1, 2, 3}, {2, 4, 6}});
  const auto k = kernel_vector(m);
  ASSERT_TRUE(k.has_value());
  bool nonzero = false;
  for (const Bigint& v : *k) {
    if (!v.is_zero()) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
  for (const Bigint& v : m.right_mul(*k)) EXPECT_TRUE(v.is_zero());
}

TEST(Gauss, KernelOfFullRankIsTrivial) {
  const Zq f = f101();
  EXPECT_FALSE(kernel_vector(Matrix::identity(f, 4)).has_value());
}

TEST(Matrix, OutOfRangeThrows) {
  const Zq f = f101();
  Matrix m(f, 2, 2);
  EXPECT_THROW(m.at(2, 0), ContractError);
  EXPECT_THROW(m.at(0, 2), ContractError);
}

}  // namespace
}  // namespace dfky
