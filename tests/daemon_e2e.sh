#!/usr/bin/env bash
# End-to-end exercise of dfkyd: store locking against concurrent opens,
# concurrent clients through the group-commit queue, the /metrics endpoint,
# SIGTERM graceful shutdown, SIGKILL crash-recovery with every acknowledged
# mutation intact, a real-process primary/follower failover (SIGKILL the
# primary mid-load, promote the follower, client retry masks the gap), and a
# three-node self-healing cluster: --auto-failover elects and promotes a
# follower after SIGKILLing the primary with no operator in the loop, and a
# revived ex-primary starts fenced and re-seeds from the successor.
# Observability surfaces ride the same daemons: the health verb's verdict
# and exit code, GET /trace, the slow-request log under an armed fsync
# stall, and a one-frame dfky_top render.
#
#   daemon_e2e.sh <dfkyd> <dfky_cli> [<dfky_fsck>] [<dfky_top>]
set -euo pipefail

DFKYD="$1"
CLI="$2"
FSCK="${3:-}"
TOP="${4:-}"
WORK="$(mktemp -d)"
PID=""
SPID=""
RPID=""
FPID=""
APID=""
BPID=""
CPID=""
UPID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null
  [ -n "$SPID" ] && kill -9 "$SPID" 2>/dev/null
  [ -n "$RPID" ] && kill -9 "$RPID" 2>/dev/null
  [ -n "$FPID" ] && kill -9 "$FPID" 2>/dev/null
  [ -n "$APID" ] && kill -9 "$APID" 2>/dev/null
  [ -n "$BPID" ] && kill -9 "$BPID" 2>/dev/null
  [ -n "$CPID" ] && kill -9 "$CPID" 2>/dev/null
  [ -n "$UPID" ] && kill -9 "$UPID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

fail() { echo "daemon_e2e: $1" >&2; exit 1; }

SOCK="$WORK/dfkyd.sock"

start_daemon() {
  : > dfkyd.log
  "$DFKYD" store.d --socket "$SOCK" --metrics-port 0 >> dfkyd.log 2>&1 &
  PID=$!
  for _ in $(seq 1 200); do
    grep -q 'dfkyd: ready' dfkyd.log 2>/dev/null && return 0
    kill -0 "$PID" 2>/dev/null || fail "daemon died at startup: $(cat dfkyd.log)"
    sleep 0.05
  done
  fail "daemon never printed 'dfkyd: ready'"
}

# ---- flag validation happens before anything touches the store ----------------
if "$DFKYD" store.d 2>err.txt; then fail "dfkyd without --socket exited 0"; fi
if "$DFKYD" store.d --socket "$SOCK" --metrics-port banana 2>/dev/null; then
  fail "dfkyd accepted a non-numeric metrics port"
fi
if "$DFKYD" store.d --socket "$SOCK" --backlog 0 2>/dev/null; then
  fail "dfkyd accepted --backlog 0"
fi
if "$DFKYD" store.d --socket "$SOCK" --workers 0 2>/dev/null; then
  fail "dfkyd accepted --workers 0"
fi
[ ! -d store.d ] || fail "a rejected invocation created the store dir"

"$CLI" init store.d --v 4 --group test128 --store >/dev/null
start_daemon

# ---- the daemon's lock shuts everyone else out --------------------------------
wal_sum_before=$(cat store.d/wal.* | cksum)
if "$CLI" status store.d >/dev/null 2>err.txt; then
  fail "CLI opened a daemon-locked store"
fi
grep -q 'is locked by pid' err.txt || fail "lock error unclear: $(cat err.txt)"
if "$DFKYD" store.d --socket "$WORK/second.sock" >second.log 2>&1; then
  fail "second dfkyd on the same store exited 0"
fi
grep -q 'is locked by pid' second.log || fail "second dfkyd: unclear error"
[ "$(cat store.d/wal.* | cksum)" = "$wal_sum_before" ] \
  || fail "a locked-out process modified the WAL"

# ---- concurrent clients, all acks durable -------------------------------------
"$CLI" client "$SOCK" ping | grep -q "pid: $PID" || fail "ping pid mismatch"
pids=()
for i in $(seq 0 7); do
  "$CLI" client "$SOCK" add "u$i.key" >/dev/null 2>&1 &
  pids+=($!)
done
for p in "${pids[@]}"; do
  wait "$p" || fail "a concurrent add failed"
done
for i in $(seq 0 7); do [ -s "u$i.key" ] || fail "u$i.key missing"; done
"$CLI" client "$SOCK" status | grep -q 'active: 8' || fail "not 8 active users"

# ---- the full lifecycle through the socket ------------------------------------
printf 'the midnight broadcast' > payload.bin
"$CLI" client "$SOCK" encrypt payload.bin b1.bin >/dev/null
[ "$("$CLI" decrypt u0.key b1.bin)" = "the midnight broadcast" ] \
  || fail "daemon-issued key cannot open daemon-encrypted content"

# The concurrent adds race for ids, so revoke a user whose id we pinned down.
VICTIM=$("$CLI" client "$SOCK" add victim.key \
  | sed -n 's/^added user #\([0-9]*\).*/\1/p')
[ -n "$VICTIM" ] || fail "client add did not report the new user id"
"$CLI" client "$SOCK" revoke "$VICTIM" >/dev/null
"$CLI" client "$SOCK" encrypt payload.bin b2.bin >/dev/null
if "$CLI" decrypt victim.key b2.bin >/dev/null 2>&1; then
  fail "revoked key still decrypts"
fi

"$CLI" client "$SOCK" new-period --reset-out dnp >/dev/null
[ -f dnp.0.bin ] || fail "new-period emitted no bundle file"
"$CLI" apply-reset u0.key dnp.0.bin >/dev/null
"$CLI" client "$SOCK" encrypt payload.bin b3.bin >/dev/null
[ "$("$CLI" decrypt u0.key b3.bin)" = "the midnight broadcast" ] \
  || fail "caught-up key cannot decrypt after the daemon's new-period"
"$CLI" client "$SOCK" status | grep -q 'period: 1' || fail "period not advanced"

# Malformed requests get errors, not a dead daemon.
if "$CLI" client "$SOCK" revoke 999 >/dev/null 2>&1; then
  fail "revoking an unknown user exited 0"
fi
"$CLI" client "$SOCK" ping >/dev/null || fail "daemon down after a bad request"

# ---- GET /metrics on the loopback port ----------------------------------------
PORT=$(sed -n 's|.*http://127.0.0.1:\([0-9]*\)/metrics.*|\1|p' dfkyd.log)
[ -n "$PORT" ] || fail "daemon never announced a metrics port"

# A scraper that connects and sends nothing must not wedge the daemon:
# requests on the unix socket keep being served while it stalls.
exec 4<>"/dev/tcp/127.0.0.1/$PORT"
"$CLI" client "$SOCK" ping >/dev/null \
  || fail "daemon wedged by a stalled metrics connection"
exec 4<&- 4>&-

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 > metrics.txt
exec 3<&- 3>&-
grep -q '200 OK' metrics.txt || fail "metrics endpoint did not answer 200"
if grep -q 'dfkyd_requests_total' metrics.txt; then
  # The commit counters carry a shard label even on a plain store.
  grep -Eq 'dfkyd_commit_batches_total(\{[^}]*\})? [1-9]' metrics.txt \
    || fail "metrics: no commit batches counted"
else
  grep -q 'compiled out' metrics.txt || fail "metrics body unrecognizable"
fi

# ---- scraper flood: the connection cap sheds, the daemon keeps serving --------
# 40 scrapers that connect and go silent: the reactor holds the first 32
# (the default cap), rejects the rest outright, and never spawns a thread
# or stalls the request path for any of them.
FLOOD_FDS=()
for _ in $(seq 1 40); do
  if exec {mfd}<>"/dev/tcp/127.0.0.1/$PORT"; then
    FLOOD_FDS+=("$mfd")
  fi
done
[ "${#FLOOD_FDS[@]}" -ge 40 ] || fail "scraper flood: not all connects landed"
"$CLI" client "$SOCK" ping >/dev/null \
  || fail "daemon wedged by a metrics scraper flood"
for mfd in "${FLOOD_FDS[@]}"; do
  exec {mfd}<&- || true
done
# With the flood gone the slots free up and a real scrape works again; a
# rejected-over-cap connection must have been counted.
flood_ok=0
for _ in $(seq 1 100); do
  if exec 3<>"/dev/tcp/127.0.0.1/$PORT"; then
    printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
    cat <&3 > flood_metrics.txt || true
    exec 3<&- 3>&-
    grep -q '200 OK' flood_metrics.txt && { flood_ok=1; break; }
  fi
  sleep 0.05
done
[ "$flood_ok" = 1 ] || fail "metrics unreachable after the scraper flood"
if grep -q 'dfkyd_requests_total' flood_metrics.txt; then
  grep -Eq 'dfkyd_metrics_rejected_total(\{[^}]*\})? [1-9]' flood_metrics.txt \
    || fail "scraper flood: no over-cap rejections counted"
fi

# ---- health: a machine-checkable verdict, exit status to match ----------------
"$CLI" client "$SOCK" health > health.txt \
  || fail "healthy daemon's health verb exited non-zero"
grep -q '^verdict: ok' health.txt \
  || fail "health verdict wrong: $(cat health.txt)"

# ---- GET /trace serves the same JSONL the `trace` verb returns ----------------
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'GET /trace HTTP/1.0\r\n\r\n' >&3
cat <&3 > trace_http.txt
exec 3<&- 3>&-
grep -q '200 OK' trace_http.txt || fail "trace endpoint did not answer 200"
OBS_ON=0
if grep -q 'trace_meta' trace_http.txt; then
  OBS_ON=1
  grep -q '"kind":"trace"' trace_http.txt \
    || fail "GET /trace carries no trace records"
  "$CLI" client "$SOCK" trace > trace_cli.txt || fail "trace verb failed"
  grep -q '"verb":"add-user"' trace_cli.txt \
    || fail "trace verb output misses the adds we just ran"
else
  grep -q 'compiled out' trace_http.txt || fail "/trace body unrecognizable"
fi

# ---- dfky_top renders one frame from /metrics + /trace ------------------------
if [ -n "$TOP" ] && [ "$OBS_ON" = 1 ]; then
  "$TOP" --port "$PORT" --iterations 1 > top.txt \
    || fail "dfky_top exited nonzero"
  grep -q '^dfkyd  role=primary' top.txt \
    || fail "dfky_top header unrecognizable: $(head -1 top.txt)"
  grep -q 'add-user' top.txt || fail "dfky_top table misses add-user"
fi

# ---- streaming feed: live subscribe, replay catch-up, the storm client --------
# A held connection upgraded with `subscribe` gets every committed
# new-period pushed as one `bcast` line; --count 2 exits after two frames.
"$CLI" client "$SOCK" subscribe --count 2 > sublog.txt &
UPID=$!
for _ in $(seq 1 200); do
  grep -q 'subscribed period=' sublog.txt 2>/dev/null && break
  kill -0 "$UPID" 2>/dev/null || fail "subscriber died before the ack: $(cat sublog.txt)"
  sleep 0.05
done
grep -q 'subscribed period=' sublog.txt || fail "subscribe never acknowledged"
"$CLI" client "$SOCK" new-period >/dev/null
"$CLI" client "$SOCK" new-period >/dev/null
rc=0; wait "$UPID" || rc=$?
UPID=""
[ "$rc" = 0 ] || fail "subscriber exited $rc: $(cat sublog.txt)"
[ "$(grep -c '^bcast new-period ' sublog.txt)" = 2 ] \
  || fail "subscriber saw the wrong frames: $(cat sublog.txt)"

# Catch-up storm: 200 receivers park on the CURRENT period, two more
# epochs commit, then all 200 subscribe from the stale period at once and
# must replay the gap before going live. recovered= must equal the herd.
"$CLI" client "$SOCK" storm --receivers 200 --periods 2 --workers 4 \
  > storm.txt || fail "storm client failed: $(cat storm.txt)"
grep -q 'recovered=200' storm.txt \
  || fail "storm left receivers behind: $(cat storm.txt)"
grep -q ' failed=0' storm.txt || fail "storm receivers failed: $(cat storm.txt)"

if [ "$OBS_ON" = 1 ]; then
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  cat <&3 > metrics_feed.txt
  exec 3<&- 3>&-
  grep -Eq 'dfkyd_feed_frames_total [1-9]' metrics_feed.txt \
    || fail "metrics: no feed frames counted after the broadcasts"
  grep -Eq 'dfkyd_feed_replayed_total [1-9]' metrics_feed.txt \
    || fail "metrics: no feed replays counted after the storm"
fi
FEED_PERIOD=$("$CLI" client "$SOCK" status | sed -n 's/^period: //p')

# ---- SIGTERM: drain, final snapshot, release the lock, exit 0 -----------------
kill -TERM "$PID"
rc=0; wait "$PID" || rc=$?
PID=""
[ "$rc" = 0 ] || fail "SIGTERM shutdown exited $rc"
grep -q 'shutdown complete' dfkyd.log || fail "no shutdown message"
[ ! -e "$SOCK" ] || fail "socket file left behind"
"$CLI" status store.d >/dev/null || fail "store still locked after shutdown"
if [ -n "$FSCK" ]; then
  "$FSCK" store.d >/dev/null || fail "fsck dirty after graceful shutdown"
fi

# ---- SIGKILL mid-load: every acked mutation survives the restart --------------
start_daemon
users_before=$("$CLI" client "$SOCK" status | sed -n 's/^active: //p')
: > acked.txt
pids=()
for i in $(seq 1 16); do
  ( "$CLI" client "$SOCK" add "k$i.key" >/dev/null 2>&1 && echo "$i" >> acked.txt ) &
  pids+=($!)
done
sleep 0.2
kill -9 "$PID"
# The restart takes over the dead daemon's lock by noticing its pid is
# gone; poll the pid out of existence first or the takeover can race the
# kernel still tearing the process down.
for _ in $(seq 1 100); do kill -0 "$PID" 2>/dev/null || break; sleep 0.05; done
PID=""
for p in "${pids[@]}"; do wait "$p" || true; done
acked=$(wc -l < acked.txt)

start_daemon   # open() repairs any torn batch tail under the lock
users_after=$("$CLI" client "$SOCK" status | sed -n 's/^active: //p')
recovered=$((users_after - users_before))
[ "$recovered" -ge "$acked" ] \
  || fail "SIGKILL lost acked mutations: acked $acked, recovered $recovered"

# `shutdown` over the socket behaves like SIGTERM.
"$CLI" client "$SOCK" shutdown >/dev/null || fail "shutdown request failed"
rc=0; wait "$PID" || rc=$?
PID=""
[ "$rc" = 0 ] || fail "socket shutdown exited $rc"
if [ -n "$FSCK" ]; then
  "$FSCK" store.d >/dev/null || fail "fsck dirty after crash recovery cycle"
fi
"$CLI" status store.d | grep -q "period: *$FEED_PERIOD" \
  || fail "state lost across restarts"

# ---- slow-request capture: a stalled fsync lands in the slow log --------------
# DFKYD_TEST_FSYNC_STALL_US delays every fsync inside the daemon; with the
# slow threshold well below the stall, the mutation must surface as a
# slow_trace that attributes the time to its fsync span (DESIGN.md 13.3).
if [ "$OBS_ON" = 1 ]; then
  "$CLI" init slow.d --v 4 --group test128 --store >/dev/null
  : > slow.log
  DFKYD_TEST_FSYNC_STALL_US=20000 "$DFKYD" slow.d --socket "$WORK/slow.sock" \
    --trace-slow-us 5000 >> slow.log 2>&1 &
  PID=$!
  for _ in $(seq 1 200); do
    grep -q 'dfkyd: ready' slow.log 2>/dev/null && break
    kill -0 "$PID" 2>/dev/null || fail "stalled daemon died: $(cat slow.log)"
    sleep 0.05
  done
  grep -q 'dfkyd: ready' slow.log || fail "stalled daemon never ready"
  grep -q 'TEST fsync stall armed' slow.log || fail "fsync stall not armed"
  "$CLI" client "$WORK/slow.sock" add slow_u.key >/dev/null \
    || fail "add against the stalled daemon failed"
  "$CLI" client "$WORK/slow.sock" trace > slow_trace.txt \
    || fail "trace verb failed on the stalled daemon"
  grep -q '"kind":"slow_trace".*"verb":"add-user".*"span":"fsync"' \
    slow_trace.txt || fail "stalled add-user missing from the slow log"
  "$CLI" client "$WORK/slow.sock" shutdown >/dev/null \
    || fail "stalled daemon shutdown failed"
  rc=0; wait "$PID" || rc=$?
  PID=""
  [ "$rc" = 0 ] || fail "stalled daemon shutdown exited $rc"
fi

# ---- fd exhaustion: EMFILE sheds new connections, never kills the daemon ------
# The daemon runs with RLIMIT_NOFILE clamped to 64; a client herd holds
# more connections than that leaves room for. accept() hitting EMFILE must
# shed (reserve-fd accept-then-close with `err busy`, log once, back off) —
# not exit, not spin — and serve normally once the herd drains.
"$CLI" init fe.d --v 4 --group test128 --store >/dev/null
FESOCK="$WORK/fe.sock"
: > fe.log
( ulimit -n 64 && exec "$DFKYD" fe.d --socket "$FESOCK" ) >> fe.log 2>&1 &
PID=$!
for _ in $(seq 1 200); do
  grep -q 'dfkyd: ready' fe.log 2>/dev/null && break
  kill -0 "$PID" 2>/dev/null || fail "clamped daemon died at startup: $(cat fe.log)"
  sleep 0.05
done
grep -q 'dfkyd: ready' fe.log || fail "clamped daemon never ready"
"$CLI" client "$FESOCK" soak --idle 60 --active 0 --hold-ms 2000 \
  > fe_soak.txt 2>&1 &
SOAK=$!
for _ in $(seq 1 200); do
  grep -q 'out of file descriptors' fe.log 2>/dev/null && break
  sleep 0.05
done
grep -q 'out of file descriptors' fe.log \
  || fail "EMFILE never reported: $(tail -5 fe.log)"
kill -0 "$PID" 2>/dev/null || fail "daemon died under fd exhaustion"
wait "$SOAK" || true
"$CLI" client "$FESOCK" ping >/dev/null \
  || fail "daemon not serving after the fd-exhaustion herd drained"
"$CLI" client "$FESOCK" shutdown >/dev/null \
  || fail "clamped daemon shutdown failed"
rc=0; wait "$PID" || rc=$?
PID=""
[ "$rc" = 0 ] || fail "clamped daemon shutdown exited $rc"

# ---- 1k idle connections plus active pipelined load through the reactor -------
# The herd scales with the hard fd limit (each side needs IDLE fds plus
# slack), capped at the 1000 the reactor must hold without breaking a sweat.
HARD=$(ulimit -Hn); [ "$HARD" = unlimited ] && HARD=1048576
IDLE=1000
[ $((HARD / 2 - 100)) -lt "$IDLE" ] && IDLE=$((HARD / 2 - 100))
if [ "$IDLE" -ge 100 ]; then
  "$CLI" init soakst.d --v 4 --group test128 --store >/dev/null
  SKSOCK="$WORK/soak.sock"
  : > soakd.log
  "$DFKYD" soakst.d --socket "$SKSOCK" --metrics-port 0 \
    --idle-timeout-ms 60000 --workers 8 >> soakd.log 2>&1 &
  PID=$!
  for _ in $(seq 1 200); do
    grep -q 'dfkyd: ready' soakd.log 2>/dev/null && break
    kill -0 "$PID" 2>/dev/null || fail "soak daemon died: $(cat soakd.log)"
    sleep 0.05
  done
  grep -q 'dfkyd: ready' soakd.log || fail "soak daemon never ready"
  SKPORT=$(sed -n 's|.*http://127.0.0.1:\([0-9]*\)/metrics.*|\1|p' soakd.log)
  "$CLI" client "$SKSOCK" soak --idle "$IDLE" --active 8 --per 50 \
    --hold-ms 3000 > soak_out.txt &
  SOAK=$!
  # While the herd is held, the conns gauge on /metrics must see it.
  if [ "$OBS_ON" = 1 ] && [ -n "$SKPORT" ]; then
    seen_conns=0
    for _ in $(seq 1 100); do
      if exec 3<>"/dev/tcp/127.0.0.1/$SKPORT"; then
        printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
        cat <&3 > soak_metrics.txt || true
        exec 3<&- 3>&-
        conns=$(sed -n 's/^dfkyd_conns \([0-9]*\)$/\1/p' soak_metrics.txt)
        [ -n "$conns" ] && [ "$conns" -ge "$IDLE" ] && { seen_conns=1; break; }
      fi
      sleep 0.05
    done
    [ "$seen_conns" = 1 ] \
      || fail "dfkyd_conns never reached the $IDLE-conn herd"
  fi
  wait "$SOAK" || fail "idle-herd soak reported errors: $(cat soak_out.txt)"
  grep -q "soak: $IDLE idle conn(s) held (0 refused), 8 worker(s) x 50" \
    soak_out.txt || fail "soak summary wrong: $(cat soak_out.txt)"
  grep -q '400 answered, 0 error(s)' soak_out.txt \
    || fail "soak lost responses: $(cat soak_out.txt)"
  "$CLI" client "$SKSOCK" shutdown >/dev/null || fail "soak shutdown failed"
  rc=0; wait "$PID" || rc=$?
  PID=""
  [ "$rc" = 0 ] || fail "soak daemon shutdown exited $rc"
fi

# =========================== sharded deployments ===============================
SSOCK="$WORK/sharded.sock"

start_sharded() {
  : > sharded.log
  "$DFKYD" shards.d --socket "$SSOCK" >> sharded.log 2>&1 &
  SPID=$!
  for _ in $(seq 1 200); do
    grep -q 'dfkyd: ready' sharded.log 2>/dev/null && return 0
    kill -0 "$SPID" 2>/dev/null \
      || fail "sharded daemon died at startup: $(cat sharded.log)"
    sleep 0.05
  done
  fail "sharded daemon never printed 'dfkyd: ready'"
}

sharded_field() {  # sharded_field <field>: read one field off client status
  "$CLI" client "$SSOCK" status | sed -n "s/^$1: //p"
}

"$CLI" init shards.d --v 4 --group test128 --store --shards 3 \
  | grep -q '(3 shards)' || fail "init --shards 3 did not report 3 shards"
for i in 0 1 2; do
  [ -d "shards.d/shard.$i" ] || fail "shard.$i directory missing"
done
"$CLI" status shards.d | grep -q 'shards: *3' \
  || fail "offline status does not recognize the shard set"

# ---- one locked shard aborts the whole-daemon startup (all-or-nothing) --------
"$DFKYD" shards.d/shard.1 --socket "$WORK/holder.sock" > holder.log 2>&1 &
HOLDER=$!
for _ in $(seq 1 200); do
  grep -q 'dfkyd: ready' holder.log 2>/dev/null && break
  sleep 0.05
done
grep -q 'dfkyd: ready' holder.log || fail "plain daemon on shard.1 never ready"
if "$DFKYD" shards.d --socket "$SSOCK" > sharded.log 2>&1; then
  fail "sharded dfkyd started despite shard.1 being locked"
fi
grep -q 'is locked by pid' sharded.log \
  || fail "sharded lock-out error unclear: $(cat sharded.log)"
kill -TERM "$HOLDER"; wait "$HOLDER" || fail "shard.1 holder exited nonzero"

# The failed attempt must have unwound the locks it took on shard.0/shard.2.
start_sharded
grep -q 'shard set with 3 shards' sharded.log \
  || fail "daemon did not announce the shard set"
[ "$(sharded_field shards)" = 3 ] || fail "client status: wrong shard count"
[ "$(sharded_field periods)" = "0,0,0" ] || fail "shards not all at period 0"

# ---- round-robin adds land on all shards, ids name their shard ----------------
for i in $(seq 0 5); do
  "$CLI" client "$SSOCK" add "s$i.key" >/dev/null || fail "sharded add failed"
done
[ "$(sharded_field active)" = 6 ] || fail "not 6 active users on the shard set"

# ---- pipelined client: out-of-order completion, in-order output ---------------
{ for _ in $(seq 1 4); do printf 'ping\nstatus\n'; done; } > pipe_in.txt
"$CLI" client "$SSOCK" pipeline --window 4 < pipe_in.txt > pipe_out.txt \
  || fail "pipelined client exited nonzero"
grep -q 'pipelined 8 request(s), window 4, 0 error(s)' pipe_out.txt \
  || fail "pipeline summary wrong: $(tail -1 pipe_out.txt)"
idx=$(sed -n 's/^\[\([0-9]*\)\].*/\1/p' pipe_out.txt | tr '\n' ' ')
[ "$idx" = "0 1 2 3 4 5 6 7 " ] \
  || fail "pipelined responses out of input order: $idx"
# An err reply is reported per-request and in the exit status, without
# tearing down the rest of the window.
if printf 'ping\nbogus\nping\n' \
    | "$CLI" client "$SSOCK" pipeline --window 2 > pipe_err.txt; then
  fail "pipeline with an err reply exited 0"
fi
grep -q 'pipelined 3 request(s), window 2, 1 error(s)' pipe_err.txt \
  || fail "pipeline error accounting wrong: $(tail -1 pipe_err.txt)"

# ---- shard-targeted encrypt and the cross-shard new-period --------------------
SVICTIM=$("$CLI" client "$SSOCK" add svictim.key \
  | sed -n 's/^added user #\([0-9]*\).*/\1/p')
[ -n "$SVICTIM" ] || fail "sharded add did not report the user id"
VSHARD=$((SVICTIM % 3))
"$CLI" client "$SSOCK" encrypt payload.bin sb1.bin --shard "$VSHARD" >/dev/null
[ "$("$CLI" decrypt svictim.key sb1.bin)" = "the midnight broadcast" ] \
  || fail "sharded key cannot open its own shard's broadcast"
"$CLI" client "$SSOCK" new-period --reset-out snp >/dev/null
for i in 0 1 2; do
  [ -f "snp.$i.bin" ] || fail "cross-shard new-period: bundle $i missing"
done
[ "$(sharded_field periods)" = "1,1,1" ] \
  || fail "new-period left shards on different epochs"
"$CLI" apply-reset svictim.key snp.$VSHARD.bin >/dev/null \
  || fail "shard bundle does not apply to its shard's key"
"$CLI" client "$SSOCK" encrypt payload.bin sb2.bin --shard "$VSHARD" >/dev/null
[ "$("$CLI" decrypt svictim.key sb2.bin)" = "the midnight broadcast" ] \
  || fail "caught-up sharded key cannot decrypt after the epoch barrier"

# ---- SIGKILL mid cross-shard new-period: one consistent epoch -----------------
users_before=$(sharded_field active)
( while "$CLI" client "$SSOCK" new-period >/dev/null 2>&1; do :; done ) &
NP_LOOP=$!
sleep 0.3
kill -9 "$SPID"
# As above: let the killed daemon's pid disappear before the lock takeover.
for _ in $(seq 1 100); do kill -0 "$SPID" 2>/dev/null || break; sleep 0.05; done
SPID=""
wait "$NP_LOOP" 2>/dev/null || true

start_sharded
periods=$(sharded_field periods)
[ "$(echo "$periods" | tr ',' '\n' | sort -u | wc -l)" = 1 ] \
  || fail "SIGKILL mid new-period left mixed epochs: $periods"
[ "$(sharded_field active)" = "$users_before" ] \
  || fail "SIGKILL mid new-period lost acked users"

"$CLI" client "$SSOCK" shutdown >/dev/null || fail "sharded shutdown failed"
rc=0; wait "$SPID" || rc=$?
SPID=""
[ "$rc" = 0 ] || fail "sharded socket shutdown exited $rc"
if [ -n "$FSCK" ]; then
  "$FSCK" shards.d > fsck_shards.txt || fail "fsck dirty on the shard set"
  grep -q 'shard set with 3 shard(s)' fsck_shards.txt \
    || fail "fsck did not recognize the shard set"
  grep -q 'all shards at period' fsck_shards.txt \
    || fail "fsck sees an epoch spread after recovery"
fi

# ========================== replicated deployments =============================
# A primary/follower pair over WAL shipping (DESIGN.md Sect. 12): the
# follower serves reads and rejects writes; an ack from the primary means
# the record is durable on the follower too, so SIGKILLing the primary and
# promoting the follower loses nothing. Clients connect through a socket
# symlink; repointing it plus the default connect retry masks the gap.
PSOCK_REAL="$WORK/repl_primary.sock"
FSOCK="$WORK/repl_follower.sock"
CSOCK="$WORK/cluster.sock"

"$CLI" init repl_primary.d --v 4 --group test128 --store --shards 2 >/dev/null
# A replica bootstraps from a byte-for-byte backup of the primary (shares
# the WAL HMAC keys, so shipped frames chain-verify).
cp -r repl_primary.d repl_follower.d

: > follower.log
"$DFKYD" repl_follower.d --socket "$FSOCK" --follower >> follower.log 2>&1 &
FPID=$!
for _ in $(seq 1 200); do
  grep -q 'dfkyd: ready' follower.log 2>/dev/null && break
  kill -0 "$FPID" 2>/dev/null \
    || fail "follower died at startup: $(cat follower.log)"
  sleep 0.05
done
grep -q 'dfkyd: ready' follower.log || fail "follower never ready"

: > rprimary.log
"$DFKYD" repl_primary.d --socket "$PSOCK_REAL" --replicate-to "$FSOCK" \
  >> rprimary.log 2>&1 &
RPID=$!
for _ in $(seq 1 200); do
  grep -q 'dfkyd: ready' rprimary.log 2>/dev/null && break
  kill -0 "$RPID" 2>/dev/null \
    || fail "replicating primary died at startup: $(cat rprimary.log)"
  sleep 0.05
done
grep -q 'dfkyd: ready' rprimary.log || fail "replicating primary never ready"
ln -s "$PSOCK_REAL" "$CSOCK"

# ---- the follower is a read-only replica --------------------------------------
"$CLI" client "$FSOCK" status | grep -q 'role: follower' \
  || fail "follower does not report role follower"
if "$CLI" client "$FSOCK" add nope.key >/dev/null 2>&1; then
  fail "follower accepted a mutation"
fi

# ---- every primary ack is already applied on the follower ---------------------
for i in $(seq 1 6); do
  "$CLI" client "$CSOCK" add "r$i.key" >/dev/null || fail "replicated add failed"
done
# No polling: the primary's ack gates on the follower's ack, so the
# follower must show the full history the instant our add returns.
"$CLI" client "$FSOCK" status | grep -q 'active: 6' \
  || fail "follower missing acked users"
# ...and it serves encrypt: id 0 landed on shard 0, its key opens the
# follower's broadcast.
"$CLI" client "$FSOCK" encrypt payload.bin fb1.bin --shard 0 >/dev/null \
  || fail "follower refused encrypt"
[ "$("$CLI" decrypt r1.key fb1.bin)" = "the midnight broadcast" ] \
  || fail "follower-encrypted content does not open"
# The cross-shard barrier replicates too.
"$CLI" client "$CSOCK" new-period --reset-out rnp >/dev/null
"$CLI" client "$FSOCK" status | grep -q 'period: 1' \
  || fail "follower epoch lags an acked new-period"
# The replicating primary counts its follower live and fully caught up.
"$CLI" client "$CSOCK" health > rp_health.txt \
  || fail "replicating primary health non-ok: $(cat rp_health.txt)"
grep -q '^verdict: ok' rp_health.txt \
  || fail "replicating primary verdict: $(cat rp_health.txt)"
grep -q '^followers_live: 1/1' rp_health.txt \
  || fail "follower not counted live: $(cat rp_health.txt)"

# ---- SIGKILL the primary mid-load; fsck the pair at the quiet point -----------
: > racked.txt
pids=()
for i in $(seq 1 12); do
  ( "$CLI" client "$CSOCK" add "ra$i.key" >/dev/null 2>&1 \
      && echo "$i" >> racked.txt ) &
  pids+=($!)
done
sleep 0.2
kill -9 "$RPID"
RPID=""
for p in "${pids[@]}"; do wait "$p" || true; done
racked=$(wc -l < racked.txt)
if [ -n "$FSCK" ]; then
  # The dead primary may carry a durable-but-unacked tail; that is "agree,
  # one lags", never divergence.
  "$FSCK" --replica repl_primary.d repl_follower.d > fsck_replica.txt \
    || fail "fsck --replica flagged the pair: $(cat fsck_replica.txt)"
  grep -q 'replicas agree on every shard' fsck_replica.txt \
    || fail "fsck --replica output unclear: $(cat fsck_replica.txt)"
fi

# ---- the survivor self-reports degraded until it is promoted ------------------
# `client health` mirrors the verdict in its exit status, so a monitoring
# script can gate a promote decision on it without parsing anything.
rc=0; "$CLI" client "$FSOCK" health > surv_health.txt || rc=$?
[ "$rc" = 1 ] || fail "survivor health exited $rc (degraded must exit 1)"
grep -q '^verdict: degraded' surv_health.txt \
  || fail "survivor not degraded: $(cat surv_health.txt)"
grep -q 'follower-read-only' surv_health.txt \
  || fail "survivor missing the read-only reason: $(cat surv_health.txt)"

# ---- promote under a live retrying client -------------------------------------
# The client starts while nothing is listening; default retry (~15s budget)
# must carry it across promote + symlink swap.
( "$CLI" client "$CSOCK" add failover.key >/dev/null 2>&1 \
    && : > failover.ok ) &
FAILOVER_CLIENT=$!
"$CLI" client "$FSOCK" promote | grep -q 'promoted to primary' \
  || fail "promote did not report primary"
ln -sfn "$FSOCK" "$CSOCK"
wait "$FAILOVER_CLIENT" || fail "retrying client died during failover"
[ -f failover.ok ] || fail "failover client add never acked"
[ -s failover.key ] || fail "failover key file missing"

# ---- the promoted follower serves the full acked history ----------------------
"$CLI" client "$CSOCK" status | grep -q 'role: primary' \
  || fail "promoted follower still claims follower role"
"$CLI" client "$CSOCK" health > prom_health.txt \
  || fail "promoted survivor health non-ok: $(cat prom_health.txt)"
grep -q '^verdict: ok' prom_health.txt \
  || fail "promoted survivor verdict: $(cat prom_health.txt)"
active=$("$CLI" client "$CSOCK" status | sed -n 's/^active: //p')
[ "$active" -ge $((6 + racked + 1)) ] \
  || fail "promotion lost acked users: acked $((6 + racked + 1)), has $active"
# ...and issues working keys for new mutations.
PVICTIM=$("$CLI" client "$CSOCK" add promoted.key \
  | sed -n 's/^added user #\([0-9]*\).*/\1/p')
[ -n "$PVICTIM" ] || fail "promoted add did not report the user id"
"$CLI" client "$CSOCK" encrypt payload.bin pb1.bin --shard $((PVICTIM % 2)) \
  >/dev/null
[ "$("$CLI" decrypt promoted.key pb1.bin)" = "the midnight broadcast" ] \
  || fail "promoted follower issues dead keys"
"$CLI" client "$CSOCK" new-period --reset-out pnp >/dev/null \
  || fail "promoted follower cannot run the epoch barrier"

"$CLI" client "$FSOCK" shutdown >/dev/null || fail "promoted shutdown failed"
rc=0; wait "$FPID" || rc=$?
FPID=""
[ "$rc" = 0 ] || fail "promoted shutdown exited $rc"
if [ -n "$FSCK" ]; then
  # The promoted stream moved on; the dead primary either lags it (exit 0)
  # or forked on a durable-but-unshipped tail (exit 1 — the detection this
  # mode exists for). Only an unreadable store (exit 2) is a failure here.
  rc=0; "$FSCK" --replica repl_primary.d repl_follower.d > fsck_final.txt \
    || rc=$?
  [ "$rc" -le 1 ] \
    || fail "fsck --replica unreadable after failover: $(cat fsck_final.txt)"
fi

# ===================== self-healing cluster (--auto-failover) ==================
# Three symmetric nodes (DESIGN.md Sect. 14): every node lists every other
# as a --replicate-to peer and runs --auto-failover. The primary acks only
# under a majority-held lease; followers watchdog the primary's heartbeats
# and elect + promote the most-caught-up survivor entirely on their own.
ABSOCK="$WORK/fo_a.sock"
BBSOCK="$WORK/fo_b.sock"
CBSOCK="$WORK/fo_c.sock"
FOSOCK="$WORK/fo_cluster.sock"
# Generous wall-clock timings for a loaded CI box: 2s ack lease, 100ms
# heartbeats, 3s election timeout, 100-500ms election delay.
FT="2000,100,3000,100,500"

# lease > hb-timeout would let a partitioned primary keep acking after its
# successor is elected; the flag parser must refuse the combination.
if "$DFKYD" fo_a.d --socket "$ABSOCK" --replicate-to "$BBSOCK" \
    --auto-failover --failover-timings 4000,100,3000,100,500 2>ft_err.txt; then
  fail "dfkyd accepted a lease longer than the election timeout"
fi
grep -q 'must not exceed' ft_err.txt \
  || fail "lease/timeout validation error unclear: $(cat ft_err.txt)"
if "$DFKYD" fo_a.d --socket "$ABSOCK" --auto-failover 2>af_err.txt; then
  fail "dfkyd accepted --auto-failover without peers"
fi

"$CLI" init fo_a.d --v 4 --group test128 --store --shards 2 >/dev/null
cp -r fo_a.d fo_b.d
cp -r fo_a.d fo_c.d

# Starts one cluster node and leaves its pid in FO_PID (a command
# substitution would orphan the daemon into a subshell and break `wait`).
start_fo_node() {  # start_fo_node <name> <dir> <socket> <peer1> <peer2> [role]
  local log="$1.log" dir="$2" sock="$3" p1="$4" p2="$5" role="${6:-}"
  : > "$log"
  # shellcheck disable=SC2086
  "$DFKYD" "$dir" --socket "$sock" --replicate-to "$p1" --replicate-to "$p2" \
    --auto-failover --failover-timings "$FT" $role >> "$log" 2>&1 &
  FO_PID=$!
  for _ in $(seq 1 200); do
    grep -q 'dfkyd: ready' "$log" 2>/dev/null && return 0
    kill -0 "$FO_PID" 2>/dev/null || fail "$1 died at startup: $(cat "$log")"
    sleep 0.05
  done
  fail "$1 never printed 'dfkyd: ready'"
}

start_fo_node fo_a fo_a.d "$ABSOCK" "$BBSOCK" "$CBSOCK"; APID=$FO_PID
start_fo_node fo_b fo_b.d "$BBSOCK" "$ABSOCK" "$CBSOCK" --follower; BPID=$FO_PID
start_fo_node fo_c fo_c.d "$CBSOCK" "$ABSOCK" "$BBSOCK" --follower; CPID=$FO_PID
grep -q 'auto-failover watchdog armed' fo_b.log \
  || fail "fo_b watchdog not armed: $(cat fo_b.log)"
grep -q 'auto-failover watchdog armed' fo_c.log \
  || fail "fo_c watchdog not armed: $(cat fo_c.log)"
ln -sfn "$ABSOCK" "$FOSOCK"

# ---- term surfaces on every diagnostics channel -------------------------------
"$CLI" client "$ABSOCK" repl-status > fo_repl.txt \
  || fail "repl-status failed on the armed primary"
grep -q '^term: 0' fo_repl.txt || fail "repl-status missing term: $(cat fo_repl.txt)"
# The verdict may transiently be degraded while the freshly started senders
# connect (health exits 1 then, which pipefail would misread as "no term
# line"), so capture the report first and grep it separately.
rc=0; "$CLI" client "$ABSOCK" health > fo_health0.txt || rc=$?
[ "$rc" -le 1 ] || fail "health verb failed on the armed primary"
grep -q '^term: 0' fo_health0.txt || fail "health does not surface the term"

# ---- promote/demote are idempotent with a distinct exit ------------------------
rc=0; "$CLI" client "$ABSOCK" promote > promote_again.txt || rc=$?
[ "$rc" = 3 ] || fail "re-promoting the primary exited $rc (want 3)"
grep -q 'already primary' promote_again.txt \
  || fail "re-promote output unclear: $(cat promote_again.txt)"
rc=0; "$CLI" client "$CBSOCK" demote > demote_again.txt || rc=$?
[ "$rc" = 3 ] || fail "re-demoting a follower exited $rc (want 3)"
grep -q 'already a follower' demote_again.txt \
  || fail "re-demote output unclear: $(cat demote_again.txt)"

# ---- acked writes land on the majority before the ack -------------------------
for i in $(seq 1 5); do
  "$CLI" client "$FOSOCK" add "fo$i.key" >/dev/null \
    || fail "armed add $i failed"
done
"$CLI" client "$BBSOCK" status | grep -q 'active: 5' \
  || fail "fo_b missing acked users the instant the ack returned"
"$CLI" client "$CBSOCK" status | grep -q 'active: 5' \
  || fail "fo_c missing acked users the instant the ack returned"

# ---- SIGKILL the primary: the cluster heals itself ----------------------------
( "$CLI" client "$FOSOCK" add healed.key >/dev/null 2>&1 \
    && : > healed.ok ) &
HEAL_CLIENT=$!
kill -9 "$APID"
APID=""
WSOCK=""; WLOG=""; LSOCK=""
for _ in $(seq 1 400); do
  if grep -q 'auto-failover: promoted' fo_b.log 2>/dev/null; then
    WSOCK="$BBSOCK"; WLOG=fo_b.log; LSOCK="$CBSOCK"; break
  fi
  if grep -q 'auto-failover: promoted' fo_c.log 2>/dev/null; then
    WSOCK="$CBSOCK"; WLOG=fo_c.log; LSOCK="$BBSOCK"; break
  fi
  sleep 0.05
done
[ -n "$WSOCK" ] || fail "no follower auto-promoted after the SIGKILL"
ln -sfn "$WSOCK" "$FOSOCK"
wait "$HEAL_CLIENT" || fail "retrying client died across the auto-failover"
[ -f healed.ok ] || fail "client add never acked across the auto-failover"
"$CLI" client "$WSOCK" status | grep -q 'role: primary' \
  || fail "auto-promoted node does not serve as primary"
"$CLI" client "$WSOCK" repl-status | grep -Eq '^term: [1-9]' \
  || fail "auto-promoted node still on term 0"
"$CLI" client "$WSOCK" status | grep -q 'active: 6' \
  || fail "auto-promoted node lost acked users"
# The winner's health turns degraded once its sender gives up on the dead
# ex-primary's socket: the auto-heal is visible to monitoring, not silent.
for _ in $(seq 1 200); do
  rc=0; "$CLI" client "$WSOCK" health > fo_health.txt || rc=$?
  [ "$rc" = 1 ] && grep -q '^verdict: degraded' fo_health.txt && break
  sleep 0.05
done
grep -q '^verdict: degraded' fo_health.txt \
  || fail "winner never reported degraded with fo_a dead: $(cat fo_health.txt)"
grep -q 'follower-dead:' fo_health.txt \
  || fail "winner's degraded verdict lacks the follower-dead reason: $(cat fo_health.txt)"
# The surviving follower tails the new primary's stream.
for _ in $(seq 1 100); do
  "$CLI" client "$LSOCK" status | grep -q 'active: 6' && break
  sleep 0.05
done
"$CLI" client "$LSOCK" status | grep -q 'active: 6' \
  || fail "surviving follower never converged on the new primary"

# ---- a revived ex-primary is fenced at startup and re-seeds online ------------
# The supervisor restarts the crashed node with its ORIGINAL primary command
# line; the startup probe hears the successor's higher term and starts
# fenced as a follower instead of serving a single stale write.
start_fo_node fo_a fo_a.d "$ABSOCK" "$BBSOCK" "$CBSOCK"; APID=$FO_PID
grep -q 'starting fenced until re-seeded' fo_a.log \
  || fail "revived ex-primary did not fence at startup: $(cat fo_a.log)"
if "$CLI" client "$ABSOCK" add zombie.key >/dev/null 2>&1; then
  fail "a fenced ex-primary acked a write"
fi
for _ in $(seq 1 200); do
  "$CLI" client "$ABSOCK" status | grep -q 'active: 6' && break
  sleep 0.05
done
"$CLI" client "$ABSOCK" status | grep -q 'active: 6' \
  || fail "revived ex-primary never re-seeded from the successor"
"$CLI" client "$ABSOCK" status | grep -q 'role: follower' \
  || fail "revived ex-primary still claims the primary role"
# ...and with every follower re-seeded and live, the winner is ok again:
# degraded -> ok across the whole heal.
for _ in $(seq 1 200); do
  if "$CLI" client "$WSOCK" health > fo_health2.txt 2>&1; then break; fi
  sleep 0.05
done
grep -q '^verdict: ok' fo_health2.txt \
  || fail "winner never recovered to ok after the re-seed: $(cat fo_health2.txt)"

# ---- byte-level agreement on the quiesced cluster, then clean exits -----------
if [ -n "$FSCK" ]; then
  W_DIR=fo_b.d; [ "$WSOCK" = "$CBSOCK" ] && W_DIR=fo_c.d
  "$FSCK" --replica "$W_DIR" fo_a.d > fsck_fo.txt \
    || fail "fsck --replica: re-seeded ex-primary diverges: $(cat fsck_fo.txt)"
  grep -q 'replicas agree on every shard' fsck_fo.txt \
    || fail "fsck --replica output unclear: $(cat fsck_fo.txt)"
fi
"$CLI" client "$ABSOCK" shutdown >/dev/null || fail "fo_a shutdown failed"
rc=0; wait "$APID" || rc=$?; APID=""
[ "$rc" = 0 ] || fail "re-seeded fo_a shutdown exited $rc"
for S in "$BBSOCK" "$CBSOCK"; do
  "$CLI" client "$S" shutdown >/dev/null 2>&1 || true
done
rc=0; wait "$BPID" || rc=$?; BPID=""
[ "$rc" = 0 ] || fail "fo_b shutdown exited $rc"
rc=0; wait "$CPID" || rc=$?; CPID=""
[ "$rc" = 0 ] || fail "fo_c shutdown exited $rc"

echo "daemon_e2e: ok (SIGKILL: $acked acked, $recovered recovered;" \
  "sharded ok; failover: $racked acked through the kill, $active recovered;" \
  "auto-failover: healed via ${WSOCK##*/})"
