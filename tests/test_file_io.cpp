// The durable-store file abstraction: MemFileIo's durability model behaves
// like a kernel page cache over a power cut, RealFileIo round-trips on a
// real directory, and FaultyFileIo's injections are seed-deterministic.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "store/file_io.h"

namespace dfky {
namespace {

Bytes bytes_of(const char* s) {
  return Bytes(reinterpret_cast<const byte*>(s),
               reinterpret_cast<const byte*>(s) + std::strlen(s));
}

TEST(MemFileIo, WriteWithoutAnyFsyncVanishesOnCrash) {
  MemFileIo fs;
  fs.write("f", bytes_of("hello"));
  EXPECT_TRUE(fs.exists("f"));
  fs.crash();
  EXPECT_FALSE(fs.exists("f"));
}

TEST(MemFileIo, FsyncFileAloneIsNotEnoughForANewFile) {
  // POSIX: a new file needs its own fsync AND the directory entry fsync.
  MemFileIo fs;
  fs.mkdir("d");
  fs.write("d/f", bytes_of("hello"));
  fs.fsync_file("d/f");
  fs.crash();  // directory entry never promoted
  EXPECT_FALSE(fs.exists("d/f"));
  EXPECT_FALSE(fs.is_dir("d"));
}

TEST(MemFileIo, FsyncFilePlusDirSurvivesCrash) {
  MemFileIo fs;
  fs.mkdir("d");
  fs.write("d/f", bytes_of("hello"));
  fs.fsync_file("d/f");
  fs.fsync_dir("d");
  fs.fsync_dir("");
  fs.crash();
  ASSERT_TRUE(fs.exists("d/f"));
  EXPECT_EQ(fs.read("d/f"), bytes_of("hello"));
}

TEST(MemFileIo, UnsyncedContentRevertsToLastSyncedVersion) {
  MemFileIo fs;
  fs.write("f", bytes_of("v1"));
  fs.fsync_file("f");
  fs.fsync_dir("");
  fs.write("f", bytes_of("v2 much longer"));
  fs.crash();  // content overwrite never promoted
  EXPECT_EQ(fs.read("f"), bytes_of("v1"));
}

TEST(MemFileIo, UnsyncedAppendIsLostOnCrash) {
  MemFileIo fs;
  fs.write("f", bytes_of("base"));
  fs.fsync_file("f");
  fs.fsync_dir("");
  fs.append("f", bytes_of("+tail"));
  EXPECT_EQ(fs.read("f"), bytes_of("base+tail"));
  fs.crash();
  EXPECT_EQ(fs.read("f"), bytes_of("base"));
}

TEST(MemFileIo, RenameNeedsDirFsyncToStick) {
  MemFileIo fs;
  fs.write("a", bytes_of("x"));
  fs.fsync_file("a");
  fs.fsync_dir("");
  fs.rename("a", "b");
  fs.crash();  // rename never promoted
  EXPECT_TRUE(fs.exists("a"));
  EXPECT_FALSE(fs.exists("b"));

  fs.rename("a", "b");
  fs.fsync_dir("");
  fs.crash();
  EXPECT_FALSE(fs.exists("a"));
  ASSERT_TRUE(fs.exists("b"));
  EXPECT_EQ(fs.read("b"), bytes_of("x"));
}

TEST(MemFileIo, RemoveNeedsDirFsyncToStick) {
  MemFileIo fs;
  fs.write("f", bytes_of("x"));
  fs.fsync_file("f");
  fs.fsync_dir("");
  fs.remove("f");
  EXPECT_FALSE(fs.exists("f"));
  fs.crash();
  EXPECT_TRUE(fs.exists("f"));  // unlink was never promoted

  fs.remove("f");
  fs.fsync_dir("");
  fs.crash();
  EXPECT_FALSE(fs.exists("f"));
}

TEST(MemFileIo, TruncateShrinksAndRejectsGrowth) {
  MemFileIo fs;
  fs.write("f", bytes_of("0123456789"));
  fs.truncate("f", 4);
  EXPECT_EQ(fs.read("f"), bytes_of("0123"));
  EXPECT_THROW(fs.truncate("f", 8), IoError);
  EXPECT_THROW(fs.truncate("missing", 0), IoError);
}

TEST(MemFileIo, ListReturnsSortedBasenames) {
  MemFileIo fs;
  fs.mkdir("d");
  fs.write("d/b", {});
  fs.write("d/a", {});
  fs.write("other", {});
  EXPECT_EQ(fs.list("d"), (std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(fs.list("nodir"), IoError);
}

TEST(MemFileIo, InjectDurableAppendModelsTornTail) {
  MemFileIo fs;
  fs.write("f", bytes_of("base"));
  fs.fsync_file("f");
  fs.fsync_dir("");
  fs.inject_durable_append("f", bytes_of("to"));  // torn prefix of "torn"
  fs.crash();
  EXPECT_EQ(fs.read("f"), bytes_of("baseto"));
}

TEST(RealFileIo, RoundTripOnTempDir) {
  char tmpl[] = "/tmp/dfky_fio_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string root = tmpl;
  RealFileIo io;

  io.mkdir(root + "/store");
  EXPECT_TRUE(io.is_dir(root + "/store"));
  io.write(root + "/store/f", bytes_of("hello"));
  io.append(root + "/store/f", bytes_of(" world"));
  io.fsync_file(root + "/store/f");
  io.fsync_dir(root + "/store");
  EXPECT_EQ(io.read(root + "/store/f"), bytes_of("hello world"));
  io.truncate(root + "/store/f", 5);
  EXPECT_EQ(io.read(root + "/store/f"), bytes_of("hello"));
  io.rename(root + "/store/f", root + "/store/g");
  EXPECT_FALSE(io.exists(root + "/store/f"));
  io.write(root + "/store/a", {});
  EXPECT_EQ(io.list(root + "/store"), (std::vector<std::string>{"a", "g"}));
  EXPECT_THROW(io.read(root + "/store/missing"), IoError);

  io.remove(root + "/store/a");
  io.remove(root + "/store/g");
  ASSERT_EQ(std::system(("rm -rf " + root).c_str()), 0);
}

TEST(FaultyFileIo, CrashAtTearsTheInFlightAppend) {
  MemFileIo fs;
  fs.write("wal", bytes_of("base"));
  fs.fsync_file("wal");
  fs.fsync_dir("");

  FilePlan plan;
  plan.seed = 7;
  plan.crash_at = 1;  // op 0 = the fsync below, op 1 = the append
  FaultyFileIo io(fs, plan);
  io.fsync_file("wal");
  EXPECT_THROW(io.append("wal", bytes_of("ABCDEFGH")), CrashPoint);
  EXPECT_EQ(io.fault_counters().crashes, 1u);

  fs.crash();
  const Bytes after = fs.read("wal");
  // A seeded prefix of the append survives; never more than the whole.
  ASSERT_GE(after.size(), 4u);
  ASSERT_LE(after.size(), 12u);
  EXPECT_EQ(Bytes(after.begin(), after.begin() + 4), bytes_of("base"));
  EXPECT_EQ(io.fault_counters().torn_bytes, after.size() - 4);
}

TEST(FaultyFileIo, SameSeedSameFaults) {
  FileFaultCounters got[2];
  Bytes reads[2];
  for (int run = 0; run < 2; ++run) {
    MemFileIo fs;
    fs.write("f", Bytes(64, 0xAB));
    FilePlan plan;
    plan.seed = 99;
    plan.bitflip_read_prob = 0.5;
    plan.short_read_prob = 0.5;
    FaultyFileIo io(fs, plan);
    Bytes all;
    for (int i = 0; i < 8; ++i) {
      const Bytes r = io.read("f");
      all.insert(all.end(), r.begin(), r.end());
    }
    got[run] = io.fault_counters();
    reads[run] = all;
  }
  EXPECT_EQ(got[0], got[1]);
  EXPECT_EQ(reads[0], reads[1]);
  EXPECT_GT(got[0].bitflips + got[0].short_reads, 0u);
}

TEST(FaultyFileIo, NoFaultsMeansTransparentPassThrough) {
  MemFileIo fs;
  FaultyFileIo io(fs, FilePlan{});
  io.mkdir("d");
  io.write("d/f", bytes_of("data"));
  io.fsync_file("d/f");
  io.fsync_dir("d");
  EXPECT_EQ(io.read("d/f"), bytes_of("data"));
  EXPECT_EQ(io.fault_counters().crashes, 0u);
  EXPECT_EQ(io.fault_counters().bitflips, 0u);
  EXPECT_EQ(io.fault_counters().mutating_ops, 4u);
  EXPECT_EQ(io.fault_counters().reads, 1u);
}

TEST(MemFileIo, LockIsExclusiveUntilUnlocked) {
  MemFileIo fs;
  fs.mkdir("d");
  std::uint64_t holder = 0;
  ASSERT_TRUE(fs.lock("d/LOCK", nullptr));
  EXPECT_FALSE(fs.lock("d/LOCK", &holder));
  EXPECT_EQ(holder, static_cast<std::uint64_t>(::getpid()));
  fs.unlock("d/LOCK");
  EXPECT_TRUE(fs.lock("d/LOCK", nullptr));
}

TEST(MemFileIo, LockNeedsTheParentDirectory) {
  MemFileIo fs;
  EXPECT_THROW(fs.lock("nodir/LOCK", nullptr), IoError);
}

TEST(MemFileIo, CrashDropsHeldLocks) {
  // flock locks die with the process; a post-crash reopen must succeed.
  MemFileIo fs;
  fs.mkdir("d");
  ASSERT_TRUE(fs.lock("d/LOCK", nullptr));
  fs.fsync_file("d/LOCK");
  fs.fsync_dir("d");
  fs.fsync_dir("");
  fs.crash();
  EXPECT_TRUE(fs.lock("d/LOCK", nullptr));
}

TEST(FaultyFileIo, LockForwardsWithoutCountingAsMutation) {
  // Locking is a liveness primitive, not a durability one: it must not
  // shift the crash-matrix op indices.
  MemFileIo fs;
  fs.mkdir("d");
  FaultyFileIo io(fs, FilePlan{});
  ASSERT_TRUE(io.lock("d/LOCK", nullptr));
  std::uint64_t holder = 0;
  EXPECT_FALSE(io.lock("d/LOCK", &holder));
  EXPECT_EQ(holder, static_cast<std::uint64_t>(::getpid()));
  io.unlock("d/LOCK");
  EXPECT_EQ(io.fault_counters().mutating_ops, 0u);
}

TEST(RealFileIo, LockIsExclusivePerProcessAndRecordsThePid) {
  char tmpl[] = "/tmp/dfky_fio_lock_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/LOCK";
  RealFileIo io;
  ASSERT_TRUE(io.lock(path, nullptr));
  // Same handle: re-locking our own lock reports ourselves as the holder.
  std::uint64_t holder = 0;
  EXPECT_FALSE(io.lock(path, &holder));
  EXPECT_EQ(holder, static_cast<std::uint64_t>(::getpid()));
  // The lock file carries the pid in text form for diagnostics.
  const Bytes content = io.read(path);
  EXPECT_EQ(std::string(content.begin(), content.end()),
            std::to_string(::getpid()) + "\n");
  io.unlock(path);
  EXPECT_TRUE(io.lock(path, nullptr));
  io.unlock(path);
  io.remove(path);
  ASSERT_EQ(::rmdir(tmpl), 0);
}

TEST(FileIoHelpers, DirnameOf) {
  EXPECT_EQ(dirname_of("a/b/c"), "a/b");
  EXPECT_EQ(dirname_of("a"), "");
  EXPECT_EQ(dirname_of("a/b"), "a");
}

}  // namespace
}  // namespace dfky
