#include <gtest/gtest.h>

#include "codes/berlekamp_massey.h"
#include "codes/berlekamp_welch.h"
#include "codes/grs.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

std::vector<Bigint> distinct_nonzero(const Zq& f, std::size_t count,
                                     ChaChaRng& rng) {
  std::vector<Bigint> out;
  while (out.size() < count) {
    Bigint x = rng.uniform_nonzero_below(f.modulus());
    bool dup = false;
    for (const Bigint& y : out) {
      if (x == y) dup = true;
    }
    if (!dup) out.push_back(std::move(x));
  }
  return out;
}

TEST(BerlekampWelch, NoErrorsRecoversPolynomial) {
  const Zq f = test::test_zq();
  ChaChaRng rng(21);
  const std::size_t n = 12, k = 5;
  const auto xs = distinct_nonzero(f, n, rng);
  const Polynomial p = Polynomial::random(f, k - 1, rng);
  const auto ys = p.eval_many(xs);
  const auto got = berlekamp_welch(f, xs, ys, k, (n - k) / 2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, p);
}

struct BwCase {
  std::size_t n, k, errors;
  std::uint64_t seed;
};

class BwSweep : public ::testing::TestWithParam<BwCase> {};

TEST_P(BwSweep, CorrectsErrorsUpToHalfDistance) {
  const auto [n, k, errors, seed] = GetParam();
  ASSERT_LE(k + 2 * errors, n);
  const Zq f = test::test_zq();
  ChaChaRng rng(seed);
  const auto xs = distinct_nonzero(f, n, rng);
  const Polynomial p = Polynomial::random(f, k - 1, rng);
  auto ys = p.eval_many(xs);
  // Corrupt `errors` distinct positions with fresh values.
  for (std::size_t e = 0; e < errors; ++e) {
    ys[e * (n / std::max<std::size_t>(errors, 1)) % n] =
        rng.uniform_below(f.modulus());
  }
  const auto got = berlekamp_welch(f, xs, ys, k, (n - k) / 2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, p);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BwSweep,
    ::testing::Values(BwCase{8, 2, 3, 1}, BwCase{10, 4, 3, 2},
                      BwCase{12, 6, 3, 3}, BwCase{16, 8, 4, 4},
                      BwCase{20, 10, 5, 5}, BwCase{9, 5, 2, 6},
                      BwCase{24, 12, 6, 7}, BwCase{15, 3, 6, 8}));

TEST(BerlekampWelch, TooManyErrorsFailsCleanly) {
  const Zq f = test::test_zq();
  ChaChaRng rng(22);
  const std::size_t n = 10, k = 4;  // corrects up to 3
  const auto xs = distinct_nonzero(f, n, rng);
  const Polynomial p = Polynomial::random(f, k - 1, rng);
  auto ys = p.eval_many(xs);
  for (std::size_t e = 0; e < 5; ++e) ys[e] = rng.uniform_below(f.modulus());
  const auto got = berlekamp_welch(f, xs, ys, k, (n - k) / 2);
  // Either decoding fails or it returns a polynomial that is NOT p
  // (5 errors exceed the unique-decoding radius).
  if (got.has_value()) {
    EXPECT_NE(*got, p);
  }
}

TEST(Grs, EncodeIsCodeword) {
  const Zq f = test::test_zq();
  ChaChaRng rng(23);
  const std::size_t n = 10, k = 4;
  const auto xs = distinct_nonzero(f, n, rng);
  const auto ws = distinct_nonzero(f, n, rng);
  const GrsCode code(f, xs, ws, k);
  EXPECT_EQ(code.distance(), n - k + 1);
  EXPECT_EQ(code.max_correctable(), (n - k) / 2);
  const Polynomial msg = Polynomial::random(f, k - 1, rng);
  EXPECT_TRUE(code.is_codeword(code.encode(msg)));
}

TEST(Grs, DecodeCorrectsErrorsAndReportsPositions) {
  const Zq f = test::test_zq();
  ChaChaRng rng(24);
  const std::size_t n = 14, k = 6;
  const auto xs = distinct_nonzero(f, n, rng);
  const auto ws = distinct_nonzero(f, n, rng);
  const GrsCode code(f, xs, ws, k);
  const Polynomial msg = Polynomial::random(f, k - 1, rng);
  auto word = code.encode(msg);
  word[2] = f.add(word[2], Bigint(5));
  word[9] = f.add(word[9], Bigint(1));
  const auto dec = code.decode(word, code.max_correctable());
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->message, msg);
  EXPECT_EQ(dec->error_positions, (std::vector<std::size_t>{2, 9}));
}

TEST(Grs, ZeroMultiplierRejected) {
  const Zq f = test::test_zq();
  std::vector<Bigint> xs = {Bigint(1), Bigint(2)};
  std::vector<Bigint> ws = {Bigint(1), Bigint(0)};
  EXPECT_THROW(GrsCode(f, xs, ws, 1), ContractError);
}

TEST(BerlekampMassey, RecoversLfsrFromSyndromes) {
  const Zq f = test::test_zq();
  ChaChaRng rng(25);
  // Error vector: values c_j at locators x_j; syndromes S_k = sum c_j x_j^k.
  const auto locs = distinct_nonzero(f, 3, rng);
  const auto vals = distinct_nonzero(f, 3, rng);
  const std::size_t nsyn = 8;
  std::vector<Bigint> syn(nsyn, Bigint(0));
  for (std::size_t k = 0; k < nsyn; ++k) {
    for (std::size_t j = 0; j < locs.size(); ++j) {
      syn[k] = f.add(syn[k],
                     f.mul(vals[j], f.pow(locs[j], Bigint((long)(k + 1)))));
    }
  }
  const Polynomial locator = berlekamp_massey(f, syn);
  EXPECT_EQ(locator.degree(), 3);
  // Roots of the locator are inverses of the error locators.
  for (const Bigint& x : locs) {
    EXPECT_TRUE(f.is_zero(locator.eval(f.inv(x))));
  }
}

struct PsCase {
  std::size_t n_candidates, weight, n_syndromes;
  std::uint64_t seed;
};

class PowerSumSweep : public ::testing::TestWithParam<PsCase> {};

TEST_P(PowerSumSweep, DecodesErrorSupportAndValues) {
  const auto [ncand, weight, nsyn, seed] = GetParam();
  ASSERT_LE(2 * weight, nsyn);
  const Zq f = test::test_zq();
  ChaChaRng rng(seed);
  const auto cands = distinct_nonzero(f, ncand, rng);
  std::vector<Bigint> vals;
  for (std::size_t j = 0; j < weight; ++j) {
    vals.push_back(rng.uniform_nonzero_below(f.modulus()));
  }
  std::vector<Bigint> syn(nsyn, Bigint(0));
  for (std::size_t k = 0; k < nsyn; ++k) {
    for (std::size_t j = 0; j < weight; ++j) {
      syn[k] = f.add(syn[k],
                     f.mul(vals[j], f.pow(cands[j], Bigint((long)(k + 1)))));
    }
  }
  const auto err = decode_power_sums(f, syn, cands);
  ASSERT_TRUE(err.has_value());
  ASSERT_EQ(err->locators.size(), weight);
  for (std::size_t j = 0; j < weight; ++j) {
    // Find this locator among the results.
    bool found = false;
    for (std::size_t i = 0; i < weight; ++i) {
      if (err->locators[i] == cands[j]) {
        EXPECT_EQ(err->values[i], vals[j]);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "locator " << j << " missing";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PowerSumSweep,
    ::testing::Values(PsCase{5, 1, 4, 31}, PsCase{8, 2, 4, 32},
                      PsCase{10, 3, 6, 33}, PsCase{12, 4, 8, 34},
                      PsCase{20, 5, 10, 35}, PsCase{16, 8, 16, 36},
                      PsCase{30, 6, 12, 37}));

TEST(PowerSums, ZeroSyndromesMeanZeroError) {
  const Zq f = test::test_zq();
  const std::vector<Bigint> syn(6, Bigint(0));
  const std::vector<Bigint> cands = {Bigint(5), Bigint(9)};
  const auto err = decode_power_sums(f, syn, cands);
  ASSERT_TRUE(err.has_value());
  EXPECT_TRUE(err->locators.empty());
}

TEST(PowerSums, LocatorOutsideCandidatesFails) {
  const Zq f = test::test_zq();
  ChaChaRng rng(26);
  // Error at a locator NOT in the candidate list.
  const Bigint loc = Bigint(777);
  const Bigint val = Bigint(3);
  std::vector<Bigint> syn(4);
  for (std::size_t k = 0; k < 4; ++k) {
    syn[k] = f.mul(val, f.pow(loc, Bigint((long)(k + 1))));
  }
  const std::vector<Bigint> cands = {Bigint(5), Bigint(9), Bigint(13)};
  EXPECT_FALSE(decode_power_sums(f, syn, cands).has_value());
}

TEST(PowerSums, WeightBeyondBoundFails) {
  const Zq f = test::test_zq();
  ChaChaRng rng(27);
  // weight 3 but only 4 syndromes (2*3 > 4): must not "succeed" wrongly.
  const auto cands = distinct_nonzero(f, 6, rng);
  std::vector<Bigint> syn(4, Bigint(0));
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t j = 0; j < 3; ++j) {
      syn[k] = f.add(
          syn[k], f.mul(Bigint((long)(j + 1)),
                        f.pow(cands[j], Bigint((long)(k + 1)))));
    }
  }
  const auto err = decode_power_sums(f, syn, cands);
  if (err.has_value()) {
    // If something decodes, it must genuinely reproduce the syndromes with
    // weight <= 2 — verify it is not a hallucinated weight-3 answer.
    EXPECT_LE(err->locators.size(), 2u);
  }
}

}  // namespace
}  // namespace dfky
