// Socket-protocol fuzzing for dfkyd (DESIGN.md Sect. 10–11): hostile
// request lines — malformed hex blobs, oversized lines, truncated and
// interleaved commands, NUL bytes, seeded random garbage — driven straight
// through RequestHandler. Every line must come back as exactly one `err`
// reply (never an `ok`, never an exception, never a hang), the handler
// must stay usable afterwards, and no store mutation may slip through.
// tools/sanitize_check.sh re-runs this battery under ASan/UBSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "daemon/daemon.h"
#include "daemon/protocol.h"
#include "rng/chacha_rng.h"
#include "store/store.h"
#include "test_util.h"

namespace dfky::daemon {
namespace {

struct ProtoFixture {
  MemFileIo fs;
  std::optional<ShardRouter> router;
  std::optional<RequestHandler> handler;

  explicit ProtoFixture(std::size_t shards = 2) {
    ChaChaRng rng(97);
    const SystemParams sp = test::test_params(2, /*seed=*/97);
    std::vector<StateStore> stores;
    if (shards == 1) {
      SecurityManager mgr(sp, rng);
      stores.push_back(StateStore::create(fs, "store", std::move(mgr), rng));
    } else {
      std::vector<SecurityManager> managers;
      for (std::size_t i = 0; i < shards; ++i) managers.emplace_back(sp, rng);
      stores = create_shard_set(fs, "store", std::move(managers), rng);
    }
    router.emplace(std::move(stores), [](std::size_t k) {
      return std::make_unique<ChaChaRng>(500 + k);
    });
    handler.emplace(*router);
  }

  /// Runs one line; asserts it neither shuts the daemon down nor throws.
  std::string run(const std::string& line) {
    RequestHandler::Result res = handler->handle(line);
    EXPECT_FALSE(res.shutdown) << "line: " << line;
    return res.response;
  }

  /// True when `line` draws an error reply (with or without a tag echo).
  bool rejected(const std::string& line) {
    const std::string resp = run(line);
    const std::optional<Response> r = parse_response(resp);
    return r && !r->ok;
  }

  std::uint64_t users() const { return router->status().active; }
};

// ---- malformed verbs and truncated commands -----------------------------------

TEST(DaemonProto, TruncatedAndUnknownCommandsDrawErrors) {
  ProtoFixture f;
  const char* lines[] = {
      "",              // empty line
      " ",             // whitespace only
      "bogus",         // unknown verb
      "STATUS",        // verbs are case-sensitive
      "revoke",        // missing ids
      "revoke ",       // trailing space, still no ids
      "encrypt",       // missing payload
      "add-user 1",    // add-user takes no args
      "status extra",  // status takes no args
      "ping x y z",
      "new-period now",
      "shutdown --force",
      "revoke 1 2 oops 3",  // one bad id poisons the batch
      "revoke -1",
      "revoke 18446744073709551616",  // 2^64
  };
  for (const char* line : lines) {
    EXPECT_TRUE(f.rejected(line)) << "line: '" << line << "'";
  }
  // The handler is still healthy: a well-formed request succeeds.
  const std::optional<Response> ok = parse_response(f.run("ping"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
  EXPECT_EQ(f.users(), 0u) << "a malformed line mutated the store";
}

TEST(DaemonProto, MalformedHexBlobsAreRejected) {
  ProtoFixture f;
  const char* lines[] = {
      "encrypt zz",         // not hex
      "encrypt abc",        // odd length
      "encrypt 0x4141",     // 0x prefix is not part of the grammar
      "encrypt 41 41",      // hex must be one token... (41 is a shard id
                            // out of range for 2 shards)
      "encrypt 41 x",       // ...and the shard id strictly decimal
      "encrypt 41 -1",
      "encrypt 41 2",       // shard out of range
      "encrypt \xff\xfe",   // raw bytes where hex belongs
      "encrypt 4g",
  };
  for (const char* line : lines) {
    EXPECT_TRUE(f.rejected(line)) << "line: '" << line << "'";
  }
  // Well-formed encrypt still works after the abuse.
  const std::optional<Response> ok = parse_response(f.run("encrypt 4141"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
}

TEST(DaemonProto, OversizedLinesAreRejectedWithoutAllocationBlowup) {
  ProtoFixture f;
  std::string huge = "encrypt ";
  huge.append(kMaxLineBytes + 1, '4');  // > 8 MiB of "hex"
  EXPECT_TRUE(f.rejected(huge));
  // Exactly at the cap with garbage content: still a clean error.
  std::string at_cap(kMaxLineBytes, 'a');
  EXPECT_TRUE(f.rejected(at_cap));
  EXPECT_EQ(f.users(), 0u);
}

TEST(DaemonProto, NulBytesAndControlCharactersDrawErrors) {
  ProtoFixture f;
  const std::string lines[] = {
      std::string("status\0", 7),             // embedded NUL after a verb
      std::string("\0status", 7),             // leading NUL
      std::string("revoke 1\0 2", 11),        // NUL splitting arguments
      std::string("\0", 1),                   // NUL alone
      "status\tnow",                          // tab is not a separator
      "ping\rpong",                           // stray CR mid-line
      "add-user\nstatus",                     // injected newline
  };
  for (const std::string& line : lines) {
    EXPECT_TRUE(f.rejected(line)) << "line bytes: " << line.size();
  }
  EXPECT_EQ(f.users(), 0u);
}

// ---- malformed pipeline tags --------------------------------------------------

TEST(DaemonProto, MalformedTagsAreRejectedUntagged) {
  ProtoFixture f;
  const char* lines[] = {
      "@",            // tag marker alone
      "@ status",     // empty id
      "@x status",    // non-decimal id
      "@-1 status",   // sign
      "@1x status",   // trailing junk in the id
      "@18446744073709551616 status",  // 2^64
      "@@3 status",   // doubled marker
  };
  for (const char* line : lines) {
    const std::string resp = f.run(line);
    // A bad tag cannot be echoed (its id is unparseable), so the error
    // comes back untagged.
    EXPECT_NE(resp.substr(0, 1), "@") << "line: '" << line << "'";
    const std::optional<Response> r = parse_response(resp);
    ASSERT_TRUE(r.has_value()) << "line: '" << line << "'";
    EXPECT_FALSE(r->ok) << "line: '" << line << "'";
  }
  // A good tag on a bad body is echoed on the error.
  const std::string resp = f.run("@7 bogus");
  EXPECT_EQ(resp.substr(0, 3), "@7 ");
  const std::optional<Response> r = parse_response(resp);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok);
  ASSERT_TRUE(r->id.has_value());
  EXPECT_EQ(*r->id, 7u);
}

// ---- interleaved command fragments --------------------------------------------

TEST(DaemonProto, InterleavedCommandFragmentsNeverCompose) {
  ProtoFixture f;
  // Fragments of valid commands glued across "line" boundaries the way a
  // buggy client might flush them. None may be interpreted as the whole.
  const char* lines[] = {
      "add-",     "user",          // split verb
      "new-period revoke 0",       // two verbs on one line
      "status status",
      "@1 @2 status",              // tag where the verb belongs
      "revoke @2",                 // tag where an id belongs
      "encrypt 41 41 41",          // trailing repeats
  };
  for (const char* line : lines) {
    EXPECT_TRUE(f.rejected(line)) << "line: '" << line << "'";
  }
  EXPECT_EQ(f.users(), 0u) << "an interleaved fragment mutated the store";
}

// ---- seeded random garbage ----------------------------------------------------

TEST(DaemonProto, SeededGarbageNeverCrashesOrMutates) {
  ProtoFixture f;
  ChaChaRng rng(20260805);
  const std::string verbs[] = {"", "ping ", "status ", "add-user ",
                               "revoke ", "new-period ", "encrypt ", "@"};
  std::uint64_t oks = 0;
  for (int iter = 0; iter < 400; ++iter) {
    // Half the lines start from a real verb so the fuzz reaches the
    // argument parsers, not just the verb table.
    std::string line(verbs[rng.u64() % 8]);
    const std::size_t len = rng.u64() % 64;
    for (std::size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.u64() % 256));
    }
    RequestHandler::Result res;
    ASSERT_NO_THROW(res = f.handler->handle(line)) << "iter " << iter;
    EXPECT_FALSE(res.shutdown) << "iter " << iter;
    ASSERT_FALSE(res.response.empty()) << "iter " << iter;
    const std::optional<Response> r = parse_response(res.response);
    ASSERT_TRUE(r.has_value()) << "iter " << iter << " unparseable reply: "
                               << res.response;
    if (r->ok) ++oks;
  }
  // Random bytes can legitimately hit argless verbs ("ping", "status",
  // "add-user" with an empty tail) — but only those; everything needing
  // an argument must have failed.
  const ShardRouter::Status st = f.router->status();
  EXPECT_EQ(st.period, 0u) << "garbage triggered a new-period";
  EXPECT_EQ(st.revoked, 0u) << "garbage revoked a user";
  EXPECT_EQ(st.active, oks == 0 ? 0 : st.active);  // adds only via clean verbs
  // The handler survives and still serves.
  const std::optional<Response> ok = parse_response(f.run("status"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
}

TEST(DaemonProto, SingleShardHandlerSurvivesTheSameBattery) {
  ProtoFixture f(/*shards=*/1);
  ChaChaRng rng(31337);
  for (int iter = 0; iter < 200; ++iter) {
    std::string line;
    const std::size_t len = rng.u64() % 48;
    for (std::size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.u64() % 256));
    }
    RequestHandler::Result res;
    ASSERT_NO_THROW(res = f.handler->handle(line)) << "iter " << iter;
    EXPECT_FALSE(res.shutdown);
    EXPECT_FALSE(res.response.empty());
  }
  EXPECT_TRUE(f.rejected("encrypt zz"));
  const std::optional<Response> ok = parse_response(f.run("ping"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
}

}  // namespace
}  // namespace dfky::daemon
