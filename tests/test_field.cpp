#include <gtest/gtest.h>

#include "field/fp.h"
#include "field/zq.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

TEST(Zq, RejectsNonPrime) {
  EXPECT_THROW(Zq(Bigint(15)), ContractError);
  EXPECT_THROW(Zq(Bigint(1)), ContractError);
  EXPECT_THROW(Zq(Bigint(2)), ContractError);
}

TEST(Zq, BasicOps) {
  const Zq f{Bigint(101)};
  EXPECT_EQ(f.add(Bigint(60), Bigint(60)), Bigint(19));
  EXPECT_EQ(f.sub(Bigint(3), Bigint(10)), Bigint(94));
  EXPECT_EQ(f.mul(Bigint(20), Bigint(20)), Bigint(97));
  EXPECT_EQ(f.neg(Bigint(1)), Bigint(100));
  EXPECT_EQ(f.neg(Bigint(0)), Bigint(0));
  EXPECT_EQ(f.mul(f.inv(Bigint(7)), Bigint(7)), Bigint(1));
  EXPECT_EQ(f.div(Bigint(1), Bigint(2)), Bigint(51));
  EXPECT_EQ(f.pow(Bigint(2), Bigint(100)), Bigint(1));  // Fermat
}

TEST(Zq, InvZeroThrows) {
  const Zq f{Bigint(101)};
  EXPECT_THROW(f.inv(Bigint(0)), MathError);
}

TEST(Zq, ReduceCanonicalizes) {
  const Zq f{Bigint(101)};
  EXPECT_EQ(f.reduce(Bigint(-1)), Bigint(100));
  EXPECT_EQ(f.reduce(Bigint(202)), Bigint(0));
}

TEST(Zq, BatchInvMatchesScalarInv) {
  const Zq f = test::test_zq();
  ChaChaRng rng(7);
  std::vector<Bigint> xs;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(rng.uniform_nonzero_below(f.modulus()));
  }
  std::vector<Bigint> batch = xs;
  f.batch_inv(batch);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(batch[i], f.inv(xs[i])) << "index " << i;
  }
}

TEST(Zq, BatchInvSingleElement) {
  const Zq f{Bigint(101)};
  std::vector<Bigint> xs = {Bigint(7)};
  f.batch_inv(xs);
  EXPECT_EQ(xs[0], f.inv(Bigint(7)));
}

TEST(Zq, BatchInvEmptyIsNoop) {
  const Zq f{Bigint(101)};
  std::vector<Bigint> xs;
  EXPECT_NO_THROW(f.batch_inv(xs));
}

TEST(Zq, BatchInvThrowsOnZero) {
  const Zq f{Bigint(101)};
  std::vector<Bigint> xs = {Bigint(3), Bigint(0), Bigint(5)};
  EXPECT_THROW(f.batch_inv(xs), MathError);
}

TEST(Fp, QuadraticResidueDetection) {
  const Bigint p(23);  // QRs mod 23: 1,2,3,4,6,8,9,12,13,16,18
  EXPECT_TRUE(is_quadratic_residue(Bigint(2), p));
  EXPECT_TRUE(is_quadratic_residue(Bigint(13), p));
  EXPECT_FALSE(is_quadratic_residue(Bigint(5), p));
  EXPECT_FALSE(is_quadratic_residue(Bigint(0), p));
}

TEST(Fp, SqrtMod3Mod4Prime) {
  const Bigint p(23);  // 23 = 3 (mod 4)
  for (long a = 1; a < 23; ++a) {
    const Bigint sq = (Bigint(a) * Bigint(a)).mod(p);
    const Bigint r = sqrt_mod(sq, p);
    EXPECT_EQ((r * r).mod(p), sq);
  }
}

TEST(Fp, SqrtMod1Mod4PrimeTonelliShanks) {
  const Bigint p(13);  // 13 = 1 (mod 4)
  for (long a = 1; a < 13; ++a) {
    const Bigint sq = (Bigint(a) * Bigint(a)).mod(p);
    const Bigint r = sqrt_mod(sq, p);
    EXPECT_EQ((r * r).mod(p), sq) << "a=" << a;
  }
}

TEST(Fp, SqrtOfNonResidueThrows) {
  EXPECT_THROW(sqrt_mod(Bigint(5), Bigint(23)), MathError);
  EXPECT_THROW(sqrt_mod(Bigint(2), Bigint(13)), MathError);
}

TEST(Fp, SqrtZero) {
  EXPECT_EQ(sqrt_mod(Bigint(0), Bigint(23)), Bigint(0));
}

TEST(Fp, MinSqrtReturnsSmallerRoot) {
  const Bigint p(23);
  for (long a = 1; a < 23; ++a) {
    const Bigint sq = (Bigint(a) * Bigint(a)).mod(p);
    const Bigint r = min_sqrt_mod(sq, p);
    EXPECT_EQ((r * r).mod(p), sq);
    EXPECT_LE(r, (p - r).mod(p));
  }
}

TEST(Fp, SqrtLargeSafePrime) {
  // The embedded 128-bit test group: p = 3 (mod 4) by safe-prime structure.
  const GroupParams gp = GroupParams::named(ParamId::kTest128);
  EXPECT_EQ(gp.p.mod(Bigint(4)), Bigint(3));
  ChaChaRng rng(11);
  for (int i = 0; i < 20; ++i) {
    const Bigint a = rng.uniform_nonzero_below(gp.p);
    const Bigint sq = (a * a).mod(gp.p);
    const Bigint r = sqrt_mod(sq, gp.p);
    EXPECT_EQ((r * r).mod(gp.p), sq);
  }
}

}  // namespace
}  // namespace dfky
