// Full black-box tracing by suspect-set search (paper Sect. 6.2: BBC plus
// enumeration of candidate sets).
#include "tracing/blackbox_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

struct SearchFixture {
  SystemParams sp;
  ChaChaRng rng;
  SecurityManager mgr;
  std::vector<SecurityManager::AddedUser> users;

  SearchFixture(std::size_t v, std::size_t n, std::uint64_t seed = 11001)
      : sp(test::test_params(v, seed)), rng(seed ^ 0xdddd), mgr(sp, rng) {
    for (std::size_t i = 0; i < n; ++i) users.push_back(mgr.add_user(rng));
  }

  RepresentationDecoder decoder(std::span<const std::size_t> coalition) {
    std::vector<UserKey> keys;
    for (std::size_t i : coalition) keys.push_back(users[i].key);
    return RepresentationDecoder(
        sp, build_pirate_representation(sp, mgr.public_key(), keys, rng));
  }

  std::vector<UserRecord> pool(std::size_t count) {
    std::vector<UserRecord> out;
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(mgr.users()[users[i].id]);
    }
    return out;
  }
};

BbcOptions fast_options() {
  BbcOptions opt;
  opt.epsilon = 0.9;
  opt.samples_override = 25;
  return opt;
}

TEST(BlackBoxSearch, FindsFullCoalitionInPool) {
  SearchFixture fx(6, 8);  // m = 3
  const std::vector<std::size_t> coalition = {2, 5};
  auto dec = fx.decoder(coalition);
  const auto pool = fx.pool(8);
  const BlackBoxTraceResult r =
      black_box_trace(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                      pool, /*coalition_bound=*/2, dec, fast_options(),
                      fx.rng);
  auto got = r.traitors;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{fx.users[2].id, fx.users[5].id}));
  EXPECT_GT(r.subsets_tried, 1u);  // {2,5} is not the first 2-subset
}

TEST(BlackBoxSearch, SingleTraitor) {
  SearchFixture fx(4, 6);  // m = 2
  const std::vector<std::size_t> coalition = {4};
  auto dec = fx.decoder(coalition);
  const auto pool = fx.pool(6);
  const BlackBoxTraceResult r =
      black_box_trace(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                      pool, 1, dec, fast_options(), fx.rng);
  ASSERT_EQ(r.traitors.size(), 1u);
  EXPECT_EQ(r.traitors[0], fx.users[4].id);
  EXPECT_EQ(r.subsets_tried, 5u);  // pools 0..3 probed and rejected first
}

TEST(BlackBoxSearch, CoalitionOutsidePoolReturnsEmpty) {
  SearchFixture fx(6, 8);
  const std::vector<std::size_t> coalition = {6, 7};
  auto dec = fx.decoder(coalition);
  const auto pool = fx.pool(5);  // users 0..4 only: coalition not covered
  const BlackBoxTraceResult r =
      black_box_trace(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                      pool, 2, dec, fast_options(), fx.rng);
  EXPECT_TRUE(r.traitors.empty());
  EXPECT_EQ(r.subsets_tried, 10u);  // C(5,2): exhausted
}

TEST(BlackBoxSearch, PartialIntelligenceShrinksSearch) {
  // With the pool narrowed to the true coalition, the first subset hits.
  SearchFixture fx(6, 10);
  const std::vector<std::size_t> coalition = {1, 3};
  auto dec = fx.decoder(coalition);
  std::vector<UserRecord> pool = {fx.mgr.users()[fx.users[1].id],
                                  fx.mgr.users()[fx.users[3].id]};
  const BlackBoxTraceResult r =
      black_box_trace(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                      pool, 2, dec, fast_options(), fx.rng);
  EXPECT_EQ(r.subsets_tried, 1u);
  auto got = r.traitors;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{fx.users[1].id, fx.users[3].id}));
}

TEST(BlackBoxSearch, SupersetSubsetAccusesOnlyTraitors) {
  // coalition_bound = m = 3 but only 2 real traitors: the covering 3-subset
  // contains an innocent who must not be accused.
  SearchFixture fx(6, 6);
  const std::vector<std::size_t> coalition = {0, 1};
  auto dec = fx.decoder(coalition);
  const auto pool = fx.pool(3);  // {0, 1, 2}: first 3-subset covers
  const BlackBoxTraceResult r =
      black_box_trace(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                      pool, 3, dec, fast_options(), fx.rng);
  auto got = r.traitors;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{fx.users[0].id, fx.users[1].id}));
}

TEST(BlackBoxSearch, BoundValidation) {
  SearchFixture fx(4, 4);  // m = 2
  const std::vector<std::size_t> coalition = {0};
  auto dec = fx.decoder(coalition);
  const auto pool = fx.pool(4);
  EXPECT_THROW(black_box_trace(fx.sp, fx.mgr.master_secret(),
                               fx.mgr.public_key(), pool, 3, dec,
                               fast_options(), fx.rng),
               ContractError);
  EXPECT_THROW(black_box_trace(fx.sp, fx.mgr.master_secret(),
                               fx.mgr.public_key(), pool, 0, dec,
                               fast_options(), fx.rng),
               ContractError);
}

}  // namespace
}  // namespace dfky
