// New-period reset message tests (paper Sect. 4): plain and hybrid modes,
// signed bundles, receiver key updates, and exclusion of revoked receivers.
#include "core/reset_message.h"

#include <gtest/gtest.h>

#include "core/receiver.h"
#include "core/scheme.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

struct ResetFixture {
  SystemParams sp;
  ChaChaRng rng;
  SetupResult s;
  Polynomial d, e;

  explicit ResetFixture(std::size_t v, std::uint64_t seed = 2001)
      : sp(test::test_params(v, seed)),
        rng(seed ^ 0x9999),
        s(setup(sp, rng)),
        d(Polynomial::random(sp.group.zq(), v, rng)),
        e(Polynomial::random(sp.group.zq(), v, rng)) {}
};

class ResetModeTest : public ::testing::TestWithParam<ResetMode> {};

TEST_P(ResetModeTest, ActiveUserRecoversRandomizers) {
  ResetFixture fx(4);
  const ResetMessage msg =
      build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e, GetParam(), fx.rng);
  EXPECT_EQ(msg.new_period, 1u);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(123), 0);
  const auto [d2, e2] = open_reset_message(fx.sp, sk, msg);
  EXPECT_EQ(d2, fx.d);
  EXPECT_EQ(e2, fx.e);
}

TEST_P(ResetModeTest, SerializationRoundTrip) {
  ResetFixture fx(3);
  const ResetMessage msg =
      build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e, GetParam(), fx.rng);
  Writer w;
  msg.serialize(w, fx.sp.group);
  Reader r(w.bytes());
  const ResetMessage msg2 = ResetMessage::deserialize(r, fx.sp.group);
  r.expect_end();
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(321), 0);
  const auto [d2, e2] = open_reset_message(fx.sp, sk, msg2);
  EXPECT_EQ(d2, fx.d);
  EXPECT_EQ(e2, fx.e);
}

TEST_P(ResetModeTest, RevokedUserCannotFollow) {
  ResetFixture fx(4);
  const Bigint bad_x(666);
  const UserKey bad = issue_user_key(fx.sp, fx.s.msk, bad_x, 0);
  PublicKey pk = fx.s.pk;
  revoke_into_slot(fx.sp, fx.s.msk, pk, 0, bad_x);
  const ResetMessage msg =
      build_reset_message(fx.sp, pk, fx.d, fx.e, GetParam(), fx.rng);
  // Plain mode: decryption has no leap-vector (ContractError).
  // Hybrid mode: same, surfaced through the KEM decryption.
  EXPECT_THROW(open_reset_message(fx.sp, bad, msg), Error);
}

INSTANTIATE_TEST_SUITE_P(Modes, ResetModeTest,
                         ::testing::Values(ResetMode::kPlain,
                                           ResetMode::kHybrid));

TEST(ResetMessage, PlainHasExpectedCiphertextCount) {
  ResetFixture fx(5);
  const ResetMessage msg = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                               ResetMode::kPlain, fx.rng);
  EXPECT_EQ(msg.coefficient_cts.size(), 2 * 5 + 2u);
}

TEST(ResetMessage, HybridIsAsymptoticallySmaller) {
  ResetFixture fx(8);
  const ResetMessage plain = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                                 ResetMode::kPlain, fx.rng);
  const ResetMessage hybrid = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                                  ResetMode::kHybrid, fx.rng);
  // O(v^2) vs O(v) group elements.
  EXPECT_GT(plain.wire_size(fx.sp.group), 4 * hybrid.wire_size(fx.sp.group));
}

TEST(ResetMessage, StaleKeyFailsHybridAuthentication) {
  ResetFixture fx(4);
  UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(444), 0);
  sk.ax = fx.sp.group.zq().add(sk.ax, Bigint(1));  // stale/corrupted key
  const ResetMessage msg = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                               ResetMode::kHybrid, fx.rng);
  EXPECT_THROW(open_reset_message(fx.sp, sk, msg), DecodeError);
}

TEST(SignedResetBundle, VerifiesAndRejectsTampering) {
  ResetFixture fx(3);
  const auto kp = SchnorrKeyPair::generate(fx.sp.group, fx.rng);
  SignedResetBundle bundle;
  bundle.reset = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                     ResetMode::kHybrid, fx.rng);
  bundle.signature =
      kp.sign(fx.sp.group, bundle.signed_payload(fx.sp.group), fx.rng);
  EXPECT_TRUE(bundle.verify(fx.sp.group, kp.public_key()));

  SignedResetBundle forged = bundle;
  forged.reset.new_period += 1;
  EXPECT_FALSE(forged.verify(fx.sp.group, kp.public_key()));
}

TEST(SignedResetBundle, SerializationRoundTrip) {
  ResetFixture fx(3);
  const auto kp = SchnorrKeyPair::generate(fx.sp.group, fx.rng);
  SignedResetBundle bundle;
  bundle.reset = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                     ResetMode::kPlain, fx.rng);
  bundle.signature =
      kp.sign(fx.sp.group, bundle.signed_payload(fx.sp.group), fx.rng);
  Writer w;
  bundle.serialize(w, fx.sp.group);
  Reader r(w.bytes());
  const auto bundle2 = SignedResetBundle::deserialize(r, fx.sp.group);
  r.expect_end();
  EXPECT_TRUE(bundle2.verify(fx.sp.group, kp.public_key()));
}

TEST(Receiver, FollowsPeriodChangeAndKeepsDecrypting) {
  ResetFixture fx(4);
  const auto kp = SchnorrKeyPair::generate(fx.sp.group, fx.rng);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(555), 0);
  Receiver receiver(fx.sp, sk, kp.public_key());

  SignedResetBundle bundle;
  bundle.reset = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                     ResetMode::kHybrid, fx.rng);
  bundle.signature =
      kp.sign(fx.sp.group, bundle.signed_payload(fx.sp.group), fx.rng);
  receiver.apply_reset(bundle);
  EXPECT_EQ(receiver.period(), 1u);

  // The manager's updated master secret.
  const MasterSecret new_msk{fx.s.msk.a + fx.d, fx.s.msk.b + fx.e};
  const PublicKey new_pk = make_fresh_public_key(fx.sp, new_msk, 1);
  const Gelt m = fx.sp.group.random_element(fx.rng);
  const Ciphertext ct = encrypt(fx.sp, new_pk, m, fx.rng);
  EXPECT_EQ(receiver.decrypt(ct), m);
}

TEST(Receiver, RejectsForgedReset) {
  ResetFixture fx(3);
  const auto manager_kp = SchnorrKeyPair::generate(fx.sp.group, fx.rng);
  const auto attacker_kp = SchnorrKeyPair::generate(fx.sp.group, fx.rng);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(321), 0);
  Receiver receiver(fx.sp, sk, manager_kp.public_key());

  SignedResetBundle bundle;
  bundle.reset = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                     ResetMode::kHybrid, fx.rng);
  bundle.signature = attacker_kp.sign(
      fx.sp.group, bundle.signed_payload(fx.sp.group), fx.rng);
  EXPECT_THROW(receiver.apply_reset(bundle), DecodeError);
  EXPECT_EQ(receiver.period(), 0u);  // key untouched
}

TEST(Receiver, RejectsWrongPeriodReset) {
  // Strict mode preserves the original paper-identity behavior: anything
  // other than the immediate next period throws.
  ResetFixture fx(3);
  const auto kp = SchnorrKeyPair::generate(fx.sp.group, fx.rng);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(321), 0);
  Receiver receiver(fx.sp, sk, kp.public_key(), /*strict=*/true);

  SignedResetBundle bundle;
  bundle.reset = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                     ResetMode::kHybrid, fx.rng);
  bundle.reset.new_period = 5;  // skips ahead
  bundle.signature =
      kp.sign(fx.sp.group, bundle.signed_payload(fx.sp.group), fx.rng);
  EXPECT_THROW(receiver.apply_reset(bundle), DecodeError);
}

TEST(Receiver, LenientModeDistinguishesFailureModes) {
  ResetFixture fx(3);
  const auto kp = SchnorrKeyPair::generate(fx.sp.group, fx.rng);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(321), 0);
  Receiver receiver(fx.sp, sk, kp.public_key());

  SignedResetBundle next;
  next.reset = build_reset_message(fx.sp, fx.s.pk, fx.d, fx.e,
                                   ResetMode::kHybrid, fx.rng);
  next.signature =
      kp.sign(fx.sp.group, next.signed_payload(fx.sp.group), fx.rng);

  // Future period: gap detected, bundle quarantined, state flips to stale.
  SignedResetBundle future = next;
  future.reset.new_period = 3;
  future.signature =
      kp.sign(fx.sp.group, future.signed_payload(fx.sp.group), fx.rng);
  EXPECT_EQ(receiver.apply_reset(future), ResetOutcome::kGapDetected);
  EXPECT_EQ(receiver.state(), ReceiverState::kStale);
  EXPECT_EQ(receiver.pending_resets(), 1u);
  EXPECT_EQ(receiver.catch_up_target(), 3u);
  EXPECT_EQ(receiver.period(), 0u);  // key untouched

  // The immediate next period still applies...
  EXPECT_EQ(receiver.apply_reset(next), ResetOutcome::kApplied);
  EXPECT_EQ(receiver.period(), 1u);
  EXPECT_EQ(receiver.state(), ReceiverState::kStale);  // still missing 2..3

  // ...and a duplicate of it is idempotently ignored.
  EXPECT_EQ(receiver.apply_reset(next), ResetOutcome::kStaleIgnored);
  EXPECT_EQ(receiver.period(), 1u);

  // A bad signature throws in both modes.
  SignedResetBundle forged = next;
  forged.reset.new_period = 2;
  EXPECT_THROW(receiver.apply_reset(forged), DecodeError);
}

TEST(Receiver, DrainsPendingResetsOnceGapCloses) {
  ResetFixture fx(3);
  const auto kp = SchnorrKeyPair::generate(fx.sp.group, fx.rng);
  const UserKey sk = issue_user_key(fx.sp, fx.s.msk, Bigint(77), 0);
  Receiver receiver(fx.sp, sk, kp.public_key());

  // Build the genuine chain of three consecutive resets by evolving the
  // master secret exactly as the manager would.
  MasterSecret msk = fx.s.msk;
  PublicKey pk = fx.s.pk;
  std::vector<SignedResetBundle> chain;
  for (int i = 0; i < 3; ++i) {
    const Polynomial d = Polynomial::random(fx.sp.group.zq(), 3, fx.rng);
    const Polynomial e = Polynomial::random(fx.sp.group.zq(), 3, fx.rng);
    SignedResetBundle b;
    b.reset = build_reset_message(fx.sp, pk, d, e, ResetMode::kHybrid, fx.rng);
    b.signature = kp.sign(fx.sp.group, b.signed_payload(fx.sp.group), fx.rng);
    msk.a = msk.a + d;
    msk.b = msk.b + e;
    pk = make_fresh_public_key(fx.sp, msk, pk.period + 1);
    chain.push_back(std::move(b));
  }

  // Deliver out of order: 2, 3, then 1 — the receiver buffers the future
  // ones and replays them the moment the gap closes.
  EXPECT_EQ(receiver.apply_reset(chain[1]), ResetOutcome::kGapDetected);
  EXPECT_EQ(receiver.apply_reset(chain[2]), ResetOutcome::kGapDetected);
  EXPECT_EQ(receiver.pending_resets(), 2u);
  EXPECT_EQ(receiver.apply_reset(chain[0]), ResetOutcome::kApplied);
  EXPECT_EQ(receiver.period(), 3u);
  EXPECT_EQ(receiver.state(), ReceiverState::kCurrent);
  EXPECT_EQ(receiver.pending_resets(), 0u);

  // The fully caught-up key decrypts current-period content.
  const Gelt m = fx.sp.group.random_element(fx.rng);
  EXPECT_EQ(receiver.decrypt(encrypt(fx.sp, pk, m, fx.rng)), m);
}

TEST(ResetMessage, RandomizerDegreeBoundEnforced) {
  ResetFixture fx(2);
  const Polynomial too_big =
      Polynomial::random(fx.sp.group.zq(), 5, fx.rng);
  EXPECT_THROW(build_reset_message(fx.sp, fx.s.pk, too_big, fx.e,
                                   ResetMode::kPlain, fx.rng),
               ContractError);
}

}  // namespace
}  // namespace dfky
