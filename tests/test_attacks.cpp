// Executable security games: the window-adversary game (Sect. 5.1.1), the
// revive attack (Sect. 1.3), and game-machinery sanity checks.
#include <gtest/gtest.h>

#include "attacks/revive.h"
#include "attacks/window_game.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

TEST(WindowGame, OracleDiscipline) {
  ChaChaRng rng(9001);
  const SystemParams sp = test::test_params(2, 9002);
  WindowGame game(sp, rng);
  game.join(Bigint(1000), rng);
  game.join(Bigint(1001), rng);
  // At most v Join queries.
  EXPECT_THROW(game.join(Bigint(1002), rng), ContractError);
  // Revoke oracle rejects corrupted users.
  EXPECT_THROW(game.revoke_honest(0, rng), ContractError);
}

TEST(WindowGame, WindowConstraintEnforced) {
  ChaChaRng rng(9003);
  const SystemParams sp = test::test_params(2, 9004);
  WindowGame game(sp, rng);
  game.join(Bigint(1000), rng);
  game.join(Bigint(1001), rng);
  // Burn one saturation slot on an honest victim: now L + |Corr| = 3 > v.
  const auto victim = game.add_honest(rng);
  game.revoke_honest(victim, rng);
  EXPECT_THROW(game.revoke_corrupted(rng), ContractError);
}

TEST(WindowGame, CorruptedKeysFollowPeriodsUntilRevoked) {
  ChaChaRng rng(9005);
  const SystemParams sp = test::test_params(2, 9006);
  WindowGame game(sp, rng);
  game.join(Bigint(1000), rng);
  // Force a period change through honest churn.
  while (game.pk().period == 0) {
    game.revoke_honest(game.add_honest(rng), rng);
  }
  // The corrupted (not yet revoked) key must have followed.
  EXPECT_EQ(game.corrupted_keys()[0].period, game.pk().period);
  const Gelt m = sp.group.random_element(rng);
  const Ciphertext ct = encrypt(sp, game.pk(), m, rng);
  EXPECT_EQ(decrypt(sp, game.corrupted_keys()[0], ct), m);
}

TEST(WindowGame, ChallengeMachineryIsFair) {
  ChaChaRng rng(9007);
  const SystemParams sp = test::test_params(2, 9008);
  // Control strategy: an unrevoked key distinguishes perfectly, validating
  // that the challenge actually encodes sigma*.
  const WindowTrialStats stats = run_window_trials(
      sp, WindowStrategy::kUnrevokedControl, /*trials=*/20,
      /*coalition_size=*/1, rng);
  EXPECT_EQ(stats.successes, stats.trials);
  EXPECT_NEAR(stats.advantage(), 0.5, 1e-9);
}

struct ExpiryCase {
  WindowStrategy strategy;
  std::size_t coalition;
};

class ExpiredAdversary : public ::testing::TestWithParam<ExpiryCase> {};

TEST_P(ExpiredAdversary, AdvantageStatisticallyNegligible) {
  const auto [strategy, coalition] = GetParam();
  ChaChaRng rng(9100 + static_cast<int>(strategy));
  const SystemParams sp = test::test_params(3, 9009);
  const std::size_t trials = 60;
  const WindowTrialStats stats =
      run_window_trials(sp, strategy, trials, coalition, rng);
  // A fair coin over 60 trials stays within 0.30 of 1/2 except with
  // probability < 2^-10; an adversary with real advantage ~1 would fail.
  EXPECT_LT(stats.advantage(), 0.30);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ExpiredAdversary,
    ::testing::Values(
        ExpiryCase{WindowStrategy::kExpiredConvex, 3},
        ExpiryCase{WindowStrategy::kExpiredConvex, 1},
        ExpiryCase{WindowStrategy::kExpiredInterpolation, 3},
        ExpiryCase{WindowStrategy::kExpiredAcrossPeriod, 2}));

TEST(Revive, BaselineRevivesSchemeExpires) {
  ChaChaRng rng(9010);
  const SystemParams sp = test::test_params(3, 9011);
  const ReviveOutcome out = run_revive_attack(sp, rng);
  // Immediately after revocation both systems bar the adversary.
  EXPECT_FALSE(out.baseline_decrypts_when_revoked);
  EXPECT_FALSE(out.scheme_decrypts_when_revoked);
  // After v further revocations: the bounded baseline lets the adversary
  // back in; the paper's scheme keeps her expired.
  EXPECT_TRUE(out.baseline_revived);
  EXPECT_FALSE(out.scheme_revived);
  // The catch-up recovery protocol answers the adversary's requests but
  // must not restore her capability either.
  EXPECT_GT(out.catch_up_requests_answered, 0u);
  EXPECT_FALSE(out.scheme_revived_via_catch_up);
}

TEST(Revive, HoldsAcrossSaturationLimits) {
  for (std::size_t v : {2u, 4u, 6u}) {
    ChaChaRng rng(9012 + v);
    const SystemParams sp = test::test_params(v, 9013 + v);
    const ReviveOutcome out = run_revive_attack(sp, rng);
    EXPECT_TRUE(out.baseline_revived) << "v=" << v;
    EXPECT_FALSE(out.scheme_revived) << "v=" << v;
  }
}

}  // namespace
}  // namespace dfky
