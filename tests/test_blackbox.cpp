// epsilon-Black-Box Confirmation tests (paper Sect. 6.2): Theorem 2
// (coalition inside the suspect set keeps decoding under PK(I)), Theorem 3
// (innocent removal changes nothing), and the Confirmation / Soundness
// properties of Definition 10.
#include "tracing/blackbox.h"

#include <gtest/gtest.h>

#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

struct BbcFixture {
  SystemParams sp;
  ChaChaRng rng;
  SecurityManager mgr;
  std::vector<SecurityManager::AddedUser> users;

  BbcFixture(std::size_t v, std::size_t n, std::uint64_t seed = 6001)
      : sp(test::test_params(v, seed)), rng(seed ^ 0xbbbb), mgr(sp, rng) {
    for (std::size_t i = 0; i < n; ++i) users.push_back(mgr.add_user(rng));
  }

  std::unique_ptr<RepresentationDecoder> decoder(
      std::span<const std::size_t> coalition) {
    std::vector<UserKey> keys;
    for (std::size_t i : coalition) keys.push_back(users[i].key);
    return std::make_unique<RepresentationDecoder>(
        sp, build_pirate_representation(sp, mgr.public_key(), keys, rng));
  }

  std::vector<UserRecord> suspects(std::span<const std::size_t> idx) {
    std::vector<UserRecord> out;
    for (std::size_t i : idx) out.push_back(mgr.users()[users[i].id]);
    return out;
  }
};

TEST(FakeKey, SuspectKeysStillDecrypt) {
  // Theorem 2's mechanism: PK(I) agrees with the master polynomials on I,
  // so a coalition inside I decodes ciphertexts under PK(I) perfectly.
  BbcFixture fx(6, 8);
  const std::vector<std::size_t> coalition = {1, 2};
  auto dec = fx.decoder(coalition);
  std::vector<Bigint> keep = {fx.users[1].key.x, fx.users[2].key.x};
  const PublicKey fake = fake_public_key(fx.sp, fx.mgr.master_secret(),
                                         fx.mgr.public_key(), keep, fx.rng);
  const double rate = estimate_success(fx.sp, fake, *dec, 20, fx.rng);
  EXPECT_EQ(rate, 1.0);
}

TEST(FakeKey, OutsiderKeysFail) {
  // A decoder whose traitor is NOT kept in PK(I) decodes garbage.
  BbcFixture fx(6, 8);
  const std::vector<std::size_t> coalition = {1, 2};
  auto dec = fx.decoder(coalition);
  std::vector<Bigint> keep = {fx.users[3].key.x};  // innocent only
  const PublicKey fake = fake_public_key(fx.sp, fx.mgr.master_secret(),
                                         fx.mgr.public_key(), keep, fx.rng);
  const double rate = estimate_success(fx.sp, fake, *dec, 20, fx.rng);
  EXPECT_EQ(rate, 0.0);
}

TEST(FakeKey, PartialCoalitionFails) {
  // Convex combination of {1,2} under PK({1}): user 2's contribution is
  // re-randomized, so the combined representation is invalid.
  BbcFixture fx(6, 8);
  const std::vector<std::size_t> coalition = {1, 2};
  auto dec = fx.decoder(coalition);
  std::vector<Bigint> keep = {fx.users[1].key.x};
  const PublicKey fake = fake_public_key(fx.sp, fx.mgr.master_secret(),
                                         fx.mgr.public_key(), keep, fx.rng);
  const double rate = estimate_success(fx.sp, fake, *dec, 20, fx.rng);
  EXPECT_EQ(rate, 0.0);
}

TEST(FakeKey, EmptySuspectSetKillsEveryDecoder) {
  BbcFixture fx(4, 6);
  const std::vector<std::size_t> coalition = {0};
  auto dec = fx.decoder(coalition);
  const PublicKey fake = fake_public_key(fx.sp, fx.mgr.master_secret(),
                                         fx.mgr.public_key(), {}, fx.rng);
  EXPECT_EQ(estimate_success(fx.sp, fake, *dec, 20, fx.rng), 0.0);
}

TEST(FakeKey, TooManySuspectsRejected) {
  BbcFixture fx(4, 6);  // m = 2
  std::vector<Bigint> keep = {fx.users[0].key.x, fx.users[1].key.x,
                              fx.users[2].key.x};
  EXPECT_THROW(fake_public_key(fx.sp, fx.mgr.master_secret(),
                               fx.mgr.public_key(), keep, fx.rng),
               ContractError);
}

TEST(Bbc, ConfirmationAccusesATraitor) {
  // T = {1, 3} and Susp = {1, 3}: BBC must output some traitor.
  BbcFixture fx(6, 8);
  const std::vector<std::size_t> coalition = {1, 3};
  auto dec = fx.decoder(coalition);
  BbcOptions opt;
  opt.epsilon = 0.9;
  opt.samples_override = 30;
  const auto suspects = fx.suspects(coalition);
  const BbcResult result =
      black_box_confirm(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                        suspects, *dec, opt, fx.rng);
  ASSERT_TRUE(result.accused.has_value());
  EXPECT_TRUE(*result.accused == fx.users[1].id ||
              *result.accused == fx.users[3].id);
  EXPECT_GT(result.queries, 0u);
}

TEST(Bbc, SoundnessNeverAccusesInnocent) {
  // T = {1}, Susp = {1, 4}: user 4 is innocent; removal of 4 changes
  // nothing, so the accusation (if any) must be user 1.
  BbcFixture fx(6, 8);
  const std::vector<std::size_t> coalition = {1};
  auto dec = fx.decoder(coalition);
  BbcOptions opt;
  opt.epsilon = 0.9;
  opt.samples_override = 30;
  const std::vector<std::size_t> susp_idx = {1, 4};
  const auto suspects = fx.suspects(susp_idx);
  const BbcResult result =
      black_box_confirm(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                        suspects, *dec, opt, fx.rng);
  ASSERT_TRUE(result.accused.has_value());
  EXPECT_EQ(*result.accused, fx.users[1].id);
}

TEST(Bbc, UncoveredCoalitionReturnsQuestionMark) {
  // T = {1, 2} but Susp = {3}: the suspect set misses the coalition, so the
  // decoder never works under any PK(I) and BBC must return "?" — it must
  // NOT accuse the innocent suspect 3.
  BbcFixture fx(6, 8);
  const std::vector<std::size_t> coalition = {1, 2};
  auto dec = fx.decoder(coalition);
  BbcOptions opt;
  opt.epsilon = 0.9;
  opt.samples_override = 30;
  const std::vector<std::size_t> susp_idx = {3};
  const auto suspects = fx.suspects(susp_idx);
  const BbcResult result =
      black_box_confirm(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                        suspects, *dec, opt, fx.rng);
  EXPECT_FALSE(result.accused.has_value());
}

TEST(Bbc, ThresholdDecoderStillConfirmed) {
  // A decoder that only works on ~60% of broadcasts (threshold tracing).
  BbcFixture fx(4, 6);
  const std::vector<std::size_t> coalition = {2};
  auto inner = fx.decoder(coalition);
  NoisyDecoder noisy(fx.sp, std::move(inner), 0.6, /*seed=*/99);
  BbcOptions opt;
  opt.epsilon = 0.4;          // decoder is "useful" at the 0.4 level
  opt.samples_override = 400;  // estimates need more samples at eps < 1
  const auto suspects = fx.suspects(coalition);
  const BbcResult result =
      black_box_confirm(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                        suspects, noisy, opt, fx.rng);
  ASSERT_TRUE(result.accused.has_value());
  EXPECT_EQ(*result.accused, fx.users[2].id);
}

TEST(Bbc, SuccessCurveDropsAtTraitorRemoval) {
  BbcFixture fx(6, 8);
  const std::vector<std::size_t> coalition = {0};
  auto dec = fx.decoder(coalition);
  BbcOptions opt;
  opt.epsilon = 0.9;
  opt.samples_override = 25;
  const auto suspects = fx.suspects(coalition);
  const BbcResult result =
      black_box_confirm(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                        suspects, *dec, opt, fx.rng);
  ASSERT_GE(result.success_curve.size(), 2u);
  EXPECT_EQ(result.success_curve[0], 1.0);  // delta(Susp) with T inside
  EXPECT_EQ(result.success_curve[1], 0.0);  // delta(empty-ish) collapses
}

TEST(Bbc, SelfProtectingDecoderCannotDetectProbing) {
  // Theorem 2 in action: the crafty pirate checks every public field of the
  // ciphertext against the key it was built for — but the tracer's PK(I)
  // preserves them all, so every probe is accepted and BBC still convicts.
  BbcFixture fx(6, 8);
  const std::vector<std::size_t> coalition = {2};
  std::vector<UserKey> keys = {fx.users[2].key};
  SelfProtectingDecoder dec(
      fx.sp,
      build_pirate_representation(fx.sp, fx.mgr.public_key(), keys, fx.rng),
      fx.mgr.public_key(), /*seed=*/4242);

  // Sanity: the decoder does refuse genuinely inconsistent ciphertexts.
  {
    const Gelt m = fx.sp.group.random_element(fx.rng);
    Ciphertext bad = encrypt(fx.sp, fx.mgr.public_key(), m, fx.rng);
    bad.slots[0].z = Bigint(987654);  // foreign slot identity
    (void)dec.decrypt(bad);
    EXPECT_FALSE(dec.last_query_accepted());
    Ciphertext stale = encrypt(fx.sp, fx.mgr.public_key(), m, fx.rng);
    stale.period = 99;
    (void)dec.decrypt(stale);
    EXPECT_FALSE(dec.last_query_accepted());
  }

  BbcOptions opt;
  opt.epsilon = 0.9;
  opt.samples_override = 30;
  const auto suspects = fx.suspects(coalition);
  const BbcResult result =
      black_box_confirm(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                        suspects, dec, opt, fx.rng);
  ASSERT_TRUE(result.accused.has_value());
  EXPECT_EQ(*result.accused, fx.users[2].id);
  EXPECT_TRUE(dec.last_query_accepted());  // probes were indistinguishable
}

TEST(Bbc, DerivedSampleCountUsedWhenNoOverride) {
  BbcFixture fx(2, 4);  // m = 1: few suspects keeps this fast
  const std::vector<std::size_t> coalition = {0};
  auto dec = fx.decoder(coalition);
  BbcOptions opt;
  opt.epsilon = 0.99;
  opt.confidence = 0.5;  // tiny sample count, still deterministic here
  const auto suspects = fx.suspects(coalition);
  const BbcResult result =
      black_box_confirm(fx.sp, fx.mgr.master_secret(), fx.mgr.public_key(),
                        suspects, *dec, opt, fx.rng);
  ASSERT_TRUE(result.accused.has_value());
  EXPECT_EQ(*result.accused, fx.users[0].id);
}

}  // namespace
}  // namespace dfky
