// Broadcast bus integration: multiple providers, many subscribers,
// revocations and period changes flowing over serialized wire messages.
#include "broadcast/provider.h"

#include <gtest/gtest.h>

#include "core/manager.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

Bytes str(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

TEST(Bus, DeliversToSubscribers) {
  BroadcastBus bus;
  int count = 0;
  const std::size_t token =
      bus.subscribe([&](const Envelope& env) { count += env.payload.size(); });
  bus.publish(Envelope{MsgType::kContent, Bytes{1, 2, 3}});
  EXPECT_EQ(count, 3);
  EXPECT_EQ(bus.messages_sent(), 1u);
  EXPECT_EQ(bus.bytes_sent(), 3u);
  bus.unsubscribe(token);
  bus.publish(Envelope{MsgType::kContent, Bytes{4}});
  EXPECT_EQ(count, 3);  // unsubscribed
  EXPECT_EQ(bus.log().size(), 2u);
}

TEST(Bus, HandlersMaySubscribeAndUnsubscribeDuringPublish) {
  BroadcastBus bus;
  int late_calls = 0;
  std::size_t self_token = 0;
  std::size_t victim_token =
      bus.subscribe([&](const Envelope&) { ++late_calls; });
  // This handler mutates the handler map mid-delivery: it unsubscribes
  // itself and a peer, and registers a brand-new subscriber.
  int mutator_calls = 0;
  self_token = bus.subscribe([&](const Envelope&) {
    ++mutator_calls;
    bus.unsubscribe(self_token);
    bus.unsubscribe(victim_token);
    bus.subscribe([&](const Envelope&) { ++late_calls; });
  });

  bus.publish(Envelope{MsgType::kContent, Bytes{1}});
  EXPECT_EQ(mutator_calls, 1);

  // Next publish: the mutator and the victim are gone; the new subscriber
  // (registered during delivery) receives it.
  const int late_before = late_calls;
  bus.publish(Envelope{MsgType::kContent, Bytes{2}});
  EXPECT_EQ(mutator_calls, 1);
  EXPECT_EQ(late_calls, late_before + 1);
}

TEST(Bus, ReentrantPublishKeepsEnvelopesIntact) {
  // A handler that publishes during delivery grows the log; the envelope
  // being delivered must not be invalidated by that reallocation.
  BroadcastBus bus;
  std::vector<Bytes> seen;
  bus.subscribe([&](const Envelope& env) {
    if (env.type == MsgType::kContent && env.payload.size() == 3) {
      // Recursive publishes, enough to force log_ reallocation.
      for (int i = 0; i < 64; ++i) {
        bus.publish(Envelope{MsgType::kPublicKeyUpdate, Bytes(100, byte(i))});
      }
    }
    seen.push_back(env.payload);
  });
  bus.publish(Envelope{MsgType::kContent, Bytes{7, 8, 9}});
  ASSERT_EQ(seen.size(), 65u);
  // The outer envelope, read after the nested publishes, is still intact.
  EXPECT_EQ(seen.back(), (Bytes{7, 8, 9}));
  EXPECT_EQ(bus.log().size(), 65u);
}

TEST(Bus, PerTypeByteAccounting) {
  BroadcastBus bus;
  bus.publish(Envelope{MsgType::kContent, Bytes(10)});
  bus.publish(Envelope{MsgType::kChangePeriod, Bytes(20)});
  bus.publish(Envelope{MsgType::kContent, Bytes(5)});
  EXPECT_EQ(bus.bytes_sent(MsgType::kContent), 15u);
  EXPECT_EQ(bus.bytes_sent(MsgType::kChangePeriod), 20u);
  EXPECT_EQ(bus.bytes_sent(MsgType::kPublicKeyUpdate), 0u);
}

struct SystemFixture {
  ChaChaRng rng{7001};
  SystemParams sp{test::test_params(3, 7002)};
  BroadcastBus bus;
  SecurityManager mgr{sp, rng};
};

TEST(System, ProviderToSubscriberDelivery) {
  SystemFixture fx;
  const auto u = fx.mgr.add_user(fx.rng);
  SubscriberClient sub(fx.sp, u.key, fx.mgr.verification_key(), fx.bus);
  ContentProvider hbo("hbo", fx.sp, fx.mgr.public_key(), fx.bus);

  hbo.broadcast(str("movie night"), fx.rng);
  ASSERT_EQ(sub.received_content().size(), 1u);
  EXPECT_EQ(sub.received_content()[0], str("movie night"));
  EXPECT_EQ(sub.missed_broadcasts(), 0u);
}

TEST(System, MultipleProvidersShareOneInfrastructure) {
  // Server-side scalability: a second provider joins with no key exchange —
  // it only reads the public key from the bus.
  SystemFixture fx;
  const auto u = fx.mgr.add_user(fx.rng);
  SubscriberClient sub(fx.sp, u.key, fx.mgr.verification_key(), fx.bus);
  ContentProvider a("alpha", fx.sp, fx.mgr.public_key(), fx.bus);
  ContentProvider b("beta", fx.sp, fx.mgr.public_key(), fx.bus);

  a.broadcast(str("from alpha"), fx.rng);
  b.broadcast(str("from beta"), fx.rng);
  ASSERT_EQ(sub.received_content().size(), 2u);
  EXPECT_EQ(sub.received_content()[1], str("from beta"));
}

TEST(System, RevokedSubscriberMissesContent) {
  SystemFixture fx;
  const auto good = fx.mgr.add_user(fx.rng);
  const auto bad = fx.mgr.add_user(fx.rng);
  SubscriberClient good_sub(fx.sp, good.key, fx.mgr.verification_key(),
                            fx.bus);
  SubscriberClient bad_sub(fx.sp, bad.key, fx.mgr.verification_key(), fx.bus);
  ContentProvider tv("tv", fx.sp, fx.mgr.public_key(), fx.bus);

  fx.mgr.remove_user(bad.id, fx.rng);
  announce_public_key(fx.bus, fx.sp.group, fx.mgr.public_key());

  tv.broadcast(str("premium"), fx.rng);
  EXPECT_EQ(good_sub.received_content().size(), 1u);
  EXPECT_TRUE(bad_sub.received_content().empty());
  EXPECT_EQ(bad_sub.missed_broadcasts(), 1u);
}

TEST(System, ProvidersTrackKeyUpdates) {
  SystemFixture fx;
  const auto u = fx.mgr.add_user(fx.rng);
  ContentProvider tv("tv", fx.sp, fx.mgr.public_key(), fx.bus);

  // Revoke someone: the provider must pick up the new key from the bus.
  const auto victim = fx.mgr.add_user(fx.rng);
  fx.mgr.remove_user(victim.id, fx.rng);
  announce_public_key(fx.bus, fx.sp.group, fx.mgr.public_key());
  EXPECT_EQ(tv.current_public_key().slot_ids()[0],
            fx.mgr.public_key().slot_ids()[0]);

  SubscriberClient sub(fx.sp, u.key, fx.mgr.verification_key(), fx.bus);
  tv.broadcast(str("still works"), fx.rng);
  ASSERT_EQ(sub.received_content().size(), 1u);
}

TEST(System, FullLifecycleWithPeriodChangeOverTheBus) {
  SystemFixture fx;  // v = 3
  const auto u = fx.mgr.add_user(fx.rng);
  SubscriberClient sub(fx.sp, u.key, fx.mgr.verification_key(), fx.bus);
  ContentProvider tv("tv", fx.sp, fx.mgr.public_key(), fx.bus);

  // Churn enough users to force a period change; everything over the bus.
  for (int i = 0; i < 4; ++i) {
    const auto victim = fx.mgr.add_user(fx.rng);
    const auto bundle = fx.mgr.remove_user(victim.id, fx.rng);
    if (bundle) announce_reset(fx.bus, fx.sp.group, *bundle);
    announce_public_key(fx.bus, fx.sp.group, fx.mgr.public_key());
  }
  EXPECT_EQ(fx.mgr.period(), 1u);
  EXPECT_EQ(sub.period(), 1u);  // followed via the signed bus message
  EXPECT_EQ(sub.failed_resets(), 0u);

  tv.broadcast(str("new period content"), fx.rng);
  ASSERT_EQ(sub.received_content().size(), 1u);
  EXPECT_EQ(sub.received_content()[0], str("new period content"));
}

TEST(System, RevokedSubscriberCannotFollowPeriodChange) {
  SystemFixture fx;  // v = 3
  const auto bad = fx.mgr.add_user(fx.rng);
  SubscriberClient bad_sub(fx.sp, bad.key, fx.mgr.verification_key(), fx.bus);
  ContentProvider tv("tv", fx.sp, fx.mgr.public_key(), fx.bus);

  fx.mgr.remove_user(bad.id, fx.rng);
  // Fill the period and roll it.
  for (int i = 0; i < 3; ++i) {
    const auto victim = fx.mgr.add_user(fx.rng);
    const auto bundle = fx.mgr.remove_user(victim.id, fx.rng);
    if (bundle) announce_reset(fx.bus, fx.sp.group, *bundle);
  }
  announce_public_key(fx.bus, fx.sp.group, fx.mgr.public_key());
  EXPECT_EQ(fx.mgr.period(), 1u);
  EXPECT_EQ(bad_sub.period(), 0u);  // stuck in the old period
  EXPECT_EQ(bad_sub.failed_resets(), 1u);

  tv.broadcast(str("expired for you"), fx.rng);
  EXPECT_TRUE(bad_sub.received_content().empty());
  EXPECT_EQ(bad_sub.missed_broadcasts(), 1u);
}

TEST(System, EavesdropperLogIsComplete) {
  SystemFixture fx;
  ContentProvider tv("tv", fx.sp, fx.mgr.public_key(), fx.bus);
  tv.broadcast(str("one"), fx.rng);
  announce_public_key(fx.bus, fx.sp.group, fx.mgr.public_key());
  EXPECT_EQ(fx.bus.log().size(), 2u);
  EXPECT_EQ(fx.bus.log()[0].type, MsgType::kContent);
  EXPECT_EQ(fx.bus.log()[1].type, MsgType::kPublicKeyUpdate);
}

}  // namespace
}  // namespace dfky
