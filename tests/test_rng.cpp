#include <gtest/gtest.h>

#include "rng/chacha_rng.h"
#include "rng/system_rng.h"

namespace dfky {
namespace {

TEST(ChaChaRng, DeterministicFromSeed) {
  ChaChaRng a(1234);
  ChaChaRng b(1234);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_EQ(a.u64(), b.u64());
}

TEST(ChaChaRng, DifferentSeedsDiffer) {
  ChaChaRng a(1);
  ChaChaRng b(2);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(ChaChaRng, ForkProducesIndependentStream) {
  ChaChaRng a(7);
  ChaChaRng child = a.fork();
  // The child diverges from the parent's continuation.
  EXPECT_NE(child.bytes(32), a.bytes(32));
}

TEST(ChaChaRng, SeedBytesValidated) {
  const Bytes short_seed(16, 0);
  EXPECT_THROW(ChaChaRng{BytesView(short_seed)}, ContractError);
}

TEST(Rng, UniformBelowInRange) {
  ChaChaRng rng(5);
  const Bigint bound = Bigint::from_dec("1000000007");
  for (int i = 0; i < 200; ++i) {
    const Bigint v = rng.uniform_below(bound);
    EXPECT_GE(v.sign(), 0);
    EXPECT_LT(v, bound);
  }
}

TEST(Rng, UniformBelowOneIsZero) {
  ChaChaRng rng(6);
  EXPECT_TRUE(rng.uniform_below(Bigint(1)).is_zero());
}

TEST(Rng, UniformBelowRejectsNonPositive) {
  ChaChaRng rng(6);
  EXPECT_THROW(rng.uniform_below(Bigint(0)), ContractError);
  EXPECT_THROW(rng.uniform_below(Bigint(-3)), ContractError);
}

TEST(Rng, UniformNonzeroNeverZero) {
  ChaChaRng rng(8);
  for (int i = 0; i < 300; ++i) {
    EXPECT_FALSE(rng.uniform_nonzero_below(Bigint(2)).is_zero());
  }
}

TEST(Rng, UniformBitsHasExactBitLength) {
  ChaChaRng rng(9);
  for (std::size_t bits : {1u, 2u, 7u, 8u, 9u, 31u, 64u, 127u, 256u}) {
    const Bigint v = rng.uniform_bits(bits);
    EXPECT_EQ(v.bit_length(), bits) << "bits=" << bits;
  }
}

TEST(Rng, UniformBelowCoversSmallRangeUniformly) {
  // Sanity chi-square-lite: all residues mod 8 appear.
  ChaChaRng rng(10);
  std::array<int, 8> counts{};
  for (int i = 0; i < 800; ++i) {
    counts[rng.uniform_below(Bigint(8)).to_u64()]++;
  }
  for (int c : counts) EXPECT_GT(c, 50);
}

TEST(SystemRng, ProducesEntropy) {
  SystemRng rng;
  const Bytes a = rng.bytes(32);
  const Bytes b = rng.bytes(32);
  EXPECT_NE(a, b);  // 2^-256 false-failure probability
}

}  // namespace
}  // namespace dfky
